// End-to-end test of the locality profiler against a live runtime: runs
// GC cycles with profiler + telemetry attached, then checks the report
// structure, the exported metrics, the /locality endpoint, and the
// Perfetto counter track — the acceptance surface of the locality
// subsystem.
package hcsgc_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"hcsgc"
	"hcsgc/internal/telemetry"
)

// runLocalityWorkload drives a mixed sequential/pointer-chasing workload
// with the profiler attached and returns after two full GC cycles.
func runLocalityWorkload(t *testing.T, prof *hcsgc.LocalityProfiler, sink *hcsgc.TelemetrySink) {
	t.Helper()
	rt := hcsgc.MustNewRuntime(hcsgc.Options{
		HeapMaxBytes:    64 << 20,
		Knobs:           hcsgc.Knobs{Hotness: true, ColdPage: true, LazyRelocate: true},
		DisableMemModel: true,
		Telemetry:       sink,
		Locality:        prof,
	})
	defer rt.Close()
	obj := rt.Types.Register("locality.obj", 3, nil)
	m := rt.NewMutator(1)
	defer m.Close()

	const n = 20000
	arr := m.AllocRefArray(n)
	m.SetRoot(0, arr)
	for i := 0; i < n; i++ {
		o := m.Alloc(obj)
		m.StoreField(o, 0, uint64(i))
		m.StoreRef(m.LoadRoot(0), i, o)
	}
	for cyc := 0; cyc < 2; cyc++ {
		// Sequential sweep (stream-friendly) plus a strided re-read.
		for i := 0; i < n; i++ {
			m.LoadRef(m.LoadRoot(0), i)
		}
		for i := 0; i < n; i += 7 {
			o := m.LoadRef(m.LoadRoot(0), i)
			m.LoadField(o, 0)
		}
		m.RequestGC()
	}
}

func TestLocalityEndToEnd(t *testing.T) {
	sink := hcsgc.NewTelemetrySink()
	prof := hcsgc.NewLocalityProfiler(hcsgc.LocalityConfig{SamplePeriodShift: 2})
	runLocalityWorkload(t, prof, sink)

	// --- Report: structure and value sanity.
	rep := prof.Report()
	if rep == nil {
		t.Fatal("profiler returned nil report")
	}
	cum := rep.Cumulative
	if cum.SampledAccesses == 0 {
		t.Fatal("profiler sampled no accesses")
	}
	var hist uint64
	for _, c := range cum.ReuseHist {
		hist += c
	}
	if hist == 0 && cum.ColdSamples == 0 {
		t.Error("reuse histogram empty")
	}
	if cum.SegPurity < 0 || cum.SegPurity > 1 {
		t.Errorf("segregation purity %v outside [0,1]", cum.SegPurity)
	}
	if cum.StreamCoverage <= 0 || cum.StreamCoverage > 1 {
		t.Errorf("stream coverage %v, want in (0,1]", cum.StreamCoverage)
	}
	if len(rep.Cycles) < 2 {
		t.Errorf("cycle history has %d entries, want >= 2", len(rep.Cycles))
	}

	// --- Registry: the locality metric families are live.
	reg := sink.Metrics()
	if v := reg.Counter("hcsgc_locality_sampled_accesses_total", "").Value(); v != cum.SampledAccesses {
		t.Errorf("sampled counter = %d, report says %d", v, cum.SampledAccesses)
	}
	if v := reg.Gauge("hcsgc_locality_segregation_purity", "").Value(); v < 0 || v > 1 {
		t.Errorf("purity gauge = %v outside [0,1]", v)
	}

	srv, err := sink.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}

	// --- /locality serves the JSON report.
	var served hcsgc.LocalityReport
	if err := json.Unmarshal([]byte(get("/locality")), &served); err != nil {
		t.Fatalf("/locality does not parse: %v", err)
	}
	if served.Cumulative.SampledAccesses == 0 {
		t.Error("/locality report sampled no accesses")
	}

	// --- /metrics exposes the new families.
	metrics := get("/metrics")
	for _, want := range []string{
		"hcsgc_locality_reuse_distance_lines_count",
		"hcsgc_locality_sampled_accesses_total",
		"hcsgc_locality_stream_coverage",
		"hcsgc_locality_segregation_purity",
		"hcsgc_locality_page_entropy_bits",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// --- /trace carries the locality counter track (Ph "C").
	var tf telemetry.TraceFile
	if err := json.Unmarshal([]byte(get("/trace")), &tf); err != nil {
		t.Fatalf("/trace does not parse: %v", err)
	}
	counters := map[string]int{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "C" {
			counters[ev.Name]++
		}
	}
	for _, name := range []string{"locality_stream_coverage", "locality_seg_purity", "locality_page_entropy_bits"} {
		if counters[name] == 0 {
			t.Errorf("trace has no %q counter events (got %v)", name, counters)
		}
	}
}

// TestLocalityDisabledIsInert checks the nil-profiler path end to end.
func TestLocalityDisabledIsInert(t *testing.T) {
	runLocalityWorkload(t, nil, nil)
}

// TestLocalityWithoutTelemetry checks the profiler works standalone: no
// sink attached, report still accumulates.
func TestLocalityWithoutTelemetry(t *testing.T) {
	prof := hcsgc.NewLocalityProfiler(hcsgc.LocalityConfig{SamplePeriodShift: 3})
	runLocalityWorkload(t, prof, nil)
	rep := prof.Report()
	if rep == nil || rep.Cumulative.SampledAccesses == 0 {
		t.Fatalf("standalone profiler report: %+v", rep)
	}
}

#!/bin/sh
# Regenerates every table and figure into this directory, plus two
# ablation sweeps. The paper uses 30 runs per config for synthetic and
# JGraphT and 5 for DaCapo/SPECjbb; RUNS=5 keeps the full sweep around an
# hour of host CPU at the default workload scales. The committed results
# were produced with RUNS=5 for fig4/6/9/10/13 and RUNS=3 for
# fig5/7/8/11/12 on a single-CPU container.
set -x
BIN=${BIN:-./hcsgc-bench}
OUT=${OUT:-$(dirname "$0")}
RUNS=${RUNS:-5}
$BIN -exp table1 > "$OUT/table1.txt" 2>&1
$BIN -exp table2 > "$OUT/table2.txt" 2>&1
$BIN -exp table3 -scale 0.25 > "$OUT/table3.txt" 2>&1
for fig in fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13; do
  $BIN -exp $fig -runs "$RUNS" -q -csv "$OUT/$fig.csv" > "$OUT/$fig.txt" 2>&1
done
$BIN -ablate prefetch -runs 3 > "$OUT/ablate_prefetch.txt" 2>&1
$BIN -ablate gcworkers -runs 3 > "$OUT/ablate_gcworkers.txt" 2>&1

package main

import (
	"strings"
	"testing"
)

// TestDemoSmoke runs the demo guts with a tiny heap population and
// asserts it completes without panicking and emits both sections.
func TestDemoSmoke(t *testing.T) {
	var b strings.Builder
	demo(&b, 5000, 4)
	out := b.String()
	if out == "" {
		t.Fatal("demo produced no output")
	}
	for _, want := range []string{
		"=== baseline (original ZGC behaviour) ===",
		"=== HCSGC: RelocateAllSmallPages + LazyRelocate ===",
		"layout before GC",
		"layout after 1st traversal",
		"2nd traversal:",
		"GC cycles:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("demo output missing %q", want)
		}
	}
	// Two runs, each dumping `show` addresses per layout line.
	if got := strings.Count(out, "layout before GC"); got != 2 {
		t.Errorf("got %d baseline dumps, want 2", got)
	}
}

// Command hcsgc-demo shows the core HCSGC mechanism on a tiny example: it
// allocates objects in index order, accesses them in a shuffled order
// through GC cycles, and prints the object layout before and after — under
// baseline ZGC behaviour and under HCSGC with lazy relocation — together
// with the cache statistics for a post-reorganisation traversal.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"hcsgc"
)

func main() {
	// The default population fills several 2MB pages completely and
	// exceeds the 4MB simulated LLC: fully live pages are exactly the ones
	// baseline ZGC never evacuates but HCSGC does.
	n := flag.Int("n", 300000, "number of objects")
	show := flag.Int("show", 12, "objects to print per layout dump")
	flag.Parse()
	demo(os.Stdout, *n, *show)
}

// demo runs the full comparison, writing the report to w.
func demo(w io.Writer, n, show int) {
	order := rand.New(rand.NewSource(42)).Perm(n)

	fmt.Fprintln(w, "=== baseline (original ZGC behaviour) ===")
	run(w, hcsgc.Knobs{}, n, order, show)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "=== HCSGC: RelocateAllSmallPages + LazyRelocate ===")
	run(w, hcsgc.Knobs{RelocateAllSmallPages: true, LazyRelocate: true}, n, order, show)
}

func run(w io.Writer, knobs hcsgc.Knobs, n int, order []int, show int) {
	rt := hcsgc.MustNewRuntime(hcsgc.Options{
		HeapMaxBytes: 256 << 20,
		Knobs:        knobs,
	})
	defer rt.Close()
	obj := rt.Types.Register("demo.obj", 3, nil)
	m := rt.NewMutator(2)
	defer m.Close()

	arr := m.AllocRefArray(n)
	m.SetRoot(0, arr)
	for i := 0; i < n; i++ {
		o := m.Alloc(obj)
		m.StoreField(o, 0, uint64(i))
		m.StoreRef(m.LoadRoot(0), i, o)
	}

	dump := func(when string) {
		fmt.Fprintf(w, "%-28s", when+":")
		for k := 0; k < show && k < len(order); k++ {
			ref := m.LoadRef(m.LoadRoot(0), order[k])
			fmt.Fprintf(w, " %#x", ref.Addr())
		}
		fmt.Fprintln(w)
	}

	dump("layout before GC")
	m.RequestGC() // select EC; in lazy mode GC threads stand down

	// Traverse in the shuffled access order: under HCSGC the mutator
	// relocates each object as it touches it, into its TLAB, in exactly
	// this order.
	before := rt.MemStats()
	for _, idx := range order {
		o := m.LoadRef(m.LoadRoot(0), idx)
		_ = m.LoadField(o, 0)
	}
	dump("layout after 1st traversal")

	// Second traversal: measure locality of the (possibly) new layout.
	mid := rt.MemStats()
	for _, idx := range order {
		o := m.LoadRef(m.LoadRoot(0), idx)
		_ = m.LoadField(o, 0)
	}
	after := rt.MemStats()

	fmt.Fprintf(w, "1st traversal: %d loads, %d LLC misses (includes relocation)\n",
		mid.Loads-before.Loads, mid.LLCMisses-before.LLCMisses)
	fmt.Fprintf(w, "2nd traversal: %d loads, %d LLC misses\n",
		after.Loads-mid.Loads, after.LLCMisses-mid.LLCMisses)
	st := rt.Collector.Stats()
	fmt.Fprintf(w, "GC cycles: %d | mutator-relocated objects: %d | GC-relocated: %d\n",
		rt.Collector.Cycles(), st.MutatorRelocObjects, st.GCRelocObjects)
}

// Command hcsgc-lint runs the GC-core invariant checkers over the module.
//
// Standalone (the CI entry point; runs per-package and module-wide passes):
//
//	go run ./cmd/hcsgc-lint ./...
//
// As a vet tool (per-package passes only; integrates with go vet's build
// cache and diagnostic formatting):
//
//	go build -o /tmp/hcsgc-lint ./cmd/hcsgc-lint
//	go vet -vettool=/tmp/hcsgc-lint ./...
//
// Exit status: 0 clean, 1 operational error (load/typecheck failure),
// 2 one or more invariant violations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"hcsgc/internal/analysis"
	"hcsgc/internal/analysis/lintkit"
)

func main() {
	analyzers := analysis.All()

	// Under `go vet -vettool=` the go command drives us with the
	// unit-checker protocol; MaybeRunVetTool exits the process in that
	// case and falls through for plain invocations.
	lintkit.MaybeRunVetTool(analyzers)

	var list bool
	var only, jsonPath string
	flag.BoolVar(&list, "list", false, "list the analyzers and exit")
	flag.StringVar(&only, "only", "", "comma-separated analyzer names to run (default: all)")
	flag.StringVar(&jsonPath, "json", "",
		"also write the diagnostics as a JSON array to this file (\"-\" for stdout); written even when clean")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: hcsgc-lint [flags] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if list {
		sort.Slice(analyzers, func(i, j int) bool { return analyzers[i].Name < analyzers[j].Name })
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	if only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*lintkit.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		if len(keep) > 0 {
			var unknown []string
			for name := range keep {
				unknown = append(unknown, name)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "hcsgc-lint: unknown analyzer(s): %s\n", strings.Join(unknown, ", "))
			os.Exit(1)
		}
		analyzers = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hcsgc-lint:", err)
		os.Exit(1)
	}
	diags, err := run(cwd, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hcsgc-lint:", err)
		os.Exit(1)
	}
	if jsonPath != "" {
		if err := writeJSON(jsonPath, diags); err != nil {
			fmt.Fprintln(os.Stderr, "hcsgc-lint:", err)
			os.Exit(1)
		}
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Println(d)
		}
		os.Exit(2)
	}
}

// jsonDiag is the machine-readable diagnostic shape CI archives as an
// artifact; keep the field set stable.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON renders the diagnostics as a JSON array ("[]" when clean, so
// the artifact always exists and always parses) to path, or stdout for "-".
func writeJSON(path string, diags []lintkit.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// run loads the packages and applies the analyzers; split out of main for
// the in-process tests.
func run(dir string, patterns []string, analyzers []*lintkit.Analyzer) ([]lintkit.Diagnostic, error) {
	pkgs, err := lintkit.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return lintkit.RunAnalyzers(pkgs, analyzers)
}

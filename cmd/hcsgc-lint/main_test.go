package main

import (
	"encoding/json"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"hcsgc/internal/analysis"
	"hcsgc/internal/analysis/lintkit"
)

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestRepoClean is the suite's own acceptance bar: the repository must
// carry zero invariant violations (annotations and fixes landed with the
// analyzers). A failure here is a real finding — fix the code or, if the
// new call site is legitimately GC-side, annotate it.
func TestRepoClean(t *testing.T) {
	diags, err := run(moduleRoot(t), []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected violation: %s", d)
	}
}

// TestRegressionGuard proves the suite actually guards the invariants:
// deliberately reverting the verifier's annotations in a scratch copy of
// the module must re-surface both the barriercheck and stwonly findings.
func TestRegressionGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("copies the module and shells out to go list")
	}
	root := moduleRoot(t)
	tmp := t.TempDir()
	copyModule(t, root, tmp)

	verify := filepath.Join(tmp, "internal", "core", "verify.go")
	src, err := os.ReadFile(verify)
	if err != nil {
		t.Fatal(err)
	}
	reverted := strings.ReplaceAll(string(src), "//hcsgc:gc-thread", "//")
	reverted = strings.ReplaceAll(reverted, "//hcsgc:stw-only", "//")
	if reverted == string(src) {
		t.Fatal("verify.go carries no annotations to revert; update this test")
	}
	if err := os.WriteFile(verify, []byte(reverted), 0o644); err != nil {
		t.Fatal(err)
	}

	diags, err := run(tmp, []string{"./internal/..."}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	var sawBarrier, sawSTW bool
	for _, d := range diags {
		switch d.Analyzer {
		case "barriercheck":
			sawBarrier = true // verifyObject's raw LoadWord lost its standing
		case "stwonly":
			sawSTW = true // verifyHeap may no longer call heap.VerifyAccounting
		}
	}
	if !sawBarrier {
		t.Error("reverting //hcsgc:gc-thread in verify.go raised no barriercheck diagnostic")
	}
	if !sawSTW {
		t.Error("reverting //hcsgc:stw-only in verify.go raised no stwonly diagnostic")
	}
}

// mutantGuard copies the module into a scratch dir, applies a textual
// mutation to one file, runs the full analyzer suite over patterns, and
// asserts the expected analyzer — and only that analyzer — reports the
// regression. This is the proof that each checker actually guards its
// invariant, not just that the tree happens to be clean.
func mutantGuard(t *testing.T, relFile, oldSrc, newSrc string, patterns []string, want string) {
	t.Helper()
	if testing.Short() {
		t.Skip("copies the module and shells out to go list")
	}
	root := moduleRoot(t)
	tmp := t.TempDir()
	copyModule(t, root, tmp)

	path := filepath.Join(tmp, filepath.FromSlash(relFile))
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.ReplaceAll(string(src), oldSrc, newSrc)
	if mutated == string(src) {
		t.Fatalf("%s no longer contains %q; update this guard", relFile, oldSrc)
	}
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}

	diags, err := run(tmp, patterns, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	byAnalyzer := make(map[string]int)
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	if byAnalyzer[want] == 0 {
		t.Errorf("mutating %s raised no %s diagnostic (got %v)", relFile, want, diags)
	}
	for name, n := range byAnalyzer {
		if name != want {
			t.Errorf("mutation also tripped %s (%d diagnostics); the guard should be analyzer-specific", name, n)
		}
	}
}

// TestGuardBlockedcheck unwraps the KV server's measurement-boundary wait:
// a bare channel receive on an attached-mutator thread must re-surface the
// blockedcheck finding.
func TestGuardBlockedcheck(t *testing.T) {
	mutantGuard(t, "internal/workloads/kvserver.go",
		"m.Blocked(func() { <-serve })", "<-serve",
		[]string{"./internal/workloads/"}, "blockedcheck")
}

// TestGuardLockorder flips cycleMu's declared rank above mutMu's: the real
// cycle path holds cycleMu across forEachMutator's mutMu acquisition, so
// the declared order now contradicts the code and lockorder must fire.
func TestGuardLockorder(t *testing.T) {
	mutantGuard(t, "internal/core/collector.go",
		"//hcsgc:lock-order 10", "//hcsgc:lock-order 25",
		[]string{"./internal/core/"}, "lockorder")
}

// TestGuardAllocfree injects a per-mark allocation into markObject, the
// hottest //hcsgc:alloc-free function; allocfree must reject the body.
func TestGuardAllocfree(t *testing.T) {
	mutantGuard(t, "internal/core/worker.go",
		"size := objmodel.SizeBytes(header)",
		"size := objmodel.SizeBytes(header)\n\tgray := append([]uint64{}, addr)\n\t_ = gray",
		[]string{"./internal/core/"}, "allocfree")
}

// TestGuardVtimepure adds a wall-clock read to the deterministic load
// generator; vtimepure must flag the unannotated time.Now.
func TestGuardVtimepure(t *testing.T) {
	mutantGuard(t, "internal/loadgen/loadgen.go",
		"import (\n\t\"fmt\"\n\t\"math\"\n\t\"sort\"\n)",
		"import (\n\t\"fmt\"\n\t\"math\"\n\t\"sort\"\n\t\"time\"\n)\n\n"+
			"func wallSeed() int64 { return time.Now().UnixNano() }",
		[]string{"./internal/loadgen/"}, "vtimepure")
}

// TestVetToolProtocol builds the binary and drives it exactly as
// `go vet -vettool` does.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the lint binary")
	}
	root := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "hcsgc-lint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/hcsgc-lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building lint tool: %v\n%s", err, out)
	}

	version := exec.Command(bin, "-V=full")
	out, err := version.Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !strings.Contains(string(out), "hcsgc-lint version") {
		t.Errorf("-V=full output %q lacks a cacheable version line", out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/core/")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool on a clean package failed: %v\n%s", err, out)
	}
}

// TestWriteJSON pins the artifact shape CI archives: a JSON array of
// {file,line,col,analyzer,message} objects, and "[]" (never "null") when
// the tree is clean so the artifact always parses.
func TestWriteJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.json")
	if err := writeJSON(path, nil); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(clean)) != "[]" {
		t.Errorf("clean run wrote %q, want empty JSON array", clean)
	}

	diags := []lintkit.Diagnostic{{
		Pos:      token.Position{Filename: "internal/core/worker.go", Line: 131, Column: 2},
		Analyzer: "allocfree",
		Message:  "markObject allocates",
	}}
	if err := writeJSON(path, diags); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("artifact does not parse: %v\n%s", err, data)
	}
	if len(decoded) != 1 {
		t.Fatalf("got %d entries, want 1", len(decoded))
	}
	got := decoded[0]
	if got["file"] != "internal/core/worker.go" || got["line"] != float64(131) ||
		got["col"] != float64(2) || got["analyzer"] != "allocfree" ||
		got["message"] != "markObject allocates" {
		t.Errorf("unexpected artifact entry: %v", got)
	}
}

// copyModule copies go.mod and every non-test Go file (plus testdata-free
// directory structure) into dst, enough for `go list -export` to load the
// production packages.
func copyModule(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if !strings.HasSuffix(rel, ".go") && rel != "go.mod" && rel != "go.sum" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

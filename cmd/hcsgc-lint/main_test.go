package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"hcsgc/internal/analysis"
)

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestRepoClean is the suite's own acceptance bar: the repository must
// carry zero invariant violations (annotations and fixes landed with the
// analyzers). A failure here is a real finding — fix the code or, if the
// new call site is legitimately GC-side, annotate it.
func TestRepoClean(t *testing.T) {
	diags, err := run(moduleRoot(t), []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected violation: %s", d)
	}
}

// TestRegressionGuard proves the suite actually guards the invariants:
// deliberately reverting the verifier's annotations in a scratch copy of
// the module must re-surface both the barriercheck and stwonly findings.
func TestRegressionGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("copies the module and shells out to go list")
	}
	root := moduleRoot(t)
	tmp := t.TempDir()
	copyModule(t, root, tmp)

	verify := filepath.Join(tmp, "internal", "core", "verify.go")
	src, err := os.ReadFile(verify)
	if err != nil {
		t.Fatal(err)
	}
	reverted := strings.ReplaceAll(string(src), "//hcsgc:gc-thread", "//")
	reverted = strings.ReplaceAll(reverted, "//hcsgc:stw-only", "//")
	if reverted == string(src) {
		t.Fatal("verify.go carries no annotations to revert; update this test")
	}
	if err := os.WriteFile(verify, []byte(reverted), 0o644); err != nil {
		t.Fatal(err)
	}

	diags, err := run(tmp, []string{"./internal/..."}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	var sawBarrier, sawSTW bool
	for _, d := range diags {
		switch d.Analyzer {
		case "barriercheck":
			sawBarrier = true // verifyObject's raw LoadWord lost its standing
		case "stwonly":
			sawSTW = true // verifyHeap may no longer call heap.VerifyAccounting
		}
	}
	if !sawBarrier {
		t.Error("reverting //hcsgc:gc-thread in verify.go raised no barriercheck diagnostic")
	}
	if !sawSTW {
		t.Error("reverting //hcsgc:stw-only in verify.go raised no stwonly diagnostic")
	}
}

// TestVetToolProtocol builds the binary and drives it exactly as
// `go vet -vettool` does.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the lint binary")
	}
	root := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "hcsgc-lint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/hcsgc-lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building lint tool: %v\n%s", err, out)
	}

	version := exec.Command(bin, "-V=full")
	out, err := version.Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !strings.Contains(string(out), "hcsgc-lint version") {
		t.Errorf("-V=full output %q lacks a cacheable version line", out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/core/")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool on a clean package failed: %v\n%s", err, out)
	}
}

// copyModule copies go.mod and every non-test Go file (plus testdata-free
// directory structure) into dst, enough for `go list -export` to load the
// production packages.
func copyModule(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if !strings.HasSuffix(rel, ".go") && rel != "go.mod" && rel != "go.sum" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

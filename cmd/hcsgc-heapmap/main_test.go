package main

import (
	"strings"
	"testing"
)

// TestHeapmapSmoke runs the heapmap guts with a tiny population under
// both configurations and asserts non-empty, well-formed output.
func TestHeapmapSmoke(t *testing.T) {
	for _, coldpage := range []bool{false, true} {
		var b strings.Builder
		heapmap(&b, 5000, 5, 2, coldpage)
		out := b.String()
		if out == "" {
			t.Fatalf("coldpage=%v: no output", coldpage)
		}
		for _, want := range []string{
			"=== GC log",
			"[gc] GC(1)",
			"[gc] totals:",
			"=== heap map ===",
			"heap:",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("coldpage=%v: output missing %q", coldpage, want)
			}
		}
	}
}

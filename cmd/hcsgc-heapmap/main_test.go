package main

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// TestHeapmapSmoke runs the heapmap guts with a tiny population under
// both configurations and asserts non-empty, well-formed output including
// the segregation-purity line.
func TestHeapmapSmoke(t *testing.T) {
	for _, coldpage := range []bool{false, true} {
		var b strings.Builder
		heapmap(&b, 5000, 5, 2, coldpage, false, false)
		out := b.String()
		if out == "" {
			t.Fatalf("coldpage=%v: no output", coldpage)
		}
		for _, want := range []string{
			"=== GC log",
			"[gc] GC(1)",
			"[gc] totals:",
			"=== heap map ===",
			"heap:",
			"segregation purity:",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("coldpage=%v: output missing %q", coldpage, want)
			}
		}
		m := regexp.MustCompile(`segregation purity: (\d+\.\d+)`).FindStringSubmatch(out)
		if m == nil {
			t.Fatalf("coldpage=%v: purity line not found:\n%s", coldpage, out)
		}
		var p float64
		fmt.Sscanf(m[1], "%f", &p)
		if p < 0 || p > 1 {
			t.Errorf("coldpage=%v: purity %v outside [0,1]", coldpage, p)
		}
	}
}

// TestHeapmapEvery checks -every prints one map (with purity) per GC
// cycle and drops the trailing duplicate.
func TestHeapmapEvery(t *testing.T) {
	var b strings.Builder
	heapmap(&b, 5000, 5, 3, true, true, false)
	out := b.String()
	for cyc := 1; cyc <= 3; cyc++ {
		want := fmt.Sprintf("=== heap map after GC(%d) ===", cyc)
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "=== heap map ===") {
		t.Error("-every must replace the final map, not duplicate it")
	}
	if got := strings.Count(out, "segregation purity:"); got != 3 {
		t.Errorf("want 3 purity lines, got %d:\n%s", got, out)
	}
}

// TestHeapmapVerify checks -verify attaches the STW verifier: the map
// reports its pass count, and a healthy run flags no page.
func TestHeapmapVerify(t *testing.T) {
	var b strings.Builder
	heapmap(&b, 5000, 5, 2, true, false, true)
	out := b.String()
	m := regexp.MustCompile(`verifier: (\d+) passes, (\d+) violations`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("verifier summary line missing:\n%s", out)
	}
	if m[1] == "0" {
		t.Error("verifier never ran despite GC cycles")
	}
	if m[2] != "0" {
		t.Errorf("healthy run reported %s violations:\n%s", m[2], out)
	}
	if strings.Contains(out, "VIOLATIONS") {
		t.Errorf("healthy run flagged a page:\n%s", out)
	}
}

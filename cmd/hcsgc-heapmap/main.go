// Command hcsgc-heapmap visualises hot/cold segregation: it builds a
// population with a hot subset, runs GC cycles under a chosen
// configuration, and prints the GC log plus an ASCII heap map. Under
// COLDPAGE + COLDCONFIDENCE the map shows hot-dense ('+') and cold-dense
// ('#') pages separating.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hcsgc"
)

func main() {
	var (
		n        = flag.Int("n", 200000, "objects")
		hotFrac  = flag.Int("hot", 5, "one object in N is hot")
		cycles   = flag.Int("cycles", 3, "GC cycles to run")
		coldpage = flag.Bool("coldpage", true, "enable COLDPAGE+HOTNESS+COLDCONFIDENCE=1")
	)
	flag.Parse()
	heapmap(os.Stdout, *n, *hotFrac, *cycles, *coldpage)
}

// heapmap runs the visualisation, writing the GC log and heap map to w.
func heapmap(w io.Writer, n, hotFrac, cycles int, coldpage bool) {
	knobs := hcsgc.Knobs{}
	if coldpage {
		knobs = hcsgc.Knobs{Hotness: true, ColdPage: true, ColdConfidence: 1.0}
	}
	rt := hcsgc.MustNewRuntime(hcsgc.Options{
		HeapMaxBytes: 256 << 20,
		Knobs:        knobs,
	})
	defer rt.Close()
	obj := rt.Types.Register("obj", 3, nil)
	m := rt.NewMutator(2)
	defer m.Close()

	arr := m.AllocRefArray(n)
	m.SetRoot(0, arr)
	for i := 0; i < n; i++ {
		o := m.Alloc(obj)
		m.StoreField(o, 0, uint64(i))
		m.StoreRef(m.LoadRoot(0), i, o)
	}

	for cyc := 0; cyc < cycles; cyc++ {
		// Touch the hot subset, then collect: the next mark flags them hot
		// and relocation segregates.
		for i := 0; i < n; i += hotFrac {
			m.LoadRef(m.LoadRoot(0), i)
		}
		m.RequestGC()
	}

	fmt.Fprintf(w, "=== GC log (%v) ===\n", knobs)
	rt.Collector.WriteGCLog(w)
	fmt.Fprintf(w, "\n=== heap map ===\n")
	rt.Heap.WriteHeapMap(w)
}

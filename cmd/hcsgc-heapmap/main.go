// Command hcsgc-heapmap visualises hot/cold segregation: it builds a
// population with a hot subset, runs GC cycles under a chosen
// configuration, and prints the GC log plus an ASCII heap map. Under
// COLDPAGE + COLDCONFIDENCE the map shows hot-dense ('+') and cold-dense
// ('#') pages separating, and the segregation-purity metric printed with
// each map quantifies it (1.0 = every page all-hot or all-cold).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hcsgc"
)

func main() {
	var (
		n        = flag.Int("n", 200000, "objects")
		hotFrac  = flag.Int("hot", 5, "one object in N is hot")
		cycles   = flag.Int("cycles", 3, "GC cycles to run")
		coldpage = flag.Bool("coldpage", true, "enable COLDPAGE+HOTNESS+COLDCONFIDENCE=1")
		every    = flag.Bool("every", false, "print the heap map after every GC cycle, not just the last")
		verify   = flag.Bool("verify", false, "attach the STW heap verifier; maps flag pages with violations")
	)
	flag.Parse()
	heapmap(os.Stdout, *n, *hotFrac, *cycles, *coldpage, *every, *verify)
}

// heapmap runs the visualisation, writing the GC log and heap map(s) to w.
func heapmap(w io.Writer, n, hotFrac, cycles int, coldpage, every, verify bool) {
	knobs := hcsgc.Knobs{}
	if coldpage {
		knobs = hcsgc.Knobs{Hotness: true, ColdPage: true, ColdConfidence: 1.0}
	}
	var v *hcsgc.HeapVerifier
	if verify {
		v = hcsgc.NewHeapVerifier()
	}
	rt := hcsgc.MustNewRuntime(hcsgc.Options{
		HeapMaxBytes: 256 << 20,
		Knobs:        knobs,
		Verifier:     v,
	})
	defer rt.Close()
	obj := rt.Types.Register("obj", 3, nil)
	m := rt.NewMutator(2)
	defer m.Close()

	arr := m.AllocRefArray(n)
	m.SetRoot(0, arr)
	for i := 0; i < n; i++ {
		o := m.Alloc(obj)
		m.StoreField(o, 0, uint64(i))
		m.StoreRef(m.LoadRoot(0), i, o)
	}

	for cyc := 0; cyc < cycles; cyc++ {
		// Touch the hot subset, then collect: the next mark flags them hot
		// and relocation segregates.
		for i := 0; i < n; i += hotFrac {
			m.LoadRef(m.LoadRoot(0), i)
		}
		m.RequestGC()
		if every {
			fmt.Fprintf(w, "=== heap map after GC(%d) ===\n", cyc+1)
			writeMap(w, rt)
			fmt.Fprintln(w)
		}
	}

	fmt.Fprintf(w, "=== GC log (%v) ===\n", knobs)
	rt.Collector.WriteGCLog(w)
	if !every {
		fmt.Fprintf(w, "\n=== heap map ===\n")
		writeMap(w, rt)
	}
}

// writeMap prints the ASCII map plus the segregation-purity metric over
// the hot-trackable (small/tiny) live pages.
func writeMap(w io.Writer, rt *hcsgc.Runtime) {
	rt.Heap.WriteHeapMap(w)
	seg := rt.Heap.SegregationStats(^uint64(0))
	fmt.Fprintf(w, "segregation purity: %.4f (%d pages, %d live bytes)\n",
		seg.Purity(), seg.Pages, seg.LiveBytes)
}

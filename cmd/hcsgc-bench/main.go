// Command hcsgc-bench regenerates the tables and figures of "Improving
// Program Locality in the GC using Hotness" (PLDI 2020).
//
// Usage:
//
//	hcsgc-bench -exp fig4                # one experiment, default settings
//	hcsgc-bench -exp all                 # everything (takes a while)
//	hcsgc-bench -exp fig9 -runs 30 -scale 0.06 -configs 0,2,3,4
//	hcsgc-bench -exp fig4 -csv out.csv   # machine-readable output
//	hcsgc-bench -chaos -chaos-runs 20    # fault-injection soak, verifier on
//	hcsgc-bench -kv-report -kv-json kv.json  # KV serving SLO A/B (cfg 3 vs 4)
//
// Results are printed as text reports following the paper's §4.2 layout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hcsgc"
	"hcsgc/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id: table1-3, fig4-13, or 'all'")
		runs    = flag.Int("runs", 0, "runs per configuration (0 = experiment default)")
		scale   = flag.Float64("scale", 0, "workload scale in (0,1]; 0 = default; 1 = paper scale")
		seed    = flag.Int64("seed", 0, "base seed (0 = experiment default)")
		configs = flag.String("configs", "", "comma-separated config ids (default: all 19)")
		csvPath = flag.String("csv", "", "also write per-config CSV to this file")
		quiet   = flag.Bool("q", false, "suppress progress output")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		ablate  = flag.String("ablate", "", "run an ablation sweep instead: "+strings.Join(bench.AblationNames(), ", "))
		telAddr = flag.String("telemetry-addr", "", "serve live telemetry on this address (/metrics, /metrics.json, /trace, /gclog, /locality)")

		locMode  = flag.Bool("locality", false, "run a locality A/B report instead of the timing sweep (-configs picks base,test; default 0,16)")
		locShift = flag.Uint("locality-shift", 4, "locality sampling knob: one burst per 2^shift accesses")
		locJSON  = flag.String("locality-json", "", "also write the locality A/B report as JSON to this file")

		latMode = flag.Bool("latency-report", false, "run a latency A/B report instead: pause/phase HDR percentiles, MMU ladder, barrier profile (-configs picks base,test; default 3,4)")
		latJSON = flag.String("latency-json", "", "also write the latency A/B report as JSON to this file")

		kvMode = flag.Bool("kv-report", false, "run the KV serving A/B report instead: open-loop load, per-phase request-latency percentiles and SLO curves (-configs picks base,test; default 3,4)")
		kvJSON = flag.String("kv-json", "", "also write the KV serving A/B report as JSON to this file")

		tailMode = flag.Bool("tail-report", false, "run the KV tail-attribution A/B report instead: every SLO-violating request classified by cause (stw-pause/alloc-stall/queued-behind-stall/service) and linked to the responsible GC cycle (-configs picks base,test; default 3,4)")
		tailJSON = flag.String("tail-json", "", "also write the tail-attribution A/B report as JSON to this file")
		tailSLO  = flag.Uint64("tail-slo", 0, "SLO threshold in virtual cycles for -tail-report (0 = default 1000000)")

		overloadMode   = flag.Bool("overload-report", false, "run the overload-protection A/B instead: the KV workload past sustainable load (-overload-factor), unprotected vs with admission control + deadlines armed (-configs picks the single GC config; default 3)")
		overloadJSON   = flag.String("overload-json", "", "also write the overload A/B report as JSON to this file")
		overloadFactor = flag.Float64("overload-factor", 0, "arrival-rate multiplier past sustainable for -overload-report (0 = default 2)")

		scaleSweep    = flag.Bool("scale-sweep", false, "run the many-core scaling sweep instead: fig4 + KV across -sweep-mutators with a fresh contention plane per run, USL fit (sigma = contention, kappa = crosstalk) and ranked contention tables")
		sweepMutators = flag.String("sweep-mutators", "1,2,4,8,16,64", "comma-separated mutator counts for -scale-sweep")
		scalingJSON   = flag.String("scaling-json", "", "also write the scaling sweep report as JSON to this file")

		benchOut     = flag.String("bench-out", "", "write the normalized benchmark artifact (BENCH_<exp>.json shape) to this file; supported by -kv-report and -overload-report")
		benchCompare = flag.String("bench-compare", "", "compare the run against this committed baseline artifact; >10% regressions print warnings without failing")

		chaosMode = flag.Bool("chaos", false, "run a chaos soak instead: seeded fault schedules with the STW heap verifier on")
		chaosSeed = flag.Int64("chaos-seed", 1, "base seed; run r uses seed chaos-seed+r (replay a failure with its printed seed and -chaos-runs 1)")
		chaosRuns = flag.Int("chaos-runs", 0, "soak runs (0 = 20)")
		chaosOut  = flag.String("chaos-out", "", "also write the soak report (and failed runs' gclogs) to this file")
	)
	flag.Parse()

	var sink *hcsgc.TelemetrySink
	if *telAddr != "" {
		sink = hcsgc.NewTelemetrySink()
		srv, err := sink.Serve(*telAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hcsgc-bench: telemetry: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "hcsgc-bench: telemetry on http://%s (/metrics /metrics.json /trace /gclog)\n", srv.Addr())
	}

	if *list {
		writeList(os.Stdout)
		return
	}
	if *ablate != "" {
		progress := bench.Progress(nil)
		if !*quiet {
			progress = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
		}
		res, err := bench.RunAblation(*ablate, *runs, *scale, *seed, progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hcsgc-bench: %v\n", err)
			os.Exit(1)
		}
		bench.WriteAblation(os.Stdout, &res)
		return
	}
	if *locMode {
		if err := runLocality(*exp, *runs, *scale, *seed, *configs, *locShift, *locJSON, *quiet, sink); err != nil {
			fmt.Fprintf(os.Stderr, "hcsgc-bench: locality: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *latMode {
		if err := runLatency(*exp, *runs, *scale, *seed, *configs, *latJSON, *quiet, sink); err != nil {
			fmt.Fprintf(os.Stderr, "hcsgc-bench: latency: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *kvMode {
		if err := runKV(*runs, *scale, *seed, *configs, *kvJSON, *benchOut, *benchCompare, *quiet, sink); err != nil {
			fmt.Fprintf(os.Stderr, "hcsgc-bench: kv: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *tailMode {
		if err := runTail(*runs, *scale, *seed, *configs, *tailSLO, *tailJSON, *quiet, sink); err != nil {
			fmt.Fprintf(os.Stderr, "hcsgc-bench: tail: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *scaleSweep {
		if err := runScaleSweep(*sweepMutators, *scale, *seed, *scalingJSON, *benchOut, *benchCompare, *quiet, sink); err != nil {
			fmt.Fprintf(os.Stderr, "hcsgc-bench: scaling: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *overloadMode {
		if err := runOverload(*runs, *scale, *seed, *configs, *overloadFactor, *overloadJSON, *benchOut, *benchCompare, *quiet, sink); err != nil {
			fmt.Fprintf(os.Stderr, "hcsgc-bench: overload: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *chaosMode {
		failed, err := runChaosSoak(*exp, *chaosRuns, *scale, *chaosSeed, *chaosOut, *quiet)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hcsgc-bench: chaos: %v\n", err)
			os.Exit(1)
		}
		if failed {
			os.Exit(1)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "hcsgc-bench: -exp is required (see -list)")
		os.Exit(2)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.ExperimentIDs()
	}
	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hcsgc-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		csvFile = f
	}

	for _, id := range ids {
		if err := runOne(id, *runs, *scale, *seed, *configs, *quiet, csvFile, sink); err != nil {
			fmt.Fprintf(os.Stderr, "hcsgc-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

// writeList enumerates the runnable experiment ids (id first, one-line
// description after), then the report modes and ablation sweeps.
func writeList(w io.Writer) {
	tableTitles := map[string]string{
		"table1": "ZGC page size classes",
		"table2": "benchmark configuration matrix (Table 2)",
		"table3": "LAW-substitute graph inputs",
	}
	specs := bench.Specs()
	fmt.Fprintln(w, "experiments (-exp):")
	for _, id := range bench.ExperimentIDs() {
		title := tableTitles[id]
		if s, ok := specs[id]; ok {
			title = s.Title
		}
		fmt.Fprintf(w, "  %-8s %s\n", id, title)
	}
	fmt.Fprintln(w, "report modes:")
	for _, m := range []struct{ flag, desc string }{
		{"(default)", "per-config timing/cache/GC sweep over Table 2 (fig4-13)"},
		{"-locality", "locality A/B: reuse distance, stream coverage, page entropy"},
		{"-latency-report", "latency A/B: pause/phase HDR percentiles, MMU ladder, barrier profile"},
		{"-kv-report", "KV serving A/B: open-loop request latency percentiles and SLO curves per traffic phase"},
		{"-tail-report", "KV tail-attribution A/B: p99 violations by cause, linked to responsible GC cycles"},
		{"-overload-report", "KV overload A/B: past-sustainable load, unprotected vs admission control + deadline shedding"},
		{"-scale-sweep", "many-core scaling sweep: fig4 + KV across mutator counts, USL fit and ranked contention tables"},
		{"-chaos", "chaos soak: seeded fault schedules with the STW heap verifier"},
	} {
		fmt.Fprintf(w, "  %-16s %s\n", m.flag, m.desc)
	}
	fmt.Fprintln(w, "ablation sweeps (-ablate):")
	for _, a := range bench.AblationNames() {
		fmt.Fprintf(w, "  ablate:%s\n", a)
	}
}

func runOne(id string, runs int, scale float64, seed int64, configs string, quiet bool, csvFile *os.File, sink *hcsgc.TelemetrySink) error {
	switch id {
	case "table1":
		bench.WriteTable1(os.Stdout)
		return nil
	case "table2":
		bench.WriteTable2(os.Stdout)
		return nil
	case "table3":
		s := scale
		if s == 0 {
			s = 0.1
		}
		bench.WriteTable3(os.Stdout, s)
		return nil
	}

	spec, ok := bench.Specs()[id]
	if !ok {
		return fmt.Errorf("unknown experiment (see -list)")
	}
	if runs > 0 {
		spec.Runs = runs
	}
	if scale > 0 {
		spec.Scale = scale
	}
	if seed != 0 {
		spec.Seed = seed
	}
	if configs != "" {
		ids, err := parseConfigs(configs)
		if err != nil {
			return err
		}
		spec.Configs = ids
	}
	spec.Telemetry = sink
	progress := bench.Progress(nil)
	if !quiet {
		progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	res, err := bench.Run(spec, progress)
	if err != nil {
		return err
	}
	bench.WriteReport(os.Stdout, &res)
	if csvFile != nil {
		bench.WriteCSV(csvFile, &res)
	}
	return nil
}

// runLocality runs the -locality A/B mode: the experiment's workload under
// a baseline and a test configuration with the sampling profiler attached,
// printing the side-by-side report and optionally writing the JSON artifact.
// With -telemetry-addr, the in-flight run's profiler serves on /locality.
func runLocality(exp string, runs int, scale float64, seed int64, configs string, shift uint, jsonPath string, quiet bool, sink *hcsgc.TelemetrySink) error {
	if exp == "" || exp == "all" {
		exp = "fig4"
	}
	base, test := 0, 16 // ZGC baseline vs H+CP+cc1+lazy (COLDPAGE+LAZYRELOCATE)
	if configs != "" {
		ids, err := parseConfigs(configs)
		if err != nil {
			return err
		}
		if len(ids) != 2 {
			return fmt.Errorf("-locality needs exactly two config ids (base,test), got %d", len(ids))
		}
		base, test = ids[0], ids[1]
	}
	progress := bench.Progress(nil)
	if !quiet {
		progress = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	ab, err := bench.RunLocalityAB(exp, runs, scale, seed, base, test, shift, sink, progress)
	if err != nil {
		return err
	}
	if err := bench.ValidateLocalityAB(ab); err != nil {
		return err
	}
	bench.WriteLocalityReport(os.Stdout, ab)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bench.WriteLocalityJSON(f, ab); err != nil {
			return err
		}
	}
	return nil
}

// runLatency runs the -latency-report A/B mode: the experiment's workload
// under a baseline and a test configuration with a fresh latency tracker
// per run, printing the side-by-side pause/phase/MMU/barrier report and
// optionally writing the JSON artifact. With -telemetry-addr, in-flight
// runs serve live on /mmu and /flightrecorder.
func runLatency(exp string, runs int, scale float64, seed int64, configs string, jsonPath string, quiet bool, sink *hcsgc.TelemetrySink) error {
	if exp == "" || exp == "all" {
		exp = "fig4"
	}
	base, test := 3, 4 // RelocateAllSmallPages vs +LazyRelocate (the shift story)
	if configs != "" {
		ids, err := parseConfigs(configs)
		if err != nil {
			return err
		}
		if len(ids) != 2 {
			return fmt.Errorf("-latency-report needs exactly two config ids (base,test), got %d", len(ids))
		}
		base, test = ids[0], ids[1]
	}
	progress := bench.Progress(nil)
	if !quiet {
		progress = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	ab, err := bench.RunLatencyAB(exp, runs, scale, seed, base, test, sink, progress)
	if err != nil {
		return err
	}
	if err := bench.ValidateLatencyAB(ab); err != nil {
		return err
	}
	bench.WriteLatencyReport(os.Stdout, ab)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bench.WriteLatencyJSON(f, ab); err != nil {
			return err
		}
	}
	return nil
}

// runKV runs the -kv-report A/B mode: the KV server workload under a
// baseline and a test configuration with a shared per-side metrics
// accumulator, printing the per-phase percentile and SLO-curve report and
// optionally writing the JSON artifact. With -telemetry-addr, in-flight
// runs export hcsgc_kv_* metrics and serve the merged report on /kv.
func runKV(runs int, scale float64, seed int64, configs string, jsonPath, benchOut, benchCompare string, quiet bool, sink *hcsgc.TelemetrySink) error {
	base, test := 3, 4 // RelocateAllSmallPages vs +LazyRelocate
	if configs != "" {
		ids, err := parseConfigs(configs)
		if err != nil {
			return err
		}
		if len(ids) != 2 {
			return fmt.Errorf("-kv-report needs exactly two config ids (base,test), got %d", len(ids))
		}
		base, test = ids[0], ids[1]
	}
	if seed == 0 {
		seed = 1
	}
	progress := bench.Progress(nil)
	if !quiet {
		progress = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	ab, err := bench.RunKVAB(runs, scale, seed, base, test, sink, progress)
	if err != nil {
		return err
	}
	if err := bench.ValidateKVAB(ab); err != nil {
		return err
	}
	bench.WriteKVReport(os.Stdout, ab)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bench.WriteKVJSON(f, ab); err != nil {
			return err
		}
	}
	if benchOut != "" || benchCompare != "" {
		art := bench.KVArtifact(ab)
		if benchOut != "" {
			f, err := os.Create(benchOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := bench.WriteArtifact(f, art); err != nil {
				return err
			}
		}
		if benchCompare != "" {
			baseline, err := bench.ReadArtifactFile(benchCompare)
			if err != nil {
				return err
			}
			warns := bench.CompareArtifacts(baseline, art, 0.10)
			for _, w := range warns {
				fmt.Fprintf(os.Stderr, "hcsgc-bench: baseline warning: %s\n", w)
			}
			if len(warns) == 0 {
				fmt.Fprintf(os.Stderr, "hcsgc-bench: all metrics within 10%% of baseline %s\n", benchCompare)
			}
		}
	}
	return nil
}

// runTail runs the -tail-report mode: the KV serving A/B with request-
// level tail attribution armed, printing the per-config "p99 violations
// by cause" breakdown and optionally writing the JSON artifact CI uploads.
func runTail(runs int, scale float64, seed int64, configs string, slo uint64, jsonPath string, quiet bool, sink *hcsgc.TelemetrySink) error {
	base, test := 3, 4 // RelocateAllSmallPages vs +LazyRelocate
	if configs != "" {
		ids, err := parseConfigs(configs)
		if err != nil {
			return err
		}
		if len(ids) != 2 {
			return fmt.Errorf("-tail-report needs exactly two config ids (base,test), got %d", len(ids))
		}
		base, test = ids[0], ids[1]
	}
	if seed == 0 {
		seed = 1
	}
	progress := bench.Progress(nil)
	if !quiet {
		progress = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	ab, err := bench.RunTailAB(runs, scale, seed, base, test, slo, sink, progress)
	if err != nil {
		return err
	}
	if err := bench.ValidateTailAB(ab); err != nil {
		return err
	}
	bench.WriteTailReport(os.Stdout, ab)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bench.WriteTailJSON(f, ab); err != nil {
			return err
		}
	}
	return nil
}

// runOverload runs the -overload-report mode: the KV server workload at a
// load factor past the sustainable arrival rate, once unprotected and once
// with the overload-protection plane armed, under one GC configuration.
// The report leads with the goodput/shed/tail comparison; the validator
// enforces the brownout acceptance gates. With -telemetry-addr, in-flight
// runs export hcsgc_overload_* metrics and serve the accounting on
// /overload.
func runOverload(runs int, scale float64, seed int64, configs string, factor float64, jsonPath, benchOut, benchCompare string, quiet bool, sink *hcsgc.TelemetrySink) error {
	cfgID := 3 // RelocateAllSmallPages: the serving-path default
	if configs != "" {
		ids, err := parseConfigs(configs)
		if err != nil {
			return err
		}
		if len(ids) != 1 {
			return fmt.Errorf("-overload-report needs exactly one config id, got %d", len(ids))
		}
		cfgID = ids[0]
	}
	if seed == 0 {
		seed = 1
	}
	progress := bench.Progress(nil)
	if !quiet {
		progress = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	ab, err := bench.RunOverloadAB(runs, scale, seed, cfgID, factor, sink, progress)
	if err != nil {
		return err
	}
	if err := bench.ValidateOverloadAB(ab); err != nil {
		return err
	}
	bench.WriteOverloadReport(os.Stdout, ab)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bench.WriteOverloadJSON(f, ab); err != nil {
			return err
		}
	}
	if benchOut != "" || benchCompare != "" {
		art := bench.OverloadArtifact(ab)
		if benchOut != "" {
			f, err := os.Create(benchOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := bench.WriteArtifact(f, art); err != nil {
				return err
			}
		}
		if benchCompare != "" {
			baseline, err := bench.ReadArtifactFile(benchCompare)
			if err != nil {
				return err
			}
			warns := bench.CompareArtifacts(baseline, art, 0.10)
			for _, w := range warns {
				fmt.Fprintf(os.Stderr, "hcsgc-bench: baseline warning: %s\n", w)
			}
			if len(warns) == 0 {
				fmt.Fprintf(os.Stderr, "hcsgc-bench: all metrics within 10%% of baseline %s\n", benchCompare)
			}
		}
	}
	return nil
}

// runScaleSweep runs the -scale-sweep mode: the scaling workloads across
// the -sweep-mutators ladder with a fresh contention plane per run,
// printing the throughput/speedup ladder, USL coefficients and ranked
// contention tables, and optionally writing the JSON report and the
// normalized BENCH_scaling.json artifact CI uploads.
func runScaleSweep(mutators string, scale float64, seed int64, jsonPath, benchOut, benchCompare string, quiet bool, sink *hcsgc.TelemetrySink) error {
	var muts []int
	if mutators != "" {
		ids, err := parseConfigs(mutators)
		if err != nil {
			return fmt.Errorf("-sweep-mutators: %w", err)
		}
		muts = ids
	}
	progress := bench.Progress(nil)
	if !quiet {
		progress = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	sweep, err := bench.RunScaleSweep(muts, scale, seed, sink, progress)
	if err != nil {
		return err
	}
	if err := bench.ValidateScaleSweep(sweep); err != nil {
		return err
	}
	bench.WriteScalingReport(os.Stdout, sweep)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bench.WriteScalingJSON(f, sweep); err != nil {
			return err
		}
	}
	if benchOut != "" || benchCompare != "" {
		art := bench.ScalingArtifact(sweep)
		if benchOut != "" {
			f, err := os.Create(benchOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := bench.WriteArtifact(f, art); err != nil {
				return err
			}
		}
		if benchCompare != "" {
			baseline, err := bench.ReadArtifactFile(benchCompare)
			if err != nil {
				return err
			}
			warns := bench.CompareArtifacts(baseline, art, 0.10)
			for _, w := range warns {
				fmt.Fprintf(os.Stderr, "hcsgc-bench: baseline warning: %s\n", w)
			}
			if len(warns) == 0 {
				fmt.Fprintf(os.Stderr, "hcsgc-bench: all metrics within 10%% of baseline %s\n", benchCompare)
			}
		}
	}
	return nil
}

// runChaosSoak runs the -chaos mode: a seed sweep of randomized fault
// schedules with the STW heap verifier attached to every run. The report
// leads each failure with the reproducer command line; gclogs of failed
// runs go to the -chaos-out artifact. Returns failed=true when any seed
// hit a verifier violation or an unexpected error (graceful OOM is not a
// failure).
func runChaosSoak(exp string, runs int, scale float64, baseSeed int64, outPath string, quiet bool) (failed bool, err error) {
	if exp == "" || exp == "all" {
		exp = "fig4"
	}
	progress := bench.Progress(nil)
	if !quiet {
		progress = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	res, err := bench.RunChaos(exp, runs, scale, baseSeed, progress)
	if err != nil {
		return false, err
	}
	bench.WriteChaosReport(os.Stdout, res)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return false, err
		}
		defer f.Close()
		bench.WriteChaosReport(f, res)
		for _, r := range res.Runs {
			if r.GCLog != "" {
				fmt.Fprintf(f, "\n=== gclog seed %d ===\n%s", r.Seed, r.GCLog)
			}
			if r.FlightDump != "" {
				fmt.Fprintf(f, "\n=== flight recorder seed %d ===\n%s", r.Seed, r.FlightDump)
			}
		}
	}
	return res.Failures > 0, nil
}

func parseConfigs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad config id %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

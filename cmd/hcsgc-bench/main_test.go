package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"hcsgc"
	"hcsgc/internal/bench"
)

func TestParseConfigs(t *testing.T) {
	got, err := parseConfigs("0, 4,16")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 4 || got[2] != 16 {
		t.Fatalf("parseConfigs = %v", got)
	}
	if _, err := parseConfigs("0,x"); err == nil {
		t.Fatal("bad config id must error")
	}
	if _, err := parseConfigs(""); err == nil {
		t.Fatal("empty string must error (empty field)")
	}
}

func TestRunOneTables(t *testing.T) {
	for _, id := range []string{"table1", "table2"} {
		if err := runOne(id, 0, 0, 0, "", true, nil, nil); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

func TestRunOneUnknown(t *testing.T) {
	if err := runOne("nonesuch", 0, 0, 0, "", true, nil, nil); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunOneTinyFigure(t *testing.T) {
	if err := runOne("fig13", 1, 0.01, 1, "0,5", true, nil, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRunOneWithTelemetry drives a tiny experiment with the telemetry
// sink attached (the -telemetry-addr path) and checks that the metrics
// endpoint would serve the core schema afterwards.
func TestRunOneWithTelemetry(t *testing.T) {
	sink := hcsgc.NewTelemetrySink()
	if err := runOne("fig4", 1, 0.005, 1, "0,4", true, nil, sink); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	sink.Metrics().WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"hcsgc_gc_cycles_total",
		`hcsgc_reloc_objects_total{who="gc"}`,
		`hcsgc_reloc_objects_total{who="mutator"}`,
		"hcsgc_page_hotmap_density",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRunLatencyTiny drives the -latency-report mode end to end on a tiny
// workload, with the telemetry sink attached so the HDR summaries and MMU
// gauges land in the exposition.
func TestRunLatencyTiny(t *testing.T) {
	sink := hcsgc.NewTelemetrySink()
	// Scale 0.03 is the smallest fig4 that actually triggers GC cycles
	// (ValidateLatencyAB requires recorded pauses).
	if err := runLatency("fig4", 1, 0.03, 1, "3,4", "", true, sink); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	sink.Metrics().WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE hcsgc_pause_cycles summary",
		`hcsgc_pause_cycles{phase="stw1",quantile="0.99"}`,
		`hcsgc_mmu_ratio{window_cycles="100000"}`,
		`hcsgc_barrier_path_total{path="relocate"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRunLatencyBadConfigs rejects a malformed -configs pair.
func TestRunLatencyBadConfigs(t *testing.T) {
	if err := runLatency("fig4", 1, 0.005, 1, "3", "", true, nil); err == nil {
		t.Fatal("single config id must error")
	}
}

// TestWriteList pins the -list output shape: every experiment id leads
// its line with a one-line description after it, and every report mode
// is enumerated.
func TestWriteList(t *testing.T) {
	var b strings.Builder
	writeList(&b)
	out := b.String()
	for _, id := range []string{"fig4", "fig13", "kv", "table2"} {
		found := false
		for _, line := range strings.Split(out, "\n") {
			fields := strings.Fields(line)
			if len(fields) > 1 && fields[0] == id {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("-list output missing described entry for %q:\n%s", id, out)
		}
	}
	for _, mode := range []string{"-locality", "-latency-report", "-kv-report", "-tail-report", "-chaos", "ablate:"} {
		if !strings.Contains(out, mode) {
			t.Errorf("-list output missing %q", mode)
		}
	}
}

// TestRunKVTiny drives the -kv-report mode end to end at tiny scale with
// the telemetry sink attached, writing the JSON artifact, and checks the
// hcsgc_kv_* families land in the exposition.
func TestRunKVTiny(t *testing.T) {
	sink := hcsgc.NewTelemetrySink()
	dir := t.TempDir()
	jsonPath := dir + "/kv-report.json"
	benchOut := dir + "/BENCH_kv.json"
	if err := runKV(1, 0.01, 1, "3,4", jsonPath, benchOut, "", true, sink); err != nil {
		t.Fatal(err)
	}
	// The normalized artifact round-trips and compares clean against
	// itself (the CI baseline-guard path).
	art, err := bench.ReadArtifactFile(benchOut)
	if err != nil {
		t.Fatalf("bench artifact: %v", err)
	}
	if art.Experiment != "kv" || len(art.Metrics) == 0 {
		t.Fatalf("bench artifact malformed: %+v", art)
	}
	if warns := bench.CompareArtifacts(art, art, 0.10); len(warns) != 0 {
		t.Fatalf("self-comparison produced warnings: %v", warns)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("kv json artifact: %v", err)
	}
	var ab bench.KVAB
	if err := json.Unmarshal(data, &ab); err != nil {
		t.Fatalf("kv json artifact decode: %v", err)
	}
	if err := bench.ValidateKVAB(&ab); err != nil {
		t.Fatalf("kv json artifact invalid: %v", err)
	}
	var b strings.Builder
	sink.Metrics().WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`hcsgc_kv_requests_total{op="get"}`,
		`hcsgc_kv_lookups_total{result="hit"}`,
		`hcsgc_kv_request_cycles{phase="steady",quantile="0.999"}`,
		"hcsgc_kv_sessions_retired_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRunKVBadConfigs rejects a malformed -configs pair.
func TestRunKVBadConfigs(t *testing.T) {
	if err := runKV(1, 0.01, 1, "3,4,16", "", "", "", true, nil); err == nil {
		t.Fatal("three config ids must error")
	}
	if err := runTail(1, 0.01, 1, "3,4,16", 0, "", true, nil); err == nil {
		t.Fatal("three config ids must error for -tail-report too")
	}
}

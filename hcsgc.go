// Package hcsgc is the public API of the HCSGC reproduction: a managed
// heap with a ZGC-style mostly-concurrent mark-compact collector extended
// with hot/cold object segregation, as described in "Improving Program
// Locality in the GC using Hotness" (Yang, Österlund, Wrigstad, PLDI 2020).
//
// A Runtime bundles the simulated heap, the collector, the cache-hierarchy
// model that measures locality, and a machine model that folds cycle
// ledgers into execution time. Application threads attach as Mutators;
// every object access goes through the collector's load barrier and is
// charged to the mutator's simulated core.
//
// Minimal use:
//
//	rt := hcsgc.MustNewRuntime(hcsgc.Options{
//		HeapMaxBytes: 64 << 20,
//		Knobs:        hcsgc.Knobs{Hotness: true, LazyRelocate: true},
//	})
//	defer rt.Close()
//	node := rt.Types.Register("node", 2, []int{0})
//	m := rt.NewMutator(8)
//	obj := m.Alloc(node)
//	m.SetRoot(0, obj)
//	...
package hcsgc

import (
	"io"
	"sync"
	"time"

	"hcsgc/internal/contention"
	"hcsgc/internal/core"
	"hcsgc/internal/faultinject"
	"hcsgc/internal/heap"
	"hcsgc/internal/locality"
	"hcsgc/internal/machine"
	"hcsgc/internal/objmodel"
	"hcsgc/internal/overload"
	"hcsgc/internal/signals"
	"hcsgc/internal/simmem"
	"hcsgc/internal/telemetry"
	"hcsgc/internal/telemetry/latency"
)

// Re-exported types so users never import internal packages.
type (
	// Knobs are the HCSGC tuning knobs from Table 2 of the paper.
	Knobs = core.Knobs
	// CostModel holds abstract operation costs in cycles.
	CostModel = core.CostModel
	// Mutator is an application thread's handle onto the managed heap.
	Mutator = core.Mutator
	// Ref is a colored reference to a heap object.
	Ref = heap.Ref
	// Type describes an object layout.
	Type = objmodel.Type
	// GCStats is a snapshot of collector activity.
	GCStats = core.Stats
	// CycleStats records one GC cycle.
	CycleStats = core.CycleStats
	// MemStats is the process-wide cache-model counter snapshot.
	MemStats = simmem.SystemStats
	// Machine is the core-count/clock model used for execution time.
	Machine = machine.Model
	// TelemetrySink is the live observability surface: event recorder,
	// metrics registry, and HTTP exporters (see internal/telemetry).
	TelemetrySink = telemetry.Sink
	// LocalityProfiler samples the mutator access stream for reuse
	// distance, stream coverage, page entropy and segregation purity
	// (see internal/locality).
	LocalityProfiler = locality.Profiler
	// LocalityConfig tunes the locality profiler.
	LocalityConfig = locality.Config
	// LocalityReport is a locality-profiler snapshot.
	LocalityReport = locality.Report
	// LocalityStats is one interval's derived locality measurements.
	LocalityStats = locality.Stats
	// FaultInjector is the seeded, deterministic fault-injection plane
	// (see internal/faultinject). Nil = disarmed, one branch per site.
	FaultInjector = faultinject.Injector
	// FaultConfig configures a FaultInjector.
	FaultConfig = faultinject.Config
	// HeapVerifier is the opt-in STW heap-invariant verifier
	// (see internal/heap). Nil = detached, one branch per phase boundary.
	HeapVerifier = heap.Verifier
	// HeapViolation is one invariant violation found by the verifier.
	HeapViolation = heap.Violation
	// OutOfMemoryError is the structured error returned (or carried by the
	// panic of the legacy Alloc wrappers) when the allocation-stall retry
	// budget is exhausted.
	OutOfMemoryError = core.OutOfMemoryError
	// LatencyTracker is the latency-attribution plane: HDR pause/phase/
	// stall distributions, MMU curves, barrier slow-path profiling and the
	// flight recorder (see internal/telemetry/latency). On by default;
	// Options.DisableLatency turns it off.
	LatencyTracker = latency.Tracker
	// LatencyConfig tunes the latency tracker.
	LatencyConfig = latency.Config
	// LatencyReport is a latency-tracker snapshot.
	LatencyReport = latency.Report
	// LatencyDist is one HDR distribution summary inside a LatencyReport.
	LatencyDist = latency.Dist
	// FlightRecord is one GC cycle's flight-recorder entry.
	FlightRecord = latency.CycleRecord
	// MMUReport is the minimum-mutator-utilization curve snapshot.
	MMUReport = latency.MMUReport
	// SignalPlane is the unified per-cycle GC signal plane: one immutable
	// CycleSignals record per cycle boundary with EWMA/trend derivations
	// and anomaly flags (see internal/signals). On by default;
	// Options.DisableSignals turns it off. This record is the sensor bus
	// the ROADMAP item 4 online controller consumes.
	SignalPlane = signals.Plane
	// SignalsConfig tunes the signal plane.
	SignalsConfig = signals.Config
	// CycleSignals is one GC cycle's unified signal record.
	CycleSignals = signals.CycleSignals
	// SignalsSnapshot is the /signals endpoint payload.
	SignalsSnapshot = signals.Snapshot
	// ContentionPlane is the contention & scalability attribution plane:
	// per-site lock acquisition/contended counts and wait histograms,
	// CAS retry profiling, and GC-worker balance (see
	// internal/contention). On by default; Options.DisableContention
	// turns it off. Its ranked snapshot is the serialization list
	// ROADMAP item 1's sharding work starts from.
	ContentionPlane = contention.Plane
	// ContentionSnapshot is the /contention endpoint payload.
	ContentionSnapshot = contention.Snapshot
	// TailAttributor classifies SLO-violating requests by cause
	// (stw-pause / alloc-stall / queued-behind-stall / service) and links
	// them to the responsible cycle's CycleSignals record.
	TailAttributor = signals.TailAttributor
	// TailConfig tunes a TailAttributor.
	TailConfig = signals.TailConfig
	// TailReport is a TailAttributor snapshot (the /tailattr payload).
	TailReport = signals.TailReport
	// TailClassifier is one serving thread's classification front-end.
	TailClassifier = signals.Classifier
	// TailObs is one completed request's raw attribution observation.
	TailObs = signals.Obs
	// DeadlineExceededError is the structured error returned when a
	// per-request allocation budget (Mutator.SetAllocBudget) runs out:
	// the request fails fast instead of joining a stall convoy.
	DeadlineExceededError = core.DeadlineExceededError
	// OverloadController is the serving path's admission-control state
	// machine (Normal → Brownout → Shed with hysteresis), consuming the
	// signal plane and live heap occupancy (see internal/overload).
	OverloadController = overload.Controller
	// OverloadPolicy is the overload plane's tunable configuration.
	OverloadPolicy = overload.Policy
	// OverloadHooks are the controller's levers into the runtime.
	OverloadHooks = overload.Hooks
	// OverloadStats accumulates the overload plane's request-outcome
	// accounting (sheds, fast-fails, retries, goodput/badput).
	OverloadStats = overload.Stats
	// OverloadReport is an overload-plane accounting snapshot (the
	// /overload payload).
	OverloadReport = overload.Report
	// OverloadError is one shed admission decision.
	OverloadError = overload.Error
)

// Sentinel errors for errors.Is against allocation failures.
var (
	// ErrOutOfMemory is in the chain of every exhausted allocation.
	ErrOutOfMemory = core.ErrOutOfMemory
	// ErrHeapFull is the underlying page-commit failure cause.
	ErrHeapFull = heap.ErrHeapFull
	// ErrDeadlineExceeded is in the chain of every allocation aborted by
	// a per-request budget (Mutator.SetAllocBudget).
	ErrDeadlineExceeded = core.ErrDeadlineExceeded
	// ErrOverload is in the chain of every request shed by admission
	// control (OverloadController.Admit).
	ErrOverload = overload.ErrOverload
)

// NewOverloadController builds the admission-control state machine over a
// policy, a signal plane, runtime hooks, and an optional fault injector;
// decisions and outcomes are recorded into stats (which may be shared
// across runs; nil discards them). See internal/overload.
func NewOverloadController(pol OverloadPolicy, plane *SignalPlane, hooks OverloadHooks, inj *FaultInjector, stats *OverloadStats) *OverloadController {
	return overload.NewController(pol, plane, hooks, inj, stats)
}

// NewOverloadStats returns an empty overload accounting accumulator.
func NewOverloadStats() *OverloadStats { return overload.NewStats() }

// NewFaultInjector builds an armed injector from a fault configuration.
// Pass it via Options.FaultInjector.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return faultinject.New(cfg) }

// RandomFaultConfig derives a bounded randomized fault configuration from a
// seed — the chaos soak's per-run schedule. The same seed always yields the
// same configuration and the same injection decisions.
func RandomFaultConfig(seed int64) FaultConfig { return faultinject.Randomized(seed) }

// NewHeapVerifier builds a heap verifier. Pass it via Options.Verifier;
// when Options.Telemetry is also set, its counters are bound into the
// sink's registry as hcsgc_verify_*.
func NewHeapVerifier() *HeapVerifier { return heap.NewVerifier() }

// NewTelemetrySink builds an enabled telemetry sink. Pass it via
// Options.Telemetry (several runtimes may share one sink; its metrics
// then accumulate across them) and serve it with Sink.Serve.
func NewTelemetrySink() *TelemetrySink { return telemetry.NewSink() }

// NewLocalityProfiler builds an enabled locality profiler. Pass it via
// Options.Locality; when Options.Telemetry is also set the runtime binds
// the profiler's metrics into the sink's registry and serves its report
// on the sink's /locality endpoint.
func NewLocalityProfiler(cfg LocalityConfig) *LocalityProfiler { return locality.New(cfg) }

// NewLatencyTracker builds a latency tracker with a non-default
// configuration. Pass it via Options.Latency; a runtime without one (and
// without DisableLatency) creates a default tracker itself.
func NewLatencyTracker(cfg LatencyConfig) *LatencyTracker { return latency.New(cfg) }

// NewSignalPlane builds a signal plane with a non-default configuration.
// Pass it via Options.Signals; a runtime without one (and without
// DisableSignals) creates a default plane itself.
func NewSignalPlane(cfg SignalsConfig) *SignalPlane { return signals.New(cfg) }

// NewContentionPlane builds a contention plane. Pass it via
// Options.Contention to share one plane across runtimes; a runtime
// without one (and without DisableContention) creates its own.
func NewContentionPlane() *ContentionPlane { return contention.New() }

// NewTailAttributor builds a request-level tail attributor. Serving
// harnesses create per-thread classifiers from it via
// TailAttributor.Classifier(rt.Signals).
func NewTailAttributor(cfg TailConfig) *TailAttributor { return signals.NewTailAttributor(cfg) }

// NullRef is the null reference.
const NullRef = heap.NullRef

// Machine model presets (see internal/machine).
var (
	// LaptopMachine models the paper's 2-core/4-thread i7-4600U.
	LaptopMachine = machine.Laptop()
	// SingleCoreMachine models the taskset run of Fig. 6.
	SingleCoreMachine = machine.SingleCore()
	// ServerMachine models the 32-core Opteron used for SPECjbb.
	ServerMachine = machine.Server()
)

// Options configures a Runtime. The zero value is a usable 256 MB heap
// with original-ZGC behaviour on the laptop machine model.
type Options struct {
	// HeapMaxBytes is the committed-heap limit (like -Xmx). 0 = 256 MB.
	HeapMaxBytes uint64
	// Knobs are the HCSGC tuning knobs; the zero value is original ZGC.
	Knobs Knobs
	// GCWorkers is the concurrent GC thread count. 0 = 2.
	GCWorkers int
	// TriggerPercent is the occupancy that triggers a cycle. 0 = 70.
	TriggerPercent float64
	// EvacThreshold is the evacuation live-ratio threshold. 0 = 0.75
	// (the paper's 75%).
	EvacThreshold float64
	// Machine is the execution-time model. Zero value = LaptopMachine.
	Machine Machine
	// MemConfig overrides the cache hierarchy; nil = the paper's laptop
	// (32KB L1 / 256KB L2 / 4MB LLC, stream prefetcher).
	MemConfig *simmem.HierarchyConfig
	// DisableMemModel turns off cache simulation entirely (unit tests,
	// functional runs).
	DisableMemModel bool
	// Costs overrides the abstract cost model; zero value = defaults.
	Costs CostModel
	// StartDriver launches the background occupancy-triggered GC driver.
	StartDriver bool
	// Telemetry attaches a live observability sink (nil = disabled; the
	// disabled instrumentation costs one predictable branch per site).
	Telemetry *TelemetrySink
	// Locality attaches a sampling locality profiler (nil = disabled;
	// each mutator access site then costs one predictable branch).
	Locality *LocalityProfiler
	// Latency overrides the latency tracker (HDR pause/phase/stall
	// distributions, MMU, barrier profile, flight recorder). Nil = the
	// runtime builds one with default configuration; the plane is
	// always-on unless DisableLatency is set.
	Latency *LatencyTracker
	// DisableLatency turns the latency-attribution plane off entirely
	// (each instrumentation site then costs one predictable branch).
	DisableLatency bool
	// Signals overrides the unified signal plane. Nil = the runtime
	// builds one with default configuration; the plane is always-on
	// unless DisableSignals is set.
	Signals *SignalPlane
	// DisableSignals turns the signal plane off entirely (the cycle
	// boundary and each allocation then cost one predictable branch).
	DisableSignals bool
	// Contention overrides the contention attribution plane. Nil = the
	// runtime builds one; the plane is always-on unless
	// DisableContention is set.
	Contention *ContentionPlane
	// DisableContention turns the contention plane off entirely (every
	// instrumented lock then behaves as a bare sync.Mutex plus one
	// predictable branch per operation).
	DisableContention bool
	// FaultInjector arms the fault-injection plane (nil = disarmed; each
	// injection point then costs one predictable branch).
	FaultInjector *FaultInjector
	// Verifier attaches the STW heap verifier, run at the end of every
	// pause (nil = detached).
	Verifier *HeapVerifier
	// StallRetries bounds the allocation-stall loop: after this many
	// stall-and-collect attempts the allocator returns ErrOutOfMemory.
	// 0 = 16.
	StallRetries int
	// StallBackoff sleeps (attempt-1)*StallBackoff between stall retries.
	StallBackoff time.Duration
	// StallDeadline bounds the stall loop by wall clock; 0 = no deadline.
	StallDeadline time.Duration
	// STWWatchdog is the wall-clock deadline for mutators to reach a
	// stop-the-world safepoint before the collector emits a diagnostic
	// flight-recorder dump naming the stragglers. 0 = 30s; negative
	// disables the watchdog.
	STWWatchdog time.Duration
}

// Runtime bundles the full system.
type Runtime struct {
	Heap      *heap.Heap
	Collector *core.Collector
	Mem       *simmem.Hierarchy // nil when DisableMemModel
	Types     *objmodel.Registry
	Machine   Machine
	// Latency is the runtime's latency tracker; nil when DisableLatency.
	Latency *LatencyTracker
	// Signals is the runtime's signal plane; nil when DisableSignals.
	Signals *SignalPlane
	// Contention is the runtime's contention attribution plane; nil when
	// DisableContention.
	Contention *ContentionPlane

	mu       sync.Mutex
	mutators []*Mutator
	closed   bool
}

// NewRuntime builds a runtime from options.
func NewRuntime(opts Options) (*Runtime, error) {
	ctn := opts.Contention
	if ctn == nil && !opts.DisableContention {
		ctn = contention.New()
	}
	if opts.DisableContention {
		ctn = nil
	}
	var mem *simmem.Hierarchy
	if !opts.DisableMemModel {
		cfg := simmem.DefaultConfig()
		if opts.MemConfig != nil {
			cfg = *opts.MemConfig
		}
		var err error
		mem, err = simmem.NewHierarchy(cfg)
		if err != nil {
			return nil, err
		}
		if ctn != nil {
			mem.SetContention(ctn)
		}
	}
	h := heap.New(heap.Config{
		MaxBytes:        opts.HeapMaxBytes,
		EnableTinyClass: opts.Knobs.TinyPages,
		Injector:        opts.FaultInjector,
		Contention:      ctn,
	}, mem)
	h.SetRecorder(opts.Telemetry.Recorder())
	if opts.Verifier != nil {
		if opts.Telemetry != nil {
			opts.Verifier.BindTelemetry(opts.Telemetry.Metrics())
		}
		h.SetVerifier(opts.Verifier)
	}
	lat := opts.Latency
	if lat == nil && !opts.DisableLatency {
		lat = latency.New(latency.Config{})
	}
	if opts.DisableLatency {
		lat = nil
	}
	sig := opts.Signals
	if sig == nil && !opts.DisableSignals {
		sig = signals.New(signals.Config{})
	}
	if opts.DisableSignals {
		sig = nil
	}
	types := objmodel.NewRegistry()
	col, err := core.New(h, types, core.Config{
		Knobs:          opts.Knobs,
		Costs:          opts.Costs,
		GCWorkers:      opts.GCWorkers,
		TriggerPercent: opts.TriggerPercent,
		EvacThreshold:  opts.EvacThreshold,
		Telemetry:      opts.Telemetry,
		Locality:       opts.Locality,
		Latency:        lat,
		Signals:        sig,
		Contention:     ctn,
		FaultInjector:  opts.FaultInjector,
		StallRetries:   opts.StallRetries,
		StallBackoff:   opts.StallBackoff,
		StallDeadline:  opts.StallDeadline,
		STWWatchdog:    opts.STWWatchdog,
	})
	if err != nil {
		return nil, err
	}
	opts.Telemetry.SetGCLog(col.WriteGCLog)
	if opts.Locality != nil && opts.Telemetry != nil {
		opts.Locality.BindTelemetry(opts.Telemetry.Metrics(), opts.Telemetry.Recorder())
		prof := opts.Locality
		opts.Telemetry.SetLocality(func() any { return prof.Report() })
	}
	if lat != nil && opts.Telemetry != nil {
		lat.BindTelemetry(opts.Telemetry.Metrics(), opts.Telemetry.Recorder())
		tracker := lat
		opts.Telemetry.SetMMU(func() any { return tracker.MMUSnapshot() })
		opts.Telemetry.SetFlightRecorder(func(w io.Writer) error {
			return tracker.WriteFlight(w, "on-demand")
		})
		opts.Telemetry.SetFlightRearm(tracker.Rearm)
	}
	if sig != nil && opts.Telemetry != nil {
		sig.BindTelemetry(opts.Telemetry.Metrics(), opts.Telemetry.Recorder())
		plane := sig
		opts.Telemetry.SetSignals(func() any { return plane.Snapshot() })
	}
	if ctn != nil && opts.Telemetry != nil {
		// The registry and recorder cannot adopt contention.Mutex (import
		// cycle through telemetry/latency); they self-report as sources.
		reg, rec := opts.Telemetry.Metrics(), opts.Telemetry.Recorder()
		ctn.AddSource("telemetry.registryMu", func() (uint64, uint64) { return reg.MuStats() })
		ctn.AddSource("telemetry.recorderShards", func() (uint64, uint64) { return rec.MuStats() })
		ctn.BindTelemetry(reg, rec)
		cplane := ctn
		opts.Telemetry.SetContention(func() any { return cplane.Snapshot() })
	}
	mach := opts.Machine
	if mach.Cores == 0 {
		mach = LaptopMachine
	}
	rt := &Runtime{
		Heap:       h,
		Collector:  col,
		Mem:        mem,
		Types:      types,
		Machine:    mach,
		Latency:    lat,
		Signals:    sig,
		Contention: ctn,
	}
	if opts.StartDriver {
		col.StartDriver()
	}
	return rt, nil
}

// MustNewRuntime is NewRuntime but panics on error.
func MustNewRuntime(opts Options) *Runtime {
	rt, err := NewRuntime(opts)
	if err != nil {
		panic(err)
	}
	return rt
}

// NewMutator attaches an application thread with the given root-slot
// count. The runtime remembers it for the final execution-time ledger.
func (rt *Runtime) NewMutator(rootSlots int) *Mutator {
	m := rt.Collector.NewMutator(rootSlots)
	rt.mu.Lock()
	rt.mutators = append(rt.mutators, m)
	rt.mu.Unlock()
	return m
}

// Close stops the background driver. The runtime must not be used after.
func (rt *Runtime) Close() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return
	}
	rt.closed = true
	rt.Collector.StopDriver()
}

// Ledger assembles the machine-model input from every mutator ever
// attached plus the collector's concurrent and pause work.
func (rt *Runtime) Ledger() machine.Ledger {
	rt.mu.Lock()
	muts := make([]*Mutator, len(rt.mutators))
	copy(muts, rt.mutators)
	rt.mu.Unlock()
	l := machine.Ledger{}
	for _, m := range muts {
		l.MutatorCycles = append(l.MutatorCycles, m.Cycles())
	}
	st := rt.Collector.Stats()
	l.GCCycles = st.GCWorkerCycles
	l.PauseCycles = st.TotalPauseCycles
	return l
}

// ExecSeconds returns the simulated wall-clock execution time so far.
func (rt *Runtime) ExecSeconds() float64 {
	return rt.Machine.ExecSeconds(rt.Ledger())
}

// MemStats snapshots the process-wide cache counters (perf analogue).
// Returns the zero value when the memory model is disabled.
func (rt *Runtime) MemStats() MemStats {
	if rt.Mem == nil {
		return MemStats{}
	}
	return rt.Mem.Stats()
}

// GC runs one synchronous collection cycle (no mutator may be running on
// the calling goroutine; use Mutator.RequestGC from mutator context).
func (rt *Runtime) GC() {
	rt.Collector.Collect("explicit")
}

// Benchmarks regenerating the paper's tables and figures in miniature:
// one testing.B benchmark per table/figure. Each benchmark runs the
// corresponding workload under the ZGC baseline (Config 0) and a
// representative HCSGC configuration, reporting simulated execution time
// and LLC misses as custom metrics. The full sweeps over all 19
// configurations with bootstrap statistics live in cmd/hcsgc-bench.
package hcsgc_test

import (
	"fmt"
	"testing"

	"hcsgc"
	"hcsgc/internal/bench"
	"hcsgc/internal/graphgen"
	"hcsgc/internal/workloads"
)

// benchScale keeps each single run fast; hcsgc-bench uses larger scales.
const benchScale = 0.02

// benchConfigs is the config subset exercised per figure: the baseline and
// the paper's strongest configuration family.
var benchConfigs = []int{0, 4, 16}

func benchmarkFigure(b *testing.B, id string) {
	w, err := workloads.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range benchConfigs {
		knobs := bench.KnobsFor(cfg)
		b.Run(fmt.Sprintf("config%d", cfg), func(b *testing.B) {
			var simSecs, llc float64
			for i := 0; i < b.N; i++ {
				res, err := w.Run(workloads.RunConfig{
					Knobs: knobs,
					Seed:  int64(i + 1),
					Scale: benchScale,
				})
				if err != nil {
					b.Fatal(err)
				}
				simSecs += res.ExecSeconds
				llc += float64(res.LLCMisses)
			}
			b.ReportMetric(simSecs/float64(b.N), "sim-s/run")
			b.ReportMetric(llc/float64(b.N), "LLCmiss/run")
		})
	}
}

func BenchmarkFig4Synthetic(b *testing.B)   { benchmarkFigure(b, "fig4") }
func BenchmarkFig5Phases(b *testing.B)      { benchmarkFigure(b, "fig5") }
func BenchmarkFig6Overload(b *testing.B)    { benchmarkFigure(b, "fig6") }
func BenchmarkFig7CCUK(b *testing.B)        { benchmarkFigure(b, "fig7") }
func BenchmarkFig8CCEnwiki(b *testing.B)    { benchmarkFigure(b, "fig8") }
func BenchmarkFig9MCUK(b *testing.B)        { benchmarkFigure(b, "fig9") }
func BenchmarkFig10MCEnwiki(b *testing.B)   { benchmarkFigure(b, "fig10") }
func BenchmarkFig11Tradebeans(b *testing.B) { benchmarkFigure(b, "fig11") }
func BenchmarkFig12H2(b *testing.B)         { benchmarkFigure(b, "fig12") }
func BenchmarkFig13SPECjbb(b *testing.B)    { benchmarkFigure(b, "fig13") }

// BenchmarkTelemetryOverhead measures the cost of the telemetry
// instrumentation on a representative workload run: "off" is a nil sink
// (every instrumentation site reduces to one predictable nil check, the
// production default), "on" attaches a live recorder and registry. The
// acceptance bar is "off" within 5% of the pre-telemetry baseline; "on"
// quantifies the price of enabling observability.
func BenchmarkTelemetryOverhead(b *testing.B) {
	w, err := workloads.Get("fig4")
	if err != nil {
		b.Fatal(err)
	}
	knobs := bench.KnobsFor(4)
	for _, mode := range []struct {
		name string
		sink func() *hcsgc.TelemetrySink
	}{
		{"off", func() *hcsgc.TelemetrySink { return nil }},
		{"on", hcsgc.NewTelemetrySink},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.Run(workloads.RunConfig{
					Knobs:     knobs,
					Seed:      int64(i + 1),
					Scale:     benchScale,
					Telemetry: mode.sink(),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLocalityOverhead measures the cost of the locality profiler on
// a representative workload run: "off" is a nil profiler — every access
// site reduces to one predictable nil check, the same discipline (and
// therefore the same baseline) as BenchmarkTelemetryOverhead's "off" mode.
// "shift4" attaches a live profiler sampling every access (the burst is
// clamped to the period, so shifts <= 8 are exhaustive); "shift12" samples
// one 256-access burst per 4096 accesses (1/16), the low-overhead setting.
func BenchmarkLocalityOverhead(b *testing.B) {
	w, err := workloads.Get("fig4")
	if err != nil {
		b.Fatal(err)
	}
	knobs := bench.KnobsFor(4)
	for _, mode := range []struct {
		name string
		prof func() *hcsgc.LocalityProfiler
	}{
		{"off", func() *hcsgc.LocalityProfiler { return nil }},
		{"shift4", func() *hcsgc.LocalityProfiler {
			return hcsgc.NewLocalityProfiler(hcsgc.LocalityConfig{SamplePeriodShift: 4})
		}},
		{"shift12", func() *hcsgc.LocalityProfiler {
			return hcsgc.NewLocalityProfiler(hcsgc.LocalityConfig{SamplePeriodShift: 12})
		}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.Run(workloads.RunConfig{
					Knobs:    knobs,
					Seed:     int64(i + 1),
					Scale:    benchScale,
					Locality: mode.prof(),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFaultInjectOverhead measures the cost of the fault-injection
// plane and the STW verifier on a representative workload run: "off" is a
// nil injector — every injection point reduces to one predictable nil
// check, the production default and the acceptance bar (within noise of
// the pre-faultinject baseline). "armed-zero" threads a live injector
// whose schedule never fires, pricing the per-point decision path;
// "verify" additionally attaches the STW heap verifier, pricing a full
// heap walk per pause.
func BenchmarkFaultInjectOverhead(b *testing.B) {
	w, err := workloads.Get("fig4")
	if err != nil {
		b.Fatal(err)
	}
	knobs := bench.KnobsFor(4)
	for _, mode := range []struct {
		name string
		inj  func() *hcsgc.FaultInjector
		ver  func() *hcsgc.HeapVerifier
	}{
		{"off", func() *hcsgc.FaultInjector { return nil }, func() *hcsgc.HeapVerifier { return nil }},
		{"armed-zero", func() *hcsgc.FaultInjector {
			return hcsgc.NewFaultInjector(hcsgc.FaultConfig{})
		}, func() *hcsgc.HeapVerifier { return nil }},
		{"verify", func() *hcsgc.FaultInjector {
			return hcsgc.NewFaultInjector(hcsgc.FaultConfig{})
		}, hcsgc.NewHeapVerifier},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.Run(workloads.RunConfig{
					Knobs:         knobs,
					Seed:          int64(i + 1),
					Scale:         benchScale,
					FaultInjector: mode.inj(),
					Verifier:      mode.ver(),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLatencyOverhead measures the cost of the latency attribution
// plane on a representative workload run: "off" disables the tracker —
// every recording site reduces to one predictable nil check — while
// "always-on" is the production default, with HDR pause/phase recording,
// MMU bookkeeping, barrier-hit counters and the flight-recorder ring all
// live. The acceptance bar is "always-on" within noise of "off": exact
// barrier hits are single atomic adds, latencies are 1-in-64 sampled, and
// everything else runs at cycle boundaries.
func BenchmarkLatencyOverhead(b *testing.B) {
	w, err := workloads.Get("fig4")
	if err != nil {
		b.Fatal(err)
	}
	knobs := bench.KnobsFor(4)
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"off", true},
		{"always-on", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.Run(workloads.RunConfig{
					Knobs:          knobs,
					Seed:           int64(i + 1),
					Scale:          benchScale,
					DisableLatency: mode.disable,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSignalsOverhead measures the cost of the unified signal plane
// on a representative workload run: "off" disables the plane — the cycle
// hook reduces to one predictable nil check and mutators skip the
// allocation-byte ledger — while "always-on" is the production default,
// snapshotting every cycle's CycleSignals record (flight record, heap and
// locality signals, EWMA/trend derivations, anomaly flags) into the
// bounded ring. The acceptance bar is "always-on" within noise of "off":
// the per-allocation cost is one atomic add, and everything else runs
// once per GC cycle.
func BenchmarkSignalsOverhead(b *testing.B) {
	w, err := workloads.Get("fig4")
	if err != nil {
		b.Fatal(err)
	}
	knobs := bench.KnobsFor(4)
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"off", true},
		{"always-on", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.Run(workloads.RunConfig{
					Knobs:          knobs,
					Seed:           int64(i + 1),
					Scale:          benchScale,
					DisableSignals: mode.disable,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkContentionOverhead measures the cost of the contention
// attribution plane on a representative workload run: "off" disables the
// plane — every instrumented Mutex reduces to a bare sync.Mutex behind
// one predictable nil check, and the CAS sites to the same — while
// "always-on" is the production default: each instrumented acquisition
// is one TryLock plus one atomic add on the fast path (two more adds and
// a wait-histogram record only when actually contended), and each CAS
// site one atomic add per op. The acceptance bar is "always-on" within
// noise of "off". The micro cost of the wrapper itself is priced in
// internal/contention's BenchmarkMutex.
func BenchmarkContentionOverhead(b *testing.B) {
	w, err := workloads.Get("fig4")
	if err != nil {
		b.Fatal(err)
	}
	knobs := bench.KnobsFor(4)
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"off", true},
		{"always-on", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.Run(workloads.RunConfig{
					Knobs:             knobs,
					Seed:              int64(i + 1),
					Scale:             benchScale,
					DisableContention: mode.disable,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1PageAlloc measures the page allocator underlying the
// Table 1 size classes.
func BenchmarkTable1PageAlloc(b *testing.B) {
	rt := hcsgc.MustNewRuntime(hcsgc.Options{HeapMaxBytes: 1 << 30, DisableMemModel: true})
	defer rt.Close()
	m := rt.NewMutator(1)
	defer m.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AllocWordArray(30) // small-class allocation through the TLAB
	}
}

// BenchmarkTable2ConfigSweep measures one tiny workload run per Table 2
// configuration, confirming all 19 are runnable.
func BenchmarkTable2ConfigSweep(b *testing.B) {
	w, _ := workloads.Get("fig4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := bench.AllConfigs()[i%bench.NumConfigs]
		if _, err := w.Run(workloads.RunConfig{Knobs: bench.KnobsFor(cfg), Seed: 1, Scale: 0.005}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3GraphGen measures generation of the Table 3 graph inputs
// at a reduced scale.
func BenchmarkTable3GraphGen(b *testing.B) {
	for _, p := range graphgen.Presets() {
		b.Run(p.Name, func(b *testing.B) {
			params := p.Scaled(0.1)
			for i := 0; i < b.N; i++ {
				g := graphgen.MustGenerate(params)
				if g.Nodes() == 0 {
					b.Fatal("empty graph")
				}
			}
		})
	}
}

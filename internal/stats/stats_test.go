package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, tc := range cases {
		if got := Quantile(s, tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile must be 0")
	}
	if Quantile([]float64{7}, 0.9) != 7 {
		t.Error("singleton quantile must be the element")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	s := []float64{0, 10}
	if got := Quantile(s, 0.5); got != 5 {
		t.Fatalf("interpolated median = %v, want 5", got)
	}
}

func TestBoxPlotBasic(t *testing.T) {
	sample := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	b := NewBoxPlot(sample)
	if b.Median != 5 {
		t.Errorf("median = %v, want 5", b.Median)
	}
	if b.Q1 != 3 || b.Q3 != 7 {
		t.Errorf("quartiles = %v/%v, want 3/7", b.Q1, b.Q3)
	}
	if b.IQR != 4 {
		t.Errorf("IQR = %v, want 4", b.IQR)
	}
	if len(b.Mild) != 0 || len(b.Extreme) != 0 {
		t.Error("uniform sample has no outliers")
	}
	if b.WhiskerLow != 1 || b.WhiskerHigh != 9 {
		t.Errorf("whiskers = %v/%v, want 1/9", b.WhiskerLow, b.WhiskerHigh)
	}
}

func TestBoxPlotOutlierClassification(t *testing.T) {
	// Base cluster (Q1=12.25, Q3=16.75, IQR=4.5): mild outliers beyond
	// 23.5, extreme beyond 30.25.
	sample := []float64{10, 11, 12, 13, 14, 15, 16, 17, 25, 40}
	b := NewBoxPlot(sample)
	if len(b.Mild) != 1 || b.Mild[0] != 25 {
		t.Errorf("mild outliers = %v, want [25] (Q1=%v Q3=%v IQR=%v)", b.Mild, b.Q1, b.Q3, b.IQR)
	}
	if len(b.Extreme) != 1 || b.Extreme[0] != 40 {
		t.Errorf("extreme outliers = %v, want [40]", b.Extreme)
	}
	if b.WhiskerHigh != 17 {
		t.Errorf("whisker high = %v, want 17 (outliers excluded)", b.WhiskerHigh)
	}
}

func TestBoxPlotDoesNotMutateInput(t *testing.T) {
	sample := []float64{3, 1, 2}
	NewBoxPlot(sample)
	if sample[0] != 3 || sample[1] != 1 || sample[2] != 2 {
		t.Fatal("NewBoxPlot must not sort the caller's slice")
	}
}

func TestBootstrapMeanConstantSample(t *testing.T) {
	b := BootstrapMean([]float64{5, 5, 5, 5}, 1000, 1)
	if b.Mean != 5 || b.CILow != 5 || b.CIHigh != 5 {
		t.Fatalf("constant sample bootstrap = %+v, want all 5", b)
	}
}

func TestBootstrapMeanReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sample := make([]float64, 30)
	for i := range sample {
		sample[i] = 100 + rng.NormFloat64()*10
	}
	b := BootstrapMean(sample, DefaultResamples, 3)
	if math.Abs(b.Mean-Mean(sample)) > 1 {
		t.Fatalf("bootstrap mean %v far from sample mean %v", b.Mean, Mean(sample))
	}
	if b.CILow >= b.Mean || b.CIHigh <= b.Mean {
		t.Fatalf("CI [%v, %v] must straddle the mean %v", b.CILow, b.CIHigh, b.Mean)
	}
	width := b.CIHigh - b.CILow
	if width <= 0 || width > 20 {
		t.Fatalf("CI width %v implausible for n=30, sd=10", width)
	}
}

func TestBootstrapDeterministicForSeed(t *testing.T) {
	sample := []float64{1, 5, 3, 8, 2}
	a := BootstrapMean(sample, 500, 42)
	b := BootstrapMean(sample, 500, 42)
	if a != b {
		t.Fatal("same seed must give identical bootstrap results")
	}
	c := BootstrapMean(sample, 500, 43)
	if a == c {
		t.Fatal("different seeds should differ (with overwhelming probability)")
	}
}

func TestBootstrapEmpty(t *testing.T) {
	b := BootstrapMean(nil, 100, 1)
	if b.Mean != 0 {
		t.Fatal("empty sample bootstrap mean must be 0")
	}
}

func TestBootstrapDefaultResamples(t *testing.T) {
	b := BootstrapMean([]float64{1, 2}, 0, 1)
	if b.Resample != DefaultResamples {
		t.Fatalf("resamples = %d, want default %d", b.Resample, DefaultResamples)
	}
}

func TestOverlaps(t *testing.T) {
	a := Bootstrap{CILow: 1, CIHigh: 3}
	b := Bootstrap{CILow: 2, CIHigh: 4}
	c := Bootstrap{CILow: 3.5, CIHigh: 5}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("overlapping CIs reported disjoint")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("disjoint CIs reported overlapping")
	}
	if !b.Overlaps(c) {
		t.Error("touching CIs count as overlapping")
	}
}

func TestNormalizedDelta(t *testing.T) {
	if got := NormalizedDelta(70, 100); got != -0.3 {
		t.Fatalf("delta = %v, want -0.3 (30%% speedup)", got)
	}
	if got := NormalizedDelta(130, 100); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("delta = %v, want 0.3", got)
	}
	if NormalizedDelta(5, 0) != 0 {
		t.Fatal("zero baseline must not divide")
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
	if Median([]float64{5, 1, 3}) != 3 {
		t.Fatal("median wrong")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median wrong")
	}
}

func TestFormatPercent(t *testing.T) {
	if got := FormatPercent(-0.305); got != "-30.5%" {
		t.Fatalf("FormatPercent = %q", got)
	}
	if got := FormatPercent(0.05); got != "+5.0%" {
		t.Fatalf("FormatPercent = %q", got)
	}
}

func TestPropertyQuartilesOrdered(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		b := NewBoxPlot(raw)
		return b.Q1 <= b.Median && b.Median <= b.Q3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBootstrapCIWithinRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sample := make([]float64, 10)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range sample {
			sample[i] = rng.Float64() * 100
			if sample[i] < lo {
				lo = sample[i]
			}
			if sample[i] > hi {
				hi = sample[i]
			}
		}
		b := BootstrapMean(sample, 200, seed)
		return b.CILow >= lo && b.CIHigh <= hi && b.CILow <= b.CIHigh
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Package stats implements the statistical machinery of the paper's §4.2:
// box-plot summaries (quartiles, IQR, mild/extreme outliers, whiskers) and
// bootstrap mean estimates with 95% confidence intervals (10,000 resamples
// with replacement), plus normalisation against a baseline configuration.
package stats

import (
	"fmt"
	"math/rand"
	"sort"
)

// BoxPlot is the five-number summary plus outlier classification used for
// the execution-time plots.
type BoxPlot struct {
	Q1, Median, Q3 float64
	IQR            float64
	// WhiskerLow/High are the furthest points from the median that are not
	// outliers.
	WhiskerLow, WhiskerHigh float64
	// Mild outliers fall outside [Q1-1.5*IQR, Q3+1.5*IQR]; extreme outside
	// [Q1-3*IQR, Q3+3*IQR].
	Mild, Extreme []float64
}

// Quantile returns the q-quantile (0 <= q <= 1) of sorted data using
// linear interpolation between order statistics (type 7, the common
// default).
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// NewBoxPlot computes the box-plot summary of a sample.
func NewBoxPlot(sample []float64) BoxPlot {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	b := BoxPlot{
		Q1:     Quantile(s, 0.25),
		Median: Quantile(s, 0.5),
		Q3:     Quantile(s, 0.75),
	}
	b.IQR = b.Q3 - b.Q1
	mildLo, mildHi := b.Q1-1.5*b.IQR, b.Q3+1.5*b.IQR
	extLo, extHi := b.Q1-3*b.IQR, b.Q3+3*b.IQR
	b.WhiskerLow, b.WhiskerHigh = b.Median, b.Median
	first := true
	for _, v := range s {
		switch {
		case v < extLo || v > extHi:
			b.Extreme = append(b.Extreme, v)
		case v < mildLo || v > mildHi:
			b.Mild = append(b.Mild, v)
		default:
			if first {
				b.WhiskerLow, b.WhiskerHigh = v, v
				first = false
			} else {
				if v < b.WhiskerLow {
					b.WhiskerLow = v
				}
				if v > b.WhiskerHigh {
					b.WhiskerHigh = v
				}
			}
		}
	}
	return b
}

// Bootstrap is a mean estimate with its 95% confidence interval.
type Bootstrap struct {
	Mean     float64
	CILow    float64 // 2.5 percentile of bootstrap means
	CIHigh   float64 // 97.5 percentile of bootstrap means
	Resample int
}

// DefaultResamples matches the paper: 10,000 bootstrap samples.
const DefaultResamples = 10000

// BootstrapMean computes the bootstrap mean estimate and 95% CI with the
// paper's methodology (§4.2): resample with replacement, same size as the
// original, 10,000 times; the estimate is the mean of bootstrap means and
// the CI the 2.5/97.5 percentiles. A seed makes results reproducible.
func BootstrapMean(sample []float64, resamples int, seed int64) Bootstrap {
	if resamples <= 0 {
		resamples = DefaultResamples
	}
	n := len(sample)
	if n == 0 {
		return Bootstrap{Resample: resamples}
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += sample[rng.Intn(n)]
		}
		means[r] = sum / float64(n)
	}
	sort.Float64s(means)
	var total float64
	for _, m := range means {
		total += m
	}
	return Bootstrap{
		Mean:     total / float64(resamples),
		CILow:    Quantile(means, 0.025),
		CIHigh:   Quantile(means, 0.975),
		Resample: resamples,
	}
}

// Overlaps reports whether two confidence intervals overlap. Disjoint
// intervals mean a significant difference at the 95% level (§4.2).
func (b Bootstrap) Overlaps(other Bootstrap) bool {
	return b.CILow <= other.CIHigh && other.CILow <= b.CIHigh
}

// NormalizedDelta returns (b - baseline) / baseline as a fraction:
// negative means b is smaller (a speedup when the metric is time).
func NormalizedDelta(b, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (b - baseline) / baseline
}

// Mean returns the arithmetic mean.
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	var sum float64
	for _, v := range sample {
		sum += v
	}
	return sum / float64(len(sample))
}

// Median returns the sample median.
func Median(sample []float64) float64 {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return Quantile(s, 0.5)
}

// FormatPercent renders a fraction as a signed percentage, e.g. -0.30 ->
// "-30.0%".
func FormatPercent(frac float64) string {
	return fmt.Sprintf("%+.1f%%", frac*100)
}

package simmem

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"hcsgc/internal/contention"
)

// Latencies gives the access cost, in CPU cycles, of a hit at each level of
// the hierarchy. The defaults approximate the paper's i7-4600U (Haswell):
// L1 4 cycles, L2 12, LLC ~40, DRAM ~200. The paper's own argument in §4.4
// ("access latency of LLC is roughly 10x of that of L1") is consistent with
// this model.
type Latencies struct {
	L1  uint64
	L2  uint64
	LLC uint64
	Mem uint64
}

// DefaultLatencies matches the i7-4600U description in §4.
func DefaultLatencies() Latencies {
	return Latencies{L1: 4, L2: 12, LLC: 40, Mem: 200}
}

// HierarchyConfig describes the simulated memory system.
type HierarchyConfig struct {
	L1  CacheConfig
	L2  CacheConfig
	LLC CacheConfig
	Lat Latencies
	// PrefetchDepth is how many lines ahead the per-core stream prefetcher
	// runs; 0 disables prefetching.
	PrefetchDepth int
	// LLCStripes shards the shared LLC lock: the LLC is split into this
	// many independently locked sub-caches, partitioned by set index so
	// hit/miss behaviour is identical to the monolithic cache (high set
	// bits pick the stripe, low bits the set within it). Must be a power
	// of two no larger than the LLC set count; 0 selects the default
	// (8, clamped to the set count). 1 restores the single global lock —
	// the configuration the contention plane measured before this knob
	// existed.
	LLCStripes int
}

// DefaultConfig models the laptop used for all benchmarks except SPECjbb:
// 32KB L1d (8-way), 256KB L2 (8-way), 4MB shared LLC (16-way).
func DefaultConfig() HierarchyConfig {
	return HierarchyConfig{
		L1:            CacheConfig{Name: "L1d", Size: 32 << 10, Ways: 8},
		L2:            CacheConfig{Name: "L2", Size: 256 << 10, Ways: 8},
		LLC:           CacheConfig{Name: "LLC", Size: 4 << 20, Ways: 16},
		Lat:           DefaultLatencies(),
		PrefetchDepth: 4,
	}
}

// ServerConfig models the AMD Opteron 6276 used for SPECjbb: 16KB L1d,
// 2MB L2. The paper's machine has a 6MB LLC; the model requires a
// power-of-two set count, so we use 6MB with 24 ways (256 sets), keeping
// capacity exact.
func ServerConfig() HierarchyConfig {
	return HierarchyConfig{
		L1:            CacheConfig{Name: "L1d", Size: 16 << 10, Ways: 4},
		L2:            CacheConfig{Name: "L2", Size: 2 << 20, Ways: 16},
		LLC:           CacheConfig{Name: "LLC", Size: 6 << 20, Ways: 24},
		Lat:           DefaultLatencies(),
		PrefetchDepth: 4,
	}
}

// Core is the private part of the hierarchy belonging to one hardware
// thread: L1, L2 and the stream prefetcher. Each mutator or GC worker owns
// one Core. Core methods are not safe for concurrent use by multiple
// goroutines; each goroutine must own its Core exclusively.
type Core struct {
	l1  *Cache
	l2  *Cache
	pf  *Prefetcher
	sys *Hierarchy
	lat Latencies
	// Counters are atomic so that Hierarchy.Stats can snapshot them while
	// the owning goroutine keeps simulating.
	loads  atomic.Uint64
	stores atomic.Uint64
	cycles atomic.Uint64
}

// llcStripe is one independently locked shard of the shared LLC. Padding
// keeps neighbouring stripe locks off the same cache line (of the real
// machine, not the simulated one).
type llcStripe struct {
	mu contention.Mutex
	c  *Cache
	_  [64]byte
}

// Hierarchy is the whole memory system: a shared LLC plus per-core private
// levels. The LLC is striped: each stripe owns a contiguous range of set
// indices behind its own lock (see HierarchyConfig.LLCStripes); private
// levels are lock-free by ownership.
type Hierarchy struct {
	cfg HierarchyConfig
	// stripes partition the LLC sets; setMask/stripeShift map an address
	// to (stripe, set): setIdx = (line-1) & setMask, stripe = setIdx >>
	// stripeShift.
	stripes     []llcStripe
	setMask     uint64
	stripeShift uint

	coresMu contention.Mutex
	cores   []*Core
}

// defaultLLCStripes is the stripe count when HierarchyConfig leaves it 0.
const defaultLLCStripes = 8

// NewHierarchy validates cfg and builds the shared levels.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if _, err := NewCache(cfg.LLC); err != nil {
		return nil, err
	}
	sets := uint64(cfg.LLC.Size / (cfg.LLC.Ways * LineSize))
	stripes := cfg.LLCStripes
	if stripes == 0 {
		stripes = defaultLLCStripes
		for uint64(stripes) > sets {
			stripes /= 2
		}
	}
	if stripes < 1 || stripes&(stripes-1) != 0 || uint64(stripes) > sets {
		return nil, fmt.Errorf("simmem: LLC stripes %d must be a power of two no larger than the %d sets", cfg.LLCStripes, sets)
	}
	if cfg.Lat == (Latencies{}) {
		cfg.Lat = DefaultLatencies()
	}
	h := &Hierarchy{
		cfg:         cfg,
		stripes:     make([]llcStripe, stripes),
		setMask:     sets - 1,
		stripeShift: uint(bits.TrailingZeros64(sets / uint64(stripes))),
	}
	sub := cfg.LLC
	sub.Size = cfg.LLC.Size / stripes
	for i := range h.stripes {
		h.stripes[i].c = MustNewCache(sub)
	}
	return h, nil
}

// SetContention attributes the hierarchy's shared locks to the plane.
// All stripes share one "simmem.llcMu" site so contended counts stay
// comparable across stripe configurations. Call before any core exists.
func (h *Hierarchy) SetContention(p *contention.Plane) {
	llc := p.NewSite("simmem.llcMu")
	for i := range h.stripes {
		h.stripes[i].mu.Instrument(llc)
	}
	h.coresMu.Instrument(p.NewSite("simmem.coresMu"))
}

// stripeOf maps an address to its LLC stripe index. The set partition
// matches the monolithic cache exactly: the full set index is the low
// bits of the line number; its high bits select the stripe and the low
// bits the set inside the stripe cache.
//
//hcsgc:alloc-free
func (h *Hierarchy) stripeOf(addr uint64) uint64 {
	return ((line(addr) - 1) & h.setMask) >> h.stripeShift
}

// MustNewHierarchy is NewHierarchy but panics on error.
func MustNewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h, err := NewHierarchy(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// NewCore allocates a private L1/L2/prefetcher bound to this hierarchy.
func (h *Hierarchy) NewCore() *Core {
	c := &Core{
		l1:  MustNewCache(h.cfg.L1),
		l2:  MustNewCache(h.cfg.L2),
		pf:  NewPrefetcher(h.cfg.PrefetchDepth),
		sys: h,
		lat: h.cfg.Lat,
	}
	h.coresMu.Lock()
	h.cores = append(h.cores, c)
	h.coresMu.Unlock()
	return c
}

// Load simulates a demand load of the given byte range [addr, addr+size)
// and returns its cost in cycles. Ranges crossing line boundaries touch
// each line once. Runs on every simulated heap access: alloc-free.
//
//hcsgc:alloc-free
func (c *Core) Load(addr uint64, size int) uint64 {
	return c.access(addr, size, false)
}

// Store simulates a demand store. The model is write-allocate,
// write-back, so the cost model is the same as a load.
//
//hcsgc:alloc-free
func (c *Core) Store(addr uint64, size int) uint64 {
	return c.access(addr, size, true)
}

func (c *Core) access(addr uint64, size int, store bool) uint64 {
	if size <= 0 {
		size = 1
	}
	var total uint64
	first := addr &^ uint64(LineSize-1)
	last := (addr + uint64(size) - 1) &^ uint64(LineSize-1)
	for a := first; ; a += LineSize {
		total += c.accessLine(a, store)
		if a >= last {
			break
		}
	}
	c.cycles.Add(total)
	return total
}

// Loads returns the demand load count.
func (c *Core) Loads() uint64 { return c.loads.Load() }

// Stores returns the demand store count.
func (c *Core) Stores() uint64 { return c.stores.Load() }

// Cycles returns the accumulated memory-access cost in cycles.
func (c *Core) Cycles() uint64 { return c.cycles.Load() }

// accessLine performs the lookup cascade L1 -> L2 -> LLC -> memory for one
// line and returns the cycle cost.
func (c *Core) accessLine(addr uint64, store bool) uint64 {
	if store {
		c.stores.Add(1)
	} else {
		c.loads.Add(1)
	}
	if c.l1.Access(addr) {
		return c.lat.L1
	}
	// L1 miss: consult the prefetcher on the demand-miss stream.
	c.firePrefetch(addr)
	if c.l2.Access(addr) {
		return c.lat.L2
	}
	st := &c.sys.stripes[c.sys.stripeOf(addr)]
	st.mu.Lock()
	hit := st.c.Access(addr)
	st.mu.Unlock()
	if hit {
		return c.lat.LLC
	}
	return c.lat.Mem
}

// firePrefetch asks the stream detector for prefetch targets and installs
// them into L2 and the LLC (hardware prefetchers typically fill L2/LLC, and
// our L1 refill path then finds them there at L2 cost).
func (c *Core) firePrefetch(addr uint64) {
	targets := c.pf.OnMiss(addr)
	if len(targets) == 0 {
		return
	}
	for _, t := range targets {
		c.l2.Prefetch(t)
	}
	for _, t := range targets {
		st := &c.sys.stripes[c.sys.stripeOf(t)]
		st.mu.Lock()
		st.c.Prefetch(t)
		st.mu.Unlock()
	}
}

// InvalidateRange drops all lines of [addr, addr+size) from this core's
// private caches. The owning runtime calls it (plus Hierarchy.
// InvalidateRangeLLC) when a simulated page is recycled.
func (c *Core) InvalidateRange(addr uint64, size int) {
	first := addr &^ uint64(LineSize-1)
	for a := first; a < addr+uint64(size); a += LineSize {
		c.l1.Invalidate(a)
		c.l2.Invalidate(a)
	}
}

// Stats returns a snapshot of this core's counters. Safe to call from any
// goroutine; the snapshot is not atomic across counters.
func (c *Core) Stats() CoreStats {
	return CoreStats{
		Loads:      c.loads.Load(),
		Stores:     c.stores.Load(),
		L1Misses:   c.l1.Misses(),
		L2Misses:   c.l2.Misses(),
		Cycles:     c.cycles.Load(),
		PrefIssued: c.pf.Issued(),
		L1Prefills: c.l1.Prefills(),
		L2Prefills: c.l2.Prefills(),
	}
}

// Reset clears the private levels and counters (not the shared LLC).
func (c *Core) Reset() {
	c.l1.Reset()
	c.l2.Reset()
	c.pf.Reset()
	c.loads.Store(0)
	c.stores.Store(0)
	c.cycles.Store(0)
}

// CoreStats is a snapshot of one core's activity.
type CoreStats struct {
	Loads      uint64
	Stores     uint64
	L1Misses   uint64
	L2Misses   uint64
	Cycles     uint64
	PrefIssued uint64
	L1Prefills uint64
	L2Prefills uint64
}

// Add accumulates other into s.
func (s *CoreStats) Add(other CoreStats) {
	s.Loads += other.Loads
	s.Stores += other.Stores
	s.L1Misses += other.L1Misses
	s.L2Misses += other.L2Misses
	s.Cycles += other.Cycles
	s.PrefIssued += other.PrefIssued
	s.L1Prefills += other.L1Prefills
	s.L2Prefills += other.L2Prefills
}

// SystemStats aggregates process-wide counters in the way perf does for the
// paper (whole-process, mutators and GC threads indistinguishable).
type SystemStats struct {
	CoreStats
	LLCMisses uint64
	LLCHits   uint64
}

// Stats sums all cores plus shared-LLC counters.
func (h *Hierarchy) Stats() SystemStats {
	var out SystemStats
	h.coresMu.Lock()
	cores := make([]*Core, len(h.cores))
	copy(cores, h.cores)
	h.coresMu.Unlock()
	for _, c := range cores {
		out.CoreStats.Add(c.Stats())
	}
	for i := range h.stripes {
		out.LLCMisses += h.stripes[i].c.Misses()
		out.LLCHits += h.stripes[i].c.Hits()
	}
	return out
}

// InvalidateRangeLLC drops lines of a recycled page from the shared LLC.
func (h *Hierarchy) InvalidateRangeLLC(addr uint64, size int) {
	first := addr &^ uint64(LineSize-1)
	for a := first; a < addr+uint64(size); a += LineSize {
		st := &h.stripes[h.stripeOf(a)]
		st.mu.Lock()
		st.c.Invalidate(a)
		st.mu.Unlock()
	}
}

// Config returns the configuration the hierarchy was built with.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// String summarises the geometry, e.g. for report headers.
func (h *Hierarchy) String() string {
	return fmt.Sprintf("L1 %dKB/%dw, L2 %dKB/%dw, LLC %dMB/%dw, prefetch depth %d",
		h.cfg.L1.Size>>10, h.cfg.L1.Ways,
		h.cfg.L2.Size>>10, h.cfg.L2.Ways,
		h.cfg.LLC.Size>>20, h.cfg.LLC.Ways,
		h.cfg.PrefetchDepth)
}

package simmem

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentSnapshotConservation hammers a Hierarchy from several
// goroutines (each with its own Core, as the runtime does) while another
// goroutine continuously reads per-core and system snapshots. Run under
// -race. At quiescence the counters must conserve:
//
//	loads + stores           == lines demanded
//	LLCHits + LLCMisses      == Σ per-core L2Misses (every demand L2 miss
//	                            consults the LLC exactly once; prefetch
//	                            fills count as Prefills, not hits/misses)
func TestConcurrentSnapshotConservation(t *testing.T) {
	cfg := smallConfig()
	cfg.PrefetchDepth = 2 // exercise the prefetch path's shared-LLC locking
	h := MustNewHierarchy(cfg)

	const (
		goroutines = 4
		perG       = 30000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Snapshot reader: system totals must never decrease between reads.
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var prev SystemStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Stats()
			if s.Loads < prev.Loads || s.Stores < prev.Stores ||
				s.L2Misses < prev.L2Misses || s.LLCMisses < prev.LLCMisses {
				t.Errorf("snapshot went backwards: %+v then %+v", prev, s)
				return
			}
			prev = s
		}
	}()

	var wantLoads, wantStores atomic.Uint64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			core := h.NewCore()
			rng := rand.New(rand.NewSource(int64(g + 1)))
			base := uint64(g+1) << 28
			for i := 0; i < perG; i++ {
				// Single-line accesses: mix of sequential (prefetchable)
				// and random, loads and stores.
				var addr uint64
				if i%4 != 3 {
					addr = base + uint64(i)*LineSize
				} else {
					addr = base + uint64(rng.Intn(1<<20))*LineSize
				}
				if i%5 == 0 {
					core.Store(addr, 8)
					wantStores.Add(1)
				} else {
					core.Load(addr, 8)
					wantLoads.Add(1)
				}
				if i%1000 == 0 {
					core.Stats() // self-snapshot mid-run
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()

	s := h.Stats()
	if s.Loads != wantLoads.Load() || s.Stores != wantStores.Load() {
		t.Errorf("demand counts: got loads=%d stores=%d, want %d/%d",
			s.Loads, s.Stores, wantLoads.Load(), wantStores.Load())
	}
	if got := s.LLCHits + s.LLCMisses; got != s.L2Misses {
		t.Errorf("LLC conservation: hits(%d)+misses(%d)=%d != ΣL2Misses %d",
			s.LLCHits, s.LLCMisses, got, s.L2Misses)
	}
	if s.L1Misses < s.L2Misses {
		t.Errorf("L2 saw more demand (%d) than L1 missed (%d)", s.L2Misses, s.L1Misses)
	}
	if s.LLCMisses == 0 {
		t.Error("workload never reached memory; test too small to be meaningful")
	}
}

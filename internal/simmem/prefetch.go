package simmem

import "sync/atomic"

// Prefetcher models a hardware stream prefetcher of the kind found in the
// paper's Intel and AMD test machines: it watches the demand-miss stream,
// detects constant-stride streams (including the common +1-line stream),
// and on confirmation issues prefetches for the next lines of the stream.
//
// The paper's core claim is that laying objects out in mutator access order
// is "prefetching friendly" (§1, §3): sequential layouts turn into +1-line
// streams that this model detects, while pointer-chasing over a scattered
// layout defeats it. A faithful stream detector is therefore load-bearing
// for reproducing the evaluation's shape.
type Prefetcher struct {
	streams []stream
	depth   int // lines prefetched ahead once a stream is confirmed
	clock   uint64
	issued  atomic.Uint64 // prefetch requests issued
	// buf is the reused OnMiss return buffer: OnMiss runs on every L1
	// demand miss, so allocating the target slice per miss would put a
	// Go allocation on the simulator's hottest path. The returned slice
	// aliases buf and is only valid until the next OnMiss call.
	buf []uint64
}

// stream is one tracked miss stream.
type stream struct {
	lastLine int64
	stride   int64
	confid   int
	lastUse  uint64
	valid    bool
}

// maxStreams bounds the tracker table like real hardware (Intel tracks
// 16-32 streams per core).
const maxStreams = 16

// confirmThreshold is how many consecutive same-stride misses confirm a
// stream.
const confirmThreshold = 2

// NewPrefetcher returns a stream prefetcher that runs depth lines ahead.
// depth <= 0 disables prefetching.
func NewPrefetcher(depth int) *Prefetcher {
	if depth < 0 {
		depth = 0
	}
	return &Prefetcher{
		streams: make([]stream, maxStreams),
		depth:   depth,
		buf:     make([]uint64, depth),
	}
}

// Enabled reports whether the prefetcher issues any prefetches.
func (p *Prefetcher) Enabled() bool { return p != nil && p.depth > 0 }

// OnMiss informs the prefetcher of a demand miss at addr and returns the
// line-aligned addresses that should be prefetched as a consequence
// (possibly none). The caller installs them into its caches. The returned
// slice aliases an internal buffer and is invalidated by the next OnMiss.
//
//hcsgc:alloc-free
func (p *Prefetcher) OnMiss(addr uint64) []uint64 {
	if !p.Enabled() {
		return nil
	}
	p.clock++
	ln := int64(addr >> lineShift)

	// Find a stream whose next expected line matches, or whose last line is
	// within a small window (new stride discovery).
	bestIdx := -1
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid {
			continue
		}
		delta := ln - s.lastLine
		if delta == 0 {
			// Same line missing again (conflict churn); just refresh.
			s.lastUse = p.clock
			return nil
		}
		if s.confid >= confirmThreshold && delta == s.stride {
			bestIdx = i
			break
		}
		// Within the discovery window: hardware streamers track streams
		// within a 4KB page (±64 lines); allocation noise between stream
		// elements is common, so the window must span it.
		if delta >= -64 && delta <= 64 && bestIdx == -1 {
			bestIdx = i
		}
	}

	if bestIdx == -1 {
		p.allocStream(ln)
		return nil
	}

	s := &p.streams[bestIdx]
	delta := ln - s.lastLine
	if delta == s.stride {
		s.confid++
	} else {
		s.stride = delta
		s.confid = 1
	}
	s.lastLine = ln
	s.lastUse = p.clock

	if s.confid < confirmThreshold {
		return nil
	}
	n := 0
	next := ln
	for i := 0; i < p.depth; i++ {
		next += s.stride
		if next <= 0 {
			break
		}
		p.buf[n] = uint64(next) << lineShift
		n++
	}
	p.issued.Add(uint64(n))
	return p.buf[:n]
}

// Issued returns the number of prefetch requests issued.
func (p *Prefetcher) Issued() uint64 { return p.issued.Load() }

// allocStream claims the least-recently-used tracker slot for a new stream.
func (p *Prefetcher) allocStream(ln int64) {
	victim := 0
	var victimUse uint64 = ^uint64(0)
	for i := range p.streams {
		if !p.streams[i].valid {
			victim = i
			break
		}
		if p.streams[i].lastUse < victimUse {
			victim, victimUse = i, p.streams[i].lastUse
		}
	}
	p.streams[victim] = stream{lastLine: ln, stride: 1, confid: 0, lastUse: p.clock, valid: true}
}

// Reset clears tracker state and statistics.
func (p *Prefetcher) Reset() {
	for i := range p.streams {
		p.streams[i] = stream{}
	}
	p.clock = 0
	p.issued.Store(0)
}

// Package simmem implements a software model of a memory hierarchy:
// set-associative caches with LRU replacement, a stream prefetcher, and a
// cycle cost model. It substitutes for the hardware performance counters
// (perf: L1-dcache-loads, L1-dcache-load-misses, LLC-load-misses) used in
// the paper's evaluation. Addresses fed to the model are the simulated
// heap addresses produced by internal/heap, so object layout decisions made
// by the collector directly determine hit rates here.
package simmem

import (
	"fmt"
	"sync/atomic"
)

// LineSize is the cache line size in bytes. The paper assumes the common
// 64-byte line (§3.4).
const LineSize = 64

// lineShift is log2(LineSize).
const lineShift = 6

// Cache is a single level of set-associative cache with LRU replacement.
// It is not safe for concurrent use; concurrency is handled by the owning
// Hierarchy (private L1/L2 per core, lock around the shared LLC).
type Cache struct {
	name    string
	sets    uint64 // number of sets, power of two
	ways    int
	setMask uint64
	tags    []uint64 // sets*ways entries; 0 = invalid
	lru     []uint32 // per-line LRU ticket
	tick    uint32
	// Counters are atomic so aggregate statistics can be snapshotted
	// while the owning goroutine keeps simulating.
	hits     atomic.Uint64
	misses   atomic.Uint64
	prefills atomic.Uint64 // lines installed by prefetch rather than demand
}

// CacheConfig describes a cache level.
type CacheConfig struct {
	Name string
	Size int // total bytes
	Ways int
}

// NewCache builds a cache from a config. Size must be a multiple of
// Ways*LineSize and the resulting set count must be a power of two.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("simmem: cache %q: ways must be positive, got %d", cfg.Name, cfg.Ways)
	}
	if cfg.Size <= 0 || cfg.Size%(cfg.Ways*LineSize) != 0 {
		return nil, fmt.Errorf("simmem: cache %q: size %d not a multiple of ways*linesize (%d)", cfg.Name, cfg.Size, cfg.Ways*LineSize)
	}
	sets := uint64(cfg.Size / (cfg.Ways * LineSize))
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("simmem: cache %q: set count %d is not a power of two", cfg.Name, sets)
	}
	return &Cache{
		name:    cfg.Name,
		sets:    sets,
		ways:    cfg.Ways,
		setMask: sets - 1,
		tags:    make([]uint64, sets*uint64(cfg.Ways)),
		lru:     make([]uint32, sets*uint64(cfg.Ways)),
	}, nil
}

// MustNewCache is NewCache but panics on configuration error. Intended for
// package-level defaults that are statically known to be valid.
func MustNewCache(cfg CacheConfig) *Cache {
	c, err := NewCache(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// line converts a byte address to a line address (tag material).
// Line addresses are offset by 1 so that tag 0 always means "invalid".
func line(addr uint64) uint64 { return (addr >> lineShift) + 1 }

// setOf returns the set index for a line address.
func (c *Cache) setOf(ln uint64) uint64 { return (ln - 1) & c.setMask }

// Access looks up addr, returns true on hit. On miss the line is installed,
// evicting the LRU way of its set.
//
//hcsgc:alloc-free
func (c *Cache) Access(addr uint64) bool {
	hit := c.touch(line(addr), false)
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return hit
}

// Hits returns the demand hit count.
func (c *Cache) Hits() uint64 { return c.hits.Load() }

// Misses returns the demand miss count.
func (c *Cache) Misses() uint64 { return c.misses.Load() }

// Prefills returns the count of lines installed by prefetching.
func (c *Cache) Prefills() uint64 { return c.prefills.Load() }

// Contains reports whether addr's line is present without altering LRU
// state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	ln := line(addr)
	base := c.setOf(ln) * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+uint64(w)] == ln {
			return true
		}
	}
	return false
}

// Prefetch installs addr's line if absent, without counting a demand hit or
// miss. Returns true if the line was newly installed.
//
//hcsgc:alloc-free
func (c *Cache) Prefetch(addr uint64) bool {
	installed := !c.touch(line(addr), true)
	if installed {
		c.prefills.Add(1)
	}
	return installed
}

// touch looks up ln; installs it on absence. Returns true if present.
// When prefetch is true and the line is already present, LRU is still
// refreshed (prefetchers re-prime lines).
func (c *Cache) touch(ln uint64, prefetch bool) bool {
	base := c.setOf(ln) * uint64(c.ways)
	c.tick++
	victim := base
	victimLRU := c.lru[base]
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.tags[i] == ln {
			c.lru[i] = c.tick
			return true
		}
		if c.tags[i] == 0 {
			// Free way: install immediately.
			c.tags[i] = ln
			c.lru[i] = c.tick
			return false
		}
		if c.lru[i] < victimLRU {
			victim, victimLRU = i, c.lru[i]
		}
	}
	c.tags[victim] = ln
	c.lru[victim] = c.tick
	return false
}

// Invalidate removes addr's line if present. Used when simulated pages are
// recycled so stale lines do not alias new allocations.
func (c *Cache) Invalidate(addr uint64) {
	ln := line(addr)
	base := c.setOf(ln) * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+uint64(w)] == ln {
			c.tags[base+uint64(w)] = 0
			return
		}
	}
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
	c.tick = 0
	c.hits.Store(0)
	c.misses.Store(0)
	c.prefills.Store(0)
}

// Name returns the configured display name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SizeBytes returns the total capacity in bytes.
func (c *Cache) SizeBytes() int { return int(c.sets) * c.ways * LineSize }

package simmem

import (
	"math/rand"
	"sync"
	"testing"
)

func smallConfig() HierarchyConfig {
	return HierarchyConfig{
		L1:            CacheConfig{Name: "L1", Size: 4 << 10, Ways: 4},
		L2:            CacheConfig{Name: "L2", Size: 32 << 10, Ways: 8},
		LLC:           CacheConfig{Name: "LLC", Size: 256 << 10, Ways: 8},
		Lat:           Latencies{L1: 4, L2: 12, LLC: 40, Mem: 200},
		PrefetchDepth: 0,
	}
}

func TestNewHierarchyValidation(t *testing.T) {
	bad := smallConfig()
	bad.LLC.Size = 7
	if _, err := NewHierarchy(bad); err == nil {
		t.Fatal("invalid LLC config should fail")
	}
	if _, err := NewHierarchy(smallConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultConfigsValid(t *testing.T) {
	for _, cfg := range []HierarchyConfig{DefaultConfig(), ServerConfig()} {
		if _, err := NewHierarchy(cfg); err != nil {
			t.Errorf("config %v invalid: %v", cfg, err)
		}
	}
}

func TestMissCostCascade(t *testing.T) {
	h := MustNewHierarchy(smallConfig())
	c := h.NewCore()
	// Cold access: miss everywhere -> memory latency.
	if got := c.Load(0x100000, 8); got != 200 {
		t.Fatalf("cold load cost = %d, want 200", got)
	}
	// Now resident in L1.
	if got := c.Load(0x100000, 8); got != 4 {
		t.Fatalf("warm L1 load cost = %d, want 4", got)
	}
}

func TestL2AndLLCHitCosts(t *testing.T) {
	h := MustNewHierarchy(smallConfig())
	c := h.NewCore()
	target := uint64(0)
	c.Load(target, 1) // install everywhere
	// Evict from L1 only: walk addresses that map to target's L1 set.
	// L1: 4KB/4w = 16 sets; same set every 16 lines (1024 bytes).
	for i := uint64(1); i <= 8; i++ {
		c.Load(target+i*1024, 1)
	}
	got := c.Load(target, 1)
	if got != 12 && got != 40 {
		t.Fatalf("after L1 eviction, cost = %d, want L2 (12) or LLC (40)", got)
	}
}

func TestStoreCountsSeparately(t *testing.T) {
	h := MustNewHierarchy(smallConfig())
	c := h.NewCore()
	c.Store(0x2000, 8)
	c.Load(0x2000, 8)
	st := c.Stats()
	if st.Stores != 1 || st.Loads != 1 {
		t.Fatalf("loads=%d stores=%d, want 1/1", st.Loads, st.Stores)
	}
}

func TestMultiLineAccess(t *testing.T) {
	h := MustNewHierarchy(smallConfig())
	c := h.NewCore()
	// 16-byte access straddling a line boundary touches 2 lines.
	c.Load(64-8, 16)
	if st := c.Stats(); st.Loads != 2 {
		t.Fatalf("straddling load touched %d lines, want 2", st.Loads)
	}
	// Large access: 256 bytes = 4 lines.
	c2 := h.NewCore()
	c2.Load(0, 256)
	if st := c2.Stats(); st.Loads != 4 {
		t.Fatalf("256B load touched %d lines, want 4", st.Loads)
	}
}

func TestZeroSizeAccessTreatedAsOneByte(t *testing.T) {
	h := MustNewHierarchy(smallConfig())
	c := h.NewCore()
	c.Load(0x100, 0)
	if st := c.Stats(); st.Loads != 1 {
		t.Fatalf("zero-size load should touch one line, got %d", st.Loads)
	}
}

func TestCyclesAccumulate(t *testing.T) {
	h := MustNewHierarchy(smallConfig())
	c := h.NewCore()
	c.Load(0x0, 8)   // 200
	c.Load(0x0, 8)   // 4
	c.Store(0x40, 8) // 200
	if c.Cycles() != 404 {
		t.Fatalf("cycles = %d, want 404", c.Cycles())
	}
}

func TestSequentialBeatsRandomWithPrefetch(t *testing.T) {
	// The central fidelity property for the paper: a sequential scan over a
	// large buffer must be much cheaper than a random scan of the same
	// addresses when the stream prefetcher is on.
	cfg := smallConfig()
	cfg.PrefetchDepth = 4
	n := 4096 // lines; 256KB, same as LLC, far over L1/L2

	seqCycles := func(order []int) uint64 {
		h := MustNewHierarchy(cfg)
		c := h.NewCore()
		for _, i := range order {
			c.Load(uint64(i)*64, 8)
		}
		return c.Cycles()
	}
	seq := make([]int, n)
	for i := range seq {
		seq[i] = i
	}
	rnd := make([]int, n)
	copy(rnd, seq)
	rand.New(rand.NewSource(3)).Shuffle(n, func(i, j int) { rnd[i], rnd[j] = rnd[j], rnd[i] })

	sc, rc := seqCycles(seq), seqCycles(rnd)
	if sc*2 >= rc {
		t.Fatalf("sequential (%d cycles) should be <half of random (%d cycles)", sc, rc)
	}
}

func TestPrefetchDepthZeroNoAdvantage(t *testing.T) {
	// Without prefetching, cold sequential and cold random scans over a
	// range far exceeding cache capacity cost roughly the same.
	cfg := smallConfig()
	cfg.PrefetchDepth = 0
	n := 8192
	run := func(shuffle bool) uint64 {
		h := MustNewHierarchy(cfg)
		c := h.NewCore()
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		if shuffle {
			rand.New(rand.NewSource(5)).Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		for _, i := range order {
			c.Load(uint64(i)*64, 8)
		}
		return c.Cycles()
	}
	s, r := run(false), run(true)
	ratio := float64(s) / float64(r)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("without prefetch seq/random ratio = %.2f, want ~1.0", ratio)
	}
}

func TestSharedLLCVisibleAcrossCores(t *testing.T) {
	h := MustNewHierarchy(smallConfig())
	a, b := h.NewCore(), h.NewCore()
	a.Load(0x7000, 8) // installs into shared LLC
	cost := b.Load(0x7000, 8)
	if cost != 40 {
		t.Fatalf("cross-core LLC hit cost = %d, want 40", cost)
	}
}

func TestConcurrentCoreAccessSafe(t *testing.T) {
	h := MustNewHierarchy(smallConfig())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		core := h.NewCore()
		wg.Add(1)
		go func(c *Core, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 10000; i++ {
				// 8-byte aligned so no access straddles a line.
				c.Load((rng.Uint64()%(1<<22))&^7, 8)
			}
		}(core, int64(g))
	}
	wg.Wait()
	st := h.Stats()
	if st.Loads != 40000 {
		t.Fatalf("aggregate loads = %d, want 40000", st.Loads)
	}
}

func TestInvalidateRange(t *testing.T) {
	h := MustNewHierarchy(smallConfig())
	c := h.NewCore()
	for a := uint64(0); a < 1024; a += 64 {
		c.Load(a, 8)
	}
	c.InvalidateRange(0, 1024)
	h.InvalidateRangeLLC(0, 1024)
	before := c.Stats().L1Misses
	c.Load(0, 8)
	if c.Stats().L1Misses != before+1 {
		t.Fatal("invalidated line should miss in L1")
	}
}

func TestCoreReset(t *testing.T) {
	h := MustNewHierarchy(smallConfig())
	c := h.NewCore()
	c.Load(0x123, 8)
	c.Reset()
	st := c.Stats()
	if st.Loads != 0 || st.Cycles != 0 || st.L1Misses != 0 {
		t.Fatalf("Reset left stats %+v", st)
	}
}

func TestSystemStatsAggregation(t *testing.T) {
	h := MustNewHierarchy(smallConfig())
	a, b := h.NewCore(), h.NewCore()
	a.Load(0x1000, 8)
	b.Load(0x2000, 8)
	b.Store(0x3000, 8)
	st := h.Stats()
	if st.Loads != 2 || st.Stores != 1 {
		t.Fatalf("aggregate loads=%d stores=%d, want 2/1", st.Loads, st.Stores)
	}
	if st.LLCMisses != 3 {
		t.Fatalf("LLC misses = %d, want 3 (all cold)", st.LLCMisses)
	}
}

func TestHierarchyString(t *testing.T) {
	h := MustNewHierarchy(DefaultConfig())
	s := h.String()
	if s == "" {
		t.Fatal("String should describe geometry")
	}
}

func TestLatenciesDefaultApplied(t *testing.T) {
	cfg := smallConfig()
	cfg.Lat = Latencies{}
	h := MustNewHierarchy(cfg)
	c := h.NewCore()
	if got := c.Load(0x0, 8); got != DefaultLatencies().Mem {
		t.Fatalf("default latency not applied: cold load cost %d", got)
	}
}

// TestLLCStripingEquivalence: sharding the LLC lock must not change what
// the cache model computes — stripes partition the set index space, so a
// single-threaded access sequence sees identical hits, misses, and
// cycles at any stripe count.
func TestLLCStripingEquivalence(t *testing.T) {
	run := func(stripes int) SystemStats {
		cfg := smallConfig()
		cfg.LLCStripes = stripes
		h := MustNewHierarchy(cfg)
		c := h.NewCore()
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 4096; i++ {
			addr := uint64(rng.Intn(1 << 20))
			if i%3 == 0 {
				c.Store(addr, 8)
			} else {
				c.Load(addr, 8)
			}
		}
		return h.Stats()
	}
	base := run(1)
	for _, stripes := range []int{2, 8} {
		if got := run(stripes); got != base {
			t.Errorf("stats diverge at %d stripes:\n1: %+v\n%d: %+v", stripes, base, stripes, got)
		}
	}
}

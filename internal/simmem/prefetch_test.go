package simmem

import (
	"math/rand"
	"testing"
)

func TestPrefetcherDisabled(t *testing.T) {
	p := NewPrefetcher(0)
	if p.Enabled() {
		t.Fatal("depth 0 should disable")
	}
	if got := p.OnMiss(0x1000); got != nil {
		t.Fatalf("disabled prefetcher returned targets %v", got)
	}
	var nilP *Prefetcher
	if nilP.Enabled() {
		t.Fatal("nil prefetcher should report disabled")
	}
}

func TestSequentialStreamDetected(t *testing.T) {
	p := NewPrefetcher(4)
	var issued [][]uint64
	for i := uint64(0); i < 8; i++ {
		issued = append(issued, p.OnMiss(i*64))
	}
	// The first miss allocates a tracker; by the confirmThreshold-th
	// same-stride miss the stream is confirmed and prefetches flow.
	late := issued[len(issued)-1]
	if len(late) != 4 {
		t.Fatalf("confirmed +1 stream should issue 4 prefetches, got %d", len(late))
	}
	// Targets must be the next lines in sequence.
	base := uint64(7 * 64)
	for i, tgt := range late {
		want := base + uint64(i+1)*64
		if tgt != want {
			t.Errorf("target[%d] = %#x, want %#x", i, tgt, want)
		}
	}
}

func TestStridedStreamDetected(t *testing.T) {
	p := NewPrefetcher(2)
	stride := uint64(3 * 64) // every 3rd line
	var last []uint64
	for i := uint64(0); i < 8; i++ {
		last = p.OnMiss(0x10000 + i*stride)
	}
	if len(last) != 2 {
		t.Fatalf("strided stream should issue prefetches, got %d", len(last))
	}
	if last[0] != 0x10000+8*stride {
		t.Errorf("first target %#x, want %#x", last[0], 0x10000+8*stride)
	}
}

func TestBackwardStream(t *testing.T) {
	p := NewPrefetcher(2)
	start := uint64(100 * 64)
	var last []uint64
	for i := uint64(0); i < 8; i++ {
		last = p.OnMiss(start - i*64)
	}
	if len(last) != 2 {
		t.Fatalf("backward stream should be detected, got %d targets", len(last))
	}
	// Last miss was at start-7*64 (8 misses, i = 0..7), so the first
	// prefetch target is one stride further: start-8*64.
	if last[0] != start-8*64 {
		t.Errorf("target %#x, want %#x", last[0], start-8*64)
	}
}

func TestRandomMissesIssueFewPrefetches(t *testing.T) {
	p := NewPrefetcher(4)
	rng := rand.New(rand.NewSource(9))
	n := 2000
	for i := 0; i < n; i++ {
		// Spread misses over a large range so accidental streams are rare.
		p.OnMiss(rng.Uint64() % (1 << 34))
	}
	if p.Issued() > uint64(n/4) {
		t.Fatalf("random misses should rarely trigger prefetch; issued %d of %d", p.Issued(), n)
	}
}

func TestRepeatedSameLineMissNoPrefetch(t *testing.T) {
	p := NewPrefetcher(4)
	for i := 0; i < 10; i++ {
		if got := p.OnMiss(0x2000); len(got) != 0 {
			t.Fatalf("same-line repeats must not create a stream, got %v", got)
		}
	}
}

func TestMultipleInterleavedStreams(t *testing.T) {
	// Two interleaved sequential streams far apart must both be tracked.
	p := NewPrefetcher(2)
	var lastA, lastB []uint64
	for i := uint64(0); i < 10; i++ {
		lastA = p.OnMiss(0x100000 + i*64)
		lastB = p.OnMiss(0x900000 + i*64)
	}
	if len(lastA) == 0 || len(lastB) == 0 {
		t.Fatalf("both interleaved streams should confirm; got %d and %d targets", len(lastA), len(lastB))
	}
}

func TestStreamTableEviction(t *testing.T) {
	// More streams than table entries: old ones are evicted, but the
	// tracker must not crash and fresh streams must still confirm.
	p := NewPrefetcher(2)
	for s := uint64(0); s < uint64(maxStreams*3); s++ {
		base := s << 24
		for i := uint64(0); i < 4; i++ {
			p.OnMiss(base + i*64)
		}
	}
	if p.Issued() == 0 {
		t.Fatal("streams should still confirm under table pressure")
	}
}

func TestPrefetcherReset(t *testing.T) {
	p := NewPrefetcher(4)
	for i := uint64(0); i < 8; i++ {
		p.OnMiss(i * 64)
	}
	p.Reset()
	if p.Issued() != 0 {
		t.Fatal("Reset must clear Issued")
	}
	if got := p.OnMiss(0x5000); len(got) != 0 {
		t.Fatal("first miss after reset must not prefetch")
	}
}

func TestNoPrefetchBelowZero(t *testing.T) {
	// A backward stream near address zero must not emit wrapped targets.
	p := NewPrefetcher(8)
	for i := int64(10); i >= 0; i-- {
		p.OnMiss(uint64(i) * 64)
	}
	// All issued targets must have been positive; OnMiss clamps at zero.
	// (Implicitly verified by no panic and by target count < depth on the
	// last misses.)
	last := p.OnMiss(0) // stride -1 from line 0 would go negative
	for _, tgt := range last {
		if int64(tgt) <= 0 {
			t.Fatalf("issued non-positive target %#x", tgt)
		}
	}
}

func TestStreamSurvivesInterleavedNoise(t *testing.T) {
	// A strided stream with unrelated misses interleaved (allocation
	// noise between stream elements) must still confirm: hardware
	// streamers track streams within a page-sized window.
	p := NewPrefetcher(4)
	stride := int64(12) // lines between stream elements
	noise := uint64(1 << 30)
	var last []uint64
	for i := int64(0); i < 10; i++ {
		last = p.OnMiss(uint64(0x100000 + i*stride*64))
		p.OnMiss(noise + uint64(i)*8192) // far-away noise miss
	}
	if len(last) == 0 {
		t.Fatalf("stride-%d stream with interleaved noise did not confirm", stride)
	}
	if want := uint64(0x100000 + 10*stride*64); last[0] != want {
		t.Fatalf("target %#x, want %#x", last[0], want)
	}
}

// TestOnMissZeroAllocations pins the alloc-free contract on the hottest
// simulator path: OnMiss runs on every L1 demand miss, and it used to
// allocate its target slice per confirmed miss. The fix reuses an
// internal buffer; this guards against the regression.
func TestOnMissZeroAllocations(t *testing.T) {
	p := NewPrefetcher(4)
	// Confirm a +1-line stream so the prefetch-issuing branch is the one
	// being measured.
	line := uint64(0x1000)
	for i := 0; i < 4; i++ {
		p.OnMiss(line)
		line += LineSize
	}
	allocs := testing.AllocsPerRun(100, func() {
		p.OnMiss(line)
		line += LineSize
	})
	if allocs != 0 {
		t.Fatalf("OnMiss allocated %.1f objects per confirmed miss; want 0", allocs)
	}
}

// TestOnMissBufferReuse documents the aliasing contract: the slice
// returned by OnMiss is only valid until the next call.
func TestOnMissBufferReuse(t *testing.T) {
	p := NewPrefetcher(2)
	line := uint64(0x1000)
	var first []uint64
	for i := 0; i < 8 && len(first) == 0; i++ {
		first = p.OnMiss(line)
		line += LineSize
	}
	if len(first) == 0 {
		t.Fatal("stream never confirmed")
	}
	want := first[0]
	var second []uint64
	for i := 0; i < 8 && len(second) == 0; i++ {
		second = p.OnMiss(line)
		line += LineSize
	}
	if len(second) == 0 {
		t.Fatal("stream lost confirmation")
	}
	if first[0] == want && &first[0] != &second[0] {
		t.Fatal("OnMiss stopped reusing its buffer; update the aliasing contract docs")
	}
}

package simmem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCacheValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     CacheConfig
		wantErr bool
	}{
		{"valid 32k 8w", CacheConfig{Name: "a", Size: 32 << 10, Ways: 8}, false},
		{"valid 4m 16w", CacheConfig{Name: "b", Size: 4 << 20, Ways: 16}, false},
		{"zero size", CacheConfig{Name: "c", Size: 0, Ways: 8}, true},
		{"zero ways", CacheConfig{Name: "d", Size: 1024, Ways: 0}, true},
		{"negative ways", CacheConfig{Name: "e", Size: 1024, Ways: -1}, true},
		{"not multiple of ways*line", CacheConfig{Name: "f", Size: 100, Ways: 1}, true},
		{"non power of two sets", CacheConfig{Name: "g", Size: 3 * 64 * 2, Ways: 2}, true},
		{"direct mapped", CacheConfig{Name: "h", Size: 64 * 16, Ways: 1}, false},
		{"fully assoc single set", CacheConfig{Name: "i", Size: 64 * 8, Ways: 8}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCache(tc.cfg)
			if (err != nil) != tc.wantErr {
				t.Fatalf("NewCache(%+v) err=%v, wantErr=%v", tc.cfg, err, tc.wantErr)
			}
		})
	}
}

func TestMustNewCachePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewCache on invalid config did not panic")
		}
	}()
	MustNewCache(CacheConfig{Size: -1, Ways: 1})
}

func TestCacheGeometry(t *testing.T) {
	c := MustNewCache(CacheConfig{Name: "t", Size: 32 << 10, Ways: 8})
	if got := c.SizeBytes(); got != 32<<10 {
		t.Errorf("SizeBytes = %d, want %d", got, 32<<10)
	}
	if got := c.Sets(); got != 64 {
		t.Errorf("Sets = %d, want 64", got)
	}
	if got := c.Ways(); got != 8 {
		t.Errorf("Ways = %d, want 8", got)
	}
	if got := c.Name(); got != "t" {
		t.Errorf("Name = %q, want t", got)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := MustNewCache(CacheConfig{Name: "t", Size: 64 * 8, Ways: 2})
	if c.Access(0x1000) {
		t.Fatal("first access should miss")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access should hit")
	}
	if !c.Access(0x1000 + 63) {
		t.Fatal("same-line access should hit")
	}
	if c.Access(0x1000 + 64) {
		t.Fatal("next-line access should miss")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/2", c.Hits(), c.Misses())
	}
}

func TestAddressZeroIsCacheable(t *testing.T) {
	// Line tags are offset so that address 0 does not alias the invalid tag.
	c := MustNewCache(CacheConfig{Name: "t", Size: 64 * 8, Ways: 2})
	if c.Access(0) {
		t.Fatal("first access to address 0 should miss")
	}
	if !c.Access(0) {
		t.Fatal("second access to address 0 should hit")
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct construction: 2-way, 2 sets. Lines with the same parity of
	// line index map to the same set.
	c := MustNewCache(CacheConfig{Name: "t", Size: 64 * 4, Ways: 2})
	set0 := func(i uint64) uint64 { return i * 2 * 64 } // even line indices -> set depends on mask
	a, b, d := set0(0), set0(1), set0(2)
	c.Access(a) // miss, install
	c.Access(b) // miss, install
	c.Access(a) // hit, refresh a; b is now LRU
	c.Access(d) // miss, evicts b
	if !c.Contains(a) {
		t.Error("a should have survived (recently used)")
	}
	if c.Contains(b) {
		t.Error("b should have been evicted (LRU)")
	}
	if !c.Contains(d) {
		t.Error("d should be present")
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := MustNewCache(CacheConfig{Name: "t", Size: 64 * 4, Ways: 2})
	c.Access(0x0)
	h, m := c.Hits(), c.Misses()
	for i := 0; i < 10; i++ {
		c.Contains(0x0)
		c.Contains(0xdead000)
	}
	if c.Hits() != h || c.Misses() != m {
		t.Fatal("Contains must not change statistics")
	}
}

func TestPrefetchInstallsWithoutDemandStats(t *testing.T) {
	c := MustNewCache(CacheConfig{Name: "t", Size: 64 * 8, Ways: 2})
	if !c.Prefetch(0x4000) {
		t.Fatal("prefetch of absent line should install")
	}
	if c.Prefetch(0x4000) {
		t.Fatal("prefetch of present line should not reinstall")
	}
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatalf("prefetch must not count demand hits/misses, got %d/%d", c.Hits(), c.Misses())
	}
	if c.Prefills() != 1 {
		t.Fatalf("Prefills = %d, want 1", c.Prefills())
	}
	if !c.Access(0x4000) {
		t.Fatal("demand access after prefetch should hit")
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNewCache(CacheConfig{Name: "t", Size: 64 * 8, Ways: 2})
	c.Access(0x8000)
	c.Invalidate(0x8000)
	if c.Contains(0x8000) {
		t.Fatal("line should be gone after Invalidate")
	}
	// Invalidating an absent line is a no-op.
	c.Invalidate(0xffff000)
}

func TestReset(t *testing.T) {
	c := MustNewCache(CacheConfig{Name: "t", Size: 64 * 8, Ways: 2})
	for i := uint64(0); i < 32; i++ {
		c.Access(i * 64)
	}
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 || c.Prefills() != 0 {
		t.Fatal("Reset must clear statistics")
	}
	if c.Contains(0) {
		t.Fatal("Reset must clear contents")
	}
}

func TestWorkingSetFitsAfterWarmup(t *testing.T) {
	// A working set smaller than capacity must be fully resident after one
	// pass, regardless of access order.
	c := MustNewCache(CacheConfig{Name: "t", Size: 8 << 10, Ways: 8}) // 128 lines
	addrs := make([]uint64, 100)
	for i := range addrs {
		addrs[i] = uint64(i) * 64
	}
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(addrs), func(i, j int) { addrs[i], addrs[j] = addrs[j], addrs[i] })
	for _, a := range addrs {
		c.Access(a)
	}
	for _, a := range addrs {
		if !c.Access(a) {
			t.Fatalf("address %#x should hit after warm-up", a)
		}
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	// A cyclic working set larger than one set's ways with LRU thrashes:
	// every access misses.
	c := MustNewCache(CacheConfig{Name: "t", Size: 64 * 2, Ways: 2}) // 1 set, 2 ways
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 3; i++ {
			c.Access(i * 64)
		}
	}
	if c.Hits() != 0 {
		t.Fatalf("cyclic over-capacity LRU access should never hit, got %d hits", c.Hits())
	}
}

func TestPropertyAccessTwiceAlwaysHits(t *testing.T) {
	// Property: for any address, accessing it twice in a row hits the
	// second time (no self-eviction).
	c := MustNewCache(CacheConfig{Name: "t", Size: 32 << 10, Ways: 8})
	f := func(addr uint64) bool {
		c.Access(addr)
		return c.Access(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHitsPlusMissesEqualsAccesses(t *testing.T) {
	c := MustNewCache(CacheConfig{Name: "t", Size: 4 << 10, Ways: 4})
	rng := rand.New(rand.NewSource(42))
	n := uint64(10000)
	for i := uint64(0); i < n; i++ {
		c.Access(rng.Uint64() % (1 << 20))
	}
	if c.Hits()+c.Misses() != n {
		t.Fatalf("hits+misses = %d, want %d", c.Hits()+c.Misses(), n)
	}
}

func TestPropertyOccupancyNeverExceedsCapacity(t *testing.T) {
	c := MustNewCache(CacheConfig{Name: "t", Size: 64 * 16, Ways: 4})
	rng := rand.New(rand.NewSource(7))
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		a := (rng.Uint64() % (1 << 16)) &^ 63
		c.Access(a)
		seen[a] = true
	}
	resident := 0
	for a := range seen {
		if c.Contains(a) {
			resident++
		}
	}
	if resident > 16 {
		t.Fatalf("resident lines %d exceed capacity 16", resident)
	}
}

package graphgen

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{"ok", Params{Nodes: 10, Edges: 20, CopyProb: 0.3}, false},
		{"too few nodes", Params{Nodes: 1, Edges: 0}, true},
		{"too few edges", Params{Nodes: 10, Edges: 5}, true},
		{"too many edges", Params{Nodes: 10, Edges: 50}, true},
		{"bad copy prob", Params{Nodes: 10, Edges: 20, CopyProb: 1.5}, true},
		{"tree", Params{Nodes: 10, Edges: 9}, false},
		{"complete", Params{Nodes: 10, Edges: 45}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.p.Validate(); (err != nil) != tc.wantErr {
				t.Fatalf("Validate(%+v) err=%v", tc.p, err)
			}
		})
	}
}

func TestGenerateExactCounts(t *testing.T) {
	g := MustGenerate(Params{Nodes: 500, Edges: 3000, CopyProb: 0.4, Seed: 1})
	if g.Nodes() != 500 {
		t.Fatalf("nodes = %d", g.Nodes())
	}
	if g.EdgeCount != 3000 {
		t.Fatalf("edges = %d, want 3000", g.EdgeCount)
	}
	// Adjacency degrees sum to 2E.
	sum := 0
	for v := 0; v < g.Nodes(); v++ {
		sum += g.Degree(v)
	}
	if sum != 6000 {
		t.Fatalf("degree sum = %d, want 6000", sum)
	}
}

func TestGenerateSimpleAndSymmetric(t *testing.T) {
	g := MustGenerate(Params{Nodes: 300, Edges: 2000, CopyProb: 0.5, Seed: 2})
	for v := 0; v < g.Nodes(); v++ {
		seen := map[int32]bool{}
		for _, w := range g.Adj[v] {
			if w == int32(v) {
				t.Fatalf("self loop at %d", v)
			}
			if seen[w] {
				t.Fatalf("duplicate edge %d-%d", v, w)
			}
			seen[w] = true
			// Symmetry.
			found := false
			for _, x := range g.Adj[w] {
				if x == int32(v) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d-%d not symmetric", v, w)
			}
		}
	}
}

func TestGenerateConnected(t *testing.T) {
	g := MustGenerate(Params{Nodes: 1000, Edges: 1500, CopyProb: 0.3, Seed: 3})
	visited := make([]bool, g.Nodes())
	stack := []int32{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Adj[v] {
			if !visited[w] {
				visited[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	if count != g.Nodes() {
		t.Fatalf("graph not connected: reached %d of %d", count, g.Nodes())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Nodes: 200, Edges: 800, CopyProb: 0.4, Seed: 9}
	a := MustGenerate(p)
	b := MustGenerate(p)
	for v := range a.Adj {
		if len(a.Adj[v]) != len(b.Adj[v]) {
			t.Fatalf("node %d degree differs", v)
		}
		for i := range a.Adj[v] {
			if a.Adj[v][i] != b.Adj[v][i] {
				t.Fatalf("node %d adjacency differs", v)
			}
		}
	}
	c := MustGenerate(Params{Nodes: 200, Edges: 800, CopyProb: 0.4, Seed: 10})
	same := true
	for v := range a.Adj {
		if len(a.Adj[v]) != len(c.Adj[v]) {
			same = false
			break
		}
	}
	if same {
		// Degrees identical across all nodes for a different seed is
		// astronomically unlikely.
		diff := false
		for v := range a.Adj {
			for i := range a.Adj[v] {
				if a.Adj[v][i] != c.Adj[v][i] {
					diff = true
					break
				}
			}
		}
		if !diff {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestDegreeDistributionSkewed(t *testing.T) {
	// Preferential attachment: the max degree must far exceed the mean
	// (heavy tail), the signature of web-graph structure.
	g := MustGenerate(Params{Nodes: 2000, Edges: 10000, CopyProb: 0.4, Seed: 4})
	mean := 2.0 * float64(g.EdgeCount) / float64(g.Nodes())
	max := 0
	for v := 0; v < g.Nodes(); v++ {
		if g.Degree(v) > max {
			max = g.Degree(v)
		}
	}
	if float64(max) < 5*mean {
		t.Fatalf("max degree %d not heavy-tailed (mean %.1f)", max, mean)
	}
}

func TestClusteringPresent(t *testing.T) {
	// The copy model must create triangles (needed for the MC benchmark to
	// have non-trivial cliques). Count triangles at a few hub nodes.
	g := MustGenerate(Params{Nodes: 1000, Edges: 8000, CopyProb: 0.5, Seed: 5})
	triangles := 0
	for v := 0; v < 100 && triangles == 0; v++ {
		adj := map[int32]bool{}
		for _, w := range g.Adj[v] {
			adj[w] = true
		}
		for _, w := range g.Adj[v] {
			for _, x := range g.Adj[w] {
				if adj[x] {
					triangles++
				}
			}
		}
	}
	if triangles == 0 {
		t.Fatal("copy model produced no triangles")
	}
}

func TestTable3Presets(t *testing.T) {
	// Exact Table 3 numbers.
	want := []struct {
		p     Preset
		nodes int
		edges int
	}{
		{UKCC, 28128, 900002},
		{UKMC, 5099, 239294},
		{EnwikiCC, 28126, 80002},
		{EnwikiMC, 43354, 170660},
	}
	for _, tc := range want {
		if tc.p.Nodes != tc.nodes || tc.p.Edges != tc.edges {
			t.Errorf("%s: preset %d/%d, want %d/%d", tc.p.Name, tc.p.Nodes, tc.p.Edges, tc.nodes, tc.edges)
		}
		if err := (Params{Nodes: tc.p.Nodes, Edges: tc.p.Edges, CopyProb: tc.p.CopyProb}).Validate(); err != nil {
			t.Errorf("%s: preset invalid: %v", tc.p.Name, err)
		}
	}
	if len(Presets()) != 4 {
		t.Error("Presets() must list all four inputs")
	}
}

func TestPresetFullScaleGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale graph generation in -short mode")
	}
	// The largest preset must actually generate with exact counts.
	g := MustGenerate(UKCC.Scaled(1.0))
	if g.Nodes() != UKCC.Nodes || g.EdgeCount != UKCC.Edges {
		t.Fatalf("uk(CC) generated %d/%d, want %d/%d", g.Nodes(), g.EdgeCount, UKCC.Nodes, UKCC.Edges)
	}
}

func TestScaled(t *testing.T) {
	p := UKMC.Scaled(0.1)
	if p.Nodes != 509 || p.Edges != 23929 {
		t.Fatalf("scaled = %d/%d", p.Nodes, p.Edges)
	}
	if _, err := Generate(p); err != nil {
		t.Fatalf("scaled params must generate: %v", err)
	}
	// Tiny factors clamp to valid graphs.
	tiny := EnwikiCC.Scaled(0.0001)
	if err := tiny.Validate(); err != nil {
		t.Fatalf("tiny scale invalid: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("factor > 1 must panic")
		}
	}()
	UKCC.Scaled(1.5)
}

func TestPropertyGeneratedGraphsValid(t *testing.T) {
	f := func(seed int64, n8 uint8, extra uint16) bool {
		n := int(n8%100) + 10
		edges := n - 1 + int(extra)%(n*(n-1)/2-n+2)
		g, err := Generate(Params{Nodes: n, Edges: edges, CopyProb: 0.4, Seed: seed})
		if err != nil {
			return false
		}
		sum := 0
		for v := 0; v < g.Nodes(); v++ {
			sum += g.Degree(v)
		}
		return g.EdgeCount == edges && sum == 2*edges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestScaledDensityPreservesDensity(t *testing.T) {
	full := UKMC // 5099 nodes, 239294 edges
	fullDensity := float64(full.Edges) / (float64(full.Nodes) * float64(full.Nodes-1) / 2)
	p := full.ScaledDensity(0.25)
	if p.Nodes != 1274 {
		t.Fatalf("nodes = %d", p.Nodes)
	}
	gotDensity := float64(p.Edges) / (float64(p.Nodes) * float64(p.Nodes-1) / 2)
	ratio := gotDensity / fullDensity
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("density ratio = %.2f, want ~1.0 (%.4f vs %.4f)", ratio, gotDensity, fullDensity)
	}
	if _, err := Generate(p); err != nil {
		t.Fatalf("density-scaled params must generate: %v", err)
	}
	// Proportional scaling, in contrast, raises relative density.
	prop := full.Scaled(0.25)
	propDensity := float64(prop.Edges) / (float64(prop.Nodes) * float64(prop.Nodes-1) / 2)
	if propDensity <= gotDensity {
		t.Fatal("proportional scaling should be denser than density-preserving")
	}
}

func TestScaledDensityClamps(t *testing.T) {
	tiny := EnwikiCC.ScaledDensity(0.001)
	if err := tiny.Validate(); err != nil {
		t.Fatalf("tiny density scale invalid: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("factor > 1 must panic")
		}
	}()
	UKCC.ScaledDensity(2)
}

func TestEdgesListMatchesAdjacency(t *testing.T) {
	g := MustGenerate(Params{Nodes: 300, Edges: 1500, CopyProb: 0.4, Seed: 8})
	if len(g.Edges) != g.EdgeCount {
		t.Fatalf("edge list has %d entries, want %d", len(g.Edges), g.EdgeCount)
	}
	// Every listed edge appears in both adjacency lists; no duplicates.
	seen := map[[2]int32]bool{}
	for _, e := range g.Edges {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		key := [2]int32{a, b}
		if seen[key] {
			t.Fatalf("duplicate edge %v", key)
		}
		seen[key] = true
		found := false
		for _, w := range g.Adj[e[0]] {
			if w == e[1] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("edge %v missing from adjacency", e)
		}
	}
}

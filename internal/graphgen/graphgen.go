// Package graphgen generates deterministic synthetic web graphs standing
// in for the LAW datasets (uk-2007-05@100000, enwiki-2018) used by the
// paper's JGraphT benchmarks (§4.5, Table 3). The generator is a copy
// model (preferential attachment with neighbour copying), which yields the
// power-law degree distributions and local clustering characteristic of
// web and wiki graphs; node ids are assigned in generation order, so
// "allocation order" when the graph is loaded differs from any traversal
// order — the property the benchmarks depend on.
package graphgen

import (
	"fmt"
	"math/rand"
)

// Graph is an undirected simple graph as adjacency lists over dense node
// ids [0, N).
type Graph struct {
	Name string
	Adj  [][]int32
	// EdgeCount is the number of undirected edges.
	EdgeCount int
	// Edges lists the edges in insertion order. Loaders that materialise
	// per-edge objects (as JGraphT does) allocate them in this order,
	// which is scattered with respect to any single node's adjacency —
	// the poor baseline locality the paper's benchmarks start from.
	Edges [][2]int32
}

// Nodes returns the node count.
func (g *Graph) Nodes() int { return len(g.Adj) }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return len(g.Adj[v]) }

// Params configures the copy-model generator.
type Params struct {
	Nodes int
	Edges int
	// CopyProb is the probability that a new edge copies a neighbour of
	// the prototype node instead of attaching preferentially. Higher
	// values create more triangles/cliques.
	CopyProb float64
	Seed     int64
	Name     string
}

// Validate checks generator parameters.
func (p Params) Validate() error {
	if p.Nodes < 2 {
		return fmt.Errorf("graphgen: need at least 2 nodes, got %d", p.Nodes)
	}
	maxEdges := p.Nodes * (p.Nodes - 1) / 2
	if p.Edges < p.Nodes-1 || p.Edges > maxEdges {
		return fmt.Errorf("graphgen: edge count %d outside [%d, %d]", p.Edges, p.Nodes-1, maxEdges)
	}
	if p.CopyProb < 0 || p.CopyProb > 1 {
		return fmt.Errorf("graphgen: copy probability %v outside [0,1]", p.CopyProb)
	}
	return nil
}

// Generate builds the graph. Same params -> identical graph.
func Generate(p Params) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.Nodes
	adjSet := make([]map[int32]struct{}, n)
	// adjList mirrors adjSet in insertion order so neighbour sampling is
	// deterministic (map iteration order is randomised in Go).
	adjList := make([][]int32, n)
	edges := make([][2]int32, 0, p.Edges)
	for i := range adjSet {
		adjSet[i] = make(map[int32]struct{})
	}
	// endpoints is the flattened edge endpoint list used for preferential
	// attachment (probability proportional to degree).
	endpoints := make([]int32, 0, 2*p.Edges)
	edgeCount := 0

	addEdge := func(a, b int32) bool {
		if a == b {
			return false
		}
		if _, dup := adjSet[a][b]; dup {
			return false
		}
		adjSet[a][b] = struct{}{}
		adjSet[b][a] = struct{}{}
		adjList[a] = append(adjList[a], b)
		adjList[b] = append(adjList[b], a)
		edges = append(edges, [2]int32{a, b})
		endpoints = append(endpoints, a, b)
		edgeCount++
		return true
	}

	// Spanning backbone: each node links to an earlier node, keeping the
	// graph connected (the paper's CC inputs are connected components).
	for v := 1; v < n; v++ {
		var u int32
		if len(endpoints) > 0 && rng.Float64() < 0.5 {
			u = endpoints[rng.Intn(len(endpoints))] // preferential
		} else {
			u = int32(rng.Intn(v)) // uniform earlier node
		}
		for u == int32(v) {
			u = int32(rng.Intn(v))
		}
		addEdge(int32(v), u)
	}

	// Remaining edges via the copy model: pick a node, pick a prototype,
	// copy one of its neighbours or attach preferentially.
	for guard := 0; edgeCount < p.Edges && guard < p.Edges*50; guard++ {
		v := int32(rng.Intn(n))
		var u int32
		if rng.Float64() < p.CopyProb {
			proto := endpoints[rng.Intn(len(endpoints))]
			ns := adjList[proto]
			if len(ns) == 0 {
				continue
			}
			u = ns[rng.Intn(len(ns))]
			// Copying a neighbour of a prototype that is itself a
			// neighbour of v creates triangles.
			if u == v {
				u = proto
			}
		} else {
			u = endpoints[rng.Intn(len(endpoints))]
		}
		addEdge(v, u)
	}
	// Top up with uniform random edges if the copy loop saturated.
	for edgeCount < p.Edges {
		addEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}

	g := &Graph{Name: p.Name, Adj: adjList, EdgeCount: edgeCount, Edges: edges}
	for v := range g.Adj {
		// Deterministic order: sort ascending (as when loading a sorted
		// dataset file).
		sortInt32(g.Adj[v])
	}
	return g, nil
}

// MustGenerate is Generate but panics on error.
func MustGenerate(p Params) *Graph {
	g, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return g
}

func sortInt32(s []int32) {
	// Insertion sort for short lists, shell gaps for longer; adjacency
	// lists are small on average but heavy-tailed.
	for gap := len(s) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(s); i++ {
			for j := i; j >= gap && s[j] < s[j-gap]; j -= gap {
				s[j], s[j-gap] = s[j-gap], s[j]
			}
		}
	}
}

// --- Table 3 presets ------------------------------------------------------

// Preset identifies one of the paper's four graph inputs.
type Preset struct {
	Name  string
	Nodes int
	Edges int
	// CopyProb tuned per dataset: web graphs (uk) are denser and more
	// clustered than wiki link graphs.
	CopyProb float64
	Seed     int64
}

// The paper's Table 3 inputs (the parts of the LAW graphs actually used).
var (
	UKCC     = Preset{Name: "uk(CC)", Nodes: 28128, Edges: 900002, CopyProb: 0.4, Seed: 101}
	UKMC     = Preset{Name: "uk(MC)", Nodes: 5099, Edges: 239294, CopyProb: 0.35, Seed: 102}
	EnwikiCC = Preset{Name: "enwiki(CC)", Nodes: 28126, Edges: 80002, CopyProb: 0.3, Seed: 103}
	EnwikiMC = Preset{Name: "enwiki(MC)", Nodes: 43354, Edges: 170660, CopyProb: 0.3, Seed: 104}
)

// Presets lists all Table 3 inputs.
func Presets() []Preset { return []Preset{UKCC, UKMC, EnwikiCC, EnwikiMC} }

// Scaled returns the preset shrunk by factor (0 < factor <= 1), keeping
// the density profile. Benchmarks use scaled graphs so a full 19-config
// sweep completes in reasonable time; factor 1 reproduces Table 3 exactly.
func (p Preset) Scaled(factor float64) Params {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("graphgen: scale factor %v outside (0,1]", factor))
	}
	nodes := int(float64(p.Nodes) * factor)
	if nodes < 16 {
		nodes = 16
	}
	edges := int(float64(p.Edges) * factor)
	if min := nodes - 1; edges < min {
		edges = min
	}
	if max := nodes * (nodes - 1) / 2; edges > max {
		edges = max
	}
	return Params{
		Nodes:    nodes,
		Edges:    edges,
		CopyProb: p.CopyProb,
		Seed:     p.Seed,
		Name:     p.Name,
	}
}

// ScaledDensity shrinks nodes by factor and edges by factor², preserving
// the graph's edge density (edges per node pair) instead of its average
// degree. Clique-enumeration benchmarks use this: proportional scaling
// makes small graphs relatively denser and explodes the number of maximal
// cliques, while density-preserving scaling keeps the clique structure of
// the full input. Factor 1 reproduces Table 3 exactly.
func (p Preset) ScaledDensity(factor float64) Params {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("graphgen: scale factor %v outside (0,1]", factor))
	}
	nodes := int(float64(p.Nodes) * factor)
	if nodes < 16 {
		nodes = 16
	}
	edges := int(float64(p.Edges) * factor * factor)
	if min := nodes - 1; edges < min {
		edges = min
	}
	if max := nodes * (nodes - 1) / 2; edges > max {
		edges = max
	}
	return Params{
		Nodes:    nodes,
		Edges:    edges,
		CopyProb: p.CopyProb,
		Seed:     p.Seed,
		Name:     p.Name,
	}
}

// Package rand stubs math/rand for the vtimepure fixtures.
package rand

func Int63() int64 { return 0 }

// Package time stubs the stdlib surface the vtimepure fixtures touch.
package time

type Duration int64

type Time struct{}

func Now() Time             { return Time{} }
func Since(t Time) Duration { return 0 }
func Sleep(d Duration)      {}

func (t Time) Sub(u Time) Duration { return 0 }

// Package other sits outside the virtual-time discipline: wall-clock
// reads here must stay silent.
package other

import "time"

// WallNow may read the wall clock freely.
func WallNow() time.Time { return time.Now() }

// Package loadgen plays a virtual-time target package (the scope match
// is on the final import-path segment).
package loadgen

import (
	"math/rand"
	"other"
	"time"
)

// Tick reads the wall clock: forbidden here.
func Tick() time.Time {
	return time.Now() // want `Tick calls time.Now`
}

// Wait sleeps on the wall clock.
func Wait() {
	time.Sleep(1) // want `Wait calls time.Sleep`
}

// Jitter draws from the global math/rand stream.
func Jitter() int64 {
	return rand.Int63() // want `Jitter uses math/rand`
}

// Fold only accumulates commutatively and collects keys for sorting:
// every range below is order-independent and must stay silent.
func Fold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	inverse := make(map[int]string, len(m))
	for k, v := range m {
		inverse[v] = k
	}
	return total + len(keys) + len(inverse)
}

// Render builds ordered output straight from a map range.
func Render(m map[string]int) string {
	out := ""
	for k := range m { // want `Render iterates a map in nondeterministic order`
		out += k
	}
	return out
}

// Watchdog is deliberately wall-clock and declares it.
//
//hcsgc:wall-clock
func Watchdog() time.Time { return time.Now() }

// touch keeps the out-of-scope package loaded so the scope gate is
// exercised: other.WallNow calls time.Now with no want comment.
var _ = other.WallNow

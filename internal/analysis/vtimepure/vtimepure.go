// Package vtimepure enforces the virtual-time discipline: the packages
// that must replay deterministically — loadgen, faultinject, signals,
// bench and the GC core itself — may not consult the wall clock, draw
// from non-splitmix randomness, or iterate a Go map into ordered output.
// Every experiment in EXPERIMENTS.md leans on bit-identical replay under
// a fixed seed; one stray time.Now or map-ordered report line breaks the
// A/B diffing that the whole methodology rests on.
//
// Three rule classes, all per-function:
//
//   - wall clock: calls to time.Now/Since/Until/Sleep/After/Tick/
//     NewTimer/NewTicker/AfterFunc. Virtual time (ExecSeconds, retired
//     loads) is the only clock the deterministic paths may read.
//   - randomness: any use of math/rand, math/rand/v2 or crypto/rand.
//     The sanctioned generator is the splitmix64 stream (loadgen.rng,
//     overload.mix), which is seed-stable across runs and Go releases.
//   - map iteration: a range over a map whose body is not a pure
//     accumulation (commutative numeric reduction, key/value copy into
//     another map, collecting keys for a later sort, or deletion).
//     Writing formatted output directly from a map range is the
//     canonical nondeterminism bug.
//
// A function annotated //hcsgc:wall-clock is exempt from all three: it
// declares the function deliberately wall-clock (the STW watchdog that
// catches mutators stuck outside the safepoint protocol is the canonical
// example — it must fire in real seconds precisely when virtual time has
// stopped advancing).
package vtimepure

import (
	"go/ast"
	"go/types"

	"hcsgc/internal/analysis/lintkit"
)

// Analyzer is the vtimepure pass.
var Analyzer = &lintkit.Analyzer{
	Name: "vtimepure",
	Doc: "deterministic-replay packages (core, loadgen, faultinject, signals, bench) " +
		"must not read the wall clock, use non-splitmix randomness, or iterate maps " +
		"into ordered output; //hcsgc:wall-clock exempts a function",
	Run: run,
}

// targetPkgs are the final path segments of the packages under the
// virtual-time discipline.
var targetPkgs = map[string]bool{
	"core":        true,
	"loadgen":     true,
	"faultinject": true,
	"signals":     true,
	"bench":       true,
}

// wallClockFuncs are the time-package functions that read or arm the
// wall clock. time.Duration arithmetic and time.Time plumbing are fine —
// only acquiring fresh wall time is flagged.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// randPkgs are the forbidden randomness sources.
var randPkgs = map[string]bool{
	"math/rand": true, "math/rand/v2": true, "crypto/rand": true,
}

func run(p *lintkit.Pass) error {
	if !targetPkgs[lastSegment(p.Pkg.Path())] {
		return nil
	}
	lintkit.ForEachFuncNode(p, true, func(decl *ast.FuncDecl, n ast.Node) bool {
		if lintkit.HasDirective(decl, "wall-clock") {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if f := lintkit.FuncOf(p.TypesInfo, n.Fun); f != nil && f.Pkg() != nil {
				if f.Pkg().Path() == "time" && wallClockFuncs[f.Name()] {
					p.Reportf(n.Pos(),
						"%s calls time.%s in a deterministic-replay package; use virtual "+
							"time, or annotate //hcsgc:wall-clock with justification",
						decl.Name.Name, f.Name())
				}
			}
		case *ast.SelectorExpr:
			if obj := qualifiedPkg(p.TypesInfo, n); obj != nil && randPkgs[obj.Imported().Path()] {
				p.Reportf(n.Pos(),
					"%s uses %s; deterministic-replay packages must draw randomness "+
						"from the seeded splitmix64 stream",
					decl.Name.Name, obj.Imported().Path())
			}
		case *ast.RangeStmt:
			if t := p.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok && !pureAccumulation(p.TypesInfo, n.Body) {
					p.Reportf(n.Pos(),
						"%s iterates a map in nondeterministic order with side effects "+
							"beyond pure accumulation; collect and sort the keys first",
						decl.Name.Name)
				}
			}
		}
		return true
	})
	return nil
}

// qualifiedPkg returns the *types.PkgName when sel's qualifier is a
// package identifier (rand.Int63 → math/rand), or nil.
func qualifiedPkg(info *types.Info, sel *ast.SelectorExpr) *types.PkgName {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}

// pureAccumulation reports whether every statement in a map-range body
// is order-independent: numeric reductions (sum += v), copies into
// another indexed collection (out[k] = v), key collection for a later
// sort (keys = append(keys, k)), deletion, and control flow over those.
// Anything else — above all, writing formatted output — depends on the
// iteration order and is rejected.
func pureAccumulation(info *types.Info, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		if !pureStmt(info, stmt) {
			return false
		}
	}
	return true
}

func pureStmt(info *types.Info, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			if isNumeric(info.TypeOf(lhs)) {
				continue // commutative reduction target
			}
			if _, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				continue // out[k] = v: keyed copy, order-independent
			}
			if i < len(s.Rhs) && isAppendCall(s.Rhs[i]) {
				continue // keys = append(keys, k): sorted downstream
			}
			if isBool(info.TypeOf(lhs)) {
				continue // found/any flags: order-independent
			}
			return false
		}
		return true
	case *ast.IncDecStmt:
		return true
	case *ast.ExprStmt:
		// Only the delete builtin is an order-independent bare call.
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		if s.Body != nil && !pureAccumulation(info, s.Body) {
			return false
		}
		if s.Else != nil {
			return pureStmt(info, s.Else)
		}
		return true
	case *ast.BlockStmt:
		return pureAccumulation(info, s)
	case *ast.BranchStmt, *ast.EmptyStmt:
		return true
	case *ast.DeclStmt:
		return true
	default:
		return false
	}
}

func isNumeric(t types.Type) bool {
	b, ok := t.(*types.Basic)
	if !ok {
		if t == nil {
			return false
		}
		b, ok = t.Underlying().(*types.Basic)
		if !ok {
			return false
		}
	}
	return b.Info()&types.IsNumeric != 0
}

func isBool(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsBoolean != 0
}

func isAppendCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append"
}

func lastSegment(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

package vtimepure_test

import (
	"testing"

	"hcsgc/internal/analysis/lintkit"
	"hcsgc/internal/analysis/vtimepure"
)

func TestVTimePure(t *testing.T) {
	// Loading loadgen pulls in the out-of-scope package other, whose
	// wall-clock call must stay silent (the scope gate), plus the time
	// and math/rand stubs.
	lintkit.RunFixture(t, "testdata", "loadgen", vtimepure.Analyzer)
}

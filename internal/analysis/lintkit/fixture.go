package lintkit

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// This file is the analysistest equivalent: golden packages live under
// <root>/src/<importpath>/ (GOPATH layout), are type-checked hermetically
// — imports resolve only against other fixture packages, so stdlib or
// hcsgc dependencies are stubbed in the fixture tree — and carry
// expectations as x/tools-style trailing comments:
//
//	p.words[0] = 1 // want `accessed atomically`
//
// Each `want` takes one or more quoted regexps that must match a
// diagnostic reported on that line; diagnostics without a matching want,
// and wants without a matching diagnostic, fail the test.

// fixtureLoader loads GOPATH-layout packages from a testdata root.
type fixtureLoader struct {
	root    string // .../testdata (contains src/)
	fset    *token.FileSet
	pkgs    map[string]*Package
	loading map[string]bool
}

// Import implements types.Importer over the fixture tree.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	pkg, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

func (l *fixtureLoader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("fixture import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.root, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q: %w (stub it under %s/src)", path, err, l.root)
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("fixture package %q has no Go files in %s", path, dir)
	}

	var files []*ast.File
	var paths []string
	for _, name := range goFiles {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		paths = append(paths, full)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %q: %w", path, err)
	}
	pkg := &Package{
		ImportPath: path,
		Dir:        dir,
		GoFiles:    paths,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadFixture loads the fixture package at <root>/src/<target> plus its
// transitive fixture dependencies, returning every loaded package (the
// target last is not guaranteed; use ImportPath to pick).
func LoadFixture(root, target string) ([]*Package, error) {
	l := &fixtureLoader{
		root:    root,
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	if _, err := l.load(target); err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, p := range l.pkgs {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// RunFixture loads <root>/src/<target>, runs the analyzers over the
// loaded fixture set, and checks every diagnostic against the `want`
// comments in the fixture sources. A fixture tree without want comments
// therefore asserts the analyzers stay silent on it.
func RunFixture(t *testing.T, root, target string, analyzers ...*Analyzer) {
	t.Helper()
	pkgs, err := LoadFixture(root, target)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}

	wants, err := collectWants(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// want is one expectation: a regexp that must match a diagnostic on
// file:line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRE matches one Go-quoted string or backquoted string.
var quotedRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(pkgs []*Package) ([]want, error) {
	var wants []want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					quoted := quotedRE.FindAllString(m[1], -1)
					if len(quoted) == 0 {
						return nil, fmt.Errorf("%s: malformed want comment %q", pos, c.Text)
					}
					for _, q := range quoted {
						s, err := strconv.Unquote(q)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want pattern %s: %w", pos, q, err)
						}
						re, err := regexp.Compile(s)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want regexp %q: %w", pos, s, err)
						}
						wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants, nil
}

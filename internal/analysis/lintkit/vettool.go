package lintkit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig is the JSON the go command hands a -vettool for each package
// (the x/tools unitchecker protocol). Field names and semantics follow
// cmd/go/internal/work's vet action.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// MaybeRunVetTool inspects argv and, when the process is being driven by
// `go vet -vettool=...`, speaks the unit-checker protocol and exits. It
// returns normally (false) when argv looks like a plain standalone
// invocation, so main can fall through to the pattern-based driver.
//
// Protocol:
//
//	tool -V=full      print a version line the go command can cache on
//	tool -flags       print the JSON flag schema (we expose none)
//	tool foo.cfg      analyze one package described by the config
//
// Module-wide analyzers (RunModule) do not run here: the protocol hands
// the tool one package at a time, exactly like x/tools analyzers without
// facts. CI runs the standalone driver for full coverage.
func MaybeRunVetTool(analyzers []*Analyzer) bool {
	args := os.Args[1:]
	if len(args) != 1 {
		return false
	}
	switch {
	case args[0] == "-V=full" || args[0] == "--V=full":
		printVersion()
		os.Exit(0)
	case args[0] == "-flags" || args[0] == "--flags":
		fmt.Println("[]")
		os.Exit(0)
	case strings.HasSuffix(args[0], ".cfg"):
		diags, err := runVetUnit(args[0], analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if len(diags) > 0 {
			for _, d := range diags {
				fmt.Fprintln(os.Stderr, d)
			}
			os.Exit(2)
		}
		os.Exit(0)
	}
	return false
}

// printVersion emits the -V=full line. The go command uses it as the
// tool's cache key, so it must change when the binary does: a content
// hash of the executable keeps stale caches from hiding new checks.
func printVersion() {
	name := filepath.Base(os.Args[0])
	sum := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				sum = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, sum)
}

// runVetUnit analyzes the single package described by the vet config.
func runVetUnit(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", cfgPath, err)
	}

	// The go command treats VetxOutput as a declared build output; write
	// it even when producing no facts (this tool keeps none).
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("hcsgc-lint: no facts\n"), 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := checkPackage(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}

	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report:    collect,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, cfg.ImportPath, err)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

package lintkit

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	// DepOnly marks a same-module dependency loaded only so module-wide
	// analyzers can see its declarations and annotations (alloc-free
	// contracts, lock ranks, call-graph bodies). Per-package analyzers do
	// not run on it and no diagnostics are reported into it.
	DepOnly bool

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg mirrors the `go list -json` fields the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns (relative to dir,
// "./..." style) and returns them ready for analysis. It shells out to
// `go list -export` so the go command resolves build tags, module paths
// and compiles export data for every dependency; the packages themselves
// are parsed and type-checked from source so analyzers see full syntax.
//
// Test files are not loaded: the invariants guard production code paths,
// and tests exercise raw memory on purpose. (The vet-tool mode does see
// test files, so analyzers must still tolerate them; they skip _test.go.)
//
// Dependencies inside the same module are loaded from source as DepOnly
// packages: module-wide analyzers need their bodies and directive
// comments (a //hcsgc:alloc-free annotation on a heap function must be
// visible when only internal/core is being linted), but they produce no
// diagnostics of their own.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,DepOnly,Incomplete,Error",
		"-deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %v: %v\n%s", patterns, err, stderr.String())
	}

	modPath := modulePath(dir)
	inModule := func(path string) bool {
		return modPath != "" && (path == modPath || strings.HasPrefix(path, modPath+"/"))
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly || inModule(p.ImportPath) {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 || len(p.CgoFiles) > 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.DepOnly = p.DepOnly
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// modulePath returns the main module's path, or "" outside a module.
func modulePath(dir string) string {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	var paths []string
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		files = append(files, f)
		paths = append(paths, path)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		GoFiles:    paths,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// NewTypesInfo allocates the types.Info maps the analyzers rely on.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Package lintkit is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that the hcsgc-lint analyzers
// need. The repo deliberately carries no third-party modules, so the
// framework is built on the standard library only: go/ast and go/types do
// the heavy lifting, `go list -export` supplies package metadata and
// export data (load.go), and the `go vet -vettool` unit-checker protocol
// is spoken natively (vettool.go).
//
// Analyzers are per-package by default (Run); an analyzer may additionally
// declare a module-wide pass (RunModule) that sees every loaded package at
// once — used for invariants that span packages, like "every fault
// injection point is wired to a site". Module passes only run under the
// standalone driver (cmd/hcsgc-lint PATTERN...); the vet-tool protocol is
// strictly per-package, mirroring how x/tools analyzers degrade without
// facts.
//
// # Annotations
//
// The GC core's machine-checked discipline rides on directive comments
// attached to function declarations:
//
//	//hcsgc:gc-thread    — the function runs on a GC thread (marking,
//	                       relocation, verification) and may bypass the
//	                       mutator load-barrier API.
//	//hcsgc:barrier-impl — the function IS the mutator barrier/allocation
//	                       implementation (internal/core's Mutator API).
//	//hcsgc:stw-only     — the function may only run inside a
//	                       stop-the-world pause.
//
// Directives are written like //go:build constraints: no space after the
// slashes, anywhere in the function's doc comment.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is the one-paragraph description shown by -help.
	Doc string
	// Run checks a single package. May be nil for module-only analyzers.
	Run func(*Pass) error
	// RunModule, when non-nil, checks the whole loaded package set at
	// once. Only the standalone driver invokes it; the vet-tool protocol
	// cannot (it hands the tool one package at a time).
	RunModule func(*ModulePass) error
}

// A Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// A ModulePass carries every loaded package for a module-wide analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Pass
	report   func(Diagnostic)
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Reportf reports a module-wide diagnostic; fset must be the owning
// package's file set (all passes of one load share it).
func (m *ModulePass) Reportf(fset *token.FileSet, pos token.Pos, format string, args ...any) {
	m.report(Diagnostic{
		Pos:      fset.Position(pos),
		Analyzer: m.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The GC invariants are about production code paths; tests deliberately
// poke raw memory and stale colors to assert on them.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// FileOf returns the *ast.File containing pos, or nil.
func (p *Pass) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// --- directive comments -------------------------------------------------

// directivePrefix is the marker shared by all hcsgc annotations.
const directivePrefix = "//hcsgc:"

// Directives returns the hcsgc annotation names ("gc-thread", "stw-only",
// ...) attached to the function declaration's doc comment.
func Directives(decl *ast.FuncDecl) []string {
	if decl == nil || decl.Doc == nil {
		return nil
	}
	var out []string
	for _, c := range decl.Doc.List {
		if rest, ok := strings.CutPrefix(c.Text, directivePrefix); ok {
			name, _, _ := strings.Cut(rest, " ")
			name = strings.TrimSpace(name)
			if name != "" {
				out = append(out, name)
			}
		}
	}
	return out
}

// HasDirective reports whether decl carries //hcsgc:<name>.
func HasDirective(decl *ast.FuncDecl, name string) bool {
	for _, d := range Directives(decl) {
		if d == name {
			return true
		}
	}
	return false
}

// ForEachFuncNode walks every top-level function declaration in the pass
// (skipping test files when skipTests is set) and calls fn for every node
// inside it, including nodes of nested function literals — the enclosing
// *named* declaration is what carries annotations. Returning false from fn
// prunes the subtree.
func ForEachFuncNode(p *Pass, skipTests bool, fn func(decl *ast.FuncDecl, n ast.Node) bool) {
	for _, file := range p.Files {
		if skipTests && p.IsTestFile(file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				if n == nil {
					return false
				}
				return fn(decl, n)
			})
		}
	}
}

// --- symbol matching ----------------------------------------------------

// FuncOf resolves a call or selector expression to the *types.Func it
// invokes or references, or nil.
func FuncOf(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if f, ok := info.Uses[e.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := info.Uses[e].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsMethod reports whether f is the method recvType.name declared in the
// package with the given import path. recvType is the bare named-type name
// ("Heap"); pointerness of the receiver is ignored.
func IsMethod(f *types.Func, pkgPath, recvType, name string) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath || f.Name() != name {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedTypeName(sig.Recv().Type()) == recvType
}

// IsPkgFunc reports whether f is the package-level function pkgPath.name.
func IsPkgFunc(f *types.Func, pkgPath, name string) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath || f.Name() != name {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// namedTypeName unwraps pointers and returns the named type's name, or "".
func namedTypeName(t types.Type) string {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u.Obj().Name()
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return ""
		}
	}
}

// --- running ------------------------------------------------------------

// RunAnalyzers applies the analyzers to the loaded packages: every
// per-package Run over every package, then every RunModule once over the
// whole set. Diagnostics come back sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }

	// DepOnly packages exist to give module-wide analyzers visibility into
	// same-module dependencies (bodies, annotations, lock ranks): they get
	// a pass so they join ModulePass.Pkgs, but per-package analyzers do
	// not run on them and any diagnostic anchored in one is dropped — the
	// user did not ask for findings there.
	drop := func(Diagnostic) {}

	passesByAnalyzer := make(map[*Analyzer][]*Pass)
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			report := collect
			if pkg.DepOnly {
				report = drop
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    report,
			}
			passesByAnalyzer[a] = append(passesByAnalyzer[a], pass)
			if a.Run == nil || pkg.DepOnly {
				continue
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{Analyzer: a, Pkgs: passesByAnalyzer[a], report: collect}
		if err := a.RunModule(mp); err != nil {
			return nil, fmt.Errorf("%s (module): %w", a.Name, err)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

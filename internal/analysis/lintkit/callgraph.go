package lintkit

// This file is the shared module-wide call-graph and intraprocedural
// region layer underneath the concurrency-discipline analyzers
// (lockorder, blockedcheck, allocfree). It generalises the two tricks
// stwonly pioneered: identifying functions across separately
// type-checked packages by a stable string key (source-checked packages
// and export-data packages produce distinct *types.Func objects for the
// same function), and splitting reporting between a per-package pass and
// a module pass so the two never double-report.
//
// The "dataflow" here is deliberately source-order, not control-flow:
// brackets (mu.Lock()..mu.Unlock(), beginBlocked()..endBlocked()) are
// matched by position within one function body, with a deferred close
// extending the bracket to the end of the body. That approximation is
// exact for the straight-line critical sections this codebase writes,
// and it keeps the analyzers deterministic and fast enough to run on
// every package under go vet.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FuncKey identifies a function across separately type-checked packages
// (source-checked here, export-data there) by path, receiver and name.
func FuncKey(f *types.Func) string {
	recv := ""
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedTypeName(sig.Recv().Type()); n != "" {
			recv = n + "."
		}
	}
	return f.Pkg().Path() + "." + recv + f.Name()
}

// A CallSite is one static call inside a function body.
type CallSite struct {
	Call      *ast.CallExpr
	Callee    *types.Func
	CalleeKey string
	// InBlocked is set when the site sits inside a function literal
	// passed to a call of a method named Blocked — the Mutator.Blocked
	// escape hatch. Code in there runs with the mutator marked blocked,
	// so blocking there is sanctioned.
	InBlocked bool
}

// A FuncNode is one named function declaration in the call graph.
// Nodes exist only for source-checked declarations (bodies the loader
// parsed); calls into export-data-only packages appear as CallSites with
// no matching node.
type FuncNode struct {
	Key   string
	Decl  *ast.FuncDecl
	Pass  *Pass
	Calls []CallSite
}

// A CallGraph maps FuncKey to node over a set of passes.
type CallGraph struct {
	Nodes map[string]*FuncNode
}

// BuildCallGraph constructs the static call graph over the given passes,
// skipping test files. Calls inside nested function literals are
// attributed to the enclosing named declaration, matching how
// annotations attach.
func BuildCallGraph(passes []*Pass) *CallGraph {
	g := &CallGraph{Nodes: make(map[string]*FuncNode)}
	for _, p := range passes {
		for _, file := range p.Files {
			if p.IsTestFile(file.Pos()) {
				continue
			}
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				f, ok := p.TypesInfo.Defs[decl.Name].(*types.Func)
				if !ok || f == nil {
					continue
				}
				node := &FuncNode{Key: FuncKey(f), Decl: decl, Pass: p}
				blocked := blockedRanges(decl.Body)
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := FuncOf(p.TypesInfo, call.Fun)
					if callee == nil || callee.Pkg() == nil {
						return true
					}
					node.Calls = append(node.Calls, CallSite{
						Call:      call,
						Callee:    callee,
						CalleeKey: FuncKey(callee),
						InBlocked: inRanges(blocked, call.Pos()),
					})
					return true
				})
				g.Nodes[node.Key] = node
			}
		}
	}
	return g
}

// Reachable returns the set of function keys reachable from the roots by
// following call edges for which follow returns true (follow == nil
// follows everything). Roots are included.
func (g *CallGraph) Reachable(roots []string, follow func(from *FuncNode, cs CallSite) bool) map[string]bool {
	seen := make(map[string]bool)
	queue := append([]string(nil), roots...)
	for _, r := range queue {
		seen[r] = true
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		node := g.Nodes[key]
		if node == nil {
			continue
		}
		for _, cs := range node.Calls {
			if follow != nil && !follow(node, cs) {
				continue
			}
			if !seen[cs.CalleeKey] {
				seen[cs.CalleeKey] = true
				queue = append(queue, cs.CalleeKey)
			}
		}
	}
	return seen
}

// posRange is a half-open lexical extent.
type posRange struct{ lo, hi token.Pos }

func inRanges(rs []posRange, pos token.Pos) bool {
	for _, r := range rs {
		if r.lo <= pos && pos < r.hi {
			return true
		}
	}
	return false
}

// blockedRanges finds the extents of function literals passed to a call
// of a method named Blocked (the Mutator.Blocked wrapper). The match is
// by method name, like stwonly's pause-primitive match: it survives
// refactors of where Blocked hangs and works in fixtures with stub
// types.
func blockedRanges(body *ast.BlockStmt) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Blocked" {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				out = append(out, posRange{lit.Pos(), lit.End()})
			}
		}
		return true
	})
	return out
}

// IsPauseOwner reports whether the function body both stops and resumes
// the world. The match is by callee name — stopTheWorld,
// stopTheWorldTimed and resumeTheWorld are the repo's pause primitives
// regardless of which type they hang off — so the check stays robust
// across refactors of the safepoint plumbing.
func IsPauseOwner(decl *ast.FuncDecl) bool {
	var stops, resumes bool
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			name = fun.Name
		default:
			return true
		}
		switch name {
		case "stopTheWorld", "stopTheWorldTimed", "StopTheWorld":
			stops = true
		case "resumeTheWorld", "ResumeTheWorld":
			resumes = true
		}
		return true
	})
	return stops && resumes
}

// --- mutex identity -------------------------------------------------------

// MutexOp classifies a call as a mutex acquire (+1: Lock, RLock,
// TryLock, TryRLock) or release (-1: Unlock, RUnlock) and identifies
// which mutex it operates on: "pkgpath.Type.field" for a struct field,
// "pkgpath.name" for a package-level var, "pkgpath:local:name" for a
// local. Returns dir 0 when the call is not a lock operation or the
// mutex cannot be identified.
func MutexOp(info *types.Info, pkgPath string, call *ast.CallExpr) (owner string, dir int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		dir = +1
	case "Unlock", "RUnlock":
		dir = -1
	default:
		return "", 0
	}
	f := FuncOf(info, sel)
	if f == nil || f.Pkg() == nil {
		return "", 0
	}
	recv := namedTypeName(recvType(f))
	switch {
	case f.Pkg().Path() == "sync" && (recv == "Mutex" || recv == "RWMutex"):
	case mutexPkg(f.Pkg().Path()) && recv == "Mutex":
		// contention.Mutex is sync.Mutex plus attribution counters: same
		// operations, same bracket discipline, same lock-order ranks on
		// the declaring field.
	default:
		return "", 0
	}
	owner = mutexIdent(info, pkgPath, ast.Unparen(sel.X))
	if owner == "" {
		return "", 0
	}
	return owner, dir
}

// mutexPkg reports whether the import path names the instrumented-mutex
// package (matched by last path segment so GOPATH-layout analyzer
// fixtures can stub it as plain "contention").
func mutexPkg(path string) bool {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return path == "contention"
}

// mutexIdent names the mutex-valued expression.
func mutexIdent(info *types.Info, pkgPath string, x ast.Expr) string {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		// c.cycleMu, e.rt.mu, ...: identify the field by owning struct
		// type + field name, so every access through any path names the
		// same lock.
		obj, _ := info.Uses[x.Sel].(*types.Var)
		if obj == nil {
			return ""
		}
		pkg := ""
		if obj.Pkg() != nil {
			pkg = obj.Pkg().Path()
		}
		if owner := namedTypeName(info.TypeOf(x.X)); owner != "" {
			return pkg + "." + owner + "." + obj.Name()
		}
		return pkg + "." + obj.Name()
	case *ast.Ident:
		obj, _ := info.Uses[x].(*types.Var)
		if obj == nil {
			return ""
		}
		pkg := pkgPath
		if obj.Pkg() != nil {
			pkg = obj.Pkg().Path()
		}
		if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
			return pkg + "." + obj.Name() // package-level var
		}
		return pkg + ":local:" + obj.Name()
	default:
		return ""
	}
}

func recvType(f *types.Func) types.Type {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return sig.Recv().Type()
	}
	return nil
}

// --- bracket regions ------------------------------------------------------

// A Bracket is one source-ordered open..close region inside a function
// body: mu.Lock()..mu.Unlock(), beginBlocked()..endBlocked(). ClosePos is
// the end of the body when the close is deferred or missing.
type Bracket struct {
	Owner    string
	Open     *ast.CallExpr
	OpenPos  token.Pos
	ClosePos token.Pos
}

// Contains reports whether pos falls strictly inside the bracket
// (after the opening call).
func (b Bracket) Contains(pos token.Pos) bool {
	return b.OpenPos < pos && pos < b.ClosePos
}

// CollectBrackets scans a function body and pairs opening calls with
// their closing calls in source order. classify returns (owner, +1) for
// an open, (owner, -1) for a close, and dir 0 to ignore the call; owner
// names the resource so independent brackets interleave safely. A
// deferred close (defer mu.Unlock()) extends its bracket to the end of
// the body, as does an open with no matching close.
func CollectBrackets(body *ast.BlockStmt, classify func(call *ast.CallExpr, deferred bool) (owner string, dir int)) []Bracket {
	type event struct {
		pos      token.Pos
		call     *ast.CallExpr
		owner    string
		dir      int
		deferred bool
	}
	var events []event
	ast.Inspect(body, func(n ast.Node) bool {
		var call *ast.CallExpr
		deferred := false
		switch n := n.(type) {
		case *ast.DeferStmt:
			call = n.Call
			deferred = true
		case *ast.CallExpr:
			call = n
		default:
			return true
		}
		owner, dir := classify(call, deferred)
		if dir != 0 {
			events = append(events, event{call.Pos(), call, owner, dir, deferred})
		}
		if deferred {
			// The DeferStmt's CallExpr child would be visited again
			// without the deferred flag; prune it. Arguments of the
			// deferred call are not bracket events in this codebase.
			return false
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	open := make(map[string][]int) // owner -> indices into out, innermost last
	var out []Bracket
	for _, e := range events {
		switch {
		case e.dir > 0:
			out = append(out, Bracket{Owner: e.owner, Open: e.call, OpenPos: e.pos, ClosePos: body.End()})
			open[e.owner] = append(open[e.owner], len(out)-1)
		case e.dir < 0 && !e.deferred:
			stack := open[e.owner]
			if len(stack) == 0 {
				continue // unmatched close: ignore
			}
			idx := stack[len(stack)-1]
			open[e.owner] = stack[:len(stack)-1]
			out[idx].ClosePos = e.pos
		default:
			// Deferred close: the innermost open bracket for the owner
			// already extends to the body end; just consume it so a
			// later textual close pairs with an earlier open.
			stack := open[e.owner]
			if len(stack) > 0 {
				open[e.owner] = stack[:len(stack)-1]
			}
		}
	}
	return out
}

package lintkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func funcDecls(t *testing.T, src string) map[string]*ast.FuncDecl {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]*ast.FuncDecl)
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			out[fd.Name.Name] = fd
		}
	}
	return out
}

func TestDirectives(t *testing.T) {
	const src = `package p

// foo does things.
//
//hcsgc:gc-thread
//hcsgc:stw-only reason text after the name is ignored
func foo() {}

// bar has no directives.
func bar() {}
`
	decls := funcDecls(t, src)
	foo, bar := decls["foo"], decls["bar"]

	if got := Directives(foo); len(got) != 2 || got[0] != "gc-thread" || got[1] != "stw-only" {
		t.Errorf("Directives(foo) = %v, want [gc-thread stw-only]", got)
	}
	if !HasDirective(foo, "stw-only") || HasDirective(foo, "barrier-impl") {
		t.Error("HasDirective(foo) misclassified")
	}
	if got := Directives(bar); got != nil {
		t.Errorf("Directives(bar) = %v, want nil", got)
	}
	if HasDirective(nil, "gc-thread") {
		t.Error("HasDirective(nil) = true")
	}
}

func TestSortDiagnostics(t *testing.T) {
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "b.go", Line: 1}, Analyzer: "z"},
		{Pos: token.Position{Filename: "a.go", Line: 9}, Analyzer: "z"},
		{Pos: token.Position{Filename: "a.go", Line: 2, Column: 5}, Analyzer: "z"},
		{Pos: token.Position{Filename: "a.go", Line: 2, Column: 5}, Analyzer: "a"},
	}
	SortDiagnostics(diags)
	want := []struct {
		file     string
		line     int
		analyzer string
	}{
		{"a.go", 2, "a"}, {"a.go", 2, "z"}, {"a.go", 9, "z"}, {"b.go", 1, "z"},
	}
	for i, w := range want {
		d := diags[i]
		if d.Pos.Filename != w.file || d.Pos.Line != w.line || d.Analyzer != w.analyzer {
			t.Fatalf("diags[%d] = %v, want %s:%d [%s]", i, d, w.file, w.line, w.analyzer)
		}
	}
}

// Package barriercheck enforces the load-barrier discipline at the heart
// of the collector's correctness argument: every mutator-facing reference
// load must go through the Mutator barrier API (internal/core), because
// HOTNESS only observes accesses that reach the barrier slow path and
// self-healing only happens there. Reading or writing heap words through
// the raw Heap accessors (LoadWord/StoreWord/CASWord/CopyObject) bypasses
// both.
//
// Raw access is legal in exactly two places, and both must say so:
//
//   - the barrier/allocation implementation itself, annotated
//     //hcsgc:barrier-impl (the Mutator methods in internal/core);
//   - GC-thread code (marking, relocation, STW verification), annotated
//     //hcsgc:gc-thread.
//
// The heap package itself (the accessor implementation) and _test.go
// files (which poke raw memory on purpose) are exempt.
package barriercheck

import (
	"go/ast"

	"hcsgc/internal/analysis/lintkit"
)

// heapPkg is the import path of the simulated heap.
const heapPkg = "hcsgc/internal/heap"

// rawAccessors are the (*heap.Heap) methods that touch heap words without
// a barrier.
var rawAccessors = map[string]bool{
	"LoadWord":   true,
	"StoreWord":  true,
	"CASWord":    true,
	"CopyObject": true,
}

// Analyzer is the barriercheck pass.
var Analyzer = &lintkit.Analyzer{
	Name: "barriercheck",
	Doc: "reference loads outside the GC must use the Mutator barrier API, " +
		"not raw heap.Heap word accessors; GC-thread callers are allowlisted " +
		"with //hcsgc:gc-thread, the barrier implementation with //hcsgc:barrier-impl",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	if pass.Pkg.Path() == heapPkg {
		return nil // the accessor implementation itself
	}
	lintkit.ForEachFuncNode(pass, true, func(decl *ast.FuncDecl, n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f := lintkit.FuncOf(pass.TypesInfo, sel)
		if f == nil || !rawAccessors[f.Name()] || !lintkit.IsMethod(f, heapPkg, "Heap", f.Name()) {
			return true
		}
		if lintkit.HasDirective(decl, "gc-thread") || lintkit.HasDirective(decl, "barrier-impl") {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"raw heap word access heap.(*Heap).%s bypasses the load barrier: "+
				"use the Mutator API, or annotate the enclosing function with "+
				"//hcsgc:gc-thread (GC thread) or //hcsgc:barrier-impl (barrier implementation)",
			f.Name())
		return true
	})
	return nil
}

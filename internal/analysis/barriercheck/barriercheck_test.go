package barriercheck_test

import (
	"testing"

	"hcsgc/internal/analysis/barriercheck"
	"hcsgc/internal/analysis/lintkit"
)

func TestBarrierCheck(t *testing.T) {
	lintkit.RunFixture(t, "testdata", "a", barriercheck.Analyzer)
}

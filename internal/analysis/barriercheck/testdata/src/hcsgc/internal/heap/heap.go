// Package heap is a fixture stub: just enough surface for the analyzers
// to resolve hcsgc/internal/heap symbols hermetically.
package heap

type Ref uint64

type Heap struct{}

func (h *Heap) LoadWord(core any, addr uint64) uint64        { return 0 }
func (h *Heap) StoreWord(core any, addr uint64, v uint64)    {}
func (h *Heap) CASWord(core any, addr, old, new uint64) bool { return false }
func (h *Heap) CopyObject(core any, src, dst, size uint64)   {}

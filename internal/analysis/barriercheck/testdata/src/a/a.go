// Package a seeds barriercheck violations: raw heap word access from
// un-annotated functions, plus the allowlisted shapes that must stay
// silent.
package a

import "hcsgc/internal/heap"

var h *heap.Heap

// badLoad reads heap memory without the barrier and without standing.
func badLoad(addr uint64) uint64 {
	return h.LoadWord(nil, addr) // want `raw heap word access heap\.\(\*Heap\)\.LoadWord`
}

// badStoreInClosure shows the enclosing named declaration is what counts:
// the closure does the access, the (un-annotated) outer function is blamed.
func badStoreInClosure(addr uint64) func() {
	return func() {
		h.StoreWord(nil, addr, 1) // want `raw heap word access heap\.\(\*Heap\)\.StoreWord`
	}
}

// goodGCThread is allowlisted as GC-thread code.
//
//hcsgc:gc-thread
func goodGCThread(addr uint64) {
	if !h.CASWord(nil, addr, 0, 1) {
		h.CopyObject(nil, addr, addr+8, 8)
	}
}

// goodBarrierImpl is allowlisted as the barrier implementation; closures
// inherit the annotation.
//
//hcsgc:barrier-impl
func goodBarrierImpl(addr uint64) func() uint64 {
	return func() uint64 { return h.LoadWord(nil, addr) }
}

// Package heap is a fixture stub carrying the reference-layout surface
// colorsafe guards. This file is named ref.go: the analyzer exempts it,
// mirroring the real implementation file.
package heap

type Ref uint64

type Color uint8

const (
	AddrBits     = 42
	AddrMask     = (uint64(1) << AddrBits) - 1
	ColorMaskAll = uint64(0x7) << AddrBits
)

func MakeRef(addr uint64, c Color) Ref { return Ref(addr | uint64(c)<<AddrBits) }

func (r Ref) Addr() uint64 { return uint64(r) & AddrMask }

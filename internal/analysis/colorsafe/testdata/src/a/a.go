// Package a seeds colorsafe violations: raw layout-constant arithmetic
// and hand-forged colored references outside ref.go.
package a

import "hcsgc/internal/heap"

// badMask strips color bits by hand instead of calling Addr.
func badMask(r heap.Ref) uint64 {
	return uint64(r) & heap.AddrMask // want `raw color-bit arithmetic with heap\.AddrMask`
}

// badShift builds a color mask from the layout width.
func badShift(k uint) uint64 {
	return 1 << (heap.AddrBits + k) // want `raw color-bit arithmetic with heap\.AddrBits`
}

// badClear drops all colors with the raw mask.
func badClear(raw uint64) uint64 {
	return raw &^ heap.ColorMaskAll // want `raw color-bit arithmetic with heap\.ColorMaskAll`
}

// badForge builds a Ref from bit arithmetic instead of MakeRef.
func badForge(addr, color uint64) heap.Ref {
	return heap.Ref(addr | color<<40) // want `heap\.Ref built from raw bit arithmetic`
}

// goodHelpers is the sanctioned route.
func goodHelpers(addr uint64) heap.Ref {
	r := heap.MakeRef(addr, 1)
	_ = r.Addr()
	// A plain conversion without bit arithmetic stays legal: tests and
	// serialization round-trip raw words.
	return heap.Ref(addr)
}

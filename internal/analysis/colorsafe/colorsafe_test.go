package colorsafe_test

import (
	"testing"

	"hcsgc/internal/analysis/colorsafe"
	"hcsgc/internal/analysis/lintkit"
)

func TestColorSafe(t *testing.T) {
	lintkit.RunFixture(t, "testdata", "a", colorsafe.Analyzer)
}

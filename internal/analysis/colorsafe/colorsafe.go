// Package colorsafe keeps color-bit manipulation behind the heap.Ref
// helpers. A reference's color lives in bits 42..44 (ZGC layout); code
// that masks or shifts those bits by hand — `uint64(r) & AddrMask`,
// `raw &^ ColorMaskAll`, `1 << (AddrBits + k)` — silently breaks when the
// layout changes and has already produced one class of bug the dynamic
// verifier exists for (stale-color refs surviving a phase flip).
//
// The rule: outside internal/heap/ref.go, the constants AddrMask,
// ColorMaskAll and AddrBits must not be referenced at all, and heap.Ref
// values must not be built from raw bit arithmetic — use MakeRef, Recolor,
// Addr, Color and HasColor. Test files are exempt: ref_test asserts the
// layout invariants in terms of the raw masks on purpose.
package colorsafe

import (
	"go/ast"
	"go/token"
	"path/filepath"

	"hcsgc/internal/analysis/lintkit"
)

const heapPkg = "hcsgc/internal/heap"

// rawConsts are the layout constants that only ref.go may touch.
var rawConsts = map[string]bool{
	"AddrMask":     true,
	"ColorMaskAll": true,
	"AddrBits":     true,
}

// Analyzer is the colorsafe pass.
var Analyzer = &lintkit.Analyzer{
	Name: "colorsafe",
	Doc: "color-bit arithmetic on references (AddrMask/ColorMaskAll/AddrBits, " +
		"or heap.Ref built from raw bit expressions) is only allowed inside " +
		"internal/heap/ref.go; use MakeRef/Recolor/Addr/Color elsewhere",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		if pass.Pkg.Path() == heapPkg &&
			filepath.Base(pass.Fset.Position(file.Pos()).Filename) == "ref.go" {
			continue // the helper implementation itself
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				obj := pass.TypesInfo.Uses[n]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				if obj.Pkg().Path() == heapPkg && rawConsts[obj.Name()] {
					pass.Reportf(n.Pos(),
						"raw color-bit arithmetic with heap.%s: use the heap.Ref helpers "+
							"(MakeRef/Recolor/Addr/Color) so the reference layout stays in ref.go",
						obj.Name())
				}
			case *ast.CallExpr:
				// A conversion heap.Ref(<bit expression>) forges a colored
				// reference outside the helpers.
				if len(n.Args) != 1 {
					return true
				}
				if !isHeapRefConversion(pass, n) {
					return true
				}
				if bin, ok := ast.Unparen(n.Args[0]).(*ast.BinaryExpr); ok && isBitOp(bin.Op) {
					pass.Reportf(n.Pos(),
						"heap.Ref built from raw bit arithmetic: use MakeRef or Recolor")
				}
			}
			return true
		})
	}
	return nil
}

// isHeapRefConversion reports whether call is a conversion to heap.Ref.
func isHeapRefConversion(pass *lintkit.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	var name *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name = fun.Sel
	case *ast.Ident:
		name = fun
	default:
		return false
	}
	obj := pass.TypesInfo.Uses[name]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == heapPkg && obj.Name() == "Ref"
}

// isBitOp reports whether op is bit-level arithmetic.
func isBitOp(op token.Token) bool {
	switch op {
	case token.AND, token.OR, token.XOR, token.AND_NOT, token.SHL, token.SHR:
		return true
	}
	return false
}

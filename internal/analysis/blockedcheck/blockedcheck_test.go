package blockedcheck_test

import (
	"testing"

	"hcsgc/internal/analysis/blockedcheck"
	"hcsgc/internal/analysis/lintkit"
)

func TestBlockedCheck(t *testing.T) {
	// Loading wrap pulls in mapp and rt; RunFixture covers the
	// per-package propagation (mapp, rt) and the module pass (wrap's
	// cross-package reach into mapp.CrossDrain).
	lintkit.RunFixture(t, "testdata", "wrap", blockedcheck.Analyzer)
}

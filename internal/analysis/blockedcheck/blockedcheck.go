// Package blockedcheck enforces the safepoint liveness rule that PR 6
// stated as a gotcha and PR 7 re-learned the hard way: any goroutine
// holding an attached mutator that idles without polling deadlocks every
// stop-the-world — the pause owner waits for the mutator to park, the
// mutator waits for work. The fix is always the same: wrap the wait in
// Mutator.Blocked(), which marks the mutator parked for the duration.
// This pass finds the waits that forgot.
//
// A potentially-blocking operation — channel send/receive, range over a
// channel, select without a default, sync.WaitGroup.Wait, sync.Cond.Wait,
// time.Sleep, or Lock on a "blocking lock" (a mutex whose critical
// section somewhere blocks or stops the world, like the collector's
// cycleMu) — is flagged when it is reachable from attached-mutator
// context and not sanctioned. Sanctioned means: lexically inside a
// Mutator.Blocked closure, inside a beginBlocked/endBlocked bracket (the
// allocation stall path marks itself blocked by hand), or after the
// mutator has been detached with Mutator.Close.
//
// Attached-mutator context starts at any function whose body touches a
// value of type *Mutator and spreads through static call edges, stopping
// at //hcsgc:gc-thread and //hcsgc:stw-only functions (GC-side code has
// no attached mutator), pause owners, the safepoint protocol
// implementation itself (methods on the safepoints type), and the
// sanctioned regions above. Two structural rules keep the context
// honest: a `go func() {...}()` body runs on a fresh goroutine and only
// re-enters context if it touches a Mutator itself, and detach ordering
// follows RUNTIME order — defers unwind last-in-first-out, so the
// canonical `defer rt.Close()` / `defer m.Close()` pair detaches the
// mutator before the runtime teardown blocks. The per-package pass
// propagates within one package; the module pass adds cross-package
// reach and reports only what the per-package view could not see.
package blockedcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"hcsgc/internal/analysis/lintkit"
)

// Analyzer is the blockedcheck pass.
var Analyzer = &lintkit.Analyzer{
	Name: "blockedcheck",
	Doc: "potentially-blocking operations reachable from attached-mutator context " +
		"must be wrapped in Mutator.Blocked() (or sit inside a " +
		"beginBlocked/endBlocked bracket); //hcsgc:gc-thread and //hcsgc:stw-only " +
		"code is exempt",
	Run:       func(p *lintkit.Pass) error { return check([]*lintkit.Pass{p}, false) },
	RunModule: func(m *lintkit.ModulePass) error { return check(m.Pkgs, true) },
}

// A blockOp is one potentially-blocking operation in a function body.
type blockOp struct {
	pos  token.Pos
	kind string
}

// funcFacts is what the pass derives per named declaration.
type funcFacts struct {
	node     *lintkit.FuncNode
	ops      []blockOp  // blocking ops outside sanctioned regions
	root     bool       // touches a *Mutator: context starts here
	exempt   bool       // gc-thread / stw-only / pause owner / safepoint impl
	detach   evKey      // runtime-order key of the first Mutator.Close, if any
	hasClose bool       // detach is meaningful
	sanct    []posRange // Blocked closures + beginBlocked brackets
	spawned  []posRange // go-statement closures that never touch a Mutator
	defers   []posRange // defer statement subtrees, for runtime ordering
}

type posRange struct{ lo, hi token.Pos }

// evKey orders events by when they run, not where they sit in the
// source: everything in the body phase runs before any defer, and defers
// run last-in-first-out, so later source positions run earlier.
type evKey struct {
	deferred bool
	pos      token.Pos
}

func (k evKey) before(o evKey) bool {
	if k.deferred != o.deferred {
		return !k.deferred
	}
	if k.deferred {
		return k.pos > o.pos
	}
	return k.pos < o.pos
}

func (f *funcFacts) key(pos token.Pos) evKey {
	return evKey{deferred: inRanges(f.defers, pos), pos: pos}
}

func check(passes []*lintkit.Pass, crossOnly bool) error {
	graph := lintkit.BuildCallGraph(passes)
	facts := make(map[string]*funcFacts, len(graph.Nodes))
	blockingLocks := findBlockingLocks(graph)
	for key, node := range graph.Nodes {
		facts[key] = analyze(node, blockingLocks)
	}

	local := make(map[string]bool)
	for _, p := range passes {
		for k := range contextSet(graph, facts, p.Pkg.Path()) {
			local[k] = true
		}
	}
	target := local
	if crossOnly {
		global := contextSet(graph, facts, "")
		target = make(map[string]bool)
		for k := range global {
			if !local[k] {
				target[k] = true
			}
		}
	}

	for key := range target {
		f := facts[key]
		if f == nil || f.exempt {
			continue
		}
		for _, op := range f.ops {
			f.node.Pass.Reportf(op.pos,
				"%s in %s, which runs with an attached mutator; wrap the wait in "+
					"Mutator.Blocked() or the STW pause owner will spin on it",
				op.kind, f.node.Decl.Name.Name)
		}
	}
	return nil
}

// contextSet computes the attached-mutator context: roots plus everything
// reachable through unsanctioned call edges. pkgPath restricts both roots
// and edges to one package (the per-package view); "" means module-wide.
func contextSet(graph *lintkit.CallGraph, facts map[string]*funcFacts, pkgPath string) map[string]bool {
	var roots []string
	for key, f := range facts {
		if f.root && !f.exempt && (pkgPath == "" || f.node.Pass.Pkg.Path() == pkgPath) {
			roots = append(roots, key)
		}
	}
	return graph.Reachable(roots, func(from *lintkit.FuncNode, cs lintkit.CallSite) bool {
		f := facts[from.Key]
		if f == nil || f.exempt {
			return false
		}
		if cs.InBlocked || inRanges(f.sanct, cs.Call.Pos()) {
			return false // the callee runs with the mutator marked blocked
		}
		if inRanges(f.spawned, cs.Call.Pos()) {
			return false // a fresh goroutine, not the spawner's mutator
		}
		if f.hasClose && f.detach.before(f.key(cs.Call.Pos())) {
			return false // after Mutator.Close: no attached mutator left
		}
		callee := facts[cs.CalleeKey]
		if callee != nil && callee.exempt {
			return false
		}
		if pkgPath != "" && (callee == nil || callee.node.Pass.Pkg.Path() != pkgPath) {
			return false // per-package view stops at the import boundary
		}
		return true
	})
}

// analyze derives the per-function facts.
func analyze(node *lintkit.FuncNode, blockingLocks map[string]bool) *funcFacts {
	p, decl := node.Pass, node.Decl
	f := &funcFacts{node: node}

	if lintkit.HasDirective(decl, "gc-thread") || lintkit.HasDirective(decl, "stw-only") ||
		lintkit.IsPauseOwner(decl) || safepointImpl(decl) {
		f.exempt = true
		return f
	}

	// Runtime-order and goroutine structure: defers run at function exit
	// (last-in-first-out), and a `go func() {...}()` body runs on a fresh
	// goroutine that does not inherit the spawner's attached mutator
	// unless it touches one itself.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			f.defers = append(f.defers, posRange{n.Pos(), n.End()})
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok && !touchesMutator(p.TypesInfo, lit.Body) {
				f.spawned = append(f.spawned, posRange{lit.Pos(), lit.End()})
			}
		}
		return true
	})

	// Root detection, part 1: a receiver or parameter of type *Mutator
	// puts the function in attached-mutator context even before the body
	// touches it.
	if fobj, ok := p.TypesInfo.Defs[decl.Name].(*types.Func); ok && fobj != nil {
		sig := fobj.Type().(*types.Signature)
		if sig.Recv() != nil && namedType(sig.Recv().Type()) == "Mutator" {
			f.root = true
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if namedType(sig.Params().At(i).Type()) == "Mutator" {
				f.root = true
			}
		}
	}

	// Sanctioned regions: Blocked closures and beginBlocked/endBlocked
	// brackets.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Blocked" {
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					f.sanct = append(f.sanct, posRange{lit.Pos(), lit.End()})
				}
			}
		}
		return true
	})
	for _, b := range lintkit.CollectBrackets(decl.Body, func(call *ast.CallExpr, deferred bool) (string, int) {
		switch calleeName(call) {
		case "beginBlocked":
			return "sp", +1
		case "endBlocked":
			return "sp", -1
		}
		return "", 0
	}) {
		f.sanct = append(f.sanct, posRange{b.OpenPos, b.ClosePos})
	}

	// Channel ops that are a select's comm clauses belong to the select,
	// not to themselves.
	var commRanges []posRange
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if cc, ok := n.(*ast.CommClause); ok && cc.Comm != nil {
			commRanges = append(commRanges, posRange{cc.Comm.Pos(), cc.Comm.End()})
		}
		return true
	})

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		var op *blockOp
		switch n := n.(type) {
		case *ast.SendStmt:
			if !inRanges(commRanges, n.Pos()) {
				op = &blockOp{n.Pos(), "channel send"}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inRanges(commRanges, n.Pos()) {
				op = &blockOp{n.Pos(), "channel receive"}
			}
		case *ast.RangeStmt:
			if t := p.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					op = &blockOp{n.Pos(), "range over channel"}
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				op = &blockOp{n.Pos(), "select without default"}
			}
		case *ast.CallExpr:
			if mu, dir := lintkit.MutexOp(p.TypesInfo, p.Pkg.Path(), n); dir > 0 && blockingLocks[mu] {
				op = &blockOp{n.Pos(), fmt.Sprintf("Lock of %s, whose critical section blocks", mu)}
				break
			}
			callee := lintkit.FuncOf(p.TypesInfo, n.Fun)
			if callee == nil || callee.Pkg() == nil {
				break
			}
			switch {
			case callee.Pkg().Path() == "time" && callee.Name() == "Sleep":
				op = &blockOp{n.Pos(), "time.Sleep"}
			case callee.Pkg().Path() == "sync" && callee.Name() == "Wait":
				op = &blockOp{n.Pos(), recvName(callee) + ".Wait"}
			}
			// Track the detach point: after Close the mutator is gone.
			// The earliest detach in RUNTIME order wins — a
			// `defer m.Close()` written after `defer rt.Close()` still
			// detaches first, because defers unwind in reverse.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				if namedType(p.TypesInfo.TypeOf(sel.X)) == "Mutator" {
					if k := f.key(n.Pos()); !f.hasClose || k.before(f.detach) {
						f.hasClose, f.detach = true, k
					}
				}
			}
		}
		if op != nil && !inRanges(f.sanct, op.pos) && !inRanges(f.spawned, op.pos) {
			f.ops = append(f.ops, *op)
		}
		// Root detection: the body touches a *Mutator-typed value.
		if e, ok := n.(ast.Expr); ok && !f.root {
			if namedType(p.TypesInfo.TypeOf(e)) == "Mutator" {
				f.root = true
			}
		}
		return true
	})
	if f.hasClose {
		kept := f.ops[:0]
		for _, op := range f.ops {
			if !f.detach.before(f.key(op.pos)) {
				kept = append(kept, op)
			}
		}
		f.ops = kept
	}
	return f
}

// touchesMutator reports whether any expression in the subtree has the
// named type Mutator — the body-level root heuristic, reused to decide
// whether a spawned goroutine carries its own attached mutator.
func touchesMutator(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && namedType(info.TypeOf(e)) == "Mutator" {
			found = true
		}
		return !found
	})
	return found
}

// findBlockingLocks returns the mutexes whose critical sections may
// block: a Lock..Unlock bracket somewhere lexically contains a blocking
// primitive, a pause primitive, or a call whose callee may transitively
// block (cycleMu is the canonical case — the whole GC cycle,
// stop-the-world included, runs under it via runCycle).
func findBlockingLocks(graph *lintkit.CallGraph) map[string]bool {
	// directBlock marks functions whose own body contains a blocking or
	// pause primitive; the fixpoint closes that over call edges.
	mayBlock := make(map[string]bool)
	directPositions := make(map[string][]token.Pos)
	for key, node := range graph.Nodes {
		var poss []token.Pos
		condWaits := false
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				poss = append(poss, n.Pos())
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					poss = append(poss, n.Pos())
				}
			case *ast.CallExpr:
				switch calleeName(n) {
				case "stopTheWorld", "stopTheWorldTimed", "Sleep":
					poss = append(poss, n.Pos())
				case "Wait":
					// sync.Cond.Wait atomically RELEASES the mutex it
					// parks under, so it does not make the enclosing
					// Lock bracket a blocking critical section — the
					// condvar pattern (markPool.get) is the whole point.
					// The function still blocks its caller, so it seeds
					// the transitive fixpoint below.
					if condWait(node.Pass.TypesInfo, n) {
						condWaits = true
					} else {
						poss = append(poss, n.Pos())
					}
				}
			}
			return true
		})
		directPositions[key] = poss
		if len(poss) > 0 || condWaits {
			mayBlock[key] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for key, node := range graph.Nodes {
			if mayBlock[key] {
				continue
			}
			for _, cs := range node.Calls {
				if mayBlock[cs.CalleeKey] {
					mayBlock[key] = true
					changed = true
					break
				}
			}
		}
	}

	out := make(map[string]bool)
	for key, node := range graph.Nodes {
		p := node.Pass
		brackets := lintkit.CollectBrackets(node.Decl.Body, func(call *ast.CallExpr, deferred bool) (string, int) {
			return lintkit.MutexOp(p.TypesInfo, p.Pkg.Path(), call)
		})
		if len(brackets) == 0 {
			continue
		}
		inside := directPositions[key]
		for _, cs := range node.Calls {
			if mayBlock[cs.CalleeKey] {
				inside = append(inside, cs.Call.Pos())
			}
		}
		for _, b := range brackets {
			for _, pos := range inside {
				if b.Contains(pos) {
					out[b.Owner] = true
					break
				}
			}
		}
	}
	return out
}

// safepointImpl reports whether the declaration is part of the safepoint
// protocol itself — a method on the safepoints registry. poll and
// stopTheWorld park on the registry's condvar by design; flagging the
// implementation of Blocked() for not calling Blocked() would be
// circular.
func safepointImpl(decl *ast.FuncDecl) bool {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return false
	}
	t := decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "safepoints"
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

// condWait reports whether the call is sync.Cond.Wait.
func condWait(info *types.Info, call *ast.CallExpr) bool {
	f := lintkit.FuncOf(info, call.Fun)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() != nil && namedType(sig.Recv().Type()) == "Cond"
}

func recvName(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedType(sig.Recv().Type()); n != "" {
			return n
		}
	}
	return "sync"
}

func namedType(t types.Type) string {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u.Obj().Name()
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return ""
		}
	}
}

func inRanges(rs []posRange, pos token.Pos) bool {
	for _, r := range rs {
		if r.lo <= pos && pos < r.hi {
			return true
		}
	}
	return false
}

// Package sync stubs the stdlib surface the blockedcheck fixtures touch.
package sync

type Mutex struct{ state int }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type Cond struct{ L *Mutex }

func NewCond(l *Mutex) *Cond { return &Cond{L: l} }
func (c *Cond) Wait()        {}
func (c *Cond) Broadcast()   {}
func (c *Cond) Signal()      {}

type WaitGroup struct{ n int }

func (wg *WaitGroup) Add(delta int) {}
func (wg *WaitGroup) Done()         {}
func (wg *WaitGroup) Wait()         {}

// Package mapp is application code holding an attached mutator: the
// per-package propagation cases.
package mapp

import (
	"rt"
	"sync"
	"time"
)

// Serve waits correctly: the receive is wrapped in Blocked.
func Serve(m *rt.Mutator, ch chan int) int {
	out := 0
	m.Blocked(func() { out = <-ch })
	return out
}

// BadRecv waits bare with the mutator attached.
func BadRecv(m *rt.Mutator, ch chan int) int {
	return <-ch // want `channel receive in BadRecv`
}

// BadWait joins a WaitGroup bare.
func BadWait(m *rt.Mutator, wg *sync.WaitGroup) {
	wg.Wait() // want `WaitGroup.Wait in BadWait`
}

// BadSleep naps on the wall clock bare.
func BadSleep(m *rt.Mutator) {
	time.Sleep(1) // want `time.Sleep in BadSleep`
}

// BadSelect parks on a select with no default.
func BadSelect(m *rt.Mutator, a, b chan int) int {
	select { // want `select without default in BadSelect`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// PollSelect never parks: the default arm keeps it live.
func PollSelect(m *rt.Mutator, a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}

// BadIndirect reaches a bare wait through a same-package helper.
func BadIndirect(m *rt.Mutator, ch chan int) int {
	return drain(ch)
}

func drain(ch chan int) int {
	return <-ch // want `channel receive in drain`
}

// GoodIndirect wraps the helper call in Blocked: the helper's wait is
// sanctioned by the caller's closure.
func GoodIndirect(m *rt.Mutator, ch chan int) int {
	out := 0
	m.Blocked(func() { out = drain2(ch) })
	return out
}

func drain2(ch chan int) int { return <-ch }

// AfterClose may wait freely: the mutator is detached first.
func AfterClose(m *rt.Mutator, ch chan int) int {
	m.Close()
	return <-ch
}

// SpawnDetached hands the wait to a fresh goroutine that never touches
// a mutator: the spawned body does not inherit this function's context.
func SpawnDetached(m *rt.Mutator, ch chan int) {
	go func() {
		<-ch
	}()
}

// SpawnAttached spawns a goroutine that handles its own mutator and
// then waits bare: the touch re-enters context inside the closure.
func SpawnAttached(m *rt.Mutator, ch chan int) {
	go func() {
		var m2 rt.Mutator
		<-ch // want `channel receive in SpawnAttached`
		m2.Close()
	}()
}

// FillPool feeds the condvar pool bare: Put's Lock is not a blocking
// acquisition because Get's Cond.Wait releases the mutex.
func FillPool(m *rt.Mutator, p *rt.Pool) {
	p.Put(m)
}

// DeferredTeardown is the canonical cleanup pair: the deferred wait is
// WRITTEN first but RUNS second — defers unwind in reverse — so the
// mutator is already detached when teardown blocks.
func DeferredTeardown(m *rt.Mutator, ch chan int) {
	defer teardown(ch)
	defer m.Close()
	m.Blocked(func() {})
}

func teardown(ch chan int) int { return <-ch }

// BadDeferOrder inverts the pair: the deferred wait runs FIRST, with
// the mutator still attached.
func BadDeferOrder(m *rt.Mutator, ch chan int) {
	defer m.Close()
	defer teardown2(ch)
}

func teardown2(ch chan int) int { return <-ch } // want `channel receive in teardown2`

// EarlyDeferClose queues the detach for exit but keeps the mutator
// attached for the whole body: the bare wait still fires.
func EarlyDeferClose(m *rt.Mutator, ch chan int) int {
	defer m.Close()
	return <-ch // want `channel receive in EarlyDeferClose`
}

// GCSide runs on a GC thread: no attached mutator, waits are fine.
//
//hcsgc:gc-thread
func GCSide(m *rt.Mutator, ch chan int) int {
	return <-ch
}

// CrossDrain is only ever called from another package's mutator context
// (the module pass must still find it).
func CrossDrain(ch chan int) int {
	return <-ch // want `channel receive in CrossDrain`
}

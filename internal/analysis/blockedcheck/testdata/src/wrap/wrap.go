// Package wrap drives mapp from its own mutator context: the bare wait
// it reaches lives one package over, which only the module pass sees.
package wrap

import (
	"mapp"
	"rt"
)

// Pump reaches mapp.CrossDrain's bare receive across the package
// boundary.
func Pump(m *rt.Mutator, ch chan int) int {
	return mapp.CrossDrain(ch)
}

// PumpWrapped sanctions the same call.
func PumpWrapped(m *rt.Mutator, ch chan int) int {
	out := 0
	m.Blocked(func() { out = mapp.CrossDrain(ch) })
	return out
}

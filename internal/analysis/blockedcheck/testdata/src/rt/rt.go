// Package rt plays the runtime core: the Mutator type, the safepoint
// protocol it parks on, the Blocked escape hatch, and a Collector whose
// cycle lock holds across a stop-the-world (the blocking-lock case).
package rt

import "sync"

// safepoints is the protocol registry; its methods park by design and
// the pass exempts them wholesale.
type safepoints struct{ ch chan struct{} }

// poll parks until the pause releases the mutator.
func (s *safepoints) poll() { <-s.ch }

func (s *safepoints) beginBlocked() {}
func (s *safepoints) endBlocked()   {}

// Mutator is an attached mutator; its name is what the pass keys
// context on.
type Mutator struct{ sp *safepoints }

// Blocked marks the mutator parked while fn waits.
func (m *Mutator) Blocked(fn func()) {
	m.sp.beginBlocked()
	fn()
	m.sp.endBlocked()
}

// Close detaches the mutator.
func (m *Mutator) Close() {}

// Stall marks itself blocked by hand around the wait, the way the
// allocation stall path does.
func (m *Mutator) Stall(c chan int) int {
	m.sp.beginBlocked()
	v := <-c
	m.sp.endBlocked()
	return v
}

// Collector serializes cycles under cycleMu; the critical section stops
// the world, which makes cycleMu a blocking lock.
type Collector struct {
	cycleMu sync.Mutex
	sp      *safepoints
}

func (c *Collector) stopTheWorld()   { c.sp.ch <- struct{}{} }
func (c *Collector) resumeTheWorld() {}

// Collect owns the pause: exempt, and the source of cycleMu's
// blocking-lock classification.
func (c *Collector) Collect() {
	c.cycleMu.Lock()
	c.stopTheWorld()
	c.resumeTheWorld()
	c.cycleMu.Unlock()
}

// Request takes the cycle lock with an attached mutator in hand and no
// bracket: Lock can stall behind a full GC cycle.
func (c *Collector) Request(m *Mutator) {
	c.cycleMu.Lock() // want `Lock of rt.Collector.cycleMu, whose critical section blocks in Request`
	c.cycleMu.Unlock()
}

// RequestWrapped brackets the same acquisition.
func (c *Collector) RequestWrapped(m *Mutator) {
	m.sp.beginBlocked()
	c.cycleMu.Lock()
	c.cycleMu.Unlock()
	m.sp.endBlocked()
}

// Pool is the condvar pattern: Get parks under mu, but sync.Cond.Wait
// RELEASES the mutex while parked, so mu is not a blocking lock and
// Put's bare acquisition from mutator context stays silent.
type Pool struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

// Put contributes work and wakes a waiter; mutators call this bare.
func (p *Pool) Put(m *Mutator) {
	p.mu.Lock()
	p.n++
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Get parks on the condvar until work arrives (GC workers only).
func (p *Pool) Get() int {
	p.mu.Lock()
	for p.n == 0 {
		p.cond.Wait()
	}
	p.n--
	p.mu.Unlock()
	return p.n
}

// Package time stubs the stdlib surface the blockedcheck fixtures touch.
package time

type Duration int64

func Sleep(d Duration) {}

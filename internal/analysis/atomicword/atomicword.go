// Package atomicword catches the mixed atomic/plain access class of data
// race: once any code path touches a struct field through sync/atomic,
// every access to that field's memory must be atomic — a single plain
// load or store re-introduces the race the atomics were bought to fix
// (the same family staticcheck's SA-class checks and the PR 2 UndoAlloc
// bug live in).
//
// Two shapes are tracked per package:
//
//   - scalar fields:   atomic.LoadUint64(&s.f)   → every other `s.f` use
//     must also be an atomic call argument;
//   - slice elements:  atomic.StoreUint64(&s.f[i], v) → every other
//     indexed access `s.f[i]` must be atomic. Whole-slice operations on
//     s.f (len, range, reslice, replacing the header) stay legal: the
//     atomicity contract covers the element memory, not the header, and
//     header swaps happen under documented quiescence (e.g. STW).
//
// Fields of the sync/atomic wrapper types (atomic.Uint64 & friends) are
// atomic by construction and need no tracking. Test files are exempt.
package atomicword

import (
	"go/ast"
	"go/types"
	"strings"

	"hcsgc/internal/analysis/lintkit"
)

// Analyzer is the atomicword pass.
var Analyzer = &lintkit.Analyzer{
	Name: "atomicword",
	Doc: "a struct field accessed through sync/atomic anywhere must be accessed " +
		"atomically everywhere (plain reads or writes of such fields race)",
	Run: run,
}

// atomicFuncs are the sync/atomic package-level operations whose first
// argument is the address being operated on.
func isAtomicOp(f *types.Func) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(f.Name(), prefix) {
			return true
		}
	}
	return false
}

func run(pass *lintkit.Pass) error {
	type usage struct {
		scalar bool // atomic ops on &s.f itself
		elem   bool // atomic ops on &s.f[i]
		pos    ast.Node
	}
	atomicFields := make(map[*types.Var]*usage)
	// blessed marks the exact field-access nodes that appear inside an
	// atomic call's address argument; phase 2 skips them.
	blessed := make(map[ast.Node]bool)

	fieldOf := func(e ast.Expr) *types.Var {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return nil
		}
		return s.Obj().(*types.Var)
	}

	// Phase 1: find atomic call sites and record their target fields.
	lintkit.ForEachFuncNode(pass, true, func(decl *ast.FuncDecl, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if !isAtomicOp(lintkit.FuncOf(pass.TypesInfo, call.Fun)) {
			return true
		}
		unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || unary.Op.String() != "&" {
			return true
		}
		switch target := ast.Unparen(unary.X).(type) {
		case *ast.SelectorExpr: // &s.f
			if fv := fieldOf(target); fv != nil {
				u := atomicFields[fv]
				if u == nil {
					u = &usage{pos: target}
					atomicFields[fv] = u
				}
				u.scalar = true
				blessed[target] = true
			}
		case *ast.IndexExpr: // &s.f[i]
			if fv := fieldOf(target.X); fv != nil {
				u := atomicFields[fv]
				if u == nil {
					u = &usage{pos: target}
					atomicFields[fv] = u
				}
				u.elem = true
				blessed[target] = true
			}
		}
		return true
	})
	if len(atomicFields) == 0 {
		return nil
	}

	// Phase 2: flag plain accesses to the recorded fields.
	lintkit.ForEachFuncNode(pass, true, func(decl *ast.FuncDecl, n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			if blessed[n] {
				return true
			}
			fv := fieldOf(n.X)
			if fv == nil {
				return true
			}
			if u, ok := atomicFields[fv]; ok && u.elem {
				pass.Reportf(n.Pos(),
					"elements of field %s are accessed atomically elsewhere; "+
						"this plain indexed access races — use sync/atomic here too",
					fv.Name())
			}
		case *ast.SelectorExpr:
			if blessed[n] {
				return true
			}
			fv := fieldOf(n)
			if fv == nil {
				return true
			}
			u, ok := atomicFields[fv]
			if !ok || !u.scalar {
				return true
			}
			pass.Reportf(n.Pos(),
				"field %s is accessed atomically elsewhere; this plain access "+
					"races — use sync/atomic here too",
				fv.Name())
		}
		return true
	})
	return nil
}

package atomicword_test

import (
	"testing"

	"hcsgc/internal/analysis/atomicword"
	"hcsgc/internal/analysis/lintkit"
)

func TestAtomicWord(t *testing.T) {
	lintkit.RunFixture(t, "testdata", "a", atomicword.Analyzer)
}

// Package a seeds atomicword violations: fields touched through
// sync/atomic in one place and with plain loads or stores in another.
package a

import "sync/atomic"

type page struct {
	words  []uint64
	seq    uint64
	frozen uint64 // only ever plain: stays unflagged
}

// atomicPaths establishes the atomic contract for words elements and seq.
func atomicPaths(p *page, i int) uint64 {
	atomic.StoreUint64(&p.words[i], 7)
	return atomic.LoadUint64(&p.seq)
}

// badPlainElem races the element store above.
func badPlainElem(p *page, i int) uint64 {
	return p.words[i] // want `elements of field words are accessed atomically elsewhere`
}

// badPlainScalar races the seq load above.
func badPlainScalar(p *page) {
	p.seq = 1 // want `field seq is accessed atomically elsewhere`
}

// goodHeaderOps exercises the legal whole-slice shapes: the contract
// covers element memory, not the slice header.
func goodHeaderOps(p *page) int {
	p.words = nil
	p.words = make([]uint64, 8)
	p.frozen = 1
	return len(p.words)
}

// Package atomic is a fixture stub of sync/atomic: the analyzer matches
// by import path and function name, so empty bodies suffice.
package atomic

func LoadUint64(addr *uint64) uint64                          { return *addr }
func StoreUint64(addr *uint64, val uint64)                    { *addr = val }
func AddUint64(addr *uint64, delta uint64) uint64             { return 0 }
func CompareAndSwapUint64(addr *uint64, old, new uint64) bool { return false }

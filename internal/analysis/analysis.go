// Package analysis aggregates the hcsgc-lint invariant checkers. Each
// sub-package holds one analyzer; this package is the single registry the
// driver (cmd/hcsgc-lint), the vet-tool mode and the regression tests all
// share, so a new analyzer added to All is automatically wired into CI,
// `go vet -vettool`, and the fixture harness.
//
// The checkers and the invariants they machine-check:
//
//	barriercheck   — raw heap word access only on GC threads or in the
//	                 barrier implementation (//hcsgc:gc-thread,
//	                 //hcsgc:barrier-impl)
//	colorsafe      — reference color-bit arithmetic stays in heap/ref.go
//	atomicword     — no mixed atomic/plain access to the same field
//	stwonly        — //hcsgc:stw-only functions only run inside a pause
//	telemetrynames — hcsgc_* metric naming and single registration
//	faultpoints    — every fault injection point is wired (module-wide)
//	allocfree      — //hcsgc:alloc-free fast paths proven free of
//	                 Go-runtime allocations
//	blockedcheck   — blocking waits reachable from attached-mutator
//	                 context are wrapped in Mutator.Blocked()
//	lockorder      — lock acquisitions consistently ordered
//	                 (//hcsgc:lock-order), none held across a safepoint
//	vtimepure      — deterministic-replay packages stay off the wall
//	                 clock and unordered map iteration (//hcsgc:wall-clock)
package analysis

import (
	"hcsgc/internal/analysis/allocfree"
	"hcsgc/internal/analysis/atomicword"
	"hcsgc/internal/analysis/barriercheck"
	"hcsgc/internal/analysis/blockedcheck"
	"hcsgc/internal/analysis/colorsafe"
	"hcsgc/internal/analysis/faultpoints"
	"hcsgc/internal/analysis/lintkit"
	"hcsgc/internal/analysis/lockorder"
	"hcsgc/internal/analysis/stwonly"
	"hcsgc/internal/analysis/telemetrynames"
	"hcsgc/internal/analysis/vtimepure"
)

// All returns the full analyzer suite in stable order.
func All() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		allocfree.Analyzer,
		atomicword.Analyzer,
		barriercheck.Analyzer,
		blockedcheck.Analyzer,
		colorsafe.Analyzer,
		faultpoints.Analyzer,
		lockorder.Analyzer,
		stwonly.Analyzer,
		telemetrynames.Analyzer,
		vtimepure.Analyzer,
	}
}

// Package lockorder builds the module's lock-acquisition order graph and
// rejects the two ways the sharding refactor can deadlock us: acquiring
// mutexes in inconsistent orders on different paths (inversion), and
// holding a lock across a safepoint boundary — a call that may reach
// Safepoint/poll/Blocked/beginBlocked — so that a stopped world queues up
// behind the lock.
//
// Lock identity is structural: "pkgpath.Type.field" for a mutex struct
// field (every access path to the same field names the same lock),
// "pkgpath.name" for a package-level mutex. Acquisition edges A -> B are
// recorded when B is acquired — directly, or transitively through any
// callee — inside A's Lock..Unlock bracket (source order, defer-aware).
//
// Two ordering rules run over the edges:
//
//   - inversion: an edge A -> B where some path also acquires A while
//     holding B (the edge lies on a cycle) is reported on both paths;
//   - declared order: a mutex field or package var may carry a
//     //hcsgc:lock-order N comment; an edge from a higher rank to a
//     lower one violates the declaration even before a second path
//     exists. The collector's hierarchy is declared as
//     cycleMu(10) < mutMu(20) < medMu(30) < heap.mu(40), with the
//     overload controller and signal plane above those.
//
// Holding a lock across a safepoint boundary is reported unless the
// function is //hcsgc:gc-thread, //hcsgc:stw-only, or owns the pause
// (runCycle holding cycleMu across the STW is the designed exception).
// The per-package pass reports what is derivable from one package alone;
// the module pass adds findings that need cross-package call chains.
package lockorder

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"

	"hcsgc/internal/analysis/lintkit"
)

// Analyzer is the lockorder pass.
var Analyzer = &lintkit.Analyzer{
	Name: "lockorder",
	Doc: "lock acquisitions must be consistently ordered (no inversions, " +
		"//hcsgc:lock-order ranks respected) and no lock may be held across a " +
		"safepoint boundary outside GC-side code",
	Run:       func(p *lintkit.Pass) error { return run([]*lintkit.Pass{p}, false) },
	RunModule: func(m *lintkit.ModulePass) error { return run(m.Pkgs, true) },
}

// boundaryNames are the safepoint-boundary callees: reaching one with a
// lock held stalls every stop-the-world behind that lock.
var boundaryNames = map[string]bool{
	"Safepoint": true, "poll": true, "Blocked": true, "beginBlocked": true,
}

// An edge is one observed acquisition order: to acquired while from held.
type edge struct{ from, to string }

// siteInfo locates the first site witnessing a finding.
type siteInfo struct {
	pass *lintkit.Pass
	pos  token.Pos
	fn   string // enclosing function name
	via  string // callee name for transitive acquisitions, "" for direct
}

// analysisResult is everything derived from one set of passes.
type analysisResult struct {
	edges map[edge]siteInfo
	// spSites are lock-held-across-safepoint findings keyed by position.
	spSites map[token.Pos]spSite
	ranks   map[string]int
}

type spSite struct {
	pass *lintkit.Pass
	lock string
	fn   string
	via  string
}

func run(passes []*lintkit.Pass, crossOnly bool) error {
	full := build(passes)
	reportEdge := func(e edge) bool { return true }
	reportSP := func(pos token.Pos) bool { return true }
	if crossOnly {
		// Subtract everything a per-package run already reports. Edge
		// findings are subtracted per *violation*, not per edge: a cycle
		// that only materialises module-wide must still be reported on
		// its locally-visible edges.
		localViol := make(map[edge]bool)
		localSP := make(map[token.Pos]bool)
		for _, p := range passes {
			local := build([]*lintkit.Pass{p})
			for _, e := range violations(local) {
				localViol[e] = true
			}
			for pos := range local.spSites {
				localSP[pos] = true
			}
		}
		reportEdge = func(e edge) bool { return !localViol[e] }
		reportSP = func(pos token.Pos) bool { return !localSP[pos] }
	}

	viol := violations(full)
	sort.Slice(viol, func(i, j int) bool {
		a, b := full.edges[viol[i]], full.edges[viol[j]]
		return a.pos < b.pos
	})
	for _, e := range viol {
		if !reportEdge(e) {
			continue
		}
		si := full.edges[e]
		how := ""
		if si.via != "" {
			how = " (via " + si.via + ")"
		}
		ra, okA := full.ranks[e.from]
		rb, okB := full.ranks[e.to]
		if okA && okB && ra >= rb {
			si.pass.Reportf(si.pos,
				"%s acquires %s (//hcsgc:lock-order %d) while holding %s "+
					"(//hcsgc:lock-order %d)%s; declared order requires the lower rank first",
				si.fn, e.to, rb, e.from, ra, how)
		} else {
			si.pass.Reportf(si.pos,
				"%s acquires %s while holding %s%s, but another path acquires them "+
					"in the opposite order (lock-order inversion)",
				si.fn, e.to, e.from, how)
		}
	}

	var spPos []token.Pos
	for pos := range full.spSites {
		spPos = append(spPos, pos)
	}
	sort.Slice(spPos, func(i, j int) bool { return spPos[i] < spPos[j] })
	for _, pos := range spPos {
		if !reportSP(pos) {
			continue
		}
		s := full.spSites[pos]
		how := ""
		if s.via != "" {
			how = " via " + s.via
		}
		s.pass.Reportf(pos,
			"%s holds %s across a safepoint boundary%s; a stop-the-world will "+
				"queue behind this lock",
			s.fn, s.lock, how)
	}
	return nil
}

// violations returns the edges that violate either ordering rule, in no
// particular order.
func violations(r *analysisResult) []edge {
	var out []edge
	for e := range r.edges {
		ra, okA := r.ranks[e.from]
		rb, okB := r.ranks[e.to]
		if okA && okB {
			// Declared order is authoritative: a consistent edge is
			// sanctioned even if the reverse (violating) edge exists —
			// the reverse edge carries the report.
			if ra >= rb {
				out = append(out, e)
			}
			continue
		}
		if onCycle(r.edges, e) {
			out = append(out, e)
		}
	}
	return out
}

// onCycle reports whether following edges from e.to can reach e.from.
func onCycle(edges map[edge]siteInfo, e edge) bool {
	seen := map[string]bool{e.to: true}
	stack := []string{e.to}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == e.from {
			return true
		}
		for other := range edges {
			if other.from == cur && !seen[other.to] {
				seen[other.to] = true
				stack = append(stack, other.to)
			}
		}
	}
	return false
}

// build runs the full analysis over the given passes.
func build(passes []*lintkit.Pass) *analysisResult {
	graph := lintkit.BuildCallGraph(passes)
	r := &analysisResult{
		edges:   make(map[edge]siteInfo),
		spSites: make(map[token.Pos]spSite),
		ranks:   collectRanks(passes),
	}

	// acquires: per function, the locks its body takes directly.
	acquires := make(map[string]map[string]bool)
	// boundary: per function, whether the body calls a safepoint
	// boundary directly.
	boundary := make(map[string]bool)
	for key, node := range graph.Nodes {
		p := node.Pass
		acq := make(map[string]bool)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if mu, dir := lintkit.MutexOp(p.TypesInfo, p.Pkg.Path(), call); dir > 0 {
				acq[mu] = true
			}
			if boundaryNames[calleeName(call)] {
				boundary[key] = true
			}
			return true
		})
		acquires[key] = acq
	}

	// Transitive closure over call edges: what may a call into f acquire,
	// and may it reach a safepoint boundary?
	acqStar := make(map[string]map[string]bool, len(acquires))
	for key, acq := range acquires {
		s := make(map[string]bool, len(acq))
		for k := range acq {
			s[k] = true
		}
		acqStar[key] = s
	}
	bStar := make(map[string]bool, len(boundary))
	for k, v := range boundary {
		bStar[k] = v
	}
	for changed := true; changed; {
		changed = false
		for key, node := range graph.Nodes {
			for _, cs := range node.Calls {
				for mu := range acqStar[cs.CalleeKey] {
					if !acqStar[key][mu] {
						acqStar[key][mu] = true
						changed = true
					}
				}
				if bStar[cs.CalleeKey] && !bStar[key] {
					bStar[key] = true
					changed = true
				}
			}
		}
	}

	// Walk every lock bracket: direct acquisitions and calls inside it
	// produce edges; boundary reach produces safepoint findings.
	for key, node := range graph.Nodes {
		p := node.Pass
		decl := node.Decl
		brackets := lintkit.CollectBrackets(decl.Body, func(call *ast.CallExpr, deferred bool) (string, int) {
			return lintkit.MutexOp(p.TypesInfo, p.Pkg.Path(), call)
		})
		if len(brackets) == 0 {
			continue
		}
		exemptSP := lintkit.HasDirective(decl, "gc-thread") ||
			lintkit.HasDirective(decl, "stw-only") || lintkit.IsPauseOwner(decl)

		type acqAt struct {
			pos token.Pos
			mu  string
		}
		var directAcqs []acqAt
		var boundaryCalls []token.Pos
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if mu, dir := lintkit.MutexOp(p.TypesInfo, p.Pkg.Path(), call); dir > 0 {
				directAcqs = append(directAcqs, acqAt{call.Pos(), mu})
			}
			if boundaryNames[calleeName(call)] {
				boundaryCalls = append(boundaryCalls, call.Pos())
			}
			return true
		})

		for _, b := range brackets {
			for _, a := range directAcqs {
				if a.mu != b.Owner && b.Contains(a.pos) {
					addEdge(r, edge{b.Owner, a.mu}, siteInfo{p, a.pos, decl.Name.Name, ""})
				}
			}
			for _, cs := range node.Calls {
				if !b.Contains(cs.Call.Pos()) {
					continue
				}
				if cs.CalleeKey == key {
					continue // recursion: same bracket, no new order
				}
				for mu := range acqStar[cs.CalleeKey] {
					if mu != b.Owner {
						addEdge(r, edge{b.Owner, mu},
							siteInfo{p, cs.Call.Pos(), decl.Name.Name, cs.Callee.Name()})
					}
				}
			}
			if exemptSP {
				continue
			}
			for _, pos := range boundaryCalls {
				if b.Contains(pos) {
					addSP(r, pos, spSite{p, b.Owner, decl.Name.Name, ""})
				}
			}
			for _, cs := range node.Calls {
				if b.Contains(cs.Call.Pos()) && bStar[cs.CalleeKey] {
					addSP(r, cs.Call.Pos(), spSite{p, b.Owner, decl.Name.Name, cs.Callee.Name()})
				}
			}
		}
	}
	return r
}

func addEdge(r *analysisResult, e edge, si siteInfo) {
	if old, ok := r.edges[e]; !ok || si.pos < old.pos {
		r.edges[e] = si
	}
}

func addSP(r *analysisResult, pos token.Pos, s spSite) {
	if _, ok := r.spSites[pos]; !ok {
		r.spSites[pos] = s
	}
}

// collectRanks parses //hcsgc:lock-order N comments on mutex struct
// fields and package-level mutex vars, keyed the same way MutexOp names
// locks.
func collectRanks(passes []*lintkit.Pass) map[string]int {
	ranks := make(map[string]int)
	for _, p := range passes {
		for _, file := range p.Files {
			if p.IsTestFile(file.Pos()) {
				continue
			}
			for _, d := range file.Decls {
				gen, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				switch gen.Tok {
				case token.TYPE:
					for _, spec := range gen.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						st, ok := ts.Type.(*ast.StructType)
						if !ok {
							continue
						}
						for _, field := range st.Fields.List {
							rank, ok := lockOrderOf(field.Doc, field.Comment)
							if !ok {
								continue
							}
							for _, name := range field.Names {
								ranks[p.Pkg.Path()+"."+ts.Name.Name+"."+name.Name] = rank
							}
						}
					}
				case token.VAR:
					for _, spec := range gen.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						rank, ok := lockOrderOf(vs.Doc, gen.Doc)
						if !ok {
							continue
						}
						for _, name := range vs.Names {
							ranks[p.Pkg.Path()+"."+name.Name] = rank
						}
					}
				}
			}
		}
	}
	return ranks
}

// lockOrderOf extracts //hcsgc:lock-order N from the first non-nil
// comment group.
func lockOrderOf(groups ...*ast.CommentGroup) (int, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			rest, ok := strings.CutPrefix(c.Text, "//hcsgc:lock-order")
			if !ok {
				continue
			}
			n, err := strconv.Atoi(strings.TrimSpace(rest))
			if err == nil {
				return n, true
			}
		}
	}
	return 0, false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

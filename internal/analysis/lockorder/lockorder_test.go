package lockorder_test

import (
	"testing"

	"hcsgc/internal/analysis/lintkit"
	"hcsgc/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	// Loading xk pulls in lk; RunFixture covers the per-package findings
	// (lk's inversions, ranks, safepoint holds) and the module pass
	// (xk's cross-package edge into lk).
	lintkit.RunFixture(t, "testdata", "xk", lockorder.Analyzer)
}

func TestLockOrderContentionMutex(t *testing.T) {
	// cn swaps ranked fields to the contention.Mutex wrapper (stubbed
	// under the same import-path tail): the analyzer must keep seeing
	// acquisitions through the wrapper and keep naming locks by their
	// declaring fields.
	lintkit.RunFixture(t, "testdata", "cn", lockorder.Analyzer)
}

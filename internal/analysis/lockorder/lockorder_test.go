package lockorder_test

import (
	"testing"

	"hcsgc/internal/analysis/lintkit"
	"hcsgc/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	// Loading xk pulls in lk; RunFixture covers the per-package findings
	// (lk's inversions, ranks, safepoint holds) and the module pass
	// (xk's cross-package edge into lk).
	lintkit.RunFixture(t, "testdata", "xk", lockorder.Analyzer)
}

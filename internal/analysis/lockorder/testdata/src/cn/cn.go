// Package cn proves lockorder sees through contention.Mutex: the
// instrumented wrapper (matched by import-path tail, so the core
// mutexes keep their ranks after the type swap) acquires and releases
// exactly like sync.Mutex, including mixed edges between the flavours.
package cn

import (
	"contention"
	"sync"
)

// Collector mirrors the core collector after the wrapper adoption:
// ranked contention.Mutex fields next to a plain sync.Mutex.
type Collector struct {
	// cycleMu serializes collection cycles; taken first.
	//
	//hcsgc:lock-order 10
	cycleMu contention.Mutex

	// medMu guards the mark-era descriptor under cycleMu.
	//
	//hcsgc:lock-order 25
	medMu sync.Mutex

	// heapMu guards page tables; innermost.
	//
	//hcsgc:lock-order 40
	heapMu contention.Mutex
}

// Good descends the declared order through both flavours: silent.
func (c *Collector) Good() {
	c.cycleMu.Lock()
	c.medMu.Lock()
	c.heapMu.Lock()
	c.heapMu.Unlock()
	c.medMu.Unlock()
	c.cycleMu.Unlock()
}

// TryDescend: TryLock through the wrapper is an acquire too, and a
// downward one stays silent.
func (c *Collector) TryDescend() {
	c.cycleMu.Lock()
	if c.heapMu.TryLock() {
		c.heapMu.Unlock()
	}
	c.cycleMu.Unlock()
}

// BadWrapped inverts two wrapper locks: the analyzer must name the
// declaring fields, not the wrapper type.
func (c *Collector) BadWrapped() {
	c.heapMu.Lock()
	c.cycleMu.Lock() // want `BadWrapped acquires cn.Collector.cycleMu .*lock-order 10.* while holding cn.Collector.heapMu .*lock-order 40`
	c.cycleMu.Unlock()
	c.heapMu.Unlock()
}

// BadMixed acquires a wrapped lock below a plain sync.Mutex ranked
// above it: both flavours share one global order.
func (c *Collector) BadMixed() {
	c.medMu.Lock()
	c.cycleMu.Lock() // want `BadMixed acquires cn.Collector.cycleMu .*lock-order 10.* while holding cn.Collector.medMu .*lock-order 25`
	c.cycleMu.Unlock()
	c.medMu.Unlock()
}

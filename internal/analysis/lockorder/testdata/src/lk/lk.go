// Package lk exercises lockorder in one package: declared-rank
// violations, unranked inversions, transitive acquisition through
// helpers, and locks held across a safepoint boundary.
package lk

import "sync"

// Server carries the ranked lock hierarchy plus an unranked pair.
type Server struct {
	// cycleMu serializes cycles; always first.
	//
	//hcsgc:lock-order 10
	cycleMu sync.Mutex
	// mutMu guards the registry; under cycleMu only.
	//
	//hcsgc:lock-order 20
	mutMu sync.Mutex
	// medMu guards the shared medium page.
	//
	//hcsgc:lock-order 30
	medMu sync.Mutex
	// heapMu is the page allocator lock; innermost.
	//
	//hcsgc:lock-order 40
	heapMu sync.Mutex

	aMu sync.Mutex
	bMu sync.Mutex
}

// Good acquires in declared order: silent.
func (s *Server) Good() {
	s.cycleMu.Lock()
	s.mutMu.Lock()
	s.mutMu.Unlock()
	s.cycleMu.Unlock()
}

// DeferGood extends the outer bracket with defer: still ordered.
func (s *Server) DeferGood() {
	s.cycleMu.Lock()
	defer s.cycleMu.Unlock()
	s.mutMu.Lock()
	s.mutMu.Unlock()
}

// BadRank takes the registry lock first: declared order inverted.
func (s *Server) BadRank() {
	s.mutMu.Lock()
	s.cycleMu.Lock() // want `BadRank acquires lk.Server.cycleMu .*lock-order 10.* while holding lk.Server.mutMu .*lock-order 20.*`
	s.cycleMu.Unlock()
	s.mutMu.Unlock()
}

// LockAB and LockBA disagree on an unranked pair: both sides report.
func (s *Server) LockAB() {
	s.aMu.Lock()
	s.bMu.Lock() // want `LockAB acquires lk.Server.bMu while holding lk.Server.aMu.*opposite order`
	s.bMu.Unlock()
	s.aMu.Unlock()
}

func (s *Server) LockBA() {
	s.bMu.Lock()
	s.aMu.Lock() // want `LockBA acquires lk.Server.aMu while holding lk.Server.bMu.*opposite order`
	s.aMu.Unlock()
	s.bMu.Unlock()
}

// Indirect acquires the heap lock through a helper while holding the
// medium-page lock: consistent with the declared order, silent.
func (s *Server) Indirect() {
	s.medMu.Lock()
	s.lockHeap()
	s.medMu.Unlock()
}

func (s *Server) lockHeap() {
	s.heapMu.Lock()
	s.heapMu.Unlock()
}

// BadIndirect reaches the medium-page lock through a helper while
// holding the heap lock: transitive rank inversion.
func (s *Server) BadIndirect() {
	s.heapMu.Lock()
	s.lockMed() // want `BadIndirect acquires lk.Server.medMu .*lock-order 30.* while holding lk.Server.heapMu .*lock-order 40.*via lockMed`
	s.heapMu.Unlock()
}

func (s *Server) lockMed() {
	s.medMu.Lock()
	s.medMu.Unlock()
}

// LockMut acquires the registry lock briefly, for cross-package callers.
func (s *Server) LockMut() {
	s.mutMu.Lock()
	s.mutMu.Unlock()
}

// Mutator carries the safepoint boundary the holder rule keys on.
type Mutator struct{}

// Safepoint is the mutator's poll point.
func (m *Mutator) Safepoint() {}

// BadHold polls with a lock held: a stopped world queues behind aMu.
func (s *Server) BadHold(m *Mutator) {
	s.aMu.Lock()
	m.Safepoint() // want `BadHold holds lk.Server.aMu across a safepoint boundary`
	s.aMu.Unlock()
}

// GCHold is GC-side code: exempt from the holder rule.
//
//hcsgc:gc-thread
func (s *Server) GCHold(m *Mutator) {
	s.aMu.Lock()
	m.Safepoint()
	s.aMu.Unlock()
}

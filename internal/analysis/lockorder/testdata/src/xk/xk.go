// Package xk holds its own ranked lock while calling into lk: the
// resulting edge only exists module-wide, so only the module pass can
// report it.
package xk

import (
	"lk"
	"sync"
)

// Pool guards a free list.
type Pool struct {
	// mu is declared above lk's registry lock in the global order.
	//
	//hcsgc:lock-order 30
	mu sync.Mutex
}

// BadCross acquires lk's mutMu (order 20) under mu (order 30).
func (p *Pool) BadCross(s *lk.Server) {
	p.mu.Lock()
	s.LockMut() // want `BadCross acquires lk.Server.mutMu .*lock-order 20.* while holding xk.Pool.mu .*lock-order 30.*via LockMut`
	p.mu.Unlock()
}

// GoodCross holds nothing while calling over: silent.
func (p *Pool) GoodCross(s *lk.Server) {
	p.mu.Lock()
	p.mu.Unlock()
	s.LockMut()
}

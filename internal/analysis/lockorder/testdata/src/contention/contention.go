// Package contention stubs the instrumented-mutex wrapper for the
// lockorder fixtures: lintkit.MutexOp matches the import path's last
// segment, so this GOPATH-layout stub stands in for
// hcsgc/internal/contention. Bodies stay empty so the stub itself
// contributes no lock operations of its own.
package contention

// Mutex mirrors the wrapper surface lockorder classifies: Lock and
// TryLock acquire, Unlock releases.
type Mutex struct{ _ int }

func (m *Mutex) Lock()         {}
func (m *Mutex) Unlock()       {}
func (m *Mutex) TryLock() bool { return false }

// Package sync stubs the stdlib surface the lockorder fixtures touch.
package sync

type Mutex struct{ state int }

func (m *Mutex) Lock()         {}
func (m *Mutex) Unlock()       {}
func (m *Mutex) TryLock() bool { return true }

type RWMutex struct{ state int }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}

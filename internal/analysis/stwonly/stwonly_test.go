package stwonly_test

import (
	"testing"

	"hcsgc/internal/analysis/lintkit"
	"hcsgc/internal/analysis/stwonly"
)

func TestSTWOnly(t *testing.T) {
	// Loading b pulls in a; RunFixture analyzes both, so this covers the
	// per-package pass (a's internal call sites) and the module pass (b's
	// cross-package calls into a).
	lintkit.RunFixture(t, "testdata", "b", stwonly.Analyzer)
}

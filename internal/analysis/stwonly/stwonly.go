// Package stwonly enforces the pause discipline: a function annotated
// //hcsgc:stw-only assumes every mutator is parked at a safepoint — the
// heap verifier walks pages with plain loads, retireAllocationPages takes
// pages out from under the allocator, root flips are not atomic. Calling
// one concurrently is the exact bug class the PR 3 chaos soak exists to
// surface dynamically; this pass rejects it statically.
//
// A call to an stw-only function is legal only when the caller
//
//   - is itself annotated //hcsgc:stw-only (the pause property is
//     inherited transitively up to the pause owner), or
//   - owns the pause: its body both stops and resumes the world (calls a
//     stopTheWorld/stopTheWorldTimed function and a resumeTheWorld
//     function), like the collector's runCycle. Code inside closures the
//     owner passes into the pause inherits the owner's standing.
//
// The per-package pass checks calls to stw-only functions declared in the
// same package; the module pass (standalone driver only) additionally
// resolves cross-package calls, e.g. core's verifier invoking
// heap.VerifyAccounting.
package stwonly

import (
	"go/ast"
	"go/types"

	"hcsgc/internal/analysis/lintkit"
)

// Analyzer is the stwonly pass.
var Analyzer = &lintkit.Analyzer{
	Name: "stwonly",
	Doc: "functions annotated //hcsgc:stw-only may only be called from other " +
		"stw-only functions or from the pause owner (a function that both stops " +
		"and resumes the world)",
	Run:       func(p *lintkit.Pass) error { return check([]*lintkit.Pass{p}, false) },
	RunModule: func(m *lintkit.ModulePass) error { return check(m.Pkgs, true) },
}

// check walks the given passes. With crossOnly set it reports only calls
// whose callee lives in a different package than the caller (the module
// pass), otherwise only same-package calls (the per-package pass) — the
// split keeps the two passes from double-reporting under the standalone
// driver, which runs both.
func check(passes []*lintkit.Pass, crossOnly bool) error {
	stw := make(map[string]bool)
	for _, p := range passes {
		for _, file := range p.Files {
			if p.IsTestFile(file.Pos()) {
				continue
			}
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || !lintkit.HasDirective(decl, "stw-only") {
					continue
				}
				if f, ok := p.TypesInfo.Defs[decl.Name].(*types.Func); ok && f != nil {
					stw[lintkit.FuncKey(f)] = true
				}
			}
		}
	}
	if len(stw) == 0 {
		return nil
	}

	for _, p := range passes {
		p := p
		lintkit.ForEachFuncNode(p, true, func(decl *ast.FuncDecl, n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := lintkit.FuncOf(p.TypesInfo, call.Fun)
			if callee == nil || callee.Pkg() == nil || !stw[lintkit.FuncKey(callee)] {
				return true
			}
			if crossOnly == (callee.Pkg().Path() == p.Pkg.Path()) {
				return true // the other pass owns this call
			}
			if lintkit.HasDirective(decl, "stw-only") || lintkit.IsPauseOwner(decl) {
				return true
			}
			p.Reportf(call.Pos(),
				"call to stop-the-world-only function %s from %s, which is neither "+
					"//hcsgc:stw-only nor a pause owner (stops and resumes the world)",
				callee.Name(), decl.Name.Name)
			return true
		})
	}
	return nil
}

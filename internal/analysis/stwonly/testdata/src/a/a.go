// Package a declares stw-only functions plus the safepoint primitives the
// pause-owner heuristic keys on.
package a

func stopTheWorldTimed() {}
func resumeTheWorld()    {}

// VerifyAll requires a stopped world.
//
//hcsgc:stw-only
func VerifyAll() { verifyOne() }

// verifyOne inherits the pause via its stw-only caller.
//
//hcsgc:stw-only
func verifyOne() {}

// RunCycle owns the pause: it stops and resumes the world, so calls in
// between (including from closures) are legal.
func RunCycle() {
	stopTheWorldTimed()
	func() { VerifyAll() }()
	resumeTheWorld()
}

// badConcurrent calls into the pause-only path with the world running.
func badConcurrent() {
	verifyOne() // want `call to stop-the-world-only function verifyOne`
}

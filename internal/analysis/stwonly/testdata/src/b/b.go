// Package b exercises the cross-package half of the check (the module
// pass): a's annotations must travel across the import edge.
package b

import "a"

func stopTheWorldTimed() {}
func resumeTheWorld()    {}

// GoodOwner owns its pause and may call a's stw-only API.
func GoodOwner() {
	stopTheWorldTimed()
	a.VerifyAll()
	resumeTheWorld()
}

// badCrossPackage has no standing in either package.
func badCrossPackage() {
	a.VerifyAll() // want `call to stop-the-world-only function VerifyAll`
}

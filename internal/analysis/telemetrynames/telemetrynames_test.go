package telemetrynames_test

import (
	"testing"

	"hcsgc/internal/analysis/lintkit"
	"hcsgc/internal/analysis/telemetrynames"
)

func TestTelemetryNames(t *testing.T) {
	lintkit.RunFixture(t, "testdata", "a", telemetrynames.Analyzer)
}

// Package telemetrynames keeps the metrics namespace coherent. Every
// metric registered on a telemetry.Registry (Counter, Gauge, Histogram,
// Summary) must be named `hcsgc_<snake_case>` — the exporters emit names
// verbatim, so a stray `HcsgcPauseNs` or `pause-ns` silently forks the
// dashboard namespace.
//
// The registry is Prometheus-shaped: registering the same family name
// from several sites with different label values is the intended pattern
// (hcsgc_reloc_objects_total{who="gc"} and {who="mutator"}). What must
// stay consistent across those sites, and what this pass checks:
//
//   - kind: the same name registered as Counter at one site and Gauge at
//     another panics at runtime (Registry.family);
//   - help: family() silently keeps the first help string, so divergent
//     help text at a second site is dead and the dashboards lie;
//   - labels come in key/value pairs: an odd argument count panics in
//     labelKey at first use;
//   - suffix conventions: `_total` is reserved for Counter families
//     (Prometheus semantics), and `_bucket`/`_sum`/`_count` are reserved
//     for the derived series histograms and summaries emit themselves.
//
// Names built at runtime (fmt.Sprintf in a loop) cannot be validated
// statically and are skipped; label-pair parity is checked regardless.
package telemetrynames

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"strings"

	"hcsgc/internal/analysis/lintkit"
)

// telemetryPkg is the import path of the metrics registry.
const telemetryPkg = "hcsgc/internal/telemetry"

// registerMethods maps (*telemetry.Registry) constructor name -> index of
// the first label argument (name and help precede it; Histogram also takes
// bucket bounds, Summary a quantile source).
var registerMethods = map[string]int{
	"Counter":   2,
	"Gauge":     2,
	"Histogram": 3,
	"Summary":   3,
}

// nameRE is the required shape of a metric name.
var nameRE = regexp.MustCompile(`^hcsgc_[a-z0-9_]+$`)

// reservedSuffixRE matches suffixes the Prometheus exposition format
// reserves for derived series: histograms and summaries emit
// `<family>_bucket`, `<family>_sum` and `<family>_count` lines themselves,
// so a base family carrying one of these suffixes collides with the
// derived series of a like-named histogram or summary.
var reservedSuffixRE = regexp.MustCompile(`_(bucket|sum|count)$`)

// Analyzer is the telemetrynames pass.
var Analyzer = &lintkit.Analyzer{
	Name: "telemetrynames",
	Doc: "metric names registered on telemetry.Registry must match " +
		"^hcsgc_[a-z0-9_]+$, and a family must be registered consistently: " +
		"same kind, same help text, labels in key/value pairs",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	type familySite struct {
		pos  token.Pos
		kind string
		help string // "" when not a compile-time constant
	}
	first := make(map[string]familySite)

	constString := func(e ast.Expr) (string, bool) {
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return "", false
		}
		return constant.StringVal(tv.Value), true
	}

	lintkit.ForEachFuncNode(pass, true, func(decl *ast.FuncDecl, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		f := lintkit.FuncOf(pass.TypesInfo, call.Fun)
		if f == nil {
			return true
		}
		labelStart, isReg := registerMethods[f.Name()]
		if !isReg || !lintkit.IsMethod(f, telemetryPkg, "Registry", f.Name()) {
			return true
		}

		// Label pairs: statically countable unless spread with `labels...`.
		if call.Ellipsis == token.NoPos && len(call.Args) > labelStart &&
			(len(call.Args)-labelStart)%2 != 0 {
			pass.Reportf(call.Args[labelStart].Pos(),
				"odd number of label arguments to Registry.%s: labels are "+
					"(\"key\", \"value\") pairs; this panics in labelKey at first use",
				f.Name())
		}

		name, ok := constString(call.Args[0])
		if !ok {
			return true // runtime-built name: not statically checkable
		}
		if !nameRE.MatchString(name) {
			pass.Reportf(call.Args[0].Pos(),
				"metric name %q does not match ^hcsgc_[a-z0-9_]+$ "+
					"(exporters emit names verbatim; keep the namespace uniform)",
				name)
			return true
		}
		if m := reservedSuffixRE.FindString(name); m != "" {
			pass.Reportf(call.Args[0].Pos(),
				"metric name %q ends in the reserved suffix %q: histograms "+
					"and summaries emit *%s series themselves, so this family "+
					"collides with their derived series in the exposition",
				name, m, m)
			return true
		}
		help := ""
		if len(call.Args) > 1 {
			help, _ = constString(call.Args[1])
		}
		prev, seen := first[name]
		if !seen {
			first[name] = familySite{pos: call.Args[0].Pos(), kind: f.Name(), help: help}
			// The _total convention is checked once, at the first site; a
			// later kind flip is the family-consistency diagnostic instead.
			if strings.HasSuffix(name, "_total") && f.Name() != "Counter" {
				pass.Reportf(call.Args[0].Pos(),
					"metric %q ends in _total but is registered as a %s: the "+
						"_total suffix promises a monotonic counter to every "+
						"Prometheus consumer",
					name, f.Name())
			}
			return true
		}
		if prev.kind != f.Name() {
			pass.Reportf(call.Args[0].Pos(),
				"metric %q registered as %s here but as %s at %s: "+
					"Registry.family panics on kind mismatch at runtime",
				name, f.Name(), prev.kind, pass.Fset.Position(prev.pos))
			return true
		}
		if prev.help != "" && help != "" && prev.help != help {
			pass.Reportf(call.Args[1].Pos(),
				"metric %q registered with different help text than at %s: "+
					"the registry keeps the first help string, this one is dead",
				name, pass.Fset.Position(prev.pos))
		}
		return true
	})
	return nil
}

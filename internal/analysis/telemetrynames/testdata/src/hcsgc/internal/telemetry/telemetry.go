// Package telemetry is a fixture stub of the metrics registry surface.
package telemetry

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

type QuantileSource interface {
	Quantile(q float64) float64
	Count() uint64
	Sum() float64
}

func (r *Registry) Counter(name, help string, labels ...string) *Counter { return nil }
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge     { return nil }
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return nil
}
func (r *Registry) Summary(name, help string, src QuantileSource, labels ...string) {}

// Package a seeds telemetrynames violations: malformed names and
// inconsistent family registrations.
package a

import "hcsgc/internal/telemetry"

func register(reg *telemetry.Registry, suffix string) {
	reg.Counter("gc_cycles_total", "Missing prefix.")          // want `does not match \^hcsgc_`
	reg.Gauge("hcsgc_HeapUsed", "Camel case.")                 // want `does not match \^hcsgc_`
	reg.Counter("hcsgc_pause-cycles", "Dash, not underscore.") // want `does not match \^hcsgc_`

	// The Prometheus family pattern: same name, same help, different
	// label values — legal.
	reg.Counter("hcsgc_reloc_total", "Relocations.", "who", "gc")
	reg.Counter("hcsgc_reloc_total", "Relocations.", "who", "mutator")

	// Same name, different kind: panics in Registry.family at runtime.
	reg.Gauge("hcsgc_reloc_total", "Relocations.") // want `registered as Gauge here but as Counter`

	// Same name, divergent help: the second string is silently dead.
	reg.Counter("hcsgc_stalls_total", "Allocation stalls.")
	reg.Counter("hcsgc_stalls_total", "Stalls while allocating.") // want `registered with different help text`

	// Odd label arguments panic in labelKey at first use.
	reg.Counter("hcsgc_odd_total", "Odd labels.", "who") // want `odd number of label arguments`

	// Summaries join the same namespace and family rules.
	reg.Summary("hcsgc_pause_cycles", "Pauses.", nil, "phase", "stw1")
	reg.Summary("hcsgc_pause_cycles", "Pauses.", nil, "phase", "stw2")
	reg.Summary("PauseCycles", "Bad name.", nil)                 // want `does not match \^hcsgc_`
	reg.Gauge("hcsgc_pause_cycles", "Pauses.")                   // want `registered as Gauge here but as Summary`
	reg.Summary("hcsgc_pause_cycles", "Pause dists.", nil)       // want `registered with different help text`
	reg.Summary("hcsgc_odd_cycles", "Odd labels.", nil, "phase") // want `odd number of label arguments`

	// Suffix conventions: _total promises a monotonic counter, and the
	// _bucket/_sum/_count suffixes belong to histogram and summary
	// derived series.
	reg.Gauge("hcsgc_live_total", "Not a counter.")         // want `_total suffix promises a monotonic counter`
	reg.Summary("hcsgc_stall_total", "Not a counter.", nil) // want `_total suffix promises a monotonic counter`
	reg.Counter("hcsgc_pause_count", "Reserved.")           // want `reserved suffix "_count"`
	reg.Gauge("hcsgc_pause_sum", "Reserved.")               // want `reserved suffix "_sum"`
	reg.Counter("hcsgc_pause_bucket", "Reserved.")          // want `reserved suffix "_bucket"`

	// Runtime-built names are skipped: not statically checkable.
	reg.Counter("hcsgc_pause_"+suffix, "Dynamic name.")

	// The KV serving families (internal/kvstore.Metrics.BindTelemetry)
	// follow the same rules: labelled counter families with shared help,
	// and a summary per traffic phase.
	reg.Counter("hcsgc_kv_requests_total", "KV requests served.", "op", "get")
	reg.Counter("hcsgc_kv_requests_total", "KV requests served.", "op", "set")
	reg.Counter("hcsgc_kv_lookups_total", "KV lookups.", "result", "hit")
	reg.Counter("hcsgc_kv_lookups_total", "KV lookups.", "result", "miss")
	reg.Counter("hcsgc_kv_sessions_retired_total", "KV sessions retired.")
	reg.Summary("hcsgc_kv_request_cycles", "KV request latency.", nil, "phase", "steady")
	reg.Summary("hcsgc_kv_request_cycles", "KV request latency.", nil, "phase", "burst")
	reg.Counter("hcsgc_kv_lookups_total", "Lookups.", "result", "hit") // want `registered with different help text`
	reg.Gauge("hcsgc_kv_request_cycles", "KV request latency.")        // want `registered as Gauge here but as Summary`
	reg.Summary("hcsgc_kv_hits_total", "Not a counter.", nil)          // want `_total suffix promises a monotonic counter`
}

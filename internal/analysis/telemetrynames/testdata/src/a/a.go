// Package a seeds telemetrynames violations: malformed names and
// inconsistent family registrations.
package a

import "hcsgc/internal/telemetry"

func register(reg *telemetry.Registry, suffix string) {
	reg.Counter("gc_cycles_total", "Missing prefix.")          // want `does not match \^hcsgc_`
	reg.Gauge("hcsgc_HeapUsed", "Camel case.")                 // want `does not match \^hcsgc_`
	reg.Counter("hcsgc_pause-cycles", "Dash, not underscore.") // want `does not match \^hcsgc_`

	// The Prometheus family pattern: same name, same help, different
	// label values — legal.
	reg.Counter("hcsgc_reloc_total", "Relocations.", "who", "gc")
	reg.Counter("hcsgc_reloc_total", "Relocations.", "who", "mutator")

	// Same name, different kind: panics in Registry.family at runtime.
	reg.Gauge("hcsgc_reloc_total", "Relocations.") // want `registered as Gauge here but as Counter`

	// Same name, divergent help: the second string is silently dead.
	reg.Counter("hcsgc_stalls_total", "Allocation stalls.")
	reg.Counter("hcsgc_stalls_total", "Stalls while allocating.") // want `registered with different help text`

	// Odd label arguments panic in labelKey at first use.
	reg.Counter("hcsgc_odd_total", "Odd labels.", "who") // want `odd number of label arguments`

	// Summaries join the same namespace and family rules.
	reg.Summary("hcsgc_pause_cycles", "Pauses.", nil, "phase", "stw1")
	reg.Summary("hcsgc_pause_cycles", "Pauses.", nil, "phase", "stw2")
	reg.Summary("PauseCycles", "Bad name.", nil)                 // want `does not match \^hcsgc_`
	reg.Gauge("hcsgc_pause_cycles", "Pauses.")                   // want `registered as Gauge here but as Summary`
	reg.Summary("hcsgc_pause_cycles", "Pause dists.", nil)       // want `registered with different help text`
	reg.Summary("hcsgc_odd_cycles", "Odd labels.", nil, "phase") // want `odd number of label arguments`

	// Suffix conventions: _total promises a monotonic counter, and the
	// _bucket/_sum/_count suffixes belong to histogram and summary
	// derived series.
	reg.Gauge("hcsgc_live_total", "Not a counter.")         // want `_total suffix promises a monotonic counter`
	reg.Summary("hcsgc_stall_total", "Not a counter.", nil) // want `_total suffix promises a monotonic counter`
	reg.Counter("hcsgc_pause_count", "Reserved.")           // want `reserved suffix "_count"`
	reg.Gauge("hcsgc_pause_sum", "Reserved.")               // want `reserved suffix "_sum"`
	reg.Counter("hcsgc_pause_bucket", "Reserved.")          // want `reserved suffix "_bucket"`

	// Runtime-built names are skipped: not statically checkable.
	reg.Counter("hcsgc_pause_"+suffix, "Dynamic name.")

	// The KV serving families (internal/kvstore.Metrics.BindTelemetry)
	// follow the same rules: labelled counter families with shared help,
	// and a summary per traffic phase.
	reg.Counter("hcsgc_kv_requests_total", "KV requests served.", "op", "get")
	reg.Counter("hcsgc_kv_requests_total", "KV requests served.", "op", "set")
	reg.Counter("hcsgc_kv_lookups_total", "KV lookups.", "result", "hit")
	reg.Counter("hcsgc_kv_lookups_total", "KV lookups.", "result", "miss")
	reg.Counter("hcsgc_kv_sessions_retired_total", "KV sessions retired.")
	reg.Summary("hcsgc_kv_request_cycles", "KV request latency.", nil, "phase", "steady")
	reg.Summary("hcsgc_kv_request_cycles", "KV request latency.", nil, "phase", "burst")
	reg.Counter("hcsgc_kv_lookups_total", "Lookups.", "result", "hit") // want `registered with different help text`
	reg.Gauge("hcsgc_kv_request_cycles", "KV request latency.")        // want `registered as Gauge here but as Summary`
	reg.Summary("hcsgc_kv_hits_total", "Not a counter.", nil)          // want `_total suffix promises a monotonic counter`

	// The signal-plane families (internal/signals.Plane.BindTelemetry):
	// one gauge family per derived series keyed by the signal label, and
	// labelled counters for the anomaly flags — legal multi-site
	// registration with shared help across label values.
	reg.Gauge("hcsgc_signal_value", "Latest per-cycle signal value.", "signal", "utilization")
	reg.Gauge("hcsgc_signal_value", "Latest per-cycle signal value.", "signal", "heap_used_pct")
	reg.Gauge("hcsgc_signal_ewma", "Signal EWMA.", "signal", "utilization")
	reg.Gauge("hcsgc_signal_trend", "Signal trend.", "signal", "utilization")
	reg.Counter("hcsgc_signal_flags_total", "Anomaly flags raised.", "flag", "stall_spike")
	reg.Counter("hcsgc_signal_flags_total", "Anomaly flags raised.", "flag", "heap_pressure")
	reg.Counter("hcsgc_signal_cycles_total", "Cycles snapshotted.")
	reg.Counter("hcsgc_signal_value", "Latest per-cycle signal value.", "signal", "cold_frac") // want `registered as Counter here but as Gauge`
	reg.Gauge("hcsgc_signal_flags_total", "Flags.")                                            // want `registered as Gauge here but as Counter`
	reg.Gauge("hcsgc_signal_count", "Reserved.")                                               // want `reserved suffix "_count"`
	reg.Counter("hcsgc_signal_sum", "Reserved.")                                               // want `reserved suffix "_sum"`

	// The tail-attribution families (internal/signals.TailAttributor):
	// violation counters and per-cause latency summaries keyed by cause.
	reg.Counter("hcsgc_tail_requests_total", "Requests observed.")
	reg.Counter("hcsgc_tail_attributed_total", "Violations attributed.")
	reg.Counter("hcsgc_tail_violations_total", "SLO violations by cause.", "cause", "alloc-stall")
	reg.Counter("hcsgc_tail_violations_total", "SLO violations by cause.", "cause", "stw-pause")
	reg.Summary("hcsgc_tail_cause_cycles", "Violation latency by cause.", nil, "cause", "alloc-stall")
	reg.Summary("hcsgc_tail_cause_cycles", "Violation latency by cause.", nil, "cause", "service")
	reg.Counter("hcsgc_tail_violations_total", "Violations.", "cause", "service") // want `registered with different help text`
	reg.Counter("hcsgc_tail_cause_cycles", "Latency.", "cause", "service")        // want `registered as Counter here but as Summary`
	reg.Gauge("hcsgc_tail_exemplars_total", "Not a counter.")                     // want `_total suffix promises a monotonic counter`
	reg.Summary("hcsgc_tail_cause_bucket", "Reserved.", nil)                      // want `reserved suffix "_bucket"`

	// The overload-plane families (internal/overload.Stats.BindTelemetry
	// and Controller.BindTelemetry): outcome counters — sheds by priority,
	// fast-fail causes, client retries, state transitions — plus the
	// admission-state gauge and the successful-request latency summary.
	reg.Counter("hcsgc_overload_sheds_total", "Requests rejected by admission control.", "priority", "point")
	reg.Counter("hcsgc_overload_sheds_total", "Requests rejected by admission control.", "priority", "bulk")
	reg.Counter("hcsgc_overload_stale_sheds_total", "Requests shed at dequeue past their SLO budget.")
	reg.Counter("hcsgc_overload_forced_sheds_total", "Admission rejections forced by the fault injector.")
	reg.Counter("hcsgc_overload_deadline_exceeded_total", "Attempts failed fast by the allocation budget.")
	reg.Counter("hcsgc_overload_oom_failures_total", "Attempts failed by heap exhaustion.")
	reg.Counter("hcsgc_overload_retries_total", "Client retries after a shed.")
	reg.Counter("hcsgc_overload_failures_total", "Requests that exhausted their retries.")
	reg.Counter("hcsgc_overload_successes_total", "Requests completed successfully.")
	reg.Counter("hcsgc_overload_transitions_total", "Admission state transitions.")
	reg.Counter("hcsgc_overload_emergency_gc_total", "Early GC cycles forced by the controller.")
	reg.Gauge("hcsgc_overload_state", "Admission state (0 normal, 1 brownout, 2 shed).")
	reg.Summary("hcsgc_overload_success_cycles", "Successful-request latency.", nil)
	reg.Counter("hcsgc_overload_sheds_total", "Sheds.", "priority", "point") // want `registered with different help text`
	reg.Gauge("hcsgc_overload_success_cycles", "Latency.")                   // want `registered as Gauge here but as Summary`
	reg.Gauge("hcsgc_overload_sheds_total", "Not a counter.")                // want `registered as Gauge here but as Counter`
	reg.Summary("hcsgc_overload_state_count", "Reserved.", nil)              // want `reserved suffix "_count"`

	// The contention-plane families (internal/contention.Plane): per-site
	// acquisition/contended counters, CAS retry counters keyed by
	// structure, the wait summary, and the per-worker balance counters
	// with the imbalance gauge — legal multi-site registration with
	// shared kind and help across label values.
	reg.Counter("hcsgc_contention_acquisitions_total", "Lock acquisitions by site.", "site", "core.cycleMu")
	reg.Counter("hcsgc_contention_acquisitions_total", "Lock acquisitions by site.", "site", "heap.mu")
	reg.Counter("hcsgc_contention_contended_total", "Contended acquisitions by site.", "site", "core.cycleMu")
	reg.Counter("hcsgc_contention_contended_total", "Contended acquisitions by site.", "site", "simmem.llcMu")
	reg.Counter("hcsgc_contention_cas_ops_total", "CAS attempts by structure.", "structure", "heap.forwarding")
	reg.Counter("hcsgc_contention_cas_retries_total", "CAS retries by structure.", "structure", "heap.forwarding")
	reg.Summary("hcsgc_contention_wait_ns", "Contended wait time.", nil, "site", "core.cycleMu")
	reg.Counter("hcsgc_worker_scanned_total", "Objects scanned per GC worker.", "worker", "0")
	reg.Counter("hcsgc_worker_scanned_total", "Objects scanned per GC worker.", "worker", "1")
	reg.Counter("hcsgc_worker_busy_cycles_total", "Busy virtual cycles per GC worker.", "worker", "0")
	reg.Gauge("hcsgc_worker_imbalance", "Coefficient of variation of per-worker work.")

	// The scaling-sweep families (internal/bench.RunScaleSweep): gauges
	// keyed by workload and mutator count, plus per-workload USL fits.
	reg.Gauge("hcsgc_scaling_throughput", "Sweep throughput.", "workload", "fig4", "mutators", "8")
	reg.Gauge("hcsgc_scaling_throughput", "Sweep throughput.", "workload", "kv", "mutators", "8")
	reg.Gauge("hcsgc_scaling_speedup", "Sweep speedup over one mutator.", "workload", "fig4", "mutators", "8")
	reg.Gauge("hcsgc_scaling_usl_sigma", "USL contention coefficient.", "workload", "kv")

	// Divergence across sites of the same family stays a violation.
	reg.Counter("hcsgc_contention_contended_total", "Contended locks.", "site", "heap.mu") // want `registered with different help text`
	reg.Gauge("hcsgc_contention_wait_ns", "Contended wait time.")                          // want `registered as Gauge here but as Summary`
	reg.Gauge("hcsgc_worker_scanned_total", "Not a counter.")                              // want `registered as Gauge here but as Counter`
	reg.Counter("hcsgc_scaling_usl_count", "Reserved.")                                    // want `reserved suffix "_count"`
}

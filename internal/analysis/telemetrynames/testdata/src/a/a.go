// Package a seeds telemetrynames violations: malformed names and
// inconsistent family registrations.
package a

import "hcsgc/internal/telemetry"

func register(reg *telemetry.Registry, suffix string) {
	reg.Counter("gc_cycles_total", "Missing prefix.")          // want `does not match \^hcsgc_`
	reg.Gauge("hcsgc_HeapUsed", "Camel case.")                 // want `does not match \^hcsgc_`
	reg.Counter("hcsgc_pause-cycles", "Dash, not underscore.") // want `does not match \^hcsgc_`

	// The Prometheus family pattern: same name, same help, different
	// label values — legal.
	reg.Counter("hcsgc_reloc_total", "Relocations.", "who", "gc")
	reg.Counter("hcsgc_reloc_total", "Relocations.", "who", "mutator")

	// Same name, different kind: panics in Registry.family at runtime.
	reg.Gauge("hcsgc_reloc_total", "Relocations.") // want `registered as Gauge here but as Counter`

	// Same name, divergent help: the second string is silently dead.
	reg.Counter("hcsgc_stalls_total", "Allocation stalls.")
	reg.Counter("hcsgc_stalls_total", "Stalls while allocating.") // want `registered with different help text`

	// Odd label arguments panic in labelKey at first use.
	reg.Counter("hcsgc_odd_total", "Odd labels.", "who") // want `odd number of label arguments`

	// Runtime-built names are skipped: not statically checkable.
	reg.Counter("hcsgc_pause_"+suffix, "Dynamic name.")
}

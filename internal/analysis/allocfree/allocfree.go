// Package allocfree statically proves that functions annotated
// //hcsgc:alloc-free perform no Go-runtime allocation on any path. The
// annotated set is the code that runs on every load barrier and every
// admission decision — markObject, the hotness bitmap updates, the
// overload shed decision, the per-alloc signals ledger — where PR 8's
// AllocCount regression test showed a single stray allocation costs more
// than the entire fast path. The dynamic test catches a regression only
// on the interleaving it happens to execute; this pass rejects the
// allocation at compile time.
//
// Rejected constructs: make, new, append, map/slice composite literals,
// &T{...} literals, function literals (closure capture), go statements,
// defer, string concatenation, string<->[]byte/[]rune conversions,
// interface boxing (concrete value passed to, returned as, or assigned
// into an interface), variadic calls with a non-empty tail, method
// values, and calls through function-typed values (unprovable).
// Arguments of panic are exempt — the failure path is allowed to
// allocate the error it dies with.
//
// Calls are handled by contract:
//
//   - allowlisted callees (sync/atomic, math/bits, runtime.Gosched,
//     sync.Mutex/RWMutex lock ops, len/cap/copy/delete/min/max) are
//     trusted not to allocate;
//   - a same-package callee that is itself //hcsgc:alloc-free is a
//     proven boundary; an unannotated one is proven recursively, with
//     the finding reported at the call site;
//   - a cross-package callee must be //hcsgc:alloc-free or allowlisted —
//     the per-package pass cannot see foreign bodies, so the module pass
//     enforces the boundary and the callee's own package proves the
//     body. This is what threads the annotation through heap, simmem
//     and objmodel: every cross-package hop on a fast path must carry
//     the contract explicitly.
package allocfree

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"hcsgc/internal/analysis/lintkit"
)

// Analyzer is the allocfree pass.
var Analyzer = &lintkit.Analyzer{
	Name: "allocfree",
	Doc: "functions annotated //hcsgc:alloc-free must be statically free of " +
		"Go-runtime allocations (no make/append/closures/interface boxing/string " +
		"concat); cross-package callees must carry the annotation too",
	Run:       func(p *lintkit.Pass) error { return check([]*lintkit.Pass{p}, false) },
	RunModule: func(m *lintkit.ModulePass) error { return check(m.Pkgs, true) },
}

// allowedPkgs are fully trusted import paths: every function there is
// allocation-free.
var allowedPkgs = map[string]bool{
	"sync/atomic": true,
	"math/bits":   true,
}

// checker carries the per-invocation state.
type checker struct {
	passes    []*lintkit.Pass
	crossOnly bool
	// annotated maps FuncKey to true for every //hcsgc:alloc-free
	// declaration across all passes.
	annotated map[string]bool
	// decls maps FuncKey to its source declaration and owning pass.
	decls map[string]declAt
	// verdicts memoizes proofs of unannotated same-package callees:
	// nil = clean, else the first reason it allocates.
	verdicts map[string]*reason
	proving  map[string]bool
	// visited cuts cycles when the module pass recurses through
	// unannotated same-package helpers.
	visited map[string]bool
	// reported dedups call-site findings across annotated roots.
	reported map[token.Pos]bool
}

type declAt struct {
	decl *ast.FuncDecl
	pass *lintkit.Pass
}

type reason struct {
	pos  token.Pos
	pass *lintkit.Pass
	what string
}

func check(passes []*lintkit.Pass, crossOnly bool) error {
	c := &checker{
		passes:    passes,
		crossOnly: crossOnly,
		annotated: make(map[string]bool),
		decls:     make(map[string]declAt),
		verdicts:  make(map[string]*reason),
		proving:   make(map[string]bool),
		visited:   make(map[string]bool),
		reported:  make(map[token.Pos]bool),
	}
	for _, p := range passes {
		for _, file := range p.Files {
			if p.IsTestFile(file.Pos()) {
				continue
			}
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				f, ok := p.TypesInfo.Defs[decl.Name].(*types.Func)
				if !ok || f == nil {
					continue
				}
				key := lintkit.FuncKey(f)
				c.decls[key] = declAt{decl, p}
				if lintkit.HasDirective(decl, "alloc-free") {
					c.annotated[key] = true
				}
			}
		}
	}
	if len(c.annotated) == 0 {
		return nil
	}
	for key := range c.annotated {
		da := c.decls[key]
		c.walk(da.pass, da.decl, key, func(r reason) {
			if c.reported[r.pos] {
				return
			}
			c.reported[r.pos] = true
			r.pass.Reportf(r.pos, "//hcsgc:alloc-free function %s %s",
				da.decl.Name.Name, r.what)
		})
	}
	return nil
}

// walk scans one function body for allocating constructs, recursing
// through unannotated same-package callees (reported at the call site).
// In per-package mode cross-package calls are ignored; in module mode
// they are required to be annotated or allowlisted, and everything else
// is left to the per-package pass.
func (c *checker) walk(p *lintkit.Pass, decl *ast.FuncDecl, key string, report func(reason)) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.direct(p, n.Pos(), "allocates: function literal (closure)", report)
			return false
		case *ast.GoStmt:
			c.direct(p, n.Pos(), "allocates: go statement", report)
			return false
		case *ast.DeferStmt:
			c.direct(p, n.Pos(), "uses defer, which may allocate; unlock explicitly", report)
			return false
		case *ast.CompositeLit:
			if t := p.TypesInfo.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Map, *types.Slice:
					c.direct(p, n.Pos(), "allocates: map/slice composite literal", report)
				}
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.direct(p, n.Pos(), "allocates: &composite literal escapes to the heap", report)
					return false
				}
			}
			return true
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(p.TypesInfo.TypeOf(n)) {
				c.direct(p, n.Pos(), "allocates: string concatenation", report)
			}
			return true
		case *ast.ReturnStmt:
			c.checkReturnBoxing(p, decl, n, report)
			return true
		case *ast.AssignStmt:
			c.checkAssignBoxing(p, n, report)
			return true
		case *ast.CallExpr:
			return c.checkCall(p, n, report)
		}
		return true
	}
	ast.Inspect(decl.Body, visit)
}

// direct reports a construct-level finding.
func (c *checker) direct(p *lintkit.Pass, pos token.Pos, what string, report func(reason)) {
	// Construct findings belong to the per-package pass: the body being
	// walked always lives in a source-checked package of this run.
	if c.crossOnly {
		return
	}
	report(reason{pos, p, what})
}

// checkCall handles one call site. Returns false to prune the argument
// subtree (panic's failure path).
func (c *checker) checkCall(p *lintkit.Pass, call *ast.CallExpr, report func(reason)) bool {
	// Builtins and conversions first: they have no *types.Func.
	if tv, ok := p.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(p, call, tv.Type, report)
		return true
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "copy", "delete", "min", "max":
				return true
			case "panic":
				return false // the failure path may allocate what it dies with
			case "append":
				c.direct(p, call.Pos(), "allocates: append may grow its backing array", report)
				return true
			case "make", "new":
				c.direct(p, call.Pos(), "allocates: "+b.Name(), report)
				return true
			default:
				c.direct(p, call.Pos(), "calls builtin "+b.Name()+", which may allocate", report)
				return true
			}
		}
	}

	callee := lintkit.FuncOf(p.TypesInfo, call.Fun)
	if callee == nil {
		c.direct(p, call.Pos(),
			"calls through a function value, which cannot be proven allocation-free", report)
		return true
	}
	c.checkArgBoxing(p, call, callee, report)

	if allowedCallee(callee) {
		return true
	}
	key := lintkit.FuncKey(callee)
	samePkg := callee.Pkg() != nil && callee.Pkg().Path() == p.Pkg.Path()
	if samePkg {
		if c.crossOnly {
			// The per-package pass proves same-package bodies, but the
			// boundary contract must still reach cross-package calls
			// made from *unannotated* same-package helpers on the
			// alloc-free path — recurse for those alone.
			if !c.annotated[key] && !c.visited[key] {
				c.visited[key] = true
				if da, ok := c.decls[key]; ok {
					c.walk(da.pass, da.decl, key, report)
				}
			}
			return true
		}
		if c.annotated[key] {
			return true // proven boundary: its own check covers the body
		}
		if r := c.prove(key); r != nil {
			report(reason{call.Pos(), p,
				fmt.Sprintf("calls %s, which %s (%s)",
					callee.Name(), r.what, r.pass.Fset.Position(r.pos))})
		}
		return true
	}
	// Cross-package: the boundary contract, module pass only.
	if !c.crossOnly {
		return true
	}
	if c.annotated[key] {
		return true
	}
	report(reason{call.Pos(), p,
		fmt.Sprintf("calls %s.%s, which is neither //hcsgc:alloc-free nor on the "+
			"allocation-free allowlist", callee.Pkg().Path(), callee.Name())})
	return true
}

// prove memoizes the allocation-freedom of an unannotated same-package
// function, returning nil when clean or the first reason found.
func (c *checker) prove(key string) *reason {
	if r, ok := c.verdicts[key]; ok {
		return r
	}
	da, ok := c.decls[key]
	if !ok {
		// No source (e.g. declared via assembly or export data only):
		// unprovable.
		return &reason{what: "has no source body to prove", pass: c.passes[0]}
	}
	if c.proving[key] {
		return nil // recursion: assume clean while in progress
	}
	c.proving[key] = true
	var first *reason
	c.walk(da.pass, da.decl, key, func(r reason) {
		if first == nil {
			first = &r
		}
	})
	delete(c.proving, key)
	c.verdicts[key] = first
	return first
}

// checkConversion flags conversions that allocate: string <-> byte/rune
// slices, and conversion into an interface type (boxing).
func (c *checker) checkConversion(p *lintkit.Pass, call *ast.CallExpr, to types.Type, report func(reason)) {
	if len(call.Args) != 1 {
		return
	}
	from := p.TypesInfo.TypeOf(call.Args[0])
	switch {
	case isString(to) && isByteOrRuneSlice(from):
		c.direct(p, call.Pos(), "allocates: []byte/[]rune to string conversion", report)
	case isByteOrRuneSlice(to) && isString(from):
		c.direct(p, call.Pos(), "allocates: string to []byte/[]rune conversion", report)
	case isInterface(to) && from != nil && !isInterface(from):
		c.direct(p, call.Pos(), "allocates: conversion boxes a concrete value into an interface", report)
	}
}

// checkArgBoxing flags concrete values passed to interface parameters
// and non-empty variadic tails (the tail slice is heap-allocated).
func (c *checker) checkArgBoxing(p *lintkit.Pass, call *ast.CallExpr, callee *types.Func, report func(reason)) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis == token.NoPos && i == n-1 {
				c.direct(p, call.Pos(),
					"allocates: variadic call materialises its argument slice", report)
			}
			st, ok := params.At(n - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < n:
			pt = params.At(i).Type()
		default:
			continue
		}
		at := p.TypesInfo.TypeOf(arg)
		if isInterface(pt) && at != nil && !isInterface(at) && !isUntypedNil(p.TypesInfo, arg) {
			c.direct(p, arg.Pos(),
				"allocates: concrete argument boxed into interface parameter", report)
		}
	}
}

// checkReturnBoxing flags concrete values returned as interface results.
func (c *checker) checkReturnBoxing(p *lintkit.Pass, decl *ast.FuncDecl, ret *ast.ReturnStmt, report func(reason)) {
	f, ok := p.TypesInfo.Defs[decl.Name].(*types.Func)
	if !ok || f == nil {
		return
	}
	sig := f.Type().(*types.Signature)
	res := sig.Results()
	if res.Len() != len(ret.Results) {
		return
	}
	for i, e := range ret.Results {
		rt := res.At(i).Type()
		et := p.TypesInfo.TypeOf(e)
		if isInterface(rt) && et != nil && !isInterface(et) && !isUntypedNil(p.TypesInfo, e) {
			c.direct(p, e.Pos(), "allocates: concrete value boxed into interface result", report)
		}
	}
}

// checkAssignBoxing flags concrete values assigned into interface
// variables.
func (c *checker) checkAssignBoxing(p *lintkit.Pass, as *ast.AssignStmt, report func(reason)) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt := p.TypesInfo.TypeOf(as.Lhs[i])
		rt := p.TypesInfo.TypeOf(as.Rhs[i])
		if isInterface(lt) && rt != nil && !isInterface(rt) && !isUntypedNil(p.TypesInfo, as.Rhs[i]) {
			c.direct(p, as.Rhs[i].Pos(), "allocates: concrete value boxed into interface variable", report)
		}
	}
}

// allowedCallee reports whether the callee is on the allocation-free
// allowlist: whole trusted packages, runtime.Gosched, the sync lock
// primitives (locking never allocates; contention parks on runtime
// structures, not the Go heap), and the time.Now/time.Since clock reads.
func allowedCallee(f *types.Func) bool {
	pkg := f.Pkg()
	if pkg == nil {
		return false
	}
	if allowedPkgs[pkg.Path()] {
		return true
	}
	if pkg.Path() == "runtime" && f.Name() == "Gosched" {
		return true
	}
	if pkg.Path() == "sync" {
		switch f.Name() {
		case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
			return true
		}
	}
	if pkg.Path() == "time" {
		// Clock reads for contended-wait attribution: both return stack
		// values (time.Time / time.Duration) and never touch the Go heap.
		switch f.Name() {
		case "Now", "Since":
			return true
		}
	}
	return false
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

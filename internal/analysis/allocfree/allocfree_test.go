package allocfree_test

import (
	"testing"

	"hcsgc/internal/analysis/allocfree"
	"hcsgc/internal/analysis/lintkit"
)

func TestAllocFree(t *testing.T) {
	// Loading af pulls in dep (the cross-package boundary) and the
	// sync/atomic stub; RunFixture covers both the per-package proofs
	// and the module-pass boundary findings.
	lintkit.RunFixture(t, "testdata", "af", allocfree.Analyzer)
}

package allocfree_test

import (
	"testing"

	"hcsgc/internal/analysis/allocfree"
	"hcsgc/internal/analysis/lintkit"
)

func TestAllocFree(t *testing.T) {
	// Loading af pulls in dep (the cross-package boundary) and the
	// sync/atomic stub; RunFixture covers both the per-package proofs
	// and the module-pass boundary findings.
	lintkit.RunFixture(t, "testdata", "af", allocfree.Analyzer)
}

func TestAllocFreeContentionFastPath(t *testing.T) {
	// ctn mirrors the contention.Mutex lock wrapper: the annotated fast
	// path (TryLock + atomic adds + time.Now/Since + annotated recorder)
	// must prove clean, while formatting and wait buffering stay
	// findings.
	lintkit.RunFixture(t, "testdata", "ctn", allocfree.Analyzer)
}

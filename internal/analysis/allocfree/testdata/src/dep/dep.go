// Package dep is the cross-package boundary target: calls into it from
// //hcsgc:alloc-free code are legal only when the callee carries the
// annotation too.
package dep

// Annotated is a proven boundary; its own package's pass checks the body.
//
//hcsgc:alloc-free
func Annotated(x uint64) uint64 { return x }

// Plain is not annotated and therefore not a legal fast-path callee.
func Plain(x uint64) uint64 { return x }

// Package sync stubs the lock primitives the allocfree allowlist
// admits by name (locking parks on runtime structures, not the Go
// heap); the bodies are never analyzed.
package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()         {}
func (m *Mutex) Unlock()       {}
func (m *Mutex) TryLock() bool { return false }

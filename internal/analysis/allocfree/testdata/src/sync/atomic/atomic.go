// Package atomic stubs the sync/atomic surface the allocfree fixtures
// touch; the real package is fully allowlisted.
package atomic

type Uint64 struct{ v uint64 }

func (u *Uint64) Add(delta uint64) uint64 { u.v += delta; return u.v }
func (u *Uint64) Load() uint64            { return u.v }

// Package af exercises allocfree: construct rules, recursive proof of
// unannotated same-package helpers, the panic exemption, and the
// cross-package annotation boundary.
package af

import (
	"sync/atomic"

	"dep"
)

var counter atomic.Uint64

// Fast is proven clean: atomics, arithmetic, an annotated boundary, an
// unannotated helper proven recursively, and a failure-path panic.
//
//hcsgc:alloc-free
func Fast(x uint64) uint64 {
	counter.Add(1)
	if x == 0 {
		panic(newError()) // failure path may allocate what it dies with
	}
	return helper(x) + Boundary(x)
}

// helper is unannotated but allocation-free; the pass proves it on
// demand.
func helper(x uint64) uint64 { return x * 2 }

// Boundary is an annotated same-package boundary.
//
//hcsgc:alloc-free
func Boundary(x uint64) uint64 { return x + 1 }

// newError allocates, but is only reachable as a panic argument.
func newError() error { return &codeError{} }

type codeError struct{}

func (*codeError) Error() string { return "boom" }

// BadDirect trips the construct rules.
//
//hcsgc:alloc-free
func BadDirect(n int) int {
	s := make([]int, n) // want `allocates: make`
	s = append(s, 1)    // want `allocates: append may grow`
	_ = func() {}       // want `allocates: function literal`
	return len(s)
}

// BadConcat builds a string on the fast path.
//
//hcsgc:alloc-free
func BadConcat(a, b string) string {
	return a + b // want `allocates: string concatenation`
}

// BadBox boxes a concrete value into an interface result.
//
//hcsgc:alloc-free
func BadBox(x int) any {
	return x // want `boxed into interface result`
}

// BadCallee calls a same-package helper that allocates; the finding
// lands on the call site.
//
//hcsgc:alloc-free
func BadCallee() int {
	return dirty() // want `calls dirty, which allocates: make`
}

func dirty() int {
	s := make([]int, 1)
	return len(s)
}

// CrossGood calls only annotated cross-package callees.
//
//hcsgc:alloc-free
func CrossGood(x uint64) uint64 { return dep.Annotated(x) }

// CrossBad calls an unannotated cross-package function (module pass).
//
//hcsgc:alloc-free
func CrossBad(x uint64) uint64 {
	return dep.Plain(x) // want `neither //hcsgc:alloc-free nor on the`
}

// CrossViaHelper reaches the boundary through an unannotated helper:
// the module pass recurses and still enforces the contract.
//
//hcsgc:alloc-free
func CrossViaHelper(x uint64) uint64 { return viaHelper(x) }

func viaHelper(x uint64) uint64 {
	return dep.Plain(x) // want `neither //hcsgc:alloc-free nor on the`
}

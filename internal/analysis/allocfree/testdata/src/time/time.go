// Package time stubs the clock reads the allocfree allowlist admits
// (Now and Since return stack values) plus a formatter that is
// deliberately off the allowlist, so fixtures can probe the boundary.
package time

type Time struct{ ns int64 }

type Duration int64

func Now() Time { return Time{} }

func Since(t Time) Duration { return Duration(-t.ns) }

// String is not allowlisted: formatting belongs off the fast path.
func (t Time) String() string { return "" }

// Package ctn mirrors the contention.Mutex fast path: the lock wrapper
// must stay provably allocation-free, with time.Now/time.Since on the
// allowlist for contended-wait attribution and the wait-histogram
// record behind an annotated boundary.
package ctn

import (
	"sync"
	"sync/atomic"
	"time"
)

// site mirrors contention.site: two counters and a wait recorder.
type site struct {
	acquisitions atomic.Uint64
	contended    atomic.Uint64
	waits        []uint64
}

// record stands in for latency.Hist.Record, which carries the
// annotation in the real tree.
//
//hcsgc:alloc-free
func record(s *site, d time.Duration) { _ = d }

// Mutex mirrors the wrapper: an inner lock plus an optional site.
type Mutex struct {
	inner sync.Mutex
	site  *site
}

// Lock is the shape the wrapper ships: one TryLock plus two atomic
// adds, wall-clock reads on the contended path only, an annotated
// recorder boundary. The pass must prove it clean.
//
//hcsgc:alloc-free
func (m *Mutex) Lock() {
	s := m.site
	if s == nil {
		m.inner.Lock()
		return
	}
	s.acquisitions.Add(1)
	if m.inner.TryLock() {
		return
	}
	s.contended.Add(1)
	t0 := time.Now()
	m.inner.Lock()
	record(s, time.Since(t0))
}

// Unlock releases; trivially clean.
//
//hcsgc:alloc-free
func (m *Mutex) Unlock() { m.inner.Unlock() }

// BadFormat leaves the clock allowlist: Now and Since are admitted,
// any other time callee is a cross-package boundary violation.
//
//hcsgc:alloc-free
func BadFormat(t0 time.Time) string {
	return t0.String() // want `neither //hcsgc:alloc-free nor on the`
}

// BadWaitLog buffers the wait sample on the fast path instead of
// handing it to the annotated recorder.
//
//hcsgc:alloc-free
func BadWaitLog(s *site, d time.Duration) {
	s.waits = append(s.waits, uint64(d)) // want `allocates: append may grow`
}

// Package a wires only one of the stub's two injection points.
package a

import "hcsgc/internal/faultinject"

func touch(inj *faultinject.Injector, addr uint64) {
	inj.At(faultinject.Wired, addr)
}

// Package faultinject is a fixture stub declaring one wired and one
// orphaned injection point.
package faultinject

type Point uint8

const (
	Wired  Point = iota
	Orphan       // want `fault injection point Orphan has no production usage site`
	NumPoints
)

type Injector struct{}

func (inj *Injector) At(p Point, arg uint64) {}

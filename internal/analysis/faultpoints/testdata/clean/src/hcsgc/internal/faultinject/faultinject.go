// Package faultinject is a fixture stub whose points are all wired —
// including one consumed only inside the package itself, the decision
// table shape (the real PageCommit/DriverTrigger pattern).
package faultinject

type Point uint8

const (
	External Point = iota
	Internal
	NumPoints
)

type Injector struct {
	seq [NumPoints]uint64
}

func (inj *Injector) At(p Point, arg uint64) {}

func (inj *Injector) Decide() bool {
	inj.seq[Internal]++
	return false
}

// Package a wires the externally-consumed injection point.
package a

import "hcsgc/internal/faultinject"

func touch(inj *faultinject.Injector, addr uint64) {
	inj.At(faultinject.External, addr)
}

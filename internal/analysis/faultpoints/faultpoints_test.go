package faultpoints_test

import (
	"testing"

	"hcsgc/internal/analysis/faultpoints"
	"hcsgc/internal/analysis/lintkit"
)

func TestOrphanedPointCaught(t *testing.T) {
	lintkit.RunFixture(t, "testdata/bad", "a", faultpoints.Analyzer)
}

func TestFullyWiredStaysSilent(t *testing.T) {
	// No want comments in the clean tree: RunFixture fails on any
	// diagnostic, asserting the analyzer accepts package-internal uses
	// (decision-table indexing) as wiring.
	lintkit.RunFixture(t, "testdata/clean", "a", faultpoints.Analyzer)
}

// Package faultpoints keeps the fault-injection plane honest: every
// faultinject.Point constant must be wired to at least one production
// site somewhere in the module — an Injector.At(Point, ...) call, a
// seq/fired array index, a Config.Delay index. A declared-but-unwired
// point is worse than dead code: chaos schedules (faultinject.Randomized)
// arm a delay probability for it, soak reports list it, and reproducer
// seeds appear to cover a window that nothing actually exercises.
//
// The check is module-wide by construction — points are declared in
// internal/faultinject and consumed in internal/heap and internal/core —
// so it runs only under the standalone driver (cmd/hcsgc-lint), not under
// go vet's per-package protocol.
package faultpoints

import (
	"go/ast"
	"go/token"

	"hcsgc/internal/analysis/lintkit"
)

// faultPkg is the import path declaring the Point constants.
const faultPkg = "hcsgc/internal/faultinject"

// Analyzer is the faultpoints pass.
var Analyzer = &lintkit.Analyzer{
	Name: "faultpoints",
	Doc: "every faultinject.Point constant must be referenced by at least one " +
		"production site (injection call or decision-table index); unwired " +
		"points make chaos schedules lie about their coverage",
	RunModule: runModule,
}

func runModule(m *lintkit.ModulePass) error {
	// Phase 1: collect the Point constants from the faultinject package's
	// own source. NumPoints is the array-length sentinel, not an injection
	// point, and is exempt.
	type pointDecl struct {
		fset *token.FileSet
		pos  token.Pos
	}
	points := make(map[string]pointDecl)
	for _, p := range m.Pkgs {
		if p.Pkg.Path() != faultPkg {
			continue
		}
		for _, file := range p.Files {
			if p.IsTestFile(file.Pos()) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				spec, ok := n.(*ast.ValueSpec)
				if !ok {
					return true
				}
				for _, name := range spec.Names {
					obj := p.TypesInfo.Defs[name]
					if obj == nil || name.Name == "NumPoints" || name.Name == "_" {
						continue
					}
					if obj.Type().String() != faultPkg+".Point" {
						continue
					}
					points[name.Name] = pointDecl{fset: p.Fset, pos: name.Pos()}
				}
				return true
			})
		}
	}
	if len(points) == 0 {
		return nil
	}

	// Phase 2: a use anywhere in non-test production code wires the point.
	// Cross-package uses resolve to export-data objects, so match by
	// package path + name rather than object identity.
	used := make(map[string]bool)
	for _, p := range m.Pkgs {
		for _, file := range p.Files {
			if p.IsTestFile(file.Pos()) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := p.TypesInfo.Uses[id]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != faultPkg {
					return true
				}
				if _, isPoint := points[obj.Name()]; isPoint {
					used[obj.Name()] = true
				}
				return true
			})
		}
	}

	for name, decl := range points {
		if !used[name] {
			m.Reportf(decl.fset, decl.pos,
				"fault injection point %s has no production usage site: wire it "+
					"(Injector.At or a decision-table index) or delete it — chaos "+
					"schedules arm it and report coverage that never executes",
				name)
		}
	}
	return nil
}

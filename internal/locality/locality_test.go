package locality

import (
	"math/rand"
	"sync"
	"testing"
)

// naiveStack computes LRU stack distances by brute force: the distance of
// an access is the number of distinct lines touched since its previous
// access (its index in the recency list), or cold on first touch.
type naiveStack struct {
	recency []uint64
}

func (n *naiveStack) observe(line uint64) (uint64, bool) {
	for i, l := range n.recency {
		if l == line {
			copy(n.recency[1:], n.recency[:i])
			n.recency[0] = line
			return uint64(i), true
		}
	}
	n.recency = append([]uint64{line}, n.recency...)
	return 0, false
}

func TestReuseTrackerMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := newReuseTracker(1 << 12) // window far larger than the trace
	naive := &naiveStack{}
	for i := 0; i < 3000; i++ {
		line := uint64(rng.Intn(64))
		gd, gok := tr.observe(line)
		wd, wok := naive.observe(line)
		if gok != wok || (gok && gd != wd) {
			t.Fatalf("access %d line %d: got (%d,%v), want (%d,%v)", i, line, gd, gok, wd, wok)
		}
	}
}

func TestReuseTrackerWindowEviction(t *testing.T) {
	tr := newReuseTracker(8)
	tr.observe(100)
	// Fill the window with 8 other lines; line 100's slot is overwritten.
	for i := uint64(0); i < 8; i++ {
		tr.observe(i)
	}
	if _, ok := tr.observe(100); ok {
		t.Fatalf("reuse beyond the window must be cold")
	}
	// An in-window reuse right after is still tracked exactly.
	if d, ok := tr.observe(7); !ok || d != 1 {
		t.Fatalf("in-window reuse: got (%d,%v), want (1,true)", d, ok)
	}
}

func TestReuseTrackerWraparound(t *testing.T) {
	// Cross the ring boundary many times with a reusing pattern and check
	// against the naive model restricted to in-window reuses: the tracker
	// evicts by access count, so a gap wider than the window is cold even
	// when the line is still in the naive recency stack.
	const window = 16
	tr := newReuseTracker(window)
	naive := &naiveStack{}
	lastPos := map[uint64]int{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		line := uint64(rng.Intn(10))
		gd, gok := tr.observe(line)
		wd, wok := naive.observe(line)
		if prev, seen := lastPos[line]; !seen || i-prev >= window {
			wok = false // outside the tracker's access window
		}
		lastPos[line] = i
		if gok != wok || (gok && gd != wd) {
			t.Fatalf("access %d: got (%d,%v), want (%d,%v)", i, gd, gok, wd, wok)
		}
	}
}

func TestStreamDetectionSequential(t *testing.T) {
	pf := New(Config{}) // shift 0: every access sampled
	pr := pf.NewProbe()
	// 1024 sequential lines: a perfect +1-line stream.
	for i := uint64(0); i < 1024; i++ {
		pr.Access(i * 64)
	}
	pf.OnCycle(1, 1)
	st := pf.Report().LastCycle.Interval
	if st.SeqStreamCoverage < 0.95 {
		t.Fatalf("sequential walk: +1-line coverage %.3f, want >= 0.95", st.SeqStreamCoverage)
	}
	if st.MeanStreamLen < 500 {
		t.Fatalf("sequential walk: mean stream length %.1f, want >= 500", st.MeanStreamLen)
	}
}

func TestStreamDetectionRandom(t *testing.T) {
	pf := New(Config{})
	pr := pf.NewProbe()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4096; i++ {
		pr.Access(rng.Uint64() >> 20) // scattered addresses
	}
	pf.OnCycle(1, 0.5)
	st := pf.Report().LastCycle.Interval
	if st.StreamCoverage > 0.2 {
		t.Fatalf("random walk: stream coverage %.3f, want <= 0.2", st.StreamCoverage)
	}
}

func TestPageTransitionEntropy(t *testing.T) {
	pf := New(Config{})
	pr := pf.NewProbe()
	pageA, pageB := uint64(0), uint64(1)<<pageShift
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			pr.Access(pageA)
		} else {
			pr.Access(pageB)
		}
	}
	pf.OnCycle(1, 1)
	st := pf.Report().LastCycle.Interval
	// Two equiprobable transitions (A->B, B->A): 1 bit.
	if st.PageEntropyBits < 0.99 || st.PageEntropyBits > 1.01 {
		t.Fatalf("two-page ping-pong: entropy %.4f bits, want ~1", st.PageEntropyBits)
	}
	if st.SamePageFrac != 0 {
		t.Fatalf("ping-pong never stays on a page, same-page frac %v", st.SamePageFrac)
	}

	// A single-page loop has zero transition entropy.
	pf2 := New(Config{})
	pr2 := pf2.NewProbe()
	for i := 0; i < 1000; i++ {
		pr2.Access(uint64(i%10) * 8)
	}
	pf2.OnCycle(1, 1)
	st2 := pf2.Report().LastCycle.Interval
	if st2.PageEntropyBits != 0 || st2.SamePageFrac != 1 {
		t.Fatalf("single page: entropy %.3f same-page %.3f, want 0 and 1",
			st2.PageEntropyBits, st2.SamePageFrac)
	}
}

func TestBurstSampling(t *testing.T) {
	pf := New(Config{SamplePeriodShift: 6, BurstLen: 16})
	pr := pf.NewProbe()
	const total = 64 * 100 // 100 full periods
	for i := 0; i < total; i++ {
		pr.Access(uint64(i) * 8)
	}
	pf.OnCycle(1, 1)
	st := pf.Report().Cumulative
	want := uint64(16 * 100)
	if st.SampledAccesses != want {
		t.Fatalf("sampled %d accesses, want %d (16 per 64)", st.SampledAccesses, want)
	}
}

func TestDisabledProbeIsNoop(t *testing.T) {
	var pf *Profiler
	pr := pf.NewProbe() // nil
	pr.Access(42)       // must not panic
	pf.OnCycle(1, 1)
	if r := pf.Report(); r != nil {
		t.Fatalf("nil profiler must report nil, got %+v", r)
	}
}

func TestOnCycleIntervalsAndCumulative(t *testing.T) {
	pf := New(Config{})
	pr := pf.NewProbe()
	for i := uint64(0); i < 100; i++ {
		pr.Access(i * 64)
	}
	pf.OnCycle(1, 0.8)
	for i := uint64(0); i < 50; i++ {
		pr.Access(i * 64)
	}
	pf.OnCycle(2, 0.9)
	r := pf.Report()
	if r.LastCycle.Cycle != 2 || r.LastCycle.Interval.SampledAccesses != 50 {
		t.Fatalf("last cycle: %+v", r.LastCycle)
	}
	if r.Cumulative.SampledAccesses != 150 {
		t.Fatalf("cumulative sampled = %d, want 150", r.Cumulative.SampledAccesses)
	}
	if len(r.Cycles) != 2 || r.Cycles[0].Cycle != 1 {
		t.Fatalf("history: %+v", r.Cycles)
	}
	if r.Cumulative.SegPurity != 0.9 {
		t.Fatalf("cumulative purity = %v, want latest (0.9)", r.Cumulative.SegPurity)
	}
}

func TestAggregate(t *testing.T) {
	mk := func(n uint64) *Report {
		pf := New(Config{})
		pr := pf.NewProbe()
		for i := uint64(0); i < n; i++ {
			pr.Access((i % 32) * 64)
		}
		pf.OnCycle(1, 0.5)
		return pf.Report()
	}
	a, b := mk(200), mk(400)
	agg := Aggregate([]*Report{a, b})
	if agg.SampledAccesses != 600 {
		t.Fatalf("aggregate sampled = %d, want 600", agg.SampledAccesses)
	}
	if agg.SegPurity != 0.5 {
		t.Fatalf("aggregate purity = %v, want 0.5", agg.SegPurity)
	}
	if agg.Reuses != a.Cumulative.Reuses+b.Cumulative.Reuses {
		t.Fatalf("aggregate reuses = %d, want %d", agg.Reuses,
			a.Cumulative.Reuses+b.Cumulative.Reuses)
	}
}

// TestConcurrentProbes hammers probes from several goroutines while the
// profiler snapshots at simulated cycle boundaries; run under -race. The
// final cumulative count must conserve every sampled access.
func TestConcurrentProbes(t *testing.T) {
	pf := New(Config{SamplePeriodShift: 2, BurstLen: 2})
	const (
		goroutines = 4
		perG       = 20000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		seq := uint64(1)
		for {
			select {
			case <-stop:
				return
			default:
				pf.OnCycle(seq, 0.5)
				pf.Report()
				seq++
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pr := pf.NewProbe()
			base := uint64(g) << 32
			for i := 0; i < perG; i++ {
				pr.Access(base + uint64(i)*8)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	pf.OnCycle(999, 0.5)
	got := pf.Report().Cumulative.SampledAccesses
	want := uint64(goroutines * perG / 2) // burst 2 of period 4
	if got != want {
		t.Fatalf("cumulative sampled = %d, want %d", got, want)
	}
}

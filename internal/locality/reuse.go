package locality

// reuseTracker computes exact LRU stack distances (Mattson reuse
// distances) over a sliding window of the most recent `window` profiled
// accesses, in units of distinct cache lines. It is Olken's algorithm with
// bounded memory: a ring buffer records the line at each recent position, a
// hash map records each line's latest position, and a Fenwick tree over
// ring slots counts "latest occurrence" flags so that the number of
// distinct lines touched between two accesses is a range sum.
//
// Reuses farther apart than the window are indistinguishable from first
// touches; both are reported as cold (distance unknown, beyond window).
// Memory is O(window) regardless of trace length.
type reuseTracker struct {
	window uint64 // power of two
	// ring[pos%window] is the line (offset by +1; 0 = empty) fed at
	// absolute position pos.
	ring []uint64
	// last maps line+1 -> absolute position of its latest access. Bounded
	// by window: entries are evicted when their ring slot is overwritten.
	last map[uint64]uint64
	// tree is a Fenwick tree over ring slots; slot s holds 1 when the
	// access recorded there is the latest access to its line.
	tree []int32
	pos  uint64 // next absolute position (total accesses fed)
}

func newReuseTracker(window uint64) *reuseTracker {
	// Round up to a power of two so slot arithmetic is a mask.
	w := uint64(1)
	for w < window {
		w <<= 1
	}
	return &reuseTracker{
		window: w,
		ring:   make([]uint64, w),
		last:   make(map[uint64]uint64, w),
		tree:   make([]int32, w+1),
	}
}

// fenwick add/prefix over ring slots (0-based slot, internal 1-based tree).

func (t *reuseTracker) add(slot uint64, delta int32) {
	for i := slot + 1; i <= t.window; i += i & (-i) {
		t.tree[i] += delta
	}
}

// prefix returns the number of set flags in slots [0, slot].
func (t *reuseTracker) prefix(slot uint64) int32 {
	var s int32
	for i := slot + 1; i > 0; i -= i & (-i) {
		s += t.tree[i]
	}
	return s
}

// countBetween returns the number of set flags at ring slots corresponding
// to absolute positions (a, b) exclusive; requires b-a < window.
func (t *reuseTracker) countBetween(a, b uint64) uint64 {
	if b-a <= 1 {
		return 0
	}
	mask := t.window - 1
	lo, hi := (a+1)&mask, (b-1)&mask
	if lo <= hi {
		s := t.prefix(hi)
		if lo > 0 {
			s -= t.prefix(lo - 1)
		}
		return uint64(s)
	}
	// Wrapped range: [lo, window) plus [0, hi].
	s := t.prefix(t.window-1) + t.prefix(hi)
	if lo > 0 {
		s -= t.prefix(lo - 1)
	}
	return uint64(s)
}

// observe feeds one line access and returns its stack distance (number of
// distinct other lines accessed since the previous access to this line).
// ok is false for cold accesses: first touches and reuses beyond the
// window.
func (t *reuseTracker) observe(line uint64) (dist uint64, ok bool) {
	key := line + 1
	slot := t.pos & (t.window - 1)

	// Evict whatever occupied this slot a full window ago.
	if old := t.ring[slot]; old != 0 {
		if p, exists := t.last[old]; exists && p == t.pos-t.window {
			delete(t.last, old)
			t.add(slot, -1)
		}
	}

	if prev, exists := t.last[key]; exists {
		dist = t.countBetween(prev, t.pos)
		// The previous position is no longer the line's latest.
		t.add(prev&(t.window-1), -1)
		ok = true
	}

	t.ring[slot] = key
	t.last[key] = t.pos
	t.add(slot, 1)
	t.pos++
	return dist, ok
}

package locality

import (
	"fmt"
	"io"
)

// Stats is a derived, JSON-friendly view of one interval's (or the
// cumulative) locality measurements. Raw counters are kept alongside the
// derived ratios so downstream consumers (the bench A/B aggregator) can
// sum runs and re-derive.
type Stats struct {
	// SampledAccesses is the number of accesses fed to the trackers.
	SampledAccesses uint64 `json:"sampled_accesses"`

	// ReuseHist[i] counts reuse distances d with bits.Len64(d)==i:
	// bucket 0 is immediate reuse (d=0), bucket i>0 covers [2^(i-1), 2^i)
	// distinct lines.
	ReuseHist []uint64 `json:"reuse_hist"`
	// Reuses / ColdSamples partition sampled accesses into in-window
	// reuses and cold accesses (first touch or reuse beyond window).
	Reuses      uint64 `json:"reuses"`
	ColdSamples uint64 `json:"cold_samples"`
	// ReuseP50/P90/P99 are stack-distance percentiles over in-window
	// reuses, in distinct cache lines (bucket upper bounds); -1 when no
	// reuse was observed.
	ReuseP50 float64 `json:"reuse_p50"`
	ReuseP90 float64 `json:"reuse_p90"`
	ReuseP99 float64 `json:"reuse_p99"`
	// ColdFrac is ColdSamples over SampledAccesses.
	ColdFrac float64 `json:"cold_frac"`

	// StreamedAccesses / SeqStreamedAccesses count accesses on confirmed
	// constant-stride streams (any stride / +1-line). Coverage fractions
	// divide by SampledAccesses.
	StreamedAccesses    uint64  `json:"streamed_accesses"`
	SeqStreamedAccesses uint64  `json:"seq_streamed_accesses"`
	StreamCoverage      float64 `json:"stream_coverage"`
	SeqStreamCoverage   float64 `json:"seq_stream_coverage"`
	// MeanStreamLen is the mean confirmed-stream run length in accesses.
	MeanStreamLen float64 `json:"mean_stream_len"`

	// PageTransitions / SamePage count page switches and same-page pairs
	// between consecutive sampled accesses; PageEntropyBits is the
	// Shannon entropy of the transition distribution.
	PageTransitions uint64  `json:"page_transitions"`
	SamePage        uint64  `json:"same_page"`
	SamePageFrac    float64 `json:"same_page_frac"`
	PageEntropyBits float64 `json:"page_entropy_bits"`

	// SegPurity is the live-bytes-weighted hot/cold segregation purity of
	// hot-trackable pages at the latest mark end, in [0,1] (1 = every
	// page holds only its majority hotness class).
	SegPurity float64 `json:"seg_purity"`
}

// CycleReport is one GC cycle's interval snapshot.
type CycleReport struct {
	Cycle    uint64 `json:"cycle"`
	Interval Stats  `json:"interval"`
}

// Report is a full profiler snapshot.
type Report struct {
	SamplePeriod int           `json:"sample_period"`
	BurstLen     int           `json:"burst_len"`
	Window       int           `json:"window"`
	Cumulative   Stats         `json:"cumulative"`
	LastCycle    CycleReport   `json:"last_cycle"`
	Cycles       []CycleReport `json:"cycles"`
}

// deriveStats converts raw counters plus the state metrics into Stats.
func deriveStats(c *counters, entropy, samePageFrac, purity float64) Stats {
	s := Stats{
		SampledAccesses:     c.Sampled,
		ReuseHist:           append([]uint64(nil), c.DistHist[:]...),
		Reuses:              c.Reuses,
		ColdSamples:         c.Cold,
		StreamedAccesses:    c.Streamed,
		SeqStreamedAccesses: c.SeqStreamed,
		PageTransitions:     c.Transitions,
		SamePage:            c.SamePage,
		SamePageFrac:        samePageFrac,
		PageEntropyBits:     entropy,
		SegPurity:           purity,
	}
	s.ReuseP50 = histPercentile(c.DistHist[:], c.Reuses, 0.50)
	s.ReuseP90 = histPercentile(c.DistHist[:], c.Reuses, 0.90)
	s.ReuseP99 = histPercentile(c.DistHist[:], c.Reuses, 0.99)
	if c.Sampled > 0 {
		s.ColdFrac = float64(c.Cold) / float64(c.Sampled)
		s.StreamCoverage = float64(c.Streamed) / float64(c.Sampled)
		s.SeqStreamCoverage = float64(c.SeqStreamed) / float64(c.Sampled)
	}
	if c.StreamsEnd > 0 {
		s.MeanStreamLen = float64(c.StreamLen) / float64(c.StreamsEnd)
	}
	return s
}

// histPercentile returns the q-quantile of the power-of-two histogram as
// the containing bucket's upper bound in lines (bucket 0 -> 0), or -1 when
// the histogram is empty.
func histPercentile(hist []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return -1
	}
	need := q * float64(total)
	var cum float64
	for i, c := range hist {
		cum += float64(c)
		if cum >= need && c > 0 {
			if i == 0 {
				return 0
			}
			return float64(uint64(1) << uint(i))
		}
	}
	return -1
}

// Aggregate merges per-run cumulative stats into one view: flow counters
// and histograms are summed and ratios re-derived; state metrics (entropy,
// same-page fraction, purity) are averaged across runs.
func Aggregate(reports []*Report) Stats {
	var c counters
	var entropy, samePage, purity float64
	n := 0
	for _, r := range reports {
		if r == nil {
			continue
		}
		s := &r.Cumulative
		c.Sampled += s.SampledAccesses
		for i := 0; i < len(s.ReuseHist) && i < distBuckets; i++ {
			c.DistHist[i] += s.ReuseHist[i]
		}
		c.Reuses += s.Reuses
		c.Cold += s.ColdSamples
		c.Streamed += s.StreamedAccesses
		c.SeqStreamed += s.SeqStreamedAccesses
		c.Transitions += s.PageTransitions
		c.SamePage += s.SamePage
		// Recover stream-length sums from the derived mean: not possible
		// without the raw StreamsEnd, so carry the mean via weighting by
		// streamed accesses instead.
		entropy += s.PageEntropyBits
		samePage += s.SamePageFrac
		purity += s.SegPurity
		n++
	}
	if n == 0 {
		return Stats{}
	}
	out := deriveStats(&c, entropy/float64(n), samePage/float64(n), purity/float64(n))
	// MeanStreamLen: average of per-run means weighted by streamed volume.
	var wsum, w float64
	for _, r := range reports {
		if r == nil {
			continue
		}
		weight := float64(r.Cumulative.StreamedAccesses)
		wsum += r.Cumulative.MeanStreamLen * weight
		w += weight
	}
	if w > 0 {
		out.MeanStreamLen = wsum / w
	}
	return out
}

// WriteText renders s as an aligned human-readable block.
func (s *Stats) WriteText(w io.Writer, indent string) {
	fmt.Fprintf(w, "%ssampled accesses     %d\n", indent, s.SampledAccesses)
	fmt.Fprintf(w, "%sreuse distance p50   %s lines\n", indent, fmtDist(s.ReuseP50))
	fmt.Fprintf(w, "%sreuse distance p90   %s lines\n", indent, fmtDist(s.ReuseP90))
	fmt.Fprintf(w, "%sreuse distance p99   %s lines\n", indent, fmtDist(s.ReuseP99))
	fmt.Fprintf(w, "%scold sample frac     %.4f\n", indent, s.ColdFrac)
	fmt.Fprintf(w, "%sstream coverage      %.4f\n", indent, s.StreamCoverage)
	fmt.Fprintf(w, "%s+1-line coverage     %.4f\n", indent, s.SeqStreamCoverage)
	fmt.Fprintf(w, "%smean stream length   %.2f\n", indent, s.MeanStreamLen)
	fmt.Fprintf(w, "%spage entropy         %.3f bits\n", indent, s.PageEntropyBits)
	fmt.Fprintf(w, "%ssame-page fraction   %.4f\n", indent, s.SamePageFrac)
	fmt.Fprintf(w, "%ssegregation purity   %.4f\n", indent, s.SegPurity)
}

func fmtDist(v float64) string {
	if v < 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f", v)
}

// Package locality is a sampling profiler over the mutator access stream.
// It measures the program-locality properties the paper's evaluation
// attributes HCSGC's speedups to (§4: L1/LLC miss deltas, prefetch
// friendliness), as first-class metrics rather than raw cache counters:
//
//   - approximate reuse-distance histograms (exact Mattson stack distances
//     within a bounded sliding window, Olken's tree algorithm);
//   - stream statistics quantifying prefetch friendliness — the fraction
//     of accesses that fall on a confirmed constant-stride stream, the
//     fraction on +1-line streams, and mean stream length — using the same
//     detector parameters as simmem's hardware prefetcher model;
//   - page-transition entropy of the access sequence (how scattered the
//     working set is across pages);
//   - per-page hot/cold segregation purity, supplied by the collector at
//     each cycle boundary (heap.SegregationStats).
//
// Sampling is burst-based: of every 2^SamplePeriodShift accesses a probe
// feeds the first BurstLen to the trackers. Bursts preserve the local
// patterns (strides, page transitions) that per-access subsampling would
// destroy, while bounding overhead. A nil *Probe accepts Access calls as
// a no-op costing one predictable branch, so the disabled profiler adds
// only that branch to the barrier fast path.
//
// State is split per probe (one per mutator) so the hot path takes only an
// uncontended per-probe mutex during bursts; the Profiler aggregates all
// probes at each GC cycle boundary, attributing interval metrics to the
// cycle whose layout produced them.
package locality

import (
	"math"
	"math/bits"
	"sync"

	"hcsgc/internal/telemetry"
)

// Line/page geometry mirrored from simmem and heap (this package depends
// only on telemetry so every layer can import it).
const (
	lineShift = 6  // 64-byte cache lines
	pageShift = 21 // 2MB granule: the heap's small-page/allocation unit
)

// distBuckets is the reuse-distance histogram size: bucket i counts
// distances d with bits.Len64(d) == i, i.e. bucket 0 is d=0 (immediate
// reuse), bucket i>0 covers [2^(i-1), 2^i). 21 buckets span distances up
// to 2^20 lines (64MB of distinct data), beyond any bounded window.
const distBuckets = 21

// Config tunes the profiler. The zero value gets usable defaults.
type Config struct {
	// SamplePeriodShift is the power-of-two sampling knob: one burst is
	// profiled per 2^shift accesses. 0 profiles every access.
	SamplePeriodShift uint
	// BurstLen is the number of consecutive accesses profiled per period
	// (clamped to the period). Default 256.
	BurstLen int
	// Window is the reuse-distance window in profiled accesses (rounded
	// up to a power of two). Default 16384.
	Window int
	// MaxTransitions bounds the page-transition map; further distinct
	// transitions are pooled into one overflow bucket. Default 4096.
	MaxTransitions int
	// CycleHistory is how many per-cycle snapshots Report retains.
	// Default 64.
	CycleHistory int
}

// WithDefaults returns the config with zero fields replaced by defaults.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.BurstLen <= 0 {
		c.BurstLen = 256
	}
	if period := 1 << c.SamplePeriodShift; c.BurstLen > period {
		c.BurstLen = period
	}
	if c.Window <= 0 {
		c.Window = 16384
	}
	if c.MaxTransitions <= 0 {
		c.MaxTransitions = 4096
	}
	if c.CycleHistory <= 0 {
		c.CycleHistory = 64
	}
	return c
}

// Profiler owns the probes and the cumulative aggregates. Construct with
// New, hand to the runtime via Options.Locality, and read with Report.
type Profiler struct {
	cfg Config

	mu     sync.Mutex
	probes []*Probe
	cum    counters
	// entropy/purity are state metrics, not flows; the cumulative view
	// keeps the latest cycle's values.
	lastEntropy  float64
	lastSamePage float64
	lastPurity   float64
	lastCycle    CycleReport
	history      []CycleReport

	// Telemetry handles (nil until BindTelemetry; all nil-safe).
	distHist     *telemetry.Histogram
	coldTotal    *telemetry.Counter
	sampledTotal *telemetry.Counter
	gStream      *telemetry.Gauge
	gSeqStream   *telemetry.Gauge
	gMeanLen     *telemetry.Gauge
	gEntropy     *telemetry.Gauge
	gSamePage    *telemetry.Gauge
	gPurity      *telemetry.Gauge
	rec          *telemetry.Recorder
}

// New builds a profiler. A nil *Profiler is the disabled state: NewProbe
// returns nil and OnCycle/Report are no-ops.
func New(cfg Config) *Profiler {
	return &Profiler{cfg: cfg.withDefaults()}
}

// Config returns the (defaulted) configuration.
func (pf *Profiler) Config() Config { return pf.cfg }

// reuseDistBuckets are the telemetry-histogram bucket bounds matching the
// internal power-of-two histogram, in lines.
var reuseDistBuckets = telemetry.ExpBuckets(1, 2, distBuckets-1)

// BindTelemetry registers the profiler's metric series in reg and enables
// Perfetto counter-event emission through rec. Nil-safe in every argument;
// safe to call again (re-binding resolves the same series).
func (pf *Profiler) BindTelemetry(reg *telemetry.Registry, rec *telemetry.Recorder) {
	if pf == nil {
		return
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	pf.distHist = reg.Histogram("hcsgc_locality_reuse_distance_lines",
		"Sampled mutator reuse distances, in distinct cache lines (bounded-window Mattson stack distance).",
		reuseDistBuckets)
	pf.coldTotal = reg.Counter("hcsgc_locality_cold_samples_total",
		"Sampled accesses with no in-window reuse (first touches or reuse beyond the window).")
	pf.sampledTotal = reg.Counter("hcsgc_locality_sampled_accesses_total",
		"Mutator accesses fed to the locality profiler.")
	pf.gStream = reg.Gauge("hcsgc_locality_stream_coverage",
		"Fraction of sampled accesses on a confirmed constant-stride stream, last cycle interval.")
	pf.gSeqStream = reg.Gauge("hcsgc_locality_seq_stream_coverage",
		"Fraction of sampled accesses on a confirmed +1-line stream, last cycle interval.")
	pf.gMeanLen = reg.Gauge("hcsgc_locality_mean_stream_len",
		"Mean confirmed-stream length in accesses, last cycle interval.")
	pf.gEntropy = reg.Gauge("hcsgc_locality_page_entropy_bits",
		"Shannon entropy of the sampled page-transition distribution, in bits.")
	pf.gSamePage = reg.Gauge("hcsgc_locality_same_page_fraction",
		"Fraction of consecutive sampled accesses staying on the same 2MB page.")
	pf.gPurity = reg.Gauge("hcsgc_locality_segregation_purity",
		"Live-bytes-weighted hot/cold segregation purity of hot-trackable pages at mark end.")
	pf.rec = rec
	// Propagate the live-fed handles to existing probes.
	for _, pr := range pf.probes {
		pr.mu.Lock()
		pr.distHist, pr.coldCtr = pf.distHist, pf.coldTotal
		pr.mu.Unlock()
	}
}

// NewProbe attaches a new per-mutator probe. Nil-safe: a nil profiler
// returns a nil probe, whose Access method is a one-branch no-op.
func (pf *Profiler) NewProbe() *Probe {
	if pf == nil {
		return nil
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	pr := &Probe{
		mask:     uint64(1)<<pf.cfg.SamplePeriodShift - 1,
		burst:    uint64(pf.cfg.BurstLen),
		maxTrans: pf.cfg.MaxTransitions,
		reuse:    newReuseTracker(uint64(pf.cfg.Window)),
		trans:    make(map[uint64]uint64),
		distHist: pf.distHist,
		coldCtr:  pf.coldTotal,
	}
	pf.probes = append(pf.probes, pr)
	return pr
}

// counters are the flow statistics accumulated per interval and summed
// into the cumulative view. All fields are plain sums, so merging is
// addition.
type counters struct {
	Sampled  uint64
	DistHist [distBuckets]uint64
	Reuses   uint64 // sum of DistHist
	Cold     uint64

	Streamed    uint64 // accesses on a confirmed stream (any stride)
	SeqStreamed uint64 // accesses on a confirmed +1-line stream
	StreamsEnd  uint64 // confirmed streams that ended
	StreamLen   uint64 // total accesses over ended streams

	Transitions uint64 // page switches
	SamePage    uint64 // consecutive same-page pairs
}

func (a *counters) add(b *counters) {
	a.Sampled += b.Sampled
	for i := range a.DistHist {
		a.DistHist[i] += b.DistHist[i]
	}
	a.Reuses += b.Reuses
	a.Cold += b.Cold
	a.Streamed += b.Streamed
	a.SeqStreamed += b.SeqStreamed
	a.StreamsEnd += b.StreamsEnd
	a.StreamLen += b.StreamLen
	a.Transitions += b.Transitions
	a.SamePage += b.SamePage
}

// maxStreams / confirmThreshold mirror simmem/prefetch.go's hardware-like
// stream table so coverage here predicts what that prefetcher can follow.
const (
	maxStreams       = 16
	confirmThreshold = 2
)

// stream is one tracked constant-stride line stream.
type stream struct {
	lastLine int64
	stride   int64
	confid   int
	length   uint64 // accesses since confirmation
	lastUse  uint64
	valid    bool
}

// Probe is one mutator's sampling front-end. Access is called on the
// mutator's heap-access path; all other methods belong to the Profiler.
type Probe struct {
	ctr   uint64 // owner-only access counter (no lock)
	mask  uint64 // period-1
	burst uint64

	mu       sync.Mutex
	ivl      counters
	reuse    *reuseTracker
	streams  [maxStreams]stream
	sclock   uint64
	trans    map[uint64]uint64
	transOvf uint64
	maxTrans int
	lastPage uint64
	havePage bool

	distHist *telemetry.Histogram
	coldCtr  *telemetry.Counter
}

// Access feeds one mutator heap access (a simulated byte address) to the
// profiler, subject to burst sampling. Nil-safe: on a nil probe this is
// one predictable branch. Must be called only by the owning mutator.
func (pr *Probe) Access(addr uint64) {
	if pr == nil {
		return
	}
	pos := pr.ctr & pr.mask
	pr.ctr++
	if pos >= pr.burst {
		return
	}
	pr.record(addr)
}

// record feeds a sampled access to the trackers.
func (pr *Probe) record(addr uint64) {
	line := addr >> lineShift
	page := addr >> pageShift
	pr.mu.Lock()
	pr.ivl.Sampled++

	// Reuse distance.
	if dist, ok := pr.reuse.observe(line); ok {
		b := bits.Len64(dist)
		if b >= distBuckets {
			b = distBuckets - 1
		}
		pr.ivl.DistHist[b]++
		pr.ivl.Reuses++
		pr.distHist.Observe(float64(dist))
	} else {
		pr.ivl.Cold++
		pr.coldCtr.Inc()
	}

	pr.observeStream(int64(line))

	// Page transitions.
	if pr.havePage {
		if page == pr.lastPage {
			pr.ivl.SamePage++
		} else {
			pr.ivl.Transitions++
			key := pr.lastPage<<pageShift | page
			if _, ok := pr.trans[key]; ok || len(pr.trans) < pr.maxTrans {
				pr.trans[key]++
			} else {
				pr.transOvf++
			}
		}
	}
	pr.lastPage, pr.havePage = page, true
	pr.mu.Unlock()
}

// observeStream runs the prefetcher-equivalent stream table over the
// sampled line stream, counting covered accesses and stream lengths.
// Caller holds pr.mu.
func (pr *Probe) observeStream(ln int64) {
	pr.sclock++
	best := -1
	for i := range pr.streams {
		s := &pr.streams[i]
		if !s.valid {
			continue
		}
		delta := ln - s.lastLine
		if delta == 0 {
			s.lastUse = pr.sclock
			return
		}
		if s.confid >= confirmThreshold && delta == s.stride {
			best = i
			break
		}
		if delta >= -64 && delta <= 64 && best == -1 {
			best = i
		}
	}
	if best == -1 {
		pr.allocStream(ln)
		return
	}
	s := &pr.streams[best]
	delta := ln - s.lastLine
	if delta == s.stride {
		s.confid++
	} else {
		pr.closeStream(s)
		s.stride = delta
		s.confid = 1
	}
	s.lastLine = ln
	s.lastUse = pr.sclock
	if s.confid >= confirmThreshold {
		s.length++
		pr.ivl.Streamed++
		if s.stride == 1 {
			pr.ivl.SeqStreamed++
		}
	}
}

// closeStream retires a confirmed stream's run into the length stats.
// Caller holds pr.mu.
func (pr *Probe) closeStream(s *stream) {
	if s.length > 0 {
		pr.ivl.StreamsEnd++
		pr.ivl.StreamLen += s.length
		s.length = 0
	}
}

// allocStream claims the LRU tracker slot. Caller holds pr.mu.
func (pr *Probe) allocStream(ln int64) {
	victim := 0
	var victimUse uint64 = ^uint64(0)
	for i := range pr.streams {
		if !pr.streams[i].valid {
			victim = i
			break
		}
		if pr.streams[i].lastUse < victimUse {
			victim, victimUse = i, pr.streams[i].lastUse
		}
	}
	pr.closeStream(&pr.streams[victim])
	pr.streams[victim] = stream{lastLine: ln, stride: 1, confid: 0, lastUse: pr.sclock, valid: true}
}

// drain takes and resets the probe's interval counters and returns its
// transition-entropy inputs (the map is kept; entropy is computed over the
// running distribution, a state metric).
func (pr *Probe) drain() (ivl counters, trans map[uint64]uint64, ovf uint64) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	ivl = pr.ivl
	// Count still-open confirmed streams into the interval's length stats
	// without closing them (they continue into the next interval).
	for i := range pr.streams {
		if pr.streams[i].valid && pr.streams[i].length > 0 {
			ivl.StreamsEnd++
			ivl.StreamLen += pr.streams[i].length
		}
	}
	pr.ivl = counters{}
	return ivl, pr.trans, pr.transOvf
}

// entropyBits computes the Shannon entropy, in bits, of the transition
// counts (overflowed transitions pooled as one outcome, slightly
// underestimating true entropy).
func entropyBits(maps []map[uint64]uint64, ovfs []uint64) float64 {
	var total float64
	for _, m := range maps {
		for _, c := range m {
			total += float64(c)
		}
	}
	for _, o := range ovfs {
		total += float64(o)
	}
	if total == 0 {
		return 0
	}
	var h float64
	acc := func(c float64) {
		if c > 0 {
			p := c / total
			h -= p * math.Log2(p)
		}
	}
	for _, m := range maps {
		for _, c := range m {
			acc(float64(c))
		}
	}
	for _, o := range ovfs {
		acc(float64(o))
	}
	return h
}

// OnCycle is the GC-cycle-boundary hook: the collector calls it at the end
// of cycle `seq` with the mark's segregation purity. It drains every
// probe's interval counters into a per-cycle snapshot, folds them into the
// cumulative view, publishes gauges, and emits Perfetto counter events.
// Nil-safe.
func (pf *Profiler) OnCycle(seq uint64, purity float64) {
	if pf == nil {
		return
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()

	var ivl counters
	var maps []map[uint64]uint64
	var ovfs []uint64
	for _, pr := range pf.probes {
		c, m, o := pr.drain()
		ivl.add(&c)
		maps = append(maps, m)
		ovfs = append(ovfs, o)
	}
	pf.cum.add(&ivl)
	pf.lastEntropy = entropyBits(maps, ovfs)
	pf.lastPurity = purity
	total := float64(ivl.Transitions + ivl.SamePage)
	pf.lastSamePage = 0
	if total > 0 {
		pf.lastSamePage = float64(ivl.SamePage) / total
	}

	cr := CycleReport{Cycle: seq, Interval: deriveStats(&ivl, pf.lastEntropy, pf.lastSamePage, purity)}
	pf.lastCycle = cr
	pf.history = append(pf.history, cr)
	if len(pf.history) > pf.cfg.CycleHistory {
		pf.history = pf.history[len(pf.history)-pf.cfg.CycleHistory:]
	}

	pf.sampledTotal.Add(ivl.Sampled)
	pf.gStream.Set(cr.Interval.StreamCoverage)
	pf.gSeqStream.Set(cr.Interval.SeqStreamCoverage)
	pf.gMeanLen.Set(cr.Interval.MeanStreamLen)
	pf.gEntropy.Set(pf.lastEntropy)
	pf.gSamePage.Set(pf.lastSamePage)
	pf.gPurity.Set(purity)

	if pf.rec != nil {
		emit := func(id uint32, v float64) {
			pf.rec.Record(telemetry.EvCounter, id, math.Float64bits(v), seq)
		}
		emit(telemetry.CounterStreamCoverage, cr.Interval.StreamCoverage)
		emit(telemetry.CounterSegPurity, purity)
		emit(telemetry.CounterPageEntropy, pf.lastEntropy)
		emit(telemetry.CounterReuseP50, cr.Interval.ReuseP50)
	}
}

// LastCycle returns the most recently drained per-cycle interval report
// (ok=false before the first OnCycle). Cheap — no probe folding or map
// cloning — so the signal plane can call it at every cycle boundary.
// Nil-safe.
func (pf *Profiler) LastCycle() (CycleReport, bool) {
	if pf == nil {
		return CycleReport{}, false
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.lastCycle, pf.lastCycle.Cycle != 0
}

// Report snapshots the profiler: cumulative stats, the last cycle's
// interval, and recent per-cycle history. Nil-safe (returns nil).
func (pf *Profiler) Report() *Report {
	if pf == nil {
		return nil
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()

	// Fold not-yet-drained probe intervals into the cumulative view
	// without resetting them (Report may be called mid-cycle).
	cum := pf.cum
	var maps []map[uint64]uint64
	var ovfs []uint64
	for _, pr := range pf.probes {
		pr.mu.Lock()
		c := pr.ivl
		for i := range pr.streams {
			if pr.streams[i].valid && pr.streams[i].length > 0 {
				c.StreamsEnd++
				c.StreamLen += pr.streams[i].length
			}
		}
		maps = append(maps, cloneMap(pr.trans))
		ovfs = append(ovfs, pr.transOvf)
		pr.mu.Unlock()
		cum.add(&c)
	}
	entropy := entropyBits(maps, ovfs)
	samePage := pf.lastSamePage
	if t := float64(cum.Transitions + cum.SamePage); t > 0 {
		samePage = float64(cum.SamePage) / t
	}

	r := &Report{
		SamplePeriod: 1 << pf.cfg.SamplePeriodShift,
		BurstLen:     pf.cfg.BurstLen,
		Window:       pf.cfg.Window,
		Cumulative:   deriveStats(&cum, entropy, samePage, pf.lastPurity),
		LastCycle:    pf.lastCycle,
		Cycles:       append([]CycleReport(nil), pf.history...),
	}
	return r
}

func cloneMap(m map[uint64]uint64) map[uint64]uint64 {
	out := make(map[uint64]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

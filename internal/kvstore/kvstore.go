// Package kvstore is an in-memory key/value object cache built over the
// managed heap — the serving-system data structure behind the KV server
// workload. Every entry is a chain-linked heap object whose payload is a
// separately allocated word array, so SET churn produces exactly the
// mixed-lifetime, mixed-size allocation pattern a memcached-style cache
// imposes on a collector: long-lived index structure, medium-lived
// values replaced on version bumps, and per-request garbage.
//
// A Store is owned by exactly one Mutator (one server thread). The KV
// workload shards keys across threads (slot mod threads), so no two
// stores ever hold the same key and no application-level locking is
// needed; heap-word accesses are independently atomic underneath.
//
// Pinning discipline: Alloc* calls contain safepoints, so no heap
// reference obtained before an allocation may be used after it without
// being re-read from a root slot. Chain walks (LoadRef/LoadField only)
// are safepoint-free and may hold refs in locals.
package kvstore

import (
	"hcsgc"
	"hcsgc/internal/objmodel"
)

// Entry layout: a fixed 4-field object.
const (
	fKey     = 0 // generation-qualified key
	fVersion = 1 // bumped on every SET of an existing key
	fValue   = 2 // ref: word-array payload
	fNext    = 3 // ref: bucket chain
)

// RootSlots is the number of mutator root slots a Store needs; pass at
// least this to NewMutator for a server thread.
const RootSlots = 3

// Root-slot assignments within [0, RootSlots).
const (
	rootBuckets = 0 // the bucket ref-array, pinned for the store's life
	rootPinA    = 1 // operation-scoped pin across allocations
)

// Types holds the heap types a Store allocates. Register once per
// runtime and share across that runtime's stores.
type Types struct {
	Entry *hcsgc.Type
}

// RegisterTypes registers the store's object layouts with a runtime's
// type registry.
func RegisterTypes(reg *objmodel.Registry) Types {
	return Types{
		Entry: reg.Register("kv.entry", 4, []int{fValue, fNext}),
	}
}

// Store is one server thread's shard: a chained hash table from uint64
// keys to word-array values, living entirely in the managed heap.
type Store struct {
	m     *hcsgc.Mutator
	types Types
	mask  uint64 // bucket count - 1 (power of two)
	size  int    // live entries
}

// New builds a store over m, sized for about expectKeys entries. The
// bucket array is allocated immediately and pinned at root slot
// rootBuckets for the store's lifetime. Panics on heap exhaustion;
// serving paths that must degrade instead use TryNew.
func New(m *hcsgc.Mutator, types Types, expectKeys int) *Store {
	s, err := TryNew(m, types, expectKeys)
	if err != nil {
		panic(err)
	}
	return s
}

// TryNew is New returning ErrOutOfMemory (in the error chain) instead of
// panicking when the heap cannot hold the bucket array — a server thread
// on an exhausted heap degrades to failing its requests rather than
// killing the process (goroutine panics are uncatchable from outside).
func TryNew(m *hcsgc.Mutator, types Types, expectKeys int) (*Store, error) {
	if m.NumRoots() < RootSlots {
		panic("kvstore: mutator needs at least RootSlots root slots")
	}
	buckets := 16
	for buckets < expectKeys {
		buckets <<= 1
	}
	s := &Store{m: m, types: types, mask: uint64(buckets) - 1}
	arr, err := m.TryAllocRefArray(buckets)
	if err != nil {
		return nil, err
	}
	m.SetRoot(rootBuckets, arr)
	return s, nil
}

// mix is a 64-bit finalizer (splitmix64's) spreading sequential keys
// across buckets.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// valueWord is word i of a value payload — a pure function of key and
// version, so a GET's payload sum is checkable without remembering
// writes.
func valueWord(key, version uint64, i int) uint64 {
	return key*2654435761 + version*1000003 + uint64(i)
}

// ValueSum is the payload sum Get returns for (key, version) with the
// given word count — the oracle for checksum verification.
func ValueSum(key, version uint64, words int) uint64 {
	var sum uint64
	for i := 0; i < words; i++ {
		sum += valueWord(key, version, i)
	}
	return sum
}

// Len returns the number of live entries.
func (s *Store) Len() int { return s.size }

// bucketOf returns the bucket index for a key.
func (s *Store) bucketOf(key uint64) int { return int(mix(key) & s.mask) }

// find walks key's chain. Safepoint-free: the returned refs are valid
// until the next allocation.
func (s *Store) find(key uint64) (entry hcsgc.Ref) {
	m := s.m
	cur := m.LoadRef(m.LoadRoot(rootBuckets), s.bucketOf(key))
	for cur != hcsgc.NullRef {
		if m.LoadField(cur, fKey) == key {
			return cur
		}
		cur = m.LoadRef(cur, fNext)
	}
	return hcsgc.NullRef
}

// Get reads key's payload and returns its word sum. A miss returns
// (0, false); the caller decides whether to read-through.
func (s *Store) Get(key uint64) (sum uint64, hit bool) {
	e := s.find(key)
	if e == hcsgc.NullRef {
		return 0, false
	}
	m := s.m
	val := m.LoadRef(e, fValue)
	n := m.ArrayLen(val)
	for i := 0; i < n; i++ {
		sum += m.LoadField(val, i)
	}
	return sum, true
}

// Version returns key's current version, 0 if absent.
func (s *Store) Version(key uint64) uint64 {
	e := s.find(key)
	if e == hcsgc.NullRef {
		return 0
	}
	return s.m.LoadField(e, fVersion)
}

// Set writes key with a fresh words-long payload, inserting the entry or
// bumping its version and replacing the old payload (which becomes
// garbage). Returns the stored version. On heap exhaustion it panics
// with the error TrySet would return; callers that want to degrade
// gracefully use TrySet.
func (s *Store) Set(key uint64, words int) uint64 {
	version, err := s.TrySet(key, words)
	if err != nil {
		panic(err)
	}
	return version
}

// TrySet is Set with graceful failure: allocation errors (heap
// exhaustion, an expired per-request allocation budget) unwind as an
// error instead of panicking. A failed TrySet never mutates the index —
// both the update and insert paths allocate before publishing — so the
// store stays consistent and the request can be shed or retried.
func (s *Store) TrySet(key uint64, words int) (uint64, error) {
	if words < 1 {
		words = 1
	}
	m := s.m
	e := s.find(key)
	if e != hcsgc.NullRef {
		version := m.LoadField(e, fVersion) + 1
		m.SetRoot(rootPinA, e)
		val, err := m.TryAllocWordArray(words) // safepoint: e is stale now
		if err != nil {
			m.SetRoot(rootPinA, 0)
			return 0, err
		}
		for i := 0; i < words; i++ {
			m.StoreField(val, i, valueWord(key, version, i))
		}
		e = m.LoadRoot(rootPinA)
		m.StoreField(e, fVersion, version)
		m.StoreRef(e, fValue, val)
		m.SetRoot(rootPinA, 0)
		return version, nil
	}
	// Insert: payload first, pinned across the entry allocation.
	const version = 1
	val, err := m.TryAllocWordArray(words)
	if err != nil {
		return 0, err
	}
	for i := 0; i < words; i++ {
		m.StoreField(val, i, valueWord(key, version, i))
	}
	m.SetRoot(rootPinA, val)
	e, err = m.TryAlloc(s.types.Entry) // safepoint: val is stale now
	if err != nil {
		m.SetRoot(rootPinA, 0) // the orphaned payload becomes garbage
		return 0, err
	}
	m.StoreField(e, fKey, key)
	m.StoreField(e, fVersion, version)
	m.StoreRef(e, fValue, m.LoadRoot(rootPinA))
	b := s.bucketOf(key)
	buckets := m.LoadRoot(rootBuckets)
	m.StoreRef(e, fNext, m.LoadRef(buckets, b))
	m.StoreRef(buckets, b, e)
	m.SetRoot(rootPinA, 0)
	s.size++
	return version, nil
}

// Delete unlinks key; the entry and its payload become garbage. Reports
// whether the key was present.
func (s *Store) Delete(key uint64) bool {
	m := s.m
	b := s.bucketOf(key)
	buckets := m.LoadRoot(rootBuckets)
	prev := hcsgc.NullRef
	cur := m.LoadRef(buckets, b)
	for cur != hcsgc.NullRef {
		next := m.LoadRef(cur, fNext)
		if m.LoadField(cur, fKey) == key {
			if prev == hcsgc.NullRef {
				m.StoreRef(buckets, b, next)
			} else {
				m.StoreRef(prev, fNext, next)
			}
			s.size--
			return true
		}
		prev, cur = cur, next
	}
	return false
}

// Scan walks n consecutive buckets starting at startBucket (wrapping),
// summing each live entry's version and first payload word — a
// range-scan-shaped read touching many chains without allocating.
func (s *Store) Scan(startBucket, n int) (sum uint64, touched int) {
	m := s.m
	buckets := m.LoadRoot(rootBuckets)
	total := int(s.mask) + 1
	if n > total {
		n = total
	}
	for i := 0; i < n; i++ {
		b := (startBucket + i) & int(s.mask)
		cur := m.LoadRef(buckets, b)
		for cur != hcsgc.NullRef {
			sum += m.LoadField(cur, fVersion)
			sum += m.LoadField(m.LoadRef(cur, fValue), 0)
			touched++
			cur = m.LoadRef(cur, fNext)
		}
	}
	return sum, touched
}

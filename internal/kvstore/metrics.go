package kvstore

import (
	"fmt"
	"sort"
	"sync/atomic"

	"hcsgc/internal/loadgen"
	"hcsgc/internal/telemetry"
	"hcsgc/internal/telemetry/latency"
)

// Metrics accumulates the serving-side measurements of a KV run:
// per-phase request-latency HDR histograms on the virtual-cycle
// timeline, per-op counters, lookup hit/miss counters and session
// retirements. All recording is lock-free; instances merge across server
// threads and across A/B repeat runs (histograms add slot-wise, so the
// merged quantiles are exact over the union of samples).
type Metrics struct {
	phase   [loadgen.NumPhases]*latency.Hist
	ops     [loadgen.NumOps]atomic.Uint64
	hits    atomic.Uint64
	misses  atomic.Uint64
	retired atomic.Uint64

	// Live telemetry handles; nil until BindTelemetry (Counter is
	// nil-safe, so recording never branches on bound-ness).
	tOps  [loadgen.NumOps]*telemetry.Counter
	tHit  *telemetry.Counter
	tMiss *telemetry.Counter
	tRet  *telemetry.Counter
}

// NewMetrics returns an empty accumulator.
func NewMetrics() *Metrics {
	mx := &Metrics{}
	for i := range mx.phase {
		mx.phase[i] = latency.NewHist()
	}
	return mx
}

// RecordRequest records one completed request: its phase, op, and
// enqueue-to-completion latency in virtual cycles.
func (mx *Metrics) RecordRequest(phase int, op loadgen.Op, latV uint64) {
	if mx == nil {
		return
	}
	if phase >= 0 && phase < len(mx.phase) {
		mx.phase[phase].Record(latV)
	}
	if op < loadgen.NumOps {
		mx.ops[op].Add(1)
		mx.tOps[op].Inc()
	}
}

// RecordLookup records a GET hit or miss.
func (mx *Metrics) RecordLookup(hit bool) {
	if mx == nil {
		return
	}
	if hit {
		mx.hits.Add(1)
		mx.tHit.Inc()
	} else {
		mx.misses.Add(1)
		mx.tMiss.Inc()
	}
}

// RecordSessionRetired records one retired key-range session.
func (mx *Metrics) RecordSessionRetired() {
	if mx == nil {
		return
	}
	mx.retired.Add(1)
	mx.tRet.Inc()
}

// Merge folds o into mx (histograms slot-wise, counters additively).
// Telemetry handles are not merged; bind the destination instead.
func (mx *Metrics) Merge(o *Metrics) {
	if mx == nil || o == nil {
		return
	}
	for i := range mx.phase {
		mx.phase[i].Merge(o.phase[i])
	}
	for i := range mx.ops {
		mx.ops[i].Add(o.ops[i].Load())
	}
	mx.hits.Add(o.hits.Load())
	mx.misses.Add(o.misses.Load())
	mx.retired.Add(o.retired.Load())
}

// BindTelemetry registers the hcsgc_kv_* metric families with a registry
// and points the live counter handles at it. Per-phase latency summaries
// are backed live by the HDR histograms, so scrapes see quantiles
// without snapshotting.
func (mx *Metrics) BindTelemetry(reg *telemetry.Registry) {
	if mx == nil || reg == nil {
		return
	}
	for op := loadgen.Op(0); op < loadgen.NumOps; op++ {
		mx.tOps[op] = reg.Counter("hcsgc_kv_requests_total",
			"KV requests completed, by operation.", "op", op.String())
	}
	mx.tHit = reg.Counter("hcsgc_kv_lookups_total",
		"KV GET lookups, by outcome.", "result", "hit")
	mx.tMiss = reg.Counter("hcsgc_kv_lookups_total",
		"KV GET lookups, by outcome.", "result", "miss")
	mx.tRet = reg.Counter("hcsgc_kv_sessions_retired_total",
		"KV key-range sessions retired by churn.")
	for i, name := range loadgen.PhaseNames {
		reg.Summary("hcsgc_kv_request_cycles",
			"KV request latency in virtual cycles, by load phase.",
			mx.phase[i], "phase", name)
	}
}

// Dist is one phase's latency distribution summary. Quantiles carry the
// HDR histogram's <=1/32 relative slot error; Max is exact.
type Dist struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	P9999 float64 `json:"p9999"`
	Max   uint64  `json:"max"`
}

func distOf(h *latency.Hist) Dist {
	return Dist{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		P9999: h.Quantile(0.9999),
		Max:   h.Max(),
	}
}

// SLOPoint is one rung of the SLO ladder: the fraction of requests whose
// latency was <= Threshold virtual cycles (an MMU-style curve over the
// request distribution rather than the mutator timeline).
type SLOPoint struct {
	Threshold uint64  `json:"threshold_cycles"`
	Fraction  float64 `json:"fraction"`
}

// DefaultSLOThresholds is the report's threshold ladder, spanning
// barrier-only fast requests through multi-pause stalls.
func DefaultSLOThresholds() []uint64 {
	return []uint64{2_000, 5_000, 10_000, 20_000, 50_000,
		100_000, 200_000, 500_000, 1_000_000, 5_000_000}
}

// PhaseReport is one load phase's latency view.
type PhaseReport struct {
	Phase string     `json:"phase"`
	Dist  Dist       `json:"dist"`
	SLO   []SLOPoint `json:"slo"`
}

// Report is the serving-side summary of a KV run (or merged runs).
type Report struct {
	Phases          []PhaseReport     `json:"phases"`
	Ops             map[string]uint64 `json:"ops"`
	Hits            uint64            `json:"hits"`
	Misses          uint64            `json:"misses"`
	SessionsRetired uint64            `json:"sessions_retired"`
}

// Report snapshots the accumulated metrics. A nil or empty thresholds
// slice selects DefaultSLOThresholds; thresholds are reported sorted.
func (mx *Metrics) Report(thresholds []uint64) Report {
	if len(thresholds) == 0 {
		thresholds = DefaultSLOThresholds()
	} else {
		thresholds = append([]uint64(nil), thresholds...)
		sort.Slice(thresholds, func(i, j int) bool { return thresholds[i] < thresholds[j] })
	}
	r := Report{Ops: make(map[string]uint64, loadgen.NumOps)}
	for i, name := range loadgen.PhaseNames {
		h := mx.phase[i]
		pr := PhaseReport{Phase: name, Dist: distOf(h)}
		for _, th := range thresholds {
			pr.SLO = append(pr.SLO, SLOPoint{Threshold: th, Fraction: h.FractionLE(th)})
		}
		r.Phases = append(r.Phases, pr)
	}
	for op := loadgen.Op(0); op < loadgen.NumOps; op++ {
		r.Ops[op.String()] = mx.ops[op].Load()
	}
	r.Hits = mx.hits.Load()
	r.Misses = mx.misses.Load()
	r.SessionsRetired = mx.retired.Load()
	return r
}

// Validate checks a report's structural invariants: every phase present
// with a monotone SLO curve, and op counts consistent with the lookup
// counters. It is the shape check behind the bench JSON round-trip test.
func (r Report) Validate() error {
	if len(r.Phases) != len(loadgen.PhaseNames) {
		return fmt.Errorf("kvstore: report has %d phases, want %d",
			len(r.Phases), len(loadgen.PhaseNames))
	}
	for i, pr := range r.Phases {
		if pr.Phase != loadgen.PhaseNames[i] {
			return fmt.Errorf("kvstore: phase %d named %q, want %q",
				i, pr.Phase, loadgen.PhaseNames[i])
		}
		if len(pr.SLO) == 0 {
			return fmt.Errorf("kvstore: phase %q has no SLO curve", pr.Phase)
		}
		prev := SLOPoint{}
		for _, p := range pr.SLO {
			if p.Threshold < prev.Threshold || p.Fraction < prev.Fraction {
				return fmt.Errorf("kvstore: phase %q SLO curve not monotone at threshold %d",
					pr.Phase, p.Threshold)
			}
			if p.Fraction < 0 || p.Fraction > 1 {
				return fmt.Errorf("kvstore: phase %q SLO fraction %v out of [0,1]",
					pr.Phase, p.Fraction)
			}
			prev = p
		}
		d := pr.Dist
		if d.Count > 0 && (d.P50 > d.P99 || d.P99 > d.P999 || d.P999 > d.P9999 ||
			d.P9999 > float64(d.Max)) {
			return fmt.Errorf("kvstore: phase %q quantiles not monotone", pr.Phase)
		}
	}
	if r.Hits+r.Misses > 0 && r.Ops[loadgen.OpGet.String()] == 0 {
		return fmt.Errorf("kvstore: lookups recorded without GET ops")
	}
	return nil
}

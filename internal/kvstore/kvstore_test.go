package kvstore

import (
	"strings"
	"testing"

	"hcsgc"
	"hcsgc/internal/loadgen"
	"hcsgc/internal/telemetry"
)

func newTestStore(t *testing.T, heapBytes uint64, expectKeys int) (*Store, *hcsgc.Mutator, func()) {
	t.Helper()
	rt := hcsgc.MustNewRuntime(hcsgc.Options{
		HeapMaxBytes:    heapBytes,
		DisableMemModel: true,
	})
	m := rt.NewMutator(RootSlots)
	s := New(m, RegisterTypes(rt.Types), expectKeys)
	return s, m, func() { m.Close(); rt.Close() }
}

func TestStoreBasicOps(t *testing.T) {
	s, _, done := newTestStore(t, 64<<20, 256)
	defer done()

	if _, hit := s.Get(7); hit {
		t.Fatal("empty store reported a hit")
	}
	if v := s.Set(7, 8); v != 1 {
		t.Fatalf("first Set version = %d, want 1", v)
	}
	sum, hit := s.Get(7)
	if !hit || sum != ValueSum(7, 1, 8) {
		t.Fatalf("Get(7) = (%d,%v), want (%d,true)", sum, hit, ValueSum(7, 1, 8))
	}
	if v := s.Set(7, 12); v != 2 {
		t.Fatalf("second Set version = %d, want 2", v)
	}
	sum, _ = s.Get(7)
	if sum != ValueSum(7, 2, 12) {
		t.Fatalf("Get after update = %d, want %d", sum, ValueSum(7, 2, 12))
	}
	if s.Version(7) != 2 || s.Version(8) != 0 {
		t.Fatalf("Version(7)=%d Version(8)=%d, want 2, 0", s.Version(7), s.Version(8))
	}
	if !s.Delete(7) || s.Delete(7) {
		t.Fatal("Delete must report presence exactly once")
	}
	if _, hit := s.Get(7); hit {
		t.Fatal("deleted key still readable")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after delete, want 0", s.Len())
	}
}

// TestStoreSurvivesGC churns keys through inserts, updates and deletes
// across explicit GC cycles and checks every surviving payload against
// the ValueSum oracle — entries and payloads must survive relocation.
func TestStoreSurvivesGC(t *testing.T) {
	s, m, done := newTestStore(t, 16<<20, 512)
	defer done()

	const keys = 400
	version := make(map[uint64]uint64)
	for round := 0; round < 3; round++ {
		for k := uint64(0); k < keys; k++ {
			s.Set(k, 8+int(k%24))
			version[k]++
		}
		// Delete a rotating third to create chain-unlink traffic.
		for k := uint64(round); k < keys; k += 3 {
			if s.Delete(k) {
				delete(version, k)
			}
		}
		m.RequestGC()
		for k, v := range version {
			sum, hit := s.Get(k)
			if !hit {
				t.Fatalf("round %d: key %d lost after GC", round, k)
			}
			if want := ValueSum(k, v, 8+int(k%24)); sum != want {
				t.Fatalf("round %d: key %d sum %d, want %d", round, k, sum, want)
			}
		}
		if s.Len() != len(version) {
			t.Fatalf("round %d: Len=%d, want %d", round, s.Len(), len(version))
		}
	}
	gotSum, touched := s.Scan(0, 1<<30)
	if touched != s.Len() {
		t.Fatalf("full Scan touched %d entries, want %d", touched, s.Len())
	}
	if gotSum == 0 {
		t.Fatal("full Scan over a populated store summed to 0")
	}
}

func TestMetricsReportAndMerge(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	for i := uint64(1); i <= 100; i++ {
		a.RecordRequest(loadgen.PhaseSteady, loadgen.OpGet, i*100)
		b.RecordRequest(loadgen.PhaseBurst, loadgen.OpSet, i*1000)
	}
	a.RecordLookup(true)
	a.RecordLookup(false)
	b.RecordSessionRetired()
	a.Merge(b)

	r := a.Report(nil)
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if r.Phases[loadgen.PhaseSteady].Dist.Count != 100 ||
		r.Phases[loadgen.PhaseBurst].Dist.Count != 100 {
		t.Fatalf("merged phase counts = %d/%d, want 100/100",
			r.Phases[loadgen.PhaseSteady].Dist.Count, r.Phases[loadgen.PhaseBurst].Dist.Count)
	}
	if r.Ops["get"] != 100 || r.Ops["set"] != 100 {
		t.Fatalf("merged ops = %v", r.Ops)
	}
	if r.Hits != 1 || r.Misses != 1 || r.SessionsRetired != 1 {
		t.Fatalf("counters = %d/%d/%d", r.Hits, r.Misses, r.SessionsRetired)
	}
	// The steady phase saw latencies 100..10000: the 20k rung must cover
	// everything, the 2k rung only a prefix (the 10k sample itself sits
	// in a slot whose upper bound exceeds 10k — HDR slot granularity).
	var lo, hi float64
	for _, p := range r.Phases[loadgen.PhaseSteady].SLO {
		switch p.Threshold {
		case 2_000:
			lo = p.Fraction
		case 20_000:
			hi = p.Fraction
		}
	}
	if hi != 1 || lo >= hi || lo == 0 {
		t.Fatalf("steady SLO fractions lo=%v hi=%v, want 0<lo<hi=1", lo, hi)
	}

	// Validate must reject a non-monotone curve.
	bad := a.Report(nil)
	bad.Phases[0].SLO[0].Fraction = 2
	if bad.Validate() == nil {
		t.Fatal("Validate accepted an out-of-range SLO fraction")
	}
}

func TestMetricsBindTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	mx := NewMetrics()
	mx.BindTelemetry(reg)
	mx.RecordRequest(loadgen.PhaseSteady, loadgen.OpGet, 500)
	mx.RecordLookup(true)
	mx.RecordSessionRetired()

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`hcsgc_kv_requests_total{op="get"} 1`,
		`hcsgc_kv_lookups_total{result="hit"} 1`,
		`hcsgc_kv_sessions_retired_total 1`,
		`hcsgc_kv_request_cycles{phase="steady",quantile="0.5"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q\n%s", want, out)
		}
	}
}

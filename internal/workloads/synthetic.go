package workloads

import (
	"math/rand"
	"sync"

	"hcsgc"
	"hcsgc/internal/machine"
)

// The synthetic microbenchmark of §4.4, scaled for simulation:
//
//	for i in 0..outer:
//	    rand = Random(seed)            // same seed every outer loop
//	    for j in 0..inner:
//	        f(rand.nextInt(n))         // access array element
//	        if ops % 10 == 0: allocate garbage
//
// At paper scale n = 2e6 (64 MB of 32-byte objects); at simulation scale
// the defaults keep the hot working set comfortably above the 4 MB LLC so
// random access misses and reorganised access hits, which is the effect
// under study.
const (
	synPaperElems = 2_000_000
	synPaperOuter = 200
	synPaperInner = 800_000
	// synDefaultScale keeps one run around a second of host time.
	synDefaultScale = 0.075
	// synGarbageWords sizes the per-10-ops garbage allocation (~1KB) so a
	// run triggers a realistic number of GC cycles.
	synGarbageWords = 127
)

// synObj is the 32-byte element type: header + payload + two pad words.
// Field 0 is the payload the benchmark reads.
var synObjFields = 3

// synParams derives the concrete sizes for a run.
type synParams struct {
	elems, outer, inner int
}

func synSizes(scale float64) synParams {
	p := synParams{
		elems: int(float64(synPaperElems) * scale),
		outer: int(float64(synPaperOuter) * scale * 2),
		inner: int(float64(synPaperInner) * scale),
	}
	if p.elems < 1000 {
		p.elems = 1000
	}
	if p.outer < 3 {
		p.outer = 3
	}
	if p.inner < 1000 {
		p.inner = 1000
	}
	return p
}

// synBuild allocates the element array (root 0) and its objects in index
// order.
func synBuild(e *env, objType *hcsgc.Type, n int) {
	arr := e.m.AllocRefArray(n)
	e.m.SetRoot(0, arr)
	for i := 0; i < n; i++ {
		obj := e.m.Alloc(objType)
		e.m.StoreField(obj, 0, uint64(i))
		e.m.StoreRef(e.m.LoadRoot(0), i, obj)
	}
}

// synAccess touches element idx and returns its payload.
func synAccess(e *env, idx int) uint64 {
	obj := e.m.LoadRef(e.m.LoadRoot(0), idx)
	return e.m.LoadField(obj, 0)
}

// synRunPhase executes outer*inner accesses with the given per-phase seed,
// allocating garbage every 10 ops. Returns a checksum.
func synRunPhase(e *env, p synParams, seed int64) uint64 {
	var check uint64
	ops := 0
	for i := 0; i < p.outer; i++ {
		rng := rand.New(rand.NewSource(seed)) // same sequence every outer loop
		for j := 0; j < p.inner; j++ {
			idx := rng.Intn(p.elems)
			check += synAccess(e, idx)
			ops++
			if ops%10 == 0 {
				e.m.AllocWordArray(synGarbageWords)
			}
			if ops%4096 == 0 {
				e.m.Safepoint()
			}
		}
		e.sampleHeap()
	}
	return check
}

// synRunPhaseParallel partitions the outer loop across mutators worker
// threads (outer iteration i runs on worker i mod mutators). Every outer
// iteration replays the same RNG sequence regardless of which worker
// executes it, so the summed checksum equals the serial run's for any
// worker count — only the interleaving (and thus the contention) changes.
func synRunPhaseParallel(e *env, p synParams, seed int64, mutators int) uint64 {
	arr := e.m.LoadRoot(0)
	checks := make([]uint64, mutators)
	var wg sync.WaitGroup
	for t := 0; t < mutators; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			// Each worker owns its mutator for its whole lifetime so it
			// polls safepoints from birth, and anchors the shared array in
			// its own root set at spawn.
			m := e.rt.NewMutator(1)
			defer m.Close()
			m.SetRoot(0, arr)
			var check uint64
			ops := 0
			for i := tid; i < p.outer; i += mutators {
				rng := rand.New(rand.NewSource(seed)) // same sequence every outer loop
				for j := 0; j < p.inner; j++ {
					idx := rng.Intn(p.elems)
					obj := m.LoadRef(m.LoadRoot(0), idx)
					check += m.LoadField(obj, 0)
					ops++
					if ops%10 == 0 {
						m.AllocWordArray(synGarbageWords)
					}
					if ops%4096 == 0 {
						m.Safepoint()
					}
				}
				if tid == 0 {
					e.sampleHeap()
				}
			}
			checks[tid] = check
		}(t)
	}
	// The main mutator waits as blocked: an idle unblocked mutator would
	// stall every stop-the-world the workers trigger.
	e.m.Blocked(wg.Wait)
	var check uint64
	for _, c := range checks {
		check += c
	}
	return check
}

// SyntheticSinglePhase is the Fig. 4 benchmark. RunConfig.Mutators > 1
// partitions the outer loop across that many mutator threads (the scaling
// sweep's shared-array workload); the checksum is identical at any width.
func SyntheticSinglePhase() Workload {
	return Workload{
		Name: "synthetic single-phase (Fig. 4)",
		Run: guard(func(cfg RunConfig) Result {
			p := synSizes(cfg.scale(synDefaultScale))
			e := newEnv(cfg, 64<<20, 2)
			defer e.cleanup()
			objType := e.rt.Types.Register("syn.obj", synObjFields, nil)
			synBuild(e, objType, p.elems)
			e.markMeasured()
			var check uint64
			if cfg.Mutators > 1 {
				check = synRunPhaseParallel(e, p, cfg.Seed, cfg.Mutators)
			} else {
				check = synRunPhase(e, p, cfg.Seed)
			}
			res := e.finish(check)
			res.Ops = uint64(p.outer) * uint64(p.inner)
			return res
		}),
	}
}

// SyntheticMultiPhase is the Fig. 5 benchmark: three phases with their own
// access patterns over the same objects.
func SyntheticMultiPhase() Workload {
	return Workload{
		Name: "synthetic 3-phase (Fig. 5)",
		Run: guard(func(cfg RunConfig) Result {
			p := synSizes(cfg.scale(synDefaultScale))
			// Keep total work comparable to single-phase: split the outer
			// iterations across the three phases.
			p.outer = (p.outer + 2) / 3
			e := newEnv(cfg, 64<<20, 2)
			defer e.cleanup()
			objType := e.rt.Types.Register("syn.obj", synObjFields, nil)
			synBuild(e, objType, p.elems)
			e.markMeasured()
			var check uint64
			for phase := 0; phase < 3; phase++ {
				check += synRunPhase(e, p, cfg.Seed+int64(phase)) // per-phase seed
			}
			return e.finish(check)
		}),
	}
}

// SyntheticOverloaded is the Fig. 6 benchmark: a 10x never-accessed cold
// array on a single-core machine, exposing the cost of
// RELOCATEALLSMALLPAGES when computing resources are constrained.
func SyntheticOverloaded() Workload {
	return Workload{
		Name: "synthetic overloaded (Fig. 6)",
		Run: guard(func(cfg RunConfig) Result {
			scale := cfg.scale(synDefaultScale * 0.4)
			p := synSizes(scale)
			if cfg.Machine.Cores == 0 {
				cfg.Machine = machine.SingleCore() // the taskset constraint
			}
			cold := p.elems * 10 // hot:cold = 1:10
			e := newEnv(cfg, uint64(uint64(cold+p.elems)*48+64<<20), 2)
			defer e.cleanup()
			objType := e.rt.Types.Register("syn.obj", synObjFields, nil)
			// Cold array first (allocated "in the beginning, but never
			// accessed").
			coldArr := e.m.AllocRefArray(cold)
			e.m.SetRoot(1, coldArr)
			for i := 0; i < cold; i++ {
				obj := e.m.Alloc(objType)
				e.m.StoreRef(e.m.LoadRoot(1), i, obj)
			}
			synBuild(e, objType, p.elems)
			e.markMeasured()
			check := synRunPhase(e, p, cfg.Seed)
			return e.finish(check)
		}),
	}
}

package workloads

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hcsgc"
	"hcsgc/internal/kvstore"
	"hcsgc/internal/loadgen"
)

// KVServer models a memcached-style serving system: kvThreads server
// threads each own one shard of an in-heap key/value cache
// (internal/kvstore) and execute a pregenerated open-loop request
// schedule (internal/loadgen). Request latency is measured on the
// virtual-cycle timeline from the scheduled arrival time to completion,
// so GC pauses and allocation stalls land on whatever requests were in
// flight — and, because arrivals are open-loop, on the requests that
// queued up behind them (no coordinated omission).
//
// Sharding is slot mod kvThreads (generation-invariant, see loadgen), so
// every key's operations execute on a single thread: the run's checksum
// is deterministic for a seed even though threads interleave freely with
// the collector.
const (
	kvThreads      = 4
	kvDefaultScale = 1.0
	kvBaseKeys     = 10_000
	// kvBaseRequests makes each traffic phase long relative to one GC
	// cycle (~10 pause-widths): with short phases the tail percentiles
	// degenerate into a coin flip over whether a pause landed inside
	// the phase at all.
	kvBaseRequests = 300_000
	// kvWorkPerReq is the request-handling compute (parse, respond)
	// beyond the heap traffic itself, in cycles.
	kvWorkPerReq = 120
	// kvHeapBytes sizes the heap so the warm cache is roughly half of it:
	// SET/fill churn crosses the 70% GC trigger every few million virtual
	// cycles (~10 cycles per run at default scale), while leaving enough
	// slack above the trigger that allocation stalls stay an occasional
	// tail event instead of a permanent overload.
	kvHeapBytes = 18 << 20
)

// KVServer is the serving-latency benchmark behind `hcsgc-bench -kv-report`.
func KVServer() Workload {
	return Workload{
		Name: "KV server under open-loop load (SLO latency)",
		Run: guard(func(cfg RunConfig) Result {
			scale := cfg.scale(kvDefaultScale)
			keys := int(float64(kvBaseKeys) * scale)
			if keys < 64*kvThreads {
				keys = 64 * kvThreads
			}
			reqs := int(float64(kvBaseRequests) * scale)
			if reqs < 1_000 {
				reqs = 1_000
			}
			sched := loadgen.Generate(loadgen.Config{
				Seed:     cfg.Seed,
				Keys:     keys,
				Requests: reqs,
			})

			// Per-run metrics; merged into the caller's accumulator (the
			// bench A/B aggregates across repeats) at the end.
			mx := kvstore.NewMetrics()
			if cfg.Telemetry != nil {
				mx.BindTelemetry(cfg.Telemetry.Metrics())
				// The /kv endpoint serves this run's live report (latest
				// run wins, like the other per-runtime endpoints).
				cfg.Telemetry.SetKV(func() any { return mx.Report(nil) })
			}
			if cfg.Tail != nil && cfg.Telemetry != nil {
				cfg.Tail.BindTelemetry(cfg.Telemetry.Metrics())
				tail := cfg.Tail
				cfg.Telemetry.SetTailAttr(func() any { return tail.Report() })
			}

			e := newEnv(cfg, kvHeapBytes, 2)
			defer e.cleanup()
			types := kvstore.RegisterTypes(e.rt.Types)

			lg := sched.Config
			var (
				wg     sync.WaitGroup
				loaded sync.WaitGroup
				serve  = make(chan struct{})
				abort  atomic.Bool
				oomMu  sync.Mutex
				oomVal any
				checks [kvThreads]uint64
			)
			loaded.Add(kvThreads)
			for t := 0; t < kvThreads; t++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					// Each server thread owns its mutator for its whole
					// lifetime: created here (so it polls safepoints from
					// birth) and detached on every exit path, including
					// the abandoned-run panic.
					m := e.rt.NewMutator(kvstore.RootSlots)
					defer m.Close()
					m.SetName(fmt.Sprintf("kv-server-%d", tid))
					// Per-thread tail classifier: nil when attribution is
					// off, making every Observe a one-branch no-op. The
					// classifier links exemplars against the runtime's
					// signal plane (also nil-safe).
					col := e.rt.Collector
					cl := cfg.Tail.Classifier(e.rt.Signals)
					loadedDone := false
					markLoaded := func() {
						if !loadedDone {
							loadedDone = true
							loaded.Done()
						}
					}
					// OOM on a server thread aborts the whole run: flag
					// the peers, remember the panic value, and let the
					// main goroutine re-panic it into guard's recover.
					defer func() {
						r := recover()
						if r == nil {
							return
						}
						err, ok := r.(error)
						if !ok || !errors.Is(err, hcsgc.ErrOutOfMemory) {
							panic(r)
						}
						abort.Store(true)
						oomMu.Lock()
						if oomVal == nil {
							oomVal = r
						}
						oomMu.Unlock()
						markLoaded() // main must not wait on a dead loader
					}()
					st := kvstore.New(m, types, 2*keys/kvThreads)
					// Preload this thread's shard at generation 0
					// (Key == slot): the cache starts warm, as a serving
					// system does after ramp-up. GC may run mid-preload;
					// every Set polls safepoints at its allocation sites.
					for s := tid; s < keys; s += kvThreads {
						if abort.Load() {
							markLoaded()
							return
						}
						vw := lg.ValueWordsMin + s%(lg.ValueWordsMax-lg.ValueWordsMin+1)
						st.Set(uint64(s), vw)
					}
					markLoaded()
					// Wait for the measurement boundary as blocked (the
					// collector must be free to pause the world while
					// this thread idles between phases).
					m.Blocked(func() { <-serve })
					if abort.Load() {
						return
					}
					// Arrivals are relative to the serving start on this
					// thread's virtual clock (preload already advanced it).
					base := m.VirtualCycles()
					var check uint64
					for i := range sched.Requests {
						r := &sched.Requests[i]
						if int(r.Key%uint64(keys))%kvThreads != tid {
							continue
						}
						if r.Seq%64 == 0 {
							if abort.Load() {
								break
							}
							m.Safepoint()
						}
						at := base + r.At
						// Open-loop pacing: idle (but let virtual time
						// pass) until the scheduled arrival; never wait
						// for the server to catch up.
						if now := m.VirtualCycles(); now < at {
							m.Work(at - now)
						}
						// Snapshot the attribution counters around the
						// execution window (service start to completion):
						// the deltas say whether this request stalled,
						// sat through a pause, or ran while another
						// thread stalled.
						var tailStart, tailStall0, tailPause0, tailGStalls0, tailCyc0 uint64
						if cl != nil {
							tailStart = m.VirtualCycles()
							tailStall0 = m.StallVirtualCycles()
							tailPause0 = col.PauseCycles()
							tailGStalls0 = col.StallCount()
							tailCyc0 = col.Cycles()
						}
						switch r.Op {
						case loadgen.OpGet:
							sum, hit := st.Get(r.Key)
							mx.RecordLookup(hit)
							if !hit {
								// Read-through fill, object-cache style.
								st.Set(r.Key, r.ValueWords)
							}
							check += sum
						case loadgen.OpSet:
							check += st.Set(r.Key, r.ValueWords)
						case loadgen.OpDelete:
							if st.Delete(r.Key) {
								check++
							}
							if r.SessionRetire {
								mx.RecordSessionRetired()
							}
						case loadgen.OpScan:
							sum, _ := st.Scan(int(r.Key%uint64(keys)), r.ScanLen)
							check += sum
						}
						m.Work(kvWorkPerReq)
						end := m.VirtualCycles()
						mx.RecordRequest(r.Phase, r.Op, end-at)
						if cl != nil {
							cl.Observe(hcsgc.TailObs{
								Seq:          uint64(r.Seq),
								Op:           r.Op.String(),
								Phase:        loadgen.PhaseNames[r.Phase],
								ArrivalV:     at,
								StartV:       tailStart,
								EndV:         end,
								OwnStallV:    m.StallVirtualCycles() - tailStall0,
								PauseV:       col.PauseCycles() - tailPause0,
								GlobalStalls: col.StallCount() - tailGStalls0,
								CycleBefore:  tailCyc0,
								CycleAfter:   col.Cycles(),
							})
						}
						if tid == 0 && r.Seq%2048 == 0 {
							e.sampleHeap()
						}
					}
					checks[tid] = check
				}(t)
			}
			// The main mutator waits as blocked: it is attached to the
			// runtime but idle, and an idle unblocked mutator would stall
			// every stop-the-world the server threads trigger.
			e.m.Blocked(func() { loaded.Wait() })
			e.sampleHeap()
			e.markMeasured()
			close(serve)
			e.m.Blocked(func() { wg.Wait() })
			if oomVal != nil {
				panic(oomVal)
			}
			e.sampleHeap()

			rep := mx.Report(nil)
			var check uint64
			for _, c := range checks {
				check += c
			}
			if cfg.KV != nil {
				cfg.KV.Merge(mx)
			}
			res := e.finish(check)
			steady := rep.Phases[loadgen.PhaseSteady].Dist
			burst := rep.Phases[loadgen.PhaseBurst].Dist
			hitRate := 0.0
			if rep.Hits+rep.Misses > 0 {
				hitRate = float64(rep.Hits) / float64(rep.Hits+rep.Misses)
			}
			res.Scores = map[string]float64{
				"kv-p99-steady":  steady.P99,
				"kv-p999-steady": steady.P999,
				"kv-p999-burst":  burst.P999,
				"kv-hit-rate":    hitRate,
			}
			return res
		}),
	}
}

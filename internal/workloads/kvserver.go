package workloads

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hcsgc"
	"hcsgc/internal/kvstore"
	"hcsgc/internal/loadgen"
	"hcsgc/internal/overload"
)

// KVServer models a memcached-style serving system: server threads
// (RunConfig.Mutators, default kvThreads) each own one shard of an
// in-heap key/value cache
// (internal/kvstore) and execute a pregenerated open-loop request
// schedule (internal/loadgen). Request latency is measured on the
// virtual-cycle timeline from the scheduled arrival time to completion,
// so GC pauses and allocation stalls land on whatever requests were in
// flight — and, because arrivals are open-loop, on the requests that
// queued up behind them (no coordinated omission).
//
// Sharding is slot mod the thread count (generation-invariant, see
// loadgen), so
// every key's operations execute on a single thread: the run's checksum
// is deterministic for a seed even though threads interleave freely with
// the collector.
//
// With RunConfig.Overload set, the serving loop runs protected: an
// admission controller sheds requests under pressure, each request's
// deadline is armed as a per-request allocation budget, shed/expired
// requests retry with jittered backoff, and heap exhaustion degrades to
// per-request failures. Unprotected runs skip all of that except the OOM
// degradation — a full heap fails individual requests, never the run.
const (
	kvThreads      = 4
	kvDefaultScale = 1.0
	kvBaseKeys     = 10_000
	// kvBaseRequests makes each traffic phase long relative to one GC
	// cycle (~10 pause-widths): with short phases the tail percentiles
	// degenerate into a coin flip over whether a pause landed inside
	// the phase at all.
	kvBaseRequests = 300_000
	// kvWorkPerReq is the request-handling compute (parse, respond)
	// beyond the heap traffic itself, in cycles.
	kvWorkPerReq = 120
	// kvHeapBytes sizes the heap so the warm cache is roughly half of it:
	// SET/fill churn crosses the 70% GC trigger every few million virtual
	// cycles (~10 cycles per run at default scale), while leaving enough
	// slack above the trigger that allocation stalls stay an occasional
	// tail event instead of a permanent overload.
	kvHeapBytes = 18 << 20
	// kvPollEvery is the admission controller's poll cadence in requests
	// handled per thread.
	kvPollEvery = 32
)

// kvPriority maps an op to its admission priority: scans are bulk work
// (shed first); point ops shed last. Read-through fills are gated
// separately at PriorityBulk inside the GET path.
func kvPriority(op loadgen.Op) overload.Priority {
	if op == loadgen.OpScan {
		return overload.PriorityBulk
	}
	return overload.PriorityPoint
}

// KVServer is the serving-latency benchmark behind `hcsgc-bench -kv-report`
// and (with RunConfig.Overload armed) `hcsgc-bench -overload-report`.
func KVServer() Workload {
	return Workload{
		Name: "KV server under open-loop load (SLO latency)",
		Run: guard(func(cfg RunConfig) Result {
			scale := cfg.scale(kvDefaultScale)
			threads := cfg.Mutators
			if threads <= 0 {
				threads = kvThreads
			}
			keys := int(float64(kvBaseKeys) * scale)
			if keys < 64*threads {
				keys = 64 * threads
			}
			reqs := int(float64(kvBaseRequests) * scale)
			if reqs < 1_000 {
				reqs = 1_000
			}
			// The protected and unprotected sides of an overload A/B must
			// face identical traffic: the mean gap and deadline knobs are
			// RNG-free, so the arrivals, keys, and op mix depend only on
			// (seed, keys, reqs).
			gap := 600.0
			if cfg.LoadFactor > 0 {
				gap /= cfg.LoadFactor
			}
			pol := overload.Policy{}.WithDefaults()
			if cfg.Overload != nil {
				p := *cfg.Overload
				if p.Seed == 0 {
					p.Seed = cfg.Seed
				}
				pol = p.WithDefaults()
			}
			var deadlineCycles uint64
			if cfg.Overload != nil {
				deadlineCycles = pol.DeadlineCycles
			}
			sched := loadgen.Generate(loadgen.Config{
				Seed:           cfg.Seed,
				Keys:           keys,
				Requests:       reqs,
				MeanGapCycles:  gap,
				DeadlineCycles: deadlineCycles,
			})

			// Per-run metrics; merged into the caller's accumulators (the
			// bench A/B aggregates across repeats) at the end. mx holds
			// only successful requests; ost holds the outcome accounting.
			mx := kvstore.NewMetrics()
			ost := overload.NewStats()
			if cfg.Telemetry != nil {
				mx.BindTelemetry(cfg.Telemetry.Metrics())
				// The /kv endpoint serves this run's live report (latest
				// run wins, like the other per-runtime endpoints).
				cfg.Telemetry.SetKV(func() any { return mx.Report(nil) })
			}
			if cfg.Tail != nil && cfg.Telemetry != nil {
				cfg.Tail.BindTelemetry(cfg.Telemetry.Metrics())
				tail := cfg.Tail
				cfg.Telemetry.SetTailAttr(func() any { return tail.Report() })
			}

			e := newEnv(cfg, kvHeapBytes, 2)
			defer e.cleanup()
			types := kvstore.RegisterTypes(e.rt.Types)

			// The overload controller is per-run (its state machine tracks
			// this runtime's signal plane) but records into the shared
			// accumulator via ost.
			var ctrl *overload.Controller
			if cfg.Overload != nil {
				p := *cfg.Overload
				if p.Seed == 0 {
					p.Seed = cfg.Seed
				}
				col := e.rt.Collector
				ctrl = overload.NewController(p, e.rt.Signals, overload.Hooks{
					HeapUsedPct: e.rt.Heap.UsedPercent,
					Stalls:      col.StallCount,
					SetHeadroom: col.SetEmergencyHeadroom,
					EmergencyGC: col.RequestEmergencyGC,
				}, cfg.FaultInjector, ost)
			}
			if cfg.Telemetry != nil {
				reg := cfg.Telemetry.Metrics()
				if ctrl != nil {
					c := ctrl
					ctrl.BindTelemetry(reg)
					cfg.Telemetry.SetOverload(func() any { return c.Report() })
				} else {
					o, slo := ost, pol.GoodputSLOCycles
					ost.BindTelemetry(reg)
					cfg.Telemetry.SetOverload(func() any { return o.Report(slo) })
				}
			}

			lg := sched.Config
			var (
				wg         sync.WaitGroup
				loaded     sync.WaitGroup
				serve      = make(chan struct{})
				checks     = make([]uint64, threads)
				spans      = make([]uint64, threads)
				serveAlloc atomic.Uint64
			)
			loaded.Add(threads)
			for t := 0; t < threads; t++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					// Each server thread owns its mutator for its whole
					// lifetime: created here (so it polls safepoints from
					// birth) and detached on exit.
					m := e.rt.NewMutator(kvstore.RootSlots)
					defer m.Close()
					m.SetName(fmt.Sprintf("kv-server-%d", tid))
					// Per-thread tail classifier: nil when attribution is
					// off, making every Observe a one-branch no-op. The
					// classifier links exemplars against the runtime's
					// signal plane (also nil-safe).
					col := e.rt.Collector
					cl := cfg.Tail.Classifier(e.rt.Signals)
					// A heap too exhausted to hold even the bucket array
					// leaves the shard dead: the thread stays up and fails
					// its requests without heap work (a goroutine panic
					// here would kill the whole process — guard() only
					// covers the main goroutine).
					st, stErr := kvstore.TryNew(m, types, 2*keys/threads)
					if stErr != nil && !errors.Is(stErr, hcsgc.ErrOutOfMemory) {
						panic(stErr)
					}
					// Preload this thread's shard at generation 0
					// (Key == slot): the cache starts warm, as a serving
					// system does after ramp-up. GC may run mid-preload;
					// every Set polls safepoints at its allocation sites.
					// If the heap can't hold the full warm set, the shard
					// serves with a partial cache instead of dying — read
					// traffic degrades to misses, not to a dead run.
					if st != nil {
						for s := tid; s < keys; s += threads {
							vw := lg.ValueWordsMin + s%(lg.ValueWordsMax-lg.ValueWordsMin+1)
							if _, err := st.TrySet(uint64(s), vw); err != nil {
								if errors.Is(err, hcsgc.ErrOutOfMemory) {
									break
								}
								panic(err)
							}
						}
					}
					loaded.Done()
					// Wait for the measurement boundary as blocked (the
					// collector must be free to pause the world while
					// this thread idles between phases).
					m.Blocked(func() { <-serve })
					// Arrivals are relative to the serving start on this
					// thread's virtual clock (preload already advanced it).
					base := m.VirtualCycles()
					allocBase := m.AllocatedBytes()
					var check uint64
					// Per-op decayed maximum of clean (stall- and
					// pause-free) service cycles, feeding the
					// SLO-staleness shed below. A worst-case estimate,
					// not a mean: admission must guarantee the slowest
					// clean instance of the op still fits the remaining
					// SLO budget, or near-boundary requests violate by a
					// hair and the violation is attributable to nothing.
					var svcWorst [loadgen.NumOps]uint64
					handled := 0
					for i := range sched.Requests {
						r := &sched.Requests[i]
						if int(r.Key%uint64(keys))%threads != tid {
							continue
						}
						if r.Seq%64 == 0 {
							m.Safepoint()
						}
						if ctrl != nil && handled%kvPollEvery == 0 {
							ctrl.Poll()
						}
						handled++
						at := base + r.At
						// Open-loop pacing: idle (but let virtual time
						// pass) until the scheduled arrival; never wait
						// for the server to catch up.
						if now := m.VirtualCycles(); now < at {
							m.Work(at - now)
						}
						var deadlineAbs uint64
						if r.Deadline > 0 {
							deadlineAbs = base + r.Deadline
							// Deadline-aware shedding at dequeue: a request
							// already past its deadline when the server
							// reaches it (queued behind a stall convoy) is
							// dropped for the cost of one clock read — the
							// client gave up long ago, and serving it only
							// delays every request behind it. This is what
							// bounds the successful-request tail: an
							// admitted request can be at most DeadlineCycles
							// old when service starts.
							if now := m.VirtualCycles(); now >= deadlineAbs {
								ost.RecordDeadlineExceeded()
								ost.RecordFailure()
								// The drop itself proves the queue has not
								// drained: keep the convoy chain alive for
								// the requests behind it.
								cl.NoteDisruption(at, now, col.Cycles(), 0, 0)
								continue
							}
						}
						// SLO-staleness shedding at dequeue: if queueing
						// delay alone has consumed the SLO budget (minus
						// twice this class's learned service time), the
						// request can no longer complete within the SLO —
						// serving it would spend capacity manufacturing
						// badput and push every request behind it further
						// past its own budget. This bounds the
						// pure-overload queueing ramp the GC-signal
						// controller cannot see: admitted load above
						// capacity grows the queue without a single stall
						// or heap flag, and without this check every
						// request in that ramp becomes an SLO violation
						// attributable to nothing but the queue itself.
						if ctrl != nil {
							guard := pol.GoodputSLOCycles / 16
							if now := m.VirtualCycles(); now > at &&
								now-at+svcWorst[r.Op]+guard >= pol.GoodputSLOCycles {
								ost.RecordStaleShed(kvPriority(r.Op))
								ost.RecordFailure()
								// Like the deadline drop: the backlog has
								// not drained, keep the convoy chain alive.
								cl.NoteDisruption(at, now, col.Cycles(), 0, 0)
								continue
							}
						}
						if st == nil {
							// Dead shard (bucket array never fit): fail the
							// request without touching the heap.
							ost.RecordOOMFailure()
							ost.RecordFailure()
							m.Work(kvWorkPerReq)
							continue
						}
						// Snapshot the attribution counters around the
						// execution window (service start to completion,
						// retries included): the deltas say whether this
						// request stalled, sat through a pause, or ran
						// while another thread stalled.
						var tailStall0, tailPause0, tailGStalls0, tailCyc0 uint64
						if cl != nil {
							tailStall0 = m.StallVirtualCycles()
							tailPause0 = col.PauseCycles()
							tailGStalls0 = col.StallCount()
							tailCyc0 = col.Cycles()
						}
						svcStart := m.VirtualCycles()
						svcStall0 := m.StallVirtualCycles()
						svcPause0 := col.PauseCycles()
						var reqErr error
						for attempt := 0; ; attempt++ {
							// Admission first: a shed request performs no
							// heap work after this decision point.
							err := ctrl.Admit(kvPriority(r.Op),
								uint64(r.Seq)<<4|uint64(attempt&15))
							if err == nil {
								if deadlineAbs > 0 {
									m.SetAllocBudget(deadlineAbs, pol.MaxStallsPerRequest)
								}
								var delta uint64
								delta, err = kvExecOp(st, mx, ctrl, r, keys, attempt)
								if deadlineAbs > 0 {
									m.ClearAllocBudget()
								}
								if err == nil {
									check += delta
									break
								}
							}
							shed := false
							switch {
							case errors.Is(err, overload.ErrOverload):
								// Recorded by the controller at the
								// decision point.
								shed = true
							case errors.Is(err, hcsgc.ErrDeadlineExceeded):
								ost.RecordDeadlineExceeded()
							case errors.Is(err, hcsgc.ErrOutOfMemory):
								ost.RecordOOMFailure()
							default:
								panic(err)
							}
							// Client retry with jittered backoff, only for
							// shed requests (an expired deadline will not
							// un-expire). The backoff is client-side wait:
							// it does not occupy the shard's thread (a
							// blocking wait here would convert every
							// client's patience into head-of-line delay
							// for the whole shard). Its server-visible
							// effect is the gate: a client whose backoff
							// would run past the deadline gives up instead
							// of resubmitting.
							retry := shed && attempt < pol.MaxRetries
							if retry {
								backoff := loadgen.RetryBackoff(lg.Seed,
									uint64(r.Seq), attempt+1, pol.RetryBackoffCycles)
								if deadlineAbs > 0 &&
									m.VirtualCycles()+backoff >= deadlineAbs {
									retry = false
								} else {
									ost.RecordRetry()
								}
							}
							if !retry {
								reqErr = err
								break
							}
						}
						m.Work(kvWorkPerReq)
						end := m.VirtualCycles()
						if reqErr == nil {
							lat := end - at
							mx.RecordRequest(r.Phase, r.Op, lat)
							ost.RecordSuccess(lat, lat <= pol.GoodputSLOCycles)
							if ctrl != nil {
								// Update the clean-service worst case:
								// slow decay so a one-off high does not
								// over-shed forever, and only stall- and
								// pause-free requests contribute (a
								// disrupted request's span measures the
								// disruption, not the op).
								w := svcWorst[r.Op] - svcWorst[r.Op]/64
								if svc := end - svcStart; svc > w &&
									m.StallVirtualCycles() == svcStall0 &&
									col.PauseCycles() == svcPause0 {
									w = svc
								}
								svcWorst[r.Op] = w
							}
							if cl != nil {
								cl.Observe(hcsgc.TailObs{
									Seq:          uint64(r.Seq),
									Op:           r.Op.String(),
									Phase:        loadgen.PhaseNames[r.Phase],
									ArrivalV:     at,
									StartV:       svcStart,
									EndV:         end,
									OwnStallV:    m.StallVirtualCycles() - tailStall0,
									PauseV:       col.PauseCycles() - tailPause0,
									GlobalStalls: col.StallCount() - tailGStalls0,
									CycleBefore:  tailCyc0,
									CycleAfter:   col.Cycles(),
								})
							}
						} else {
							ost.RecordFailure()
							// A failed request can still be the convoy's
							// seed (it stalled or sat through a pause) or
							// part of its backlog: either way, tell the
							// classifier so its successors' queueing delay
							// stays attributable.
							if cl != nil {
								cl.NoteDisruption(at, end, col.Cycles(),
									m.StallVirtualCycles()-tailStall0,
									col.PauseCycles()-tailPause0)
							}
						}
						if tid == 0 && r.Seq%2048 == 0 {
							e.sampleHeap()
						}
					}
					checks[tid] = check
					spans[tid] = m.VirtualCycles() - base
					serveAlloc.Add(m.AllocatedBytes() - allocBase)
				}(t)
			}
			// The main mutator waits as blocked: it is attached to the
			// runtime but idle, and an idle unblocked mutator would stall
			// every stop-the-world the server threads trigger.
			e.m.Blocked(func() { loaded.Wait() })
			e.sampleHeap()
			e.markMeasured()
			close(serve)
			e.m.Blocked(func() { wg.Wait() })
			e.sampleHeap()

			var span uint64
			for _, s := range spans {
				if s > span {
					span = s
				}
			}
			ost.AddServeSpan(span)
			ost.AddServeAllocBytes(serveAlloc.Load())

			rep := mx.Report(nil)
			orep := ost.Report(pol.GoodputSLOCycles)
			var check uint64
			for _, c := range checks {
				check += c
			}
			if cfg.KV != nil {
				cfg.KV.Merge(mx)
			}
			if cfg.OverloadStats != nil {
				cfg.OverloadStats.Merge(ost)
			}
			res := e.finish(check)
			res.Ops = uint64(reqs)
			steady := rep.Phases[loadgen.PhaseSteady].Dist
			burst := rep.Phases[loadgen.PhaseBurst].Dist
			hitRate := 0.0
			if rep.Hits+rep.Misses > 0 {
				hitRate = float64(rep.Hits) / float64(rep.Hits+rep.Misses)
			}
			res.Scores = map[string]float64{
				"kv-p99-steady":  steady.P99,
				"kv-p999-steady": steady.P999,
				"kv-p999-burst":  burst.P999,
				"kv-hit-rate":    hitRate,
				"kv-sheds":       float64(orep.ShedPoint + orep.ShedBulk),
				"kv-failures":    float64(orep.Failures),
				"kv-goodput":     float64(orep.Goodput),
			}
			return res
		}),
	}
}

// kvExecOp executes one request attempt against the thread's shard,
// returning the checksum delta. Only SET and read-through fills allocate
// (GET/SCAN/DELETE are allocation-free), so only they can fail — with
// ErrOutOfMemory or, under an armed allocation budget,
// ErrDeadlineExceeded. A failed attempt never mutates the index (see
// kvstore.TrySet), so retries are safe.
func kvExecOp(st *kvstore.Store, mx *kvstore.Metrics, ctrl *overload.Controller,
	r *loadgen.Request, keys int, attempt int) (uint64, error) {
	switch r.Op {
	case loadgen.OpGet:
		sum, hit := st.Get(r.Key)
		if attempt == 0 {
			mx.RecordLookup(hit)
		}
		if !hit {
			// Read-through fill, object-cache style. The fill is bulk
			// work: under brownout the controller sheds it and the GET
			// still serves as a miss — deferrable heap traffic is the
			// first thing to go.
			if ferr := ctrl.Admit(overload.PriorityBulk,
				uint64(r.Seq)<<4|uint64(attempt&15)|1<<63); ferr == nil {
				if _, err := st.TrySet(r.Key, r.ValueWords); err != nil {
					return 0, err
				}
			}
		}
		return sum, nil
	case loadgen.OpSet:
		return st.TrySet(r.Key, r.ValueWords)
	case loadgen.OpDelete:
		var delta uint64
		if st.Delete(r.Key) {
			delta = 1
		}
		if r.SessionRetire {
			mx.RecordSessionRetired()
		}
		return delta, nil
	case loadgen.OpScan:
		sum, _ := st.Scan(int(r.Key%uint64(keys)), r.ScanLen)
		return sum, nil
	}
	return 0, nil
}

package workloads

import (
	"math/rand"
)

// Tradebeans models DaCapo's tradebeans (DayTrader): an order-processing
// application where almost every allocated object (orders, DTOs,
// marshalling buffers) dies within one request, over a modest long-lived
// population of accounts, holdings and quotes. The paper attributes
// tradebeans' small HCSGC gains to exactly this profile: "so many objects
// are very short lived ... locality benefits must come through placement
// at allocation-time" (§4.6).
//
// Methodology mirrors §4.2 for DaCapo: warm-up iterations followed by
// measured iterations; execution time covers the measured part, cache
// statistics the whole run.

// Account object fields.
const (
	taBalance  = 0 // word
	taHoldings = 1 // ref -> holdings array
	taProfile  = 2 // ref -> profile object
	taFields   = 3
)

// Holding object fields.
const (
	thQuote  = 0 // ref -> quote
	thAmount = 1
	thPrice  = 2
	thFields = 3
)

// Quote object fields.
const (
	tqPrice  = 0
	tqVolume = 1
	tqFields = 2
)

// Order (short-lived) fields.
const (
	toAccount = 0 // ref
	toQuote   = 1 // ref
	toQty     = 2
	toFields  = 3
)

// tradebeans scale constants (per unit of RunConfig.Scale). The account
// population is sized so that the live object set exceeds the LLC (the
// benchmark's real session/entity population is far larger than any
// cache), leaving locality headroom for the hot subset.
const (
	taAccounts    = 60000
	taQuotes      = 2000
	taHoldingsPer = 4
	taOpsPerIter  = 60000
	// 15 warm-up + 10 measured iterations, the paper's DaCapo setup.
	taWarmupIters   = 15
	taMeasuredIters = 10
	taDefaultScale  = 0.5
)

// Root slots: 0 = accounts array, 1 = quotes array.

// Tradebeans is the Fig. 11 benchmark.
func Tradebeans() Workload {
	return Workload{
		Name: "tradebeans (Fig. 11)",
		Run: guard(func(cfg RunConfig) Result {
			scale := cfg.scale(taDefaultScale)
			accounts := int(float64(taAccounts) * scale)
			quotes := int(float64(taQuotes) * scale)
			ops := int(float64(taOpsPerIter) * scale)
			if accounts < 100 {
				accounts = 100
			}
			if quotes < 50 {
				quotes = 50
			}
			if ops < 1000 {
				ops = 1000
			}

			// The paper gives DaCapo a 4GB heap; relative to the live set
			// this keeps GC cycles rare, so HCSGC's relocation work is a
			// small fraction of mutator work.
			e := newEnv(cfg, 160<<20, 4)
			defer e.cleanup()
			account := e.rt.Types.Register("ta.account", taFields, []int{taHoldings, taProfile})
			holding := e.rt.Types.Register("ta.holding", thFields, []int{thQuote})
			quote := e.rt.Types.Register("ta.quote", tqFields, nil)
			order := e.rt.Types.Register("ta.order", toFields, []int{toAccount, toQuote})

			m := e.m
			// Long-lived population.
			qarr := m.AllocRefArray(quotes)
			m.SetRoot(1, qarr)
			for i := 0; i < quotes; i++ {
				q := m.Alloc(quote)
				m.StoreField(q, tqPrice, uint64(100+i))
				m.StoreRef(m.LoadRoot(1), i, q)
			}
			aarr := m.AllocRefArray(accounts)
			m.SetRoot(0, aarr)
			for i := 0; i < accounts; i++ {
				a := m.Alloc(account)
				m.StoreField(a, taBalance, 1_000_000)
				m.StoreRef(m.LoadRoot(0), i, a)
				h := m.AllocRefArray(taHoldingsPer)
				acct := m.LoadRef(m.LoadRoot(0), i)
				m.StoreRef(acct, taHoldings, h)
				for j := 0; j < taHoldingsPer; j++ {
					hh := m.Alloc(holding)
					m.StoreRef(hh, thQuote, m.LoadRef(m.LoadRoot(1), (i+j)%quotes))
					m.StoreField(hh, thAmount, uint64(j+1))
					acct = m.LoadRef(m.LoadRoot(0), i)
					m.StoreRef(m.LoadRef(acct, taHoldings), j, hh)
				}
				// Short-lived profile churn during setup, like EJB init.
				m.AllocWordArray(31)
			}

			// Trading activity concentrates on a stable subset of active
			// accounts (sessions), with a uniform background — mild,
			// exploitable locality, dominated by the short-lived churn.
			hotAccounts := make([]int, accounts/8+1)
			hotRng := rand.New(rand.NewSource(cfg.Seed + 3))
			for i := range hotAccounts {
				hotAccounts[i] = hotRng.Intn(accounts)
			}

			iteration := func(rng *rand.Rand) uint64 {
				var check uint64
				for op := 0; op < ops; op++ {
					var ai int
					if rng.Intn(100) < 80 {
						ai = hotAccounts[rng.Intn(len(hotAccounts))]
					} else {
						ai = rng.Intn(accounts)
					}
					qi := rng.Intn(quotes)
					// Short-lived DTO marshalling buffers and the order.
					// All allocation happens before any reference is
					// loaded: allocation safepoints invalidate held refs.
					m.AllocWordArray(15) // request DTO
					m.AllocWordArray(23) // response DTO
					o := m.Alloc(order)
					acct := m.LoadRef(m.LoadRoot(0), ai)
					q := m.LoadRef(m.LoadRoot(1), qi)
					price := m.LoadField(q, tqPrice)
					m.StoreRef(o, toAccount, acct)
					m.StoreRef(o, toQuote, q)
					m.StoreField(o, toQty, uint64(op%7+1))
					// Process: read holdings, update balance.
					hold := m.LoadRef(acct, taHoldings)
					sum := uint64(0)
					for j := 0; j < taHoldingsPer; j++ {
						hh := m.LoadRef(hold, j)
						sum += m.LoadField(hh, thAmount) * price
					}
					bal := m.LoadField(acct, taBalance)
					m.StoreField(acct, taBalance, bal+sum%97-48)
					check += sum
					// Request business logic (servlet/EJB/JDBC layers).
					m.Work(1000)
					if op%16 == 0 {
						// Occasionally roll a holding over (old one dies).
						hh := m.Alloc(holding)
						m.StoreRef(hh, thQuote, m.LoadRef(m.LoadRoot(1), qi))
						m.StoreField(hh, thAmount, uint64(op%5+1))
						acct = m.LoadRef(m.LoadRoot(0), ai)
						m.StoreRef(m.LoadRef(acct, taHoldings), op%taHoldingsPer, hh)
					}
					if op%1024 == 0 {
						m.Safepoint()
					}
				}
				return check
			}

			// Every iteration replays the same request sequence, as
			// DaCapo iterations rerun the same requests.
			var check uint64
			for it := 0; it < taWarmupIters; it++ {
				check += iteration(rand.New(rand.NewSource(cfg.Seed + 1000)))
				e.sampleHeap()
			}
			e.markMeasured()
			for it := 0; it < taMeasuredIters; it++ {
				check += iteration(rand.New(rand.NewSource(cfg.Seed + 1000)))
				e.sampleHeap()
			}
			return e.finish(check)
		}),
	}
}

package workloads

import (
	"runtime"
	"testing"
	"time"

	"hcsgc"
	"hcsgc/internal/overload"
)

// kvOverloadCfg is the protected tiny KV configuration the overload tests
// share: small scale, overload plane armed with the default policy.
func kvOverloadCfg(seed int64) (RunConfig, *overload.Stats) {
	ost := overload.NewStats()
	return RunConfig{
		Seed:          seed,
		Scale:         0.02,
		Overload:      &overload.Policy{},
		OverloadStats: ost,
	}, ost
}

// TestKVForcedShedTouchesNoHeap is the zero-allocations-after-decision
// regression test: with the injector forcing every admission decision to
// reject, the serving window performs zero heap allocations — shedding
// happens before the request touches the heap, on every attempt including
// retries and read-through fills. The control run proves the measurement
// has teeth.
func TestKVForcedShedTouchesNoHeap(t *testing.T) {
	w, err := Get("kv")
	if err != nil {
		t.Fatal(err)
	}

	cfg, ost := kvOverloadCfg(42)
	cfg.FaultInjector = hcsgc.NewFaultInjector(hcsgc.FaultConfig{Seed: 42, ForceShed: 1})
	if _, err := w.Run(cfg); err != nil {
		t.Fatal(err)
	}
	rep := ost.Report(0)
	if rep.ForcedSheds == 0 {
		t.Fatal("injector never forced a shed")
	}
	if rep.Successes != 0 {
		t.Fatalf("%d requests succeeded under ForceShed=1", rep.Successes)
	}
	if got := ost.ServeAllocBytes(); got != 0 {
		t.Fatalf("shed serving window allocated %d bytes, want 0", got)
	}

	// Control: the identical run without forced sheds must show the
	// serving window allocating (SETs, fills) — the counter is live.
	ctl, ostCtl := kvOverloadCfg(42)
	if _, err := w.Run(ctl); err != nil {
		t.Fatal(err)
	}
	if ostCtl.ServeAllocBytes() == 0 {
		t.Fatal("control run recorded zero serving allocations; the measurement is dead")
	}
}

// TestKVForcedDeadlineFailsFast: with every armed allocation budget forced
// to report expiry, allocating ops (SETs, fills) fail fast with zero heap
// work while allocation-free ops still serve. The serving window again
// allocates nothing: expiry fires pre-flight, before the first heap touch.
func TestKVForcedDeadlineFailsFast(t *testing.T) {
	w, err := Get("kv")
	if err != nil {
		t.Fatal(err)
	}
	cfg, ost := kvOverloadCfg(42)
	cfg.FaultInjector = hcsgc.NewFaultInjector(hcsgc.FaultConfig{Seed: 42, ForceDeadline: 1})
	if _, err := w.Run(cfg); err != nil {
		t.Fatal(err)
	}
	rep := ost.Report(0)
	if rep.DeadlineExceeded == 0 {
		t.Fatal("injector never forced a deadline expiry")
	}
	if rep.Successes == 0 {
		t.Fatal("allocation-free ops must still serve under forced expiry")
	}
	if rep.Failures == 0 {
		t.Fatal("allocating ops must fail under forced expiry")
	}
	if got := ost.ServeAllocBytes(); got != 0 {
		t.Fatalf("forced-expiry serving window allocated %d bytes, want 0", got)
	}
}

// TestKVTinyHeapDegradesGracefully squeezes the protected KV workload into
// a heap a fraction of its default: the run must complete without a panic
// or abort, degrade via shedding / fast-fail instead, and leave no
// goroutines behind.
func TestKVTinyHeapDegradesGracefully(t *testing.T) {
	before := runtime.NumGoroutine()

	w, err := Get("kv")
	if err != nil {
		t.Fatal(err)
	}
	cfg, ost := kvOverloadCfg(7)
	cfg.HeapMaxBytes = 2 << 20 // ~1/9 of the workload's default heap
	cfg.LoadFactor = 4
	res, err := w.Run(cfg)
	if err != nil {
		t.Fatalf("tiny-heap run aborted instead of degrading: %v", err)
	}
	rep := ost.Report(0)
	degraded := rep.ShedPoint + rep.ShedBulk + rep.DeadlineExceeded + rep.OOMFailures
	if degraded == 0 {
		t.Fatal("tiny heap produced no sheds, expiries, or OOM failures — not actually under pressure")
	}
	if rep.Successes == 0 {
		t.Fatal("brownout must keep serving some requests, not zero out")
	}
	if res.ExecSeconds <= 0 {
		t.Fatal("non-positive execution time")
	}

	// No goroutine leak: the driver, workers, and server threads all wind
	// down (retry briefly; goroutine exits are asynchronous).
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestKVProtectedChecksumUnaffectedWhenCalm: at tiny scale with no load
// multiplier the heap never reaches pressure, the controller stays in
// Normal, and the protected run must produce the identical checksum to
// the unprotected one — protection must be invisible until it is needed.
func TestKVProtectedChecksumUnaffectedWhenCalm(t *testing.T) {
	w, err := Get("kv")
	if err != nil {
		t.Fatal(err)
	}
	plain := mustRun(t, w, tinyCfg(hcsgc.Knobs{}, 42))
	cfg, ost := kvOverloadCfg(42)
	cfg.Scale = 0.01
	prot := mustRun(t, w, cfg)
	rep := ost.Report(0)
	if rep.ShedPoint+rep.ShedBulk+rep.DeadlineExceeded != 0 {
		t.Skipf("calm run saw pressure (%d sheds, %d expiries); checksum comparison void",
			rep.ShedPoint+rep.ShedBulk, rep.DeadlineExceeded)
	}
	if plain.Check != prot.Check {
		t.Fatalf("calm protected run changed the checksum: %d vs %d", prot.Check, plain.Check)
	}
}

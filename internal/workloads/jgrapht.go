package workloads

import (
	"fmt"

	"hcsgc/internal/graphalg"
	"hcsgc/internal/graphgen"
)

// The JGraphT benchmarks of §4.5: load a LAW-substitute graph (nodes
// inserted — and hence allocated — in id order), then run an algorithm
// whose traversal order differs from allocation order. GC cycles during
// the run give HCSGC the opportunity to reorganise nodes into traversal
// order.
//
// The paper uses BiconnectivityInspector for CC and
// BronKerboschCliqueFinder for MC, on the Table 3 inputs. Default scales
// keep a 19-config sweep tractable; Scale = 1 reproduces Table 3 sizes.
const (
	jgraphtCCScale = 0.25
	// MC scaling preserves edge density (see graphgen.ScaledDensity):
	// proportional scaling would make the small graph relatively denser
	// and explode the number of maximal cliques.
	jgraphtMCScale = 0.25
	// ccPasses repeats the inspector pass; JGraphT's inspector caches are
	// queried repeatedly by the driver, and repeated stable traversals are
	// the access pattern HCSGC rewards (§4.8).
	ccPasses = 10
	mcRounds = 3
)

func jgraphtPreset(dataset string, mc bool) (graphgen.Preset, error) {
	switch {
	case dataset == "uk" && !mc:
		return graphgen.UKCC, nil
	case dataset == "uk" && mc:
		return graphgen.UKMC, nil
	case dataset == "enwiki" && !mc:
		return graphgen.EnwikiCC, nil
	case dataset == "enwiki" && mc:
		return graphgen.EnwikiMC, nil
	}
	return graphgen.Preset{}, fmt.Errorf("workloads: unknown dataset %q", dataset)
}

// JGraphTCC is the connected/biconnected components benchmark
// (Fig. 7: uk, Fig. 8: enwiki).
func JGraphTCC(dataset string) Workload {
	return Workload{
		Name: fmt.Sprintf("JGraphT CC %s", dataset),
		Run: guard(func(cfg RunConfig) Result {
			preset, err := jgraphtPreset(dataset, false)
			if err != nil {
				panic(err)
			}
			params := preset.Scaled(cfg.scale(jgraphtCCScale))
			params.Seed += cfg.Seed // per-run graph variation
			g := graphgen.MustGenerate(params)
			e := newEnv(cfg, graphHeapBytes(g), 2)
			defer e.cleanup()
			gt := graphalg.RegisterTypes(e.rt.Types)
			hg := graphalg.Load(e.m, gt, g, 0)
			// The paper's driver loads the COMPLETE LAW dataset before
			// inserting the used part into JGraphT; that load phase
			// allocates heavily and produces the few early GC cycles the
			// paper reports ("most of them occur within the first 5
			// seconds"). Simulate it with transient allocation until a
			// couple of cycles have run.
			loadPhaseGarbage(e, 2)
			e.sampleHeap()
			e.markMeasured()
			var check uint64
			for pass := 0; pass < ccPasses; pass++ {
				res := hg.Biconnectivity(e.m)
				check += uint64(res.ConnectedComponents)*1_000_000 +
					uint64(res.BiconnectedComponents)*1000 +
					uint64(res.ArticulationPoints)
				e.sampleHeap()
			}
			return e.finish(check)
		}),
	}
}

// JGraphTMC is the Bron–Kerbosch maximal clique benchmark
// (Fig. 9: uk, Fig. 10: enwiki).
func JGraphTMC(dataset string) Workload {
	return Workload{
		Name: fmt.Sprintf("JGraphT MC %s", dataset),
		Run: guard(func(cfg RunConfig) Result {
			preset, err := jgraphtPreset(dataset, true)
			if err != nil {
				panic(err)
			}
			params := preset.ScaledDensity(cfg.scale(jgraphtMCScale))
			params.Seed += cfg.Seed
			g := graphgen.MustGenerate(params)
			e := newEnv(cfg, graphHeapBytes(g), 2)
			defer e.cleanup()
			gt := graphalg.RegisterTypes(e.rt.Types)
			hg := graphalg.Load(e.m, gt, g, 0)
			hg.AllocSetGarbage = true // JGraphT's per-call set copies
			loadPhaseGarbage(e, 1)
			e.sampleHeap()
			e.markMeasured()
			var check uint64
			for round := 0; round < mcRounds; round++ {
				res := hg.BronKerbosch(e.m, 0)
				check += uint64(res.MaximalCliques)*1_000_000 +
					uint64(res.TotalSize)
				e.sampleHeap()
			}
			return e.finish(check)
		}),
	}
}

// graphHeapBytes sizes the heap for a graph: nodes (48B + array slots),
// edge objects (24B each) and adjacency arrays (two slots per edge), with
// headroom, echoing the paper's per-input heap sizes in Table 3.
func graphHeapBytes(g *graphgen.Graph) uint64 {
	bytes := uint64(g.Nodes())*80 + uint64(g.EdgeCount)*48
	heapBytes := bytes * 3
	// Floor well above one medium page (32MB): loading allocates a
	// medium-class temporary edge array. (The paper gives these inputs
	// 600MB-4GB heaps, Table 3.)
	if heapBytes < 64<<20 {
		heapBytes = 64 << 20
	}
	return heapBytes
}

// loadPhaseGarbage allocates transient arrays until at least minCycles GC
// cycles have completed (bounded), standing in for the dataset-loading
// allocation of the paper's driver.
func loadPhaseGarbage(e *env, minCycles uint64) {
	const chunkWords = 511 // 4KB
	maxBytes := e.rt.Heap.MaxBytes() * 8
	var allocated uint64
	for e.rt.Collector.Cycles() < minCycles && allocated < maxBytes {
		e.m.AllocWordArray(chunkWords)
		allocated += (chunkWords + 1) * 8
	}
}

package workloads

import (
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"hcsgc"
	"hcsgc/internal/faultinject"
	"hcsgc/internal/kvstore"
)

// tinyCfg returns a fast functional-test configuration.
func tinyCfg(knobs hcsgc.Knobs, seed int64) RunConfig {
	return RunConfig{
		Knobs: knobs,
		Seed:  seed,
		Scale: 0.01,
	}
}

// mustRun fails the test on a workload error (heap exhaustion).
func mustRun(t *testing.T, w Workload, cfg RunConfig) Result {
	t.Helper()
	res, err := w.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return res
}

func TestAllWorkloadsRegistered(t *testing.T) {
	all := All()
	for _, id := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "kv"} {
		w, ok := all[id]
		if !ok {
			t.Errorf("missing workload %s", id)
			continue
		}
		if w.Name == "" || w.Run == nil {
			t.Errorf("workload %s incomplete", id)
		}
	}
	if _, err := Get("fig4"); err != nil {
		t.Error(err)
	}
	if _, err := Get("nonesuch"); err == nil {
		t.Error("unknown id must error")
	}
}

// runBoth runs a workload under baseline and an aggressive HCSGC config
// with the same seed, checking the results are sane and checksums match
// (GC configuration must never change program results).
func runBoth(t *testing.T, id string) (base, hcs Result) {
	t.Helper()
	w, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	base = mustRun(t, w, tinyCfg(hcsgc.Knobs{}, 42))
	hcs = mustRun(t, w, tinyCfg(hcsgc.Knobs{
		Hotness: true, ColdPage: true, ColdConfidence: 1.0, LazyRelocate: true,
	}, 42))
	if base.Check != hcs.Check {
		t.Fatalf("%s: checksum differs across configs: %d vs %d", id, base.Check, hcs.Check)
	}
	if base.ExecSeconds <= 0 || hcs.ExecSeconds <= 0 {
		t.Fatalf("%s: non-positive execution time", id)
	}
	if base.Loads == 0 {
		t.Fatalf("%s: no loads recorded", id)
	}
	return base, hcs
}

func TestSyntheticSinglePhase(t *testing.T) { runBoth(t, "fig4") }
func TestSyntheticMultiPhase(t *testing.T)  { runBoth(t, "fig5") }

func TestSyntheticOverloaded(t *testing.T) {
	base, _ := runBoth(t, "fig6")
	// Fig. 6 runs on the single-core model by default.
	if base.GCCycleCount == 0 {
		t.Log("no GC cycles at tiny scale (acceptable)")
	}
}

func TestJGraphTCCUK(t *testing.T)     { runBoth(t, "fig7") }
func TestJGraphTCCEnwiki(t *testing.T) { runBoth(t, "fig8") }
func TestJGraphTMCUK(t *testing.T)     { runBoth(t, "fig9") }
func TestJGraphTMCEnwiki(t *testing.T) { runBoth(t, "fig10") }
func TestTradebeans(t *testing.T)      { runBoth(t, "fig11") }
func TestH2(t *testing.T)              { runBoth(t, "fig12") }

func TestSPECjbbScores(t *testing.T) {
	w, _ := Get("fig13")
	res := mustRun(t, w, tinyCfg(hcsgc.Knobs{}, 42))
	if res.Scores["max-jOPS"] <= 0 {
		t.Fatalf("max-jOPS = %v", res.Scores["max-jOPS"])
	}
	if res.Scores["critical-jOPS"] < 0 || res.Scores["critical-jOPS"] > res.Scores["max-jOPS"] {
		t.Fatalf("critical-jOPS = %v implausible vs max %v",
			res.Scores["critical-jOPS"], res.Scores["max-jOPS"])
	}
	if len(res.HeapSamples) == 0 {
		t.Fatal("heap samples missing")
	}
}

func TestKVServerChecksumAcrossConfigs(t *testing.T) { runBoth(t, "kv") }

func TestKVServerMetricsAndScores(t *testing.T) {
	w, _ := Get("kv")
	mx := kvstore.NewMetrics()
	cfg := tinyCfg(hcsgc.Knobs{}, 42)
	cfg.KV = mx
	res := mustRun(t, w, cfg)

	for _, key := range []string{"kv-p99-steady", "kv-p999-steady", "kv-p999-burst", "kv-hit-rate"} {
		if _, ok := res.Scores[key]; !ok {
			t.Errorf("Scores missing %q", key)
		}
	}
	if res.Scores["kv-p99-steady"] <= 0 {
		t.Fatalf("kv-p99-steady = %v, want > 0", res.Scores["kv-p99-steady"])
	}
	if hr := res.Scores["kv-hit-rate"]; hr <= 0 || hr > 1 {
		t.Fatalf("kv-hit-rate = %v out of (0,1]", hr)
	}
	if len(res.HeapSamples) == 0 {
		t.Fatal("heap samples missing")
	}

	rep := mx.Report(nil)
	if err := rep.Validate(); err != nil {
		t.Fatalf("accumulated report invalid: %v", err)
	}
	var total uint64
	for _, p := range rep.Phases {
		if p.Dist.Count == 0 {
			t.Errorf("phase %q recorded no requests", p.Phase)
		}
		total += p.Dist.Count
	}
	if got := rep.Ops["get"] + rep.Ops["set"] + rep.Ops["delete"] + rep.Ops["scan"]; got != total {
		t.Fatalf("op counts sum to %d, phase counts to %d", got, total)
	}
	if rep.SessionsRetired == 0 {
		t.Fatal("session churn produced no retirements")
	}
}

func TestSyntheticTriggersGC(t *testing.T) {
	// At moderate scale, the garbage allocation must trigger GC cycles.
	w, _ := Get("fig4")
	res := mustRun(t, w, RunConfig{Knobs: hcsgc.Knobs{}, Seed: 1, Scale: 0.03})
	if res.GCCycleCount == 0 {
		t.Fatal("synthetic benchmark must trigger GC cycles")
	}
	if len(res.HeapSamples) == 0 {
		t.Fatal("heap samples missing")
	}
}

func TestJGraphTLoadPhaseTriggersGC(t *testing.T) {
	w, _ := Get("fig7")
	res := mustRun(t, w, RunConfig{Knobs: hcsgc.Knobs{}, Seed: 1, Scale: 0.05})
	if res.GCCycleCount < 2 {
		t.Fatalf("CC load phase should produce >=2 early GC cycles, got %d", res.GCCycleCount)
	}
}

func TestMutatorRelocationHappensUnderLazy(t *testing.T) {
	w, _ := Get("fig4")
	res := mustRun(t, w, RunConfig{
		Knobs: hcsgc.Knobs{RelocateAllSmallPages: true, LazyRelocate: true},
		Seed:  1, Scale: 0.03,
	})
	if res.MutatorReloc == 0 {
		t.Fatal("lazy+all configuration must produce mutator relocations")
	}
}

// TestFig4ChecksumMutatorInvariant: partitioning the shared-array outer
// iterations across mutators reorders execution but must not change
// program results — the per-iteration rng reseed makes the checksum (and
// the operation count) a pure function of the seed.
func TestFig4ChecksumMutatorInvariant(t *testing.T) {
	w, _ := Get("fig4")
	base := mustRun(t, w, RunConfig{Knobs: hcsgc.Knobs{}, Seed: 11, Scale: 0.02})
	for _, n := range []int{2, 4, 8} {
		res := mustRun(t, w, RunConfig{Knobs: hcsgc.Knobs{}, Seed: 11, Scale: 0.02, Mutators: n})
		if res.Check != base.Check {
			t.Errorf("x%d checksum %d != serial %d", n, res.Check, base.Check)
		}
		if res.Ops != base.Ops {
			t.Errorf("x%d ops %d != serial %d", n, res.Ops, base.Ops)
		}
	}
}

// TestWorkerBalanceUnderInjectedDelay: with multiple GC workers, a
// relocating configuration, and the injector delaying relocation
// inserts, the contention plane must still attribute per-worker totals
// and a finite imbalance coefficient. Structural assertions only — the
// injected yields skew the split, they do not make it predictable.
func TestWorkerBalanceUnderInjectedDelay(t *testing.T) {
	ctn := hcsgc.NewContentionPlane()
	fcfg := hcsgc.FaultConfig{Seed: 3}
	fcfg.Delay[faultinject.RelocInsert] = 0.8
	res := mustRun(t, mustGet(t, "fig4"), RunConfig{
		Knobs:         hcsgc.Knobs{RelocateAllSmallPages: true},
		Seed:          1,
		Scale:         0.03,
		Mutators:      4,
		GCWorkers:     2,
		Contention:    ctn,
		FaultInjector: hcsgc.NewFaultInjector(fcfg),
	})
	if res.GCCycleCount == 0 {
		t.Fatal("no GC cycles: the balance plane never sampled")
	}
	snap := ctn.Snapshot()
	if snap.Cycles == 0 {
		t.Fatal("contention plane saw no cycles")
	}
	if len(snap.Workers) != 2 {
		t.Fatalf("worker snapshots = %d, want 2", len(snap.Workers))
	}
	var scanned uint64
	for _, w := range snap.Workers {
		scanned += w.Scanned
	}
	if scanned == 0 {
		t.Error("no objects attributed to any worker")
	}
	if math.IsNaN(snap.Imbalance) || snap.Imbalance < 0 {
		t.Errorf("imbalance = %g, want finite >= 0", snap.Imbalance)
	}
	if len(snap.Sites) == 0 {
		t.Error("no lock sites instrumented")
	}
}

func mustGet(t *testing.T, id string) Workload {
	t.Helper()
	w, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestDeterministicChecksumAcrossSeeds(t *testing.T) {
	w, _ := Get("fig12")
	a := mustRun(t, w, tinyCfg(hcsgc.Knobs{}, 5))
	b := mustRun(t, w, tinyCfg(hcsgc.Knobs{}, 5))
	if a.Check != b.Check {
		t.Fatal("same seed must give same checksum")
	}
	c := mustRun(t, w, tinyCfg(hcsgc.Knobs{}, 6))
	if a.Check == c.Check {
		t.Fatal("different seeds should give different checksums")
	}
}

// TestWorkloadOOMPropagatesAsError drives a workload into genuine heap
// exhaustion — a heap far below the live set, the driver trigger
// suppressed by the injector, and a tight stall budget — and checks the
// failure surfaces as an error from Run (ErrOutOfMemory in the chain)
// rather than a panic, and that the abandoned run leaks no goroutine.
func TestWorkloadOOMPropagatesAsError(t *testing.T) {
	before := runtime.NumGoroutine()
	w, _ := Get("fig4")
	inj := hcsgc.NewFaultInjector(hcsgc.FaultConfig{SuppressDriver: true})
	_, err := w.Run(RunConfig{
		Knobs:         hcsgc.Knobs{},
		Seed:          1,
		Scale:         0.05,
		HeapMaxBytes:  4 << 20, // far below the fig4 live set
		DisableMem:    true,
		FaultInjector: inj,
		StallRetries:  2,
	})
	if err == nil {
		t.Fatal("fig4 in a 4MB heap with the driver suppressed did not fail")
	}
	if !errors.Is(err, hcsgc.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory in chain", err)
	}
	var oom *hcsgc.OutOfMemoryError
	if !errors.As(err, &oom) {
		t.Fatalf("err %T does not carry *OutOfMemoryError", err)
	}
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after abandoned run", before, runtime.NumGoroutine())
}

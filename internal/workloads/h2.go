package workloads

import (
	"math/rand"

	"hcsgc/internal/heapdb"
)

// H2 models DaCapo's h2: an in-memory SQL database (here the heapdb
// B-tree) populated once, then hit with a TPC-C-like query mix. The rows
// are long-lived and the hot subset is accessed in a stable per-iteration
// order that differs from insertion order — the profile for which the
// paper reports 5–9% HCSGC gains with <2% hotness-tracking overhead
// (§4.6, Fig. 12).
const (
	// h2Rows sizes the table so the live data set far exceeds the 4MB
	// LLC (the paper runs h2 with a 4GB heap): without locality help,
	// row accesses miss.
	h2Rows          = 600_000
	h2OpsPerIter    = 30_000
	h2WarmupIters   = 6
	h2MeasuredIters = 10
	// h2HotKeys sizes the stable hot set (~7% of rows). Each measured
	// iteration replays the same query sequence, so relocation in access
	// order turns the hot rows into a prefetchable stream — the headroom
	// behind the paper's 5-9%.
	h2HotKeys      = 40_000
	h2DefaultScale = 0.35
)

// H2 is the Fig. 12 benchmark.
func H2() Workload {
	return Workload{
		Name: "h2 (Fig. 12)",
		Run: guard(func(cfg RunConfig) Result {
			scale := cfg.scale(h2DefaultScale)
			rows := int(float64(h2Rows) * scale)
			ops := int(float64(h2OpsPerIter) * scale)
			hotKeys := int(float64(h2HotKeys) * scale)
			if rows < 1000 {
				rows = 1000
			}
			if ops < 1000 {
				ops = 1000
			}
			if hotKeys < 50 {
				hotKeys = 50
			}

			// A heap a few times the table size, so query/update churn
			// drives periodic GC cycles as in the real benchmark.
			heapBytes := uint64(float64(96<<20) * scale / h2DefaultScale)
			if heapBytes < 32<<20 {
				heapBytes = 32 << 20
			}
			e := newEnv(cfg, heapBytes, heapdb.RootSlots)
			defer e.cleanup()
			types := heapdb.RegisterTypes(e.rt.Types)
			m := e.m
			db := heapdb.New(m, types, 0)

			// Populate in random key order (bulk load), so that neither
			// key order nor any later access order matches allocation
			// order.
			loadRng := rand.New(rand.NewSource(cfg.Seed))
			perm := loadRng.Perm(rows)
			for _, k := range perm {
				db.Put(m, uint64(k)+1, uint64(k)*3)
			}
			e.sampleHeap()

			// The stable hot key set: a fixed pseudo-random selection.
			hot := make([]uint64, hotKeys)
			hotRng := rand.New(rand.NewSource(cfg.Seed + 7))
			for i := range hot {
				hot[i] = uint64(hotRng.Intn(rows)) + 1
			}

			iteration := func(rng *rand.Rand) uint64 {
				var check uint64
				for op := 0; op < ops; op++ {
					switch r := rng.Intn(100); {
					case r < 60: // hot point select
						k := hot[rng.Intn(len(hot))]
						v, _ := db.Get(m, k)
						check += v
					case r < 75: // hot select with detail join
						k := hot[rng.Intn(len(hot))]
						d, _ := db.GetDetail(m, k)
						check += d
					case r < 85: // cold point select
						v, _ := db.Get(m, uint64(rng.Intn(rows))+1)
						check += v
					case r < 95: // short range scan
						start := uint64(rng.Intn(rows)) + 1
						db.Scan(m, start, 20, func(k, v uint64) { check += v })
					default: // update (old row becomes garbage)
						k := hot[rng.Intn(len(hot))]
						db.Put(m, k, uint64(op))
					}
					// Per-query result-set temporaries, like H2's row
					// buffers.
					m.AllocWordArray(63)
					if op%512 == 0 {
						m.Safepoint()
					}
				}
				return check
			}

			// Every iteration (warm-up and measured) replays the same
			// query sequence, as a DaCapo iteration reruns the same
			// requests: the stable access pattern HCSGC exploits — the
			// layout learned in earlier iterations matches later ones.
			var check uint64
			for it := 0; it < h2WarmupIters; it++ {
				check += iteration(rand.New(rand.NewSource(cfg.Seed + 29)))
				e.sampleHeap()
			}
			e.markMeasured()
			for it := 0; it < h2MeasuredIters; it++ {
				check += iteration(rand.New(rand.NewSource(cfg.Seed + 29)))
				e.sampleHeap()
			}
			return e.finish(check)
		}),
	}
}

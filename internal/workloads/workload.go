// Package workloads implements the paper's benchmark programs (§4.4–4.7)
// against the public hcsgc API: the synthetic microbenchmarks, the JGraphT
// graph computations, DaCapo-like tradebeans and h2 substitutes, and a
// SPECjbb2015-like ramping transaction workload.
//
// Every workload is a deterministic function of its RunConfig seed except
// for goroutine interleaving with the concurrent collector, which supplies
// the run-to-run variance the paper's bootstrap methodology expects.
package workloads

import (
	"errors"
	"fmt"
	"time"

	"hcsgc"
	"hcsgc/internal/kvstore"
	"hcsgc/internal/machine"
	"hcsgc/internal/overload"
	"hcsgc/internal/simmem"
)

// RunConfig parameterises one benchmark run.
type RunConfig struct {
	// Knobs is the HCSGC configuration under test.
	Knobs hcsgc.Knobs
	// Machine is the execution-time model (defaults to the laptop).
	Machine hcsgc.Machine
	// HeapMaxBytes overrides the workload's default heap size.
	HeapMaxBytes uint64
	// Seed drives all workload randomness.
	Seed int64
	// Scale in (0,1] shrinks the workload from paper scale. 0 means the
	// workload's default benchmarking scale.
	Scale float64
	// GCWorkers / TriggerPercent pass through to the collector.
	GCWorkers      int
	TriggerPercent float64
	// EvacThreshold overrides the evacuation live-ratio threshold
	// (0 = the paper's 75%); used by the ablation benches.
	EvacThreshold float64
	// MemConfig overrides the cache hierarchy; used by the ablation
	// benches (e.g. prefetcher off).
	MemConfig *simmem.HierarchyConfig
	// DisableMem turns the cache model off (functional tests only).
	DisableMem bool
	// Telemetry attaches a live observability sink to the run's runtime
	// (nil = disabled). Shared across runs, its metrics accumulate.
	Telemetry *hcsgc.TelemetrySink
	// Locality attaches a sampling locality profiler to the run's
	// runtime (nil = disabled). The caller keeps the handle and reads
	// the report after the run.
	Locality *hcsgc.LocalityProfiler
	// Latency overrides the run's latency tracker (nil = the runtime
	// builds a default one; the plane is always-on). The caller keeps
	// the handle and reads the report after the run.
	Latency *hcsgc.LatencyTracker
	// DisableLatency turns the latency-attribution plane off for the
	// run (overhead baselines).
	DisableLatency bool
	// Signals overrides the run's unified signal plane (nil = the
	// runtime builds a default one; the plane is always-on). The caller
	// keeps the handle and reads the snapshot after the run.
	Signals *hcsgc.SignalPlane
	// DisableSignals turns the signal plane off for the run (overhead
	// baselines).
	DisableSignals bool
	// Contention overrides the run's contention attribution plane (nil =
	// the runtime builds a default one; the plane is always-on). The
	// caller keeps the handle and reads the snapshot after the run.
	Contention *hcsgc.ContentionPlane
	// DisableContention turns the contention plane off for the run
	// (overhead baselines).
	DisableContention bool
	// Mutators sets the number of mutator threads for workloads that
	// scale across them (the fig4 synthetic and the KV server; 0 = the
	// workload's default). Other workloads ignore it. The scaling sweep
	// drives this.
	Mutators int
	// Tail attaches request-level tail attribution to the KV serving
	// path (nil = disabled). Shared across runs, it merges their
	// violation classifications.
	Tail *hcsgc.TailAttributor
	// FaultInjector arms the run's fault-injection plane (nil =
	// disarmed). Used by the chaos soak.
	FaultInjector *hcsgc.FaultInjector
	// Verifier attaches the STW heap verifier to the run's runtime
	// (nil = detached). The caller keeps the handle and inspects the
	// violations after the run.
	Verifier *hcsgc.HeapVerifier
	// KV is the serving-metrics accumulator for the KV server workload
	// (nil = per-run metrics are discarded after Scores are derived).
	// Shared across runs, it merges their request distributions.
	KV *kvstore.Metrics
	// Overload arms the overload-protection plane on the KV serving path
	// (nil = unprotected: no admission control, no per-request deadlines,
	// no client retries — heap exhaustion still degrades to per-request
	// failures). The policy's DeadlineCycles propagates into the load
	// generator's schedule.
	Overload *overload.Policy
	// OverloadStats accumulates the overload plane's outcome accounting
	// (nil = per-run stats are discarded after Scores are derived).
	// Shared across runs, it merges their counters and distributions.
	OverloadStats *overload.Stats
	// LoadFactor multiplies the KV arrival rate (the mean interarrival
	// gap divides by it; 0 or 1 = the workload's sustainable default).
	// The overload bench sets >= 2 to push past the sustainable point.
	LoadFactor float64
	// StallRetries / StallBackoff / StallDeadline bound the
	// allocation-stall loop (see hcsgc.Options).
	StallRetries  int
	StallBackoff  time.Duration
	StallDeadline time.Duration
}

func (c RunConfig) scale(def float64) float64 {
	if c.Scale > 0 {
		return c.Scale
	}
	return def
}

// HeapSample is one point of the heap-usage-over-time series (the
// rightmost plot of every figure).
type HeapSample struct {
	Seconds float64
	UsedPct float64
}

// Result is the measurement of one run, covering the three aspects of
// §4.2: execution time, cache statistics, GC statistics.
type Result struct {
	// ExecSeconds is the simulated wall-clock execution time of the
	// measured portion.
	ExecSeconds float64
	// Loads / L1Misses / LLCMisses are whole-process cache counters for
	// the complete run (as perf reports them).
	Loads, L1Misses, LLCMisses uint64
	// GCCycleCount is the number of GC cycles.
	GCCycleCount int
	// MedianECSmall is the median number of small pages selected for
	// evacuation per cycle.
	MedianECSmall float64
	// MutatorReloc / GCReloc count objects relocated by each party.
	MutatorReloc, GCReloc uint64
	// HeapSamples traces heap occupancy over time.
	HeapSamples []HeapSample
	// Ops counts the workload's completed operations in the measured
	// portion (array accesses for the synthetics, requests for the KV
	// server; 0 when a workload does not report it). Throughput for the
	// scaling sweep is Ops / ExecSeconds.
	Ops uint64
	// Scores holds workload-specific metrics (SPECjbb throughput/latency).
	Scores map[string]float64
	// Check is a workload-defined checksum; identical across
	// configurations for the same seed, or the run is wrong.
	Check uint64
}

// Workload is one runnable benchmark. Run returns an error instead of a
// Result when the heap is exhausted (ErrOutOfMemory in the chain): the
// run is abandoned but the process — and the remaining runs of a sweep —
// survive.
type Workload struct {
	Name string
	Run  func(RunConfig) (Result, error)
}

// guard adapts a workload body to the error-returning Run contract: the
// allocation fast paths panic with a structured *hcsgc.OutOfMemoryError
// when the stall budget is exhausted, and guard converts exactly that
// panic into an error return. Any other panic is a real bug and
// propagates. The body must defer env.cleanup() so the runtime's driver
// is stopped on the abandoned path too.
func guard(body func(RunConfig) Result) func(RunConfig) (Result, error) {
	return func(cfg RunConfig) (res Result, err error) {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			e, ok := r.(error)
			if !ok || !errors.Is(e, hcsgc.ErrOutOfMemory) {
				panic(r)
			}
			res, err = Result{}, fmt.Errorf("workload run abandoned: %w", e)
		}()
		return body(cfg), nil
	}
}

// env bundles the runtime plumbing each workload sets up.
type env struct {
	rt  *hcsgc.Runtime
	m   *hcsgc.Mutator
	cfg RunConfig

	samples   []HeapSample
	execStart float64
	done      bool
}

// newEnv builds a runtime + main mutator for a workload.
func newEnv(cfg RunConfig, heapDefault uint64, rootSlots int) *env {
	heapBytes := cfg.HeapMaxBytes
	if heapBytes == 0 {
		heapBytes = heapDefault
	}
	mach := cfg.Machine
	if mach.Cores == 0 {
		mach = machine.Laptop()
	}
	rt := hcsgc.MustNewRuntime(hcsgc.Options{
		HeapMaxBytes:      heapBytes,
		Knobs:             cfg.Knobs,
		GCWorkers:         cfg.GCWorkers,
		TriggerPercent:    cfg.TriggerPercent,
		EvacThreshold:     cfg.EvacThreshold,
		Machine:           mach,
		MemConfig:         cfg.MemConfig,
		DisableMemModel:   cfg.DisableMem,
		StartDriver:       true,
		Telemetry:         cfg.Telemetry,
		Locality:          cfg.Locality,
		Latency:           cfg.Latency,
		DisableLatency:    cfg.DisableLatency,
		Signals:           cfg.Signals,
		DisableSignals:    cfg.DisableSignals,
		Contention:        cfg.Contention,
		DisableContention: cfg.DisableContention,
		FaultInjector:     cfg.FaultInjector,
		Verifier:          cfg.Verifier,
		StallRetries:      cfg.StallRetries,
		StallBackoff:      cfg.StallBackoff,
		StallDeadline:     cfg.StallDeadline,
	})
	return &env{rt: rt, m: rt.NewMutator(rootSlots), cfg: cfg}
}

// cleanup winds the runtime down exactly once: it runs both on the normal
// finish path and — via the workload body's defer — when an out-of-memory
// panic abandons the run, so no driver or worker goroutine outlives a
// failed run.
func (e *env) cleanup() {
	if e.done {
		return
	}
	e.done = true
	e.m.Close()
	e.rt.Close()
}

// markMeasured starts the measured portion (after warm-up).
func (e *env) markMeasured() {
	e.execStart = e.rt.ExecSeconds()
}

// sampleHeap appends a heap-usage observation.
func (e *env) sampleHeap() {
	e.samples = append(e.samples, HeapSample{
		Seconds: e.rt.ExecSeconds(),
		UsedPct: e.rt.Heap.UsedPercent(),
	})
}

// finish closes the runtime and assembles the Result.
func (e *env) finish(check uint64) Result {
	e.cleanup()
	ms := e.rt.MemStats()
	st := e.rt.Collector.Stats()
	return Result{
		ExecSeconds:   e.rt.ExecSeconds() - e.execStart,
		Loads:         ms.Loads,
		L1Misses:      ms.L1Misses,
		LLCMisses:     ms.LLCMisses,
		GCCycleCount:  len(st.Cycles),
		MedianECSmall: st.MedianECSmall(),
		MutatorReloc:  st.MutatorRelocObjects,
		GCReloc:       st.GCRelocObjects,
		HeapSamples:   e.samples,
		Check:         check,
	}
}

// All returns every workload keyed by the experiment it reproduces.
func All() map[string]Workload {
	return map[string]Workload{
		"fig4":  SyntheticSinglePhase(),
		"fig5":  SyntheticMultiPhase(),
		"fig6":  SyntheticOverloaded(),
		"fig7":  JGraphTCC("uk"),
		"fig8":  JGraphTCC("enwiki"),
		"fig9":  JGraphTMC("uk"),
		"fig10": JGraphTMC("enwiki"),
		"fig11": Tradebeans(),
		"fig12": H2(),
		"fig13": SPECjbb(),
		"kv":    KVServer(),
	}
}

// Get looks up a workload by experiment id.
func Get(id string) (Workload, error) {
	w, ok := All()[id]
	if !ok {
		return Workload{}, fmt.Errorf("workloads: unknown experiment %q", id)
	}
	return w, nil
}

package workloads

import (
	"math/rand"
	"sort"

	"hcsgc/internal/machine"
)

// SPECjbb models SPECjbb2015 composite mode (§4.7, Fig. 13): a backend
// processing transactions while the injection rate ramps up each epoch.
// Reported scores mirror max-jOPS (throughput: the highest injection rate
// the backend sustains) and critical-jOPS (latency: the highest rate whose
// p99 transaction latency stays within the SLA). Nearly all transaction
// objects die within the transaction (the paper measures ~1% survival),
// which is why HCSGC shows no significant effect here.
const (
	sjProducts      = 30_000
	sjEpochs        = 12
	sjBaseTxns      = 4_000 // transactions in the first epoch
	sjDefaultScale  = 0.35
	sjLatencySLAMul = 4 // p99 SLA = multiplier on the unloaded median
)

// Product fields (long-lived catalog).
const (
	spPrice  = 0
	spStock  = 1
	spFields = 2
)

// SPECjbb is the Fig. 13 benchmark.
func SPECjbb() Workload {
	return Workload{
		Name: "SPECjbb2015-like (Fig. 13)",
		Run: guard(func(cfg RunConfig) Result {
			scale := cfg.scale(sjDefaultScale)
			products := int(float64(sjProducts) * scale)
			baseTxns := int(float64(sjBaseTxns) * scale)
			if products < 500 {
				products = 500
			}
			if baseTxns < 200 {
				baseTxns = 200
			}
			if cfg.Machine.Cores == 0 {
				cfg.Machine = machine.Server()
			}

			// Sized so the ramping allocation rate drives GC cycles whose
			// post-cycle occupancy grows with the rate (Fig. 13 rightmost).
			e := newEnv(cfg, 32<<20, 2)
			defer e.cleanup()
			product := e.rt.Types.Register("sj.product", spFields, nil)
			order := e.rt.Types.Register("sj.order", 4, []int{0})
			m := e.m

			// Long-lived product catalog.
			parr := m.AllocRefArray(products)
			m.SetRoot(0, parr)
			for i := 0; i < products; i++ {
				p := m.Alloc(product)
				m.StoreField(p, spPrice, uint64(10+i%90))
				m.StoreRef(m.LoadRoot(0), i, p)
			}

			// One transaction: build a short-lived order of a few line
			// items, read the catalog, compute, drop everything.
			rng := rand.New(rand.NewSource(cfg.Seed))
			var check uint64
			// Root slot 1 pins the line-item array across the allocations
			// inside a transaction (refs must not be held across the
			// safepoints hidden in Alloc).
			txn := func() uint64 {
				start := m.Cycles()
				items := 3 + rng.Intn(4)
				lines := m.AllocRefArray(items)
				m.SetRoot(1, lines)
				total := uint64(0)
				for it := 0; it < items; it++ {
					line := m.Alloc(order) // line item, short-lived
					pi := rng.Intn(products)
					p := m.LoadRef(m.LoadRoot(0), pi)
					total += m.LoadField(p, spPrice)
					m.StoreField(line, 1, total)
					m.StoreRef(m.LoadRoot(1), it, line)
				}
				o := m.Alloc(order)
				m.StoreRef(o, 0, m.LoadRoot(1))
				m.AllocWordArray(127) // marshalling buffer
				m.SetRoot(1, 0)       // drop the pin; the txn graph dies here
				m.Work(200)           // backend compute
				check += total
				return m.Cycles() - start
			}

			// Unloaded latency baseline for the SLA.
			lat := make([]float64, 0, 4096)
			for i := 0; i < 200; i++ {
				lat = append(lat, float64(txn()))
			}
			slaMedian := median(lat)
			sla := slaMedian * sjLatencySLAMul

			e.markMeasured()
			cps := cfg.Machine.CyclesPerSecond
			if cps == 0 {
				cps = 3.0e9
			}
			maxJOPS, critJOPS := 0.0, 0.0
			// The injection rate ramps linearly: each epoch processes more
			// transactions, driving allocation rate (and heap usage after
			// GC) up, as the paper describes for Fig. 13.
			for epoch := 1; epoch <= sjEpochs; epoch++ {
				txns := baseTxns * epoch / 2
				if txns < 100 {
					txns = 100
				}
				lat = lat[:0]
				startCycles := m.Cycles()
				for i := 0; i < txns; i++ {
					lat = append(lat, float64(txn()))
					if i%256 == 0 {
						m.Safepoint()
					}
				}
				elapsed := float64(m.Cycles()-startCycles) / cps
				throughput := float64(txns) / elapsed // txns per simulated second
				if throughput > maxJOPS {
					maxJOPS = throughput
				}
				if p99(lat) <= sla {
					critJOPS = throughput
				}
				e.sampleHeap()
			}
			res := e.finish(check)
			res.Scores = map[string]float64{
				"max-jOPS":      maxJOPS,
				"critical-jOPS": critJOPS,
			}
			return res
		}),
	}
}

func median(xs []float64) float64 {
	return quantileCopy(xs, 0.5)
}

func p99(xs []float64) float64 {
	return quantileCopy(xs, 0.99)
}

// quantileCopy computes a quantile without mutating xs.
func quantileCopy(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

// Package graphalg implements the two JGraphT computations the paper
// benchmarks (§4.5) — Bron–Kerbosch maximal clique enumeration [21] and
// Hopcroft–Tarjan biconnectivity / connected components [12] — over graphs
// materialised as objects on the managed heap. Every node and adjacency
// array is a heap object accessed through the load barrier, so the
// traversal order of these algorithms (which differs from the generation/
// allocation order) is exactly the access pattern HCSGC reorganises for.
package graphalg

import (
	"hcsgc/internal/core"
	"hcsgc/internal/graphgen"
	"hcsgc/internal/heap"
	"hcsgc/internal/objmodel"
)

// Node field indices.
const (
	fAdj  = 0 // ref: adjacency array ([]ref of incident edge objects)
	fID   = 1 // word: dense node id
	fDisc = 2 // word: DFS discovery number (Hopcroft–Tarjan)
	fLow  = 3 // word: DFS low-link
	fMark = 4 // word: visited stamp (per-run version)

	nodeFields = 5
)

// Edge field indices. Edges are first-class objects as in JGraphT
// (DefaultEdge holds source and target); they are allocated in global
// edge-insertion order, so a node's incident edges are scattered across
// the heap until the collector (or the mutator, under HCSGC) reorganises
// them.
const (
	eSrc = 0 // ref: source node
	eDst = 1 // ref: target node

	edgeFields = 2
)

// Types bundles the registered graph layouts.
type Types struct {
	Node *objmodel.Type
	Edge *objmodel.Type
}

// RegisterTypes registers the graph layouts. Call once per runtime.
func RegisterTypes(types *objmodel.Registry) Types {
	return Types{
		Node: types.Register("graphalg.node", nodeFields, []int{fAdj}),
		Edge: types.Register("graphalg.edge", edgeFields, []int{eSrc, eDst}),
	}
}

// HeapGraph is a graph materialised on the managed heap. The node array
// lives in the owning mutator's root slot, so the graph survives GC.
type HeapGraph struct {
	types    Types
	rootSlot int
	n        int
	// runStamp versions the visited marks so repeated runs need no reset
	// pass.
	runStamp uint64
	// AllocSetGarbage makes BronKerbosch allocate a short-lived heap array
	// per recursion, mirroring JGraphT's per-call candidate-set copies
	// ("some allocation is done by the Bron-Kerbosch algorithm, which
	// triggers GC often", §4.5). Off by default for pure-algorithm tests.
	AllocSetGarbage bool
}

// Load allocates the graph on the heap the way the paper's JGraphT driver
// builds it: all node objects first (in id order), then one edge object
// per edge in global insertion order, then per-node adjacency arrays of
// edge references. A node's incident edge objects are therefore scattered
// across the edge population — the baseline layout whose traversal
// locality HCSGC improves. The node array ref lives in the mutator's
// rootSlot; rootSlot+1 is used temporarily during loading.
func Load(m *core.Mutator, types Types, g *graphgen.Graph, rootSlot int) *HeapGraph {
	n := g.Nodes()
	arr := m.AllocRefArray(n)
	m.SetRoot(rootSlot, arr)
	for v := 0; v < n; v++ {
		obj := m.Alloc(types.Node)
		m.StoreField(obj, fID, uint64(v))
		m.StoreRef(m.LoadRoot(rootSlot), v, obj)
	}
	edges := g.Edges
	if len(edges) == 0 {
		edges = edgesFromAdj(g)
	}
	// Edge objects in insertion order, pinned via a temporary edge array.
	earr := m.AllocRefArray(len(edges))
	m.SetRoot(rootSlot+1, earr)
	incident := make([][]int32, n) // per-node edge indices
	for k, ed := range edges {
		e := m.Alloc(types.Edge)
		nodes := m.LoadRoot(rootSlot)
		m.StoreRef(e, eSrc, m.LoadRef(nodes, int(ed[0])))
		m.StoreRef(e, eDst, m.LoadRef(nodes, int(ed[1])))
		m.StoreRef(m.LoadRoot(rootSlot+1), k, e)
		incident[ed[0]] = append(incident[ed[0]], int32(k))
		incident[ed[1]] = append(incident[ed[1]], int32(k))
		if k%512 == 0 {
			m.Safepoint()
		}
	}
	for v := 0; v < n; v++ {
		adj := m.AllocRefArray(len(incident[v]))
		earr := m.LoadRoot(rootSlot + 1)
		for i, k := range incident[v] {
			m.StoreRef(adj, i, m.LoadRef(earr, int(k)))
		}
		node := m.LoadRef(m.LoadRoot(rootSlot), v)
		m.StoreRef(node, fAdj, adj)
		if v%256 == 0 {
			m.Safepoint()
		}
	}
	// The temporary edge array dies here (JGraphT keeps edges reachable
	// only through adjacency).
	m.SetRoot(rootSlot+1, heap.NullRef)
	return &HeapGraph{types: types, rootSlot: rootSlot, n: n}
}

// edgesFromAdj recovers an edge list (ascending order) for graphs built
// directly from adjacency in tests.
func edgesFromAdj(g *graphgen.Graph) [][2]int32 {
	var out [][2]int32
	for v := range g.Adj {
		for _, w := range g.Adj[v] {
			if int32(v) < w {
				out = append(out, [2]int32{int32(v), w})
			}
		}
	}
	return out
}

// Nodes returns the node count.
func (hg *HeapGraph) Nodes() int { return hg.n }

// node returns the node object for id v (fresh barrier-checked ref).
func (hg *HeapGraph) node(m *core.Mutator, v int32) heap.Ref {
	return m.LoadRef(m.LoadRoot(hg.rootSlot), int(v))
}

// edgeOther resolves the endpoint of edge e that is not node v, returning
// the neighbour's ref and id. This is the JGraphT access pattern: read the
// edge object, then the endpoint node object.
func (hg *HeapGraph) edgeOther(m *core.Mutator, e heap.Ref, v int32) (heap.Ref, int32) {
	a := m.LoadRef(e, eSrc)
	ida := int32(m.LoadField(a, fID))
	if ida != v {
		return a, ida
	}
	b := m.LoadRef(e, eDst)
	return b, int32(m.LoadField(b, fID))
}

// neighbors reads node v's neighbour ids from the heap into buf, chasing
// edge objects — the locality-sensitive traffic.
func (hg *HeapGraph) neighbors(m *core.Mutator, v int32, buf []int32) []int32 {
	node := hg.node(m, v)
	adj := m.LoadRef(node, fAdj)
	deg := m.ArrayLen(adj)
	buf = buf[:0]
	for i := 0; i < deg; i++ {
		e := m.LoadRef(adj, i)
		_, id := hg.edgeOther(m, e, v)
		buf = append(buf, id)
	}
	return buf
}

// Degree reads node v's degree.
func (hg *HeapGraph) Degree(m *core.Mutator, v int32) int {
	return m.ArrayLen(m.LoadRef(hg.node(m, v), fAdj))
}

// --- Connected components & biconnectivity (Hopcroft–Tarjan) -------------

// BiconnectivityResult reports what JGraphT's BiconnectivityInspector
// computes: connected components, biconnected components and articulation
// (cut) points.
type BiconnectivityResult struct {
	ConnectedComponents   int
	BiconnectedComponents int
	ArticulationPoints    int
}

// Biconnectivity runs the iterative Hopcroft–Tarjan DFS. Discovery and
// low-link values live in the node objects themselves, so the pass reads
// and writes the heap in DFS order.
func (hg *HeapGraph) Biconnectivity(m *core.Mutator) BiconnectivityResult {
	hg.runStamp++
	stamp := hg.runStamp
	var res BiconnectivityResult
	isArt := make([]bool, hg.n)

	type frame struct {
		v      int32
		parent int32
		next   int // next adjacency index to explore
		ref    heap.Ref
	}
	counter := uint64(0)
	steps := 0 // safepoint pacing

	for start := int32(0); start < int32(hg.n); start++ {
		startRef := hg.node(m, start)
		if m.LoadField(startRef, fMark) == stamp {
			continue
		}
		res.ConnectedComponents++
		rootChildren := 0
		counter++
		m.StoreField(startRef, fMark, stamp)
		m.StoreField(startRef, fDisc, counter)
		m.StoreField(startRef, fLow, counter)
		stack := []frame{{v: start, parent: -1, ref: startRef}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			adj := m.LoadRef(f.ref, fAdj)
			deg := m.ArrayLen(adj)
			advanced := false
			for f.next < deg {
				i := f.next
				f.next++
				e := m.LoadRef(adj, i)
				nb, w := hg.edgeOther(m, e, f.v)
				if w == f.parent {
					continue
				}
				if m.LoadField(nb, fMark) == stamp {
					// Back edge: update low.
					wd := m.LoadField(nb, fDisc)
					if wd < m.LoadField(f.ref, fLow) {
						m.StoreField(f.ref, fLow, wd)
					}
					continue
				}
				// Tree edge: descend.
				counter++
				m.StoreField(nb, fMark, stamp)
				m.StoreField(nb, fDisc, counter)
				m.StoreField(nb, fLow, counter)
				if f.v == start {
					rootChildren++
				}
				stack = append(stack, frame{v: w, parent: f.v, ref: nb})
				advanced = true
				break
			}
			if advanced {
				steps++
				if steps%64 == 0 {
					m.Safepoint()
					// Re-derive refs invalidated by the safepoint.
					for i := range stack {
						stack[i].ref = hg.node(m, stack[i].v)
					}
				}
				continue
			}
			// Retreat: fold low into parent, detect articulation.
			done := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := &stack[len(stack)-1]
				childLow := m.LoadField(done.ref, fLow)
				if childLow < m.LoadField(p.ref, fLow) {
					m.StoreField(p.ref, fLow, childLow)
				}
				if childLow >= m.LoadField(p.ref, fDisc) {
					// p separates done's subtree: one biconnected
					// component closes here.
					res.BiconnectedComponents++
					if p.v != start {
						isArt[p.v] = true
					}
				}
			}
		}
		if rootChildren > 1 {
			isArt[start] = true
		}
		if rootChildren == 0 {
			// Isolated vertex: its own (degenerate) component.
			res.BiconnectedComponents++
		}
	}
	for _, a := range isArt {
		if a {
			res.ArticulationPoints++
		}
	}
	return res
}

// ConnectedComponents counts connected components with a plain iterative
// DFS (a lighter pass used by tests and warm-ups).
func (hg *HeapGraph) ConnectedComponents(m *core.Mutator) int {
	hg.runStamp++
	stamp := hg.runStamp
	components := 0
	var stack []int32
	for start := int32(0); start < int32(hg.n); start++ {
		ref := hg.node(m, start)
		if m.LoadField(ref, fMark) == stamp {
			continue
		}
		components++
		m.StoreField(ref, fMark, stamp)
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			vref := hg.node(m, v)
			adj := m.LoadRef(vref, fAdj)
			deg := m.ArrayLen(adj)
			for i := 0; i < deg; i++ {
				e := m.LoadRef(adj, i)
				nb, w := hg.edgeOther(m, e, v)
				if m.LoadField(nb, fMark) != stamp {
					m.StoreField(nb, fMark, stamp)
					stack = append(stack, w)
				}
			}
			m.Safepoint()
		}
	}
	return components
}

// --- Bron–Kerbosch maximal cliques ----------------------------------------

// CliqueResult summarises a Bron–Kerbosch enumeration.
type CliqueResult struct {
	MaximalCliques int
	// TotalSize is the sum of clique sizes (a checksum across configs).
	TotalSize int
	// MaxSize is the largest clique found.
	MaxSize int
}

// BronKerbosch enumerates all maximal cliques with the pivoting variant,
// reading every neighbourhood from the heap. maxCliques > 0 bounds the
// enumeration (0 = unbounded).
func (hg *HeapGraph) BronKerbosch(m *core.Mutator, maxCliques int) CliqueResult {
	bk := &bkState{hg: hg, m: m, limit: maxCliques}
	p := make([]int32, hg.n)
	for i := range p {
		p[i] = int32(i)
	}
	bk.recurse(0, p, nil)
	return bk.res
}

type bkState struct {
	hg    *HeapGraph
	m     *core.Mutator
	res   CliqueResult
	limit int
	buf   []int32
	depth int
}

// stop reports whether the clique bound was hit.
func (b *bkState) stop() bool {
	return b.limit > 0 && b.res.MaximalCliques >= b.limit
}

// recurse is BronKerbosch(R-size, P, X) with Tomita pivoting: the pivot is
// the vertex of P∪X with the largest heap-read degree, and only P \ N(pivot)
// is expanded.
func (b *bkState) recurse(rsize int, p, x []int32) {
	if b.stop() {
		return
	}
	if len(p) == 0 && len(x) == 0 {
		b.res.MaximalCliques++
		b.res.TotalSize += rsize
		if rsize > b.res.MaxSize {
			b.res.MaxSize = rsize
		}
		return
	}
	b.m.Safepoint()

	// Pivot: max-degree vertex of P ∪ X (degree via one heap read each).
	pivot := int32(-1)
	best := -1
	for _, v := range p {
		if d := b.hg.Degree(b.m, v); d > best {
			best, pivot = d, v
		}
	}
	for _, v := range x {
		if d := b.hg.Degree(b.m, v); d > best {
			best, pivot = d, v
		}
	}
	pivotAdj := map[int32]bool{}
	if pivot >= 0 {
		b.buf = b.hg.neighbors(b.m, pivot, b.buf)
		for _, w := range b.buf {
			pivotAdj[w] = true
		}
	}

	// Candidates: P \ N(pivot), snapshotted because p mutates below.
	var cands []int32
	for _, v := range p {
		if !pivotAdj[v] {
			cands = append(cands, v)
		}
	}
	for _, v := range cands {
		if b.stop() {
			return
		}
		b.buf = b.hg.neighbors(b.m, v, b.buf)
		nv := map[int32]bool{}
		for _, w := range b.buf {
			nv[w] = true
		}
		var np, nx []int32
		for _, w := range p {
			if nv[w] {
				np = append(np, w)
			}
		}
		for _, w := range x {
			if nv[w] {
				nx = append(nx, w)
			}
		}
		if b.hg.AllocSetGarbage {
			// JGraphT copies P∩N(v) and X∩N(v) into fresh heap sets.
			b.m.AllocWordArray(len(np) + len(nx) + 1)
		}
		b.recurse(rsize+1, np, nx)
		// Move v from P to X.
		for i, w := range p {
			if w == v {
				p = append(p[:i], p[i+1:]...)
				break
			}
		}
		x = append(x, v)
	}
}

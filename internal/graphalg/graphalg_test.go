package graphalg

import (
	"math/rand"
	"testing"

	"hcsgc/internal/core"
	"hcsgc/internal/graphgen"
	"hcsgc/internal/heap"
	"hcsgc/internal/objmodel"
)

func newEnv(t *testing.T, knobs core.Knobs) (*core.Collector, Types) {
	t.Helper()
	h := heap.New(heap.Config{MaxBytes: 256 << 20}, nil)
	types := objmodel.NewRegistry()
	c, err := core.New(h, types, core.Config{Knobs: knobs})
	if err != nil {
		t.Fatal(err)
	}
	return c, RegisterTypes(types)
}

// graphFromEdges builds a graphgen.Graph directly from an edge list.
func graphFromEdges(n int, edges [][2]int32) *graphgen.Graph {
	g := &graphgen.Graph{Adj: make([][]int32, n), EdgeCount: len(edges)}
	for _, e := range edges {
		g.Adj[e[0]] = append(g.Adj[e[0]], e[1])
		g.Adj[e[1]] = append(g.Adj[e[1]], e[0])
	}
	return g
}

func load(t *testing.T, g *graphgen.Graph, knobs core.Knobs) (*HeapGraph, *core.Mutator) {
	t.Helper()
	c, gt := newEnv(t, knobs)
	m := c.NewMutator(4)
	t.Cleanup(m.Close)
	return Load(m, gt, g, 0), m
}

func TestLoadRoundTrip(t *testing.T) {
	g := graphFromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	hg, m := load(t, g, core.Knobs{})
	if hg.Nodes() != 4 {
		t.Fatalf("nodes = %d", hg.Nodes())
	}
	var buf []int32
	buf = hg.neighbors(m, 1, buf)
	if len(buf) != 2 {
		t.Fatalf("node 1 neighbors = %v", buf)
	}
	if hg.Degree(m, 0) != 2 {
		t.Fatal("degree wrong")
	}
}

func TestConnectedComponentsKnownGraphs(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]int32
		want  int
	}{
		{"single edge", 2, [][2]int32{{0, 1}}, 1},
		{"two components", 4, [][2]int32{{0, 1}, {2, 3}}, 2},
		{"isolated vertices", 3, nil, 3},
		{"triangle plus isolated", 4, [][2]int32{{0, 1}, {1, 2}, {2, 0}}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hg, m := load(t, graphFromEdges(tc.n, tc.edges), core.Knobs{})
			if got := hg.ConnectedComponents(m); got != tc.want {
				t.Fatalf("CC = %d, want %d", got, tc.want)
			}
			// Repeat runs must agree (stamp versioning works).
			if got := hg.ConnectedComponents(m); got != tc.want {
				t.Fatalf("second CC run = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestBiconnectivityKnownGraphs(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		edges   [][2]int32
		cc, bcc int
		art     int
	}{
		{"triangle", 3, [][2]int32{{0, 1}, {1, 2}, {2, 0}}, 1, 1, 0},
		{"path3", 3, [][2]int32{{0, 1}, {1, 2}}, 1, 2, 1},
		{"single edge", 2, [][2]int32{{0, 1}}, 1, 1, 0},
		{"two triangles sharing vertex", 5,
			[][2]int32{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}}, 1, 2, 1},
		{"star4", 5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}}, 1, 4, 1},
		{"two components", 5, [][2]int32{{0, 1}, {1, 2}, {3, 4}}, 2, 3, 1},
		{"isolated", 1, nil, 1, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hg, m := load(t, graphFromEdges(tc.n, tc.edges), core.Knobs{})
			got := hg.Biconnectivity(m)
			if got.ConnectedComponents != tc.cc {
				t.Errorf("CC = %d, want %d", got.ConnectedComponents, tc.cc)
			}
			if got.BiconnectedComponents != tc.bcc {
				t.Errorf("BCC = %d, want %d", got.BiconnectedComponents, tc.bcc)
			}
			if got.ArticulationPoints != tc.art {
				t.Errorf("articulation = %d, want %d", got.ArticulationPoints, tc.art)
			}
		})
	}
}

func refIsolated(g *graphgen.Graph, v int) bool { return len(g.Adj[v]) == 0 }

// refComponents counts components, optionally skipping vertex skip.
func refComponents(g *graphgen.Graph, skip int) int {
	n := g.Nodes()
	visited := make([]bool, n)
	comps := 0
	for s := 0; s < n; s++ {
		if s == skip || visited[s] {
			continue
		}
		comps++
		stack := []int32{int32(s)}
		visited[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Adj[v] {
				if int(w) == skip || visited[w] {
					continue
				}
				visited[w] = true
				stack = append(stack, w)
			}
		}
	}
	return comps
}

func TestBiconnectivityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(12)
		maxE := n * (n - 1) / 2
		e := n - 1 + rng.Intn(maxE-n+2)
		g := graphgen.MustGenerate(graphgen.Params{Nodes: n, Edges: e, CopyProb: 0.4, Seed: int64(trial)})
		hg, m := load(t, g, core.Knobs{})
		got := hg.Biconnectivity(m)

		wantCC := refComponents(g, -1)
		if got.ConnectedComponents != wantCC {
			t.Fatalf("trial %d: CC = %d, want %d", trial, got.ConnectedComponents, wantCC)
		}
		// Articulation points: vertex v is articulation iff removing it
		// increases the component count among remaining vertices.
		wantArt := 0
		for v := 0; v < n; v++ {
			before := wantCC
			if refIsolated(g, v) {
				continue
			}
			after := refComponents(g, v) // components among others
			if after > before {
				wantArt++
			}
		}
		if got.ArticulationPoints != wantArt {
			t.Fatalf("trial %d (n=%d e=%d): articulation = %d, want %d", trial, n, e, got.ArticulationPoints, wantArt)
		}
	}
}

// refBronKerbosch is a simple reference enumeration without pivoting.
func refBronKerbosch(g *graphgen.Graph) CliqueResult {
	n := g.Nodes()
	adj := make([]map[int32]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = map[int32]bool{}
		for _, w := range g.Adj[v] {
			adj[v][w] = true
		}
	}
	var res CliqueResult
	var rec func(r, p, x []int32)
	rec = func(r, p, x []int32) {
		if len(p) == 0 && len(x) == 0 {
			res.MaximalCliques++
			res.TotalSize += len(r)
			if len(r) > res.MaxSize {
				res.MaxSize = len(r)
			}
			return
		}
		for len(p) > 0 {
			v := p[0]
			var np, nx []int32
			for _, w := range p {
				if adj[v][w] {
					np = append(np, w)
				}
			}
			for _, w := range x {
				if adj[v][w] {
					nx = append(nx, w)
				}
			}
			rec(append(append([]int32{}, r...), v), np, nx)
			p = p[1:]
			x = append(x, v)
		}
	}
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	rec(nil, all, nil)
	return res
}

func TestBronKerboschKnownGraphs(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		edges   [][2]int32
		cliques int
		maxSize int
	}{
		{"triangle", 3, [][2]int32{{0, 1}, {1, 2}, {2, 0}}, 1, 3},
		{"path3", 3, [][2]int32{{0, 1}, {1, 2}}, 2, 2},
		{"k4", 4, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, 1, 4},
		{"no edges", 3, nil, 3, 1},
		{"two triangles sharing edge", 4,
			[][2]int32{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}}, 2, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hg, m := load(t, graphFromEdges(tc.n, tc.edges), core.Knobs{})
			got := hg.BronKerbosch(m, 0)
			if got.MaximalCliques != tc.cliques || got.MaxSize != tc.maxSize {
				t.Fatalf("BK = %+v, want cliques=%d maxSize=%d", got, tc.cliques, tc.maxSize)
			}
		})
	}
}

func TestBronKerboschAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(10)
		maxE := n * (n - 1) / 2
		e := n - 1 + rng.Intn(maxE-n+2)
		g := graphgen.MustGenerate(graphgen.Params{Nodes: n, Edges: e, CopyProb: 0.5, Seed: int64(100 + trial)})
		hg, m := load(t, g, core.Knobs{})
		got := hg.BronKerbosch(m, 0)
		want := refBronKerbosch(g)
		if got != want {
			t.Fatalf("trial %d (n=%d e=%d): BK = %+v, want %+v", trial, n, e, got, want)
		}
	}
}

func TestBronKerboschLimit(t *testing.T) {
	g := graphgen.MustGenerate(graphgen.Params{Nodes: 50, Edges: 300, CopyProb: 0.5, Seed: 7})
	hg, m := load(t, g, core.Knobs{})
	got := hg.BronKerbosch(m, 5)
	if got.MaximalCliques != 5 {
		t.Fatalf("limited BK found %d cliques, want exactly 5", got.MaximalCliques)
	}
}

func TestAlgorithmsSurviveGC(t *testing.T) {
	// Run CC and BK across GC cycles under aggressive knobs: results must
	// match the no-GC run (relocation must be transparent).
	g := graphgen.MustGenerate(graphgen.Params{Nodes: 400, Edges: 2500, CopyProb: 0.4, Seed: 21})
	knobs := core.Knobs{Hotness: true, ColdPage: true, ColdConfidence: 1.0, LazyRelocate: true}

	hgBase, mBase := load(t, g, core.Knobs{})
	wantBi := hgBase.Biconnectivity(mBase)
	wantBK := hgBase.BronKerbosch(mBase, 0)

	hg, m := load(t, g, knobs)
	m.RequestGC()
	gotBi := hg.Biconnectivity(m)
	m.RequestGC()
	gotBK := hg.BronKerbosch(m, 0)
	m.RequestGC()
	gotBi2 := hg.Biconnectivity(m)

	if gotBi != wantBi || gotBi2 != wantBi {
		t.Fatalf("biconnectivity across GC = %+v / %+v, want %+v", gotBi, gotBi2, wantBi)
	}
	if gotBK != wantBK {
		t.Fatalf("BK across GC = %+v, want %+v", gotBK, wantBK)
	}
}

func TestGraphLayoutChangesUnderMutatorRelocation(t *testing.T) {
	// After traversals under RelocateAllSmallPages+LazyRelocate, nodes
	// should have been relocated (the mechanism the JGraphT figures rely
	// on).
	g := graphgen.MustGenerate(graphgen.Params{Nodes: 2000, Edges: 8000, CopyProb: 0.4, Seed: 23})
	c, gt := newEnv(t, core.Knobs{RelocateAllSmallPages: true, LazyRelocate: true})
	m := c.NewMutator(4)
	defer m.Close()
	hg := Load(m, gt, g, 0)

	addrBefore := make([]uint64, 16)
	for i := range addrBefore {
		addrBefore[i] = hg.node(m, int32(i*100)).Addr()
	}
	m.RequestGC()
	hg.Biconnectivity(m) // traversal relocates in DFS order
	moved := 0
	for i := range addrBefore {
		if hg.node(m, int32(i*100)).Addr() != addrBefore[i] {
			moved++
		}
	}
	if moved < len(addrBefore)/2 {
		t.Fatalf("only %d of %d sampled nodes moved; mutator relocation not happening", moved, len(addrBefore))
	}
}

package objmodel

import (
	"testing"
	"testing/quick"

	"hcsgc/internal/heap"
)

func TestHeaderRoundTrip(t *testing.T) {
	cases := []struct {
		size int
		id   uint16
	}{
		{1, 0}, {2, 1}, {5, 42}, {1 << 20, 65535}, {sizeMask, 7},
	}
	for _, tc := range cases {
		h := EncodeHeader(tc.size, tc.id)
		size, id := DecodeHeader(h)
		if size != tc.size || id != tc.id {
			t.Errorf("roundtrip (%d,%d) -> (%d,%d)", tc.size, tc.id, size, id)
		}
		if SizeBytes(h) != uint64(tc.size)*heap.WordSize {
			t.Errorf("SizeBytes wrong for size %d", tc.size)
		}
	}
}

func TestEncodeHeaderPanicsOnBadSize(t *testing.T) {
	for _, size := range []int{0, -1, sizeMask + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EncodeHeader(%d, 0) did not panic", size)
				}
			}()
			EncodeHeader(size, 0)
		}()
	}
}

func TestPropertyHeaderRoundTrip(t *testing.T) {
	f := func(size uint32, id uint16) bool {
		s := int(size%sizeMask) + 1
		h := EncodeHeader(s, id)
		gs, gid := DecodeHeader(h)
		return gs == s && gid == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryBuiltins(t *testing.T) {
	r := NewRegistry()
	if r.NumTypes() != 2 {
		t.Fatalf("NumTypes = %d, want 2 builtins", r.NumTypes())
	}
	ra := r.Lookup(RefArrayTypeID)
	if ra.Kind != KindRefArray || ra.Name != "[]ref" {
		t.Fatalf("ref array type wrong: %+v", ra)
	}
	wa := r.Lookup(WordArrayTypeID)
	if wa.Kind != KindWordArray {
		t.Fatalf("word array type wrong: %+v", wa)
	}
}

func TestRegisterFixedType(t *testing.T) {
	r := NewRegistry()
	node := r.Register("node", 3, []int{0, 2})
	if node.ID != 2 {
		t.Fatalf("first user type id = %d, want 2", node.ID)
	}
	if node.SizeWords() != 4 {
		t.Fatalf("SizeWords = %d, want 4 (header + 3 fields)", node.SizeWords())
	}
	if got := r.Lookup(node.ID); got != node {
		t.Fatal("Lookup must return the registered type")
	}
}

func TestRegisterValidation(t *testing.T) {
	r := NewRegistry()
	for _, tc := range []struct {
		name      string
		numFields int
		refs      []int
	}{
		{"neg fields", -1, nil},
		{"ref oob", 2, []int{2}},
		{"ref negative", 2, []int{-1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Register did not panic", tc.name)
				}
			}()
			r.Register(tc.name, tc.numFields, tc.refs)
		}()
	}
}

func TestRegisterCopiesRefSlice(t *testing.T) {
	r := NewRegistry()
	refs := []int{0}
	typ := r.Register("x", 2, refs)
	refs[0] = 1
	if typ.RefFields[0] != 0 {
		t.Fatal("Register must copy the ref field slice")
	}
}

func TestLookupUnknownPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("Lookup of unknown id must panic")
		}
	}()
	r.Lookup(999)
}

func TestFieldAddressing(t *testing.T) {
	base := uint64(0x200000)
	if FieldAddr(base, 0) != base+8 {
		t.Fatal("field 0 follows the header word")
	}
	if FieldAddr(base, 3) != base+32 {
		t.Fatal("field 3 at header+3 words")
	}
	if FieldOffsetWords(0) != 1 {
		t.Fatal("FieldOffsetWords(0) must be 1")
	}
}

func TestRefFieldIndicesFixed(t *testing.T) {
	r := NewRegistry()
	typ := r.Register("pair", 4, []int{1, 3})
	var got []int
	RefFieldIndices(typ, typ.SizeWords(), func(f int) { got = append(got, f) })
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("ref fields = %v, want [1 3]", got)
	}
}

func TestRefFieldIndicesRefArray(t *testing.T) {
	r := NewRegistry()
	typ := r.Lookup(RefArrayTypeID)
	var got []int
	RefFieldIndices(typ, ArraySizeWords(5), func(f int) { got = append(got, f) })
	if len(got) != 5 {
		t.Fatalf("ref array of 5 should yield 5 ref fields, got %v", got)
	}
	for i, f := range got {
		if f != i {
			t.Fatalf("ref fields = %v, want 0..4", got)
		}
	}
}

func TestRefFieldIndicesWordArray(t *testing.T) {
	r := NewRegistry()
	typ := r.Lookup(WordArrayTypeID)
	count := 0
	RefFieldIndices(typ, ArraySizeWords(10), func(int) { count++ })
	if count != 0 {
		t.Fatalf("word array yielded %d ref fields, want 0", count)
	}
}

func TestArrayHelpers(t *testing.T) {
	h := EncodeHeader(ArraySizeWords(7), uint16(RefArrayTypeID))
	if ArrayLen(h) != 7 {
		t.Fatalf("ArrayLen = %d, want 7", ArrayLen(h))
	}
	if ArraySizeWords(0) != HeaderWords {
		t.Fatal("empty array is just a header")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative array length must panic")
		}
	}()
	ArraySizeWords(-1)
}

func TestSizeWordsPanicsOnArrayType(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("SizeWords on array type must panic")
		}
	}()
	r.Lookup(RefArrayTypeID).SizeWords()
}

// Package objmodel defines the object layout used on the simulated heap:
// a one-word header (size and type id) followed by word-sized fields, and a
// registry of types describing which fields hold references. The collector
// uses the registry to trace the object graph; workloads use it to define
// their data structures.
package objmodel

import (
	"fmt"

	"hcsgc/internal/heap"
)

// Header layout: bits 0..23 size in words (including the header word),
// bits 24..39 type id. This supports objects up to 128 MB and 65 536
// types, far beyond what any benchmark needs.
const (
	sizeBits  = 24
	sizeMask  = (1 << sizeBits) - 1
	typeShift = sizeBits
	typeMask  = 0xffff
)

// HeaderWords is the number of words of per-object metadata.
const HeaderWords = 1

// EncodeHeader packs an object's total size (in words, including the
// header) and its type id into a header word.
func EncodeHeader(sizeWords int, typeID uint16) uint64 {
	if sizeWords <= 0 || sizeWords > sizeMask {
		panic(fmt.Sprintf("objmodel: invalid object size %d words", sizeWords))
	}
	return uint64(sizeWords) | uint64(typeID)<<typeShift
}

// DecodeHeader unpacks a header word.
func DecodeHeader(h uint64) (sizeWords int, typeID uint16) {
	return int(h & sizeMask), uint16(h >> typeShift & typeMask)
}

// SizeBytes returns the object's total byte size from its header word.
// Mark-loop hot path: alloc-free.
//
//hcsgc:alloc-free
func SizeBytes(h uint64) uint64 {
	return uint64(h&sizeMask) * heap.WordSize
}

// Kind distinguishes layout families.
type Kind uint8

// The layout kinds.
const (
	// KindFixed objects have a fixed field count with a static ref map.
	KindFixed Kind = iota
	// KindRefArray objects are arrays where every element is a reference.
	KindRefArray
	// KindWordArray objects are arrays of plain data words (no refs).
	KindWordArray
)

// Type describes one object layout.
type Type struct {
	ID   uint16
	Name string
	Kind Kind
	// NumFields is the field count for fixed types (arrays vary per
	// instance).
	NumFields int
	// RefFields lists the field indices holding references (fixed kinds).
	RefFields []int
}

// SizeWords returns the allocation size for a fixed type.
func (t *Type) SizeWords() int {
	if t.Kind != KindFixed {
		panic("objmodel: SizeWords on array type")
	}
	return HeaderWords + t.NumFields
}

// FieldOffsetWords returns the word offset of field i from the object
// start.
func FieldOffsetWords(i int) uint64 { return uint64(HeaderWords + i) }

// FieldAddr returns the simulated address of field i of the object at
// addr.
func FieldAddr(addr uint64, i int) uint64 {
	return addr + FieldOffsetWords(i)*heap.WordSize
}

// Registry maps type ids to layouts. It is immutable after setup
// (register all types before starting mutators), so lookups are lock-free.
type Registry struct {
	types []*Type
}

// Builtin type ids for arrays, registered by NewRegistry.
const (
	RefArrayTypeID  uint16 = 0
	WordArrayTypeID uint16 = 1
)

// NewRegistry creates a registry preloaded with the builtin array types.
func NewRegistry() *Registry {
	r := &Registry{}
	r.register(&Type{Name: "[]ref", Kind: KindRefArray})
	r.register(&Type{Name: "[]word", Kind: KindWordArray})
	return r
}

func (r *Registry) register(t *Type) *Type {
	if len(r.types) > typeMask {
		panic("objmodel: type id space exhausted")
	}
	t.ID = uint16(len(r.types))
	r.types = append(r.types, t)
	return t
}

// Register adds a fixed-layout type with the given field count and ref
// field indices. Panics on invalid layouts (setup-time programming error).
func (r *Registry) Register(name string, numFields int, refFields []int) *Type {
	if numFields < 0 {
		panic(fmt.Sprintf("objmodel: type %q: negative field count", name))
	}
	for _, f := range refFields {
		if f < 0 || f >= numFields {
			panic(fmt.Sprintf("objmodel: type %q: ref field %d out of range [0,%d)", name, f, numFields))
		}
	}
	refs := make([]int, len(refFields))
	copy(refs, refFields)
	return r.register(&Type{Name: name, Kind: KindFixed, NumFields: numFields, RefFields: refs})
}

// Lookup returns the type for an id; panics on unknown ids (heap
// corruption, not a recoverable condition).
func (r *Registry) Lookup(id uint16) *Type {
	if int(id) >= len(r.types) {
		panic(fmt.Sprintf("objmodel: unknown type id %d", id))
	}
	return r.types[id]
}

// NumTypes returns the number of registered types.
func (r *Registry) NumTypes() int { return len(r.types) }

// RefFieldIndices calls fn with each field index of the object that holds
// a reference, given its type and total size in words. This is the tracing
// loop's ref map.
func RefFieldIndices(t *Type, sizeWords int, fn func(field int)) {
	switch t.Kind {
	case KindFixed:
		for _, f := range t.RefFields {
			fn(f)
		}
	case KindRefArray:
		for i := 0; i < sizeWords-HeaderWords; i++ {
			fn(i)
		}
	case KindWordArray:
		// no refs
	}
}

// ArrayLen returns the element count of an array object from its header.
func ArrayLen(header uint64) int {
	size, _ := DecodeHeader(header)
	return size - HeaderWords
}

// ArraySizeWords returns the allocation size in words for an array of n
// elements.
func ArraySizeWords(n int) int {
	if n < 0 {
		panic("objmodel: negative array length")
	}
	return HeaderWords + n
}

// Package machine models execution time on a multi-core machine from the
// cycle ledgers produced by the simulation: mutator cycles (memory access
// costs from the cache model plus compute), concurrent GC-thread cycles,
// and stop-the-world pause cycles.
//
// The model captures the two scheduling effects the paper's evaluation
// depends on:
//
//   - On an under-committed machine, concurrent GC work runs on idle cores
//     and is invisible in wall-clock time ("such extra work stays hidden in
//     an unloaded system", §3.1.1).
//   - On a saturated machine (the taskset single-core experiment of Fig. 6),
//     GC work competes with mutators and lands on the critical path.
package machine

// Model is the machine used to fold cycle ledgers into wall-clock time.
type Model struct {
	// Cores is the number of hardware threads available.
	Cores int
	// CyclesPerSecond converts cycles to seconds; the paper's laptop runs
	// at 2.10 GHz.
	CyclesPerSecond float64
}

// Laptop models the i7-4600U machine (2 cores / 4 hyper-threads @ 2.1GHz)
// used for everything except SPECjbb. We use the hyper-thread count since
// ZGC's GC threads run on sibling threads.
func Laptop() Model { return Model{Cores: 4, CyclesPerSecond: 2.1e9} }

// SingleCore models the taskset-constrained run of Fig. 6.
func SingleCore() Model { return Model{Cores: 1, CyclesPerSecond: 2.1e9} }

// Server models the 32-core Opteron used for SPECjbb.
func Server() Model { return Model{Cores: 32, CyclesPerSecond: 3.0e9} }

// Ledger is the cycle accounting of one benchmark run.
type Ledger struct {
	// MutatorCycles holds each mutator thread's own cycles (memory +
	// bookkeeping + compute, including relocation copies it performed).
	MutatorCycles []uint64
	// GCCycles is the total concurrent GC-thread work.
	GCCycles uint64
	// PauseCycles is the total stop-the-world work; every mutator is
	// stopped for its duration.
	PauseCycles uint64
}

// ExecCycles folds the ledger through the core model and returns the
// simulated wall-clock execution time in cycles.
//
// With m mutator threads on c cores:
//
//	base    = max(mutator cycles) + pauses
//	idleCap = (c - m) * base            — concurrent capacity left over
//	spill   = max(0, gc - idleCap)      — GC work that cannot be hidden
//	time    = base + spill / m
//
// When m > c the mutators themselves oversubscribe the machine and
// everything serialises: time = (sum(mutators) + gc) / c + pauses.
func (mo Model) ExecCycles(l Ledger) float64 {
	if len(l.MutatorCycles) == 0 {
		return float64(l.GCCycles+l.PauseCycles) / float64(maxInt(mo.Cores, 1))
	}
	cores := maxInt(mo.Cores, 1)
	m := len(l.MutatorCycles)
	var sum, max uint64
	for _, v := range l.MutatorCycles {
		sum += v
		if v > max {
			max = v
		}
	}
	if m > cores {
		return float64(sum+l.GCCycles)/float64(cores) + float64(l.PauseCycles)
	}
	base := float64(max + l.PauseCycles)
	idleCap := float64(cores-m) * base
	spill := float64(l.GCCycles) - idleCap
	if spill < 0 {
		spill = 0
	}
	return base + spill/float64(m)
}

// ExecSeconds converts ExecCycles to seconds.
func (mo Model) ExecSeconds(l Ledger) float64 {
	cps := mo.CyclesPerSecond
	if cps == 0 {
		cps = 2.1e9
	}
	return mo.ExecCycles(l) / cps
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

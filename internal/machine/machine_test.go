package machine

import (
	"testing"
	"testing/quick"
)

func TestGCWorkHiddenOnIdleCores(t *testing.T) {
	// One mutator on a 4-thread machine: concurrent GC work up to 3x the
	// mutator time is free.
	m := Laptop()
	base := m.ExecCycles(Ledger{MutatorCycles: []uint64{1000}})
	withGC := m.ExecCycles(Ledger{MutatorCycles: []uint64{1000}, GCCycles: 2500})
	if withGC != base {
		t.Fatalf("GC work within idle capacity must be invisible: %v vs %v", withGC, base)
	}
}

func TestGCWorkSpillsWhenExcessive(t *testing.T) {
	m := Laptop() // 4 cores
	// 1 mutator, idle capacity = 3*1000; gc = 4000 -> spill 1000.
	got := m.ExecCycles(Ledger{MutatorCycles: []uint64{1000}, GCCycles: 4000})
	if got != 2000 {
		t.Fatalf("spill model: got %v, want 2000", got)
	}
}

func TestSingleCoreChargesAllGCWork(t *testing.T) {
	// The Fig. 6 configuration: everything lands on the mutator's core.
	m := SingleCore()
	got := m.ExecCycles(Ledger{MutatorCycles: []uint64{1000}, GCCycles: 500, PauseCycles: 100})
	if got != 1600 {
		t.Fatalf("single core: got %v, want 1600", got)
	}
}

func TestPausesStopAllMutators(t *testing.T) {
	m := Laptop()
	a := m.ExecCycles(Ledger{MutatorCycles: []uint64{1000, 900}})
	b := m.ExecCycles(Ledger{MutatorCycles: []uint64{1000, 900}, PauseCycles: 50})
	if b != a+50 {
		t.Fatalf("pauses must extend wall time: %v vs %v", b, a)
	}
}

func TestCriticalPathIsSlowestMutator(t *testing.T) {
	m := Laptop()
	got := m.ExecCycles(Ledger{MutatorCycles: []uint64{100, 5000, 300}})
	if got != 5000 {
		t.Fatalf("wall time = %v, want slowest mutator 5000", got)
	}
}

func TestOversubscribedMutators(t *testing.T) {
	m := Model{Cores: 2, CyclesPerSecond: 1e9}
	got := m.ExecCycles(Ledger{MutatorCycles: []uint64{1000, 1000, 1000, 1000}, GCCycles: 2000})
	// (4000 + 2000) / 2 = 3000.
	if got != 3000 {
		t.Fatalf("oversubscribed: got %v, want 3000", got)
	}
}

func TestEmptyLedger(t *testing.T) {
	m := Laptop()
	if got := m.ExecCycles(Ledger{GCCycles: 400}); got != 100 {
		t.Fatalf("gc-only ledger: got %v, want 100 (spread over 4 cores)", got)
	}
}

func TestExecSeconds(t *testing.T) {
	m := Model{Cores: 1, CyclesPerSecond: 1e9}
	got := m.ExecSeconds(Ledger{MutatorCycles: []uint64{2e9}})
	if got != 2 {
		t.Fatalf("ExecSeconds = %v, want 2", got)
	}
	// Zero CyclesPerSecond falls back to the laptop clock.
	m2 := Model{Cores: 1}
	if got := m2.ExecSeconds(Ledger{MutatorCycles: []uint64{uint64(2.1e9)}}); got != 1 {
		t.Fatalf("default clock: got %v, want 1", got)
	}
}

func TestPresets(t *testing.T) {
	if Laptop().Cores != 4 || SingleCore().Cores != 1 || Server().Cores != 32 {
		t.Fatal("preset core counts wrong")
	}
}

func TestPropertyMoreGCNeverFaster(t *testing.T) {
	m := Laptop()
	f := func(mut uint32, gc1, gc2 uint32) bool {
		l1 := Ledger{MutatorCycles: []uint64{uint64(mut)}, GCCycles: uint64(gc1)}
		l2 := Ledger{MutatorCycles: []uint64{uint64(mut)}, GCCycles: uint64(gc1) + uint64(gc2)}
		return m.ExecCycles(l2) >= m.ExecCycles(l1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMoreCoresNeverSlower(t *testing.T) {
	f := func(mut, gc uint32, cores uint8) bool {
		c := int(cores%16) + 1
		l := Ledger{MutatorCycles: []uint64{uint64(mut)}, GCCycles: uint64(gc)}
		a := Model{Cores: c, CyclesPerSecond: 1e9}.ExecCycles(l)
		b := Model{Cores: c + 1, CyclesPerSecond: 1e9}.ExecCycles(l)
		return b <= a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Package contention is the contention & scalability attribution plane:
// it answers "where does the collector serialize?" so ROADMAP item 1's
// sharding work starts from a ranked list instead of a hunch.
//
// Three kinds of serialization are attributed:
//
//   - Lock contention. The named hot locks (core.cycleMu, core.mutMu,
//     heap.mu, the simmem LLC/core registries, ...) are wrapped in
//     contention.Mutex, which records per-site acquisition counts,
//     contended-acquisition counts, and a wait-time HDR histogram. The
//     uncontended fast path is one TryLock plus two atomic adds; only a
//     lost TryLock pays for a clock read and a histogram record.
//
//   - CAS retry loops. OpSite counters attach to the known shared-
//     structure loops (forwarding-table install, page bump-pointer
//     allocation, markPool transfers) and separate attempts from retries
//     per structure.
//
//   - GC-worker imbalance. The collector reports per-worker cumulative
//     scanned/relocated/stolen counts and busy virtual cycles once per
//     GC cycle; the plane turns them into per-cycle deltas and an
//     imbalance coefficient (coefficient of variation of per-worker
//     work).
//
// Like the signal plane, the contention plane is always on unless opted
// out; every recording primitive is nil-safe so a disabled plane costs
// one predictable branch per site. Wait times are wall-clock nanoseconds
// (the simulated clock does not advance while a goroutine is parked in
// the Go scheduler), which is why this package — unlike core/signals —
// is exempt from the vtimepure analyzer.
package contention

import (
	"sync"
	"sync/atomic"
	"time"

	"hcsgc/internal/telemetry/latency"
)

// Site accumulates lock-contention statistics for one named mutex (or
// one external source bridged via Plane.AddSource). All fields are
// updated lock-free; a nil *Site accepts every call as a no-op.
type Site struct {
	name         string
	acquisitions atomic.Uint64
	contended    atomic.Uint64
	// wait records the wall-clock nanoseconds a contended Lock spent
	// parked before acquiring.
	wait latency.Hist
}

// Name returns the site's registration name.
func (s *Site) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Acquisitions returns the total Lock/TryLock acquisitions recorded.
func (s *Site) Acquisitions() uint64 {
	if s == nil {
		return 0
	}
	return s.acquisitions.Load()
}

// Contended returns the acquisitions that lost their TryLock and had to
// block.
func (s *Site) Contended() uint64 {
	if s == nil {
		return 0
	}
	return s.contended.Load()
}

// Wait exposes the contended-wait histogram (nanoseconds) for summary
// export. Returns nil on a nil site.
func (s *Site) Wait() *latency.Hist {
	if s == nil {
		return nil
	}
	return &s.wait
}

// Mutex is sync.Mutex plus per-site contention attribution. The zero
// value is a valid uninstrumented mutex; Instrument attaches a Site
// before any concurrent use. Lock-order ranks (//hcsgc:lock-order) are
// carried by the declaring field exactly as with sync.Mutex — the
// lockorder analyzer treats this type as a mutex.
type Mutex struct {
	inner sync.Mutex
	site  *Site
}

// Instrument attaches the attribution site. Must happen-before any
// concurrent Lock (it is a plain store); called from constructors.
func (m *Mutex) Instrument(s *Site) { m.site = s }

// Lock acquires the mutex, attributing the acquisition to the site.
// Uncontended cost over sync.Mutex: one failed-then-won TryLock plus one
// atomic add. The clock is read only on the contended slow path.
//
//hcsgc:alloc-free
func (m *Mutex) Lock() {
	s := m.site
	if s == nil {
		m.inner.Lock()
		return
	}
	s.acquisitions.Add(1)
	if m.inner.TryLock() {
		return
	}
	s.contended.Add(1)
	t0 := time.Now()
	m.inner.Lock()
	s.wait.Record(uint64(time.Since(t0)))
}

// TryLock attempts the lock without blocking, counting only successful
// acquisitions (a failed TryLock is the caller's contention-avoidance
// strategy working, not a wait).
//
//hcsgc:alloc-free
func (m *Mutex) TryLock() bool {
	if !m.inner.TryLock() {
		return false
	}
	if s := m.site; s != nil {
		s.acquisitions.Add(1)
	}
	return true
}

// Unlock releases the mutex.
//
//hcsgc:alloc-free
func (m *Mutex) Unlock() { m.inner.Unlock() }

// OpSite counts attempts and retries of one shared-structure atomic
// loop (CAS install, bump-pointer race, queue transfer). A nil *OpSite
// accepts every call as a no-op, so instrumentation sites need no
// enabled checks.
type OpSite struct {
	name    string
	ops     atomic.Uint64
	retries atomic.Uint64
}

// Name returns the op site's registration name.
func (o *OpSite) Name() string {
	if o == nil {
		return ""
	}
	return o.name
}

// Op counts one completed operation (however many retries it took).
//
//hcsgc:alloc-free
func (o *OpSite) Op() {
	if o == nil {
		return
	}
	o.ops.Add(1)
}

// Retry counts one failed attempt that had to loop.
//
//hcsgc:alloc-free
func (o *OpSite) Retry() {
	if o == nil {
		return
	}
	o.retries.Add(1)
}

// Ops returns total completed operations.
func (o *OpSite) Ops() uint64 {
	if o == nil {
		return 0
	}
	return o.ops.Load()
}

// Retries returns total failed attempts.
func (o *OpSite) Retries() uint64 {
	if o == nil {
		return 0
	}
	return o.retries.Load()
}

package contention

import (
	"math"
	"sort"
	"strconv"
	"sync"

	"hcsgc/internal/telemetry"
)

// WorkerTotals is one GC worker's cumulative activity, reported by the
// collector at cycle end. All fields are since-process-start totals; the
// plane differentiates them into per-cycle deltas.
type WorkerTotals struct {
	// Scanned counts objects traced by the worker during marking.
	Scanned uint64
	// Relocated counts objects the worker copied during the drain.
	Relocated uint64
	// Steals counts work chunks the worker fetched from the shared
	// mark pool (work acquired globally rather than from its own local
	// stack).
	Steals uint64
	// BusyCycles is the worker's simulated-memory cycle consumption —
	// virtual time spent doing work rather than parked waiting for it.
	// Zero when the memory model is disabled.
	BusyCycles uint64
}

// CycleDelta summarizes one GC cycle's contention activity: per-cycle
// differences of every cumulative counter the plane tracks, plus the
// worker imbalance coefficient. The collector copies it into
// signals.CycleSignals.
type CycleDelta struct {
	Workers       int
	Imbalance     float64
	Scanned       uint64
	Relocated     uint64
	Steals        uint64
	Acquisitions  uint64
	Contended     uint64
	ContendedFrac float64
	CASOps        uint64
	CASRetries    uint64
	RetryFrac     float64
}

// source bridges a component whose locking cannot adopt contention.Mutex
// (the telemetry registry/recorder would create an import cycle through
// telemetry/latency) but that can report (attempts, contended) totals.
type source struct {
	name          string
	probe         func() (ops, contended uint64)
	prevOps       uint64
	prevContended uint64
}

// Plane owns the registered sites and turns their cumulative counters
// into per-cycle deltas, metrics, Perfetto counter tracks and the
// /contention snapshot. A nil *Plane is the opted-out plane: NewSite and
// NewOpSite return nil, so every instrumentation site degrades to the
// nil no-op path.
type Plane struct {
	// mu orders plane-internal state. Innermost of the runtime's ranked
	// locks: OnCycle runs with collector locks held.
	//
	//hcsgc:lock-order 70
	mu      sync.Mutex
	sites   []*Site
	prev    []siteTotals
	ops     []*OpSite
	prevOps []opTotals
	sources []*source

	workersPrev []WorkerTotals
	cycles      uint64
	last        CycleDelta

	reg *telemetry.Registry
	rec *telemetry.Recorder
}

type siteTotals struct{ acq, contended uint64 }

type opTotals struct{ ops, retries uint64 }

// New builds an empty, enabled plane.
func New() *Plane { return &Plane{} }

// NewSite registers a named lock site. Returns nil (the no-op site) on a
// nil plane. If the name is already registered the existing site is
// returned, so re-wiring a shared plane stays idempotent.
func (p *Plane) NewSite(name string) *Site {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.sites {
		if s.name == name {
			return s
		}
	}
	s := &Site{name: name}
	p.sites = append(p.sites, s)
	p.prev = append(p.prev, siteTotals{})
	if p.reg != nil {
		p.bindSite(s)
	}
	return s
}

// NewOpSite registers a named CAS/atomic-loop site; nil-plane safe and
// idempotent like NewSite.
func (p *Plane) NewOpSite(name string) *OpSite {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, o := range p.ops {
		if o.name == name {
			return o
		}
	}
	o := &OpSite{name: name}
	p.ops = append(p.ops, o)
	p.prevOps = append(p.prevOps, opTotals{})
	return o
}

// AddSource registers (or replaces, by name) an external probe reporting
// cumulative (attempts, contended) for a lock the plane cannot wrap.
func (p *Plane) AddSource(name string, probe func() (ops, contended uint64)) {
	if p == nil || probe == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.sources {
		if s.name == name {
			s.probe = probe
			return
		}
	}
	p.sources = append(p.sources, &source{name: name, probe: probe})
}

// BindTelemetry attaches the metrics registry and event recorder. Wait
// histograms are exported as summaries once per site; counters/gauges
// are resolved lazily per cycle (registration is get-or-create).
func (p *Plane) BindTelemetry(reg *telemetry.Registry, rec *telemetry.Recorder) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reg = reg
	p.rec = rec
	for _, s := range p.sites {
		p.bindSite(s)
	}
}

// bindSite registers the per-site wait summary. Caller holds p.mu.
func (p *Plane) bindSite(s *Site) {
	p.reg.Summary("hcsgc_contention_wait_ns",
		"Wall-clock nanoseconds contended lock acquisitions waited.",
		&s.wait, "site", s.name)
}

// Metric family helps, shared with the telemetrynames fixtures.
const (
	helpAcq       = "Lock acquisitions by site."
	helpContended = "Lock acquisitions that had to block, by site."
	helpCASOps    = "Completed atomic-loop operations by structure."
	helpCASRetry  = "Failed atomic-loop attempts that looped, by structure."
	helpScanned   = "Objects scanned by GC worker."
	helpRelocated = "Objects relocated by GC worker."
	helpSteals    = "Work chunks fetched from the shared mark pool by GC worker."
	helpBusy      = "Simulated busy cycles consumed by GC worker."
	helpImbalance = "Per-cycle GC worker imbalance coefficient (stddev/mean of work)."
)

// OnCycle ingests one GC cycle's worker totals, differentiates every
// cumulative counter into this cycle's delta, updates metrics and
// Perfetto counter tracks, and returns the delta for the signal plane.
// Called once per cycle from the collector with seq the cycle sequence
// number; nil-plane safe (returns the zero delta).
func (p *Plane) OnCycle(seq uint64, workers []WorkerTotals) CycleDelta {
	if p == nil {
		return CycleDelta{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cycles++

	var d CycleDelta

	// Lock sites: per-cycle deltas of cumulative counters.
	for i, s := range p.sites {
		acq, con := s.acquisitions.Load(), s.contended.Load()
		dAcq, dCon := acq-p.prev[i].acq, con-p.prev[i].contended
		p.prev[i] = siteTotals{acq: acq, contended: con}
		d.Acquisitions += dAcq
		d.Contended += dCon
		if p.reg != nil && dAcq > 0 {
			p.reg.Counter("hcsgc_contention_acquisitions_total", helpAcq, "site", s.name).Add(dAcq)
			p.reg.Counter("hcsgc_contention_contended_total", helpContended, "site", s.name).Add(dCon)
		}
	}
	for _, src := range p.sources {
		ops, con := src.probe()
		dOps, dCon := ops-src.prevOps, con-src.prevContended
		src.prevOps, src.prevContended = ops, con
		d.Acquisitions += dOps
		d.Contended += dCon
		if p.reg != nil && dOps > 0 {
			p.reg.Counter("hcsgc_contention_acquisitions_total", helpAcq, "site", src.name).Add(dOps)
			p.reg.Counter("hcsgc_contention_contended_total", helpContended, "site", src.name).Add(dCon)
		}
	}
	if d.Acquisitions > 0 {
		d.ContendedFrac = float64(d.Contended) / float64(d.Acquisitions)
	}

	// CAS loops.
	for i, o := range p.ops {
		ops, ret := o.ops.Load(), o.retries.Load()
		dOps, dRet := ops-p.prevOps[i].ops, ret-p.prevOps[i].retries
		p.prevOps[i] = opTotals{ops: ops, retries: ret}
		d.CASOps += dOps
		d.CASRetries += dRet
		if p.reg != nil && dOps+dRet > 0 {
			p.reg.Counter("hcsgc_contention_cas_ops_total", helpCASOps, "structure", o.name).Add(dOps)
			p.reg.Counter("hcsgc_contention_cas_retries_total", helpCASRetry, "structure", o.name).Add(dRet)
		}
	}
	if d.CASOps > 0 {
		d.RetryFrac = float64(d.CASRetries) / float64(d.CASOps)
	}

	// Worker balance.
	if len(workers) > len(p.workersPrev) {
		p.workersPrev = append(p.workersPrev, make([]WorkerTotals, len(workers)-len(p.workersPrev))...)
	}
	d.Workers = len(workers)
	work := make([]float64, len(workers))
	for i, w := range workers {
		pw := p.workersPrev[i]
		dScan, dReloc := w.Scanned-pw.Scanned, w.Relocated-pw.Relocated
		dSteal, dBusy := w.Steals-pw.Steals, w.BusyCycles-pw.BusyCycles
		p.workersPrev[i] = w
		d.Scanned += dScan
		d.Relocated += dReloc
		d.Steals += dSteal
		// Imbalance is computed over busy virtual cycles when the memory
		// model runs; otherwise over scanned+relocated work units.
		if dBusy > 0 {
			work[i] = float64(dBusy)
		} else {
			work[i] = float64(dScan + dReloc)
		}
		if p.reg != nil {
			id := strconv.Itoa(i)
			p.reg.Counter("hcsgc_worker_scanned_total", helpScanned, "worker", id).Add(dScan)
			p.reg.Counter("hcsgc_worker_relocated_total", helpRelocated, "worker", id).Add(dReloc)
			p.reg.Counter("hcsgc_worker_steals_total", helpSteals, "worker", id).Add(dSteal)
			p.reg.Counter("hcsgc_worker_busy_cycles_total", helpBusy, "worker", id).Add(dBusy)
		}
	}
	d.Imbalance = imbalance(work)
	if p.reg != nil {
		p.reg.Gauge("hcsgc_worker_imbalance", helpImbalance).Set(d.Imbalance)
	}
	if p.rec != nil {
		p.rec.Record(telemetry.EvCounter, telemetry.CounterContentionContended,
			math.Float64bits(float64(d.Contended)), seq)
		p.rec.Record(telemetry.EvCounter, telemetry.CounterContentionCASRetries,
			math.Float64bits(float64(d.CASRetries)), seq)
		p.rec.Record(telemetry.EvCounter, telemetry.CounterWorkerImbalance,
			math.Float64bits(d.Imbalance), seq)
	}
	p.last = d
	return d
}

// imbalance is the coefficient of variation (stddev/mean) of per-worker
// work; 0 for perfectly balanced, empty, or idle cycles.
func imbalance(work []float64) float64 {
	if len(work) == 0 {
		return 0
	}
	var sum float64
	for _, w := range work {
		sum += w
	}
	mean := sum / float64(len(work))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, w := range work {
		dev := w - mean
		ss += dev * dev
	}
	return math.Sqrt(ss/float64(len(work))) / mean
}

// SiteSnapshot is one lock site's cumulative totals for /contention.
type SiteSnapshot struct {
	Name          string  `json:"name"`
	Acquisitions  uint64  `json:"acquisitions"`
	Contended     uint64  `json:"contended"`
	ContendedFrac float64 `json:"contended_frac"`
	WaitP50NS     float64 `json:"wait_p50_ns"`
	WaitP99NS     float64 `json:"wait_p99_ns"`
	WaitMaxNS     uint64  `json:"wait_max_ns"`
}

// OpSnapshot is one atomic-loop site's cumulative totals.
type OpSnapshot struct {
	Name      string  `json:"name"`
	Ops       uint64  `json:"ops"`
	Retries   uint64  `json:"retries"`
	RetryFrac float64 `json:"retry_frac"`
}

// WorkerSnapshot is one GC worker's cumulative totals as of the last
// completed cycle.
type WorkerSnapshot struct {
	ID         int    `json:"id"`
	Scanned    uint64 `json:"scanned"`
	Relocated  uint64 `json:"relocated"`
	Steals     uint64 `json:"steals"`
	BusyCycles uint64 `json:"busy_cycles"`
}

// Snapshot is the /contention endpoint payload: the ranked serialization
// list (sites sorted by contended acquisitions, descending) plus CAS and
// worker breakdowns and the last cycle's imbalance coefficient.
type Snapshot struct {
	Cycles    uint64           `json:"cycles"`
	Sites     []SiteSnapshot   `json:"sites"`
	CAS       []OpSnapshot     `json:"cas"`
	Workers   []WorkerSnapshot `json:"workers"`
	Imbalance float64          `json:"imbalance"`
}

// Snapshot captures cumulative totals. Nil-plane safe (returns the zero
// snapshot). Sites are ranked most-contended first, ties broken by
// acquisitions then name so the order is deterministic.
func (p *Plane) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	snap := Snapshot{Cycles: p.cycles, Imbalance: p.last.Imbalance}
	for _, s := range p.sites {
		ss := SiteSnapshot{
			Name:         s.name,
			Acquisitions: s.acquisitions.Load(),
			Contended:    s.contended.Load(),
			WaitP50NS:    s.wait.Quantile(0.50),
			WaitP99NS:    s.wait.Quantile(0.99),
			WaitMaxNS:    s.wait.Max(),
		}
		if ss.Acquisitions > 0 {
			ss.ContendedFrac = float64(ss.Contended) / float64(ss.Acquisitions)
		}
		snap.Sites = append(snap.Sites, ss)
	}
	for _, src := range p.sources {
		ops, con := src.probe()
		ss := SiteSnapshot{Name: src.name, Acquisitions: ops, Contended: con}
		if ops > 0 {
			ss.ContendedFrac = float64(con) / float64(ops)
		}
		snap.Sites = append(snap.Sites, ss)
	}
	sort.Slice(snap.Sites, func(i, j int) bool {
		a, b := snap.Sites[i], snap.Sites[j]
		if a.Contended != b.Contended {
			return a.Contended > b.Contended
		}
		if a.Acquisitions != b.Acquisitions {
			return a.Acquisitions > b.Acquisitions
		}
		return a.Name < b.Name
	})
	for _, o := range p.ops {
		os := OpSnapshot{Name: o.name, Ops: o.ops.Load(), Retries: o.retries.Load()}
		if os.Ops > 0 {
			os.RetryFrac = float64(os.Retries) / float64(os.Ops)
		}
		snap.CAS = append(snap.CAS, os)
	}
	sort.Slice(snap.CAS, func(i, j int) bool {
		a, b := snap.CAS[i], snap.CAS[j]
		if a.Retries != b.Retries {
			return a.Retries > b.Retries
		}
		return a.Name < b.Name
	})
	for i, w := range p.workersPrev {
		snap.Workers = append(snap.Workers, WorkerSnapshot{
			ID: i, Scanned: w.Scanned, Relocated: w.Relocated,
			Steals: w.Steals, BusyCycles: w.BusyCycles,
		})
	}
	return snap
}

// Last returns the most recent cycle's delta (zero before the first
// cycle). Nil-plane safe.
func (p *Plane) Last() CycleDelta {
	if p == nil {
		return CycleDelta{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.last
}

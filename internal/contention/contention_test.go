package contention

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"hcsgc/internal/telemetry"
)

// TestMutexUncontended: a single-threaded lock/unlock sequence counts
// acquisitions only — the contended counter and the wait histogram stay
// untouched, which is what makes the fast path two atomic ops.
func TestMutexUncontended(t *testing.T) {
	p := New()
	s := p.NewSite("test.mu")
	var mu Mutex
	mu.Instrument(s)
	for i := 0; i < 100; i++ {
		mu.Lock()
		mu.Unlock()
	}
	if got := s.Acquisitions(); got != 100 {
		t.Fatalf("acquisitions = %d, want 100", got)
	}
	if got := s.Contended(); got != 0 {
		t.Fatalf("contended = %d, want 0", got)
	}
	if got := s.Wait().Count(); got != 0 {
		t.Fatalf("wait samples = %d, want 0", got)
	}
}

// TestMutexContended forces one deterministic contended acquisition:
// the lock is held while a second goroutine attempts it, and the
// contended counter (which increments before the blocking wait) lets
// the holder observe the collision before releasing. Each contended
// acquisition must record exactly one wait sample.
func TestMutexContended(t *testing.T) {
	p := New()
	s := p.NewSite("test.mu")
	var mu Mutex
	mu.Instrument(s)
	mu.Lock()
	done := make(chan struct{})
	go func() {
		mu.Lock() // collides with the held lock
		mu.Unlock()
		close(done)
	}()
	// The waiter bumps the contended counter before parking, so polling
	// it is a race-free rendezvous.
	for s.Contended() == 0 {
		runtime.Gosched()
	}
	mu.Unlock()
	<-done
	if got := s.Acquisitions(); got != 2 {
		t.Fatalf("acquisitions = %d, want 2", got)
	}
	if got := s.Contended(); got != 1 {
		t.Fatalf("contended = %d, want 1", got)
	}
	if got := s.Wait().Count(); got != 1 {
		t.Fatalf("wait samples = %d, want 1 per contended acquisition", got)
	}
}

// TestMutexHammer is the mutual-exclusion soak the race detector
// watches: many goroutines on one instrumented lock, every acquisition
// counted, wait samples never exceeding the contended subset.
func TestMutexHammer(t *testing.T) {
	p := New()
	s := p.NewSite("test.mu")
	var mu Mutex
	mu.Instrument(s)
	const goroutines, iters = 8, 2000
	var wg sync.WaitGroup
	shared := 0
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				mu.Lock()
				shared++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if shared != goroutines*iters {
		t.Fatalf("shared = %d, want %d (mutual exclusion broken)", shared, goroutines*iters)
	}
	if got := s.Acquisitions(); got != goroutines*iters {
		t.Fatalf("acquisitions = %d, want %d", got, goroutines*iters)
	}
	if got := s.Wait().Count(); got != s.Contended() {
		t.Fatalf("wait samples = %d, contended = %d — each contended acquisition must record one wait", got, s.Contended())
	}
}

// TestMutexTryLock: a successful TryLock is an acquisition, a failed one
// is neither an acquisition nor a contended event (the caller didn't
// wait).
func TestMutexTryLock(t *testing.T) {
	p := New()
	s := p.NewSite("test.mu")
	var mu Mutex
	mu.Instrument(s)
	if !mu.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if mu.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	mu.Unlock()
	if got := s.Acquisitions(); got != 1 {
		t.Fatalf("acquisitions = %d, want 1 (failed TryLock must not count)", got)
	}
	if got := s.Contended(); got != 0 {
		t.Fatalf("contended = %d, want 0", got)
	}
}

// TestMutexUninstrumented: a wrapper with no site behaves as a bare
// sync.Mutex — the disabled plane compiles down to one nil check.
func TestMutexUninstrumented(t *testing.T) {
	var mu Mutex
	mu.Lock()
	if mu.TryLock() {
		t.Fatal("TryLock on held uninstrumented mutex succeeded")
	}
	mu.Unlock()
	if !mu.TryLock() {
		t.Fatal("TryLock on free uninstrumented mutex failed")
	}
	mu.Unlock()
}

// TestOpSite: ops and retries accumulate independently and nil-safely.
func TestOpSite(t *testing.T) {
	p := New()
	o := p.NewOpSite("test.cas")
	for i := 0; i < 5; i++ {
		o.Op()
	}
	o.Retry()
	if o.Ops() != 5 || o.Retries() != 1 {
		t.Fatalf("ops/retries = %d/%d, want 5/1", o.Ops(), o.Retries())
	}
	var nils *OpSite
	nils.Op()
	nils.Retry()
	if nils.Ops() != 0 || nils.Retries() != 0 {
		t.Fatal("nil OpSite must read zero")
	}
}

// TestPlaneNilSafe: every constructor and probe on a nil plane is a
// no-op, and the sites it hands out are nil (one-branch disabled path).
func TestPlaneNilSafe(t *testing.T) {
	var p *Plane
	if s := p.NewSite("x"); s != nil {
		t.Fatal("nil plane returned a live site")
	}
	if o := p.NewOpSite("x"); o != nil {
		t.Fatal("nil plane returned a live op site")
	}
	p.AddSource("x", func() (uint64, uint64) { return 0, 0 })
	p.BindTelemetry(telemetry.NewRegistry(), nil)
	if d := p.OnCycle(1, nil); d.Workers != 0 {
		t.Fatal("nil plane OnCycle not zero")
	}
	if s := p.Snapshot(); len(s.Sites) != 0 || s.Cycles != 0 {
		t.Fatal("nil plane snapshot not empty")
	}
	var mu Mutex
	mu.Instrument(p.NewSite("x")) // nil site: must stay a bare mutex
	mu.Lock()
	mu.Unlock()
}

// TestPlaneSiteIdempotent: registering the same name twice returns the
// same site, so several stripes (or several runtimes' constructors) can
// share one attribution bucket.
func TestPlaneSiteIdempotent(t *testing.T) {
	p := New()
	a, b := p.NewSite("same"), p.NewSite("same")
	if a != b {
		t.Fatal("NewSite not idempotent by name")
	}
	if x, y := p.NewOpSite("op"), p.NewOpSite("op"); x != y {
		t.Fatal("NewOpSite not idempotent by name")
	}
}

// TestSnapshotRanking: sites are ranked by contended count descending —
// the "what do I shard next" serialization list must lead with the
// worst offender.
func TestSnapshotRanking(t *testing.T) {
	p := New()
	cold := p.NewSite("cold")
	warm := p.NewSite("warm")
	hot := p.NewSite("hot")
	for i := 0; i < 10; i++ {
		hot.acquisitions.Add(1)
		hot.contended.Add(1)
	}
	for i := 0; i < 3; i++ {
		warm.acquisitions.Add(1)
	}
	warm.contended.Add(2)
	cold.acquisitions.Add(50)

	s := p.Snapshot()
	want := []string{"hot", "warm", "cold"}
	if len(s.Sites) != len(want) {
		t.Fatalf("sites = %d, want %d", len(s.Sites), len(want))
	}
	for i, name := range want {
		if s.Sites[i].Name != name {
			t.Fatalf("rank %d = %q, want %q (full order %+v)", i, s.Sites[i].Name, name, s.Sites)
		}
	}
	if got := s.Sites[0].ContendedFrac; got != 1.0 {
		t.Fatalf("hot contended frac = %g, want 1", got)
	}
}

// TestOnCycleDeltas: per-cycle deltas are differences against the
// previous cycle, not cumulative totals, and the contended fraction is
// derived from the delta alone.
func TestOnCycleDeltas(t *testing.T) {
	p := New()
	s := p.NewSite("mu")
	o := p.NewOpSite("cas")

	s.acquisitions.Add(10)
	s.contended.Add(2)
	o.ops.Add(100)
	o.retries.Add(5)
	d1 := p.OnCycle(1, nil)
	if d1.Acquisitions != 10 || d1.Contended != 2 || d1.CASOps != 100 || d1.CASRetries != 5 {
		t.Fatalf("first delta = %+v", d1)
	}
	if math.Abs(d1.ContendedFrac-0.2) > 1e-12 {
		t.Fatalf("contended frac = %g, want 0.2", d1.ContendedFrac)
	}

	s.acquisitions.Add(5)
	d2 := p.OnCycle(2, nil)
	if d2.Acquisitions != 5 || d2.Contended != 0 || d2.CASOps != 0 {
		t.Fatalf("second delta not differenced: %+v", d2)
	}
	if got := p.Snapshot().Cycles; got != 2 {
		t.Fatalf("cycles = %d, want 2", got)
	}
}

// TestOnCycleSources: external self-reporting sources (the telemetry
// registry and recorder, which cannot adopt contention.Mutex without an
// import cycle) are differenced like first-class sites.
func TestOnCycleSources(t *testing.T) {
	p := New()
	var ops, con uint64
	p.AddSource("ext", func() (uint64, uint64) { return ops, con })
	ops, con = 40, 4
	d := p.OnCycle(1, nil)
	if d.Acquisitions != 40 || d.Contended != 4 {
		t.Fatalf("source delta = %+v", d)
	}
	ops, con = 50, 4
	d = p.OnCycle(2, nil)
	if d.Acquisitions != 10 || d.Contended != 0 {
		t.Fatalf("source second delta = %+v", d)
	}
	snap := p.Snapshot()
	found := false
	for _, site := range snap.Sites {
		if site.Name == "ext" && site.Acquisitions == 50 {
			found = true
		}
	}
	if !found {
		t.Fatalf("source missing from snapshot: %+v", snap.Sites)
	}
}

// TestOnCycleWorkerBalance pins the imbalance coefficient: per-worker
// work is the busy-cycle delta, and the coefficient is stddev/mean of
// the per-worker shares (0 = perfectly balanced).
func TestOnCycleWorkerBalance(t *testing.T) {
	p := New()
	p.OnCycle(1, []WorkerTotals{{BusyCycles: 0}, {BusyCycles: 0}})
	// Cycle 2: worker 0 did 300 cycles of work, worker 1 did 100.
	d := p.OnCycle(2, []WorkerTotals{
		{Scanned: 30, BusyCycles: 300},
		{Scanned: 10, BusyCycles: 100},
	})
	if d.Workers != 2 || d.Scanned != 40 {
		t.Fatalf("delta = %+v", d)
	}
	// work = {300, 100}: mean 200, stddev 100 -> coefficient 0.5.
	if math.Abs(d.Imbalance-0.5) > 1e-12 {
		t.Fatalf("imbalance = %g, want 0.5", d.Imbalance)
	}

	// Balanced cycle: both advance equally -> 0.
	d = p.OnCycle(3, []WorkerTotals{
		{Scanned: 40, BusyCycles: 500},
		{Scanned: 20, BusyCycles: 300},
	})
	if d.Imbalance != 0 {
		t.Fatalf("balanced imbalance = %g, want 0", d.Imbalance)
	}

	// No memory model (BusyCycles flat): falls back to scanned+relocated
	// work units.
	d = p.OnCycle(4, []WorkerTotals{
		{Scanned: 70, BusyCycles: 500},
		{Scanned: 30, BusyCycles: 300},
	})
	// scanned deltas {30, 10} -> same 0.5 shape.
	if math.Abs(d.Imbalance-0.5) > 1e-12 {
		t.Fatalf("fallback imbalance = %g, want 0.5", d.Imbalance)
	}
}

// TestImbalanceEdgeCases: fewer than two workers or zero total work
// reads as perfectly balanced, never NaN.
func TestImbalanceEdgeCases(t *testing.T) {
	for _, work := range [][]float64{nil, {5}, {0, 0, 0}} {
		if got := imbalance(work); got != 0 {
			t.Fatalf("imbalance(%v) = %g, want 0", work, got)
		}
	}
}

// TestBindTelemetry: the hcsgc_contention_* and hcsgc_worker_* families
// land in the Prometheus exposition with per-site / per-worker labels,
// and the per-cycle counter tracks reach the Perfetto trace.
func TestBindTelemetry(t *testing.T) {
	p := New()
	s := p.NewSite("core.cycleMu")
	o := p.NewOpSite("heap.pageBump")
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(1, 256)
	p.BindTelemetry(reg, rec)

	s.acquisitions.Add(7)
	s.contended.Add(3)
	s.wait.Record(1000)
	o.ops.Add(20)
	o.retries.Add(2)
	p.OnCycle(1, []WorkerTotals{{Scanned: 5, BusyCycles: 100}, {Scanned: 5, BusyCycles: 100}})

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`hcsgc_contention_acquisitions_total{site="core.cycleMu"} 7`,
		`hcsgc_contention_contended_total{site="core.cycleMu"} 3`,
		`hcsgc_contention_cas_ops_total{structure="heap.pageBump"} 20`,
		`hcsgc_contention_cas_retries_total{structure="heap.pageBump"} 2`,
		`hcsgc_contention_wait_ns{site="core.cycleMu",quantile="0.99"}`,
		`hcsgc_worker_scanned_total{worker="0"} 5`,
		`hcsgc_worker_busy_cycles_total{worker="1"} 100`,
		`hcsgc_worker_imbalance 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	tf := telemetry.BuildTrace(rec.Snapshot())
	seen := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "C" {
			seen[ev.Name] = true
			if ev.Cat != "contention" {
				t.Errorf("counter %q category = %q, want contention", ev.Name, ev.Cat)
			}
		}
	}
	for _, name := range []string{
		"contention_contended_acq", "contention_cas_retries", "contention_worker_imbalance",
	} {
		if !seen[name] {
			t.Errorf("Perfetto counter track %q missing (got %v)", name, seen)
		}
	}
}

// BenchmarkMutex prices the wrapper against a bare sync.Mutex:
// uncontended lock/unlock with the plane off (nil site), on
// (instrumented), and the raw standard-library baseline. The
// instrumented fast path must stay within a handful of nanoseconds of
// raw — one TryLock plus one atomic add.
func BenchmarkMutex(b *testing.B) {
	b.Run("sync", func(b *testing.B) {
		var mu sync.Mutex
		for i := 0; i < b.N; i++ {
			mu.Lock()
			mu.Unlock()
		}
	})
	b.Run("wrapper-off", func(b *testing.B) {
		var mu Mutex
		for i := 0; i < b.N; i++ {
			mu.Lock()
			mu.Unlock()
		}
	})
	b.Run("wrapper-on", func(b *testing.B) {
		p := New()
		var mu Mutex
		mu.Instrument(p.NewSite("bench.mu"))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mu.Lock()
			mu.Unlock()
		}
	})
}

// TestContentionEndpoint: the /contention endpoint serves the plane's
// ranked snapshot as JSON — the golden shape downstream tooling (the CI
// smoke step, dashboards) parses. Before a source is installed the
// endpoint answers null, matching the sink's other pull endpoints.
func TestContentionEndpoint(t *testing.T) {
	sink := telemetry.NewSink()
	srv := httptest.NewServer(sink.Handler())
	defer srv.Close()

	get := func() string {
		resp, err := http.Get(srv.URL + "/contention")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/contention status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("/contention content type %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if got := strings.TrimSpace(get()); got != "null" {
		t.Fatalf("/contention without a source = %q, want null", got)
	}

	p := New()
	hot := p.NewSite("core.cycleMu")
	hot.acquisitions.Add(10)
	hot.contended.Add(4)
	cold := p.NewSite("heap.mu")
	cold.acquisitions.Add(2)
	fwd := p.NewOpSite("heap.forwarding")
	for i := 0; i < 2; i++ {
		fwd.Op()
	}
	for i := 0; i < 4; i++ {
		fwd.Retry()
	}
	p.OnCycle(1, []WorkerTotals{
		{Scanned: 5, Relocated: 1, BusyCycles: 100},
		{Scanned: 3, BusyCycles: 100},
	})
	sink.SetContention(func() any { return p.Snapshot() })

	var snap Snapshot
	if err := json.Unmarshal([]byte(get()), &snap); err != nil {
		t.Fatalf("/contention does not parse: %v", err)
	}
	if snap.Cycles != 1 {
		t.Errorf("cycles = %d, want 1", snap.Cycles)
	}
	if len(snap.Sites) != 2 || snap.Sites[0].Name != "core.cycleMu" {
		t.Errorf("ranked sites = %+v, want core.cycleMu first", snap.Sites)
	}
	if snap.Sites[0].Contended != 4 || snap.Sites[0].ContendedFrac != 0.4 {
		t.Errorf("top site = %+v, want contended 4 (40%%)", snap.Sites[0])
	}
	if len(snap.CAS) != 1 || snap.CAS[0].Name != "heap.forwarding" || snap.CAS[0].Retries != 4 {
		t.Errorf("CAS table = %+v", snap.CAS)
	}
	if len(snap.Workers) != 2 || snap.Workers[0].Scanned != 5 {
		t.Errorf("workers = %+v", snap.Workers)
	}
}

// Package telemetry is the live observability subsystem for the HCSGC
// runtime: a low-overhead sharded ring-buffer event recorder, a metrics
// registry with Prometheus text exposition and JSON snapshots, a Chrome
// trace_event exporter (renders in about://tracing and Perfetto), and an
// opt-in HTTP endpoint serving all three.
//
// The package mirrors what ZGC exposes via JFR events and -Xlog:gc*
// phase timings: GC phase begin/end, STW pause enter/exit, page
// lifecycle, relocation-race outcomes, and safepoint-wait latencies.
//
// Everything is nil-safe by design: a nil *Recorder, *Counter, *Gauge or
// *Histogram accepts all method calls as cheap no-ops (a single
// predictable branch), so instrumentation sites never need their own
// enabled checks.
package telemetry

// EventKind discriminates ring-buffer events.
type EventKind uint8

// The event kinds captured by the runtime.
const (
	// EvSpanBegin/EvSpanEnd bracket a named span (GC phase or pause).
	// Arg is the SpanID; A is the trace track (tid) the span belongs to.
	EvSpanBegin EventKind = iota + 1
	EvSpanEnd
	// EvPageAlloc records a committed page. Arg is the page class,
	// A the page start address, B the page size in bytes.
	EvPageAlloc
	// EvPageECSelect records a page entering the evacuation-candidate
	// set. Arg is the class, A the start address, B the live bytes.
	EvPageECSelect
	// EvPageEvacuated records the last live object leaving a page.
	// Arg is the class, A the start address.
	EvPageEvacuated
	// EvPageFreed records a page being recycled. Arg is the class,
	// A the start address, B the page size in bytes.
	EvPageFreed
	// EvRelocWin records a won relocation race. Arg is the winner
	// (RelocByGC or RelocByMutator), A the old address, B the object size.
	EvRelocWin
	// EvSafepointWait records one stop-the-world handshake. A is the
	// wall-clock wait in nanoseconds until all mutators were stopped,
	// B the SpanID of the pause that requested it.
	EvSafepointWait
	// EvCounter records a named time-series sample (rendered as a
	// Perfetto counter track). Arg is the CounterID, A the value as
	// math.Float64bits, B the GC cycle sequence it belongs to.
	EvCounter
)

// String names the event kind for exporters.
func (k EventKind) String() string {
	switch k {
	case EvSpanBegin:
		return "span_begin"
	case EvSpanEnd:
		return "span_end"
	case EvPageAlloc:
		return "page_alloc"
	case EvPageECSelect:
		return "page_ec_select"
	case EvPageEvacuated:
		return "page_evacuated"
	case EvPageFreed:
		return "page_freed"
	case EvRelocWin:
		return "reloc_win"
	case EvSafepointWait:
		return "safepoint_wait"
	case EvCounter:
		return "counter"
	default:
		return "unknown"
	}
}

// CounterID names an EvCounter series. The locality profiler and the
// latency tracker each emit one sample per counter per GC cycle.
const (
	CounterStreamCoverage uint32 = iota + 1
	CounterSegPurity
	CounterPageEntropy
	CounterReuseP50
	// The latency tracker's MMU ladder (default windows 1/5/20/100
	// kcycles; CounterMMU1k..CounterMMU100k must stay contiguous) and the
	// per-cycle mutator-utilization timeline.
	CounterMMU1k
	CounterMMU5k
	CounterMMU20k
	CounterMMU100k
	CounterUtilization
	// The unified signal plane's per-cycle derived signals
	// (CounterSignalAllocRate..CounterSignalColdFrac must stay
	// contiguous).
	CounterSignalAllocRate
	CounterSignalStallP99
	CounterSignalHeapUsed
	CounterSignalColdFrac
	// The contention plane's per-cycle counters
	// (CounterContentionContended..CounterWorkerImbalance must stay
	// contiguous).
	CounterContentionContended
	CounterContentionCASRetries
	CounterWorkerImbalance
)

// CounterName renders a CounterID as its Perfetto track name.
func CounterName(id uint32) string {
	switch id {
	case CounterStreamCoverage:
		return "locality_stream_coverage"
	case CounterSegPurity:
		return "locality_seg_purity"
	case CounterPageEntropy:
		return "locality_page_entropy_bits"
	case CounterReuseP50:
		return "locality_reuse_p50_lines"
	case CounterMMU1k:
		return "latency_mmu_1k"
	case CounterMMU5k:
		return "latency_mmu_5k"
	case CounterMMU20k:
		return "latency_mmu_20k"
	case CounterMMU100k:
		return "latency_mmu_100k"
	case CounterUtilization:
		return "latency_mutator_utilization"
	case CounterSignalAllocRate:
		return "signal_alloc_kb_per_kcycle"
	case CounterSignalStallP99:
		return "signal_stall_p99_cycles"
	case CounterSignalHeapUsed:
		return "signal_heap_used_pct"
	case CounterSignalColdFrac:
		return "signal_cold_frac"
	case CounterContentionContended:
		return "contention_contended_acq"
	case CounterContentionCASRetries:
		return "contention_cas_retries"
	case CounterWorkerImbalance:
		return "contention_worker_imbalance"
	default:
		return "counter"
	}
}

// counterCat is the trace category of an EvCounter series.
func counterCat(id uint32) string {
	if id >= CounterContentionContended && id <= CounterWorkerImbalance {
		return "contention"
	}
	if id >= CounterSignalAllocRate && id <= CounterSignalColdFrac {
		return "signals"
	}
	if id >= CounterMMU1k && id <= CounterUtilization {
		return "latency"
	}
	return "locality"
}

// Relocation-race winners (EvRelocWin Arg).
const (
	RelocByGC      uint32 = 0
	RelocByMutator uint32 = 1
)

// SpanID identifies a named GC span for phase/pause events.
type SpanID uint32

// The spans the collector emits. Pauses and phases share the namespace
// so one trace track renders the full cycle timeline.
const (
	SpanCycle SpanID = iota + 1
	SpanMark
	SpanECSelect
	SpanRelocate
	SpanPause1
	SpanPause2
	SpanPause3
)

// String names the span as it appears in trace output.
func (s SpanID) String() string {
	switch s {
	case SpanCycle:
		return "cycle"
	case SpanMark:
		return "mark"
	case SpanECSelect:
		return "ec_select"
	case SpanRelocate:
		return "relocate"
	case SpanPause1:
		return "stw1"
	case SpanPause2:
		return "stw2"
	case SpanPause3:
		return "stw3"
	default:
		return "span"
	}
}

// Event is one fixed-size ring-buffer record. A and B are kind-specific
// payloads (see the EventKind constants).
type Event struct {
	// Seq is the recorder-wide ordering: clocks can tie within a
	// nanosecond, so exporters order begin/end pairs by Seq instead.
	Seq uint64
	// TimeNS is the wall-clock timestamp in Unix nanoseconds.
	TimeNS int64
	Kind   EventKind
	// Arg is the kind-specific small argument (span id, page class, who).
	Arg uint32
	// A and B are kind-specific payloads.
	A, B uint64
}

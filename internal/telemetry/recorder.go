package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder default sizing: shard count must be a power of two.
const (
	defaultShards       = 8
	defaultShardEvents  = 4096
	shardSelectionPrime = 0x9E3779B97F4A7C15
)

// shard is one independent ring of events. The mutex is only ever
// TryLock-ed by writers so a recording site never blocks a mutator or GC
// worker; contention is converted into the drop counter instead.
type shard struct {
	mu  sync.Mutex
	buf []Event
	// next is the total number of events ever written to this shard; the
	// ring slot is next % len(buf), so old events are overwritten.
	next uint64
	// pad keeps shards on separate cache lines.
	_ [40]byte
}

// Recorder is the low-overhead event sink: a fixed set of fixed-size
// per-shard ring buffers. Writers pick a shard by hashing their payload
// and timestamp, try-lock it, and either write one slot or bump the drop
// counter — there is no path that blocks.
//
// A nil *Recorder accepts all calls as no-ops (one branch), which is how
// disabled telemetry is compiled out of the runtime's hot paths.
type Recorder struct {
	shards []shard
	mask   uint64
	drops  atomic.Uint64
	// seq hands out the recorder-wide event order (see Event.Seq).
	seq atomic.Uint64
}

// NewRecorder builds a recorder with the given shard count (rounded up
// to a power of two) and per-shard capacity. Zero values select the
// defaults (8 shards x 4096 events).
func NewRecorder(shards, perShard int) *Recorder {
	if shards <= 0 {
		shards = defaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if perShard <= 0 {
		perShard = defaultShardEvents
	}
	r := &Recorder{shards: make([]shard, n), mask: uint64(n - 1)}
	for i := range r.shards {
		r.shards[i].buf = make([]Event, perShard)
	}
	return r
}

// Record appends one event. Nil-safe; never blocks: under shard
// contention the event is dropped and counted instead.
func (r *Recorder) Record(kind EventKind, arg uint32, a, b uint64) {
	if r == nil {
		return
	}
	now := time.Now().UnixNano()
	s := &r.shards[(a*shardSelectionPrime^uint64(now))&r.mask]
	if !s.mu.TryLock() {
		r.drops.Add(1)
		return
	}
	ev := Event{Seq: r.seq.Add(1), TimeNS: now, Kind: kind, Arg: arg, A: a, B: b}
	s.buf[s.next%uint64(len(s.buf))] = ev
	s.next++
	s.mu.Unlock()
}

// BeginSpan records the start of a named span on trace track tid.
func (r *Recorder) BeginSpan(id SpanID, tid uint32) {
	r.Record(EvSpanBegin, uint32(id), uint64(tid), 0)
}

// EndSpan records the end of a named span on trace track tid.
func (r *Recorder) EndSpan(id SpanID, tid uint32) {
	r.Record(EvSpanEnd, uint32(id), uint64(tid), 0)
}

// MuStats reports cumulative record attempts and the subset that lost
// the shard TryLock (the recorder's contention shows up as drops, not
// waits) for the contention plane.
func (r *Recorder) MuStats() (attempts, contended uint64) {
	if r == nil {
		return 0, 0
	}
	d := r.drops.Load()
	return r.seq.Load() + d, d
}

// Dropped returns the number of events lost to shard contention.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.drops.Load()
}

// Overwritten returns the number of events lost to ring wrap-around.
func (r *Recorder) Overwritten() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		if size := uint64(len(s.buf)); s.next > size {
			n += s.next - size
		}
		s.mu.Unlock()
	}
	return n
}

// Snapshot copies out the currently retained events, oldest first.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n := s.next
		if size := uint64(len(s.buf)); n > size {
			n = size
		}
		for j := uint64(0); j < n; j++ {
			out = append(out, s.buf[j])
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Reset discards all retained events and zeroes the drop counter.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		s.next = 0
		s.mu.Unlock()
	}
	r.drops.Store(0)
}

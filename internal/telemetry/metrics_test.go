package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNilMetricsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Add(5)
	c.Inc()
	g.Set(1.5)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics must read as zero")
	}
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Error("nil registry must hand out nil metrics")
	}
	r.WritePrometheus(&strings.Builder{})
}

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hcsgc_test_total", "help", "who", "gc")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	if again := reg.Counter("hcsgc_test_total", "help", "who", "gc"); again != c {
		t.Fatal("same name+labels must return the same counter")
	}
	g := reg.Gauge("hcsgc_test_gauge", "help")
	g.Set(0.25)
	if g.Value() != 0.25 {
		t.Fatalf("gauge = %v", g.Value())
	}
	h := reg.Histogram("hcsgc_test_hist", "help", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 556.5 {
		t.Fatalf("hist count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hcsgc_objs_total", "Objects.", "who", "mutator").Add(7)
	reg.Counter("hcsgc_objs_total", "Objects.", "who", "gc").Add(2)
	reg.Gauge("hcsgc_density", "Density.").Set(0.5)
	h := reg.Histogram("hcsgc_pause", "Pauses.", []float64{10, 100}, "phase", "stw1")
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE hcsgc_objs_total counter",
		`hcsgc_objs_total{who="gc"} 2`,
		`hcsgc_objs_total{who="mutator"} 7`,
		"# TYPE hcsgc_density gauge",
		"hcsgc_density 0.5",
		"# TYPE hcsgc_pause histogram",
		`hcsgc_pause_bucket{phase="stw1",le="10"} 1`,
		`hcsgc_pause_bucket{phase="stw1",le="100"} 2`,
		`hcsgc_pause_bucket{phase="stw1",le="+Inf"} 3`,
		`hcsgc_pause_sum{phase="stw1"} 5055`,
		`hcsgc_pause_count{phase="stw1"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Each family header must appear exactly once even with many series.
	if strings.Count(out, "# TYPE hcsgc_objs_total") != 1 {
		t.Error("family TYPE header duplicated")
	}
}

func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hcsgc_cycles_total", "Cycles.").Add(3)
	reg.Histogram("hcsgc_wait", "Waits.", []float64{1}).Observe(2)
	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var fams []struct {
		Name   string `json:"name"`
		Type   string `json:"type"`
		Series []struct {
			Value   any               `json:"value"`
			Buckets map[string]uint64 `json:"buckets"`
			Count   *uint64           `json:"count"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(b.String()), &fams); err != nil {
		t.Fatalf("JSON snapshot does not parse: %v\n%s", err, b.String())
	}
	if len(fams) != 2 || fams[0].Name != "hcsgc_cycles_total" {
		t.Fatalf("unexpected families: %+v", fams)
	}
	if v, ok := fams[0].Series[0].Value.(float64); !ok || v != 3 {
		t.Fatalf("counter value = %v", fams[0].Series[0].Value)
	}
	if fams[1].Series[0].Buckets["+Inf"] != 1 || *fams[1].Series[0].Count != 1 {
		t.Fatalf("histogram snapshot wrong: %+v", fams[1].Series[0])
	}
}

// fakeQuantiles is a canned QuantileSource for exposition tests.
type fakeQuantiles struct {
	n   uint64
	sum float64
	q   map[float64]float64
}

func (f fakeQuantiles) Count() uint64              { return f.n }
func (f fakeQuantiles) Sum() float64               { return f.sum }
func (f fakeQuantiles) Quantile(q float64) float64 { return f.q[q] }

func TestWritePrometheusSummary(t *testing.T) {
	reg := NewRegistry()
	src := fakeQuantiles{n: 10, sum: 1234, q: map[float64]float64{
		0.5: 5, 0.9: 9, 0.99: 42, 0.999: 99,
	}}
	reg.Summary("hcsgc_pausex_cycles", "Pause summary.", src, "phase", "stw1")
	reg.Summary("hcsgc_stallx_cycles", "Stall summary.", src)

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE hcsgc_pausex_cycles summary",
		`hcsgc_pausex_cycles{phase="stw1",quantile="0.5"} 5`,
		`hcsgc_pausex_cycles{phase="stw1",quantile="0.99"} 42`,
		`hcsgc_pausex_cycles{phase="stw1",quantile="0.999"} 99`,
		`hcsgc_pausex_cycles_sum{phase="stw1"} 1234`,
		`hcsgc_pausex_cycles_count{phase="stw1"} 10`,
		"# TYPE hcsgc_stallx_cycles summary",
		`hcsgc_stallx_cycles{quantile="0.9"} 9`,
		"hcsgc_stallx_cycles_count 10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryReRegisterAndJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Summary("hcsgc_sumx", "help", fakeQuantiles{n: 1, q: map[float64]float64{0.5: 1}})
	// Re-registration re-points the series at the latest source.
	reg.Summary("hcsgc_sumx", "help", fakeQuantiles{n: 2, sum: 7, q: map[float64]float64{0.5: 3}})

	var b strings.Builder
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), `hcsgc_sumx{quantile="0.5"} 3`) {
		t.Errorf("latest source must win:\n%s", b.String())
	}

	var js strings.Builder
	if err := reg.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var fams []struct {
		Name   string `json:"name"`
		Type   string `json:"type"`
		Series []struct {
			Quantiles map[string]float64 `json:"quantiles"`
			Count     *uint64            `json:"count"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(js.String()), &fams); err != nil {
		t.Fatalf("JSON: %v\n%s", err, js.String())
	}
	if len(fams) != 1 || fams[0].Type != "summary" {
		t.Fatalf("families = %+v", fams)
	}
	s := fams[0].Series[0]
	if s.Quantiles["0.5"] != 3 || s.Count == nil || *s.Count != 2 {
		t.Fatalf("summary series = %+v", s)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(100, 10, 3)
	want := []float64{100, 1000, 10000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNilSinkIsSafe(t *testing.T) {
	var s *Sink
	if s.Recorder() != nil || s.Metrics() != nil {
		t.Error("nil sink must hand out nil components")
	}
	s.SetGCLog(func(io.Writer) {})
	s.Recorder().Record(EvPageAlloc, 0, 0, 0)
	s.Metrics().Counter("x", "").Inc()
}

func TestSinkEndpoints(t *testing.T) {
	sink := NewSink()
	sink.Metrics().Counter("hcsgc_gc_cycles_total", "Cycles.").Add(2)
	sink.Recorder().BeginSpan(SpanMark, 1)
	sink.Recorder().EndSpan(SpanMark, 1)
	sink.SetGCLog(func(w io.Writer) { io.WriteString(w, "[gc] hello\n") })

	srv := httptest.NewServer(sink.Handler())
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.Contains(metrics, "hcsgc_gc_cycles_total 2") {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, "hcsgc_telemetry_dropped_events") {
		t.Errorf("/metrics missing loss gauges:\n%s", metrics)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}

	jsonBody, _ := get("/metrics.json")
	var fams []map[string]any
	if err := json.Unmarshal([]byte(jsonBody), &fams); err != nil {
		t.Errorf("/metrics.json does not parse: %v", err)
	}

	traceBody, _ := get("/trace")
	var tf TraceFile
	if err := json.Unmarshal([]byte(traceBody), &tf); err != nil {
		t.Fatalf("/trace does not parse: %v", err)
	}
	if len(tf.TraceEvents) != 2 || tf.TraceEvents[0].Name != "mark" {
		t.Errorf("unexpected trace events: %+v", tf.TraceEvents)
	}

	gclog, _ := get("/gclog")
	if !strings.Contains(gclog, "[gc] hello") {
		t.Errorf("/gclog = %q", gclog)
	}

	kvNull, kvType := get("/kv")
	if strings.TrimSpace(kvNull) != "null" {
		t.Errorf("/kv without a source = %q, want null", kvNull)
	}
	if !strings.HasPrefix(kvType, "application/json") {
		t.Errorf("/kv content type %q", kvType)
	}
	sink.SetKV(func() any { return map[string]int{"hits": 7} })
	kvBody, _ := get("/kv")
	var kv map[string]int
	if err := json.Unmarshal([]byte(kvBody), &kv); err != nil || kv["hits"] != 7 {
		t.Errorf("/kv = %q (err %v), want hits 7", kvBody, err)
	}

	index, _ := get("/")
	if !strings.Contains(index, "/kv") {
		t.Errorf("index missing /kv: %q", index)
	}
	if !strings.Contains(index, "/metrics") {
		t.Errorf("index = %q", index)
	}
}

func TestSinkServe(t *testing.T) {
	sink := NewSink()
	srv, err := sink.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestWriteTraceSpans(t *testing.T) {
	r := NewRecorder(1, 64)
	r.BeginSpan(SpanCycle, 1)
	r.BeginSpan(SpanMark, 1)
	r.EndSpan(SpanMark, 1)
	r.BeginSpan(SpanRelocate, 2)
	r.EndSpan(SpanRelocate, 2)
	r.EndSpan(SpanCycle, 1)
	r.Record(EvSafepointWait, 0, 1500, uint64(SpanPause1))
	r.Record(EvPageAlloc, 1, 0x200000, 1<<21)
	r.Record(EvRelocWin, RelocByMutator, 0x200040, 24)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var tf TraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace does not parse as trace_event JSON: %v", err)
	}

	// Every B must have a matching E on the same (name, tid) track.
	open := map[[2]any]int{}
	for _, ev := range tf.TraceEvents {
		key := [2]any{ev.Name, ev.TID}
		switch ev.Ph {
		case "B":
			open[key]++
		case "E":
			open[key]--
			if open[key] < 0 {
				t.Fatalf("E without B for %v", key)
			}
		}
	}
	for key, n := range open {
		if n != 0 {
			t.Errorf("unbalanced span %v: %d left open", key, n)
		}
	}

	names := map[string][]string{}
	for _, ev := range tf.TraceEvents {
		names[ev.Name] = append(names[ev.Name], ev.Ph)
	}
	for _, span := range []string{"cycle", "mark", "relocate"} {
		phs := names[span]
		if len(phs) != 2 || phs[0] != "B" || phs[1] != "E" {
			t.Errorf("span %q events = %v, want [B E]", span, phs)
		}
	}
	if phs := names["safepoint_wait"]; len(phs) != 1 || phs[0] != "X" {
		t.Errorf("safepoint_wait events = %v, want one X", phs)
	}
	if phs := names["page_alloc"]; len(phs) != 1 || phs[0] != "i" {
		t.Errorf("page_alloc events = %v, want one instant", phs)
	}
	if phs := names["reloc_win"]; len(phs) != 1 || phs[0] != "i" {
		t.Errorf("reloc_win events = %v, want one instant", phs)
	}
	for _, ev := range tf.TraceEvents {
		if ev.Name == "reloc_win" && ev.Args["who"] != "mutator" {
			t.Errorf("reloc_win who = %v, want mutator", ev.Args["who"])
		}
	}
}

// TestCounterTrackCategories: EvCounter events render as "C" counter
// tracks whose category routes by series — locality counters stay in
// "locality", the MMU/utilization ladder goes to "latency". The golden
// snippet pins the exact rendering the /trace endpoint serves.
func TestCounterTrackCategories(t *testing.T) {
	r := NewRecorder(1, 64)
	r.Record(EvCounter, CounterStreamCoverage, math.Float64bits(0.75), 1)
	r.Record(EvCounter, CounterMMU1k, math.Float64bits(0.5), 1)
	r.Record(EvCounter, CounterUtilization, math.Float64bits(0.875), 1)

	tf := BuildTrace(r.Snapshot())
	cats := map[string]string{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "C" {
			t.Fatalf("counter event rendered as %q, want C", ev.Ph)
		}
		cats[ev.Name] = ev.Cat
	}
	if cats["locality_stream_coverage"] != "locality" {
		t.Errorf("stream coverage cat = %q", cats["locality_stream_coverage"])
	}
	if cats["latency_mmu_1k"] != "latency" || cats["latency_mutator_utilization"] != "latency" {
		t.Errorf("latency counters mis-categorized: %v", cats)
	}

	// Golden snippet: one MMU counter sample, minus the wall-clock ts.
	var buf bytes.Buffer
	if err := WriteTrace(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var raw struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range raw.TraceEvents {
		if string(ev["name"]) != `"latency_mmu_1k"` {
			continue
		}
		found = true
		for field, want := range map[string]string{
			"cat":  `"latency"`,
			"ph":   `"C"`,
			"pid":  `1`,
			"tid":  `1`,
			"args": `{"value":0.5}`,
		} {
			if got := string(ev[field]); got != want {
				t.Errorf("golden mmu counter field %s = %s, want %s", field, got, want)
			}
		}
	}
	if !found {
		t.Fatal("no latency_mmu_1k counter event in trace")
	}
}

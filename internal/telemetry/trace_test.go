package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteTraceSpans(t *testing.T) {
	r := NewRecorder(1, 64)
	r.BeginSpan(SpanCycle, 1)
	r.BeginSpan(SpanMark, 1)
	r.EndSpan(SpanMark, 1)
	r.BeginSpan(SpanRelocate, 2)
	r.EndSpan(SpanRelocate, 2)
	r.EndSpan(SpanCycle, 1)
	r.Record(EvSafepointWait, 0, 1500, uint64(SpanPause1))
	r.Record(EvPageAlloc, 1, 0x200000, 1<<21)
	r.Record(EvRelocWin, RelocByMutator, 0x200040, 24)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var tf TraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace does not parse as trace_event JSON: %v", err)
	}

	// Every B must have a matching E on the same (name, tid) track.
	open := map[[2]any]int{}
	for _, ev := range tf.TraceEvents {
		key := [2]any{ev.Name, ev.TID}
		switch ev.Ph {
		case "B":
			open[key]++
		case "E":
			open[key]--
			if open[key] < 0 {
				t.Fatalf("E without B for %v", key)
			}
		}
	}
	for key, n := range open {
		if n != 0 {
			t.Errorf("unbalanced span %v: %d left open", key, n)
		}
	}

	names := map[string][]string{}
	for _, ev := range tf.TraceEvents {
		names[ev.Name] = append(names[ev.Name], ev.Ph)
	}
	for _, span := range []string{"cycle", "mark", "relocate"} {
		phs := names[span]
		if len(phs) != 2 || phs[0] != "B" || phs[1] != "E" {
			t.Errorf("span %q events = %v, want [B E]", span, phs)
		}
	}
	if phs := names["safepoint_wait"]; len(phs) != 1 || phs[0] != "X" {
		t.Errorf("safepoint_wait events = %v, want one X", phs)
	}
	if phs := names["page_alloc"]; len(phs) != 1 || phs[0] != "i" {
		t.Errorf("page_alloc events = %v, want one instant", phs)
	}
	if phs := names["reloc_win"]; len(phs) != 1 || phs[0] != "i" {
		t.Errorf("reloc_win events = %v, want one instant", phs)
	}
	for _, ev := range tf.TraceEvents {
		if ev.Name == "reloc_win" && ev.Args["who"] != "mutator" {
			t.Errorf("reloc_win who = %v, want mutator", ev.Args["who"])
		}
	}
}

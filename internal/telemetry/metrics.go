package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. A nil *Counter
// accepts all calls as no-ops.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 metric. A nil *Gauge accepts all calls as
// no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. Bounds are the
// inclusive upper edges; an implicit +Inf bucket catches the rest. A nil
// *Histogram accepts all calls as no-ops.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, last is +Inf
	total   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start and multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metricKind tags a registry family.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindSummary
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindSummary:
		return "summary"
	default:
		return "histogram"
	}
}

// QuantileSource backs a summary family: a live quantile sketch (such as
// latency.Hist) the registry reads at scrape time instead of storing
// samples itself.
type QuantileSource interface {
	// Quantile returns the q-quantile of the recorded samples, q in [0,1].
	Quantile(q float64) float64
	// Count returns the number of recorded samples.
	Count() uint64
	// Sum returns the sum of recorded samples.
	Sum() float64
}

// series is one labelled instance within a family.
type series struct {
	labels string // rendered `{k="v",...}` or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	q      QuantileSource
}

// family groups all label variants of one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series
}

// Registry holds named metrics and renders them as Prometheus text
// exposition (version 0.0.4) or a JSON snapshot. Lookups are intended
// for instrumentation setup, not hot paths: callers resolve *Counter /
// *Gauge / *Histogram handles once and update those lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	// muAcq/muContended feed the contention plane: the registry cannot
	// adopt contention.Mutex (import cycle through telemetry/latency),
	// so it self-reports through Plane.AddSource instead.
	muAcq       atomic.Uint64
	muContended atomic.Uint64
}

// lock acquires r.mu, counting the acquisition and whether it had to
// block, mirroring contention.Mutex's fast path.
func (r *Registry) lock() {
	r.muAcq.Add(1)
	if r.mu.TryLock() {
		return
	}
	r.muContended.Add(1)
	r.lock()
}

// MuStats reports cumulative registry-mutex acquisitions and contended
// acquisitions for the contention plane.
func (r *Registry) MuStats() (acquisitions, contended uint64) {
	if r == nil {
		return 0, 0
	}
	return r.muAcq.Load(), r.muContended.Load()
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey renders label pairs ("k1", "v1", "k2", "v2", ...) into the
// Prometheus series suffix, sorted by key for a stable identity.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be key/value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) family(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %v and %v", name, f.kind, kind))
	}
	return f
}

// Counter returns (registering on first use) the counter with the given
// name and label pairs. Nil-safe on a nil registry.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	r.lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter)
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, c: &Counter{}}
		f.series[key] = s
	}
	return s.c
}

// Gauge returns (registering on first use) the gauge with the given name
// and label pairs. Nil-safe on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	r.lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, g: &Gauge{}}
		f.series[key] = s
	}
	return s.g
}

// Histogram returns (registering on first use) the histogram with the
// given name, bucket upper bounds and label pairs. Nil-safe on a nil
// registry.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	r.lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindHistogram)
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Uint64, len(h.bounds)+1)
		s = &series{labels: key, h: h}
		f.series[key] = s
	}
	return s.h
}

// Summary registers (or re-points) the summary series with the given
// name and label pairs, backed live by src: the exporters read quantiles,
// count and sum from src at scrape time. Re-registering the same series
// replaces its source (latest runtime wins, like SetGCLog). Nil-safe on a
// nil registry.
func (r *Registry) Summary(name, help string, src QuantileSource, labels ...string) {
	if r == nil {
		return
	}
	r.lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindSummary)
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		f.series[key] = s
	}
	s.q = src
}

// sortedFamilies snapshots the family list sorted by name.
func (r *Registry) sortedFamilies() []*family {
	r.lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedSeries() []*series {
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

// fmtFloat renders a float the way Prometheus expects (no exponent for
// integral values, +Inf spelled out).
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// histLabels merges the le label into an existing label set.
func histLabels(base string, le float64) string {
	entry := fmt.Sprintf("le=%q", fmtFloat(le))
	if base == "" {
		return "{" + entry + "}"
	}
	return base[:len(base)-1] + "," + entry + "}"
}

// summaryQuantiles are the quantiles every summary family exposes.
var summaryQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// quantLabels merges the quantile label into an existing label set.
func quantLabels(base string, q float64) string {
	entry := fmt.Sprintf("quantile=%q", fmt.Sprintf("%g", q))
	if base == "" {
		return "{" + entry + "}"
	}
	return base[:len(base)-1] + "," + entry + "}"
}

// WritePrometheus renders the registry in Prometheus text exposition
// format. Nil-safe on a nil registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.sortedSeries() {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case kindGauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, fmtFloat(s.g.Value()))
			case kindHistogram:
				var cum uint64
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, histLabels(s.labels, bound), cum)
				}
				cum += s.h.counts[len(s.h.bounds)].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, histLabels(s.labels, math.Inf(1)), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, fmtFloat(s.h.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, s.h.Count())
			case kindSummary:
				if s.q == nil {
					continue
				}
				for _, q := range summaryQuantiles {
					fmt.Fprintf(w, "%s%s %s\n", f.name, quantLabels(s.labels, q), fmtFloat(s.q.Quantile(q)))
				}
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, fmtFloat(s.q.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, s.q.Count())
			}
		}
	}
}

// jsonSeries is the JSON snapshot shape of one series.
type jsonSeries struct {
	Labels string `json:"labels,omitempty"`
	Value  any    `json:"value,omitempty"`

	Buckets   map[string]uint64  `json:"buckets,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
	Sum       *float64           `json:"sum,omitempty"`
	Count     *uint64            `json:"count,omitempty"`
}

// jsonFamily is the JSON snapshot shape of one metric family.
type jsonFamily struct {
	Name   string       `json:"name"`
	Type   string       `json:"type"`
	Help   string       `json:"help,omitempty"`
	Series []jsonSeries `json:"series"`
}

// WriteJSON renders the registry as a JSON snapshot: an array of metric
// families with their series. Nil-safe on a nil registry (writes null).
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "null\n")
		return err
	}
	var out []jsonFamily
	for _, f := range r.sortedFamilies() {
		jf := jsonFamily{Name: f.name, Type: f.kind.String(), Help: f.help}
		for _, s := range f.sortedSeries() {
			js := jsonSeries{Labels: s.labels}
			switch f.kind {
			case kindCounter:
				js.Value = s.c.Value()
			case kindGauge:
				js.Value = s.g.Value()
			case kindHistogram:
				js.Buckets = make(map[string]uint64, len(s.h.bounds)+1)
				var cum uint64
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					js.Buckets[fmtFloat(bound)] = cum
				}
				cum += s.h.counts[len(s.h.bounds)].Load()
				js.Buckets["+Inf"] = cum
				sum, count := s.h.Sum(), s.h.Count()
				js.Sum, js.Count = &sum, &count
			case kindSummary:
				if s.q == nil {
					continue
				}
				js.Quantiles = make(map[string]float64, len(summaryQuantiles))
				for _, q := range summaryQuantiles {
					js.Quantiles[fmt.Sprintf("%g", q)] = s.q.Quantile(q)
				}
				sum, count := s.q.Sum(), s.q.Count()
				js.Sum, js.Count = &sum, &count
			}
			jf.Series = append(jf.Series, js)
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

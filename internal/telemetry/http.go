package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
)

// Sink bundles the live observability surface of one runtime (or a
// sequence of runtimes sharing it): the event recorder, the metrics
// registry, and an optional GC-log renderer. A nil *Sink is the disabled
// state — its accessors return nil, and nil recorders/metrics are no-ops.
type Sink struct {
	rec *Recorder
	reg *Registry

	mu          sync.Mutex
	gclog       func(io.Writer)
	locality    func() any
	mmu         func() any
	kv          func() any
	flight      func(io.Writer) error
	flightRearm func()
	signals     func() any
	tailattr    func() any
	overload    func() any
	contention  func() any

	// dropped mirrors the recorder's loss counters into the registry at
	// scrape time so exporters can alert on telemetry loss.
	droppedEvents     *Gauge
	overwrittenEvents *Gauge
}

// NewSink builds a sink with default recorder sizing.
func NewSink() *Sink {
	reg := NewRegistry()
	return &Sink{
		rec: NewRecorder(0, 0),
		reg: reg,
		droppedEvents: reg.Gauge("hcsgc_telemetry_dropped_events",
			"Events lost to recorder shard contention."),
		overwrittenEvents: reg.Gauge("hcsgc_telemetry_overwritten_events",
			"Events lost to ring-buffer wrap-around."),
	}
}

// Recorder returns the event recorder (nil on a nil sink).
func (s *Sink) Recorder() *Recorder {
	if s == nil {
		return nil
	}
	return s.rec
}

// Metrics returns the metrics registry (nil on a nil sink).
func (s *Sink) Metrics() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// SetGCLog installs the renderer behind the /gclog endpoint (typically
// Collector.WriteGCLog). Nil-safe; the latest runtime wins when several
// share the sink.
func (s *Sink) SetGCLog(fn func(io.Writer)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.gclog = fn
	s.mu.Unlock()
}

// WriteGCLog renders the installed GC log to w, outside any HTTP request.
// The chaos soak uses it to capture a failing run's log as an artifact.
// A sink without an installed renderer writes nothing.
func (s *Sink) WriteGCLog(w io.Writer) {
	if s == nil {
		return
	}
	s.mu.Lock()
	fn := s.gclog
	s.mu.Unlock()
	if fn != nil {
		fn(w)
	}
}

// SetLocality installs the snapshot source behind the /locality endpoint
// (typically a closure over locality.Profiler.Report). The returned value
// is rendered as JSON. Nil-safe; the latest runtime wins.
func (s *Sink) SetLocality(fn func() any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.locality = fn
	s.mu.Unlock()
}

// SetMMU installs the snapshot source behind the /mmu endpoint (typically
// a closure over latency.Tracker.MMUSnapshot). The returned value is
// rendered as JSON. Nil-safe; the latest runtime wins.
func (s *Sink) SetMMU(fn func() any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.mmu = fn
	s.mu.Unlock()
}

// SetKV installs the snapshot source behind the /kv endpoint (typically
// a closure over kvstore.Metrics.Report). The returned value is rendered
// as JSON. Nil-safe; the latest workload wins.
func (s *Sink) SetKV(fn func() any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.kv = fn
	s.mu.Unlock()
}

// SetFlightRecorder installs the dump renderer behind the /flightrecorder
// endpoint (typically a closure over latency.Tracker.WriteFlight).
// Nil-safe; the latest runtime wins.
func (s *Sink) SetFlightRecorder(fn func(io.Writer) error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.flight = fn
	s.mu.Unlock()
}

// SetFlightRearm installs the dump-budget reset behind the
// /flightrecorder?rearm=1 parameter (typically latency.Tracker.Rearm).
// Nil-safe; the latest runtime wins.
func (s *Sink) SetFlightRearm(fn func()) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.flightRearm = fn
	s.mu.Unlock()
}

// SetSignals installs the snapshot source behind the /signals endpoint
// (typically a closure over signals.Plane.Snapshot). The returned value
// is rendered as JSON. Nil-safe; the latest runtime wins.
func (s *Sink) SetSignals(fn func() any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.signals = fn
	s.mu.Unlock()
}

// SetContention installs the snapshot source behind the /contention
// endpoint (typically a closure over contention.Plane.Snapshot). The
// returned value is rendered as JSON. Nil-safe; the latest runtime wins.
func (s *Sink) SetContention(fn func() any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.contention = fn
	s.mu.Unlock()
}

// SetTailAttr installs the snapshot source behind the /tailattr endpoint
// (typically a closure over signals.TailAttributor.Report). The returned
// value is rendered as JSON. Nil-safe; the latest workload wins.
func (s *Sink) SetTailAttr(fn func() any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tailattr = fn
	s.mu.Unlock()
}

// SetOverload installs the snapshot source behind the /overload endpoint
// (typically a closure over overload.Controller.Report). The returned
// value is rendered as JSON. Nil-safe; the latest workload wins.
func (s *Sink) SetOverload(fn func() any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.overload = fn
	s.mu.Unlock()
}

// WriteFlightRecorder renders the installed flight-recorder dump to w,
// outside any HTTP request (the chaos soak captures failing runs with it).
// A sink without an installed renderer writes nothing.
func (s *Sink) WriteFlightRecorder(w io.Writer) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	fn := s.flight
	s.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(w)
}

// Handler returns the HTTP mux serving /metrics (Prometheus text),
// /metrics.json (JSON snapshot), /trace (Chrome trace_event JSON),
// /gclog (ZGC-style text log), /locality (locality-profiler report),
// /mmu (minimum-mutator-utilization curve), /kv (KV serving report),
// /flightrecorder (latency flight-recorder dump; ?rearm=1 resets the
// auto-dump budget), /signals (unified per-cycle signal plane),
// /contention (contention attribution plane: ranked lock sites, CAS
// loops, worker balance), /tailattr (request-level tail attribution
// report) and /overload (admission-control and goodput accounting).
func (s *Sink) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		s.syncLossGauges()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		s.syncLossGauges()
		w.Header().Set("Content-Type", "application/json")
		s.reg.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		WriteTrace(w, s.rec.Snapshot())
	})
	mux.HandleFunc("/gclog", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		fn := s.gclog
		s.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if fn == nil {
			fmt.Fprintln(w, "no collector attached")
			return
		}
		fn(w)
	})
	mux.HandleFunc("/locality", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		fn := s.locality
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if fn == nil {
			io.WriteString(w, "null\n")
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(fn())
	})
	mux.HandleFunc("/mmu", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		fn := s.mmu
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if fn == nil {
			io.WriteString(w, "null\n")
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(fn())
	})
	mux.HandleFunc("/kv", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		fn := s.kv
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if fn == nil {
			io.WriteString(w, "null\n")
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(fn())
	})
	mux.HandleFunc("/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		fn := s.flight
		rearm := s.flightRearm
		s.mu.Unlock()
		if r.URL.Query().Get("rearm") == "1" && rearm != nil {
			rearm()
		}
		w.Header().Set("Content-Type", "application/json")
		if fn == nil {
			io.WriteString(w, "null\n")
			return
		}
		fn(w)
	})
	mux.HandleFunc("/signals", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		fn := s.signals
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if fn == nil {
			io.WriteString(w, "null\n")
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(fn())
	})
	mux.HandleFunc("/contention", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		fn := s.contention
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if fn == nil {
			io.WriteString(w, "null\n")
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(fn())
	})
	mux.HandleFunc("/tailattr", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		fn := s.tailattr
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if fn == nil {
			io.WriteString(w, "null\n")
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(fn())
	})
	mux.HandleFunc("/overload", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		fn := s.overload
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if fn == nil {
			io.WriteString(w, "null\n")
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(fn())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "hcsgc telemetry: /metrics /metrics.json /trace /gclog /locality /mmu /kv /flightrecorder /signals /contention /tailattr /overload")
	})
	return mux
}

func (s *Sink) syncLossGauges() {
	s.droppedEvents.Set(float64(s.rec.Dropped()))
	s.overwrittenEvents.Set(float64(s.rec.Overwritten()))
}

// Server is a running telemetry HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts an HTTP server for the sink on addr (e.g. ":9090" or
// "127.0.0.1:0") and returns once the listener is bound; requests are
// handled on a background goroutine.
func (s *Sink) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(EvPageAlloc, 1, 2, 3)
	r.BeginSpan(SpanMark, 1)
	r.EndSpan(SpanMark, 1)
	if r.Dropped() != 0 || r.Overwritten() != 0 || r.Snapshot() != nil {
		t.Error("nil recorder must report zero state")
	}
	r.Reset()
}

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(4, 16)
	r.Record(EvPageAlloc, 1, 0xabc, 4096)
	r.BeginSpan(SpanMark, 1)
	r.EndSpan(SpanMark, 1)
	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TimeNS < evs[i-1].TimeNS {
			t.Fatal("snapshot not time sorted")
		}
	}
	var kinds []string
	for _, ev := range evs {
		kinds = append(kinds, ev.Kind.String())
	}
	joined := strings.Join(kinds, ",")
	if !strings.Contains(joined, "page_alloc") || !strings.Contains(joined, "span_begin") {
		t.Fatalf("unexpected kinds %s", joined)
	}
	r.Reset()
	if len(r.Snapshot()) != 0 {
		t.Error("reset must discard events")
	}
}

func TestRecorderOverwriteAccounting(t *testing.T) {
	r := NewRecorder(1, 8)
	for i := 0; i < 20; i++ {
		r.Record(EvPageAlloc, 0, uint64(i), 0)
	}
	written := uint64(len(r.Snapshot())) + r.Overwritten() + r.Dropped()
	if written != 20 {
		t.Fatalf("retained+overwritten+dropped = %d, want 20", written)
	}
	if len(r.Snapshot()) > 8 {
		t.Fatalf("ring retained %d events, capacity 8", len(r.Snapshot()))
	}
}

// TestRecorderConcurrent hammers the recorder from many goroutines; the
// race detector validates the locking discipline, and the accounting
// identity validates that nothing is silently lost.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(4, 64)
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Record(EvRelocWin, uint32(g), uint64(i), 8)
			}
		}(g)
	}
	wg.Wait()
	total := uint64(len(r.Snapshot())) + r.Overwritten() + r.Dropped()
	if total != goroutines*perG {
		t.Fatalf("retained+overwritten+dropped = %d, want %d", total, goroutines*perG)
	}
}

func TestSpanNames(t *testing.T) {
	for span, want := range map[SpanID]string{
		SpanCycle: "cycle", SpanMark: "mark", SpanECSelect: "ec_select",
		SpanRelocate: "relocate", SpanPause1: "stw1", SpanPause2: "stw2",
		SpanPause3: "stw3",
	} {
		if got := span.String(); got != want {
			t.Errorf("SpanID(%d) = %q, want %q", span, got, want)
		}
	}
}

package latency

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Hist is a mergeable log-linear ("HDR") histogram over uint64 samples in
// simulated cycles. Values below 2^subBits land in exact unit slots; above
// that each power-of-two range is divided into halfSub linear sub-slots,
// bounding the relative quantile error at 1/halfSub (~3.1%) across the
// full uint64 range with a fixed 1920-slot layout.
//
// All recording is lock-free (one atomic add per sample plus a CAS-max),
// so barrier slow paths and STW pauses can feed the same instance. A nil
// *Hist accepts every call as a no-op costing one predictable branch.
//
// Because two histograms with identical layouts merge by element-wise
// slot addition, a merged histogram reports exactly the quantiles of a
// single histogram fed the union of the samples — the property the bench
// A/B aggregation and its test rely on.
type Hist struct {
	counts [numSlots]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// Slot geometry: subBits sets the precision (halfSub linear sub-slots per
// power-of-two range); values < 2^subBits are exact.
const (
	subBits  = 6
	subCount = 1 << subBits // exact unit slots
	halfSub  = subCount / 2 // linear sub-slots per log range
	numSlots = subCount + (64-subBits)*halfSub
)

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{} }

// slotIndex maps a value to its slot.
func slotIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	shift := uint(bits.Len64(v)) - subBits
	return subCount + (int(shift)-1)*halfSub + int(v>>shift) - halfSub
}

// slotUpper is the inclusive upper bound of slot i (for i < subCount it is
// the exact value).
func slotUpper(i int) uint64 {
	if i < subCount {
		return uint64(i)
	}
	g := i - subCount
	shift := uint(g/halfSub) + 1
	sub := uint64(g%halfSub) + halfSub
	return ((sub + 1) << shift) - 1
}

// Record adds one sample. Barrier slow paths and the contention plane's
// lock wait accounting call this from allocation-free code, so it must
// stay pure atomics.
//
//hcsgc:alloc-free
func (h *Hist) Record(v uint64) {
	if h == nil {
		return
	}
	h.counts[slotIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of recorded samples (as a float64, per the
// telemetry.QuantileSource contract).
func (h *Hist) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sum.Load())
}

// Max returns the largest recorded sample, exactly.
func (h *Hist) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the arithmetic mean of recorded samples.
func (h *Hist) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the q-quantile (q in [0,1]) as the upper bound of the
// slot holding the sample of that rank, clamped to the exact maximum.
func (h *Hist) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q >= 1 {
		return float64(h.max.Load())
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < numSlots; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			upper := slotUpper(i)
			if m := h.max.Load(); upper > m {
				return float64(m)
			}
			return float64(upper)
		}
	}
	return float64(h.max.Load())
}

// FractionLE returns the fraction of recorded samples whose slot upper
// bound is <= v — the empirical CDF at v, resolved at slot granularity
// (the same <=1/halfSub relative error as quantiles). The KV SLO curve
// ("fraction of requests under X cycles") is built from this. An empty
// histogram reports 0; a nil one likewise.
func (h *Hist) FractionLE(v uint64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	var cum uint64
	for i := 0; i < numSlots; i++ {
		if slotUpper(i) > v {
			break
		}
		cum += h.counts[i].Load()
	}
	return float64(cum) / float64(total)
}

// Merge folds o's samples into h. Slot layouts are fixed, so this is
// element-wise addition; quantiles of the result match a histogram fed
// both sample streams.
func (h *Hist) Merge(o *Hist) {
	if h == nil || o == nil {
		return
	}
	for i := range o.counts {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	for {
		old := h.max.Load()
		m := o.max.Load()
		if m <= old || h.max.CompareAndSwap(old, m) {
			return
		}
	}
}

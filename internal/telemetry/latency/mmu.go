package latency

import (
	"sort"
	"sync"
)

// The MMU tracker measures minimum mutator utilization the way the
// low-latency GC literature defines it (Cheng & Blelloch; Zhao, Blackburn
// & McKinley): over every window of width w inside the observed timeline,
// the fraction of the window the mutators were running, minimized over all
// window placements. Time here is the runtime's virtual clock in simulated
// cycles, so results are deterministic modulo scheduling, not wall-clock
// noise.
//
// Stops are weighted intervals: an STW pause stops every mutator (weight
// 1.0); an allocation stall stops one of n mutators (weight 1/n). The
// cumulative weighted-stop function W(x) is piecewise linear, so the worst
// window of width w — the placement maximizing W(t+w)-W(t) — is found
// exactly by evaluating the candidates where t or t+w aligns with an
// interval boundary.

// stopInterval is one weighted mutator-stop interval on the virtual
// timeline.
type stopInterval struct {
	start, end uint64
	weight     float64
}

// mmuState accumulates stop intervals. The interval list is bounded: past
// maxIv intervals the oldest half is dropped and the window domain
// advances past them, keeping cost amortized O(1) per add.
type mmuState struct {
	mu      sync.Mutex
	windows []uint64
	maxIv   int
	iv      []stopInterval
	lo, hi  uint64
}

func newMMUState(windows []uint64, maxIv int) *mmuState {
	return &mmuState{windows: windows, maxIv: maxIv}
}

// addStop records a weighted stop interval.
func (m *mmuState) addStop(start, end uint64, weight float64) {
	if m == nil || end <= start || weight <= 0 {
		return
	}
	m.mu.Lock()
	m.iv = append(m.iv, stopInterval{start, end, weight})
	if end > m.hi {
		m.hi = end
	}
	if len(m.iv) > m.maxIv {
		m.trimLocked()
	}
	m.mu.Unlock()
}

// advance extends the observed timeline to now (mutator-running time with
// no stops still counts toward utilization).
func (m *mmuState) advance(now uint64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if now > m.hi {
		m.hi = now
	}
	m.mu.Unlock()
}

// trimLocked drops the oldest half of the intervals and advances lo past
// them, so windows never span a region whose stops were forgotten.
func (m *mmuState) trimLocked() {
	sort.Slice(m.iv, func(i, j int) bool { return m.iv[i].start < m.iv[j].start })
	drop := len(m.iv) / 2
	m.iv = append(m.iv[:0:0], m.iv[drop:]...)
	if len(m.iv) > 0 {
		if m.iv[0].start > m.lo {
			m.lo = m.iv[0].start
		}
	} else {
		m.lo = m.hi
	}
}

// wfunc is the cumulative weighted-stop function W(x) over [lo, hi],
// represented by its breakpoints: W(x) = cum[i] + slope[i]*(x-pos[i]) for
// the largest pos[i] <= x, and W(x) = 0 before pos[0].
type wfunc struct {
	pos   []uint64
	cum   []float64
	slope []float64
}

func buildWFunc(iv []stopInterval, lo, hi uint64) wfunc {
	type edge struct {
		pos uint64
		d   float64
	}
	edges := make([]edge, 0, 2*len(iv))
	for _, s := range iv {
		start, end := s.start, s.end
		if start < lo {
			start = lo
		}
		if end > hi {
			end = hi
		}
		if end <= start {
			continue
		}
		edges = append(edges, edge{start, s.weight}, edge{end, -s.weight})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].pos < edges[j].pos })
	var wf wfunc
	var cum, slope float64
	for i := 0; i < len(edges); {
		p := edges[i].pos
		if n := len(wf.pos); n > 0 {
			cum += slope * float64(p-wf.pos[n-1])
		}
		for i < len(edges) && edges[i].pos == p {
			slope += edges[i].d
			i++
		}
		if slope < 0 { // float drift: slope is a telescoping sum of ±weight
			slope = 0
		}
		wf.pos = append(wf.pos, p)
		wf.cum = append(wf.cum, cum)
		wf.slope = append(wf.slope, slope)
	}
	return wf
}

// eval returns W(x).
func (wf wfunc) eval(x uint64) float64 {
	i := sort.Search(len(wf.pos), func(i int) bool { return wf.pos[i] > x }) - 1
	if i < 0 {
		return 0
	}
	return wf.cum[i] + wf.slope[i]*float64(x-wf.pos[i])
}

// maxStop returns the largest weighted stop time inside any window of
// width w placed within [lo, hi], clamped to w. Exact: the maximum of the
// piecewise-linear f(t) = W(t+w)-W(t) is attained where t or t+w is a
// breakpoint, or at the domain edges, all of which are candidates.
func (wf wfunc) maxStop(w, lo, hi uint64) float64 {
	tMax := hi - w
	try := func(t uint64) float64 {
		if t < lo {
			t = lo
		}
		if t > tMax {
			t = tMax
		}
		return wf.eval(t+w) - wf.eval(t)
	}
	worst := try(lo)
	if s := try(tMax); s > worst {
		worst = s
	}
	for _, p := range wf.pos {
		if s := try(p); s > worst {
			worst = s
		}
		if p >= w {
			if s := try(p - w); s > worst {
				worst = s
			}
		}
	}
	if worst > float64(w) {
		worst = float64(w)
	}
	if worst < 0 {
		worst = 0
	}
	return worst
}

// MMUPoint is one (window, MMU) sample of the MMU curve.
type MMUPoint struct {
	// WindowCycles is the window width in simulated cycles.
	WindowCycles uint64 `json:"window_cycles"`
	// MMU is the minimum mutator utilization over windows of that width,
	// in [0,1].
	MMU float64 `json:"mmu"`
}

// MMUReport is the MMU curve plus overall utilization, the /mmu endpoint
// payload.
type MMUReport struct {
	// Windows is the MMU ladder, ascending by window width.
	Windows []MMUPoint `json:"windows"`
	// SpanCycles is the observed timeline length. Windows wider than the
	// span report the whole-span utilization.
	SpanCycles uint64 `json:"span_cycles"`
	// Utilization is the mutator utilization over the whole span.
	Utilization float64 `json:"utilization"`
	// StopIntervals is the number of retained stop intervals.
	StopIntervals int `json:"stop_intervals"`
}

// snapshot computes the MMU ladder and overall utilization.
func (m *mmuState) snapshot() MMUReport {
	if m == nil {
		return MMUReport{}
	}
	m.mu.Lock()
	iv := append([]stopInterval(nil), m.iv...)
	lo, hi := m.lo, m.hi
	windows := m.windows
	m.mu.Unlock()

	r := MMUReport{SpanCycles: hi - lo, StopIntervals: len(iv), Utilization: 1}
	wf := buildWFunc(iv, lo, hi)
	span := hi - lo
	if span > 0 {
		r.Utilization = clamp01(1 - wf.eval(hi)/float64(span))
	}
	for _, w := range windows {
		mmu := r.Utilization
		if w > 0 && w <= span {
			mmu = clamp01(1 - wf.maxStop(w, lo, hi)/float64(w))
		}
		r.Windows = append(r.Windows, MMUPoint{WindowCycles: w, MMU: mmu})
	}
	return r
}

// utilizationBetween returns the mutator utilization over [a, b] of the
// retained timeline (the per-cycle utilization timeline samples).
func (m *mmuState) utilizationBetween(a, b uint64) float64 {
	if m == nil {
		return 1
	}
	m.mu.Lock()
	iv := append([]stopInterval(nil), m.iv...)
	lo, hi := m.lo, m.hi
	m.mu.Unlock()
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	if b <= a {
		return 1
	}
	wf := buildWFunc(iv, lo, hi)
	return clamp01(1 - (wf.eval(b)-wf.eval(a))/float64(b-a))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

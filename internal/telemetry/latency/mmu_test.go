package latency

import (
	"math/rand"
	"testing"
)

// mmuOf extracts one window's MMU from a report.
func mmuOf(r MMUReport, w uint64) float64 {
	for _, pt := range r.Windows {
		if pt.WindowCycles == w {
			return pt.MMU
		}
	}
	return -1
}

// TestMMUSinglePause: one full-stop pause of 100 cycles in a 10k span.
// Every window that fits the span sees exactly that pause as its worst
// case.
func TestMMUSinglePause(t *testing.T) {
	m := newMMUState([]uint64{100, 1000, 10000}, 2048)
	m.addStop(1000, 1100, 1)
	m.advance(10000)
	r := m.snapshot()
	if r.SpanCycles != 10000 {
		t.Fatalf("span = %d", r.SpanCycles)
	}
	// A 100-cycle window can sit fully inside the pause: MMU(100) = 0.
	if got := mmuOf(r, 100); got != 0 {
		t.Errorf("MMU(100) = %v, want 0", got)
	}
	if got, want := mmuOf(r, 1000), 1-100.0/1000; got != want {
		t.Errorf("MMU(1000) = %v, want %v", got, want)
	}
	if got, want := mmuOf(r, 10000), 1-100.0/10000; got != want {
		t.Errorf("MMU(10000) = %v, want %v", got, want)
	}
	if want := 1 - 100.0/10000; r.Utilization != want {
		t.Errorf("utilization = %v, want %v", r.Utilization, want)
	}
}

// TestMMUWeightedStall: a stall stopping half the mutators costs half a
// pause's utilization.
func TestMMUWeightedStall(t *testing.T) {
	m := newMMUState([]uint64{100}, 2048)
	m.addStop(500, 600, 0.5)
	m.advance(1000)
	if got := mmuOf(m.snapshot(), 100); got != 0.5 {
		t.Fatalf("MMU(100) = %v, want 0.5 (weight-0.5 stall fills the window)", got)
	}
}

// TestMMUWiderThanSpan: windows wider than the observed span report the
// whole-span utilization.
func TestMMUWiderThanSpan(t *testing.T) {
	m := newMMUState([]uint64{100000}, 2048)
	m.addStop(0, 50, 1)
	m.advance(1000)
	r := m.snapshot()
	if got := mmuOf(r, 100000); got != r.Utilization {
		t.Fatalf("MMU(100000) = %v, want whole-span utilization %v", got, r.Utilization)
	}
}

// TestMMUMonotoneInWindow is the satellite property test: MMU(w) is
// non-increasing as w shrinks — any window of width w is contained in one
// of width kw, so a narrower window can only see a denser worst case.
// Randomized stop schedules, seeded; spans always exceed the widest window
// so no ladder entry falls back to whole-span utilization.
func TestMMUMonotoneInWindow(t *testing.T) {
	windows := []uint64{1000, 5000, 20000, 100000}
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 50; trial++ {
		m := newMMUState(windows, 4096)
		const span = 300000
		for i := 0; i < 60; i++ {
			start := uint64(rng.Intn(span - 2000))
			length := uint64(1 + rng.Intn(2000))
			weight := 1.0
			if rng.Intn(2) == 0 {
				weight = 1.0 / float64(1+rng.Intn(8))
			}
			m.addStop(start, start+length, weight)
		}
		m.advance(span)
		r := m.snapshot()
		if r.SpanCycles != span {
			t.Fatalf("trial %d: span = %d", trial, r.SpanCycles)
		}
		for i := 1; i < len(windows); i++ {
			narrow, wide := mmuOf(r, windows[i-1]), mmuOf(r, windows[i])
			// Tolerate only float accumulation noise, not real inversions.
			if narrow > wide+1e-9 {
				t.Fatalf("trial %d: MMU(%d)=%v > MMU(%d)=%v — monotonicity violated",
					trial, windows[i-1], narrow, windows[i], wide)
			}
		}
		for _, pt := range r.Windows {
			if pt.MMU < 0 || pt.MMU > 1 {
				t.Fatalf("trial %d: MMU(%d) = %v outside [0,1]", trial, pt.WindowCycles, pt.MMU)
			}
		}
	}
}

// TestMMUTrim: past MaxIntervals the oldest half is dropped and the domain
// advances, so windows never span forgotten stops.
func TestMMUTrim(t *testing.T) {
	m := newMMUState([]uint64{100}, 8)
	for i := 0; i < 40; i++ {
		start := uint64(i * 1000)
		m.addStop(start, start+10, 1)
	}
	m.mu.Lock()
	n, lo := len(m.iv), m.lo
	m.mu.Unlock()
	if n > 8 {
		t.Fatalf("retained %d intervals, cap 8", n)
	}
	if lo == 0 {
		t.Fatal("lo never advanced past dropped intervals")
	}
	r := m.snapshot()
	if r.StopIntervals != n {
		t.Fatalf("report retains %d, state has %d", r.StopIntervals, n)
	}
	// The retained region still computes a sane MMU.
	if got := mmuOf(r, 100); got < 0 || got > 1 {
		t.Fatalf("post-trim MMU = %v", got)
	}
}

// TestMMUUtilizationBetween: per-cycle utilization over a sub-interval.
func TestMMUUtilizationBetween(t *testing.T) {
	m := newMMUState([]uint64{100}, 2048)
	m.addStop(100, 200, 1)
	m.advance(1000)
	if got := m.utilizationBetween(0, 1000); got != 0.9 {
		t.Errorf("utilizationBetween(0,1000) = %v, want 0.9", got)
	}
	if got := m.utilizationBetween(100, 200); got != 0 {
		t.Errorf("utilizationBetween(100,200) = %v, want 0", got)
	}
	if got := m.utilizationBetween(500, 1000); got != 1 {
		t.Errorf("utilizationBetween(500,1000) = %v, want 1", got)
	}
	// Degenerate interval reads as fully utilized.
	if got := m.utilizationBetween(300, 300); got != 1 {
		t.Errorf("empty interval utilization = %v", got)
	}
}

// TestMMUNilSafe: nil state is inert.
func TestMMUNilSafe(t *testing.T) {
	var m *mmuState
	m.addStop(0, 10, 1)
	m.advance(100)
	if r := m.snapshot(); r.SpanCycles != 0 {
		t.Error("nil snapshot must be zero")
	}
	if u := m.utilizationBetween(0, 10); u != 1 {
		t.Errorf("nil utilization = %v, want 1", u)
	}
}

package latency

import (
	"encoding/json"
	"io"
)

// BarrierProfile counts load-barrier slow-path work by path for one cycle
// (or cumulatively in Report). Remap and hotmap-record are sub-steps that
// can occur inside a mark-path entry, so the fields are not disjoint.
type BarrierProfile struct {
	// Mark counts mark-phase slow-path entries (mark/queue the object).
	Mark uint64 `json:"mark"`
	// Relocate counts relocate-phase entries that raced the GC for an
	// evacuation-candidate object — the work LAZYRELOCATE shifts from GC
	// threads into mutator barriers.
	Relocate uint64 `json:"relocate"`
	// Remap counts forwarding-table resolutions (mark phase) and
	// recolor-only relocate-phase entries on non-candidate pages.
	Remap uint64 `json:"remap"`
	// HotmapRecord counts successful hotness CASes (§3.1.2).
	HotmapRecord uint64 `json:"hotmap_record"`
}

// CycleRecord is one GC cycle's flight-recorder entry: phase durations and
// pause costs in simulated cycles, the EC/WLB selection outcome, stall and
// barrier activity attributed to the cycle, the verifier's cumulative
// status, and the MMU curve as of cycle end.
type CycleRecord struct {
	Seq     uint64 `json:"seq"`
	Trigger string `json:"trigger"`

	// VStart/VEnd bracket the cycle on the virtual timeline.
	VStart uint64 `json:"vstart_cycles"`
	VEnd   uint64 `json:"vend_cycles"`

	Pause1 uint64 `json:"pause1_cycles"`
	Pause2 uint64 `json:"pause2_cycles"`
	Pause3 uint64 `json:"pause3_cycles"`
	// Concurrent-phase durations (relocate sums the per-worker drains of
	// the evacuation set this cycle started with).
	MarkCycles     uint64 `json:"mark_cycles"`
	ECSelectCycles uint64 `json:"ec_select_cycles"`
	RelocateCycles uint64 `json:"relocate_cycles"`

	// EC selection outcome (the WLB decision, paper §3.1).
	ECSmall          int    `json:"ec_small"`
	ECMedium         int    `json:"ec_medium"`
	ECSmallLiveBytes uint64 `json:"ec_small_live_bytes"`
	PagesFreedEmpty  int    `json:"pages_freed_empty"`
	MarkedBytes      uint64 `json:"marked_bytes"`

	HeapUsedBefore    float64 `json:"heap_used_before"`
	HeapUsedAfter     float64 `json:"heap_used_after"`
	SegregationPurity float64 `json:"segregation_purity"`

	// Stalls is the number of allocation stalls since the previous cycle.
	Stalls uint64 `json:"stalls"`
	// Barrier is the slow-path profile since the previous cycle.
	Barrier BarrierProfile `json:"barrier"`

	// Cumulative verifier status at cycle end (zero when detached).
	VerifyRuns       uint64 `json:"verify_runs"`
	VerifyViolations uint64 `json:"verify_violations"`

	// MMU is the window ladder as of cycle end; Utilization is the
	// mutator utilization over this cycle's [VStart, VEnd] interval.
	MMU         []MMUPoint `json:"mmu"`
	Utilization float64    `json:"utilization"`
}

// flightRing is a bounded ring of the last N cycle records.
type flightRing struct {
	buf   []CycleRecord
	next  int
	total uint64
}

func newFlightRing(n int) *flightRing {
	return &flightRing{buf: make([]CycleRecord, 0, n)}
}

func (r *flightRing) add(rec CycleRecord) {
	if cap(r.buf) == 0 {
		return
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
		r.next = (r.next + 1) % len(r.buf)
	}
	r.total++
}

// records returns the retained records oldest-first.
func (r *flightRing) records() []CycleRecord {
	out := make([]CycleRecord, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dist summarizes one HDR histogram for reports.
type Dist struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

func distOf(h *Hist) Dist {
	return Dist{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   float64(h.Max()),
	}
}

// Dist summarizes the histogram for reports.
func (h *Hist) Dist() Dist { return distOf(h) }

// BarrierPathReport is one slow-path family: exact hit count plus the
// sampled latency distribution.
type BarrierPathReport struct {
	Hits    uint64 `json:"hits"`
	Sampled Dist   `json:"sampled_latency_cycles"`
}

// Report is the full latency-attribution snapshot: per-pause and per-phase
// distributions, the stall distribution, per-path barrier profile, the MMU
// curve, and the flight-recorder contents. All durations are simulated
// cycles.
type Report struct {
	Pauses  map[string]Dist              `json:"pauses"`
	Phases  map[string]Dist              `json:"phases"`
	Stall   Dist                         `json:"alloc_stall"`
	Barrier map[string]BarrierPathReport `json:"barrier"`
	MMU     MMUReport                    `json:"mmu"`
	// Flight holds the retained per-cycle records, oldest first; Cycles
	// counts every cycle ever recorded.
	Flight []CycleRecord `json:"flight,omitempty"`
	Cycles uint64        `json:"cycles"`
	// FlightDumps counts automatic dumps emitted (verifier failure, OOM).
	FlightDumps uint64 `json:"flight_dumps"`
}

// FlightDump is the structured JSON envelope written on automatic dumps
// and by WriteFlight.
type FlightDump struct {
	Reason string  `json:"reason"`
	Report *Report `json:"report"`
}

// writeDump renders the dump to w, single-line unless indent.
func writeDump(w io.Writer, d FlightDump, indent bool) error {
	enc := json.NewEncoder(w)
	if indent {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(d)
}

package latency

import (
	"encoding/json"
	"io"
	"strings"
	"testing"

	"hcsgc/internal/telemetry"
)

// feedCycles drives n cycles of synthetic activity through a tracker.
func feedCycles(t *Tracker, n int) {
	v := uint64(0)
	for i := 0; i < n; i++ {
		t.RecordPause(0, v, 50)
		v += 50
		t.RecordPhase(PhaseMark, v, v+300)
		v += 300
		t.RecordPause(1, v, 20)
		v += 20
		t.RecordPhase(PhaseECSelect, v, v+40)
		v += 40
		t.RecordPause(2, v, 30)
		v += 30
		t.RecordPhase(PhaseRelocDrain, v, v+200)
		v += 200
		t.BarrierHit(PathMark)
		t.BarrierHit(PathMark)
		t.BarrierHit(PathRelocate)
		t.RecordBarrierLatency(PathMark, 12)
		t.OnCycle(CycleRecord{Seq: uint64(i + 1), Trigger: "test", VStart: v - 640, VEnd: v})
	}
}

// TestTrackerEndToEnd: pauses, phases, stalls and barrier activity all
// land in the report with per-cycle attribution.
func TestTrackerEndToEnd(t *testing.T) {
	tr := New(Config{FlightRecords: 4})
	tr.RecordStall(10, 110, 0.25)
	feedCycles(tr, 3)

	r := tr.Report()
	if r.Pauses["stw1"].Count != 3 || r.Pauses["stw1"].Max != 50 {
		t.Errorf("stw1 = %+v", r.Pauses["stw1"])
	}
	if r.Phases["mark"].Count != 3 || r.Phases["mark"].P50 < 300 {
		t.Errorf("mark = %+v", r.Phases["mark"])
	}
	if r.Stall.Count != 1 || r.Stall.Max != 100 {
		t.Errorf("stall = %+v", r.Stall)
	}
	if r.Barrier["mark"].Hits != 6 || r.Barrier["relocate"].Hits != 3 {
		t.Errorf("barrier = %+v", r.Barrier)
	}
	if r.Barrier["mark"].Sampled.Count != 3 {
		t.Errorf("sampled mark latencies = %+v", r.Barrier["mark"].Sampled)
	}
	if len(r.MMU.Windows) != len(DefaultMMUWindows) {
		t.Errorf("MMU ladder %d windows", len(r.MMU.Windows))
	}
	// Per-cycle barrier deltas: each cycle contributed 2 mark + 1 relocate.
	for _, rec := range r.Flight {
		if rec.Barrier.Mark != 2 || rec.Barrier.Relocate != 1 {
			t.Errorf("cycle %d barrier delta = %+v", rec.Seq, rec.Barrier)
		}
		if rec.MarkCycles != 300 || rec.RelocateCycles != 200 || rec.ECSelectCycles != 40 {
			t.Errorf("cycle %d phases = %d/%d/%d", rec.Seq, rec.MarkCycles, rec.ECSelectCycles, rec.RelocateCycles)
		}
	}
}

// TestFlightRingBounds: the ring keeps the last N records oldest-first
// while the total keeps counting.
func TestFlightRingBounds(t *testing.T) {
	tr := New(Config{FlightRecords: 4})
	feedCycles(tr, 10)
	r := tr.Report()
	if r.Cycles != 10 {
		t.Fatalf("cycles = %d", r.Cycles)
	}
	if len(r.Flight) != 4 {
		t.Fatalf("flight retains %d records, want 4", len(r.Flight))
	}
	for i, rec := range r.Flight {
		if want := uint64(7 + i); rec.Seq != want {
			t.Errorf("flight[%d].Seq = %d, want %d (oldest-first)", i, rec.Seq, want)
		}
	}
}

// TestAutoDumpLimit: automatic dumps are single-line JSON, capped.
func TestAutoDumpLimit(t *testing.T) {
	var buf strings.Builder
	tr := New(Config{AutoDumpLimit: 2, DumpTo: &buf})
	feedCycles(tr, 1)
	for i := 0; i < 5; i++ {
		tr.AutoDump("test reason")
	}
	if tr.Dumps() != 2 {
		t.Fatalf("dumps = %d, want 2", tr.Dumps())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	var d FlightDump
	if err := json.Unmarshal([]byte(lines[0]), &d); err != nil {
		t.Fatalf("dump line does not parse: %v", err)
	}
	if d.Reason != "test reason" || d.Report == nil || len(d.Report.Flight) != 1 {
		t.Fatalf("dump = %+v", d)
	}
}

// TestWriteFlightShape: the on-demand dump is indented JSON carrying the
// full report.
func TestWriteFlightShape(t *testing.T) {
	tr := New(Config{})
	feedCycles(tr, 2)
	var buf strings.Builder
	if err := tr.WriteFlight(&buf, "on-demand"); err != nil {
		t.Fatal(err)
	}
	var d FlightDump
	if err := json.Unmarshal([]byte(buf.String()), &d); err != nil {
		t.Fatal(err)
	}
	if d.Reason != "on-demand" || len(d.Report.Flight) != 2 {
		t.Fatalf("dump = reason %q, %d records", d.Reason, len(d.Report.Flight))
	}
	if !strings.Contains(buf.String(), "\n  ") {
		t.Error("on-demand dump must be indented")
	}
}

// TestSampleBarrier: the sampler fires exactly once per 2^shift entries.
func TestSampleBarrier(t *testing.T) {
	tr := New(Config{SampleShift: 3})
	fired := 0
	for i := 0; i < 64; i++ {
		if tr.SampleBarrier() {
			fired++
		}
	}
	if fired != 8 {
		t.Fatalf("sampler fired %d/64, want 8 (shift 3)", fired)
	}
}

// TestBindTelemetry: the metric families register, gauges and counters
// sync at cycle boundaries, and the summaries are live HDR views.
func TestBindTelemetry(t *testing.T) {
	tr := New(Config{})
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(1, 256)
	tr.BindTelemetry(reg, rec)
	feedCycles(tr, 2)

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE hcsgc_pause_cycles summary",
		`hcsgc_pause_cycles{phase="stw1",quantile="0.5"} 50`,
		`hcsgc_pause_cycles_count{phase="stw1"} 2`,
		`hcsgc_phase_cycles{phase="mark",quantile="0.99"} 300`,
		"# TYPE hcsgc_stall_cycles summary",
		`hcsgc_barrier_path_total{path="mark"} 4`,
		`hcsgc_barrier_path_cycles{path="mark",quantile="0.5"} 12`,
		`hcsgc_mmu_ratio{window_cycles="1000"}`,
		"hcsgc_mutator_utilization_ratio",
		"hcsgc_flight_dumps_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestCounterTrackEmission is the Perfetto coverage: each OnCycle emits
// one EvCounter sample per MMU window plus utilization, monotonically
// timestamped, rendering as "C" events in the latency category.
func TestCounterTrackEmission(t *testing.T) {
	tr := New(Config{})
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(1, 256)
	tr.BindTelemetry(reg, rec)
	feedCycles(tr, 3)

	tf := telemetry.BuildTrace(rec.Snapshot())
	byName := map[string][]telemetry.TraceEvent{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "C" {
			byName[ev.Name] = append(byName[ev.Name], ev)
		}
	}
	for _, name := range []string{
		"latency_mmu_1k", "latency_mmu_5k", "latency_mmu_20k",
		"latency_mmu_100k", "latency_mutator_utilization",
	} {
		evs := byName[name]
		if len(evs) != 3 {
			t.Errorf("counter track %q has %d samples, want 3 (one per cycle)", name, len(evs))
			continue
		}
		last := -1.0
		for _, ev := range evs {
			if ev.Cat != "latency" {
				t.Errorf("%q category = %q, want latency", name, ev.Cat)
			}
			if ev.TS < last {
				t.Errorf("%q timestamps not monotone: %v after %v", name, ev.TS, last)
			}
			last = ev.TS
			v, ok := ev.Args["value"].(float64)
			if !ok || v < 0 || v > 1 {
				t.Errorf("%q value = %v, want float in [0,1]", name, ev.Args["value"])
			}
		}
	}
}

// TestTrackerNilSafe: every Tracker method is inert on nil.
func TestTrackerNilSafe(t *testing.T) {
	var tr *Tracker
	tr.RecordPause(0, 0, 10)
	tr.RecordPhase(PhaseMark, 0, 10)
	tr.RecordStall(0, 10, 1)
	tr.BarrierHit(PathMark)
	tr.RecordBarrierLatency(PathMark, 1)
	tr.OnCycle(CycleRecord{})
	tr.BindTelemetry(nil, nil)
	tr.AutoDump("x")
	if tr.SampleBarrier() {
		t.Error("nil tracker must never sample")
	}
	if tr.Report() != nil || tr.Dumps() != 0 {
		t.Error("nil tracker must report nil")
	}
	if r := tr.MMUSnapshot(); r.SpanCycles != 0 {
		t.Error("nil MMU snapshot must be zero")
	}
}

// TestAggregate: HDR distributions merge exactly, hits sum, MMU takes the
// per-window minimum.
func TestAggregate(t *testing.T) {
	a, b := New(Config{}), New(Config{})
	feedCycles(a, 2)
	feedCycles(b, 3)
	r := Aggregate([]*Tracker{a, nil, b})
	if r.Pauses["stw1"].Count != 5 {
		t.Errorf("aggregated stw1 count = %d, want 5", r.Pauses["stw1"].Count)
	}
	if r.Barrier["mark"].Hits != 10 {
		t.Errorf("aggregated mark hits = %d, want 10", r.Barrier["mark"].Hits)
	}
	if r.Cycles != 5 {
		t.Errorf("aggregated cycles = %d, want 5", r.Cycles)
	}
	if len(r.MMU.Windows) != len(DefaultMMUWindows) {
		t.Fatalf("aggregated ladder %d windows", len(r.MMU.Windows))
	}
	for i, pt := range r.MMU.Windows {
		am, bm := mmuOf(a.MMUSnapshot(), pt.WindowCycles), mmuOf(b.MMUSnapshot(), pt.WindowCycles)
		want := am
		if bm < want {
			want = bm
		}
		if pt.MMU != want {
			t.Errorf("window %d: aggregate MMU %v, want min(%v, %v)", i, pt.MMU, am, bm)
		}
	}
}

// TestRecordPhaseZeroDuration pins the zero-duration contract: a phase
// execution over [v, v] — routine in single-mutator synchronous runs,
// where the virtual clock cannot advance while the mutator is parked —
// must land in the distribution's count (with a 0-cycle sample) and must
// appear in the cycle record's per-phase accumulator. Inverted intervals
// are caller bugs and stay dropped.
func TestRecordPhaseZeroDuration(t *testing.T) {
	tr := New(Config{DumpTo: io.Discard})
	tr.RecordPhase(PhaseMark, 100, 100) // zero duration: recorded
	tr.RecordPhase(PhaseMark, 100, 250) // normal
	tr.RecordPhase(PhaseMark, 300, 200) // inverted: dropped

	r := tr.Report()
	d := r.Phases[PhaseMark.String()]
	if d.Count != 2 {
		t.Fatalf("mark phase count = %d, want 2 (zero-duration sample must count)", d.Count)
	}
	if d.Max != 150 {
		t.Fatalf("mark phase max = %v, want 150", d.Max)
	}

	// The flight record's accumulator saw 0 + 150 cycles.
	tr.OnCycle(CycleRecord{Seq: 1, VStart: 100, VEnd: 260})
	recs := tr.Report().Flight
	if len(recs) != 1 || recs[0].MarkCycles != 150 {
		t.Fatalf("flight mark cycles = %+v, want one record with 150", recs)
	}
}

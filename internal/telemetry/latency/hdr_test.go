package latency

import (
	"math"
	"math/rand"
	"testing"
)

// TestSlotGeometry pins the slot math: exact unit slots below 2^subBits,
// then halfSub linear sub-slots per power-of-two range, with slotUpper the
// inclusive bound of each slot.
func TestSlotGeometry(t *testing.T) {
	for v := uint64(0); v < subCount; v++ {
		if got := slotIndex(v); got != int(v) {
			t.Fatalf("slotIndex(%d) = %d, want exact", v, got)
		}
		if got := slotUpper(int(v)); got != v {
			t.Fatalf("slotUpper(%d) = %d, want exact", v, got)
		}
	}
	// The first log range starts exactly at subCount.
	if got := slotIndex(subCount); got != subCount {
		t.Fatalf("slotIndex(%d) = %d, want %d", subCount, got, subCount)
	}
	// The largest value must land in the last slot.
	if got := slotIndex(math.MaxUint64); got != numSlots-1 {
		t.Fatalf("slotIndex(MaxUint64) = %d, want %d", got, numSlots-1)
	}
	// Every value lies within its slot's bound, and the bound is tight to
	// ~1/halfSub relative error.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		v := rng.Uint64() >> uint(rng.Intn(64))
		idx := slotIndex(v)
		if idx < 0 || idx >= numSlots {
			t.Fatalf("slotIndex(%d) = %d out of range", v, idx)
		}
		upper := slotUpper(idx)
		if upper < v {
			t.Fatalf("slotUpper(%d)=%d below value %d", idx, upper, v)
		}
		if idx > 0 {
			if lower := slotUpper(idx - 1); lower >= v {
				t.Fatalf("value %d also fits slot %d (upper %d)", v, idx-1, lower)
			}
		}
		if v >= subCount {
			if rel := float64(upper-v) / float64(v); rel > 1.0/halfSub {
				t.Fatalf("slot error for %d: upper %d, rel %v > %v", v, upper, rel, 1.0/halfSub)
			}
		}
	}
}

// TestHistQuantileAccuracy: quantiles of a known stream stay within the
// layout's relative-error bound and never exceed the exact max.
func TestHistQuantileAccuracy(t *testing.T) {
	h := NewHist()
	const n = 10000
	for i := uint64(1); i <= n; i++ {
		h.Record(i)
	}
	if h.Count() != n || h.Max() != n {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	if mean := h.Mean(); math.Abs(mean-(n+1)/2) > 0.5 {
		t.Fatalf("mean = %v", mean)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := q * n
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("q%v = %v below exact %v (upper-bound quantiles cannot undershoot)", q, got, exact)
		}
		if got > exact*(1+2.0/halfSub)+1 {
			t.Errorf("q%v = %v, exact %v: beyond error bound", q, got, exact)
		}
	}
	if got := h.Quantile(1); got != n {
		t.Errorf("q1 = %v, want exact max %d", got, n)
	}
}

// TestHistMergeEqualsUnion is the exact-merge property test: a merged
// histogram must report byte-for-byte the same quantiles, count, sum and
// max as a single histogram fed the union of the streams.
func TestHistMergeEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		a, b, union := NewHist(), NewHist(), NewHist()
		for i := 0; i < 2000; i++ {
			v := rng.Uint64() >> uint(rng.Intn(60))
			if rng.Intn(2) == 0 {
				a.Record(v)
			} else {
				b.Record(v)
			}
			union.Record(v)
		}
		merged := NewHist()
		merged.Merge(a)
		merged.Merge(b)
		if merged.Count() != union.Count() || merged.Sum() != union.Sum() || merged.Max() != union.Max() {
			t.Fatalf("trial %d: count/sum/max diverge: %d/%v/%d vs %d/%v/%d", trial,
				merged.Count(), merged.Sum(), merged.Max(),
				union.Count(), union.Sum(), union.Max())
		}
		for q := 0.0; q <= 1.0; q += 0.01 {
			if m, u := merged.Quantile(q), union.Quantile(q); m != u {
				t.Fatalf("trial %d: Quantile(%v) = %v merged vs %v union", trial, q, m, u)
			}
		}
	}
}

// TestHistNilSafe: a nil histogram is inert on every method.
func TestHistNilSafe(t *testing.T) {
	var h *Hist
	h.Record(5)
	h.Merge(NewHist())
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil Hist must read as zero")
	}
	NewHist().Merge(nil)
}

// TestHistEmptyQuantile: quantiles of an empty histogram are zero.
func TestHistEmptyQuantile(t *testing.T) {
	if q := NewHist().Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

// TestHistFractionLE checks the CDF accessor the KV SLO curve is built
// on: exact in the unit-slot range, monotone, and within slot error above.
func TestHistFractionLE(t *testing.T) {
	h := NewHist()
	if h.FractionLE(100) != 0 {
		t.Fatal("empty histogram must report 0")
	}
	var nilH *Hist
	if nilH.FractionLE(1) != 0 {
		t.Fatal("nil histogram must report 0")
	}
	// 10 samples at exact unit-slot values 0..9.
	for v := uint64(0); v < 10; v++ {
		h.Record(v)
	}
	for v := uint64(0); v < 10; v++ {
		want := float64(v+1) / 10
		if got := h.FractionLE(v); got != want {
			t.Fatalf("FractionLE(%d) = %v, want %v", v, got, want)
		}
	}
	if got := h.FractionLE(1 << 40); got != 1 {
		t.Fatalf("FractionLE(huge) = %v, want 1", got)
	}
	// Above the unit range the answer is slot-granular but monotone and
	// bracketed: half the samples below 1000, half at 1e6.
	h2 := NewHist()
	for i := 0; i < 500; i++ {
		h2.Record(uint64(i))
		h2.Record(1_000_000)
	}
	if got := h2.FractionLE(10_000); got != 0.5 {
		t.Fatalf("FractionLE(10k) = %v, want 0.5", got)
	}
	prev := -1.0
	for _, v := range []uint64{1, 10, 100, 1000, 10_000, 100_000, 1_000_000, 10_000_000} {
		f := h2.FractionLE(v)
		if f < prev {
			t.Fatalf("FractionLE not monotone at %d: %v < %v", v, f, prev)
		}
		prev = f
	}
	if h2.FractionLE(2_000_000) != 1 {
		t.Fatal("all samples must be <= 2e6")
	}
}

// Package latency is the HCSGC latency-attribution plane: mergeable HDR
// histograms over every STW pause, concurrent-phase duration and
// allocation stall; a minimum-mutator-utilization (MMU) tracker over the
// virtual timeline; per-path load-barrier slow-path profiling; and an
// always-on bounded flight recorder of per-cycle summaries that dumps
// structured JSON when something goes wrong (heap-verifier violation,
// ErrOutOfMemory) or on demand.
//
// All durations are simulated cycles — the same deterministic clock the
// rest of the runtime is judged on — so percentiles and MMU curves are
// comparable across runs and configurations, the way the paper's §4
// evaluation compares them.
//
// A nil *Tracker accepts every call as a no-op costing one predictable
// branch, matching the repo-wide instrumentation discipline; the priced
// difference between nil and always-on is BenchmarkLatencyOverhead.
package latency

import (
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"hcsgc/internal/telemetry"
)

// BarrierPath classifies load-barrier slow-path work.
type BarrierPath uint8

// The barrier slow-path families. Mark/Relocate/Remap are the primary
// dispatch outcomes; HotmapRecord flags the hotness CAS that can ride
// along a mark-path entry.
const (
	// PathMark: mark-phase entry — mark and queue the object.
	PathMark BarrierPath = iota
	// PathRelocate: relocate-phase entry on an evacuation-candidate page —
	// the mutator races the GC to copy the object.
	PathRelocate
	// PathRemap: forwarding-table resolution (mark phase) or a
	// recolor-only relocate-phase entry on a non-candidate page.
	PathRemap
	// PathHotmapRecord: a successful hotness CAS (§3.1.2).
	PathHotmapRecord

	numPaths = 4
)

// String names the path for metrics labels and reports.
func (p BarrierPath) String() string {
	switch p {
	case PathMark:
		return "mark"
	case PathRelocate:
		return "relocate"
	case PathRemap:
		return "remap"
	case PathHotmapRecord:
		return "hotmap_record"
	default:
		return "unknown"
	}
}

// PhaseKind classifies concurrent-phase durations.
type PhaseKind uint8

// The concurrent phases of one cycle.
const (
	// PhaseMark is the concurrent mark (STW1 resume to STW2 stop).
	PhaseMark PhaseKind = iota
	// PhaseECSelect is the concurrent evacuation-candidate selection.
	PhaseECSelect
	// PhaseRelocDrain is one GC worker's relocation drain of the
	// evacuation set.
	PhaseRelocDrain

	numPhases = 3
)

// String names the phase for metrics labels and reports.
func (k PhaseKind) String() string {
	switch k {
	case PhaseMark:
		return "mark"
	case PhaseECSelect:
		return "ec_select"
	case PhaseRelocDrain:
		return "relocate"
	default:
		return "unknown"
	}
}

// pauseNames label the three STW pauses, indexed 0..2.
var pauseNames = [3]string{"stw1", "stw2", "stw3"}

// DefaultMMUWindows is the paper-style MMU window ladder in simulated
// cycles: 1/5/20/100 kcycles.
var DefaultMMUWindows = []uint64{1_000, 5_000, 20_000, 100_000}

// Config tunes a Tracker. The zero value gets usable defaults.
type Config struct {
	// MMUWindows is the MMU window ladder in simulated cycles, ascending.
	// Default DefaultMMUWindows.
	MMUWindows []uint64
	// MaxIntervals bounds the retained stop intervals; past it the oldest
	// half is dropped and the MMU domain advances. Default 2048.
	MaxIntervals int
	// FlightRecords is the flight-recorder ring size. Default 64.
	FlightRecords int
	// AutoDumpLimit caps automatic dumps per tracker so a violation storm
	// cannot flood the output. Default 8.
	AutoDumpLimit int
	// DumpTo receives automatic dumps as single-line JSON. Default
	// os.Stderr.
	DumpTo io.Writer
	// SampleShift sets barrier-latency sampling to 1 in 2^shift slow-path
	// entries. Default 6 (1 in 64); there is no exhaustive setting — use
	// shift 1 for 1-in-2. Hit counters are always exact.
	SampleShift uint
}

func (c Config) withDefaults() Config {
	if len(c.MMUWindows) == 0 {
		c.MMUWindows = DefaultMMUWindows
	}
	if c.MaxIntervals <= 0 {
		c.MaxIntervals = 2048
	}
	if c.FlightRecords <= 0 {
		c.FlightRecords = 64
	}
	if c.AutoDumpLimit <= 0 {
		c.AutoDumpLimit = 8
	}
	if c.DumpTo == nil {
		c.DumpTo = os.Stderr
	}
	if c.SampleShift == 0 {
		c.SampleShift = 6
	}
	return c
}

// Tracker is the latency-attribution instance for one runtime. The
// collector feeds it pause/phase/stall intervals and barrier slow-path
// events; it maintains the HDR distributions, the MMU state and the
// flight recorder, and publishes to telemetry at each cycle boundary.
type Tracker struct {
	cfg Config

	pause      [3]*Hist
	phase      [numPhases]*Hist
	stall      *Hist
	barrierLat [numPaths]*Hist

	barrierHits [numPaths]atomic.Uint64
	// curPhase accumulates this cycle's per-phase durations, swapped out
	// at each OnCycle into the flight record.
	curPhase  [numPhases]atomic.Uint64
	sampleCtr atomic.Uint64

	mmu *mmuState

	mu sync.Mutex
	// barrierSynced/ctrSynced are per-path watermarks for flight-record
	// deltas and telemetry counter syncing (both advance at OnCycle).
	barrierSynced [numPaths]uint64
	ctrSynced     [numPaths]uint64
	ring          *flightRing
	dumps         uint64

	// Telemetry handles (nil until BindTelemetry; all nil-safe).
	mmuGauges  []*telemetry.Gauge
	utilGauge  *telemetry.Gauge
	pathCtrs   [numPaths]*telemetry.Counter
	dumpsTotal *telemetry.Counter
	dumpsLeft  *telemetry.Gauge
	rec        *telemetry.Recorder
}

// New builds a tracker. A nil *Tracker is the disabled state: every method
// is a one-branch no-op.
func New(cfg Config) *Tracker {
	cfg = cfg.withDefaults()
	t := &Tracker{
		cfg:   cfg,
		stall: NewHist(),
		mmu:   newMMUState(cfg.MMUWindows, cfg.MaxIntervals),
		ring:  newFlightRing(cfg.FlightRecords),
	}
	for i := range t.pause {
		t.pause[i] = NewHist()
	}
	for i := range t.phase {
		t.phase[i] = NewHist()
	}
	for i := range t.barrierLat {
		t.barrierLat[i] = NewHist()
	}
	return t
}

// Config returns the (defaulted) configuration.
func (t *Tracker) Config() Config {
	if t == nil {
		return Config{}
	}
	return t.cfg
}

// RecordPause records STW pause i (0-based: stw1..stw3) costing `cost`
// cycles starting at virtual time startV. A pause stops every mutator
// (MMU weight 1).
func (t *Tracker) RecordPause(i int, startV, cost uint64) {
	if t == nil || i < 0 || i >= len(t.pause) {
		return
	}
	t.pause[i].Record(cost)
	t.mmu.addStop(startV, startV+cost, 1)
}

// RecordPhase records one concurrent-phase execution over virtual
// [startV, endV]. Concurrent phases do not stop mutators, so they feed
// the duration distributions but not the MMU timeline.
//
// Zero-duration executions (endV == startV) are recorded: the virtual
// clock only advances through mutator cycles and pause cost, so a phase
// that ran between two clock readings with no interleaved mutator
// progress — routine in single-mutator synchronous tests — legitimately
// costs 0 virtual cycles, and its execution must still appear in the
// distribution's count. Only an inverted interval (endV < startV, a
// caller bug) is dropped.
func (t *Tracker) RecordPhase(k PhaseKind, startV, endV uint64) {
	if t == nil || k >= numPhases || endV < startV {
		return
	}
	d := endV - startV
	t.phase[k].Record(d)
	t.curPhase[k].Add(d)
}

// RecordStall records one allocation stall over virtual [startV, endV]
// that stopped the weight-fraction of the mutators (1/numMutators).
func (t *Tracker) RecordStall(startV, endV uint64, weight float64) {
	if t == nil || endV <= startV {
		return
	}
	t.stall.Record(endV - startV)
	t.mmu.addStop(startV, endV, weight)
}

// BarrierHit counts one slow-path event on path p. Exact (not sampled).
func (t *Tracker) BarrierHit(p BarrierPath) {
	if t == nil || p >= numPaths {
		return
	}
	t.barrierHits[p].Add(1)
}

// SampleBarrier reports whether this slow-path entry should measure its
// latency (1 in 2^SampleShift).
func (t *Tracker) SampleBarrier() bool {
	if t == nil {
		return false
	}
	mask := (uint64(1) << t.cfg.SampleShift) - 1
	return t.sampleCtr.Add(1)&mask == 0
}

// RecordBarrierLatency records a sampled slow-path latency on path p.
func (t *Tracker) RecordBarrierLatency(p BarrierPath, cycles uint64) {
	if t == nil || p >= numPaths {
		return
	}
	t.barrierLat[p].Record(cycles)
}

// OnCycle is the cycle-boundary hook: the collector passes a record with
// the identity, pause, EC and verifier fields filled in; the tracker
// completes it (phase durations, barrier deltas, MMU and utilization),
// appends it to the flight ring, and publishes gauges, counters and
// Perfetto counter-track samples. The completed record is returned so the
// signal plane can fold it into its CycleSignals snapshot without
// re-deriving the attribution fields.
func (t *Tracker) OnCycle(rec CycleRecord) CycleRecord {
	if t == nil {
		return rec
	}
	for k := 0; k < numPhases; k++ {
		d := t.curPhase[k].Swap(0)
		switch PhaseKind(k) {
		case PhaseMark:
			rec.MarkCycles = d
		case PhaseECSelect:
			rec.ECSelectCycles = d
		case PhaseRelocDrain:
			rec.RelocateCycles = d
		}
	}
	t.mmu.advance(rec.VEnd)
	snap := t.mmu.snapshot()
	rec.MMU = snap.Windows
	rec.Utilization = t.mmu.utilizationBetween(rec.VStart, rec.VEnd)

	t.mu.Lock()
	var hits, deltas [numPaths]uint64
	for p := 0; p < numPaths; p++ {
		hits[p] = t.barrierHits[p].Load()
		deltas[p] = hits[p] - t.barrierSynced[p]
		t.barrierSynced[p] = hits[p]
	}
	rec.Barrier = BarrierProfile{
		Mark:         deltas[PathMark],
		Relocate:     deltas[PathRelocate],
		Remap:        deltas[PathRemap],
		HotmapRecord: deltas[PathHotmapRecord],
	}
	t.ring.add(rec)
	gauges := t.mmuGauges
	utilG := t.utilGauge
	recd := t.rec
	var ctrAdd [numPaths]uint64
	for p := 0; p < numPaths; p++ {
		if t.pathCtrs[p] != nil {
			ctrAdd[p] = hits[p] - t.ctrSynced[p]
			t.ctrSynced[p] = hits[p]
		}
	}
	ctrs := t.pathCtrs
	t.mu.Unlock()

	for i, g := range gauges {
		if i < len(snap.Windows) {
			g.Set(snap.Windows[i].MMU)
		}
	}
	utilG.Set(rec.Utilization)
	for p := 0; p < numPaths; p++ {
		ctrs[p].Add(ctrAdd[p])
	}
	if recd != nil {
		for i, pt := range snap.Windows {
			if i >= 4 {
				break
			}
			recd.Record(telemetry.EvCounter, telemetry.CounterMMU1k+uint32(i),
				math.Float64bits(pt.MMU), rec.Seq)
		}
		recd.Record(telemetry.EvCounter, telemetry.CounterUtilization,
			math.Float64bits(rec.Utilization), rec.Seq)
	}
	return rec
}

// BindTelemetry registers the hcsgc_pause/phase/stall/barrier/mmu metric
// families on reg (summaries are backed live by the HDR histograms) and
// enables Perfetto counter-track emission through rec. Nil-safe in every
// argument; safe to call again (latest runtime wins).
func (t *Tracker) BindTelemetry(reg *telemetry.Registry, rec *telemetry.Recorder) {
	if t == nil || reg == nil {
		return
	}
	for i, name := range pauseNames {
		reg.Summary("hcsgc_pause_cycles",
			"STW pause cost per cycle, in simulated cycles (HDR summary).",
			t.pause[i], "phase", name)
	}
	for k := 0; k < numPhases; k++ {
		reg.Summary("hcsgc_phase_cycles",
			"Concurrent GC phase duration, in simulated cycles (HDR summary).",
			t.phase[k], "phase", PhaseKind(k).String())
	}
	reg.Summary("hcsgc_stall_cycles",
		"Allocation-stall duration, in simulated cycles (HDR summary).",
		t.stall)
	var gauges []*telemetry.Gauge
	for _, w := range t.cfg.MMUWindows {
		gauges = append(gauges, reg.Gauge("hcsgc_mmu_ratio",
			"Minimum mutator utilization over the labelled window, in simulated cycles.",
			"window_cycles", fmt.Sprintf("%d", w)))
	}
	utilG := reg.Gauge("hcsgc_mutator_utilization_ratio",
		"Mutator utilization over the last GC cycle interval.")
	var ctrs [numPaths]*telemetry.Counter
	for p := 0; p < numPaths; p++ {
		path := BarrierPath(p).String()
		reg.Summary("hcsgc_barrier_path_cycles",
			"Sampled load-barrier slow-path latency by path, in simulated cycles (HDR summary).",
			t.barrierLat[p], "path", path)
		ctrs[p] = reg.Counter("hcsgc_barrier_path_total",
			"Load-barrier slow-path entries by path (synced at cycle boundaries).",
			"path", path)
	}
	dumps := reg.Counter("hcsgc_flight_dumps_total",
		"Automatic flight-recorder dumps (verifier failure, OOM).")
	dumpsLeft := reg.Gauge("hcsgc_flight_dumps_remaining",
		"Automatic flight-recorder dumps left before the cap (re-armable via /flightrecorder?rearm=1).")

	t.mu.Lock()
	t.mmuGauges = gauges
	t.utilGauge = utilG
	t.pathCtrs = ctrs
	t.ctrSynced = [numPaths]uint64{}
	t.dumpsTotal = dumps
	t.dumpsLeft = dumpsLeft
	t.rec = rec
	left := uint64(t.cfg.AutoDumpLimit)
	if t.dumps < left {
		left -= t.dumps
	} else {
		left = 0
	}
	t.mu.Unlock()
	dumpsLeft.Set(float64(left))
}

// Report snapshots the full latency-attribution state. Nil-safe (returns
// nil).
func (t *Tracker) Report() *Report {
	if t == nil {
		return nil
	}
	r := &Report{
		Pauses:  make(map[string]Dist, 3),
		Phases:  make(map[string]Dist, numPhases),
		Barrier: make(map[string]BarrierPathReport, numPaths),
		Stall:   distOf(t.stall),
		MMU:     t.mmu.snapshot(),
	}
	for i, name := range pauseNames {
		r.Pauses[name] = distOf(t.pause[i])
	}
	for k := 0; k < numPhases; k++ {
		r.Phases[PhaseKind(k).String()] = distOf(t.phase[k])
	}
	for p := 0; p < numPaths; p++ {
		r.Barrier[BarrierPath(p).String()] = BarrierPathReport{
			Hits:    t.barrierHits[p].Load(),
			Sampled: distOf(t.barrierLat[p]),
		}
	}
	t.mu.Lock()
	r.Flight = t.ring.records()
	r.Cycles = t.ring.total
	r.FlightDumps = t.dumps
	t.mu.Unlock()
	return r
}

// MMUSnapshot computes the current MMU report (the /mmu endpoint payload).
// Nil-safe (returns the zero report).
func (t *Tracker) MMUSnapshot() MMUReport {
	if t == nil {
		return MMUReport{}
	}
	return t.mmu.snapshot()
}

// AutoDump writes one bounded single-line JSON flight dump to the
// configured DumpTo, capped at AutoDumpLimit per tracker. The collector
// calls it on new verifier violations; the allocator on ErrOutOfMemory.
// Nil-safe.
func (t *Tracker) AutoDump(reason string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.dumps >= uint64(t.cfg.AutoDumpLimit) {
		t.mu.Unlock()
		return
	}
	t.dumps++
	dumps := t.dumpsTotal
	left := t.dumpsLeft
	remaining := uint64(t.cfg.AutoDumpLimit) - t.dumps
	t.mu.Unlock()
	dumps.Inc()
	left.Set(float64(remaining))
	writeDump(t.cfg.DumpTo, FlightDump{Reason: reason, Report: t.Report()}, false)
}

// Rearm resets the automatic-dump budget back to AutoDumpLimit (served by
// /flightrecorder?rearm=1), so an operator who has collected the capped
// dumps can keep the recorder live without restarting. Nil-safe.
func (t *Tracker) Rearm() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.dumps = 0
	left := t.dumpsLeft
	t.mu.Unlock()
	left.Set(float64(t.cfg.AutoDumpLimit))
}

// DumpsRemaining returns the automatic dumps left before the cap.
func (t *Tracker) DumpsRemaining() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dumps >= uint64(t.cfg.AutoDumpLimit) {
		return 0
	}
	return uint64(t.cfg.AutoDumpLimit) - t.dumps
}

// StallDist summarizes the allocation-stall distribution (the signal
// plane's per-cycle stall view). Nil-safe (returns the zero Dist).
func (t *Tracker) StallDist() Dist {
	if t == nil {
		return Dist{}
	}
	return distOf(t.stall)
}

// WriteFlight renders an on-demand flight dump to w as indented JSON (the
// /flightrecorder endpoint and -latency-report). Nil-safe: a nil tracker
// writes a dump with a null report.
func (t *Tracker) WriteFlight(w io.Writer, reason string) error {
	return writeDump(w, FlightDump{Reason: reason, Report: t.Report()}, true)
}

// Dumps returns the automatic-dump count.
func (t *Tracker) Dumps() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dumps
}

// Aggregate merges per-run trackers into one Report for A/B benching:
// distributions merge exactly (HDR slot addition), barrier hits sum, and
// MMU takes the worst (minimum) value per window across runs. Flight
// records are not aggregated.
func Aggregate(trackers []*Tracker) *Report {
	pause := [3]*Hist{NewHist(), NewHist(), NewHist()}
	phase := [numPhases]*Hist{NewHist(), NewHist(), NewHist()}
	stall := NewHist()
	var barrierLat [numPaths]*Hist
	for p := range barrierLat {
		barrierLat[p] = NewHist()
	}
	var hits [numPaths]uint64
	var mmuMin map[uint64]float64
	var utilMin float64 = 1
	var span, cycles, dumps uint64
	for _, t := range trackers {
		if t == nil {
			continue
		}
		for i := range pause {
			pause[i].Merge(t.pause[i])
		}
		for k := range phase {
			phase[k].Merge(t.phase[k])
		}
		stall.Merge(t.stall)
		for p := 0; p < numPaths; p++ {
			barrierLat[p].Merge(t.barrierLat[p])
			hits[p] += t.barrierHits[p].Load()
		}
		snap := t.mmu.snapshot()
		if mmuMin == nil {
			mmuMin = make(map[uint64]float64)
		}
		for _, pt := range snap.Windows {
			if cur, ok := mmuMin[pt.WindowCycles]; !ok || pt.MMU < cur {
				mmuMin[pt.WindowCycles] = pt.MMU
			}
		}
		if snap.Utilization < utilMin {
			utilMin = snap.Utilization
		}
		if snap.SpanCycles > span {
			span = snap.SpanCycles
		}
		t.mu.Lock()
		cycles += t.ring.total
		dumps += t.dumps
		t.mu.Unlock()
	}
	r := &Report{
		Pauses:      make(map[string]Dist, 3),
		Phases:      make(map[string]Dist, numPhases),
		Barrier:     make(map[string]BarrierPathReport, numPaths),
		Stall:       distOf(stall),
		Cycles:      cycles,
		FlightDumps: dumps,
	}
	for i, name := range pauseNames {
		r.Pauses[name] = distOf(pause[i])
	}
	for k := 0; k < numPhases; k++ {
		r.Phases[PhaseKind(k).String()] = distOf(phase[k])
	}
	for p := 0; p < numPaths; p++ {
		r.Barrier[BarrierPath(p).String()] = BarrierPathReport{
			Hits: hits[p], Sampled: distOf(barrierLat[p]),
		}
	}
	r.MMU = MMUReport{SpanCycles: span, Utilization: utilMin}
	// Keep ladder order stable: iterate the first contributing tracker's
	// window order.
	for _, t := range trackers {
		if t == nil {
			continue
		}
		for _, w := range t.cfg.MMUWindows {
			r.MMU.Windows = append(r.MMU.Windows, MMUPoint{WindowCycles: w, MMU: mmuMin[w]})
		}
		break
	}
	return r
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// TraceEvent is one entry of the Chrome trace_event format (the JSON
// consumed by about://tracing and Perfetto). Only the fields this
// exporter emits are modelled.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the top-level trace_event JSON object.
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// classNames mirrors heap.Class for trace annotations without importing
// the heap package (telemetry stays a leaf dependency).
var classNames = [...]string{"tiny", "small", "medium", "large"}

func className(arg uint32) string {
	if int(arg) < len(classNames) {
		return classNames[arg]
	}
	return fmt.Sprintf("class%d", arg)
}

// tracePID is the synthetic process id all events share.
const tracePID = 1

// BuildTrace converts recorder events into trace_event entries. Span
// begin/end pairs become B/E duration events on the track named by the
// recording site; everything else becomes instant or complete events.
// The events must be in the order Recorder.Snapshot returns (time
// sorted), or B/E pairs may render unbalanced.
func BuildTrace(events []Event) TraceFile {
	tf := TraceFile{DisplayTimeUnit: "ms", TraceEvents: []TraceEvent{}}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	for _, ev := range events {
		switch ev.Kind {
		case EvSpanBegin, EvSpanEnd:
			ph := "B"
			if ev.Kind == EvSpanEnd {
				ph = "E"
			}
			tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
				Name: SpanID(ev.Arg).String(), Cat: "gc", Ph: ph,
				TS: us(ev.TimeNS), PID: tracePID, TID: int(ev.A),
			})
		case EvSafepointWait:
			// The wait ends at the event timestamp; render it as a
			// complete (X) slice covering the handshake.
			tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
				Name: "safepoint_wait", Cat: "gc", Ph: "X",
				TS: us(ev.TimeNS - int64(ev.A)), Dur: float64(ev.A) / 1e3,
				PID: tracePID, TID: 1,
				Args: map[string]any{"pause": SpanID(ev.B).String()},
			})
		case EvPageAlloc, EvPageECSelect, EvPageEvacuated, EvPageFreed:
			tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
				Name: ev.Kind.String(), Cat: "page", Ph: "i",
				TS: us(ev.TimeNS), PID: tracePID, TID: 1, S: "p",
				Args: map[string]any{
					"class": className(ev.Arg),
					"addr":  fmt.Sprintf("%#x", ev.A),
					"bytes": ev.B,
				},
			})
		case EvCounter:
			// Ph "C" renders a counter track; Perfetto plots the value
			// over time. One sample per GC cycle per series.
			tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
				Name: CounterName(ev.Arg), Cat: counterCat(ev.Arg), Ph: "C",
				TS: us(ev.TimeNS), PID: tracePID, TID: 1,
				Args: map[string]any{"value": math.Float64frombits(ev.A)},
			})
		case EvRelocWin:
			who := "gc"
			if ev.Arg == RelocByMutator {
				who = "mutator"
			}
			tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
				Name: "reloc_win", Cat: "reloc", Ph: "i",
				TS: us(ev.TimeNS), PID: tracePID, TID: 1, S: "t",
				Args: map[string]any{
					"who":   who,
					"addr":  fmt.Sprintf("%#x", ev.A),
					"bytes": ev.B,
				},
			})
		}
	}
	return tf
}

// WriteTrace renders recorder events as Chrome trace_event JSON.
func WriteTrace(w io.Writer, events []Event) error {
	return json.NewEncoder(w).Encode(BuildTrace(events))
}

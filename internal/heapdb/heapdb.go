// Package heapdb is an in-heap ordered key/value store — a B-tree whose
// nodes and rows are objects on the managed heap — standing in for the H2
// in-memory database of the paper's DaCapo h2 benchmark (§4.6).
// Long-lived rows reached through pointer-chasing descents are exactly the
// object population whose layout HCSGC improves.
//
// The tree is a "max-key" B-tree: every node (leaf or internal) holds c
// keys and c children, and key j is the maximum key of subtree j (for a
// leaf, the row key itself). This keeps leaves and internal nodes
// perfectly uniform, which keeps the split logic simple.
//
// Reference discipline: the only safepoints inside DB operations are the
// ones hidden in allocation. Every reference that must survive an
// allocation is pinned in a mutator root slot first and re-derived after,
// mirroring how a JVM's stack roots keep references current across GC.
package heapdb

import (
	"hcsgc/internal/core"
	"hcsgc/internal/heap"
	"hcsgc/internal/objmodel"
)

// maxKeys is the node fanout; splits happen at maxKeys.
const maxKeys = 8

// Node field layout: keys in [0, maxKeys), children (subtrees, or row refs
// in leaves) in [maxKeys, 2*maxKeys), then count and leaf flag.
const (
	fKeys     = 0
	fChildren = maxKeys
	fCount    = 2 * maxKeys
	fLeaf     = fCount + 1

	nodeFields = fLeaf + 1
)

// Row field layout: key, payload, mutation stamp, and a ref to a detail
// object (row access chases one more pointer, like H2's value objects).
const (
	rKey     = 0
	rPayload = 1
	rStamp   = 2
	rDetail  = 3

	rowFields    = 4
	detailFields = 3
)

// Root-slot usage relative to base: the tree root plus pins that keep
// references current across allocations.
const (
	slotRoot = 0
	slotPinA = 1 // current node during descent
	slotPinB = 2 // full child during split
	slotPinC = 3 // freshly allocated row
)

// RootSlots is the number of mutator root slots a DB needs.
const RootSlots = 4

// Types bundles the registered layouts.
type Types struct {
	Node   *objmodel.Type
	Row    *objmodel.Type
	Detail *objmodel.Type
}

// RegisterTypes registers the B-tree layouts. Call once per runtime.
func RegisterTypes(types *objmodel.Registry) Types {
	refs := make([]int, maxKeys)
	for i := range refs {
		refs[i] = fChildren + i
	}
	return Types{
		Node:   types.Register("heapdb.node", nodeFields, refs),
		Row:    types.Register("heapdb.row", rowFields, []int{rDetail}),
		Detail: types.Register("heapdb.detail", detailFields, nil),
	}
}

// DB is one B-tree bound to the owning mutator's root slots
// [base, base+RootSlots).
type DB struct {
	types Types
	base  int
	size  int
	// stamp increments on every mutation, written into rows.
	stamp uint64
}

// New creates an empty DB using the mutator's root slots starting at base.
func New(m *core.Mutator, types Types, base int) *DB {
	db := &DB{types: types, base: base}
	root := m.Alloc(types.Node)
	m.StoreField(root, fLeaf, 1)
	m.SetRoot(base+slotRoot, root)
	return db
}

// Size returns the number of rows.
func (db *DB) Size() int { return db.size }

func (db *DB) root(m *core.Mutator) heap.Ref { return m.LoadRoot(db.base + slotRoot) }

func count(m *core.Mutator, n heap.Ref) int   { return int(m.LoadField(n, fCount)) }
func isLeaf(m *core.Mutator, n heap.Ref) bool { return m.LoadField(n, fLeaf) != 0 }
func nkey(m *core.Mutator, n heap.Ref, i int) uint64 {
	return m.LoadField(n, fKeys+i)
}
func child(m *core.Mutator, n heap.Ref, i int) heap.Ref {
	return m.LoadRef(n, fChildren+i)
}

// findIdx returns the first index i < count with key(n,i) >= k, or count.
func findIdx(m *core.Mutator, n heap.Ref, k uint64) int {
	c := count(m, n)
	i := 0
	for i < c && nkey(m, n, i) < k {
		i++
	}
	return i
}

// findRow descends to the row for key k.
func (db *DB) findRow(m *core.Mutator, k uint64) (heap.Ref, bool) {
	n := db.root(m)
	for {
		c := count(m, n)
		i := findIdx(m, n, k)
		if i == c {
			return heap.NullRef, false // k exceeds the subtree max
		}
		if isLeaf(m, n) {
			if nkey(m, n, i) == k {
				return child(m, n, i), true
			}
			return heap.NullRef, false
		}
		n = child(m, n, i)
	}
}

// Get returns the payload of key k.
func (db *DB) Get(m *core.Mutator, k uint64) (uint64, bool) {
	row, ok := db.findRow(m, k)
	if !ok {
		return 0, false
	}
	return m.LoadField(row, rPayload), true
}

// GetDetail returns the first word of k's detail object, chasing the
// row -> detail pointer.
func (db *DB) GetDetail(m *core.Mutator, k uint64) (uint64, bool) {
	row, ok := db.findRow(m, k)
	if !ok {
		return 0, false
	}
	d := m.LoadRef(row, rDetail)
	if d.IsNull() {
		return 0, true
	}
	return m.LoadField(d, 0), true
}

// Scan visits up to limit rows with keys >= start in ascending key order.
// Returns the number visited. No allocation happens inside, so held
// references stay valid for the whole scan.
func (db *DB) Scan(m *core.Mutator, start uint64, limit int, visit func(k, payload uint64)) int {
	if limit <= 0 {
		return 0
	}
	visited := 0
	var walk func(n heap.Ref) bool
	walk = func(n heap.Ref) bool {
		c := count(m, n)
		if isLeaf(m, n) {
			for i := 0; i < c; i++ {
				k := nkey(m, n, i)
				if k < start {
					continue
				}
				visit(k, m.LoadField(child(m, n, i), rPayload))
				visited++
				if visited >= limit {
					return false
				}
			}
			return true
		}
		for i := findIdx(m, n, start); i < c; i++ {
			if !walk(child(m, n, i)) {
				return false
			}
		}
		return true
	}
	walk(db.root(m))
	return visited
}

// Put inserts or replaces key k with the given payload. Replacement
// allocates a fresh row and detail (the old ones become garbage), which is
// the update churn H2 exhibits.
func (db *DB) Put(m *core.Mutator, k uint64, payload uint64) {
	db.stamp++
	// Allocate row + detail up front; no references held yet.
	detail := m.Alloc(db.types.Detail)
	m.StoreField(detail, 0, payload^k)
	m.SetRoot(db.base+slotPinC, detail)
	row := m.Alloc(db.types.Row)
	m.StoreField(row, rKey, k)
	m.StoreField(row, rPayload, payload)
	m.StoreField(row, rStamp, db.stamp)
	m.StoreRef(row, rDetail, m.LoadRoot(db.base+slotPinC))
	m.SetRoot(db.base+slotPinC, row)

	if count(m, db.root(m)) == maxKeys {
		db.splitRoot(m)
	}
	m.SetRoot(db.base+slotPinA, db.root(m))
	for {
		cur := m.LoadRoot(db.base + slotPinA)
		c := count(m, cur)
		i := findIdx(m, cur, k)
		if isLeaf(m, cur) {
			if i < c && nkey(m, cur, i) == k {
				m.StoreRef(cur, fChildren+i, m.LoadRoot(db.base+slotPinC))
				return
			}
			for j := c; j > i; j-- {
				m.StoreField(cur, fKeys+j, nkey(m, cur, j-1))
				m.StoreRef(cur, fChildren+j, child(m, cur, j-1))
			}
			m.StoreField(cur, fKeys+i, k)
			m.StoreRef(cur, fChildren+i, m.LoadRoot(db.base+slotPinC))
			m.StoreField(cur, fCount, uint64(c+1))
			db.size++
			return
		}
		if i == c {
			// k becomes the new maximum of the rightmost subtree.
			i = c - 1
			m.StoreField(cur, fKeys+i, k)
		}
		if count(m, child(m, cur, i)) == maxKeys {
			db.splitChild(m, i)
			cur = m.LoadRoot(db.base + slotPinA)
			if k > nkey(m, cur, i) {
				i++
			}
		}
		m.SetRoot(db.base+slotPinA, child(m, cur, i))
	}
}

// splitRoot grows the tree by one level.
func (db *DB) splitRoot(m *core.Mutator) {
	m.SetRoot(db.base+slotPinA, db.root(m))
	newRoot := m.Alloc(db.types.Node)
	old := m.LoadRoot(db.base + slotPinA)
	m.StoreField(newRoot, fKeys+0, nkey(m, old, count(m, old)-1))
	m.StoreRef(newRoot, fChildren+0, old)
	m.StoreField(newRoot, fCount, 1)
	m.SetRoot(db.base+slotRoot, newRoot)
	m.SetRoot(db.base+slotPinA, newRoot)
	db.splitChild(m, 0)
}

// splitChild splits the full i-th child of the node pinned in slotPinA.
// The left half keeps the low keys; the right half becomes a new sibling
// at index i+1 whose max is the old child's max.
func (db *DB) splitChild(m *core.Mutator, i int) {
	parent := m.LoadRoot(db.base + slotPinA)
	m.SetRoot(db.base+slotPinB, child(m, parent, i))
	sib := m.Alloc(db.types.Node)
	parent = m.LoadRoot(db.base + slotPinA)
	full := m.LoadRoot(db.base + slotPinB)

	if isLeaf(m, full) {
		m.StoreField(sib, fLeaf, 1)
	}
	half := maxKeys / 2
	right := maxKeys - half
	for j := 0; j < right; j++ {
		m.StoreField(sib, fKeys+j, nkey(m, full, half+j))
		m.StoreRef(sib, fChildren+j, child(m, full, half+j))
	}
	m.StoreField(sib, fCount, uint64(right))
	m.StoreField(full, fCount, uint64(half))

	oldMax := nkey(m, parent, i) // == max(full) == max(right half)
	pc := count(m, parent)
	for j := pc; j >= i+2; j-- {
		m.StoreField(parent, fKeys+j, nkey(m, parent, j-1))
		m.StoreRef(parent, fChildren+j, child(m, parent, j-1))
	}
	m.StoreField(parent, fKeys+i, nkey(m, full, half-1)) // max(left)
	m.StoreField(parent, fKeys+i+1, oldMax)
	m.StoreRef(parent, fChildren+i+1, sib)
	m.StoreField(parent, fCount, uint64(pc+1))
}

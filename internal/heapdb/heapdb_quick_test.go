package heapdb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hcsgc/internal/core"
	"hcsgc/internal/heap"
	"hcsgc/internal/objmodel"
)

// TestPropertyTreeInvariants checks structural invariants after random
// insert sequences: node key ordering, max-key parent/child agreement, and
// count bounds.
func TestPropertyTreeInvariants(t *testing.T) {
	f := func(seed int64, n16 uint16) bool {
		n := int(n16%1500) + 1
		h := heap.New(heap.Config{MaxBytes: 64 << 20}, nil)
		reg := objmodel.NewRegistry()
		c := core.MustNew(h, reg, core.Config{})
		types := RegisterTypes(reg)
		m := c.NewMutator(RootSlots)
		defer m.Close()
		db := New(m, types, 0)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			db.Put(m, uint64(rng.Intn(n))+1, rng.Uint64()>>1)
		}
		return checkInvariants(t, db, m, db.root(m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// checkInvariants validates one subtree, returning its max key through
// recursion checks.
func checkInvariants(t *testing.T, db *DB, m *core.Mutator, n heap.Ref) bool {
	c := count(m, n)
	if c < 0 || c > maxKeys {
		t.Logf("count %d out of range", c)
		return false
	}
	// Keys strictly ascending.
	for i := 1; i < c; i++ {
		if nkey(m, n, i-1) >= nkey(m, n, i) {
			t.Logf("keys not ascending at %d", i)
			return false
		}
	}
	if isLeaf(m, n) {
		// Leaf children are rows whose key matches the node key.
		for i := 0; i < c; i++ {
			row := child(m, n, i)
			if m.LoadField(row, rKey) != nkey(m, n, i) {
				t.Logf("row key mismatch at %d", i)
				return false
			}
		}
		return true
	}
	for i := 0; i < c; i++ {
		sub := child(m, n, i)
		// The subtree's max equals the separator key.
		sc := count(m, sub)
		if sc == 0 {
			t.Log("empty internal child")
			return false
		}
		if nkey(m, sub, sc-1) != nkey(m, n, i) {
			t.Logf("max-key invariant broken at child %d", i)
			return false
		}
		if !checkInvariants(t, db, m, sub) {
			return false
		}
	}
	return true
}

// TestPropertyScanIsSorted: scans always yield strictly ascending keys.
func TestPropertyScanIsSorted(t *testing.T) {
	f := func(seed int64) bool {
		h := heap.New(heap.Config{MaxBytes: 64 << 20}, nil)
		reg := objmodel.NewRegistry()
		c := core.MustNew(h, reg, core.Config{})
		types := RegisterTypes(reg)
		m := c.NewMutator(RootSlots)
		defer m.Close()
		db := New(m, types, 0)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 800; i++ {
			db.Put(m, uint64(rng.Intn(2000)), rng.Uint64()>>1)
		}
		prev := int64(-1)
		ok := true
		db.Scan(m, 0, 10000, func(k, v uint64) {
			if int64(k) <= prev {
				ok = false
			}
			prev = int64(k)
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestDBUnderEveryTable2Config runs the same insert/lookup program under
// all 19 evaluation configurations; results must be identical.
func TestDBUnderEveryTable2Config(t *testing.T) {
	knobsFor := func(config int) core.Knobs {
		k := core.Knobs{}
		if config >= 5 {
			k.Hotness = true
		}
		if config >= 11 {
			k.ColdPage = true
		}
		switch config {
		case 6, 9, 12, 15:
			k.ColdConfidence = 0.5
		case 7, 10, 13, 16:
			k.ColdConfidence = 1.0
		}
		switch config {
		case 3, 4, 17, 18:
			k.RelocateAllSmallPages = true
		}
		switch config {
		case 2, 4, 8, 9, 10, 14, 15, 16, 18:
			k.LazyRelocate = true
		}
		return k
	}
	var want uint64
	for config := 0; config < 19; config++ {
		h := heap.New(heap.Config{MaxBytes: 64 << 20}, nil)
		reg := objmodel.NewRegistry()
		c := core.MustNew(h, reg, core.Config{Knobs: knobsFor(config)})
		types := RegisterTypes(reg)
		m := c.NewMutator(RootSlots)
		db := New(m, types, 0)
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 3000; i++ {
			db.Put(m, uint64(rng.Intn(4000))+1, rng.Uint64()>>1)
			if i%500 == 0 {
				m.RequestGC()
			}
		}
		var sum uint64
		db.Scan(m, 0, 10000, func(k, v uint64) { sum += k ^ v })
		m.Close()
		if config == 0 {
			want = sum
		} else if sum != want {
			t.Fatalf("config %d: checksum %d != baseline %d", config, sum, want)
		}
	}
}

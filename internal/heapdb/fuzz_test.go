package heapdb

import (
	"encoding/binary"
	"testing"

	"hcsgc/internal/core"
	"hcsgc/internal/heap"
	"hcsgc/internal/objmodel"
)

// FuzzPutGetScan interprets the fuzz input as a sequence of keyed put/get
// operations and checks the B-tree against a map model, with a GC cycle
// sprinkled in.
func FuzzPutGetScan(f *testing.F) {
	f.Add([]byte{1, 0, 2, 0, 1, 1, 3, 0})
	f.Add([]byte{255, 254, 253, 0, 1, 2})
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 512 {
			program = program[:512]
		}
		h := heap.New(heap.Config{MaxBytes: 32 << 20}, nil)
		reg := objmodel.NewRegistry()
		c := core.MustNew(h, reg, core.Config{Knobs: core.Knobs{LazyRelocate: true, RelocateAllSmallPages: true}})
		types := RegisterTypes(reg)
		m := c.NewMutator(RootSlots)
		defer m.Close()
		db := New(m, types, 0)
		model := map[uint64]uint64{}

		for i := 0; i+2 < len(program); i += 3 {
			k := uint64(binary.LittleEndian.Uint16(program[i:])) + 1
			switch program[i+2] % 4 {
			case 0, 1:
				v := uint64(program[i+2]) * 31
				db.Put(m, k, v)
				model[k] = v
			case 2:
				v, ok := db.Get(m, k)
				mv, mok := model[k]
				if ok != mok || (ok && v != mv) {
					t.Fatalf("Get(%d) = %d,%v; model %d,%v", k, v, ok, mv, mok)
				}
			case 3:
				if len(model)%7 == 0 {
					m.RequestGC()
				}
			}
		}
		if db.Size() != len(model) {
			t.Fatalf("size %d != model %d", db.Size(), len(model))
		}
		n := 0
		db.Scan(m, 0, len(model)+1, func(k, v uint64) {
			if model[k] != v {
				t.Fatalf("scan (%d,%d) != model %d", k, v, model[k])
			}
			n++
		})
		if n != len(model) {
			t.Fatalf("scan visited %d of %d", n, len(model))
		}
	})
}

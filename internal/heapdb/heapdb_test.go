package heapdb

import (
	"math/rand"
	"sort"
	"testing"

	"hcsgc/internal/core"
	"hcsgc/internal/heap"
	"hcsgc/internal/objmodel"
)

func newDB(t *testing.T, knobs core.Knobs) (*DB, *core.Mutator) {
	t.Helper()
	h := heap.New(heap.Config{MaxBytes: 128 << 20}, nil)
	reg := objmodel.NewRegistry()
	c, err := core.New(h, reg, core.Config{Knobs: knobs})
	if err != nil {
		t.Fatal(err)
	}
	types := RegisterTypes(reg)
	m := c.NewMutator(RootSlots + 2)
	t.Cleanup(m.Close)
	return New(m, types, 0), m
}

func TestEmptyDB(t *testing.T) {
	db, m := newDB(t, core.Knobs{})
	if db.Size() != 0 {
		t.Fatal("fresh DB not empty")
	}
	if _, ok := db.Get(m, 42); ok {
		t.Fatal("Get on empty DB must miss")
	}
	if n := db.Scan(m, 0, 10, func(k, v uint64) {}); n != 0 {
		t.Fatal("Scan on empty DB must visit nothing")
	}
}

func TestPutGetSingle(t *testing.T) {
	db, m := newDB(t, core.Knobs{})
	db.Put(m, 7, 700)
	if v, ok := db.Get(m, 7); !ok || v != 700 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if _, ok := db.Get(m, 8); ok {
		t.Fatal("absent key must miss")
	}
	if db.Size() != 1 {
		t.Fatalf("size = %d", db.Size())
	}
}

func TestPutReplace(t *testing.T) {
	db, m := newDB(t, core.Knobs{})
	db.Put(m, 5, 50)
	db.Put(m, 5, 51)
	if v, _ := db.Get(m, 5); v != 51 {
		t.Fatalf("replaced value = %d", v)
	}
	if db.Size() != 1 {
		t.Fatalf("size after replace = %d", db.Size())
	}
}

func TestSequentialInsertAscending(t *testing.T) {
	db, m := newDB(t, core.Knobs{})
	const n = 1000
	for i := uint64(1); i <= n; i++ {
		db.Put(m, i, i*10)
	}
	if db.Size() != n {
		t.Fatalf("size = %d", db.Size())
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := db.Get(m, i); !ok || v != i*10 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestSequentialInsertDescending(t *testing.T) {
	db, m := newDB(t, core.Knobs{})
	const n = 1000
	for i := n; i >= 1; i-- {
		db.Put(m, uint64(i), uint64(i))
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := db.Get(m, i); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestScanOrderedComplete(t *testing.T) {
	db, m := newDB(t, core.Knobs{})
	keys := rand.New(rand.NewSource(3)).Perm(500)
	for _, k := range keys {
		db.Put(m, uint64(k+1), uint64(k))
	}
	var got []uint64
	n := db.Scan(m, 0, 10000, func(k, v uint64) { got = append(got, k) })
	if n != 500 || len(got) != 500 {
		t.Fatalf("scan visited %d", n)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("scan out of order at %d: %d <= %d", i, got[i], got[i-1])
		}
	}
}

func TestScanRange(t *testing.T) {
	db, m := newDB(t, core.Knobs{})
	for i := uint64(0); i < 100; i++ {
		db.Put(m, i*2, i) // even keys 0..198
	}
	var got []uint64
	db.Scan(m, 51, 5, func(k, v uint64) { got = append(got, k) })
	want := []uint64{52, 54, 56, 58, 60}
	if len(got) != 5 {
		t.Fatalf("scan got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan got %v, want %v", got, want)
		}
	}
}

func TestGetDetail(t *testing.T) {
	db, m := newDB(t, core.Knobs{})
	db.Put(m, 9, 90)
	d, ok := db.GetDetail(m, 9)
	if !ok || d != 90^9 {
		t.Fatalf("detail = %d,%v, want %d", d, ok, 90^9)
	}
	if _, ok := db.GetDetail(m, 10); ok {
		t.Fatal("absent detail must miss")
	}
}

func TestAgainstReferenceModel(t *testing.T) {
	db, m := newDB(t, core.Knobs{})
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(17))
	for op := 0; op < 20000; op++ {
		k := uint64(rng.Intn(3000)) + 1
		switch rng.Intn(3) {
		case 0, 1: // put
			v := rng.Uint64() >> 1
			db.Put(m, k, v)
			ref[k] = v
		case 2: // get
			v, ok := db.Get(m, k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("op %d: Get(%d) = %d,%v, want %d,%v", op, k, v, ok, rv, rok)
			}
		}
	}
	if db.Size() != len(ref) {
		t.Fatalf("size = %d, want %d", db.Size(), len(ref))
	}
	// Full scan agrees with the sorted reference.
	var refKeys []uint64
	for k := range ref {
		refKeys = append(refKeys, k)
	}
	sort.Slice(refKeys, func(i, j int) bool { return refKeys[i] < refKeys[j] })
	i := 0
	db.Scan(m, 0, len(ref)+1, func(k, v uint64) {
		if i < len(refKeys) && (k != refKeys[i] || v != ref[k]) {
			t.Fatalf("scan[%d] = (%d,%d), want (%d,%d)", i, k, v, refKeys[i], ref[refKeys[i]])
		}
		i++
	})
	if i != len(refKeys) {
		t.Fatalf("scan visited %d, want %d", i, len(refKeys))
	}
}

func TestSurvivesGC(t *testing.T) {
	db, m := newDB(t, core.Knobs{Hotness: true, ColdConfidence: 1.0, LazyRelocate: true})
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(19))
	for round := 0; round < 6; round++ {
		for op := 0; op < 2000; op++ {
			k := uint64(rng.Intn(5000)) + 1
			v := rng.Uint64() >> 1
			db.Put(m, k, v)
			ref[k] = v
		}
		m.RequestGC()
		// Everything must still be reachable and correct.
		for k, v := range ref {
			got, ok := db.Get(m, k)
			if !ok || got != v {
				t.Fatalf("round %d: Get(%d) = %d,%v, want %d", round, k, got, ok, v)
			}
		}
	}
	if db.Size() != len(ref) {
		t.Fatalf("size = %d, want %d", db.Size(), len(ref))
	}
}

func TestUpdateChurnCreatesGarbage(t *testing.T) {
	// Repeated replacement of the same keys must produce reclaimable
	// garbage (old rows/details).
	h := heap.New(heap.Config{MaxBytes: 32 << 20}, nil)
	reg := objmodel.NewRegistry()
	c := core.MustNew(h, reg, core.Config{})
	types := RegisterTypes(reg)
	m := c.NewMutator(RootSlots)
	defer m.Close()
	db := New(m, types, 0)
	for i := uint64(0); i < 100; i++ {
		db.Put(m, i, i)
	}
	for round := 0; round < 2000; round++ {
		for i := uint64(0); i < 100; i++ {
			db.Put(m, i, uint64(round))
		}
	}
	used := h.UsedBytes()
	m.RequestGC()
	m.RequestGC() // second cycle completes relocation & frees pages
	if h.UsedBytes() >= used {
		t.Fatalf("update churn garbage not reclaimed: %d -> %d", used, h.UsedBytes())
	}
	if v, _ := db.Get(m, 50); v != 1999 {
		t.Fatalf("final value = %d", v)
	}
}

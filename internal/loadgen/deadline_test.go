package loadgen

import "testing"

// TestDeadlinesAreDerivedNotDrawn pins the overload plane's schedule
// contract: arming DeadlineCycles stamps every request with At +
// DeadlineCycles but consumes no RNG draws, so the arrivals, keys, ops,
// and value sizes are bit-identical to the deadline-free schedule. The
// protected and unprotected sides of the overload A/B depend on this to
// serve the same offered load.
func TestDeadlinesAreDerivedNotDrawn(t *testing.T) {
	base := Config{Seed: 11, Keys: 512, Requests: 2_000}
	plain := Generate(base)
	armed := base
	armed.DeadlineCycles = 250_000
	withDl := Generate(armed)

	if err := plain.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := withDl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(plain.Requests) != len(withDl.Requests) {
		t.Fatalf("request counts diverge: %d vs %d", len(plain.Requests), len(withDl.Requests))
	}
	for i := range plain.Requests {
		p, d := plain.Requests[i], withDl.Requests[i]
		if p.Deadline != 0 {
			t.Fatalf("request %d: deadline %d on an unarmed schedule", i, p.Deadline)
		}
		if d.Deadline != d.At+250_000 {
			t.Fatalf("request %d: deadline %d, want At %d + 250000", i, d.Deadline, d.At)
		}
		d.Deadline = 0
		if p != d {
			t.Fatalf("request %d diverged beyond the deadline stamp:\n%+v\n%+v", i, p, d)
		}
	}
}

// TestRetryBackoffDeterministicAndBounded: the jittered backoff is a pure
// function of (seed, seq, attempt) with jitter in [0.5, 1.5) around
// base x attempt, and degenerate inputs cost nothing.
func TestRetryBackoffDeterministicAndBounded(t *testing.T) {
	if RetryBackoff(1, 10, 1, 0) != 0 {
		t.Fatal("zero base must mean zero backoff")
	}
	if RetryBackoff(1, 10, 0, 1000) != 0 || RetryBackoff(1, 10, -1, 1000) != 0 {
		t.Fatal("non-positive attempt must mean zero backoff")
	}

	const base = 4_000
	for seq := uint64(0); seq < 500; seq++ {
		for attempt := 1; attempt <= 3; attempt++ {
			got := RetryBackoff(42, seq, attempt, base)
			if got != RetryBackoff(42, seq, attempt, base) {
				t.Fatalf("backoff(42, %d, %d) not deterministic", seq, attempt)
			}
			lo := uint64(0.5 * float64(base) * float64(attempt))
			hi := uint64(1.5 * float64(base) * float64(attempt))
			if got < lo || got >= hi {
				t.Fatalf("backoff(42, %d, %d) = %d outside [%d, %d)", seq, attempt, got, lo, hi)
			}
		}
	}

	// Different seeds decorrelate clients; different seqs decorrelate
	// requests (no thundering herd of identical waits).
	same, distinct := 0, map[uint64]bool{}
	for seq := uint64(0); seq < 200; seq++ {
		a, b := RetryBackoff(1, seq, 1, base), RetryBackoff(2, seq, 1, base)
		if a == b {
			same++
		}
		distinct[a] = true
	}
	if same > 10 {
		t.Fatalf("seeds 1 and 2 agree on %d/200 backoffs", same)
	}
	if len(distinct) < 100 {
		t.Fatalf("only %d distinct backoffs across 200 seqs", len(distinct))
	}
}

// TestValidateCatchesDeadlineDrift: a mutated deadline fails schedule
// validation.
func TestValidateCatchesDeadlineDrift(t *testing.T) {
	s := Generate(Config{Seed: 5, Keys: 256, Requests: 500, DeadlineCycles: 100_000})
	s.Requests[17].Deadline++
	if s.Validate() == nil {
		t.Fatal("Validate accepted a drifted deadline")
	}
}

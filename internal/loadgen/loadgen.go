// Package loadgen is a seeded, deterministic open-loop load generator
// for the KV server workload. It produces a complete request schedule up
// front: Poisson arrival times on the virtual-cycle timeline (so the
// measurement cannot suffer coordinated omission — a stalled server does
// not slow the arrival of further requests), Zipfian key popularity with
// configurable skew, an op mix with per-key version churn, session churn
// that retires and replaces key ranges, and three traffic phases — steady,
// burst (the arrival rate multiplied), and shifted (the hot set rotated
// onto formerly cold keys, a diurnal phase change).
//
// Determinism contract: the schedule is a pure function of Config. All
// randomness comes from a private splitmix64 stream seeded by Config.Seed
// — no time.Now, no global rand, no math/rand (whose stream is not
// guaranteed stable across Go releases) — so golden tests can pin exact
// arrival times and key frequencies.
package loadgen

import (
	"fmt"
	"math"
	"sort"
)

// Op is a request kind.
type Op uint8

// The request kinds. Gets on absent keys are read-through fills (the
// store inserts the value), so a cache population emerges from traffic.
const (
	// OpGet reads a key (filling it on a miss, object-cache style).
	OpGet Op = iota
	// OpSet overwrites a key with a fresh value version; the previous
	// version becomes garbage (per-key version churn).
	OpSet
	// OpDelete unlinks a key. Session churn emits bursts of deletes for
	// a retired key range; the mix also carries a small random fraction.
	OpDelete
	// OpScan reads a run of keys in key order starting at Key.
	OpScan

	// NumOps is the number of request kinds.
	NumOps = 4
)

// String names the op for metrics labels and reports.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpSet:
		return "set"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	default:
		return "unknown"
	}
}

// PhaseNames are the traffic phases in schedule order.
var PhaseNames = []string{"steady", "burst", "shifted"}

// Phase indices into PhaseNames.
const (
	PhaseSteady = 0
	PhaseBurst  = 1
	PhaseShift  = 2

	// NumPhases is the number of traffic phases.
	NumPhases = 3
)

// Request is one scheduled request. Keys encode a generation so session
// churn can retire a key range: Key = generation*Keys + slot, where slot
// in [0, Keys) is the stable identity (and the sharding domain — Key mod
// Keys is constant across generations of a slot).
type Request struct {
	// Seq is the request's index in the schedule.
	Seq int
	// At is the arrival time in virtual cycles (open-loop: fixed by the
	// schedule, independent of server progress).
	At uint64
	// Op is the request kind.
	Op Op
	// Key is the full generation-qualified key.
	Key uint64
	// ValueWords sizes the value payload for sets and read-through fills.
	ValueWords int
	// ScanLen is the number of keys an OpScan reads.
	ScanLen int
	// Phase indexes PhaseNames.
	Phase int
	// SessionRetire marks a churn-generated delete (session teardown)
	// rather than a mix delete, for reporting.
	SessionRetire bool
	// Deadline is the absolute virtual-cycle deadline for the request
	// (At + Config.DeadlineCycles), or 0 when the schedule carries no
	// deadlines. The serving side arms it as a per-request allocation
	// budget; the client side stops retrying past it.
	Deadline uint64
}

// PhaseInfo describes one phase's slice of the schedule.
type PhaseInfo struct {
	// Name is PhaseNames[index].
	Name string `json:"name"`
	// FirstSeq/EndSeq bound the phase's requests: [FirstSeq, EndSeq).
	FirstSeq int `json:"first_seq"`
	EndSeq   int `json:"end_seq"`
	// StartAt/EndAt bound the phase on the virtual timeline.
	StartAt uint64 `json:"start_at_cycles"`
	EndAt   uint64 `json:"end_at_cycles"`
}

// Config parameterises a schedule. The zero value is unusable; call
// (Config).withDefaults via Generate, which fills every unset knob.
type Config struct {
	// Seed drives the private splitmix64 stream.
	Seed int64
	// Keys is the keyspace size (slots). Default 10_000.
	Keys int
	// Requests is the total request count across all three phases.
	// Default 30_000.
	Requests int
	// ZipfTheta is the popularity skew (YCSB-style, 0 = uniform).
	// Default 0.99.
	ZipfTheta float64
	// MeanGapCycles is the steady-phase mean interarrival gap in virtual
	// cycles. Default 600.
	MeanGapCycles float64
	// BurstFactor multiplies the arrival rate during the burst phase
	// (gaps divide by it). Default 4.
	BurstFactor float64
	// ShiftFraction rotates the hot set by this fraction of the keyspace
	// in the shifted phase. Default 0.5.
	ShiftFraction float64
	// SetFraction / DeleteFraction / ScanFraction is the op mix; the
	// remainder are gets. Defaults 0.25 / 0.02 / 0.03.
	SetFraction    float64
	DeleteFraction float64
	ScanFraction   float64
	// ScanLen is the keys-per-scan run length. Default 16.
	ScanLen int
	// ValueWordsMin/Max bound the mixed value sizes (8-byte words).
	// Defaults 8 / 56.
	ValueWordsMin int
	ValueWordsMax int
	// SessionEvery retires one session (a key range) every this many
	// requests. 0 = Requests/12 (so each phase sees churn);
	// negative = no churn.
	SessionEvery int
	// SessionSpan is the retired range size in slots. Default Keys/32.
	SessionSpan int
	// DeadlineCycles, when positive, stamps every request with an
	// absolute deadline At + DeadlineCycles. Deadlines are derived, not
	// drawn: arming them consumes no RNG stream, so schedules with and
	// without deadlines have identical arrivals, keys, and op mixes.
	DeadlineCycles uint64
}

func (c Config) withDefaults() Config {
	if c.Keys <= 0 {
		c.Keys = 10_000
	}
	if c.Requests <= 0 {
		c.Requests = 30_000
	}
	if c.ZipfTheta == 0 {
		c.ZipfTheta = 0.99
	}
	if c.MeanGapCycles <= 0 {
		c.MeanGapCycles = 600
	}
	if c.BurstFactor <= 0 {
		c.BurstFactor = 4
	}
	if c.ShiftFraction <= 0 {
		c.ShiftFraction = 0.5
	}
	if c.SetFraction <= 0 {
		c.SetFraction = 0.25
	}
	if c.DeleteFraction <= 0 {
		c.DeleteFraction = 0.02
	}
	if c.ScanFraction <= 0 {
		c.ScanFraction = 0.03
	}
	if c.ScanLen <= 0 {
		c.ScanLen = 16
	}
	if c.ValueWordsMin <= 0 {
		c.ValueWordsMin = 8
	}
	if c.ValueWordsMax < c.ValueWordsMin {
		c.ValueWordsMax = c.ValueWordsMin + 48
	}
	if c.SessionEvery == 0 {
		c.SessionEvery = c.Requests / 12
	}
	if c.SessionSpan <= 0 {
		c.SessionSpan = c.Keys / 32
		if c.SessionSpan < 1 {
			c.SessionSpan = 1
		}
	}
	return c
}

// Schedule is a complete generated request stream.
type Schedule struct {
	// Config is the (defaulted) generating configuration.
	Config Config
	// Requests are the scheduled requests in arrival order.
	Requests []Request
	// Phases describe the three phase slices.
	Phases []PhaseInfo
}

// Span returns the virtual-cycle length of the schedule (last arrival).
func (s *Schedule) Span() uint64 {
	if len(s.Requests) == 0 {
		return 0
	}
	return s.Requests[len(s.Requests)-1].At
}

// rng is a splitmix64 stream: tiny, fast, and — unlike math/rand — its
// output is pinned by this file, so golden tests survive toolchain bumps.
type rng struct{ s uint64 }

func newRNG(seed int64) *rng {
	// Avoid the all-zeros fixpoint-ish start for seed 0.
	return &rng{s: uint64(seed)*0x9e3779b97f4a7c15 + 0x1234567887654321}
}

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// expGap draws an exponential interarrival gap with the given mean (the
// Poisson process), floored at 1 cycle so arrival times strictly advance.
func (r *rng) expGap(mean float64) uint64 {
	g := -mean * math.Log(1-r.float())
	if g < 1 {
		return 1
	}
	if g > math.MaxInt64 {
		return math.MaxInt64
	}
	return uint64(g)
}

// zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^theta by inverse CDF over an exact cumulative table.
type zipf struct {
	cum []float64
}

func newZipf(n int, theta float64) *zipf {
	z := &zipf{cum: make([]float64, n)}
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), theta)
		z.cum[i] = total
	}
	return z
}

// rank draws one rank using u in [0,1).
func (z *zipf) rank(u float64) int {
	target := u * z.cum[len(z.cum)-1]
	return sort.SearchFloat64s(z.cum, target)
}

// Generate produces the schedule for cfg. The same Config always yields
// a deeply equal Schedule.
func Generate(cfg Config) *Schedule {
	cfg = cfg.withDefaults()
	r := newRNG(cfg.Seed)
	z := newZipf(cfg.Keys, cfg.ZipfTheta)

	// slotOf maps a popularity rank to a keyspace slot through a fixed
	// multiplicative permutation, so the hot head is scattered across the
	// table rather than packed at slot 0; the shifted phase adds a
	// rotation, moving the hot set onto formerly cold slots.
	mult := 2654435761 % cfg.Keys
	for gcd(mult, cfg.Keys) != 1 {
		mult++
	}
	shift := int(cfg.ShiftFraction * float64(cfg.Keys))
	slotOf := func(rank, phase int) int {
		slot := (rank * mult) % cfg.Keys
		if phase == PhaseShift {
			slot = (slot + shift) % cfg.Keys
		}
		return slot
	}

	// gen tracks each slot's current generation; session churn bumps a
	// span's generations and schedules teardown deletes of the old keys.
	gen := make([]uint32, cfg.Keys)
	keyOf := func(slot int) uint64 {
		return uint64(gen[slot])*uint64(cfg.Keys) + uint64(slot)
	}

	perPhase := cfg.Requests / NumPhases
	s := &Schedule{Config: cfg, Requests: make([]Request, 0, cfg.Requests)}
	var now uint64
	var pendingRetire []uint64 // old-generation keys awaiting teardown
	nextSpan := 0              // rotating retired-span origin

	valueWords := func() int {
		return cfg.ValueWordsMin + r.intn(cfg.ValueWordsMax-cfg.ValueWordsMin+1)
	}

	for seq := 0; seq < cfg.Requests; seq++ {
		phase := seq / perPhase
		if phase >= NumPhases {
			phase = NumPhases - 1
		}
		gap := cfg.MeanGapCycles
		if phase == PhaseBurst {
			gap /= cfg.BurstFactor
		}
		now += r.expGap(gap)

		req := Request{Seq: seq, At: now, Phase: phase}
		if cfg.DeadlineCycles > 0 {
			req.Deadline = now + cfg.DeadlineCycles
		}
		switch {
		case len(pendingRetire) > 0:
			// Session teardown: deletes for the retired range drain at
			// the head of the schedule (a burst of deletes, as a real
			// session expiry produces).
			req.Op = OpDelete
			req.Key = pendingRetire[0]
			req.SessionRetire = true
			pendingRetire = pendingRetire[1:]
		default:
			u := r.float()
			rank := z.rank(r.float())
			slot := slotOf(rank, phase)
			req.Key = keyOf(slot)
			switch {
			case u < cfg.SetFraction:
				req.Op = OpSet
				req.ValueWords = valueWords()
			case u < cfg.SetFraction+cfg.DeleteFraction:
				req.Op = OpDelete
			case u < cfg.SetFraction+cfg.DeleteFraction+cfg.ScanFraction:
				req.Op = OpScan
				req.ScanLen = cfg.ScanLen
			default:
				req.Op = OpGet
				req.ValueWords = valueWords() // read-through fill size
			}
		}
		s.Requests = append(s.Requests, req)

		// Session churn: retire the next key span — bump generations (so
		// fresh traffic uses new keys) and queue teardown deletes.
		if cfg.SessionEvery > 0 && (seq+1)%cfg.SessionEvery == 0 {
			start := nextSpan % cfg.Keys
			for i := 0; i < cfg.SessionSpan; i++ {
				slot := (start + i) % cfg.Keys
				pendingRetire = append(pendingRetire, keyOf(slot))
				gen[slot]++
			}
			nextSpan += cfg.SessionSpan
		}
	}

	// Phase boundary metadata.
	for p := 0; p < NumPhases; p++ {
		first := p * perPhase
		end := (p + 1) * perPhase
		if p == NumPhases-1 {
			end = cfg.Requests
		}
		info := PhaseInfo{Name: PhaseNames[p], FirstSeq: first, EndSeq: end}
		if first < len(s.Requests) {
			info.StartAt = s.Requests[first].At
		}
		if end-1 < len(s.Requests) && end > first {
			info.EndAt = s.Requests[end-1].At
		}
		s.Phases = append(s.Phases, info)
	}
	return s
}

// Validate sanity-checks a schedule: arrivals strictly increase, phases
// tile the request range, keys stay generation-consistent.
func (s *Schedule) Validate() error {
	var prev uint64
	for i, req := range s.Requests {
		if req.Seq != i {
			return fmt.Errorf("loadgen: request %d carries seq %d", i, req.Seq)
		}
		if req.At <= prev && i > 0 {
			return fmt.Errorf("loadgen: arrival %d not after its predecessor (%d <= %d)", i, req.At, prev)
		}
		prev = req.At
		want := uint64(0)
		if s.Config.DeadlineCycles > 0 {
			want = req.At + s.Config.DeadlineCycles
		}
		if req.Deadline != want {
			return fmt.Errorf("loadgen: request %d deadline %d, want %d", i, req.Deadline, want)
		}
	}
	if len(s.Phases) != NumPhases {
		return fmt.Errorf("loadgen: %d phases, want %d", len(s.Phases), NumPhases)
	}
	next := 0
	for _, ph := range s.Phases {
		if ph.FirstSeq != next {
			return fmt.Errorf("loadgen: phase %s starts at %d, want %d", ph.Name, ph.FirstSeq, next)
		}
		next = ph.EndSeq
	}
	if next != len(s.Requests) {
		return fmt.Errorf("loadgen: phases cover %d requests, schedule has %d", next, len(s.Requests))
	}
	return nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// RetryBackoff returns the jittered backoff, in virtual cycles, a client
// waits before retry attempt (1-based) of request seq: base × attempt,
// scaled by a deterministic jitter in [0.5, 1.5) keyed by (seed, seq,
// attempt). A pure function — retrying clients stay reproducible and
// never synchronize their retries into a thundering herd.
func RetryBackoff(seed int64, seq uint64, attempt int, base uint64) uint64 {
	if base == 0 || attempt <= 0 {
		return 0
	}
	h := seq<<8 | uint64(attempt&0xff)
	h = h*0x9e3779b97f4a7c15 + uint64(seed)
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	jitter := 0.5 + float64(h>>11)/(1<<53)
	return uint64(float64(base) * float64(attempt) * jitter)
}

package loadgen

import (
	"reflect"
	"testing"
)

// testConfig is the fixed configuration the golden tests pin. Changing
// the generator's stream consumption order is a breaking change to every
// recorded experiment seed — the goldens make that loud.
func testConfig() Config {
	return Config{Seed: 42, Keys: 1000, Requests: 3000}
}

// TestSameSeedIdenticalSchedule is the determinism contract: the schedule
// is a pure function of Config.
func TestSameSeedIdenticalSchedule(t *testing.T) {
	a := Generate(testConfig())
	b := Generate(testConfig())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same Config produced different schedules")
	}
	c := testConfig()
	c.Seed = 43
	if reflect.DeepEqual(a.Requests, Generate(c).Requests) {
		t.Fatal("different seeds produced identical request streams")
	}
}

// TestScheduleValid checks the structural invariants at a few shapes.
func TestScheduleValid(t *testing.T) {
	for _, cfg := range []Config{
		testConfig(),
		{Seed: 7, Keys: 128, Requests: 500, BurstFactor: 8},
		{Seed: 1, Keys: 10_000, Requests: 9_001, SessionEvery: -1},
		{Seed: 9, Keys: 33, Requests: 100, SessionEvery: 10, SessionSpan: 5},
	} {
		s := Generate(cfg)
		if err := s.Validate(); err != nil {
			t.Errorf("config %+v: %v", cfg, err)
		}
	}
}

// TestGoldenZipfHead pins the Zipfian head: the most popular slots and
// their exact frequencies under the fixed seed. Slot identity (not just
// frequency) matters — it proves the rank->slot permutation and the
// shifted-phase rotation are stable.
func TestGoldenZipfHead(t *testing.T) {
	s := Generate(testConfig())
	counts := map[uint64]int{}
	for _, r := range s.Requests {
		counts[r.Key%uint64(s.Config.Keys)]++
	}
	// Head rank 0 maps to slot 0 in steady/burst and — rotated by
	// ShiftFraction*Keys = 500 — to slot 500 in the shifted phase.
	want := map[uint64]int{
		0:   231, // rank 0, steady+burst
		500: 108, // rank 0, shifted phase (rotated head)
		761: 107, // rank 1 (mult = 2654435761 mod 1000), steady+burst
	}
	for slot, n := range want {
		if counts[slot] != n {
			t.Errorf("slot %d frequency = %d, golden %d", slot, counts[slot], n)
		}
	}
}

// TestGoldenArrivalsAndPhases pins the Poisson arrival stream's first
// samples, the phase boundaries (seq and virtual-time), and the total
// span. The burst phase must compress arrivals by ~BurstFactor.
func TestGoldenArrivalsAndPhases(t *testing.T) {
	s := Generate(testConfig())
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{785, 1309, 2205} {
		if got := s.Requests[i].At; got != want {
			t.Errorf("arrival %d = %d, golden %d", i, got, want)
		}
	}
	wantPhases := []PhaseInfo{
		{Name: "steady", FirstSeq: 0, EndSeq: 1000, StartAt: 785, EndAt: 596610},
		{Name: "burst", FirstSeq: 1000, EndSeq: 2000, StartAt: 596647, EndAt: 749150},
		{Name: "shifted", FirstSeq: 2000, EndSeq: 3000, StartAt: 749569, EndAt: 1320650},
	}
	if !reflect.DeepEqual(s.Phases, wantPhases) {
		t.Errorf("phases = %+v, golden %+v", s.Phases, wantPhases)
	}
	if got := s.Span(); got != 1320650 {
		t.Errorf("span = %d, golden 1320650", got)
	}
	// Open-loop rate check: the burst phase packs the same request count
	// into a much shorter stretch of virtual time than steady.
	steady := wantPhases[0].EndAt - wantPhases[0].StartAt
	burst := wantPhases[1].EndAt - wantPhases[1].StartAt
	if float64(steady)/float64(burst) < 2 {
		t.Errorf("burst phase not compressed: steady span %d, burst span %d", steady, burst)
	}
}

// TestSessionChurn checks that churn retires ranges: teardown deletes are
// marked, and a retired slot's later traffic uses a bumped generation.
func TestSessionChurn(t *testing.T) {
	cfg := testConfig()
	s := Generate(cfg)
	keys := uint64(s.Config.Keys)
	retires := 0
	maxGen := uint64(0)
	for _, r := range s.Requests {
		if r.SessionRetire {
			retires++
			if r.Op != OpDelete {
				t.Fatalf("session retire with op %v", r.Op)
			}
		}
		if g := r.Key / keys; g > maxGen {
			maxGen = g
		}
	}
	if retires == 0 {
		t.Fatal("no session teardown deletes generated")
	}
	if maxGen == 0 {
		t.Fatal("no slot ever advanced a generation")
	}

	noChurn := cfg
	noChurn.SessionEvery = -1
	for _, r := range Generate(noChurn).Requests {
		if r.SessionRetire || r.Key >= keys {
			t.Fatal("SessionEvery<0 must disable churn")
		}
	}
}

// TestOpMixAndSizes sanity-checks the op mix fractions and value sizing.
func TestOpMixAndSizes(t *testing.T) {
	s := Generate(testConfig())
	var ops [NumOps]int
	for _, r := range s.Requests {
		ops[r.Op]++
		switch r.Op {
		case OpGet, OpSet:
			if r.ValueWords < s.Config.ValueWordsMin || r.ValueWords > s.Config.ValueWordsMax {
				t.Fatalf("req %d value words %d outside [%d,%d]",
					r.Seq, r.ValueWords, s.Config.ValueWordsMin, s.Config.ValueWordsMax)
			}
		case OpScan:
			if r.ScanLen != s.Config.ScanLen {
				t.Fatalf("req %d scan len %d != %d", r.Seq, r.ScanLen, s.Config.ScanLen)
			}
		}
	}
	// Golden op counts for the fixed seed (deletes include session
	// teardown bursts, hence well above the 2% mix fraction).
	want := [NumOps]int{1845, 671, 400, 84}
	if ops != want {
		t.Errorf("op counts = %v, golden %v", ops, want)
	}
}

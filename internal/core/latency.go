package core

import (
	"fmt"

	"hcsgc/internal/telemetry/latency"
)

// The collector's latency-attribution wiring. All hooks are one
// predictable branch when no tracker is attached (c.lat == nil), matching
// the telemetry/locality/faultinject discipline; the priced difference is
// BenchmarkLatencyOverhead.
//
// Time here is the virtual timeline in simulated cycles: the maximum
// attached-mutator cycle ledger plus the accumulated STW pause cost.
// Mutator ledgers only advance while mutators run and pause cost only
// accrues while they are stopped, so the two sum to a clock that advances
// through both regimes; the CAS-max keeps it monotone across concurrent
// readers.

// virtualNow returns the current virtual time. Zero when neither a
// latency tracker nor a signal plane is attached (callers guard
// themselves to skip the mutator walk).
func (c *Collector) virtualNow() uint64 {
	if c.lat == nil && c.sig == nil {
		return 0
	}
	return c.VirtualCycles()
}

// VirtualCycles computes the current virtual time unconditionally (the
// latency tracker's presence only gates the cheap internal fast path, not
// the clock itself). Serving-workload harnesses use it as the global
// request clock; note the cost is one walk over the attached mutators.
func (c *Collector) VirtualCycles() uint64 {
	var maxMut uint64
	c.mutMu.Lock()
	for m := range c.muts {
		if v := m.Cycles(); v > maxMut {
			maxMut = v
		}
	}
	c.mutMu.Unlock()
	now := maxMut + c.pauseTotal.Load()
	for {
		old := c.vclock.Load()
		if now <= old {
			return old
		}
		if c.vclock.CompareAndSwap(old, now) {
			return now
		}
	}
}

// PauseCycles returns the accumulated STW pause cost on the virtual
// timeline (only maintained while a latency tracker or signal plane is
// attached).
func (c *Collector) PauseCycles() uint64 {
	return c.pauseTotal.Load()
}

// StallCount returns the runtime-wide allocation-stall count. Serving
// harnesses delta it across a request window to detect concurrent stalls
// (the queued-behind-stall attribution signal).
func (c *Collector) StallCount() uint64 {
	return c.stallCount.Load()
}

// pauseStartClock samples the virtual clock at a pause start (world
// already stopped, so mutator ledgers are quiescent).
//
//hcsgc:stw-only
func (c *Collector) pauseStartClock() uint64 {
	if c.lat == nil && c.sig == nil {
		return 0
	}
	return c.virtualNow()
}

// recordPauseLatency feeds one finished STW pause (0-based index) into
// the tracker and advances the virtual clock past the pause cost.
//
//hcsgc:stw-only
func (c *Collector) recordPauseLatency(i int, startV, cost uint64) {
	if c.lat == nil && c.sig == nil {
		return
	}
	c.pauseTotal.Add(cost)
	c.lat.RecordPause(i, startV, cost)
}

// mutatorStallWeight is the MMU weight of one stalled mutator: 1/n of the
// mutators are stopped.
func (c *Collector) mutatorStallWeight() float64 {
	c.mutMu.Lock()
	n := len(c.muts)
	c.mutMu.Unlock()
	if n < 1 {
		n = 1
	}
	return 1 / float64(n)
}

// recordLatencyCycle completes the cycle's flight record and hands it to
// the tracker, then auto-dumps if the heap verifier found new violations
// during this cycle. Runs under cycleMu. The completed record (with the
// tracker's phase/barrier/MMU fields filled in) is returned for the
// signal plane; it is also built when only a signal plane is attached, so
// the CycleSignals record carries the pause and stall fields either way.
func (c *Collector) recordLatencyCycle(cs *CycleStats, vStart uint64) latency.CycleRecord {
	if c.lat == nil && c.sig == nil {
		return latency.CycleRecord{}
	}
	stalls := c.stallCount.Load()
	runs, violations := c.heap.Verifier().Counts()
	rec := latency.CycleRecord{
		Seq:               cs.Seq,
		Trigger:           cs.Trigger,
		VStart:            vStart,
		VEnd:              c.virtualNow(),
		Pause1:            cs.Pause1,
		Pause2:            cs.Pause2,
		Pause3:            cs.Pause3,
		ECSmall:           cs.ECSmall,
		ECMedium:          cs.ECMedium,
		ECSmallLiveBytes:  cs.ECSmallLiveBytes,
		PagesFreedEmpty:   cs.PagesFreedEmpty,
		MarkedBytes:       cs.MarkedBytes,
		HeapUsedBefore:    cs.HeapUsedBefore,
		HeapUsedAfter:     cs.HeapUsedAfter,
		SegregationPurity: cs.SegregationPurity,
		Stalls:            stalls - c.lastStalls,
		VerifyRuns:        runs,
		VerifyViolations:  violations,
	}
	c.lastStalls = stalls
	rec = c.lat.OnCycle(rec)
	if delta := violations - c.lastVerifyTotal; delta > 0 {
		c.lat.AutoDump(fmt.Sprintf(
			"heap verifier reported %d new violation(s) during cycle %d", delta, cs.Seq))
	}
	c.lastVerifyTotal = violations
	return rec
}

package core

import (
	"bytes"
	"strings"
	"testing"

	"hcsgc/internal/heap"
)

// TestECSelectionLiveRatioThreshold verifies the baseline ZGC rule: small
// pages below the 75% live-ratio threshold are selected, dense ones are
// not.
func TestECSelectionLiveRatioThreshold(t *testing.T) {
	c, types := testEnv(t, Knobs{})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(8)
	defer m.Close()

	// Page A: dense (keep everything). Page B: sparse (keep 1 in 10).
	// 2MB / 24B = ~87k objects per page; allocate 87k+20k to span two
	// pages with the second mostly garbage.
	const dense = 80000
	arr := m.AllocRefArray(dense + 3000)
	m.SetRoot(0, arr)
	for i := 0; i < dense; i++ {
		obj := m.Alloc(node)
		m.StoreRef(m.LoadRoot(0), i, obj)
	}
	for i := 0; i < 3000; i++ {
		for j := 0; j < 9; j++ {
			m.Alloc(node) // garbage
		}
		obj := m.Alloc(node)
		m.StoreRef(m.LoadRoot(0), dense+i, obj)
	}
	m.RequestGC()
	st := c.Stats()
	cs := st.Cycles[0]
	if cs.ECSmall == 0 {
		t.Fatal("sparse page must be selected")
	}
	// The dense first page must not be: with ~80k*24B = 1.9MB live on a
	// 2MB page it is above threshold, so at most the sparse tail pages
	// are in EC.
	if cs.ECSmall > 3 {
		t.Fatalf("EC small = %d; dense pages must not be selected", cs.ECSmall)
	}
}

// TestECStatsLiveBytes checks the EC live-byte accounting feeds stats.
func TestECStatsLiveBytes(t *testing.T) {
	c, types := testEnv(t, Knobs{RelocateAllSmallPages: true})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(8)
	defer m.Close()
	buildObjectArray(m, node, 1000)
	m.RequestGC()
	cs := c.Stats().Cycles[0]
	if cs.ECSmallLiveBytes < 1000*24 {
		t.Fatalf("EC live bytes = %d, want >= %d", cs.ECSmallLiveBytes, 1000*24)
	}
	if cs.MarkedBytes < cs.ECSmallLiveBytes {
		t.Fatal("marked bytes must cover EC live bytes")
	}
}

// TestMediumPageEvacuation verifies the original ZGC rule applies to
// medium pages: sparse medium pages are evacuated and survivors remap.
func TestMediumPageEvacuation(t *testing.T) {
	c, _ := testEnv(t, Knobs{})
	m := c.NewMutator(8)
	defer m.Close()
	// Two medium objects (500KB each); drop one -> page half dead.
	a := m.AllocWordArray(64 << 10) // 512KB
	b := m.AllocWordArray(64 << 10)
	m.StoreField(a, 100, 7)
	m.SetRoot(0, a)
	m.SetRoot(1, b)
	pageBefore := c.Heap().PageOf(a.Addr())
	if pageBefore.Class() != heap.ClassMedium {
		t.Fatal("expected medium page")
	}
	m.SetRoot(1, heap.NullRef) // b dies
	m.RequestGC()
	c.relocWG.Wait()
	m.RequestGC() // completes the era; drops forwarding
	got := m.LoadRoot(0)
	if m.LoadField(got, 100) != 7 {
		t.Fatal("medium object corrupted")
	}
	if c.Heap().PageOf(got.Addr()) == pageBefore {
		t.Fatal("sparse medium page should have been evacuated")
	}
}

// TestFig2ColorWindows verifies the good-color schedule of the paper's
// Fig. 2: M0 and M1 alternate between cycles, with R between them.
func TestFig2ColorWindows(t *testing.T) {
	c, types := testEnv(t, Knobs{})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(2)
	defer m.Close()
	buildList(m, node, 10)

	if c.Good() != heap.ColorRemapped {
		t.Fatal("initial good color must be R")
	}
	// Observe the mark color of each cycle via the healed root color
	// DURING the cycle; after the cycle good is R again. We infer
	// alternation through markColorM1 behaviour: run cycles and check the
	// collector is consistent (detailed window observation would need a
	// mid-cycle hook; the alternation bit is internal state we can read).
	first := c.markColorM1
	m.RequestGC()
	if c.markColorM1 == first {
		t.Fatal("mark color parity must flip each cycle")
	}
	m.RequestGC()
	if c.markColorM1 != first {
		t.Fatal("mark color parity must alternate M0/M1")
	}
	if c.Good() != heap.ColorRemapped || c.CurrentPhase() != PhaseRelocate {
		t.Fatal("between cycles the good color is R (relocation era)")
	}
}

// TestRelocationPreservesRefGraph builds a shared structure (diamond) and
// checks identity is preserved across relocation: two paths to the same
// object must still reach one object, not two copies.
func TestRelocationPreservesRefGraph(t *testing.T) {
	c, types := testEnv(t, Knobs{RelocateAllSmallPages: true, LazyRelocate: true})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(8)
	defer m.Close()
	shared := m.Alloc(node)
	m.StoreField(shared, 1, 99)
	m.SetRoot(2, shared)
	left := m.Alloc(node)
	m.StoreRef(left, 0, m.LoadRoot(2))
	m.SetRoot(0, left)
	right := m.Alloc(node)
	m.StoreRef(right, 0, m.LoadRoot(2))
	m.SetRoot(1, right)
	m.SetRoot(2, heap.NullRef)

	m.RequestGC()
	viaLeft := m.LoadRef(m.LoadRoot(0), 0)
	viaRight := m.LoadRef(m.LoadRoot(1), 0)
	if viaLeft.Addr() != viaRight.Addr() {
		t.Fatalf("shared object duplicated: %#x vs %#x", viaLeft.Addr(), viaRight.Addr())
	}
	// Mutation through one path must be visible through the other.
	m.StoreField(viaLeft, 1, 123)
	if got := m.LoadField(viaRight, 1); got != 123 {
		t.Fatalf("aliasing broken after relocation: %d", got)
	}
}

// TestNullRefsSurviveEverything runs cycles over structures full of null
// refs; the barrier must never trip on null.
func TestNullRefsSurviveEverything(t *testing.T) {
	c, _ := testEnv(t, Knobs{Hotness: true, ColdPage: true, ColdConfidence: 1, LazyRelocate: true})
	m := c.NewMutator(2)
	defer m.Close()
	arr := m.AllocRefArray(1000) // all null
	m.SetRoot(0, arr)
	m.RequestGC()
	for i := 0; i < 1000; i++ {
		if !m.LoadRef(m.LoadRoot(0), i).IsNull() {
			t.Fatal("null ref corrupted")
		}
	}
	m.RequestGC()
}

// TestSelfReferentialObject checks cyclic references survive relocation.
func TestSelfReferentialObject(t *testing.T) {
	c, types := testEnv(t, Knobs{RelocateAllSmallPages: true})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(2)
	defer m.Close()
	obj := m.Alloc(node)
	m.StoreRef(obj, 0, obj) // self loop
	m.StoreField(obj, 1, 5)
	m.SetRoot(0, obj)
	m.RequestGC()
	c.relocWG.Wait()
	got := m.LoadRoot(0)
	self := m.LoadRef(got, 0)
	if self.Addr() != got.Addr() {
		t.Fatalf("self reference broken: %#x vs %#x", self.Addr(), got.Addr())
	}
	if m.LoadField(self, 1) != 5 {
		t.Fatal("payload lost")
	}
}

// TestCycleStatsPausesRecorded ensures the three pauses are accounted.
func TestCycleStatsPausesRecorded(t *testing.T) {
	c, types := testEnv(t, Knobs{})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	buildList(m, node, 100)
	m.RequestGC()
	cs := c.Stats().Cycles[0]
	if cs.Pause1 == 0 {
		t.Error("STW1 work (root scan) must be accounted")
	}
	if cs.Trigger != "requested" {
		t.Errorf("trigger = %q", cs.Trigger)
	}
	if cs.HeapUsedBefore <= 0 {
		t.Error("heap usage before must be recorded")
	}
}

func TestWriteGCLog(t *testing.T) {
	c, types := testEnv(t, Knobs{Hotness: true, ColdPage: true, ColdConfidence: 1})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	buildList(m, node, 500)
	m.RequestGC()
	m.RequestGC()
	var buf bytes.Buffer
	c.WriteGCLog(&buf)
	out := buf.String()
	for _, want := range []string{"GC(1)", "GC(2)", "EC:", "pause cycles", "totals:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gc log missing %q:\n%s", want, out)
		}
	}
}

package core

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"hcsgc/internal/heap"
	"hcsgc/internal/objmodel"
	"hcsgc/internal/telemetry"
)

// oomEnv builds a collector over a deliberately tiny heap with a telemetry
// sink, so stall counters can be asserted.
func oomEnv(t *testing.T, maxBytes uint64, cfg Config) (*Collector, *objmodel.Registry, *telemetry.Sink) {
	t.Helper()
	sink := telemetry.NewSink()
	cfg.Telemetry = sink
	h := heap.New(heap.Config{MaxBytes: maxBytes}, nil)
	types := objmodel.NewRegistry()
	c, err := New(h, types, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, types, sink
}

// TestAllocStallRecovers fills the heap with garbage: every TLAB refill
// past the budget stalls, the stall-triggered cycle reclaims the garbage,
// and allocation proceeds — no driver involved, no error, stalls counted.
func TestAllocStallRecovers(t *testing.T) {
	// 8 MB heap = 4 small pages; each iteration allocates ~1 MB garbage.
	c, _, sink := oomEnv(t, 8<<20, Config{TriggerPercent: 101})
	m := c.NewMutator(1)
	for i := 0; i < 100; i++ {
		ref, err := m.TryAllocWordArray(16 << 10) // 128 KB
		if err != nil {
			t.Fatalf("iteration %d: %v (stalls=%d)", i, err, m.Stalls)
		}
		m.SetRoot(0, ref) // keep only the newest: everything else is garbage
	}
	if m.Stalls == 0 {
		t.Fatal("no allocation stalls on a 100x oversubscribed heap")
	}
	if got := sink.Metrics().Counter("hcsgc_alloc_stalls_total", "").Value(); got != m.Stalls {
		t.Fatalf("hcsgc_alloc_stalls_total = %d, want %d", got, m.Stalls)
	}
	if c.Cycles() == 0 {
		t.Fatal("stalls never triggered a collection")
	}
	m.Close()
}

// TestAllocExhaustionReturnsStructuredError keeps everything live so the
// stall-triggered cycles cannot reclaim anything: the retry budget runs
// out and TryAlloc returns ErrOutOfMemory with an occupancy snapshot, no
// panic anywhere.
func TestAllocExhaustionReturnsStructuredError(t *testing.T) {
	c, _, _ := oomEnv(t, 4<<20, Config{TriggerPercent: 101, StallRetries: 3})
	m := c.NewMutator(64)
	var err error
	for i := 0; i < 64; i++ {
		var ref heap.Ref
		ref, err = m.TryAllocWordArray(16 << 10) // 128 KB small-class, all rooted
		if err != nil {
			break
		}
		m.SetRoot(i, ref)
	}
	if err == nil {
		t.Fatal("64 rooted 128KB arrays fit a 4MB heap?")
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory in chain", err)
	}
	if !errors.Is(err, heap.ErrHeapFull) {
		t.Fatalf("err = %v, want heap.ErrHeapFull in chain", err)
	}
	var oom *OutOfMemoryError
	if !errors.As(err, &oom) {
		t.Fatalf("err %T is not *OutOfMemoryError", err)
	}
	if oom.Attempts != 4 { // StallRetries=3 → 4 attempts
		t.Fatalf("Attempts = %d, want 4", oom.Attempts)
	}
	if oom.UsedBytes == 0 || oom.MaxBytes != 4<<20 || oom.Size != (16<<10+1)*heap.WordSize {
		t.Fatalf("occupancy snapshot wrong: %+v", oom)
	}
	if m.Stalls == 0 {
		t.Fatal("no stalls recorded before OOM")
	}
	// The heap remains usable: dropping roots and collecting recovers.
	for i := 0; i < 64; i++ {
		m.SetRoot(i, heap.NullRef)
	}
	m.RequestGC()
	if _, err := m.TryAllocWordArray(16 << 10); err != nil {
		t.Fatalf("allocation after recovery failed: %v", err)
	}
	m.Close()
}

// TestStallDeadline bounds the stall loop by wall clock instead of
// retries.
func TestStallDeadline(t *testing.T) {
	c, _, _ := oomEnv(t, 4<<20, Config{
		TriggerPercent: 101,
		StallRetries:   1 << 20, // effectively unbounded: the deadline must fire
		StallBackoff:   2 * time.Millisecond,
		StallDeadline:  20 * time.Millisecond,
	})
	m := c.NewMutator(64)
	start := time.Now()
	var err error
	for i := 0; i < 64 && err == nil; i++ {
		var ref heap.Ref
		ref, err = m.TryAllocWordArray(32 << 10)
		if err == nil {
			m.SetRoot(i, ref)
		}
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline-bounded stall took %v", elapsed)
	}
	var oom *OutOfMemoryError
	errors.As(err, &oom)
	if oom.Stalled < 20*time.Millisecond {
		t.Fatalf("Stalled = %v, deadline was 20ms", oom.Stalled)
	}
	m.Close()
}

// TestAllocPanicsCarryTypedError checks the panicking convenience wrappers
// panic with the same *OutOfMemoryError value TryAlloc returns, so even
// legacy callers can recover and inspect it.
func TestAllocPanicsCarryTypedError(t *testing.T) {
	c, types, _ := oomEnv(t, 4<<20, Config{TriggerPercent: 101, StallRetries: 2})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(64)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Alloc did not panic on exhaustion")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrOutOfMemory) {
			t.Fatalf("panic value %v is not an ErrOutOfMemory error", r)
		}
		m.Close()
	}()
	for i := 0; i < 64; i++ {
		m.SetRoot(i, m.AllocWordArray(32<<10))
	}
	_ = m.Alloc(node)
	t.Fatal("unreachable")
}

// TestExhaustionLeavesNoGoroutines drives the driver-suppressed OOM path
// end to end and checks the collector winds down leak-free: the workload
// runner depends on this to survive OOM without leaking a driver or
// worker goroutine per failed run.
func TestExhaustionLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	c, _, _ := oomEnv(t, 4<<20, Config{TriggerPercent: 70, StallRetries: 2})
	c.StartDriver()
	m := c.NewMutator(64)
	var err error
	for i := 0; i < 64 && err == nil; i++ {
		var ref heap.Ref
		ref, err = m.TryAllocWordArray(32 << 10)
		if err == nil {
			m.SetRoot(i, ref)
		}
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	m.Close()
	c.StopDriver()
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after OOM wind-down", before, runtime.NumGoroutine())
}

// Package core implements HCSGC: a ZGC-style non-generational, mostly
// concurrent, parallel, mark-compact, region-based collector (paper §2)
// extended with hotness tracking, weighted-live-bytes evacuation selection,
// lazy relocation and hot/cold segregation (paper §3).
//
// The collector manages the simulated heap from internal/heap. Mutators
// are registered handles whose every object access goes through the load
// barrier, feeding the simmem cache model, so the layout this collector
// produces directly determines the locality measurements reported by the
// benchmark harness.
package core

import (
	"fmt"
	"time"

	"hcsgc/internal/contention"
	"hcsgc/internal/faultinject"
	"hcsgc/internal/locality"
	"hcsgc/internal/signals"
	"hcsgc/internal/telemetry"
	"hcsgc/internal/telemetry/latency"
)

// Knobs are the five HCSGC tuning knobs of Table 2 plus the extension
// options the paper lists as future work. The zero value is the original
// ZGC behaviour (Config 0/1).
type Knobs struct {
	// Hotness records object hotness in the hotmap (paper §3.1.2). The
	// bookkeeping costs a CAS on the slow path (modelled via
	// CostModel.HotmapCAS).
	Hotness bool
	// ColdPage gives each GC worker a second thread-local relocation
	// target page for cold objects (paper §3.3). Requires Hotness.
	ColdPage bool
	// ColdConfidence in [0,1] weighs cold bytes when computing weighted
	// live bytes for EC selection (paper §3.1.3). 0 matches ZGC; 1 treats
	// cold objects as garbage for selection purposes. Requires Hotness to
	// have any effect.
	ColdConfidence float64
	// RelocateAllSmallPages puts every small page in EC (paper §3.1.1).
	RelocateAllSmallPages bool
	// LazyRelocate defers GC-thread relocation to the start of the next
	// cycle so mutators win relocation races (paper §3.2, Fig. 3).
	LazyRelocate bool

	// TinyPages enables the future-work cache-line-magnitude page class
	// (paper §3.4/§4.8 extension; off in all paper configurations).
	TinyPages bool
	// AutoTune enables the future-work feedback loop that backs
	// ColdConfidence off when relocation shows no miss-rate improvement
	// (paper §4.8 extension; off in all paper configurations).
	AutoTune bool
}

// Validate reports knob combinations the paper forbids.
func (k Knobs) Validate() error {
	if k.ColdPage && !k.Hotness {
		return fmt.Errorf("core: ColdPage requires Hotness (paper §3.3)")
	}
	if k.ColdConfidence != 0 && !k.Hotness {
		return fmt.Errorf("core: ColdConfidence requires Hotness (paper §4.1)")
	}
	if k.ColdConfidence < 0 || k.ColdConfidence > 1 {
		return fmt.Errorf("core: ColdConfidence %v outside [0,1]", k.ColdConfidence)
	}
	return nil
}

// String renders the knobs compactly, e.g. "H+CP cc=0.5 lazy".
func (k Knobs) String() string {
	s := ""
	if k.Hotness {
		s += "H"
	}
	if k.ColdPage {
		s += "+CP"
	}
	if k.ColdConfidence != 0 {
		s += fmt.Sprintf(" cc=%g", k.ColdConfidence)
	}
	if k.RelocateAllSmallPages {
		s += " all"
	}
	if k.LazyRelocate {
		s += " lazy"
	}
	if s == "" {
		s = "zgc"
	}
	return s
}

// CostModel holds the abstract cycle costs of collector operations that
// are not plain memory accesses (those come from the cache model). The
// values are small constants; their ratios, not absolute values, shape the
// results.
type CostModel struct {
	// BarrierFast is charged on every reference load (the "no additional
	// work" fast path is one test+branch).
	BarrierFast uint64
	// BarrierSlow is the slow-path dispatch overhead, excluding the memory
	// traffic it causes (which the cache model charges).
	BarrierSlow uint64
	// HotmapCAS is the cost of recording hotness ("in its current
	// implementation involves a CAS operation", §4.1).
	HotmapCAS uint64
	// RelocSetup is the per-object overhead of relocating (forwarding
	// insert, accounting), excluding the copy's memory traffic.
	RelocSetup uint64
	// RootProcess is the per-root STW cost.
	RootProcess uint64
	// Alloc is the bump-allocation cost.
	Alloc uint64
}

// DefaultCosts returns the cost model used throughout the evaluation.
func DefaultCosts() CostModel {
	return CostModel{
		BarrierFast: 1,
		BarrierSlow: 10,
		HotmapCAS:   6,
		RelocSetup:  20,
		RootProcess: 10,
		Alloc:       4,
	}
}

// Config configures a collector instance.
type Config struct {
	Knobs Knobs
	Costs CostModel
	// GCWorkers is the number of concurrent GC threads (mark and
	// relocate). Zero means 2, matching the 2-core laptop setup.
	GCWorkers int
	// EvacThreshold is the live-ratio (or WLB-ratio) below which a page is
	// an evacuation candidate. The paper uses 75%.
	EvacThreshold float64
	// TriggerPercent is the heap occupancy that starts a GC cycle.
	TriggerPercent float64
	// Telemetry is the optional observability sink. Nil disables all
	// instrumentation (each site reduces to one predictable branch).
	Telemetry *telemetry.Sink
	// Locality is the optional sampling locality profiler. Nil disables
	// it (each mutator access site then costs one predictable branch);
	// when set, every mutator gets a probe and the collector snapshots
	// the profiler at each cycle boundary.
	Locality *locality.Profiler
	// Latency is the optional latency-attribution tracker (HDR pause and
	// phase distributions, MMU, barrier slow-path profile, flight
	// recorder). Nil disables it: each instrumentation site reduces to
	// one predictable branch.
	Latency *latency.Tracker
	// Signals is the optional unified per-cycle signal plane: at every
	// cycle boundary the collector snapshots the locality, latency and
	// heap signals into one immutable CycleSignals record. Nil disables
	// it (one predictable branch at the cycle boundary plus one per
	// allocation for the alloc-rate ledger).
	Signals *signals.Plane
	// Contention is the optional contention attribution plane: the
	// collector's locks, CAS loops and GC workers report to it, and at
	// every cycle boundary the collector folds its per-cycle delta into
	// the signal record. Nil disables it (one predictable branch per
	// site). Pass the same plane to the heap via heap.Config.Contention
	// and to the hierarchy via Hierarchy.SetContention.
	Contention *contention.Plane
	// FaultInjector arms the fault-injection plane at the collector's
	// injection points (relocation race, barrier slow path, safepoint
	// entry, page retire, driver trigger). Nil — the default — costs one
	// predictable branch per site. Pass the same injector to the heap via
	// heap.Config.Injector to arm its sites too.
	FaultInjector *faultinject.Injector

	// StallRetries bounds the allocation stalls (each triggering a GC
	// cycle) before an allocation gives up with ErrOutOfMemory. Zero means
	// 16.
	StallRetries int
	// StallBackoff, when non-zero, sleeps attempt*StallBackoff before each
	// stall-triggered collection after the first, giving concurrent
	// mutators' in-flight frees a chance to land.
	StallBackoff time.Duration
	// StallDeadline, when non-zero, caps the wall-clock time one
	// allocation may spend stalling regardless of retries left.
	StallDeadline time.Duration
	// STWWatchdog is the wall-clock deadline for every mutator to reach
	// the safepoint once a stop-the-world begins; past it the collector
	// emits a flight-recorder dump naming the mutators still running.
	// Wall-clock deliberately: a mutator that never polls freezes the
	// virtual timeline, so a virtual-cycle deadline could never fire.
	// Zero means 30s; negative disables the watchdog.
	STWWatchdog time.Duration
}

func (c Config) withDefaults() Config {
	if c.GCWorkers <= 0 {
		c.GCWorkers = 2
	}
	if c.EvacThreshold == 0 {
		c.EvacThreshold = 0.75
	}
	if c.TriggerPercent == 0 {
		c.TriggerPercent = 70
	}
	if c.Costs == (CostModel{}) {
		c.Costs = DefaultCosts()
	}
	if c.StallRetries <= 0 {
		c.StallRetries = 16
	}
	if c.STWWatchdog == 0 {
		c.STWWatchdog = 30 * time.Second
	}
	return c
}

package core

import (
	"fmt"
	"strings"
	"time"

	"hcsgc/internal/heap"
	"hcsgc/internal/telemetry"
)

// colTelemetry holds the collector's pre-resolved telemetry handles.
// When telemetry is disabled every handle is nil and `enabled` is false:
// each instrumentation site then costs one predictable branch (the nil
// check inside the telemetry method, or the `enabled` guard for sites
// that would otherwise do real work like walking pages).
type colTelemetry struct {
	enabled bool
	rec     *telemetry.Recorder

	cycles *telemetry.Counter
	// Pause-cost distributions (hcsgc_pause_cycles) live in the latency
	// tracker as HDR-backed summaries, not here.
	// relocObjects/relocBytes are indexed by telemetry.RelocByGC/Mutator.
	relocObjects [2]*telemetry.Counter
	relocBytes   [2]*telemetry.Counter

	hotmapDensity   *telemetry.Gauge
	markedBytes     *telemetry.Gauge
	heapUsedPercent *telemetry.Gauge

	ecPages         [2]*telemetry.Counter // small-ish, medium
	pagesFreedEmpty *telemetry.Counter
	barrierSlow     *telemetry.Counter
	allocStalls     *telemetry.Counter
	safepointWaitNS *telemetry.Histogram
}

// Trace tracks: the collector's cycle goroutine emits on track 1; GC
// workers emit their relocation-drain spans on 2+workerID.
const collectorTID = 1

// relocSampleMask downsamples EvRelocWin trace instants to 1 in
// (mask+1): per-object events at relocation rates would otherwise evict
// every phase span from the ring. Counters remain exact.
const relocSampleMask = 1023

// Safepoint-wait histogram buckets, in wall nanoseconds: 1µs .. ~2s.
var safepointWaitBuckets = telemetry.ExpBuckets(1e3, 8, 8)

// newColTelemetry resolves all collector metrics against the sink's
// registry. Every series is registered eagerly so exporters expose the
// full schema (at zero) from the first scrape.
func newColTelemetry(sink *telemetry.Sink) colTelemetry {
	if sink == nil {
		return colTelemetry{}
	}
	reg := sink.Metrics()
	t := colTelemetry{enabled: true, rec: sink.Recorder()}
	t.cycles = reg.Counter("hcsgc_gc_cycles_total", "Completed GC cycles.")
	t.relocObjects[telemetry.RelocByGC] = reg.Counter("hcsgc_reloc_objects_total",
		"Objects relocated, by relocation-race winner.", "who", "gc")
	t.relocObjects[telemetry.RelocByMutator] = reg.Counter("hcsgc_reloc_objects_total",
		"Objects relocated, by relocation-race winner.", "who", "mutator")
	t.relocBytes[telemetry.RelocByGC] = reg.Counter("hcsgc_reloc_bytes_total",
		"Bytes relocated, by relocation-race winner.", "who", "gc")
	t.relocBytes[telemetry.RelocByMutator] = reg.Counter("hcsgc_reloc_bytes_total",
		"Bytes relocated, by relocation-race winner.", "who", "mutator")
	t.hotmapDensity = reg.Gauge("hcsgc_page_hotmap_density",
		"Hot bytes over live bytes across hot-trackable pages at mark end.")
	t.markedBytes = reg.Gauge("hcsgc_marked_bytes",
		"Live bytes found by the latest mark.")
	t.heapUsedPercent = reg.Gauge("hcsgc_heap_used_percent",
		"Committed heap occupancy after the latest cycle.")
	t.ecPages[0] = reg.Counter("hcsgc_ec_pages_total",
		"Pages selected as evacuation candidates.", "class", "small")
	t.ecPages[1] = reg.Counter("hcsgc_ec_pages_total",
		"Pages selected as evacuation candidates.", "class", "medium")
	t.pagesFreedEmpty = reg.Counter("hcsgc_pages_freed_empty_total",
		"Pages reclaimed without relocation.")
	t.barrierSlow = reg.Counter("hcsgc_barrier_slow_total",
		"Load-barrier slow-path entries.")
	t.allocStalls = reg.Counter("hcsgc_alloc_stalls_total",
		"Allocation stalls waiting for a GC cycle.")
	t.safepointWaitNS = reg.Histogram("hcsgc_safepoint_wait_ns",
		"Wall-clock stop-the-world handshake latency in nanoseconds.",
		safepointWaitBuckets)
	return t
}

// stopTheWorldTimed runs the STW handshake, recording the wall-clock
// wait until quorum as a safepoint-wait sample attributed to pause. The
// STW progress watchdog is armed here: if the handshake overruns
// Config.STWWatchdog, a flight-recorder dump names the mutators not at
// the safepoint (the pause keeps waiting — the watchdog diagnoses the
// hang, it does not abort it). Wall-clock deliberately: the sample
// measures how long real mutator threads took to park, which is exactly
// the quantity virtual time abstracts away.
//
//hcsgc:wall-clock
func (c *Collector) stopTheWorldTimed(pause telemetry.SpanID) {
	onStall := c.stwWatchdogReport(pause)
	if !c.tm.enabled {
		c.sp.stopTheWorld(c.cfg.STWWatchdog, onStall)
		return
	}
	start := time.Now()
	c.sp.stopTheWorld(c.cfg.STWWatchdog, onStall)
	wait := uint64(time.Since(start).Nanoseconds())
	c.tm.rec.Record(telemetry.EvSafepointWait, 0, wait, uint64(pause))
	c.tm.safepointWaitNS.Observe(float64(wait))
}

// stwWatchdogReport builds the watchdog's overrun callback: it emits a
// flight-recorder dump naming the mutators still running, which turns
// the "attached mutator idles without Blocked() and deadlocks every STW"
// gotcha from a silent hang into a diagnosable report.
func (c *Collector) stwWatchdogReport(pause telemetry.SpanID) func(stuck []string, registered, stopped int) {
	if c.cfg.STWWatchdog <= 0 {
		return nil
	}
	return func(stuck []string, registered, stopped int) {
		c.watchdogFired.Add(1)
		c.lat.AutoDump(fmt.Sprintf(
			"stw watchdog: pause %s exceeded %v with %d/%d mutators stopped; not at safepoint: %s",
			pause, c.cfg.STWWatchdog, stopped, registered, strings.Join(stuck, ", ")))
	}
}

// WatchdogReports returns the number of STW watchdog overrun reports.
func (c *Collector) WatchdogReports() uint64 {
	return c.watchdogFired.Load()
}

// recordMarkEnd publishes mark-end observations: marked live bytes and
// the hotmap density over hot-trackable pages subject to this mark. Runs
// inside STW2 (the page set is frozen) when telemetry or the signal
// plane wants the density (the plane derives cold_frac from it).
//
//hcsgc:stw-only
func (c *Collector) recordMarkEnd(cs *CycleStats) {
	if !c.tm.enabled && c.sig == nil {
		return
	}
	startSeq := c.startSeq.Load()
	var hot, live uint64
	c.heap.LivePages(func(p *heap.Page) {
		if p.Seq > startSeq || !hotTrackable(p) {
			return
		}
		hot += p.HotBytes()
		live += p.LiveBytes()
	})
	density := 0.0
	if live > 0 {
		density = float64(hot) / float64(live)
		// Only a real measurement updates the stats record: with hotness
		// off no page is hot-trackable and the -1 sentinel must survive
		// so the signal plane reports cold_frac as unmeasured.
		cs.HotmapDensity = density
	}
	c.tm.hotmapDensity.Set(density)
	c.tm.markedBytes.Set(float64(cs.MarkedBytes))
}

// recordSegregation computes the hot/cold segregation purity at mark end
// (inside STW2, while the page set is frozen and the hotmap is fresh) for
// the locality profiler and the per-cycle stats. Skipped — one predictable
// branch — when neither telemetry nor the locality profiler is attached.
//
//hcsgc:stw-only
func (c *Collector) recordSegregation(cs *CycleStats) {
	if !c.tm.enabled && c.cfg.Locality == nil {
		cs.SegregationPurity = -1
		return
	}
	seg := c.heap.SegregationStats(c.startSeq.Load())
	cs.SegregationPurity = seg.Purity()
	cs.SegregatedPages = seg.Pages
}

// recordCycleEnd publishes per-cycle counters after stats are appended.
func (c *Collector) recordCycleEnd(cs *CycleStats) {
	if !c.tm.enabled {
		return
	}
	c.tm.cycles.Inc()
	c.tm.ecPages[0].Add(uint64(cs.ECSmall))
	c.tm.ecPages[1].Add(uint64(cs.ECMedium))
	c.tm.pagesFreedEmpty.Add(uint64(cs.PagesFreedEmpty))
	c.tm.heapUsedPercent.Set(cs.HeapUsedAfter)
}

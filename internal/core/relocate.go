package core

import (
	"fmt"
	"sync/atomic"

	"hcsgc/internal/faultinject"
	"hcsgc/internal/heap"
	"hcsgc/internal/objmodel"
	"hcsgc/internal/simmem"
	"hcsgc/internal/telemetry"
	"hcsgc/internal/telemetry/latency"
)

// relocCtx is a relocation execution context: who is copying (a mutator, a
// GC worker, or the STW3 pause), which simmem core the traffic is charged
// to, and the destination pages.
//
// The destination policy is the heart of HCSGC (§3.2–3.3):
//
//   - Mutators relocate into their own TLAB, so objects land in the order
//     the mutator accesses them — the prefetch-friendly layout.
//   - GC workers relocate into a thread-local "hot page", or when COLDPAGE
//     is enabled into separate hot/cold pages, segregating objects that
//     were not touched since the last GC cycle.
type relocCtx struct {
	c         *Collector
	core      *simmem.Core
	byMutator bool
	// hotPage/coldPage are the small-page destinations. For a mutator
	// context these are unused: the owning mutator's TLAB is used instead
	// (see Mutator.relocTargetSmall).
	hotPage  *heap.Page
	coldPage *heap.Page
	// mutator is set for mutator contexts (TLAB destination).
	mutator *Mutator
	// extra accumulates non-memory cycle costs charged to this context.
	// Atomic: aggregate statistics snapshot it while the owner works.
	extra atomic.Uint64
	// relocated counts forwarding races this context won, for the
	// contention plane's worker-balance accounting.
	relocated atomic.Uint64
}

// relocTargetSmall returns a destination address for a small object of the
// given size, allocating fresh target pages as needed. Relocation must not
// fail, so target pages bypass the heap budget (relocation headroom).
func (ctx *relocCtx) relocTargetSmall(size uint64, hot bool) uint64 {
	if ctx.mutator != nil {
		return ctx.mutator.relocTargetSmall(size)
	}
	pagep := &ctx.hotPage
	if !hot && ctx.c.cfg.Knobs.ColdPage {
		pagep = &ctx.coldPage
	}
	if *pagep != nil {
		if addr := (*pagep).AllocRaw(size); addr != 0 {
			return addr
		}
	}
	p, err := ctx.c.heap.AllocPageForced(smallishClass(ctx.c, size))
	if err != nil {
		panic(fmt.Sprintf("core: cannot allocate relocation target: %v", err))
	}
	*pagep = p
	addr := p.AllocRaw(size)
	if addr == 0 {
		panic("core: fresh relocation target page cannot satisfy small object")
	}
	return addr
}

// undoTarget gives back a relocation copy that lost the forwarding race.
func (ctx *relocCtx) undoTarget(addr, size uint64) {
	p := ctx.c.heap.PageOf(addr)
	if p != nil {
		p.UndoAlloc(addr, size)
	}
}

// smallishClass picks the page class for a small-page object, honouring
// the tiny-class extension.
func smallishClass(c *Collector, size uint64) heap.Class {
	return heap.ClassFor(size, c.cfg.Knobs.TinyPages && c.heap.Config().EnableTinyClass)
}

// relocateObject ensures the live object at addr on EC page p has been
// relocated and returns its new address. This is the shared routine behind
// the mutator load-barrier slow path, the GC drain, and STW3 root
// processing; the forwarding-table CAS decides the race (§2.2 RE).
//
//hcsgc:gc-thread
//hcsgc:barrier-impl
func (c *Collector) relocateObject(ctx *relocCtx, addr uint64, p *heap.Page) uint64 {
	fwd := p.Forwarding()
	if fwd == nil {
		panic(fmt.Sprintf("core: relocateObject on page without forwarding: %v", p))
	}
	off := p.WordIndex(addr)
	if dst := fwd.Lookup(off); dst != 0 {
		return dst
	}
	header := c.heap.LoadWord(ctx.core, addr)
	size := objmodel.SizeBytes(header)

	var dst uint64
	if size <= heap.SmallObjectMax {
		hot := !c.cfg.Knobs.Hotness || p.IsHot(addr)
		dst = ctx.relocTargetSmall(size, hot)
	} else {
		dst = c.allocMediumForced(size)
	}
	c.heap.CopyObject(ctx.core, addr, dst, size)
	// The copy is done but not yet published: this is the racy window where
	// another actor's Insert can win and strand this copy. The injection
	// point widens it under chaos and lets tests force a loss via a hook.
	c.inj.At(faultinject.RelocInsert, addr)
	final, won := fwd.Insert(off, dst)
	ctx.extra.Add(c.cfg.Costs.RelocSetup)
	if !won {
		ctx.undoTarget(dst, size)
		return final
	}
	ctx.relocated.Add(1)
	who := telemetry.RelocByGC
	if ctx.byMutator {
		c.stats.addMutatorReloc(size)
		who = telemetry.RelocByMutator
	} else {
		c.stats.addGCReloc(size)
	}
	c.tm.relocObjects[who].Inc()
	c.tm.relocBytes[who].Add(size)
	// Relocation wins arrive at millions per second; unsampled they would
	// evict every phase span from the trace ring. The counters above stay
	// exact; the trace gets 1 instant in every relocSampleMask+1 wins.
	if c.tm.enabled && c.relocSample.Add(1)&relocSampleMask == 1 {
		c.tm.rec.Record(telemetry.EvRelocWin, who, addr, size)
	}
	if p.ObjectRelocated() {
		// Last live object gone: recycle the page now; its forwarding
		// table survives until next mark end.
		c.tm.rec.Record(telemetry.EvPageEvacuated, uint32(p.Class()), p.Start(), 0)
		c.heap.FreePage(p)
	}
	return final
}

// remapForward returns the current address of an object that may live on a
// previously evacuated page (mark-era remapping). During marking every EC
// page of the previous era is fully relocated, so a live object's
// forwarding entry always exists. Barrier fast path: alloc-free.
//
//hcsgc:alloc-free
func (c *Collector) remapForward(addr uint64, p *heap.Page) uint64 {
	fwd := p.Forwarding()
	if fwd == nil {
		return addr
	}
	if dst := fwd.Lookup(p.WordIndex(addr)); dst != 0 {
		return dst
	}
	return addr
}

// allocMediumForced bump-allocates from the shared medium page, bypassing
// the heap budget (relocation path).
func (c *Collector) allocMediumForced(size uint64) uint64 {
	c.medMu.Lock()
	defer c.medMu.Unlock()
	if c.medPage != nil {
		if addr := c.medPage.AllocRaw(size); addr != 0 {
			return addr
		}
	}
	p, err := c.heap.AllocPageForced(heap.ClassMedium)
	if err != nil {
		panic(fmt.Sprintf("core: cannot allocate medium relocation target: %v", err))
	}
	c.medPage = p
	addr := p.AllocRaw(size)
	if addr == 0 {
		panic("core: fresh medium page cannot satisfy object")
	}
	return addr
}

// allocMedium is the mutator allocation path for medium objects; it
// respects the heap budget and reports failure for the stall path.
func (c *Collector) allocMedium(size uint64) (uint64, error) {
	c.medMu.Lock()
	defer c.medMu.Unlock()
	if c.medPage != nil {
		if addr := c.medPage.AllocRaw(size); addr != 0 {
			return addr, nil
		}
	}
	p, err := c.heap.AllocPage(heap.ClassMedium)
	if err != nil {
		return 0, err
	}
	c.medPage = p
	return p.AllocRaw(size), nil
}

// drainLoop is the GC worker's RE phase: claim EC pages and relocate every
// remaining live object, walking the livemap in address order.
func (w *gcWorker) drainLoop(cs *CycleStats) {
	c := w.c
	tid := uint32(2 + w.id)
	c.tm.rec.BeginSpan(telemetry.SpanRelocate, tid)
	defer c.tm.rec.EndSpan(telemetry.SpanRelocate, tid)
	if c.lat != nil {
		vStart := c.virtualNow()
		defer func() {
			c.lat.RecordPhase(latency.PhaseRelocDrain, vStart, c.virtualNow())
		}()
	}
	for {
		i := c.ecCursor.Add(1) - 1
		if int(i) >= len(c.ecPages) {
			return
		}
		p := c.ecPages[i]
		w.drainPage(p)
	}
}

// drainPage relocates all not-yet-relocated live objects of one EC page.
func (w *gcWorker) drainPage(p *heap.Page) {
	c := w.c
	start := p.Start()
	livemap := p.Livemap()
	livemap.ForEachSet(func(idx int) {
		addr := start + uint64(idx)*heap.WordSize
		c.relocateObject(w.ctx, addr, p)
	})
}

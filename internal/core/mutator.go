package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"hcsgc/internal/faultinject"
	"hcsgc/internal/heap"
	"hcsgc/internal/locality"
	"hcsgc/internal/objmodel"
	"hcsgc/internal/simmem"
	"hcsgc/internal/telemetry/latency"
)

// Mutator is an application thread's handle onto the managed heap. Every
// reference load goes through the ZGC load barrier; every access feeds the
// owning core's cache model.
//
// Usage contract (mirrors what a JVM guarantees via stack scanning, which
// this library cannot do for Go locals): references must not be held in Go
// variables across a safepoint. Keep long-lived references in root slots
// and re-derive locals from roots after each Safepoint call; safepoints
// also occur inside Alloc* methods.
type Mutator struct {
	c    *Collector
	core *simmem.Core
	ctx  *relocCtx

	// roots is the mutator's root set (its simulated stack and globals).
	// Scanned and healed during STW pauses.
	roots []heap.Ref

	// tlab is the current small-page allocation buffer, also the
	// destination of mutator-side relocation (that sharing is what lays
	// relocated objects out in access order, §3.2).
	tlab *heap.Page

	// markBuf is the thread-local mark stack flushed to the GC (§2 fn 2).
	markBuf []uint64

	// probe is the locality profiler's per-mutator sampling front-end;
	// nil when profiling is off, making each access site one predictable
	// branch (the nil check inside Probe.Access).
	probe *locality.Probe

	// extra accumulates non-memory cycle costs (barrier checks, hotmap
	// CASes, allocation bookkeeping). Atomic: the runtime ledger reads it
	// while the mutator runs.
	extra atomic.Uint64
	// work accumulates application compute cycles reported via Work.
	work atomic.Uint64
	// stallVirtual accumulates the virtual-cycle duration of this
	// mutator's allocation stalls, net of STW pause cost (which
	// VirtualCycles adds separately). While a mutator stalls its own
	// ledger is frozen but the world moves on; this counter carries that
	// elapsed virtual time so the stall is visible on the mutator's
	// clock. Only maintained while a latency tracker is attached.
	stallVirtual atomic.Uint64

	// allocBytes is this mutator's cumulative allocation volume; only
	// maintained while a signal plane is attached (it feeds the per-cycle
	// alloc-rate signal), so the nil-plane cost stays one predictable
	// branch per allocation.
	allocBytes atomic.Uint64

	// tok is this mutator's identity in the safepoint protocol; the STW
	// watchdog names it when the mutator overruns a pause deadline.
	tok *spToken

	// budgetDeadline is the per-request allocation budget armed via
	// SetAllocBudget: an absolute virtual-cycle deadline (0 = unarmed,
	// costing one predictable branch per allocation). budgetMaxStalls
	// bounds the allocation stalls the budget may absorb; budgetStalls
	// counts those taken since the budget was armed. Owner-goroutine
	// only, like Stalls.
	budgetDeadline  uint64
	budgetMaxStalls int
	budgetStalls    int

	// Stalls counts allocation stalls.
	Stalls uint64

	closed bool
}

// NewMutator attaches a new mutator with the given number of root slots.
func (c *Collector) NewMutator(rootSlots int) *Mutator {
	m := &Mutator{c: c, roots: make([]heap.Ref, rootSlots)}
	if c.heap.Mem() != nil {
		m.core = c.heap.Mem().NewCore()
	}
	m.probe = c.cfg.Locality.NewProbe()
	m.ctx = &relocCtx{c: c, core: m.core, byMutator: true, mutator: m}
	m.tok = c.sp.register("")
	c.mutMu.Lock()
	c.muts[m] = struct{}{}
	c.mutMu.Unlock()
	return m
}

// Close detaches the mutator; it must not touch the heap afterwards.
func (m *Mutator) Close() {
	if m.closed {
		return
	}
	m.closed = true
	m.flushMarkBuf()
	m.c.mutMu.Lock()
	delete(m.c.muts, m)
	m.c.allocBytesClosed += m.allocBytes.Load()
	m.c.mutMu.Unlock()
	m.c.sp.unregister(m.tok)
}

// SetName labels this mutator in STW watchdog reports (default
// "mutator-N" in attach order). Serving threads name themselves so a
// stuck-safepoint report is actionable.
func (m *Mutator) SetName(name string) {
	m.c.sp.setName(m.tok, name)
}

// StallVirtualCycles returns the cumulative virtual-cycle duration of
// this mutator's allocation stalls, net of STW pause cost (only
// maintained while a latency tracker is attached). Serving harnesses
// delta it across a request to attribute the request's own stall
// exposure.
func (m *Mutator) StallVirtualCycles() uint64 {
	return m.stallVirtual.Load()
}

// Safepoint is the GC poll; call it at loop back-edges. Allocation
// methods poll implicitly.
func (m *Mutator) Safepoint() {
	m.c.inj.At(faultinject.SafepointEntry, 0)
	if len(m.markBuf) > 0 && m.c.CurrentPhase() == PhaseMark {
		m.flushMarkBuf()
	}
	m.c.sp.poll(m.tok)
}

func (m *Mutator) flushMarkBuf() {
	if len(m.markBuf) > 0 {
		m.c.pool.put(m.markBuf)
		m.markBuf = nil
	}
}

// RequestGC runs a full GC cycle from mutator context: the caller counts
// as stopped for the duration (it is driving the collector, not mutating).
// References held in Go locals are invalidated, exactly as across any
// other safepoint.
func (m *Mutator) RequestGC() {
	m.flushMarkBuf()
	m.c.sp.beginBlocked(m.tok)
	m.c.Collect("requested")
	m.c.sp.endBlocked(m.tok)
}

// Blocked runs fn with the mutator counted as stopped for the safepoint
// protocol, like JNI native code in HotSpot: the collector may pause the
// world while fn runs without waiting for this mutator to poll. fn must
// not touch the managed heap; root slots remain visible to the collector
// (and are healed by relocation) for the duration. References held in Go
// locals are invalidated, exactly as across any other safepoint.
//
// Multi-threaded embedders need this wherever a mutator goroutine waits
// on channels, WaitGroups or other mutators — an attached mutator that
// neither polls nor blocks deadlocks the next stop-the-world.
func (m *Mutator) Blocked(fn func()) {
	m.flushMarkBuf()
	m.c.sp.beginBlocked(m.tok)
	fn()
	m.c.sp.endBlocked(m.tok)
}

// Work charges n cycles of application compute to this mutator's ledger.
func (m *Mutator) Work(n uint64) { m.work.Add(n) }

// Cycles returns the mutator's accumulated cost: simulated memory access
// cycles plus bookkeeping plus reported compute.
func (m *Mutator) Cycles() uint64 {
	var mem uint64
	if m.core != nil {
		mem = m.core.Cycles()
	}
	return mem + m.extra.Load() + m.ctx.extra.Load() + m.work.Load()
}

// VirtualCycles returns this mutator's position on the virtual timeline:
// its own cycle ledger, plus the global STW pause cost (pauses stop every
// mutator), plus the virtual duration of its own allocation stalls
// (during which its ledger is frozen while other mutators and the
// collector make progress). Open-loop serving harnesses measure request
// latency against this clock, so GC pauses and allocation stalls are
// charged to in-flight requests instead of vanishing. The pause and
// stall components are only maintained while a latency tracker is
// attached; without one this degrades to Cycles().
func (m *Mutator) VirtualCycles() uint64 {
	return m.Cycles() + m.c.pauseTotal.Load() + m.stallVirtual.Load()
}

// Core exposes the mutator's cache-model core (may be nil when the runtime
// was built without a memory model).
func (m *Mutator) Core() *simmem.Core { return m.core }

// AllocatedBytes returns this mutator's cumulative allocation volume.
// Only maintained while a signal plane is attached (see allocBytes);
// without one it reads 0. Overload harnesses delta it across a request
// to prove shed requests perform zero heap allocations.
func (m *Mutator) AllocatedBytes() uint64 { return m.allocBytes.Load() }

// SetAllocBudget arms a per-request allocation budget on this mutator:
// allocations fail fast with a *DeadlineExceededError once the mutator's
// VirtualCycles clock passes deadlineV (checked before the first heap
// touch and again before each allocation stall), or once the budget has
// absorbed maxStalls allocation stalls (0 = stalls bounded only by the
// deadline and the global Config.StallRetries). This extends the global
// StallRetries/StallDeadline machinery with a caller-supplied per-request
// bound: instead of taking a seat in a stall convoy, an over-budget
// request unwinds promptly and the caller sheds or retries it.
//
// The budget belongs to the owning goroutine, like the rest of the
// mutator's allocation state. deadlineV of 0 disarms (see
// ClearAllocBudget).
func (m *Mutator) SetAllocBudget(deadlineV uint64, maxStalls int) {
	m.budgetDeadline = deadlineV
	m.budgetMaxStalls = maxStalls
	m.budgetStalls = 0
}

// ClearAllocBudget disarms the per-request allocation budget; allocations
// revert to the global stall policy.
func (m *Mutator) ClearAllocBudget() {
	m.budgetDeadline = 0
	m.budgetMaxStalls = 0
	m.budgetStalls = 0
}

// budgetOver is the alloc-free predicate behind budgetExpired: it decides
// whether the armed budget is exhausted at virtual time nowV (and whether
// the fault injector forced the expiry) without materializing the error.
// The split keeps the per-allocation budget check provably allocation-free
// — the error value only exists on the failure path.
//
//hcsgc:alloc-free
func (m *Mutator) budgetOver(nowV uint64) (over, forced bool) {
	if nowV >= m.budgetDeadline {
		return true, false
	}
	if m.budgetMaxStalls > 0 && m.budgetStalls >= m.budgetMaxStalls {
		return true, false
	}
	if m.c.inj.ForceDeadline() {
		return true, true
	}
	return false, false
}

// budgetExpired checks the armed per-request budget (caller guarantees it
// is armed). The fault injector can force expiry, which is how the
// zero-allocations-after-decision regression test drives this path.
func (m *Mutator) budgetExpired(size uint64) *DeadlineExceededError {
	now := m.VirtualCycles()
	if over, forced := m.budgetOver(now); over {
		return &DeadlineExceededError{
			Size: size, DeadlineV: m.budgetDeadline, NowV: now, Stalls: m.budgetStalls,
			Forced: forced,
		}
	}
	return nil
}

// --- Allocation ---------------------------------------------------------

// Alloc allocates a fixed-layout object and returns a good-colored
// reference. Fields start zeroed (null references). On heap exhaustion it
// panics with the *OutOfMemoryError TryAlloc would return; callers that
// want to degrade gracefully use TryAlloc.
func (m *Mutator) Alloc(t *objmodel.Type) heap.Ref {
	return mustAlloc(m.TryAlloc(t))
}

// TryAlloc allocates a fixed-layout object, returning ErrOutOfMemory (as
// an *OutOfMemoryError with an occupancy snapshot) when the allocation
// stalled through its retry budget without the GC freeing enough space.
func (m *Mutator) TryAlloc(t *objmodel.Type) (heap.Ref, error) {
	return m.allocWords(t.SizeWords(), t.ID)
}

// AllocRefArray allocates an array of n reference slots, panicking on heap
// exhaustion (see Alloc).
func (m *Mutator) AllocRefArray(n int) heap.Ref {
	return mustAlloc(m.TryAllocRefArray(n))
}

// TryAllocRefArray allocates an array of n reference slots (see TryAlloc).
func (m *Mutator) TryAllocRefArray(n int) (heap.Ref, error) {
	return m.allocWords(objmodel.ArraySizeWords(n), objmodel.RefArrayTypeID)
}

// AllocWordArray allocates an array of n data words, panicking on heap
// exhaustion (see Alloc).
func (m *Mutator) AllocWordArray(n int) heap.Ref {
	return mustAlloc(m.TryAllocWordArray(n))
}

// TryAllocWordArray allocates an array of n data words (see TryAlloc).
func (m *Mutator) TryAllocWordArray(n int) (heap.Ref, error) {
	return m.allocWords(objmodel.ArraySizeWords(n), objmodel.WordArrayTypeID)
}

func mustAlloc(ref heap.Ref, err error) heap.Ref {
	if err != nil {
		panic(err)
	}
	return ref
}

// allocWords carves out the object, writes its header and returns a
// good-colored reference; new objects need no barrier before first
// publication.
//
//hcsgc:barrier-impl
func (m *Mutator) allocWords(sizeWords int, typeID uint16) (heap.Ref, error) {
	m.Safepoint()
	size := uint64(sizeWords) * heap.WordSize
	// Pre-flight budget check: an expired request fails here, before the
	// first heap touch, so a deadline-exceeded request performs zero heap
	// allocations after the decision point.
	if m.budgetDeadline != 0 {
		if derr := m.budgetExpired(size); derr != nil {
			return heap.NullRef, derr
		}
	}
	var addr uint64
	var err error
	class := heap.ClassFor(size, m.c.cfg.Knobs.TinyPages && m.c.heap.Config().EnableTinyClass)
	switch class {
	case heap.ClassSmall, heap.ClassTiny:
		addr, err = m.allocSmall(size, class)
	case heap.ClassMedium:
		addr, err = m.allocStall(size, func() (uint64, error) { return m.c.allocMedium(size) })
	case heap.ClassLarge:
		addr, err = m.allocStall(size, func() (uint64, error) {
			p, err := m.c.heap.AllocLargePage(size)
			if err != nil {
				return 0, err
			}
			return p.AllocRaw(size), nil
		})
	}
	if err != nil {
		return heap.NullRef, err
	}
	m.c.heap.StoreWord(m.core, addr, objmodel.EncodeHeader(sizeWords, typeID))
	m.noteAlloc(size)
	return heap.MakeRef(addr, m.c.Good()), nil
}

// noteAlloc charges the fixed allocation cost and feeds the signal
// plane's allocation-rate ledger. Split out of allocWords so the
// accounting tail of the allocation fast path is provably
// allocation-free.
//
//hcsgc:alloc-free
func (m *Mutator) noteAlloc(size uint64) {
	m.extra.Add(m.c.cfg.Costs.Alloc)
	if m.c.sig != nil {
		m.allocBytes.Add(size)
	}
}

// allocSmall bump-allocates from the TLAB, refilling on demand.
func (m *Mutator) allocSmall(size uint64, class heap.Class) (uint64, error) {
	if m.tlab != nil && m.tlab.Class() == class {
		if addr := m.tlab.AllocRaw(size); addr != 0 {
			return addr, nil
		}
	}
	return m.allocStall(size, func() (uint64, error) {
		p, err := m.c.heap.AllocPage(class)
		if err != nil {
			return 0, err
		}
		m.tlab = p
		return p.AllocRaw(size), nil
	})
}

// allocStall runs the allocation, stalling for GC cycles while the heap is
// full (the mutator counts as stopped during the stall). When the retry
// budget (Config.StallRetries) or deadline (Config.StallDeadline) runs out
// without progress, it returns a structured *OutOfMemoryError instead of
// panicking, so heap exhaustion unwinds as an ordinary error. The stall
// deadline and backoff are wall-clock by design: the stalled mutator is
// waiting on the real collector threads to reclaim memory, and its own
// virtual timeline is frozen for the duration of the stall.
//
//hcsgc:wall-clock
func (m *Mutator) allocStall(size uint64, alloc func() (uint64, error)) (uint64, error) {
	var start time.Time
	var lastErr error
	for attempt := 1; ; attempt++ {
		addr, err := alloc()
		if err == nil {
			if addr == 0 {
				panic("core: allocation returned null address without error")
			}
			return addr, nil
		}
		if !errors.Is(err, heap.ErrHeapFull) {
			// Address-space exhaustion and the like: stalling cannot help.
			return 0, err
		}
		lastErr = err
		if start.IsZero() {
			start = time.Now()
		}
		deadline := m.c.cfg.StallDeadline
		if attempt > m.c.cfg.StallRetries || (deadline > 0 && time.Since(start) >= deadline) {
			m.c.lat.AutoDump(fmt.Sprintf(
				"oom: %d-byte allocation gave up after %d attempts", size, attempt))
			return 0, &OutOfMemoryError{
				Size:      size,
				Attempts:  attempt,
				Stalled:   time.Since(start),
				UsedBytes: m.c.heap.UsedBytes(),
				MaxBytes:  m.c.heap.MaxBytes(),
				Cause:     lastErr,
			}
		}
		// Per-request budget: prefer failing this request promptly over
		// taking a seat in the stall convoy. Checked before every stall so
		// the bound holds even when the global StallRetries is generous.
		if m.budgetDeadline != 0 {
			if derr := m.budgetExpired(size); derr != nil {
				return 0, derr
			}
			m.budgetStalls++
		}
		m.Stalls++
		m.c.stallCount.Add(1)
		m.c.tm.allocStalls.Inc()
		prev := m.c.cycles.Load()
		var stallStart, pauseBefore uint64
		if m.c.lat != nil {
			stallStart = m.c.virtualNow()
			pauseBefore = m.c.pauseTotal.Load()
		}
		m.c.sp.beginBlocked(m.tok)
		if backoff := m.c.cfg.StallBackoff; backoff > 0 && attempt > 1 {
			time.Sleep(time.Duration(attempt-1) * backoff)
		}
		m.c.collectIfDue(prev, "allocation stall")
		m.c.sp.endBlocked(m.tok)
		if m.c.lat != nil {
			stallEnd := m.c.virtualNow()
			// Charge the stall's elapsed virtual time to this mutator's
			// VirtualCycles clock, net of the pause cost accrued inside
			// the stall (the clock adds pauseTotal separately).
			pauseDelta := m.c.pauseTotal.Load() - pauseBefore
			if d := stallEnd - stallStart; d > pauseDelta {
				m.stallVirtual.Add(d - pauseDelta)
			}
			m.c.lat.RecordStall(stallStart, stallEnd, m.c.mutatorStallWeight())
		}
	}
}

// relocTargetSmall allocates relocation destination space in the TLAB so
// relocated objects are laid out in this mutator's access order. Refills
// bypass the heap budget: relocation must not stall.
func (m *Mutator) relocTargetSmall(size uint64) uint64 {
	if m.tlab != nil {
		if addr := m.tlab.AllocRaw(size); addr != 0 {
			return addr
		}
	}
	p, err := m.c.heap.AllocPageForced(smallishClass(m.c, size))
	if err != nil {
		panic(fmt.Sprintf("core: cannot allocate mutator relocation target: %v", err))
	}
	m.tlab = p
	addr := p.AllocRaw(size)
	if addr == 0 {
		panic("core: fresh TLAB cannot satisfy small object")
	}
	return addr
}

// --- Root access ----------------------------------------------------------

// NumRoots returns the root slot count.
func (m *Mutator) NumRoots() int { return len(m.roots) }

// SetRoot stores ref (a good-colored reference obtained this era) into
// root slot i.
func (m *Mutator) SetRoot(i int, ref heap.Ref) { m.roots[i] = ref }

// LoadRoot returns the reference in root slot i, applying the load
// barrier. Root slots model registers/stack, so no simulated memory
// traffic is charged — only the barrier check.
func (m *Mutator) LoadRoot(i int) heap.Ref {
	raw := m.roots[i]
	m.extra.Add(m.c.cfg.Costs.BarrierFast)
	if raw.IsNull() || raw.Color() == m.c.Good() {
		return raw
	}
	healed := m.barrierSlow(raw)
	m.roots[i] = healed
	return healed
}

// --- Heap access ------------------------------------------------------------

// LoadRef loads the reference in field (or ref-array element) i of obj,
// applying the load barrier and self-healing the slot.
//
//hcsgc:barrier-impl
func (m *Mutator) LoadRef(obj heap.Ref, i int) heap.Ref {
	slot := objmodel.FieldAddr(obj.Addr(), i)
	m.probe.Access(slot)
	raw := heap.Ref(m.c.heap.LoadWord(m.core, slot))
	m.extra.Add(m.c.cfg.Costs.BarrierFast)
	if raw.IsNull() || raw.Color() == m.c.Good() {
		return raw
	}
	healed := m.barrierSlow(raw)
	m.c.heap.CASWord(m.core, slot, uint64(raw), uint64(healed))
	return healed
}

// StoreRef stores val into field (or ref-array element) i of obj. val
// must be null or a reference obtained during the current era (good
// color), which every Alloc/LoadRef/LoadRoot result is.
//
//hcsgc:barrier-impl
func (m *Mutator) StoreRef(obj heap.Ref, i int, val heap.Ref) {
	if !val.IsNull() && val.Color() != m.c.Good() {
		panic(fmt.Sprintf("core: storing stale reference %v (good is %v); references must not be held across safepoints", val, m.c.Good()))
	}
	slot := objmodel.FieldAddr(obj.Addr(), i)
	m.probe.Access(slot)
	m.c.heap.StoreWord(m.core, slot, uint64(val))
}

// LoadField loads the data word in field i of obj.
//
//hcsgc:barrier-impl
func (m *Mutator) LoadField(obj heap.Ref, i int) uint64 {
	slot := objmodel.FieldAddr(obj.Addr(), i)
	m.probe.Access(slot)
	return m.c.heap.LoadWord(m.core, slot)
}

// StoreField stores a data word into field i of obj.
//
//hcsgc:barrier-impl
func (m *Mutator) StoreField(obj heap.Ref, i int, v uint64) {
	slot := objmodel.FieldAddr(obj.Addr(), i)
	m.probe.Access(slot)
	m.c.heap.StoreWord(m.core, slot, v)
}

// ArrayLen returns the element count of the array obj. The header word
// is read raw: array lengths are immutable after allocation, so the slot
// can never hold a stale reference for the barrier to heal.
//
//hcsgc:barrier-impl
func (m *Mutator) ArrayLen(obj heap.Ref) int {
	m.probe.Access(obj.Addr())
	return objmodel.ArrayLen(m.c.heap.LoadWord(m.core, obj.Addr()))
}

// barrierSlow is the load-barrier slow path (§2): remap, mark, relocate
// and hotness-flag as the phase dictates, returning the good-colored
// reference. Phase and good color are stable here because they only
// change while this mutator is parked at a safepoint.
func (m *Mutator) barrierSlow(raw heap.Ref) heap.Ref {
	c := m.c
	c.inj.At(faultinject.BarrierSlow, raw.Addr())
	m.extra.Add(c.cfg.Costs.BarrierSlow)
	c.tm.barrierSlow.Inc()
	// Latency attribution: exact per-path hit counters, plus a sampled
	// latency measured as this mutator's cycle-ledger delta across the
	// slow path and attributed to the primary dispatch outcome.
	lt := c.lat
	var sampleStart uint64
	sampled := false
	if lt != nil && lt.SampleBarrier() {
		sampled = true
		sampleStart = m.Cycles()
	}
	primary := latency.PathMark
	addr := raw.Addr()
	p := c.heap.PageOf(addr)
	if p == nil {
		panic("core: stale reference to unmapped address " + raw.String())
	}
	switch c.CurrentPhase() {
	case PhaseMark:
		// Remap through the previous era's forwarding, then mark. A
		// mutator access is the definition of hot (§3.1.2).
		if p.Forwarding() != nil {
			lt.BarrierHit(latency.PathRemap)
			addr = c.remapForward(addr, p)
			p = c.heap.PageOf(addr)
		}
		pushed, cost := c.markObject(m.core, addr, true)
		m.extra.Add(cost)
		if cost > 0 {
			// markObject charges only for a won hotness CAS (§3.1.2).
			lt.BarrierHit(latency.PathHotmapRecord)
		}
		lt.BarrierHit(latency.PathMark)
		if pushed {
			m.markBuf = append(m.markBuf, addr)
			if len(m.markBuf) >= markChunk {
				m.flushMarkBuf()
			}
		}
	case PhaseRelocate:
		// Compete with GC threads to relocate (§2.2 RE, §3.2): if this
		// mutator wins, the object lands in its TLAB in access order.
		if p.InEC() {
			primary = latency.PathRelocate
			lt.BarrierHit(latency.PathRelocate)
			addr = c.relocateObject(m.ctx, addr, p)
		} else {
			// Stale color on a non-candidate page: recolor only.
			primary = latency.PathRemap
			lt.BarrierHit(latency.PathRemap)
		}
	}
	if sampled {
		lt.RecordBarrierLatency(primary, m.Cycles()-sampleStart)
	}
	return heap.MakeRef(addr, c.Good())
}

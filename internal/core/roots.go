package core

import "hcsgc/internal/heap"

// processRootMark handles one root slot during STW1: remap through any
// previous-era forwarding, mark the object, and heal the slot with the new
// mark color. Newly grayed objects are appended to grays.
//
//hcsgc:gc-thread
//hcsgc:stw-only
func (c *Collector) processRootMark(m *Mutator, i int, grays []uint64) []uint64 {
	raw := m.roots[i]
	if raw.IsNull() {
		return grays
	}
	c.pauseExtra += c.cfg.Costs.RootProcess
	addr, wasR := c.remapStale(c.pauseCore, raw)
	pushed, cost := c.markObject(c.pauseCore, addr, wasR)
	c.pauseExtra += cost
	if pushed {
		grays = append(grays, addr)
	}
	m.roots[i] = heap.MakeRef(addr, c.Good())
	return grays
}

// processRootRelocate handles one root slot during STW3: relocate the
// target if it sits on an evacuation candidate, and heal the slot with the
// R color. "By the end of STW3, all roots pointing into EC are relocated"
// (§2.2).
//
//hcsgc:gc-thread
//hcsgc:stw-only
func (c *Collector) processRootRelocate(m *Mutator, i int) {
	raw := m.roots[i]
	if raw.IsNull() {
		return
	}
	c.pauseExtra += c.cfg.Costs.RootProcess
	addr := raw.Addr()
	p := c.heap.PageOf(addr)
	if p == nil {
		panic("core: root points to unmapped address " + raw.String())
	}
	if p.InEC() {
		addr = c.relocateObject(c.pauseCtx, addr, p)
	}
	m.roots[i] = heap.MakeRef(addr, heap.ColorRemapped)
}

package core

import (
	"testing"

	"hcsgc/internal/heap"
)

// TestSelfHealingSlot: after one barrier slow path on a slot, subsequent
// loads of the same slot take the fast path (the slot was healed with a
// good-colored alias).
func TestSelfHealingSlot(t *testing.T) {
	c, types := testEnv(t, Knobs{})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	parent := m.Alloc(node)
	child := m.Alloc(node)
	m.StoreRef(parent, 0, child)
	m.SetRoot(0, parent)
	m.RequestGC() // slot now holds a stale-colored ref (good changed M->R->...)

	// First load heals; it must pay the slow-path cost once.
	slowCost := c.cfg.Costs.BarrierSlow
	before := m.extra.Load()
	p := m.LoadRoot(0)
	m.LoadRef(p, 0)
	afterFirst := m.extra.Load()
	m.LoadRef(p, 0)
	afterSecond := m.extra.Load()

	paidFirst := afterFirst - before
	paidSecond := afterSecond - afterFirst
	if paidFirst < slowCost {
		t.Fatalf("first load paid %d, want >= slow path %d", paidFirst, slowCost)
	}
	if paidSecond >= slowCost {
		t.Fatalf("second load paid %d; slot was not healed", paidSecond)
	}
}

// TestBarrierFastPathCost: loads of good-colored refs pay exactly the
// fast-path constant.
func TestBarrierFastPathCost(t *testing.T) {
	c, types := testEnv(t, Knobs{})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	a := m.Alloc(node)
	b := m.Alloc(node)
	m.StoreRef(a, 0, b)
	before := m.extra.Load()
	m.LoadRef(a, 0) // freshly stored good ref: fast path
	paid := m.extra.Load() - before
	if paid != c.cfg.Costs.BarrierFast {
		t.Fatalf("fast path paid %d, want %d", paid, c.cfg.Costs.BarrierFast)
	}
}

// TestHotnessOverheadOnlyWhenEnabled: the hotmap CAS cost appears in the
// GC workers' ledgers exactly when HOTNESS is on (in this synchronous
// test the mutator is parked during marking, so the R-colored-pointer
// path — GC-side flagging — records all the hotness). Config 5's <2%
// overhead in the paper is this cost.
func TestHotnessOverheadOnlyWhenEnabled(t *testing.T) {
	run := func(knobs Knobs) (gcCycles uint64, hotBytes uint64) {
		c, types := testEnv(t, knobs)
		node := types.Register("node", 2, []int{0})
		m := c.NewMutator(4)
		defer m.Close()
		buildObjectArray(m, node, 2000)
		m.RequestGC()
		for i := 0; i < 2000; i++ {
			touch(m, i)
		}
		m.RequestGC()
		c.Heap().LivePages(func(p *heap.Page) { hotBytes += p.HotBytes() })
		return c.Stats().GCWorkerCycles, hotBytes
	}
	offCycles, offHot := run(Knobs{LazyRelocate: true})
	onCycles, onHot := run(Knobs{Hotness: true, LazyRelocate: true})
	if offHot != 0 {
		t.Fatalf("hot bytes recorded with HOTNESS off: %d", offHot)
	}
	if onHot == 0 {
		t.Fatal("no hot bytes recorded with HOTNESS on")
	}
	if onCycles <= offCycles {
		t.Fatalf("hotness tracking must cost GC cycles: on=%d off=%d", onCycles, offCycles)
	}
}

// TestRootHealingAtPauses: root slots are healed during pauses, so a
// LoadRoot right after a cycle is already good-colored (fast path).
func TestRootHealingAtPauses(t *testing.T) {
	c, types := testEnv(t, Knobs{})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	obj := m.Alloc(node)
	m.SetRoot(0, obj)
	m.RequestGC()
	if got := m.roots[0]; got.Color() != heap.ColorRemapped {
		t.Fatalf("root color after cycle = %v, want R (healed at STW3)", got.Color())
	}
	before := m.extra.Load()
	m.LoadRoot(0)
	if paid := m.extra.Load() - before; paid != c.cfg.Costs.BarrierFast {
		t.Fatalf("healed root load paid %d, want fast path %d", paid, c.cfg.Costs.BarrierFast)
	}
}

// TestAllocationsAreGoodColored: in both eras, fresh allocations carry the
// current good color, so their first load is a fast path.
func TestAllocationsAreGoodColored(t *testing.T) {
	c, types := testEnv(t, Knobs{})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	// Relocation era (initial).
	a := m.Alloc(node)
	if a.Color() != c.Good() {
		t.Fatalf("alloc color %v != good %v", a.Color(), c.Good())
	}
	m.RequestGC()
	b := m.Alloc(node)
	if b.Color() != c.Good() {
		t.Fatalf("post-cycle alloc color %v != good %v", b.Color(), c.Good())
	}
}

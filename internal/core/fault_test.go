package core

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"hcsgc/internal/faultinject"
	"hcsgc/internal/heap"
	"hcsgc/internal/objmodel"
)

// faultEnv builds a collector with an armed injector and (optionally) the
// STW verifier attached. No cache model: fault tests exercise control flow,
// not locality.
func faultEnv(t *testing.T, knobs Knobs, inj *faultinject.Injector, verify bool) (*Collector, *objmodel.Registry, *heap.Verifier) {
	t.Helper()
	h := heap.New(heap.Config{MaxBytes: 128 << 20, Injector: inj}, nil)
	var v *heap.Verifier
	if verify {
		v = heap.NewVerifier()
		h.SetVerifier(v)
	}
	types := objmodel.NewRegistry()
	c, err := New(h, types, Config{Knobs: knobs, FaultInjector: inj})
	if err != nil {
		t.Fatal(err)
	}
	return c, types, v
}

// TestInjectedLostRaceScrubsUndoneAllocation is the deterministic
// regression test for the PR 2 UndoAlloc scrub fix. The original bug: a
// mutator that lost the relocation race handed its TLAB copy back via
// UndoAlloc, which rewound the bump pointer but left the loser copy's ref
// words behind; the next Alloc at the rewound address wrote only a header
// (allocation trusts zeroed backing) and the new object inherited stale
// colored refs. It reproduced only under -count=20 -race load, because the
// race had to be lost. Here the RelocInsert hook forces the loss: just
// before the mutator's forwarding Insert, the hook relocates the same
// object through the collector's pause context, so the mutator always
// loses the CAS and always takes the UndoAlloc path.
func TestInjectedLostRaceScrubsUndoneAllocation(t *testing.T) {
	inj := faultinject.New(faultinject.Config{}) // hook-only: no random faults
	c, types, v := faultEnv(t, Knobs{RelocateAllSmallPages: true, LazyRelocate: true}, inj, true)
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(2)

	// A rooted array of nodes, each node's ref field pointing at a shared
	// target so the loser copy contains non-null ref words.
	const n = 64
	target := m.Alloc(node)
	m.SetRoot(1, target)
	arr := m.AllocRefArray(n)
	m.SetRoot(0, arr)
	for i := 0; i < n; i++ {
		arr, target = m.LoadRoot(0), m.LoadRoot(1)
		obj := m.Alloc(node)
		m.StoreRef(obj, 0, target)
		m.StoreField(obj, 1, uint64(i))
		m.StoreRef(arr, i, obj)
	}

	// One cycle: every small page joins the EC, and with LazyRelocate the
	// GC stands down, so the mutator's next load of arr[0] relocates it.
	m.RequestGC()
	if c.CurrentPhase() != PhaseRelocate {
		t.Fatal("not in relocation era after cycle")
	}

	// Arm the hook *after* the cycle so STW3 root relocation (which also
	// passes the injection point) doesn't consume the forced loss.
	var forced atomic.Bool
	inj.SetHook(faultinject.RelocInsert, func(addr uint64) {
		if !forced.CompareAndSwap(false, true) {
			return // the competing relocation below re-enters this hook
		}
		p := c.heap.PageOf(addr)
		c.relocateObject(c.pauseCtx, addr, p)
	})
	arr = m.LoadRoot(0)
	obj := m.LoadRef(arr, 0) // mutator relocates arr[0] — and loses
	inj.SetHook(faultinject.RelocInsert, nil)
	if !forced.Load() {
		t.Fatal("relocation race was never forced (object not relocated via barrier?)")
	}
	if got := m.LoadField(obj, 1); got != 0 {
		t.Fatalf("relocated node payload = %d, want 0", got)
	}

	// The mutator's discarded copy went back to its TLAB via UndoAlloc.
	// The next allocation reuses that address; with the scrub missing, its
	// ref field would hold the loser copy's stale ref instead of null.
	fresh := m.Alloc(node)
	if got := m.LoadRef(fresh, 0); !got.IsNull() {
		t.Fatalf("fresh object's ref field = %v, want null (UndoAlloc leaked the loser copy)", got)
	}
	if got := m.LoadField(fresh, 1); got != 0 {
		t.Fatalf("fresh object's data field = %d, want 0", got)
	}

	// A follow-up cycle with the verifier attached must stay clean.
	m.RequestGC()
	if v.Total() != 0 {
		t.Fatalf("verifier found %d violations: %v", v.Total(), v.Violations())
	}
	m.Close()
}

// TestVerifierCleanAcrossCycles runs a mutating workload through several
// cycles with every knob that changes relocation behaviour, asserting the
// verifier sees zero violations at every phase boundary.
func TestVerifierCleanAcrossCycles(t *testing.T) {
	for _, knobs := range []Knobs{
		{},
		{Hotness: true, ColdPage: true, ColdConfidence: 1, RelocateAllSmallPages: true},
		{Hotness: true, ColdPage: true, ColdConfidence: 1, RelocateAllSmallPages: true, LazyRelocate: true},
	} {
		c, types, v := faultEnv(t, knobs, nil, true)
		node := types.Register("node", 2, []int{0})
		m := c.NewMutator(1)
		buildList(m, node, 2000)
		for i := 0; i < 4; i++ {
			// Touch half the list (hotness), churn some garbage, collect.
			ref := m.LoadRoot(0)
			for j := 0; j < 1000 && !ref.IsNull(); j++ {
				ref = m.LoadRef(ref, 0)
			}
			for j := 0; j < 200; j++ {
				m.AllocWordArray(64)
			}
			m.RequestGC()
		}
		if v.Total() != 0 {
			t.Fatalf("knobs %v: %d violations: %v", knobs, v.Total(), v.Violations())
		}
		if v.Runs() == 0 {
			t.Fatalf("knobs %v: verifier never ran", knobs)
		}
		m.Close()
	}
}

// TestVerifierCatchesCorruption plants each class of corruption directly in
// the heap and checks the corresponding verifier check fires with page and
// address attribution. The collector is parked right after a mark would
// have ended (good color forced to M0, livemaps hand-built), which is the
// state verifyMarkedObjects assumes.
func TestVerifierCatchesCorruption(t *testing.T) {
	c, types, v := faultEnv(t, Knobs{Hotness: true}, nil, true)
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(1)

	a := m.Alloc(node)
	b := m.Alloc(node)
	m.StoreRef(a, 0, b)
	m.SetRoot(0, a)
	p := c.heap.PageOf(a.Addr())
	size := uint64(3) * heap.WordSize // header + 2 fields

	// Recreate end-of-STW2 conditions without running a cycle: good color
	// M0, page set frozen past this page, livemap marking a and b.
	c.good.Store(uint64(heap.ColorMarked0))
	c.startSeq.Store(c.heap.CurrentSeq())
	p.MarkLive(a.Addr(), size)
	p.MarkLive(b.Addr(), size)

	// a's ref field still carries the R color from allocation time: a
	// stale ref after mark end.
	c.verifyMarkedObjects(v, "test")
	if got := v.ByCheck()[heap.CheckStaleRef]; got != 1 {
		t.Fatalf("stale-ref violations = %d, want 1 (%v)", got, v.Violations())
	}

	// Heal it, then point it at an unmarked (dead) object.
	dead := m.Alloc(node)
	c.heap.StoreWord(nil, objmodel.FieldAddr(a.Addr(), 0), uint64(heap.MakeRef(dead.Addr(), heap.ColorMarked0)))
	c.verifyMarkedObjects(v, "test")
	if got := v.ByCheck()[heap.CheckUnmarkedRef]; got != 1 {
		t.Fatalf("unmarked-ref violations = %d, want 1 (%v)", got, v.Violations())
	}

	// Hot bit on a word the mark never recorded live.
	c.heap.StoreWord(nil, objmodel.FieldAddr(a.Addr(), 0), 0)
	p.MarkHot(dead.Addr(), size)
	c.verifyMarkedObjects(v, "test")
	if got := v.ByCheck()[heap.CheckHotmapSubset]; got != 1 {
		t.Fatalf("hotmap-subset violations = %d, want 1 (%v)", got, v.Violations())
	}

	// A header whose size runs past the page end.
	p.MarkLive(dead.Addr(), size) // repair the subset invariant first
	c.heap.StoreWord(nil, b.Addr(), objmodel.EncodeHeader(int(heap.SmallPageSize/heap.WordSize), node.ID))
	c.verifyMarkedObjects(v, "test")
	if got := v.ByCheck()[heap.CheckObjectBounds]; got == 0 {
		t.Fatalf("object-bounds violations = 0 (%v)", v.Violations())
	}

	// Every violation carries the page it was found on.
	if v.PageViolations(p.Start()) == 0 {
		t.Fatal("violations not attributed to the corrupted page")
	}
	m.Close()
}

// TestChaosScheduleSurvivesCycles arms a randomized schedule (the same
// derivation the chaos soak uses) and runs mutation + cycles under the
// verifier: injected delays and spurious commit failures must perturb
// scheduling without ever breaking an invariant.
func TestChaosScheduleSurvivesCycles(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		inj := faultinject.New(faultinject.Randomized(seed))
		c, types, v := faultEnv(t, Knobs{Hotness: true, RelocateAllSmallPages: true, LazyRelocate: true}, inj, true)
		node := types.Register("node", 2, []int{0})
		m := c.NewMutator(1)
		buildList(m, node, 1500)
		for i := 0; i < 3; i++ {
			for j := 0; j < 300; j++ {
				m.AllocWordArray(32)
			}
			m.RequestGC()
		}
		walkList(t, m, 1500)
		if v.Total() != 0 {
			t.Fatalf("seed %d (%v): %d violations: %v", seed, inj.Config(), v.Total(), v.Violations())
		}
		m.Close()
	}
}

func TestOutOfMemoryErrorShape(t *testing.T) {
	err := &OutOfMemoryError{Size: 64, Attempts: 17, UsedBytes: 100, MaxBytes: 128, Cause: heap.ErrHeapFull}
	if !errors.Is(err, ErrOutOfMemory) || !errors.Is(err, heap.ErrHeapFull) {
		t.Fatal("OutOfMemoryError does not unwrap to both sentinels")
	}
	msg := err.Error()
	for _, want := range []string{"out of memory", "17 attempts", "100/128"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

package core

import (
	"sort"
	"sync"
	"sync/atomic"
)

// CycleStats records one GC cycle, feeding the paper's "GC statistics"
// plots (cycles per run, small pages relocated per cycle, heap usage).
type CycleStats struct {
	Seq     uint64
	Trigger string
	// ECSmall / ECMedium are the evacuation-candidate counts selected this
	// cycle; ECSmallLiveBytes is the live data on the small EC pages.
	ECSmall          int
	ECMedium         int
	ECSmallLiveBytes uint64
	// PagesFreedEmpty counts pages reclaimed without relocation.
	PagesFreedEmpty int
	// MarkedBytes is the live data found by this mark.
	MarkedBytes uint64
	// Pause1/2/3 are the STW pause costs in cycles.
	Pause1, Pause2, Pause3 uint64
	// HeapUsedBefore/After are occupancy percentages around the cycle.
	HeapUsedBefore, HeapUsedAfter float64
	// SegregationPurity is the live-bytes-weighted hot/cold segregation
	// purity over hot-trackable pages at mark end (-1 when not measured:
	// neither telemetry nor the locality profiler was attached).
	SegregationPurity float64
	// SegregatedPages is the number of pages the purity was computed over.
	SegregatedPages int
	// HotmapDensity is hot bytes over live bytes across hot-trackable
	// pages at mark end (-1 when not measured: neither telemetry nor the
	// signal plane was attached, or hotness is off). The signal plane
	// derives its cold_frac signal as 1 - HotmapDensity.
	HotmapDensity float64
}

// statsLog accumulates per-cycle records and global relocation counters.
type statsLog struct {
	mu     sync.Mutex
	cycles []CycleStats

	mutatorRelocObjects atomic.Uint64
	mutatorRelocBytes   atomic.Uint64
	gcRelocObjects      atomic.Uint64
	gcRelocBytes        atomic.Uint64
}

func (s *statsLog) append(cs *CycleStats) {
	s.mu.Lock()
	s.cycles = append(s.cycles, *cs)
	s.mu.Unlock()
}

func (s *statsLog) addMutatorReloc(bytes uint64) {
	s.mutatorRelocObjects.Add(1)
	s.mutatorRelocBytes.Add(bytes)
}

func (s *statsLog) addGCReloc(bytes uint64) {
	s.gcRelocObjects.Add(1)
	s.gcRelocBytes.Add(bytes)
}

// Stats is a snapshot of collector activity for reporting.
type Stats struct {
	Cycles              []CycleStats
	MutatorRelocObjects uint64
	MutatorRelocBytes   uint64
	GCRelocObjects      uint64
	GCRelocBytes        uint64
	TotalPauseCycles    uint64
	GCWorkerCycles      uint64
}

// Stats snapshots the collector's statistics.
func (c *Collector) Stats() Stats {
	c.stats.mu.Lock()
	cycles := make([]CycleStats, len(c.stats.cycles))
	copy(cycles, c.stats.cycles)
	c.stats.mu.Unlock()
	var pauses uint64
	for _, cs := range cycles {
		pauses += cs.Pause1 + cs.Pause2 + cs.Pause3
	}
	var gcCycles uint64
	for _, w := range c.workers {
		if w.core != nil {
			gcCycles += w.core.Cycles()
		}
		gcCycles += w.ctx.extra.Load()
	}
	return Stats{
		Cycles:              cycles,
		MutatorRelocObjects: c.stats.mutatorRelocObjects.Load(),
		MutatorRelocBytes:   c.stats.mutatorRelocBytes.Load(),
		GCRelocObjects:      c.stats.gcRelocObjects.Load(),
		GCRelocBytes:        c.stats.gcRelocBytes.Load(),
		TotalPauseCycles:    pauses,
		GCWorkerCycles:      gcCycles,
	}
}

// MedianECSmall returns the median number of small pages selected for
// evacuation per GC cycle — the paper's "average of median small pages
// relocated per run" metric is built from this per run (§4.2 note 3).
func (s Stats) MedianECSmall() float64 {
	if len(s.Cycles) == 0 {
		return 0
	}
	counts := make([]int, len(s.Cycles))
	for i, cs := range s.Cycles {
		counts[i] = cs.ECSmall
	}
	sort.Ints(counts)
	n := len(counts)
	if n%2 == 1 {
		return float64(counts[n/2])
	}
	return float64(counts[n/2-1]+counts[n/2]) / 2
}

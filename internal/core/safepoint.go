package core

import (
	"sync"
	"sync/atomic"
)

// safepoints implements the stop-the-world handshake. Mutators poll
// Safepoint() at allocation sites and loop back-edges; when the collector
// requests a pause, polling mutators park until the world resumes.
// Mutators that block (allocation stalls, detached sections) count as
// stopped for the duration of the blocking region, like JNI native code in
// HotSpot.
type safepoints struct {
	// requested is the fast-path flag mutators poll without locking.
	requested atomic.Bool

	mu        sync.Mutex
	cond      *sync.Cond
	stwActive bool
	// registered is the number of attached mutators; stopped counts those
	// currently parked or blocked.
	registered int
	stopped    int
	// epoch increments on every resume so parked mutators distinguish
	// consecutive pauses.
	epoch uint64
}

func newSafepoints() *safepoints {
	s := &safepoints{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// register attaches a mutator to the safepoint protocol. If a pause is
// pending or active, registration waits it out: a mutator attaching
// mid-pause could otherwise touch the heap while the collector assumes the
// world is stopped.
func (s *safepoints) register() {
	s.mu.Lock()
	for s.requested.Load() || s.stwActive {
		s.cond.Wait()
	}
	s.registered++
	s.mu.Unlock()
}

// unregister detaches a mutator. Must be called from running (not parked)
// state; the mutator may not touch the heap afterwards.
func (s *safepoints) unregister() {
	s.mu.Lock()
	s.registered--
	s.cond.Broadcast()
	// If a pause is pending, the collector may now have all remaining
	// mutators stopped.
	s.mu.Unlock()
}

// poll parks the caller if a stop-the-world is requested or active. This
// is the safepoint check; the fast path is a single atomic load.
func (s *safepoints) poll() {
	if !s.requested.Load() {
		return
	}
	s.mu.Lock()
	for s.requested.Load() || s.stwActive {
		s.stopped++
		s.cond.Broadcast() // wake the collector waiting for quorum
		epoch := s.epoch
		for (s.requested.Load() || s.stwActive) && s.epoch == epoch {
			s.cond.Wait()
		}
		s.stopped--
	}
	s.mu.Unlock()
}

// beginBlocked marks the caller as stopped-equivalent for the duration of
// a blocking operation (allocation stall). The caller must not touch the
// heap until endBlocked returns.
func (s *safepoints) beginBlocked() {
	s.mu.Lock()
	s.stopped++
	s.cond.Broadcast()
	s.mu.Unlock()
}

// endBlocked re-enters running state, waiting out any active pause.
func (s *safepoints) endBlocked() {
	s.mu.Lock()
	for s.requested.Load() || s.stwActive {
		s.cond.Wait()
	}
	s.stopped--
	s.mu.Unlock()
}

// stopTheWorld blocks until every registered mutator is parked or blocked,
// then returns with the world stopped. Only the collector calls this, and
// never reentrantly.
func (s *safepoints) stopTheWorld() {
	s.requested.Store(true)
	s.mu.Lock()
	for s.stopped < s.registered {
		s.cond.Wait()
	}
	s.stwActive = true
	s.mu.Unlock()
}

// resumeTheWorld releases all parked mutators.
func (s *safepoints) resumeTheWorld() {
	s.mu.Lock()
	s.stwActive = false
	s.requested.Store(false)
	s.epoch++
	s.cond.Broadcast()
	s.mu.Unlock()
}

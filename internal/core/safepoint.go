package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// spToken is one registered mutator's identity in the safepoint protocol.
// The watchdog uses it to name the mutators that have not reached the
// safepoint when a stop-the-world overruns its deadline; all fields are
// guarded by safepoints.mu.
type spToken struct {
	name string
	// stopped mirrors the mutator's contribution to safepoints.stopped:
	// true while parked at a safepoint or inside a blocked section.
	stopped bool
}

// safepoints implements the stop-the-world handshake. Mutators poll
// Safepoint() at allocation sites and loop back-edges; when the collector
// requests a pause, polling mutators park until the world resumes.
// Mutators that block (allocation stalls, detached sections) count as
// stopped for the duration of the blocking region, like JNI native code in
// HotSpot.
type safepoints struct {
	// requested is the fast-path flag mutators poll without locking.
	requested atomic.Bool

	mu        sync.Mutex
	cond      *sync.Cond
	stwActive bool
	// registered is the number of attached mutators; stopped counts those
	// currently parked or blocked.
	registered int
	stopped    int
	// epoch increments on every resume so parked mutators distinguish
	// consecutive pauses.
	epoch uint64
	// toks are the attached mutators' identity tokens.
	toks map[*spToken]struct{}
	// nameSeq numbers default token names.
	nameSeq uint64
}

func newSafepoints() *safepoints {
	s := &safepoints{toks: make(map[*spToken]struct{})}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// register attaches a mutator to the safepoint protocol and returns its
// identity token. If a pause is pending or active, registration waits it
// out: a mutator attaching mid-pause could otherwise touch the heap while
// the collector assumes the world is stopped.
func (s *safepoints) register(name string) *spToken {
	s.mu.Lock()
	for s.requested.Load() || s.stwActive {
		s.cond.Wait()
	}
	s.registered++
	s.nameSeq++
	if name == "" {
		name = "mutator-" + itoa(s.nameSeq)
	}
	tok := &spToken{name: name}
	s.toks[tok] = struct{}{}
	s.mu.Unlock()
	return tok
}

// itoa renders a small uint without strconv (keeps the lock-held path
// allocation-light and dependency-free).
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// setName renames the token (serving threads label themselves so watchdog
// reports are actionable).
func (s *safepoints) setName(tok *spToken, name string) {
	s.mu.Lock()
	tok.name = name
	s.mu.Unlock()
}

// unregister detaches a mutator. Must be called from running (not parked)
// state; the mutator may not touch the heap afterwards.
func (s *safepoints) unregister(tok *spToken) {
	s.mu.Lock()
	s.registered--
	delete(s.toks, tok)
	s.cond.Broadcast()
	// If a pause is pending, the collector may now have all remaining
	// mutators stopped.
	s.mu.Unlock()
}

// poll parks the caller if a stop-the-world is requested or active. This
// is the safepoint check; the fast path is a single atomic load.
func (s *safepoints) poll(tok *spToken) {
	if !s.requested.Load() {
		return
	}
	s.mu.Lock()
	for s.requested.Load() || s.stwActive {
		s.stopped++
		tok.stopped = true
		s.cond.Broadcast() // wake the collector waiting for quorum
		epoch := s.epoch
		for (s.requested.Load() || s.stwActive) && s.epoch == epoch {
			s.cond.Wait()
		}
		s.stopped--
		tok.stopped = false
	}
	s.mu.Unlock()
}

// beginBlocked marks the caller as stopped-equivalent for the duration of
// a blocking operation (allocation stall). The caller must not touch the
// heap until endBlocked returns.
func (s *safepoints) beginBlocked(tok *spToken) {
	s.mu.Lock()
	s.stopped++
	tok.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// endBlocked re-enters running state, waiting out any active pause.
func (s *safepoints) endBlocked(tok *spToken) {
	s.mu.Lock()
	for s.requested.Load() || s.stwActive {
		s.cond.Wait()
	}
	s.stopped--
	tok.stopped = false
	s.mu.Unlock()
}

// stuckLocked names the registered mutators not at the safepoint, sorted.
// Caller holds s.mu.
func (s *safepoints) stuckLocked() []string {
	var out []string
	for tok := range s.toks {
		if !tok.stopped {
			out = append(out, tok.name)
		}
	}
	sort.Strings(out)
	return out
}

// stopTheWorld blocks until every registered mutator is parked or blocked,
// then returns with the world stopped. Only the collector calls this, and
// never reentrantly.
//
// watchdog > 0 arms a wall-clock progress deadline: if quorum has not been
// reached when it expires, onStall is invoked once (outside s.mu) with the
// names of the mutators still running and the registered/stopped counts.
// Wall-clock deliberately — a mutator that never polls freezes the virtual
// timeline, so a virtual-cycle deadline could never fire. The pause keeps
// waiting after the report; the watchdog turns a silent hang into a
// diagnosable one, it does not abort the pause.
//
//hcsgc:wall-clock
func (s *safepoints) stopTheWorld(watchdog time.Duration, onStall func(stuck []string, registered, stopped int)) {
	s.requested.Store(true)
	var timer *time.Timer
	if watchdog > 0 && onStall != nil {
		timer = time.AfterFunc(watchdog, func() {
			s.mu.Lock()
			if s.stopped >= s.registered {
				s.mu.Unlock()
				return
			}
			stuck := s.stuckLocked()
			registered, stopped := s.registered, s.stopped
			s.mu.Unlock()
			onStall(stuck, registered, stopped)
		})
	}
	s.mu.Lock()
	for s.stopped < s.registered {
		s.cond.Wait()
	}
	s.stwActive = true
	s.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}
}

// resumeTheWorld releases all parked mutators.
func (s *safepoints) resumeTheWorld() {
	s.mu.Lock()
	s.stwActive = false
	s.requested.Store(false)
	s.epoch++
	s.cond.Broadcast()
	s.mu.Unlock()
}

package core

import (
	"strings"
	"testing"

	"hcsgc/internal/heap"
	"hcsgc/internal/objmodel"
)

func TestFmtBytes(t *testing.T) {
	cases := []struct {
		in   uint64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{1 << 10, "1.0KB"},
		{1536, "1.5KB"},
		{1 << 20, "1.0MB"},
		{3 << 20, "3.0MB"},
		{1 << 30, "1.0GB"},
		{4 << 30, "4.0GB"},
		{6442450944, "6.0GB"}, // 6 GiB must not render as 6144.0MB
	}
	for _, c := range cases {
		if got := fmtBytes(c.in); got != c.want {
			t.Errorf("fmtBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMedianECSmall(t *testing.T) {
	mk := func(counts ...int) Stats {
		st := Stats{}
		for _, n := range counts {
			st.Cycles = append(st.Cycles, CycleStats{ECSmall: n})
		}
		return st
	}
	cases := []struct {
		name string
		st   Stats
		want float64
	}{
		{"empty", mk(), 0},
		{"single", mk(7), 7},
		{"odd", mk(9, 1, 5), 5},
		{"even", mk(8, 2, 6, 4), 5},
		{"unsorted-dups", mk(3, 1, 3, 1, 3), 3},
	}
	for _, c := range cases {
		if got := c.st.MedianECSmall(); got != c.want {
			t.Errorf("%s: MedianECSmall = %v, want %v", c.name, got, c.want)
		}
	}
	// The input order must survive: MedianECSmall works on a copy.
	st := mk(9, 1, 5)
	st.MedianECSmall()
	if st.Cycles[0].ECSmall != 9 || st.Cycles[1].ECSmall != 1 {
		t.Error("MedianECSmall mutated its receiver's cycle order")
	}
}

// TestWriteGCLog checks the rendered log structure: the knob header, one
// block per cycle with its pause/EC/heap lines, and the totals line.
func TestWriteGCLogGolden(t *testing.T) {
	h := heap.New(heap.Config{MaxBytes: 32 << 20}, nil)
	c := MustNew(h, objmodel.NewRegistry(), Config{
		Knobs:     Knobs{Hotness: true, LazyRelocate: true},
		GCWorkers: 2,
	})
	c.stats.append(&CycleStats{
		Seq: 1, Trigger: "requested",
		Pause1: 100, Pause2: 200, Pause3: 300,
		MarkedBytes: 5 << 20, ECSmall: 3, ECSmallLiveBytes: 1 << 20,
		ECMedium: 1, PagesFreedEmpty: 2,
		HeapUsedBefore: 50.0, HeapUsedAfter: 25.0,
	})
	c.stats.append(&CycleStats{Seq: 2, Trigger: "allocation stall"})
	c.stats.addMutatorReloc(4096)
	c.stats.addMutatorReloc(4096)
	c.stats.addGCReloc(8192)

	var b strings.Builder
	c.WriteGCLog(&b)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")

	// Header + 5 lines per cycle x 2 cycles + totals.
	if want := 1 + 2*5 + 1; len(lines) != want {
		t.Fatalf("got %d log lines, want %d:\n%s", len(lines), want, out)
	}
	wantFragments := []string{
		"collector: HCSGC (H lazy), 2 workers, evac threshold 75%",
		"GC(1) trigger=requested",
		"GC(1) pause cycles: STW1=100 STW2=200 STW3=300",
		"GC(1) marked 5.0MB live",
		"GC(1) EC: 3 small pages (1.0MB live), 1 medium; 2 empty pages freed",
		"GC(1) heap: 50.0% -> 25.0%",
		"GC(2) trigger=allocation stall",
		"totals: 2 cycles, relocated 2 objects (8.0KB) by mutators, 1 (8.0KB) by GC",
	}
	for _, frag := range wantFragments {
		if !strings.Contains(out, frag) {
			t.Errorf("log missing %q:\n%s", frag, out)
		}
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "[gc] ") {
			t.Errorf("line without [gc] prefix: %q", line)
		}
	}
}

package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSafepointFastPathNoSTW(t *testing.T) {
	s := newSafepoints()
	tok := s.register("")
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1_000_000; i++ {
			s.poll(tok)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("polling without STW must never block")
	}
	s.unregister(tok)
}

func TestStopTheWorldWaitsForAllMutators(t *testing.T) {
	s := newSafepoints()
	const n = 4
	var inPause atomic.Bool
	var violations atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		tok := s.register("")
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.unregister(tok)
			for !stop.Load() {
				s.poll(tok)
				// Outside poll the world must not be stopped: if it is,
				// stopTheWorld returned without this mutator parked.
				if inPause.Load() {
					violations.Add(1)
				}
			}
		}()
	}
	for round := 0; round < 20; round++ {
		s.stopTheWorld(0, nil)
		inPause.Store(true)
		time.Sleep(time.Millisecond)
		inPause.Store(false)
		s.resumeTheWorld()
	}
	stop.Store(true)
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d mutator steps observed an active pause", violations.Load())
	}
}

func TestBlockedMutatorCountsAsStopped(t *testing.T) {
	s := newSafepoints()
	tok := s.register("")
	s.beginBlocked(tok)
	done := make(chan struct{})
	go func() {
		s.stopTheWorld(0, nil) // must not wait for the blocked mutator
		s.resumeTheWorld()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked mutator must count towards the STW quorum")
	}
	s.endBlocked(tok)
	s.unregister(tok)
}

func TestEndBlockedWaitsOutPause(t *testing.T) {
	s := newSafepoints()
	tok := s.register("")
	s.beginBlocked(tok)
	s.stopTheWorld(0, nil)
	resumed := make(chan struct{})
	go func() {
		s.endBlocked(tok) // must block until resume
		close(resumed)
	}()
	select {
	case <-resumed:
		t.Fatal("endBlocked returned during an active pause")
	case <-time.After(20 * time.Millisecond):
	}
	s.resumeTheWorld()
	select {
	case <-resumed:
	case <-time.After(5 * time.Second):
		t.Fatal("endBlocked did not return after resume")
	}
	s.unregister(tok)
}

func TestConsecutivePauses(t *testing.T) {
	s := newSafepoints()
	tok := s.register("")
	stop := make(chan struct{})
	var polls atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				s.poll(tok)
				polls.Add(1)
			}
		}
	}()
	// Let the mutator get going before the pause storm.
	for polls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 50; i++ {
		s.stopTheWorld(0, nil)
		s.resumeTheWorld()
	}
	close(stop)
	if polls.Load() == 0 {
		t.Fatal("mutator never made progress between pauses")
	}
	// Drain: the goroutine may be parked; one more resume is harmless.
}

func TestRegisterBlocksDuringSTW(t *testing.T) {
	s := newSafepoints()
	tok := s.register("")
	s.beginBlocked(tok)
	s.stopTheWorld(0, nil)
	registered := make(chan struct{})
	go func() {
		s.register("") // must wait for resume
		close(registered)
	}()
	select {
	case <-registered:
		t.Fatal("register completed during a pause")
	case <-time.After(20 * time.Millisecond):
	}
	s.resumeTheWorld()
	select {
	case <-registered:
	case <-time.After(5 * time.Second):
		t.Fatal("register did not complete after resume")
	}
}

func TestMarkPoolPutGet(t *testing.T) {
	p := newMarkPool()
	p.setActive(1)
	p.put([]uint64{1, 2, 3})
	chunk := p.get() // active stays 1 (dec then inc)
	if len(chunk) != 3 {
		t.Fatalf("chunk = %v", chunk)
	}
	if p.quiescent() {
		t.Fatal("worker holding work is not quiescent")
	}
}

func TestMarkPoolEmptyPutIgnored(t *testing.T) {
	p := newMarkPool()
	p.setActive(0)
	p.put(nil)
	if !p.quiescent() {
		t.Fatal("empty put must not wake anything")
	}
}

func TestMarkPoolTerminateReleasesWaiters(t *testing.T) {
	p := newMarkPool()
	p.setActive(2)
	got := make(chan []uint64, 2)
	for i := 0; i < 2; i++ {
		go func() { got <- p.get() }()
	}
	time.Sleep(10 * time.Millisecond)
	p.terminate()
	for i := 0; i < 2; i++ {
		select {
		case c := <-got:
			if c != nil {
				t.Fatalf("terminated get returned %v, want nil", c)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("terminate did not release waiters")
		}
	}
}

func TestMarkPoolQuiescenceSignal(t *testing.T) {
	p := newMarkPool()
	p.setActive(1)
	p.put([]uint64{42})
	workerDone := make(chan struct{})
	go func() {
		chunk := p.get()
		_ = chunk
		// Simulate processing, then go back for more (becomes waiting).
		go func() {
			p.get()
			close(workerDone)
		}()
	}()
	waited := make(chan struct{})
	go func() {
		p.waitQuiescent()
		close(waited)
	}()
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		t.Fatal("waitQuiescent never fired")
	}
	p.terminate()
	<-workerDone
}

func TestMarkPoolWorkStealingOrder(t *testing.T) {
	// Chunks come back LIFO (stack discipline), freshest first.
	p := newMarkPool()
	p.setActive(1)
	p.put([]uint64{1})
	p.put([]uint64{2})
	if c := p.get(); c[0] != 2 {
		t.Fatalf("got %v, want freshest chunk", c)
	}
}

// TestBlockedMutatorDoesNotStallSTW is the contract multi-threaded
// embedders (the KV server workload) rely on: a mutator idling inside
// Blocked counts as stopped, so another mutator can run a full GC cycle
// without the idler ever polling. Without Blocked this scenario deadlocks
// in stopTheWorld.
func TestBlockedMutatorDoesNotStallSTW(t *testing.T) {
	c, types := testEnv(t, Knobs{})
	node := types.Register("node", 2, []int{0})

	idler := c.NewMutator(4)
	defer idler.Close()
	buildList(idler, node, 100)

	worker := c.NewMutator(4)
	defer worker.Close()
	buildList(worker, node, 100)

	release := make(chan struct{})
	parked := make(chan struct{})
	done := make(chan struct{})
	go func() {
		idler.Blocked(func() {
			close(parked)
			<-release
		})
		close(done)
	}()
	<-parked

	// GC from the worker while the idler is blocked: must complete, and
	// must scan + heal the idler's roots like any other mutator's.
	gcDone := make(chan struct{})
	go func() {
		worker.RequestGC()
		close(gcDone)
	}()
	select {
	case <-gcDone:
	case <-time.After(10 * time.Second):
		t.Fatal("GC deadlocked on a Blocked mutator")
	}

	close(release)
	<-done
	walkList(t, idler, 100)
	walkList(t, worker, 100)
	if c.Cycles() == 0 {
		t.Fatal("no GC cycle ran")
	}
}

// TestBlockedWaitsOutActivePause: leaving a blocked section while the
// world is stopped must park until the resume, not touch the heap.
func TestBlockedWaitsOutActivePause(t *testing.T) {
	s := newSafepoints()
	blockedTok := s.register("") // the blocked mutator
	pollTok := s.register("")    // the polling mutator (parks immediately below)

	entered := make(chan struct{})
	release := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		s.beginBlocked(blockedTok)
		close(entered)
		<-release // hold the blocked section open across the pause
		s.endBlocked(blockedTok)
		close(exited)
	}()
	<-entered

	pollerParked := make(chan struct{})
	pollerStop := make(chan struct{})
	go func() {
		close(pollerParked)
		for {
			s.poll(pollTok)
			select {
			case <-pollerStop:
				return
			default:
			}
		}
	}()
	<-pollerParked

	s.stopTheWorld(0, nil)
	close(release)
	select {
	case <-exited:
		t.Fatal("endBlocked returned while the world was stopped")
	case <-time.After(50 * time.Millisecond):
	}
	s.resumeTheWorld()
	select {
	case <-exited:
	case <-time.After(5 * time.Second):
		t.Fatal("endBlocked never returned after resume")
	}
	close(pollerStop)
}

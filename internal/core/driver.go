package core

import (
	"math"
	"time"

	"hcsgc/internal/faultinject"
)

// StartDriver launches the background GC trigger: a goroutine that starts
// a cycle whenever heap occupancy reaches Config.TriggerPercent. It is the
// analogue of ZGC's directed heuristics, reduced to the occupancy rule the
// paper's workloads exercise. The ticker is wall-clock by design: the
// driver races real mutator threads, and the virtual timeline only
// advances inside mutator work, so a virtual-time ticker would never fire
// while the mutators are between operations.
//
//hcsgc:wall-clock
func (c *Collector) StartDriver() {
	if c.driverStop != nil {
		return
	}
	c.driverStop = make(chan struct{})
	c.driverDone = make(chan struct{})
	go func() {
		defer close(c.driverDone)
		ticker := time.NewTicker(200 * time.Microsecond)
		defer ticker.Stop()
		for {
			select {
			case <-c.driverStop:
				return
			case <-ticker.C:
				if c.inj.DriverSuppressed() {
					continue
				}
				emergency := c.emergency.Swap(false)
				if emergency {
					c.inj.At(faultinject.EmergencyTrigger, 0)
				}
				if emergency || c.triggerDue() {
					if c.cycleMu.TryLock() {
						// Re-check under the lock: a stall-triggered cycle
						// may have just freed memory. An emergency request
						// is unconditional — but if a cycle is already
						// running (TryLock failed) it has been satisfied.
						if emergency {
							c.runCycle("emergency")
						} else if c.triggerDue() {
							c.runCycle("occupancy")
						}
						c.cycleMu.Unlock()
					}
				}
			}
		}
	}()
}

// triggerDue reports whether the occupancy trigger should fire, counting
// any emergency headroom reserved by the overload controller as already
// allocated: with headroom h, the cycle starts h bytes earlier, so the
// collector never enters one with zero slack.
func (c *Collector) triggerDue() bool {
	if c.heap.UsedPercent() >= c.cfg.TriggerPercent {
		return true
	}
	hr := c.headroomBytes.Load()
	if hr == 0 {
		return false
	}
	max := c.heap.MaxBytes()
	if max == 0 {
		return false
	}
	return 100*float64(c.heap.UsedBytes()+hr)/float64(max) >= c.cfg.TriggerPercent
}

// SetEmergencyHeadroom reserves (or, with 0, releases) emergency
// allocation headroom: the background driver treats the reservation as
// already-allocated bytes when evaluating the occupancy trigger. Posted
// by the overload controller under heap pressure; safe from any
// goroutine.
func (c *Collector) SetEmergencyHeadroom(bytes uint64) {
	c.headroomBytes.Store(bytes)
}

// EmergencyHeadroom returns the currently reserved emergency headroom.
func (c *Collector) EmergencyHeadroom() uint64 {
	return c.headroomBytes.Load()
}

// RequestEmergencyGC asks the background driver to start a cycle at its
// next tick regardless of occupancy (reason "emergency"). Non-blocking
// and safe from serving threads: unlike Collect it never waits on the
// cycle lock, and a request arriving while a cycle is already running is
// considered satisfied by it. Requires StartDriver.
func (c *Collector) RequestEmergencyGC() {
	c.emergency.Store(true)
}

// StopDriver stops the background trigger and waits for it to exit.
func (c *Collector) StopDriver() {
	if c.driverStop == nil {
		return
	}
	close(c.driverStop)
	<-c.driverDone
	c.driverStop = nil
	c.driverDone = nil
}

// --- AutoTune extension (paper §4.8 future work) -------------------------

// setEffConf stores the effective cold confidence.
func (c *Collector) setEffConf(v float64) {
	c.effConf.Store(math.Float64bits(v))
}

// effectiveConf returns the cold confidence currently in force: the
// configured value, or the auto-tuned one when AutoTune is enabled.
func (c *Collector) effectiveConf() float64 {
	return math.Float64frombits(c.effConf.Load())
}

// autoTune implements the feedback loop the paper sketches as future work:
// observe the process LLC miss rate; if segregation helped (miss rate
// fell), push cold confidence towards the configured maximum for more
// aggressive segregation, otherwise back off by half.
func (c *Collector) autoTune() {
	mem := c.heap.Mem()
	if mem == nil {
		return
	}
	st := mem.Stats()
	if st.Loads == 0 {
		return
	}
	missRate := float64(st.LLCMisses) / float64(st.Loads)
	prev := c.lastTuneMiss
	c.lastTuneMiss = missRate
	if prev == 0 {
		return // first observation: no delta yet
	}
	cur := c.effectiveConf()
	max := c.cfg.Knobs.ColdConfidence
	if missRate < prev {
		// Improvement: move towards the configured aggressiveness.
		c.setEffConf(math.Min(max, cur+0.25*max))
	} else {
		c.setEffConf(cur / 2)
	}
}

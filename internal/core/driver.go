package core

import (
	"math"
	"time"
)

// StartDriver launches the background GC trigger: a goroutine that starts
// a cycle whenever heap occupancy reaches Config.TriggerPercent. It is the
// analogue of ZGC's directed heuristics, reduced to the occupancy rule the
// paper's workloads exercise.
func (c *Collector) StartDriver() {
	if c.driverStop != nil {
		return
	}
	c.driverStop = make(chan struct{})
	c.driverDone = make(chan struct{})
	go func() {
		defer close(c.driverDone)
		ticker := time.NewTicker(200 * time.Microsecond)
		defer ticker.Stop()
		for {
			select {
			case <-c.driverStop:
				return
			case <-ticker.C:
				if c.inj.DriverSuppressed() {
					continue
				}
				if c.heap.UsedPercent() >= c.cfg.TriggerPercent {
					if c.cycleMu.TryLock() {
						// Re-check under the lock: a stall-triggered cycle
						// may have just freed memory.
						if c.heap.UsedPercent() >= c.cfg.TriggerPercent {
							c.runCycle("occupancy")
						}
						c.cycleMu.Unlock()
					}
				}
			}
		}
	}()
}

// StopDriver stops the background trigger and waits for it to exit.
func (c *Collector) StopDriver() {
	if c.driverStop == nil {
		return
	}
	close(c.driverStop)
	<-c.driverDone
	c.driverStop = nil
	c.driverDone = nil
}

// --- AutoTune extension (paper §4.8 future work) -------------------------

// setEffConf stores the effective cold confidence.
func (c *Collector) setEffConf(v float64) {
	c.effConf.Store(math.Float64bits(v))
}

// effectiveConf returns the cold confidence currently in force: the
// configured value, or the auto-tuned one when AutoTune is enabled.
func (c *Collector) effectiveConf() float64 {
	return math.Float64frombits(c.effConf.Load())
}

// autoTune implements the feedback loop the paper sketches as future work:
// observe the process LLC miss rate; if segregation helped (miss rate
// fell), push cold confidence towards the configured maximum for more
// aggressive segregation, otherwise back off by half.
func (c *Collector) autoTune() {
	mem := c.heap.Mem()
	if mem == nil {
		return
	}
	st := mem.Stats()
	if st.Loads == 0 {
		return
	}
	missRate := float64(st.LLCMisses) / float64(st.Loads)
	prev := c.lastTuneMiss
	c.lastTuneMiss = missRate
	if prev == 0 {
		return // first observation: no delta yet
	}
	cur := c.effectiveConf()
	max := c.cfg.Knobs.ColdConfidence
	if missRate < prev {
		// Improvement: move towards the configured aggressiveness.
		c.setEffConf(math.Min(max, cur+0.25*max))
	} else {
		c.setEffConf(cur / 2)
	}
}

package core

import (
	"fmt"
	"math/rand"
	"testing"

	"hcsgc/internal/heap"
)

// TestRandomizedAgainstShadowModel runs randomized object-graph programs
// against a Go-side shadow model, interleaving GC cycles under randomly
// drawn knob configurations. Any divergence between the heap and the
// model is a collector bug (lost update, bad remap, wrong copy).
func TestRandomizedAgainstShadowModel(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)))
			knobs := randomKnobs(rng)
			c, types := testEnv(t, knobs)
			node := types.Register("node", 3, []int{0, 1})
			m := c.NewMutator(8)
			defer m.Close()

			// The object population: a heap ref array in root 0 plus a
			// shadow model with OBJECT IDENTITY. Each heap object carries
			// a unique model id in its payload-adjacent slot? No — the id
			// IS tracked shadow-side: payloads[id] is the expected value
			// of field 2, and the heap object's field 2 always holds
			// payloads[id], mutated in lockstep. Refs in the model store
			// ids, so references to replaced (no longer slot-reachable)
			// objects remain checkable.
			const n = 300
			payloads := []uint64{}
			refA := []int{} // per object id: referenced object id or -1
			refB := []int{}
			newObj := func(v uint64) int {
				payloads = append(payloads, v)
				refA = append(refA, -1)
				refB = append(refB, -1)
				return len(payloads) - 1
			}
			slotID := make([]int, n) // population slot -> object id
			arr := m.AllocRefArray(n)
			m.SetRoot(0, arr)
			for i := 0; i < n; i++ {
				obj := m.Alloc(node)
				m.StoreField(obj, 2, uint64(i))
				m.StoreRef(m.LoadRoot(0), i, obj)
				slotID[i] = newObj(uint64(i))
			}

			get := func(i int) heap.Ref { return m.LoadRef(m.LoadRoot(0), i) }

			for op := 0; op < 4000; op++ {
				switch rng.Intn(10) {
				case 0, 1: // rewire ref field a (to another slot's object)
					i, j := rng.Intn(n), rng.Intn(n+1)-1
					obj := get(i)
					if j < 0 {
						m.StoreRef(obj, 0, heap.NullRef)
						refA[slotID[i]] = -1
					} else {
						m.StoreRef(obj, 0, get(j))
						refA[slotID[i]] = slotID[j]
					}
				case 2, 3: // rewire ref field b
					i, j := rng.Intn(n), rng.Intn(n+1)-1
					obj := get(i)
					if j < 0 {
						m.StoreRef(obj, 1, heap.NullRef)
						refB[slotID[i]] = -1
					} else {
						m.StoreRef(obj, 1, get(j))
						refB[slotID[i]] = slotID[j]
					}
				case 4, 5: // mutate payload of the slot's current object
					i, v := rng.Intn(n), rng.Uint64()>>1
					m.StoreField(get(i), 2, v)
					payloads[slotID[i]] = v
				case 6: // replace the slot's object (old one may die)
					i := rng.Intn(n)
					obj := m.Alloc(node)
					v := rng.Uint64() >> 1
					m.StoreField(obj, 2, v)
					m.StoreRef(m.LoadRoot(0), i, obj)
					slotID[i] = newObj(v)
				case 7: // garbage churn
					m.AllocWordArray(rng.Intn(200) + 1)
				case 8: // verify the slot's object fully
					i := rng.Intn(n)
					id := slotID[i]
					obj := get(i)
					if got := m.LoadField(obj, 2); got != payloads[id] {
						t.Fatalf("op %d: slot %d payload = %d, want %d", op, i, got, payloads[id])
					}
					checkRef := func(field, wantID int) {
						ref := m.LoadRef(obj, field)
						if wantID < 0 {
							if !ref.IsNull() {
								t.Fatalf("op %d: slot %d field %d should be null", op, i, field)
							}
							return
						}
						if got := m.LoadField(ref, 2); got != payloads[wantID] {
							t.Fatalf("op %d: slot %d field %d -> payload %d, want %d (id %d)",
								op, i, field, got, payloads[wantID], wantID)
						}
					}
					checkRef(0, refA[id])
					checkRef(1, refB[id])
				case 9: // GC, sometimes
					if rng.Intn(4) == 0 {
						m.RequestGC()
					} else {
						m.Safepoint()
					}
				}
			}
			// Final sweep: every slot matches the model.
			m.RequestGC()
			for i := 0; i < n; i++ {
				if got := m.LoadField(get(i), 2); got != payloads[slotID[i]] {
					t.Fatalf("final: slot %d payload = %d, want %d", i, got, payloads[slotID[i]])
				}
			}
		})
	}
}

// randomKnobs draws a valid knob configuration.
func randomKnobs(rng *rand.Rand) Knobs {
	k := Knobs{
		Hotness:               rng.Intn(2) == 1,
		RelocateAllSmallPages: rng.Intn(2) == 1,
		LazyRelocate:          rng.Intn(2) == 1,
	}
	if k.Hotness {
		k.ColdPage = rng.Intn(2) == 1
		k.ColdConfidence = []float64{0, 0.5, 1}[rng.Intn(3)]
	}
	return k
}

// TestShadowModelConcurrentMutators runs two mutators sharing one object
// population with the driver enabled; each owns a disjoint index range so
// the shadow models stay race-free, while relocation races are shared.
func TestShadowModelConcurrentMutators(t *testing.T) {
	c, types := testEnv(t, Knobs{Hotness: true, ColdConfidence: 1.0, LazyRelocate: true})
	node := types.Register("node", 3, []int{0, 1})
	c.StartDriver()
	defer c.StopDriver()

	run := func(seed int64, errc chan<- error) {
		m := c.NewMutator(4)
		defer m.Close()
		rng := rand.New(rand.NewSource(seed))
		const n = 200
		payload := make([]uint64, n)
		arr := m.AllocRefArray(n)
		m.SetRoot(0, arr)
		for i := 0; i < n; i++ {
			obj := m.Alloc(node)
			m.StoreField(obj, 2, uint64(i))
			m.StoreRef(m.LoadRoot(0), i, obj)
			payload[i] = uint64(i)
		}
		for op := 0; op < 3000; op++ {
			i := rng.Intn(n)
			switch rng.Intn(4) {
			case 0:
				v := rng.Uint64() >> 1
				m.StoreField(m.LoadRef(m.LoadRoot(0), i), 2, v)
				payload[i] = v
			case 1:
				if got := m.LoadField(m.LoadRef(m.LoadRoot(0), i), 2); got != payload[i] {
					errc <- fmt.Errorf("op %d: payload %d != %d", op, got, payload[i])
					return
				}
			case 2:
				m.AllocWordArray(rng.Intn(500) + 1)
			case 3:
				m.Safepoint()
			}
		}
		errc <- nil
	}
	errc := make(chan error, 2)
	go run(1, errc)
	go run(2, errc)
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

package core

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"hcsgc/internal/faultinject"
	"hcsgc/internal/heap"
	"hcsgc/internal/objmodel"
	"hcsgc/internal/telemetry/latency"
)

// latEnv builds a collector with a latency tracker whose automatic dumps
// land in the returned builder. Dumps are written on the cycle/allocation
// paths of the calling goroutine, so reading the builder after RequestGC /
// TryAlloc returns is race-free.
func latEnv(t *testing.T, knobs Knobs, maxBytes uint64, cfg Config, latCfg latency.Config) (*Collector, *objmodel.Registry, *latency.Tracker, *strings.Builder, *heap.Verifier) {
	t.Helper()
	var dumpBuf strings.Builder
	latCfg.DumpTo = &dumpBuf
	tr := latency.New(latCfg)
	cfg.Knobs = knobs
	cfg.Latency = tr
	v := heap.NewVerifier()
	h := heap.New(heap.Config{MaxBytes: maxBytes, Injector: cfg.FaultInjector}, nil)
	h.SetVerifier(v)
	types := objmodel.NewRegistry()
	c, err := New(h, types, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, types, tr, &dumpBuf, v
}

// TestLatencyCycleAttribution runs real cycles and checks the tracker's
// per-cycle flight records: every STW pause recorded, phase durations
// attributed, the virtual timeline monotone.
func TestLatencyCycleAttribution(t *testing.T) {
	c, types, tr, _, _ := latEnv(t, Knobs{Hotness: true, RelocateAllSmallPages: true}, 128<<20, Config{}, latency.Config{})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(1)
	buildList(m, node, 2000)
	const cycles = 3
	for i := 0; i < cycles; i++ {
		ref := m.LoadRoot(0)
		for j := 0; j < 500 && !ref.IsNull(); j++ {
			ref = m.LoadRef(ref, 0)
		}
		for j := 0; j < 100; j++ {
			m.AllocWordArray(64)
		}
		m.RequestGC()
	}
	r := tr.Report()
	for _, p := range []string{"stw1", "stw2", "stw3"} {
		if r.Pauses[p].Count != cycles {
			t.Errorf("%s count = %d, want %d", p, r.Pauses[p].Count, cycles)
		}
	}
	if r.Pauses["stw1"].Max == 0 {
		t.Error("stw1 recorded zero-cost pauses only despite live roots")
	}
	if len(r.Flight) != cycles {
		t.Fatalf("flight records = %d, want %d", len(r.Flight), cycles)
	}
	var prevEnd uint64
	for i, rec := range r.Flight {
		if rec.Seq != uint64(i+1) || rec.Trigger != "requested" {
			t.Errorf("flight[%d] = seq %d trigger %q", i, rec.Seq, rec.Trigger)
		}
		if rec.VEnd < rec.VStart || rec.VStart < prevEnd {
			t.Errorf("flight[%d] virtual timeline not monotone: [%d,%d] after %d",
				i, rec.VStart, rec.VEnd, prevEnd)
		}
		prevEnd = rec.VEnd
		if rec.Pause1 == 0 {
			t.Errorf("flight[%d] attributes no stw1 cost", i)
		}
		if rec.VerifyRuns == 0 {
			t.Errorf("flight[%d] verifier runs = 0 with verifier attached", i)
		}
	}
	// Post-cycle traversals must cross the barrier slow path somewhere
	// (remap/relocate healing of stale refs).
	var hits uint64
	for _, bp := range r.Barrier {
		hits += bp.Hits
	}
	if hits == 0 {
		t.Error("no barrier slow-path hits recorded across any path")
	}
	m.Close()
}

// TestLatencyBarrierPathsUnderLazy checks the relocate-path attribution
// LAZYRELOCATE exists to expose: with the GC standing down, the mutator's
// traversal relocates EC objects through the barrier slow path.
func TestLatencyBarrierPathsUnderLazy(t *testing.T) {
	c, types, tr, _, _ := latEnv(t, Knobs{Hotness: true, RelocateAllSmallPages: true, LazyRelocate: true}, 128<<20, Config{}, latency.Config{SampleShift: 1})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(1)
	buildList(m, node, 2000)
	m.RequestGC()
	if c.CurrentPhase() != PhaseRelocate {
		t.Fatal("not in relocation era after lazy cycle")
	}
	walkList(t, m, 2000)
	r := tr.Report()
	if r.Barrier["relocate"].Hits == 0 {
		t.Fatal("lazy traversal produced no relocate barrier hits")
	}
	if r.Barrier["relocate"].Sampled.Count == 0 {
		t.Error("shift-1 sampling captured no relocate latencies")
	}
	m.Close()
}

// TestFlightDumpOnInjectedVerifierFailure is the acceptance test for the
// automatic dump: a fault-injection hook at the PageRetire point (inside
// STW1) reports a synthetic verifier violation mid-cycle, and the cycle
// boundary must emit exactly one flight dump attributing it.
func TestFlightDumpOnInjectedVerifierFailure(t *testing.T) {
	inj := faultinject.New(faultinject.Config{}) // hook-only
	c, types, tr, dumpBuf, v := latEnv(t, Knobs{}, 128<<20, Config{FaultInjector: inj}, latency.Config{})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(1)
	buildList(m, node, 500)

	m.RequestGC() // a clean cycle first: no dump
	if tr.Dumps() != 0 {
		t.Fatalf("clean cycle auto-dumped: %s", dumpBuf.String())
	}

	inj.SetHook(faultinject.PageRetire, func(uint64) {
		v.Report(heap.CheckAccounting, "injected", 0, 0, "synthetic violation for flight-recorder test")
	})
	m.RequestGC()
	inj.SetHook(faultinject.PageRetire, nil)

	if tr.Dumps() != 1 {
		t.Fatalf("dumps = %d, want exactly 1", tr.Dumps())
	}
	var d latency.FlightDump
	if err := json.Unmarshal([]byte(strings.TrimSpace(dumpBuf.String())), &d); err != nil {
		t.Fatalf("auto-dump is not one JSON object: %v\n%s", err, dumpBuf.String())
	}
	if !strings.Contains(d.Reason, "verifier reported 1 new violation") {
		t.Errorf("dump reason = %q", d.Reason)
	}
	if d.Report == nil || len(d.Report.Flight) != 2 {
		t.Fatalf("dump carries %d flight records, want 2", len(d.Report.Flight))
	}
	last := d.Report.Flight[len(d.Report.Flight)-1]
	if last.VerifyViolations != 1 {
		t.Errorf("dumped cycle's verifier violations = %d, want 1", last.VerifyViolations)
	}

	m.RequestGC() // no new violations: no further dump
	if tr.Dumps() != 1 {
		t.Error("dump repeated without new violations")
	}
	m.Close()
}

// TestFlightDumpOnOOM: exhausting the stall budget dumps the flight
// recorder with the allocation context before the structured error
// returns.
func TestFlightDumpOnOOM(t *testing.T) {
	c, _, tr, dumpBuf, _ := latEnv(t, Knobs{}, 4<<20, Config{TriggerPercent: 101, StallRetries: 2}, latency.Config{})
	m := c.NewMutator(64)
	var err error
	for i := 0; i < 64 && err == nil; i++ {
		var ref heap.Ref
		ref, err = m.TryAllocWordArray(16 << 10)
		if err == nil {
			m.SetRoot(i, ref)
		}
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if tr.Dumps() == 0 {
		t.Fatal("OOM produced no flight dump")
	}
	var d latency.FlightDump
	line, _, _ := strings.Cut(strings.TrimSpace(dumpBuf.String()), "\n")
	if err := json.Unmarshal([]byte(line), &d); err != nil {
		t.Fatalf("dump parse: %v", err)
	}
	if !strings.Contains(d.Reason, "oom") {
		t.Errorf("dump reason = %q, want oom context", d.Reason)
	}
	if d.Report.Stall.Count == 0 {
		t.Error("OOM dump records no stalls")
	}
	m.Close()
}

// TestLatencyStallIntervals: stall-and-recover traffic lands in the stall
// distribution and per-cycle stall counts.
func TestLatencyStallIntervals(t *testing.T) {
	c, _, tr, _, _ := latEnv(t, Knobs{}, 8<<20, Config{TriggerPercent: 101}, latency.Config{})
	m := c.NewMutator(1)
	for i := 0; i < 100; i++ {
		ref, err := m.TryAllocWordArray(16 << 10)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		m.SetRoot(0, ref)
	}
	r := tr.Report()
	if m.Stalls == 0 || r.Stall.Count != m.Stalls {
		t.Fatalf("stall dist count = %d, mutator stalls = %d", r.Stall.Count, m.Stalls)
	}
	var flightStalls uint64
	for _, rec := range r.Flight {
		flightStalls += rec.Stalls
	}
	if flightStalls == 0 {
		t.Error("no stalls attributed to cycles in the flight recorder")
	}
	m.Close()
}

// TestVirtualCyclesClock pins the per-mutator virtual clock the KV
// serving workload measures request latency on: it starts at the
// mutator's own ledger, advances with Work, and jumps forward by the STW
// pause cost of a GC cycle (pauses stop every mutator, so they are
// charged to whatever request is in flight).
func TestVirtualCyclesClock(t *testing.T) {
	c, types, _, _, _ := latEnv(t, Knobs{}, 128<<20, Config{}, latency.Config{})
	node := types.Register("vnode", 2, []int{0})
	m := c.NewMutator(1)

	if got, want := m.VirtualCycles(), m.Cycles(); got != want {
		t.Fatalf("fresh mutator VirtualCycles = %d, want Cycles() = %d", got, want)
	}
	before := m.VirtualCycles()
	m.Work(1000)
	if got := m.VirtualCycles(); got != before+1000 {
		t.Fatalf("VirtualCycles after Work(1000) = %d, want %d", got, before+1000)
	}

	buildList(m, node, 500)
	preGC := m.VirtualCycles()
	m.RequestGC()
	pauses := c.PauseCycles()
	if pauses == 0 {
		t.Fatal("a GC cycle must accrue STW pause cost")
	}
	if got := m.VirtualCycles(); got < preGC+pauses {
		t.Fatalf("VirtualCycles after GC = %d, want >= %d (pre %d + pauses %d)",
			got, preGC+pauses, preGC, pauses)
	}
	// The collector's global clock dominates every mutator's clock.
	if global, own := c.VirtualCycles(), m.VirtualCycles(); global < own {
		t.Fatalf("global clock %d behind mutator clock %d", global, own)
	}
}

// TestVirtualCyclesChargesStalls forces allocation stalls in a tiny heap
// and checks the stall's elapsed virtual time lands on the stalled
// mutator's clock — the mechanism that keeps allocation stalls from
// vanishing out of open-loop request latency.
func TestVirtualCyclesChargesStalls(t *testing.T) {
	// Heap small enough that garbage churn must stall into GC: 8 MB with
	// a default 70% trigger.
	c, types, tr, _, _ := latEnv(t, Knobs{}, 8<<20, Config{StallRetries: 64}, latency.Config{})
	node := types.Register("snode", 2, []int{0})
	m := c.NewMutator(2)
	// A second mutator that keeps the virtual clock moving while m
	// stalls (in a serving system, other server threads keep working).
	w := c.NewMutator(1)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				w.Work(50)
				w.Safepoint()
			}
		}
	}()

	buildList(m, node, 1000)
	for i := 0; i < 40_000 && m.Stalls == 0; i++ {
		m.AllocWordArray(127)
	}
	close(stop)
	<-done
	if m.Stalls == 0 {
		t.Skip("no allocation stall triggered; heap sizing changed")
	}
	r := tr.Report()
	if r.Stall.Count == 0 {
		t.Fatal("tracker recorded no stalls despite Mutator.Stalls > 0")
	}
	if lower := m.Cycles() + c.PauseCycles(); m.VirtualCycles() <= lower && r.Stall.Max > 0 {
		t.Fatalf("stalls left no trace on VirtualCycles: %d <= ledger+pauses %d (stall max %v)",
			m.VirtualCycles(), lower, r.Stall.Max)
	}
}

package core

import (
	"testing"

	"hcsgc/internal/heap"
	"hcsgc/internal/objmodel"
	"hcsgc/internal/simmem"
)

// testEnv builds a collector over a small heap with a cache model.
func testEnv(t *testing.T, knobs Knobs) (*Collector, *objmodel.Registry) {
	t.Helper()
	mem := simmem.MustNewHierarchy(simmem.DefaultConfig())
	h := heap.New(heap.Config{MaxBytes: 128 << 20, EnableTinyClass: knobs.TinyPages}, mem)
	types := objmodel.NewRegistry()
	c, err := New(h, types, Config{Knobs: knobs})
	if err != nil {
		t.Fatal(err)
	}
	return c, types
}

func TestNewValidatesKnobs(t *testing.T) {
	h := heap.New(heap.Config{}, nil)
	types := objmodel.NewRegistry()
	bad := []Knobs{
		{ColdPage: true},
		{ColdConfidence: 0.5},
		{Hotness: true, ColdConfidence: 1.5},
		{Hotness: true, ColdConfidence: -0.1},
	}
	for _, k := range bad {
		if _, err := New(h, types, Config{Knobs: k}); err == nil {
			t.Errorf("knobs %+v should be rejected", k)
		}
	}
	if _, err := New(h, types, Config{Knobs: Knobs{Hotness: true, ColdPage: true, ColdConfidence: 1}}); err != nil {
		t.Errorf("valid knobs rejected: %v", err)
	}
}

func TestKnobsString(t *testing.T) {
	if (Knobs{}).String() != "zgc" {
		t.Error("zero knobs should render as zgc")
	}
	s := Knobs{Hotness: true, ColdPage: true, ColdConfidence: 0.5, LazyRelocate: true}.String()
	if s == "" || s == "zgc" {
		t.Errorf("knob string = %q", s)
	}
}

func TestInitialState(t *testing.T) {
	c, _ := testEnv(t, Knobs{})
	if c.Good() != heap.ColorRemapped {
		t.Errorf("initial good color = %v, want R", c.Good())
	}
	if c.CurrentPhase() != PhaseRelocate {
		t.Errorf("initial phase = %v, want relocate", c.CurrentPhase())
	}
	if c.Cycles() != 0 {
		t.Error("no cycles should have run")
	}
}

func TestAllocReturnsGoodColor(t *testing.T) {
	c, types := testEnv(t, Knobs{})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	ref := m.Alloc(node)
	if ref.IsNull() {
		t.Fatal("allocation returned null")
	}
	if ref.Color() != c.Good() {
		t.Fatalf("allocated color %v != good %v", ref.Color(), c.Good())
	}
	// Fields start as null refs / zero words.
	if !m.LoadRef(ref, 0).IsNull() {
		t.Fatal("fresh ref field must be null")
	}
	if m.LoadField(ref, 1) != 0 {
		t.Fatal("fresh data field must be zero")
	}
}

func TestFieldRoundTrip(t *testing.T) {
	c, types := testEnv(t, Knobs{})
	node := types.Register("node", 3, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	a := m.Alloc(node)
	b := m.Alloc(node)
	m.StoreRef(a, 0, b)
	m.StoreField(a, 1, 42)
	if got := m.LoadRef(a, 0); got != b {
		t.Fatalf("LoadRef = %v, want %v", got, b)
	}
	if got := m.LoadField(a, 1); got != 42 {
		t.Fatalf("LoadField = %d, want 42", got)
	}
}

func TestArrayAllocAndAccess(t *testing.T) {
	c, _ := testEnv(t, Knobs{})
	m := c.NewMutator(4)
	defer m.Close()
	arr := m.AllocRefArray(100)
	if m.ArrayLen(arr) != 100 {
		t.Fatalf("ArrayLen = %d", m.ArrayLen(arr))
	}
	warr := m.AllocWordArray(50)
	if m.ArrayLen(warr) != 50 {
		t.Fatalf("word ArrayLen = %d", m.ArrayLen(warr))
	}
	m.StoreField(warr, 49, 7)
	if m.LoadField(warr, 49) != 7 {
		t.Fatal("word array roundtrip failed")
	}
}

func TestMediumAndLargeAllocation(t *testing.T) {
	c, _ := testEnv(t, Knobs{})
	m := c.NewMutator(4)
	defer m.Close()
	// Medium: > 256KB.
	med := m.AllocWordArray((300 << 10) / 8)
	if c.Heap().PageOf(med.Addr()).Class() != heap.ClassMedium {
		t.Fatal("300KB object should be on a medium page")
	}
	// Large: > 4MB.
	large := m.AllocWordArray((5 << 20) / 8)
	if c.Heap().PageOf(large.Addr()).Class() != heap.ClassLarge {
		t.Fatal("5MB object should be on a large page")
	}
	m.StoreField(large, 0, 9)
	if m.LoadField(large, 0) != 9 {
		t.Fatal("large object access failed")
	}
}

// buildList allocates a singly linked list of n nodes, storing the head in
// root slot 0, and tags each node's payload field with its index.
func buildList(m *Mutator, node *objmodel.Type, n int) {
	m.SetRoot(0, heap.NullRef)
	for i := n - 1; i >= 0; i-- {
		obj := m.Alloc(node)
		m.StoreField(obj, 1, uint64(i))
		m.StoreRef(obj, 0, m.LoadRoot(0))
		m.SetRoot(0, obj)
	}
}

// walkList traverses the list at root 0 verifying payloads 0..n-1.
func walkList(t *testing.T, m *Mutator, n int) {
	t.Helper()
	cur := m.LoadRoot(0)
	for i := 0; i < n; i++ {
		if cur.IsNull() {
			t.Fatalf("list truncated at %d of %d", i, n)
		}
		if got := m.LoadField(cur, 1); got != uint64(i) {
			t.Fatalf("node %d payload = %d", i, got)
		}
		cur = m.LoadRef(cur, 0)
	}
	if !cur.IsNull() {
		t.Fatal("list longer than expected")
	}
}

func TestCycleFlipsColorsAndPreservesData(t *testing.T) {
	c, types := testEnv(t, Knobs{})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	buildList(m, node, 1000)
	m.RequestGC()
	if c.Cycles() != 1 {
		t.Fatalf("cycles = %d, want 1", c.Cycles())
	}
	if c.Good() != heap.ColorRemapped || c.CurrentPhase() != PhaseRelocate {
		t.Fatal("after a cycle the collector must be in the relocate era with good=R")
	}
	walkList(t, m, 1000)
	// Root must have been healed to the good color during the pauses.
	if got := m.LoadRoot(0); got.Color() != heap.ColorRemapped {
		t.Fatalf("root color = %v, want R", got.Color())
	}
}

func TestMarkColorAlternates(t *testing.T) {
	c, types := testEnv(t, Knobs{})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	buildList(m, node, 10)
	// Observe the mark colors indirectly: two cycles must both succeed and
	// data must survive (a stuck color would break barrier fast paths).
	for i := 0; i < 4; i++ {
		m.RequestGC()
		walkList(t, m, 10)
	}
	if c.Cycles() != 4 {
		t.Fatalf("cycles = %d", c.Cycles())
	}
}

func TestGarbageReclaimed(t *testing.T) {
	c, _ := testEnv(t, Knobs{})
	m := c.NewMutator(4)
	defer m.Close()
	// Allocate ~16MB of garbage (unreachable after allocation).
	for i := 0; i < 4096; i++ {
		m.AllocWordArray(511) // 4KB each
	}
	used := c.Heap().UsedBytes()
	if used < 16<<20 {
		t.Fatalf("expected >=16MB allocated, got %d", used)
	}
	m.RequestGC() // mark finds nothing live; empty pages freed at EC
	after := c.Heap().UsedBytes()
	if after >= used/2 {
		t.Fatalf("garbage not reclaimed: before=%d after=%d", used, after)
	}
}

func TestDeadLargePageReclaimedImmediately(t *testing.T) {
	c, _ := testEnv(t, Knobs{})
	m := c.NewMutator(4)
	defer m.Close()
	ref := m.AllocWordArray((5 << 20) / 8)
	m.SetRoot(0, ref)
	used := c.Heap().UsedBytes()
	m.SetRoot(0, heap.NullRef) // drop the only reference
	m.RequestGC()
	if c.Heap().UsedBytes() >= used {
		t.Fatal("dead large page must be reclaimed during EC selection")
	}
}

func TestLiveLargePageSurvives(t *testing.T) {
	c, _ := testEnv(t, Knobs{})
	m := c.NewMutator(4)
	defer m.Close()
	ref := m.AllocWordArray((5 << 20) / 8)
	m.StoreField(ref, 12345, 77)
	m.SetRoot(0, ref)
	m.RequestGC()
	got := m.LoadRoot(0)
	if m.LoadField(got, 12345) != 77 {
		t.Fatal("live large object corrupted")
	}
	// Large objects are never relocated.
	if got.Addr() != ref.Addr() {
		t.Fatal("large object must not move")
	}
}

func TestSparsePageEvacuatedDataIntact(t *testing.T) {
	// Allocate many nodes, keep every 16th: pages become sparse, get
	// selected for evacuation, and survivors must remap correctly.
	c, types := testEnv(t, Knobs{})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	const keep = 4096
	arr := m.AllocRefArray(keep)
	m.SetRoot(0, arr)
	for i := 0; i < keep; i++ {
		for j := 0; j < 15; j++ {
			m.Alloc(node) // garbage filler
		}
		obj := m.Alloc(node)
		m.StoreField(obj, 1, uint64(i))
		m.StoreRef(m.LoadRoot(0), i, obj)
	}
	oldAddrs := make([]uint64, keep)
	a := m.LoadRoot(0)
	for i := 0; i < keep; i++ {
		oldAddrs[i] = m.LoadRef(a, i).Addr()
	}
	m.RequestGC()
	// Force the relocation era to finish: run a second cycle, whose start
	// waits for the drain.
	m.RequestGC()
	a = m.LoadRoot(0)
	moved := 0
	for i := 0; i < keep; i++ {
		obj := m.LoadRef(a, i)
		if got := m.LoadField(obj, 1); got != uint64(i) {
			t.Fatalf("survivor %d payload = %d", i, got)
		}
		if obj.Addr() != oldAddrs[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("sparse pages should have been evacuated (some survivors must move)")
	}
}

func TestStoreStaleRefPanics(t *testing.T) {
	// The store barrier guard catches refs whose color disagrees with the
	// good color (e.g. a mark-colored ref held across STW3). Same-color
	// staleness across a full cycle is excluded by the API contract, as in
	// real ZGC where stack scanning fixes such refs.
	c, types := testEnv(t, Knobs{})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	a := m.Alloc(node)
	stale := a.Recolor(heap.ColorMarked0) // good is R initially
	defer func() {
		if recover() == nil {
			t.Fatal("storing a wrong-colored reference must panic")
		}
	}()
	m.StoreRef(a, 0, stale)
}

func TestAllocationStallTriggersGC(t *testing.T) {
	mem := simmem.MustNewHierarchy(simmem.DefaultConfig())
	h := heap.New(heap.Config{MaxBytes: 16 << 20}, mem)
	types := objmodel.NewRegistry()
	c := MustNew(h, types, Config{})
	m := c.NewMutator(4)
	defer m.Close()
	// Allocate 64MB of garbage through a 16MB heap: must stall and recover.
	for i := 0; i < 16384; i++ {
		m.AllocWordArray(511)
	}
	if m.Stalls == 0 {
		t.Fatal("expected allocation stalls")
	}
	if c.Cycles() == 0 {
		t.Fatal("stalls must trigger GC cycles")
	}
}

func TestHeapUsageTracked(t *testing.T) {
	c, _ := testEnv(t, Knobs{})
	m := c.NewMutator(4)
	defer m.Close()
	m.AllocWordArray(100)
	if c.Heap().UsedPercent() <= 0 {
		t.Fatal("heap usage should be positive after allocation")
	}
}

package core

import (
	"errors"
	"fmt"
	"time"
)

// ErrOutOfMemory is the sentinel for allocation failure after the stall
// budget is exhausted; match with errors.Is. The concrete error in the
// chain is an *OutOfMemoryError carrying the occupancy snapshot.
var ErrOutOfMemory = errors.New("core: out of memory")

// OutOfMemoryError reports an allocation that stalled through its full
// retry budget without the GC reclaiming enough space. It replaces the old
// panic("core: out of memory") so heap exhaustion degrades gracefully:
// callers unwind with errors.Is(err, ErrOutOfMemory) and decide policy
// themselves. It also unwraps to the final commit failure (heap.ErrHeapFull
// with occupancy context), so errors.Is works against both sentinels.
type OutOfMemoryError struct {
	// Size is the requested allocation in bytes.
	Size uint64
	// Attempts is the number of allocation attempts made (stalls + 1).
	Attempts int
	// Stalled is the wall-clock time spent in the stall loop.
	Stalled time.Duration
	// UsedBytes/MaxBytes snapshot heap occupancy at the moment of failure.
	UsedBytes, MaxBytes uint64
	// Cause is the last commit failure observed.
	Cause error
}

func (e *OutOfMemoryError) Error() string {
	return fmt.Sprintf("core: out of memory: %d-byte allocation failed after %d attempts (%v stalled): heap %d/%d bytes (%.1f%%)",
		e.Size, e.Attempts, e.Stalled.Round(time.Millisecond), e.UsedBytes, e.MaxBytes,
		100*float64(e.UsedBytes)/float64(e.MaxBytes))
}

// Unwrap exposes both the ErrOutOfMemory sentinel and the underlying
// commit failure to errors.Is/As.
func (e *OutOfMemoryError) Unwrap() []error {
	if e.Cause == nil {
		return []error{ErrOutOfMemory}
	}
	return []error{ErrOutOfMemory, e.Cause}
}

// ErrDeadlineExceeded is the sentinel for an allocation abandoned because
// the caller-supplied per-request budget (virtual-cycle deadline or stall
// bound, see Mutator.SetAllocBudget) ran out; match with errors.Is. The
// concrete error in the chain is a *DeadlineExceededError. Unlike
// ErrOutOfMemory this is not a heap-exhaustion verdict: it means the
// request chose to fail fast instead of taking a seat in a stall convoy.
var ErrDeadlineExceeded = errors.New("core: allocation deadline exceeded")

// DeadlineExceededError reports an allocation aborted by the per-request
// budget armed via Mutator.SetAllocBudget. It fires either before the
// first heap touch (the pre-flight check in allocWords) or between stall
// iterations, so an expired request never performs another heap
// allocation after the decision point.
type DeadlineExceededError struct {
	// Size is the requested allocation in bytes.
	Size uint64
	// DeadlineV is the absolute virtual-cycle deadline that was armed.
	DeadlineV uint64
	// NowV is the mutator's virtual-cycle clock when the budget check
	// fired.
	NowV uint64
	// Stalls is the number of allocation stalls this budget absorbed
	// before giving up (0 when the pre-flight check fired).
	Stalls int
	// Forced marks a fault-injector-forced expiry (chaos/testing).
	Forced bool
}

func (e *DeadlineExceededError) Error() string {
	if e.Forced {
		return fmt.Sprintf("core: allocation deadline exceeded (injector-forced): %d-byte allocation, %d stalls", e.Size, e.Stalls)
	}
	return fmt.Sprintf("core: allocation deadline exceeded: %d-byte allocation at vcycle %d past deadline %d (%d stalls)",
		e.Size, e.NowV, e.DeadlineV, e.Stalls)
}

// Unwrap exposes the ErrDeadlineExceeded sentinel to errors.Is.
func (e *DeadlineExceededError) Unwrap() error { return ErrDeadlineExceeded }

package core

import (
	"sync/atomic"

	"hcsgc/internal/heap"
	"hcsgc/internal/objmodel"
	"hcsgc/internal/simmem"
)

// gcWorker is one parallel GC thread. It participates in concurrent
// marking (with work stealing through the shared markPool) and in the
// relocation drain. Its memory traffic is charged to its own simmem core,
// so GC activity shows up in the process-wide load counters exactly as it
// does under perf in the paper.
type gcWorker struct {
	c    *Collector
	id   int
	core *simmem.Core
	ctx  *relocCtx
	// local is the thread-local gray stack.
	local []uint64
	// scanned/steals are cumulative balance counters for the contention
	// plane (relocations are counted on ctx). Atomic: the plane snapshots
	// them at cycle boundaries while lazy-mode drains may still run.
	scanned atomic.Uint64
	steals  atomic.Uint64
}

// spillThreshold bounds the local gray stack before spilling half to the
// shared pool for other workers to steal.
const spillThreshold = 1024

// markChunk is the flush unit for gray objects.
const markChunk = 256

func newGCWorker(c *Collector, id int) *gcWorker {
	w := &gcWorker{c: c, id: id}
	if c.heap.Mem() != nil {
		w.core = c.heap.Mem().NewCore()
	}
	w.ctx = &relocCtx{c: c, core: w.core, byMutator: false}
	return w
}

// markLoop drains gray objects until the collector terminates marking.
func (w *gcWorker) markLoop() {
	for {
		chunk := w.c.pool.get()
		if chunk == nil {
			return
		}
		w.steals.Add(1)
		w.local = append(w.local, chunk...)
		for len(w.local) > 0 {
			addr := w.local[len(w.local)-1]
			w.local = w.local[:len(w.local)-1]
			w.scanObject(addr)
			if len(w.local) >= spillThreshold {
				half := len(w.local) / 2
				spill := make([]uint64, half)
				copy(spill, w.local[:half])
				copy(w.local, w.local[half:])
				w.local = w.local[:len(w.local)-half]
				w.c.pool.put(spill)
			}
		}
	}
}

// scanObject traces one object's reference fields, remapping and healing
// stale slots and pushing newly marked objects.
//
//hcsgc:gc-thread
func (w *gcWorker) scanObject(addr uint64) {
	w.scanned.Add(1)
	c := w.c
	header := c.heap.LoadWord(w.core, addr)
	sizeWords, typeID := objmodel.DecodeHeader(header)
	typ := c.types.Lookup(typeID)
	objmodel.RefFieldIndices(typ, sizeWords, func(field int) {
		slot := objmodel.FieldAddr(addr, field)
		raw := heap.Ref(c.heap.LoadWord(w.core, slot))
		if raw.IsNull() || raw.Color() == c.Good() {
			return
		}
		newAddr, wasR := c.remapStale(w.core, raw)
		pushed, cost := c.markObject(w.core, newAddr, wasR)
		w.ctx.extra.Add(cost)
		if pushed {
			w.local = append(w.local, newAddr)
		}
		healed := heap.MakeRef(newAddr, c.Good())
		c.heap.CASWord(w.core, slot, uint64(raw), uint64(healed))
	})
}

// remapStale resolves a stale reference to the object's current address
// during the mark era, consulting the previous era's forwarding tables.
// It also reports whether the reference carried the R color, which means a
// mutator touched it during the previous relocation era — the GC-side
// hotness signal of §3.1.2.
func (c *Collector) remapStale(core *simmem.Core, raw heap.Ref) (addr uint64, wasR bool) {
	addr = raw.Addr()
	wasR = raw.HasColor(heap.ColorRemapped)
	p := c.heap.PageOf(addr)
	if p == nil {
		panic("core: stale ref to unmapped address " + raw.String())
	}
	if p.Forwarding() != nil {
		addr = c.remapForward(addr, p)
	}
	return addr, wasR
}

// markObject marks the object at addr live (and possibly hot), returning
// whether the caller should push it gray, plus the bookkeeping cost to
// charge to the caller's cycle ledger. Objects on pages allocated after
// STW1 are implicitly live and never pushed: any reference to them was
// created during this era and already carries the good color, as do all
// references reachable from them.
//
// Shared machinery: GC workers reach it from scanObject, mutators from
// the barrier slow path (mark-assist), hence both annotations. Alloc-free:
// this runs once per marked reference, from every worker and every
// assisting mutator, so a Go allocation here multiplies across the whole
// mark phase.
//
//hcsgc:gc-thread
//hcsgc:barrier-impl
//hcsgc:alloc-free
func (c *Collector) markObject(core *simmem.Core, addr uint64, hot bool) (pushed bool, cost uint64) {
	p := c.heap.PageOf(addr)
	if p == nil {
		panic("core: marking unmapped address")
	}
	if p.Seq > c.startSeq.Load() {
		return false, 0
	}
	header := c.heap.LoadWord(core, addr)
	size := objmodel.SizeBytes(header)
	won := p.MarkLive(addr, size)
	if hot && c.cfg.Knobs.Hotness && hotTrackable(p) {
		if p.MarkHot(addr, size) {
			cost = c.cfg.Costs.HotmapCAS
		}
	}
	return won, cost
}

// hotTrackable reports whether hotness is recorded for objects on p.
// Per §3.4 the paper tracks hotness only for small pages (and this
// reproduction's optional tiny pages).
func hotTrackable(p *heap.Page) bool {
	return p.Class() == heap.ClassSmall || p.Class() == heap.ClassTiny
}

package core

import (
	"hcsgc/internal/contention"
	"hcsgc/internal/signals"
	"hcsgc/internal/telemetry/latency"
)

// The collector's signal-plane wiring: one hook at the cycle boundary
// that folds the completed latency flight record, the locality profiler's
// freshly drained interval, and the heap/allocation/relocation deltas
// into one signals.CycleSignals record. One predictable branch when no
// plane is attached (c.sig == nil); the priced difference is
// BenchmarkSignalsOverhead.

// allocBytesTotal sums the attached mutators' allocation ledgers plus the
// closed-mutator fold.
func (c *Collector) allocBytesTotal() uint64 {
	c.mutMu.Lock()
	total := c.allocBytesClosed
	for m := range c.muts {
		total += m.allocBytes.Load()
	}
	c.mutMu.Unlock()
	return total
}

// recordSignals assembles and publishes the cycle's unified signal
// record. Runs under cycleMu, after Locality.OnCycle has drained the
// profiler's per-cycle interval and after the latency tracker completed
// the flight record.
func (c *Collector) recordSignals(cs *CycleStats, flight latency.CycleRecord) {
	// The contention plane ingests the cycle regardless of whether the
	// signal plane consumes the delta: /contention and the metric
	// families stay live even with signals opted out.
	var ctnDelta contention.CycleDelta
	if c.ctn != nil {
		ctnDelta = c.ctn.OnCycle(cs.Seq, c.workerTotals())
	}
	if c.sig == nil {
		return
	}

	allocTotal := c.allocBytesTotal()
	relocObjects := c.stats.mutatorRelocObjects.Load() + c.stats.gcRelocObjects.Load()
	relocBytes := c.stats.mutatorRelocBytes.Load() + c.stats.gcRelocBytes.Load()
	hs := signals.HeapSignals{
		UsedBeforePct:    cs.HeapUsedBefore,
		UsedAfterPct:     cs.HeapUsedAfter,
		AllocBytes:       allocTotal - c.lastAllocBytes,
		MarkedBytes:      cs.MarkedBytes,
		ECSmall:          cs.ECSmall,
		ECMedium:         cs.ECMedium,
		ECSmallLiveBytes: cs.ECSmallLiveBytes,
		PagesFreedEmpty:  cs.PagesFreedEmpty,
		RelocObjects:     relocObjects - c.lastRelocObjects,
		RelocBytes:       relocBytes - c.lastRelocBytes,
		ColdFrac:         -1,
	}
	if span := flight.VEnd - flight.VStart; span > 0 {
		hs.AllocPerKCycle = float64(hs.AllocBytes) / float64(span) * 1000
	}
	if cs.HotmapDensity >= 0 {
		hs.ColdFrac = 1 - cs.HotmapDensity
	}
	c.lastAllocBytes = allocTotal
	c.lastRelocObjects = relocObjects
	c.lastRelocBytes = relocBytes

	var ls signals.LocalitySignals
	if cr, ok := c.cfg.Locality.LastCycle(); ok {
		ls = signals.LocalitySignals{
			Present:           true,
			ReuseP50:          cr.Interval.ReuseP50,
			ReuseP90:          cr.Interval.ReuseP90,
			StreamCoverage:    cr.Interval.StreamCoverage,
			SeqStreamCoverage: cr.Interval.SeqStreamCoverage,
			PageEntropyBits:   cr.Interval.PageEntropyBits,
			SegPurity:         cr.Interval.SegPurity,
		}
	}

	var ws signals.WorkerSignals
	var cns signals.ContentionSignals
	if c.ctn != nil {
		ws = signals.WorkerSignals{
			Present:   true,
			Workers:   ctnDelta.Workers,
			Imbalance: ctnDelta.Imbalance,
			Scanned:   ctnDelta.Scanned,
			Relocated: ctnDelta.Relocated,
			Steals:    ctnDelta.Steals,
		}
		cns = signals.ContentionSignals{
			Present:       true,
			Acquisitions:  ctnDelta.Acquisitions,
			Contended:     ctnDelta.Contended,
			ContendedFrac: ctnDelta.ContendedFrac,
			CASOps:        ctnDelta.CASOps,
			CASRetries:    ctnDelta.CASRetries,
			RetryFrac:     ctnDelta.RetryFrac,
		}
	}

	c.sig.OnCycle(signals.CycleSignals{
		Seq:        cs.Seq,
		Trigger:    cs.Trigger,
		VStart:     flight.VStart,
		VEnd:       flight.VEnd,
		Flight:     flight,
		Heap:       hs,
		Locality:   ls,
		Workers:    ws,
		Contention: cns,
		StallDist:  c.lat.StallDist(),
	})
}

// workerTotals snapshots every GC worker's cumulative balance counters
// for the contention plane.
func (c *Collector) workerTotals() []contention.WorkerTotals {
	totals := make([]contention.WorkerTotals, len(c.workers))
	for i, w := range c.workers {
		totals[i] = contention.WorkerTotals{
			Scanned:   w.scanned.Load(),
			Relocated: w.ctx.relocated.Load(),
			Steals:    w.steals.Load(),
		}
		if w.core != nil {
			totals[i].BusyCycles = w.core.Cycles()
		}
	}
	return totals
}

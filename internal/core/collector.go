package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"hcsgc/internal/contention"
	"hcsgc/internal/faultinject"
	"hcsgc/internal/heap"
	"hcsgc/internal/objmodel"
	"hcsgc/internal/signals"
	"hcsgc/internal/simmem"
	"hcsgc/internal/telemetry"
	"hcsgc/internal/telemetry/latency"
)

// Phase is the collector's era between pauses. The good color and phase
// only change inside stop-the-world pauses, so mutators observe both as
// stable between their safepoints.
type Phase uint32

// The phases. There is no separate idle phase: before the first cycle the
// collector is in PhaseRelocate with an empty evacuation set and good
// color R, which makes the first STW1 flip behave like every later one.
const (
	// PhaseMark spans STW1 to STW3: marking plus EC selection. The good
	// color is M0 or M1.
	PhaseMark Phase = iota
	// PhaseRelocate spans STW3 to the next STW1. The good color is R.
	PhaseRelocate
)

// Collector is the HCSGC collector instance for one heap.
type Collector struct {
	heap  *heap.Heap
	types *objmodel.Registry
	cfg   Config

	sp    *safepoints
	good  atomic.Uint64 // current good color (heap.Color bits)
	phase atomic.Uint32
	// markColorM1 alternates the mark color between cycles (Fig. 2).
	markColorM1 bool
	// startSeq is the page sequence snapshot taken at STW1; pages with
	// Seq <= startSeq are "allocated prior to STW1" and subject to
	// livemap accounting and EC selection.
	startSeq atomic.Uint64

	pool      *markPool
	workers   []*gcWorker
	pauseCtx  *relocCtx // relocation context for STW3 root relocation
	pauseCore *simmem.Core
	// pauseExtra is the non-memory cost ledger for STW work; only the
	// collector touches it, and only inside pauses.
	pauseExtra uint64

	// mutMu guards the attached-mutator set; taken inside cycleMu when a
	// cycle walks the mutators.
	//
	//hcsgc:lock-order 20
	mutMu contention.Mutex
	muts  map[*Mutator]struct{}
	// allocBytesClosed folds closed mutators' allocation ledgers so the
	// signal plane's alloc-rate delta survives mutator churn. Under mutMu.
	allocBytesClosed uint64

	// Shared medium-page allocation (mutators and relocation); leaf-side
	// of the collector's locks, never held while taking mutMu or cycleMu.
	//
	//hcsgc:lock-order 30
	medMu   contention.Mutex
	medPage *heap.Page

	// ecPages is the current relocation set; ecCursor is the worker claim
	// index during the drain.
	ecPages  []*heap.Page
	ecCursor atomic.Int64
	// relocWG tracks an in-flight non-lazy GC drain.
	relocWG sync.WaitGroup
	// pendingDrop holds evacuated pages whose forwarding tables are
	// dropped at the end of the next mark, as in ZGC.
	pendingDrop []*heap.Page

	// cycleMu serializes GC cycles ("no overlapping ZGC cycles"). It is
	// the outermost collector lock: a cycle holds it across STW pauses,
	// which take mutMu and medMu underneath.
	//
	//hcsgc:lock-order 10
	cycleMu contention.Mutex
	cycles  atomic.Uint64

	// ctn is the contention attribution plane (nil when opted out).
	ctn *contention.Plane

	stats statsLog
	tm    colTelemetry
	lat   *latency.Tracker
	sig   *signals.Plane
	// Signal-plane per-cycle delta watermarks (touched under cycleMu).
	lastAllocBytes   uint64
	lastRelocObjects uint64
	lastRelocBytes   uint64
	// watchdogFired counts STW watchdog reports (the pause kept waiting).
	watchdogFired atomic.Uint64
	// vclock is the virtual-timeline high-water mark in simulated cycles:
	// the max attached-mutator ledger plus accumulated pause cost. Only
	// maintained when lat is attached.
	vclock     atomic.Uint64
	pauseTotal atomic.Uint64
	// stallCount counts allocation stalls runtime-wide; lastStalls /
	// lastVerifyTotal are per-cycle watermarks (touched under cycleMu).
	stallCount      atomic.Uint64
	lastStalls      uint64
	lastVerifyTotal uint64
	inj             *faultinject.Injector
	relocSample     atomic.Uint64 // sampling cursor for trace reloc_win instants
	effConf         atomic.Uint64 // effective ColdConfidence (bits of float64), for AutoTune
	lastTuneMiss    float64

	// headroomBytes is the emergency allocation headroom reserved by the
	// overload controller: the background driver triggers a cycle as if
	// this many extra bytes were already allocated, so the collector never
	// enters a cycle with zero slack. emergency is a one-shot request for
	// an immediate driver-run cycle (reason "emergency"). Both are posted
	// from serving threads and consumed by the driver goroutine.
	headroomBytes atomic.Uint64
	emergency     atomic.Bool

	driverStop chan struct{}
	driverDone chan struct{}
}

// New creates a collector for the given heap and type registry.
func New(h *heap.Heap, types *objmodel.Registry, cfg Config) (*Collector, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Knobs.Validate(); err != nil {
		return nil, err
	}
	c := &Collector{
		heap:  h,
		types: types,
		cfg:   cfg,
		sp:    newSafepoints(),
		pool:  newMarkPool(),
		muts:  make(map[*Mutator]struct{}),
	}
	c.tm = newColTelemetry(cfg.Telemetry)
	c.lat = cfg.Latency
	c.sig = cfg.Signals
	c.inj = cfg.FaultInjector
	c.ctn = cfg.Contention
	c.cycleMu.Instrument(c.ctn.NewSite("core.cycleMu"))
	c.mutMu.Instrument(c.ctn.NewSite("core.mutMu"))
	c.medMu.Instrument(c.ctn.NewSite("core.medMu"))
	c.pool.ops = c.ctn.NewOpSite("core.markPool")
	c.good.Store(uint64(heap.ColorRemapped))
	c.phase.Store(uint32(PhaseRelocate))
	c.setEffConf(cfg.Knobs.ColdConfidence)
	for i := 0; i < cfg.GCWorkers; i++ {
		c.workers = append(c.workers, newGCWorker(c, i))
	}
	if h.Mem() != nil {
		c.pauseCore = h.Mem().NewCore()
	}
	c.pauseCtx = &relocCtx{c: c, core: c.pauseCore, byMutator: false}
	return c, nil
}

// MustNew is New but panics on configuration error.
func MustNew(h *heap.Heap, types *objmodel.Registry, cfg Config) *Collector {
	c, err := New(h, types, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Heap returns the managed heap.
func (c *Collector) Heap() *heap.Heap { return c.heap }

// Types returns the type registry.
func (c *Collector) Types() *objmodel.Registry { return c.types }

// Config returns the effective configuration.
func (c *Collector) Config() Config { return c.cfg }

// Good returns the current good color.
func (c *Collector) Good() heap.Color { return heap.Color(c.good.Load()) }

// CurrentPhase returns the collector's phase.
func (c *Collector) CurrentPhase() Phase { return Phase(c.phase.Load()) }

// Cycles returns the number of completed GC cycles.
func (c *Collector) Cycles() uint64 { return c.cycles.Load() }

// Collect runs one full GC cycle synchronously. It serializes with other
// cycles; calling it concurrently is allowed (the loser simply runs the
// next cycle after the winner finishes).
func (c *Collector) Collect(reason string) {
	c.cycleMu.Lock()
	defer c.cycleMu.Unlock()
	c.runCycle(reason)
}

// collectIfDue runs a cycle only if no cycle completed since prev,
// coalescing concurrent triggers (used by allocation stalls).
func (c *Collector) collectIfDue(prev uint64, reason string) {
	c.cycleMu.Lock()
	defer c.cycleMu.Unlock()
	if c.cycles.Load() != prev {
		return
	}
	c.runCycle(reason)
}

// runCycle executes one HCSGC cycle. Caller holds cycleMu.
//
// ZGC order:   STW1, M/R, STW2, EC, STW3, RE
// HCSGC lazy:  RE (leftover from previous cycle), STW1, M/R, STW2, EC, STW3
func (c *Collector) runCycle(reason string) {
	cs := &CycleStats{Seq: c.cycles.Load() + 1, Trigger: reason,
		HeapUsedBefore: c.heap.UsedPercent(), HotmapDensity: -1}
	c.tm.rec.BeginSpan(telemetry.SpanCycle, collectorTID)
	var vCycleStart uint64
	if c.lat != nil || c.sig != nil {
		vCycleStart = c.virtualNow()
	}

	// --- RE completion. In lazy mode the GC-thread share of relocation
	// was deferred to now (paper Fig. 3: "a GC cycle starts with RE");
	// otherwise just wait out any drain still running from last cycle.
	if c.cfg.Knobs.LazyRelocate {
		c.drainRelocation(cs)
	}
	c.relocWG.Wait()
	c.finishRelocationEra()

	// --- STW1: flip to the mark color, snapshot the page set, reset
	// live/hot maps, scan roots.
	c.stopTheWorldTimed(telemetry.SpanPause1)
	c.tm.rec.BeginSpan(telemetry.SpanPause1, collectorTID)
	pause1 := c.beginPauseAccounting()
	v1 := c.pauseStartClock()
	c.startSeq.Store(c.heap.CurrentSeq())
	markColor := heap.ColorMarked0
	if c.markColorM1 {
		markColor = heap.ColorMarked1
	}
	c.markColorM1 = !c.markColorM1
	c.good.Store(uint64(markColor))
	c.phase.Store(uint32(PhaseMark))
	c.retireAllocationPages()
	c.heap.LivePages(func(p *heap.Page) {
		if p.Seq <= c.startSeq.Load() {
			p.ResetMarks()
		}
	})
	var rootGrays []uint64
	c.forEachMutator(func(m *Mutator) {
		for i := range m.roots {
			rootGrays = c.processRootMark(m, i, rootGrays)
		}
	})
	c.pool.setActive(len(c.workers))
	c.pool.put(rootGrays)
	cs.Pause1 = c.endPauseAccounting(pause1)
	c.recordPauseLatency(0, v1, cs.Pause1)
	c.verifyHeap("stw1")
	c.tm.rec.EndSpan(telemetry.SpanPause1, collectorTID)
	c.sp.resumeTheWorld()

	// --- M/R: concurrent parallel marking with mutator assistance.
	var vMark uint64
	if c.lat != nil {
		vMark = c.virtualNow()
	}
	c.tm.rec.BeginSpan(telemetry.SpanMark, collectorTID)
	var markWG sync.WaitGroup
	for _, w := range c.workers {
		markWG.Add(1)
		go func(w *gcWorker) {
			defer markWG.Done()
			w.markLoop()
		}(w)
	}

	// --- STW2: attempt mark termination until the wavefront is clean.
	for {
		c.pool.waitQuiescent()
		c.stopTheWorldTimed(telemetry.SpanPause2)
		flushed := false
		c.forEachMutator(func(m *Mutator) {
			if len(m.markBuf) > 0 {
				c.pool.put(m.markBuf)
				m.markBuf = nil
				flushed = true
			}
		})
		if !flushed && c.pool.quiescent() {
			break // world remains stopped: this is STW2
		}
		c.sp.resumeTheWorld()
	}
	c.tm.rec.EndSpan(telemetry.SpanMark, collectorTID)
	if c.lat != nil {
		c.lat.RecordPhase(latency.PhaseMark, vMark, c.virtualNow())
	}
	c.tm.rec.BeginSpan(telemetry.SpanPause2, collectorTID)
	pause2 := c.beginPauseAccounting()
	v2 := c.pauseStartClock()
	c.pool.terminate()
	markWG.Wait()
	// Mark end: no stale pointers remain in the heap, so the previous
	// era's forwarding tables can be dropped and their backing recycled.
	for _, p := range c.pendingDrop {
		c.heap.DropPage(p)
	}
	c.pendingDrop = nil
	cs.Pause2 = c.endPauseAccounting(pause2)
	c.recordPauseLatency(1, v2, cs.Pause2)
	cs.MarkedBytes = c.totalMarkedBytes()
	c.recordMarkEnd(cs)
	c.recordSegregation(cs)
	c.verifyHeap("stw2")
	c.tm.rec.EndSpan(telemetry.SpanPause2, collectorTID)
	c.sp.resumeTheWorld()

	// --- EC selection (concurrent with mutators).
	var vEC uint64
	if c.lat != nil {
		vEC = c.virtualNow()
	}
	c.tm.rec.BeginSpan(telemetry.SpanECSelect, collectorTID)
	c.selectEvacuationCandidates(cs)
	c.tm.rec.EndSpan(telemetry.SpanECSelect, collectorTID)
	if c.lat != nil {
		c.lat.RecordPhase(latency.PhaseECSelect, vEC, c.virtualNow())
	}

	// --- STW3: flip to R, relocate/heal all roots.
	c.stopTheWorldTimed(telemetry.SpanPause3)
	c.tm.rec.BeginSpan(telemetry.SpanPause3, collectorTID)
	pause3 := c.beginPauseAccounting()
	v3 := c.pauseStartClock()
	c.good.Store(uint64(heap.ColorRemapped))
	c.phase.Store(uint32(PhaseRelocate))
	c.forEachMutator(func(m *Mutator) {
		for i := range m.roots {
			c.processRootRelocate(m, i)
		}
	})
	cs.Pause3 = c.endPauseAccounting(pause3)
	c.recordPauseLatency(2, v3, cs.Pause3)
	c.verifyHeap("stw3")
	c.tm.rec.EndSpan(telemetry.SpanPause3, collectorTID)
	c.sp.resumeTheWorld()

	// --- RE: in the original ZGC schedule, GC threads race mutators for
	// relocation right away; with LAZYRELOCATE they stand down until the
	// next cycle starts.
	if !c.cfg.Knobs.LazyRelocate && len(c.ecPages) > 0 {
		c.ecCursor.Store(0)
		for _, w := range c.workers {
			c.relocWG.Add(1)
			go func(w *gcWorker) {
				defer c.relocWG.Done()
				w.drainLoop(cs)
			}(w)
		}
	}

	cs.HeapUsedAfter = c.heap.UsedPercent()
	c.cycles.Add(1)
	c.stats.append(cs)
	c.recordCycleEnd(cs)
	flight := c.recordLatencyCycle(cs, vCycleStart)
	c.cfg.Locality.OnCycle(cs.Seq, cs.SegregationPurity)
	// The signal plane snapshots after Locality.OnCycle so the profiler's
	// freshly drained per-cycle interval is what the record carries.
	c.recordSignals(cs, flight)
	c.tm.rec.EndSpan(telemetry.SpanCycle, collectorTID)
	if c.cfg.Knobs.AutoTune {
		c.autoTune()
	}
}

// finishRelocationEra moves the fully drained evacuation set into
// pendingDrop, to be dropped at the coming mark end. The GC drain has
// relocated-or-observed every live object by now, but a mutator that won a
// forwarding race may still be between its CAS and its remaining-count
// decrement; wait out that window (it spans a few instructions of a
// running, never-parked barrier slow path).
func (c *Collector) finishRelocationEra() {
	for _, p := range c.ecPages {
		for spins := 0; p.Remaining() > 0; spins++ {
			if spins > 1_000_000 {
				panic(fmt.Sprintf("core: relocation era stuck with %d objects left on %v", p.Remaining(), p))
			}
			runtime.Gosched()
		}
		c.pendingDrop = append(c.pendingDrop, p)
	}
	c.ecPages = nil
}

// drainRelocation relocates every remaining live object in the current
// evacuation set using the GC workers (the lazy-mode cycle-start RE).
func (c *Collector) drainRelocation(cs *CycleStats) {
	if len(c.ecPages) == 0 {
		return
	}
	c.ecCursor.Store(0)
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *gcWorker) {
			defer wg.Done()
			w.drainLoop(cs)
		}(w)
	}
	wg.Wait()
}

// retireAllocationPages detaches every allocation target page (mutator
// TLABs, GC relocation targets, the shared medium page) so that pages
// allocated before STW1 are frozen: nothing allocates into them again and
// their livemaps are authoritative after marking.
//
//hcsgc:stw-only
func (c *Collector) retireAllocationPages() {
	c.inj.At(faultinject.PageRetire, 0)
	c.forEachMutator(func(m *Mutator) { m.tlab = nil })
	for _, w := range c.workers {
		w.ctx.hotPage, w.ctx.coldPage = nil, nil
	}
	c.pauseCtx.hotPage, c.pauseCtx.coldPage = nil, nil
	c.medMu.Lock()
	c.medPage = nil
	c.medMu.Unlock()
}

// forEachMutator snapshots the mutator set and applies fn.
func (c *Collector) forEachMutator(fn func(*Mutator)) {
	c.mutMu.Lock()
	ms := make([]*Mutator, 0, len(c.muts))
	for m := range c.muts {
		ms = append(ms, m)
	}
	c.mutMu.Unlock()
	for _, m := range ms {
		fn(m)
	}
}

// totalMarkedBytes sums live bytes over pages subject to this mark.
func (c *Collector) totalMarkedBytes() uint64 {
	var total uint64
	c.heap.LivePages(func(p *heap.Page) {
		if p.Seq <= c.startSeq.Load() {
			total += p.LiveBytes()
		}
	})
	return total
}

// --- pause accounting -------------------------------------------------

// beginPauseAccounting snapshots the pause core's cycle counter plus the
// explicit pause cost ledger.
//
//hcsgc:stw-only
func (c *Collector) beginPauseAccounting() uint64 {
	var base uint64
	if c.pauseCore != nil {
		base = c.pauseCore.Cycles()
	}
	return base + c.pauseExtra
}

// endPauseAccounting returns the simulated cycles spent since base.
//
//hcsgc:stw-only
func (c *Collector) endPauseAccounting(base uint64) uint64 {
	var cur uint64
	if c.pauseCore != nil {
		cur = c.pauseCore.Cycles()
	}
	return cur + c.pauseExtra - base
}

// selectEvacuationCandidates implements §3.1: baseline live-ratio
// selection, RELOCATEALLSMALLPAGES, and weighted-live-bytes selection with
// COLDCONFIDENCE. Empty pages (and dead large pages) are reclaimed
// immediately, as in ZGC.
func (c *Collector) selectEvacuationCandidates(cs *CycleStats) {
	startSeq := c.startSeq.Load()
	knobs := c.cfg.Knobs
	conf := 0.0
	if knobs.Hotness {
		conf = c.effectiveConf()
	}
	type cand struct {
		p   *heap.Page
		wlb uint64
	}
	var cands []cand
	c.heap.LivePages(func(p *heap.Page) {
		if p.Seq > startSeq || p.Freed() {
			return
		}
		switch p.Class() {
		case heap.ClassLarge:
			// A large page holds one object: live or dead, decided here.
			if p.LiveBytes() == 0 {
				c.heap.FreePage(p)
				c.heap.DropPage(p)
				cs.PagesFreedEmpty++
			}
		case heap.ClassMedium:
			// Medium pages use the original ZGC criterion (paper §3.4:
			// hotness and the new knobs apply to small pages only).
			if p.LiveObjects() == 0 {
				c.heap.FreePage(p)
				c.heap.DropPage(p)
				cs.PagesFreedEmpty++
			} else if p.LiveRatio() < c.cfg.EvacThreshold {
				cands = append(cands, cand{p, p.LiveBytes()})
			}
		case heap.ClassSmall, heap.ClassTiny:
			if p.LiveObjects() == 0 {
				c.heap.FreePage(p)
				c.heap.DropPage(p)
				cs.PagesFreedEmpty++
				return
			}
			if knobs.RelocateAllSmallPages {
				cands = append(cands, cand{p, p.WeightedLiveBytes(conf)})
				return
			}
			wlb := p.WeightedLiveBytes(conf)
			if float64(wlb)/float64(p.Size()) < c.cfg.EvacThreshold {
				cands = append(cands, cand{p, wlb})
			}
		}
	})
	// Sort ascending by weighted live bytes and select. The paper's
	// N-maximisation constraint admits every page below the threshold once
	// candidates are individually below it (see DESIGN.md), so selection
	// takes all candidates, cheapest first.
	sort.Slice(cands, func(i, j int) bool { return cands[i].wlb < cands[j].wlb })
	c.ecPages = c.ecPages[:0]
	for _, cd := range cands {
		cd.p.SelectForEvacuation()
		c.ecPages = append(c.ecPages, cd.p)
		c.tm.rec.Record(telemetry.EvPageECSelect, uint32(cd.p.Class()), cd.p.Start(), cd.p.LiveBytes())
		switch cd.p.Class() {
		case heap.ClassMedium:
			cs.ECMedium++
		default:
			cs.ECSmall++
			cs.ECSmallLiveBytes += cd.p.LiveBytes()
		}
	}
}

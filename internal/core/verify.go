package core

import (
	"fmt"

	"hcsgc/internal/heap"
	"hcsgc/internal/objmodel"
)

// verifyHeap drives the opt-in STW heap verifier at a phase boundary. The
// world is stopped and page alloc/free is quiescent here, so the walks can
// read headers, bitmaps and forwarding tables without synchronization. A
// detached verifier costs one branch.
//
// What runs where:
//   - every boundary: page-byte accounting (Σ live page sizes == usedBytes)
//   - end of STW2:    marked-object walk — ref colors, ref targets live,
//     object bounds, hotmap ⊆ livemap (marking just terminated, so the
//     livemaps are authoritative and every reachable slot must be healed)
//   - end of STW3:    forwarding tables of the new evacuation set point
//     into live destination pages
//
// The walks deliberately read through heap.LoadWord with a nil core:
// verification must not perturb the cache model it is checking.
//
//hcsgc:gc-thread
//hcsgc:stw-only
func (c *Collector) verifyHeap(phase string) {
	v := c.heap.Verifier()
	if v == nil {
		return
	}
	v.BeginRun()
	c.heap.VerifyAccounting(phase)
	switch phase {
	case "stw2":
		c.verifyMarkedObjects(v, phase)
	case "stw3":
		c.verifyForwarding(v, phase)
	}
}

// verifyMarkedObjects walks the livemap of every page subject to the mark
// that just terminated. Only livemap-marked objects are walked: pages also
// hold dead objects and — on relocation-target pages — discarded loser
// copies whose UndoAlloc could not rewind past a later allocation, and
// neither is reachable, so a contiguous header walk would false-positive.
//
//hcsgc:gc-thread
//hcsgc:stw-only
func (c *Collector) verifyMarkedObjects(v *heap.Verifier, phase string) {
	good := c.Good()
	startSeq := c.startSeq.Load()
	c.heap.LivePages(func(p *heap.Page) {
		if p.Seq > startSeq || p.Freed() {
			return
		}
		lm := p.Livemap()
		if lm == nil {
			return
		}
		if i := p.Hotmap().FirstNotIn(lm); i >= 0 {
			v.Report(heap.CheckHotmapSubset, phase, p.Start(), p.Start()+uint64(i)*heap.WordSize,
				"hot bit set on a word the mark did not record live")
		}
		start := p.Start()
		lm.ForEachSet(func(idx int) {
			c.verifyObject(v, phase, p, start+uint64(idx)*heap.WordSize, good, startSeq)
		})
	})
}

// verifyObject checks one marked object: a sane header that keeps the
// object inside its page, and every reference field healed to the good
// color and pointing at a live target.
//
//hcsgc:gc-thread
//hcsgc:stw-only
func (c *Collector) verifyObject(v *heap.Verifier, phase string, p *heap.Page, addr uint64, good heap.Color, startSeq uint64) {
	header := c.heap.LoadWord(nil, addr)
	sizeWords, typeID := objmodel.DecodeHeader(header)
	size := objmodel.SizeBytes(header)
	if size == 0 || addr+size > p.End() {
		v.Report(heap.CheckObjectBounds, phase, p.Start(), addr,
			fmt.Sprintf("header %#x implies %d bytes, page ends at %#x", header, size, p.End()))
		return
	}
	if int(typeID) >= c.types.NumTypes() {
		v.Report(heap.CheckObjectBounds, phase, p.Start(), addr,
			fmt.Sprintf("header %#x names unknown type %d", header, typeID))
		return
	}
	typ := c.types.Lookup(typeID)
	objmodel.RefFieldIndices(typ, sizeWords, func(field int) {
		slot := objmodel.FieldAddr(addr, field)
		raw := heap.Ref(c.heap.LoadWord(nil, slot))
		if raw.IsNull() {
			return
		}
		if raw.Color() != good {
			v.Report(heap.CheckStaleRef, phase, p.Start(), slot,
				fmt.Sprintf("marked object holds %v after mark end (good color is %v)", raw, good))
			return
		}
		tp := c.heap.PageOf(raw.Addr())
		switch {
		case tp == nil:
			v.Report(heap.CheckUnmarkedRef, phase, p.Start(), slot,
				fmt.Sprintf("ref %v points at unmapped address space", raw))
		case tp.Freed():
			v.Report(heap.CheckUnmarkedRef, phase, p.Start(), slot,
				fmt.Sprintf("ref %v points into freed page %#x", raw, tp.Start()))
		case tp.Seq <= startSeq && !tp.IsLive(raw.Addr()):
			// Pages allocated after STW1 are implicitly live (no livemap
			// discipline yet); older targets must carry a mark bit.
			v.Report(heap.CheckUnmarkedRef, phase, p.Start(), slot,
				fmt.Sprintf("ref %v target was not marked live", raw))
		}
	})
}

// verifyForwarding checks the evacuation set installed at this STW3: every
// forwarding entry published so far (STW3 root relocation has already run)
// must map into a live destination page, not back into an evacuating or
// freed one.
//
//hcsgc:gc-thread
//hcsgc:stw-only
func (c *Collector) verifyForwarding(v *heap.Verifier, phase string) {
	for _, p := range c.ecPages {
		fwd := p.Forwarding()
		if fwd == nil {
			v.Report(heap.CheckForwardDest, phase, p.Start(), 0,
				"evacuation candidate lost its forwarding table")
			continue
		}
		fwd.ForEach(func(off, dst uint64) {
			src := p.Start() + off*heap.WordSize
			if dst == 0 {
				v.Report(heap.CheckForwardDest, phase, p.Start(), src,
					"forwarding claim never published a destination")
				return
			}
			tp := c.heap.PageOf(dst)
			switch {
			case tp == nil:
				v.Report(heap.CheckForwardDest, phase, p.Start(), src,
					fmt.Sprintf("forwarded to unmapped address %#x", dst))
			case tp.Freed():
				v.Report(heap.CheckForwardDest, phase, p.Start(), src,
					fmt.Sprintf("forwarded into freed page %#x", tp.Start()))
			case tp == p:
				v.Report(heap.CheckForwardDest, phase, p.Start(), src,
					fmt.Sprintf("forwarded back into the evacuating page (%#x)", dst))
			}
		})
	}
}

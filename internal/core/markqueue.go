package core

import (
	"sync"

	"hcsgc/internal/contention"
)

// markPool is the shared gray-object pool for parallel marking. Workers
// keep thread-local stacks and spill/steal chunks here; mutators flush
// their thread-local mark buffers here (paper §2, footnote 2). The pool
// also provides the quiescence signal used to attempt mark termination at
// STW2.
type markPool struct {
	// mu stays a plain sync.Mutex (the condition variable binds to it);
	// the pool's serialization is attributed through the ops site
	// instead: one Op per transfer, one Retry per get that had to park.
	mu     sync.Mutex
	cond   *sync.Cond
	ops    *contention.OpSite
	chunks [][]uint64
	// active counts workers currently holding local work; waiting counts
	// workers parked in get.
	active int
	// terminated releases all waiting workers at mark end.
	terminated bool
}

func newMarkPool() *markPool {
	p := &markPool{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// put contributes a chunk of gray object addresses and wakes a worker.
func (p *markPool) put(chunk []uint64) {
	if len(chunk) == 0 {
		return
	}
	p.ops.Op()
	p.mu.Lock()
	p.chunks = append(p.chunks, chunk)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// get blocks until a chunk is available or marking terminates (nil).
// The caller transitions from active to waiting while blocked.
func (p *markPool) get() []uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.active--
	p.cond.Broadcast() // collector may be watching for quiescence
	if len(p.chunks) == 0 && !p.terminated {
		p.ops.Retry() // out of work: this get parks until a put or mark end
	}
	for len(p.chunks) == 0 && !p.terminated {
		p.cond.Wait()
	}
	if p.terminated && len(p.chunks) == 0 {
		return nil
	}
	chunk := p.chunks[len(p.chunks)-1]
	p.chunks = p.chunks[:len(p.chunks)-1]
	p.active++
	p.ops.Op()
	return chunk
}

// setActive registers n initially active workers.
func (p *markPool) setActive(n int) {
	p.mu.Lock()
	p.active = n
	p.terminated = false
	p.chunks = nil
	p.mu.Unlock()
}

// quiescent reports whether no worker holds work and the pool is empty,
// i.e. the only possible remaining gray objects sit in unflushed mutator
// buffers. Used by the collector to decide when to attempt STW2.
func (p *markPool) quiescent() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active == 0 && len(p.chunks) == 0
}

// waitQuiescent blocks until quiescent.
func (p *markPool) waitQuiescent() {
	p.mu.Lock()
	for !(p.active == 0 && len(p.chunks) == 0) {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// terminate releases all waiting workers; get returns nil from now on.
func (p *markPool) terminate() {
	p.mu.Lock()
	p.terminated = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

package core

import (
	"fmt"
	"io"
)

// WriteGCLog renders the collector's cycle history in the style of ZGC's
// -Xlog:gc output, one block per cycle. The paper's GC statistics
// ("extend ZGC's builtin logging support to print the number of small
// pages in EC per cycle", §4.2) come from exactly this log.
func (c *Collector) WriteGCLog(w io.Writer) {
	st := c.Stats()
	fmt.Fprintf(w, "[gc] collector: HCSGC (%s), %d workers, evac threshold %.0f%%\n",
		c.cfg.Knobs, c.cfg.GCWorkers, c.cfg.EvacThreshold*100)
	for _, cs := range st.Cycles {
		fmt.Fprintf(w, "[gc] GC(%d) trigger=%s\n", cs.Seq, cs.Trigger)
		fmt.Fprintf(w, "[gc] GC(%d) pause cycles: STW1=%d STW2=%d STW3=%d\n",
			cs.Seq, cs.Pause1, cs.Pause2, cs.Pause3)
		fmt.Fprintf(w, "[gc] GC(%d) marked %s live\n", cs.Seq, fmtBytes(cs.MarkedBytes))
		fmt.Fprintf(w, "[gc] GC(%d) EC: %d small pages (%s live), %d medium; %d empty pages freed\n",
			cs.Seq, cs.ECSmall, fmtBytes(cs.ECSmallLiveBytes), cs.ECMedium, cs.PagesFreedEmpty)
		fmt.Fprintf(w, "[gc] GC(%d) heap: %.1f%% -> %.1f%%\n",
			cs.Seq, cs.HeapUsedBefore, cs.HeapUsedAfter)
	}
	fmt.Fprintf(w, "[gc] totals: %d cycles, relocated %d objects (%s) by mutators, %d (%s) by GC\n",
		len(st.Cycles),
		st.MutatorRelocObjects, fmtBytes(st.MutatorRelocBytes),
		st.GCRelocObjects, fmtBytes(st.GCRelocBytes))
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

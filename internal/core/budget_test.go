package core

import (
	"errors"
	"strings"
	"testing"

	"hcsgc/internal/faultinject"
	"hcsgc/internal/telemetry/latency"
)

// TestAllocBudgetPreflightDeadline arms a budget whose deadline is already
// behind the virtual clock: the very next allocation must fail fast with
// ErrDeadlineExceeded before touching the heap — no stall, no OOM verdict.
func TestAllocBudgetPreflightDeadline(t *testing.T) {
	c, _, _ := oomEnv(t, 8<<20, Config{TriggerPercent: 101})
	m := c.NewMutator(1)
	m.Work(1000)
	used := c.Heap().UsedBytes()

	m.SetAllocBudget(500, 0) // clock is at 1000: already expired
	_, err := m.TryAllocWordArray(8)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired budget returned %v, want ErrDeadlineExceeded", err)
	}
	if errors.Is(err, ErrOutOfMemory) {
		t.Fatal("deadline expiry must not read as heap exhaustion")
	}
	var derr *DeadlineExceededError
	if !errors.As(err, &derr) {
		t.Fatalf("error chain %v lacks *DeadlineExceededError", err)
	}
	if derr.DeadlineV != 500 || derr.NowV < derr.DeadlineV {
		t.Fatalf("deadline fields: now %d, deadline %d", derr.NowV, derr.DeadlineV)
	}
	if derr.Stalls != 0 {
		t.Fatalf("pre-flight expiry absorbed %d stalls, want 0", derr.Stalls)
	}
	if derr.Forced {
		t.Fatal("organic expiry reported as injector-forced")
	}
	if derr.Size == 0 {
		t.Fatal("expiry did not record the requested size")
	}
	if got := c.Heap().UsedBytes(); got != used {
		t.Fatalf("expired request allocated: heap %d -> %d bytes", used, got)
	}
	if m.Stalls != 0 {
		t.Fatalf("pre-flight expiry stalled %d times", m.Stalls)
	}

	// Disarming restores normal allocation.
	m.ClearAllocBudget()
	if _, err := m.TryAllocWordArray(8); err != nil {
		t.Fatalf("allocation after ClearAllocBudget: %v", err)
	}
}

// TestAllocBudgetStallCap exhausts the heap with live data, then checks
// that a budget with MaxStalls=1 converts the would-be OOM stall convoy
// into a prompt deadline failure after exactly one absorbed stall.
func TestAllocBudgetStallCap(t *testing.T) {
	c, _, _ := oomEnv(t, 4<<20, Config{TriggerPercent: 101, StallRetries: 8})
	m := c.NewMutator(64)
	// Fill with rooted (live) arrays until exhaustion.
	i := 0
	for ; i < 64; i++ {
		ref, err := m.TryAllocWordArray(8 << 10)
		if err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("fill failed with %v, want ErrOutOfMemory", err)
			}
			break
		}
		m.SetRoot(i, ref)
	}
	if i == 64 {
		t.Fatal("heap never filled")
	}

	// Unbudgeted: exhaustion (the global stall policy ran out).
	if _, err := m.TryAllocWordArray(8 << 10); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("unbudgeted alloc on full heap: %v, want ErrOutOfMemory", err)
	}

	// Budgeted with a generous deadline but MaxStalls=1: one stall, then
	// a deadline verdict — not OOM, and far fewer stalls than StallRetries.
	before := m.Stalls
	m.SetAllocBudget(m.VirtualCycles()+1<<40, 1)
	_, err := m.TryAllocWordArray(8 << 10)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("budgeted alloc on full heap: %v, want ErrDeadlineExceeded", err)
	}
	var derr *DeadlineExceededError
	if !errors.As(err, &derr) {
		t.Fatalf("error chain %v lacks *DeadlineExceededError", err)
	}
	if derr.Stalls != 1 {
		t.Fatalf("budget absorbed %d stalls, want exactly 1", derr.Stalls)
	}
	if got := m.Stalls - before; got != 1 {
		t.Fatalf("mutator stalled %d times under MaxStalls=1", got)
	}

	// The budget resets per arm: a fresh SetAllocBudget absorbs its own
	// stall before failing (the counter did not leak across requests).
	m.SetAllocBudget(m.VirtualCycles()+1<<40, 1)
	_, err = m.TryAllocWordArray(8 << 10)
	if !errors.As(err, &derr) || derr.Stalls != 1 {
		t.Fatalf("re-armed budget: %v, want one absorbed stall", err)
	}
}

// TestAllocBudgetForcedExpiry drives the fault injector's ForceDeadline
// point: an armed budget with ample room still fails fast (Forced set),
// and allocation performs zero heap work after the decision.
func TestAllocBudgetForcedExpiry(t *testing.T) {
	inj := faultinject.New(faultinject.Config{Seed: 1, ForceDeadline: 1})
	c, _, _ := oomEnv(t, 8<<20, Config{TriggerPercent: 101, FaultInjector: inj})
	m := c.NewMutator(1)

	// Unarmed: the injector point is not consulted; allocation proceeds.
	if _, err := m.TryAllocWordArray(8); err != nil {
		t.Fatalf("unarmed alloc with ForceDeadline=1: %v", err)
	}

	used := c.Heap().UsedBytes()
	m.SetAllocBudget(m.VirtualCycles()+1<<40, 0)
	_, err := m.TryAllocWordArray(8)
	var derr *DeadlineExceededError
	if !errors.As(err, &derr) || !derr.Forced {
		t.Fatalf("forced expiry returned %v, want Forced *DeadlineExceededError", err)
	}
	if c.Heap().UsedBytes() != used {
		t.Fatal("injector-forced expiry still allocated")
	}
}

// TestAllocBudgetHonorsDeadlineDuringStalls pins the mid-stall check: on a
// full heap a budget with an imminent deadline gives up as soon as the
// clock passes it, instead of riding out the global retry budget. Stall
// virtual time is charged to the clock via the latency tracker, so the
// env arms one (without it the clock freezes during stalls).
func TestAllocBudgetHonorsDeadlineDuringStalls(t *testing.T) {
	var dump strings.Builder
	c, _, _ := oomEnv(t, 4<<20, Config{
		TriggerPercent: 101, StallRetries: 64,
		Latency: latency.New(latency.Config{DumpTo: &dump}),
	})
	m := c.NewMutator(64)
	for i := 0; i < 64; i++ {
		ref, err := m.TryAllocWordArray(8 << 10)
		if err != nil {
			break
		}
		m.SetRoot(i, ref)
	}
	// Deadline just ahead: a stall's virtual-time charge pushes the clock
	// past it, so the next budget check fails the request long before 64
	// retries elapse.
	m.SetAllocBudget(m.VirtualCycles()+1, 0)
	_, err := m.TryAllocWordArray(8 << 10)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("imminent-deadline alloc: %v, want ErrDeadlineExceeded", err)
	}
	var derr *DeadlineExceededError
	if !errors.As(err, &derr) {
		t.Fatal("missing *DeadlineExceededError")
	}
	if derr.Stalls >= 64 {
		t.Fatalf("request rode out %d stalls despite expired deadline", derr.Stalls)
	}
}

package core

import (
	"math/rand"
	"sync"
	"testing"

	"hcsgc/internal/heap"
	"hcsgc/internal/objmodel"
	"hcsgc/internal/simmem"
)

// buildObjectArray allocates an array of n small objects (payload tagged
// with the index), stores it in root 0, and returns nothing. Objects are
// allocated in index order, so their initial layout is index order.
func buildObjectArray(m *Mutator, node *objmodel.Type, n int) {
	arr := m.AllocRefArray(n)
	m.SetRoot(0, arr)
	for i := 0; i < n; i++ {
		obj := m.Alloc(node)
		m.StoreField(obj, 1, uint64(i))
		m.StoreRef(m.LoadRoot(0), i, obj)
	}
}

// touch accesses element i through the barrier and returns the element.
func touch(m *Mutator, i int) heap.Ref {
	return m.LoadRef(m.LoadRoot(0), i)
}

func TestHotnessViaRColoredPointers(t *testing.T) {
	// Objects whose slots a mutator healed during the relocation era carry
	// R-colored pointers; the next mark must flag exactly those hot
	// (paper §3.1.2). LazyRelocate keeps cycle 2's drain from freeing the
	// pages whose hot accounting we inspect.
	c, types := testEnv(t, Knobs{Hotness: true, LazyRelocate: true})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	const n = 2000
	buildObjectArray(m, node, n)
	m.RequestGC() // cycle 1: end in relocation era

	// Touch the first half during the relocation era.
	for i := 0; i < n/2; i++ {
		touch(m, i)
	}
	m.RequestGC() // cycle 2: mark flags touched objects hot

	// Inspect the pages directly (touching objects again could relocate
	// them to fresh pages whose hotmaps are empty — hot bits do not travel
	// with relocation; they are re-derived each mark).
	var hotBytes, liveBytes uint64
	c.Heap().LivePages(func(p *heap.Page) {
		hotBytes += p.HotBytes()
		liveBytes += p.LiveBytes()
	})
	objBytes := uint64(n / 2 * 24) // node = header + 2 fields = 24 bytes
	if hotBytes < objBytes {
		t.Errorf("hot bytes = %d, want >= %d (the touched half)", hotBytes, objBytes)
	}
	if coldBytes := liveBytes - hotBytes; coldBytes < objBytes {
		t.Errorf("cold bytes = %d, want >= %d (the untouched half)", coldBytes, objBytes)
	}
}

func TestHotnessDisabledRecordsNothing(t *testing.T) {
	c, types := testEnv(t, Knobs{})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	buildObjectArray(m, node, 500)
	m.RequestGC()
	for i := 0; i < 500; i++ {
		touch(m, i)
	}
	m.RequestGC()
	hot := 0
	c.Heap().LivePages(func(p *heap.Page) {
		hot += int(p.HotBytes())
	})
	if hot != 0 {
		t.Fatalf("hot bytes = %d with HOTNESS off, want 0", hot)
	}
}

func TestWLBSelectionExcavatesBuriedHotObjects(t *testing.T) {
	// A fully live page (no garbage) is never selected by baseline ZGC.
	// With COLDCONFIDENCE=1.0, pages whose hot bytes are small relative to
	// page size are selected, "excavating" hot objects buried among cold
	// ones (§3.1.3).
	run := func(knobs Knobs) (ecSmallTotal int) {
		c, types := testEnv(t, knobs)
		node := types.Register("node", 2, []int{0})
		m := c.NewMutator(4)
		defer m.Close()
		const n = 200000 // ~6.4MB of 32B objects: several fully live pages
		buildObjectArray(m, node, n)
		m.RequestGC()
		// Touch a sparse subset during the relocation era: these become
		// hot at the next mark.
		for i := 0; i < n; i += 97 {
			touch(m, i)
		}
		m.RequestGC() // hotness recorded; EC selection sees hot/cold split
		for _, cs := range c.Stats().Cycles {
			ecSmallTotal += cs.ECSmall
		}
		return ecSmallTotal
	}
	baseline := run(Knobs{})
	aggressive := run(Knobs{Hotness: true, ColdConfidence: 1.0})
	if aggressive <= baseline {
		t.Fatalf("ColdConfidence=1.0 EC pages (%d) must exceed baseline (%d)", aggressive, baseline)
	}
}

func TestRelocateAllSmallPagesSelectsEverything(t *testing.T) {
	c, types := testEnv(t, Knobs{RelocateAllSmallPages: true})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	buildObjectArray(m, node, 60000)
	m.RequestGC()
	st := c.Stats()
	if len(st.Cycles) != 1 {
		t.Fatalf("cycles = %d", len(st.Cycles))
	}
	if st.Cycles[0].ECSmall == 0 {
		t.Fatal("RelocateAllSmallPages must select fully live small pages")
	}
}

func TestBaselineSkipsDensePages(t *testing.T) {
	c, types := testEnv(t, Knobs{})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	buildObjectArray(m, node, 200000) // several fully live pages
	m.RequestGC()
	st := c.Stats()
	// Only the partially filled tail TLAB page may qualify; the dense,
	// fully live pages must not.
	if got := st.Cycles[0].ECSmall; got > 1 {
		t.Fatalf("baseline selected %d small pages, want at most the sparse tail page", got)
	}
}

func TestLazyRelocateMutatorLaysOutInAccessOrder(t *testing.T) {
	// The core mechanism of the paper (§3.2): with LAZYRELOCATE and a
	// large EC, the mutator relocates objects as it accesses them, so the
	// new layout follows the access order.
	c, types := testEnv(t, Knobs{RelocateAllSmallPages: true, LazyRelocate: true})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	const n = 20000
	buildObjectArray(m, node, n)
	m.RequestGC() // EC = all small pages; GC threads stand down (lazy)

	order := rand.New(rand.NewSource(7)).Perm(n)
	addrs := make([]uint64, 0, n)
	for _, i := range order {
		obj := touch(m, i) // slow path: mutator relocates into its TLAB
		addrs = append(addrs, obj.Addr())
	}
	// Count ascending adjacent pairs: relocation in access order means the
	// addresses the mutator produced are (almost) monotonically increasing.
	ascending := 0
	for i := 1; i < len(addrs); i++ {
		if addrs[i] > addrs[i-1] {
			ascending++
		}
	}
	frac := float64(ascending) / float64(len(addrs)-1)
	if frac < 0.95 {
		t.Fatalf("only %.1f%% of accesses landed in ascending address order; mutator-order relocation broken", 100*frac)
	}
	st := c.Stats()
	if st.MutatorRelocObjects < n {
		t.Fatalf("mutator relocated %d objects, want >= %d", st.MutatorRelocObjects, n)
	}
	// Verify integrity after relocation.
	for i := 0; i < n; i += 111 {
		if got := m.LoadField(touch(m, i), 1); got != uint64(i) {
			t.Fatalf("object %d payload = %d after relocation", i, got)
		}
	}
}

func TestNonLazyGCThreadsRelocate(t *testing.T) {
	// Without LAZYRELOCATE the GC workers drain EC pages themselves; an
	// idle mutator should find everything already relocated.
	c, types := testEnv(t, Knobs{RelocateAllSmallPages: true})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	const n = 20000
	buildObjectArray(m, node, n)
	m.RequestGC()
	c.relocWG.Wait() // let the concurrent drain finish
	st := c.Stats()
	if st.GCRelocObjects < n {
		t.Fatalf("GC relocated %d objects, want >= %d", st.GCRelocObjects, n)
	}
	for i := 0; i < n; i += 97 {
		if got := m.LoadField(touch(m, i), 1); got != uint64(i) {
			t.Fatalf("object %d payload = %d", i, got)
		}
	}
}

func TestLazyRelocateDrainsAtNextCycleStart(t *testing.T) {
	// Leftover EC objects the mutator never touched must be relocated by
	// GC threads at the start of the next cycle (Fig. 3), and the pages
	// freed.
	c, types := testEnv(t, Knobs{RelocateAllSmallPages: true, LazyRelocate: true})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	buildObjectArray(m, node, 20000)
	m.RequestGC()
	// Touch nothing. Next cycle must start with the RE drain.
	m.RequestGC()
	st := c.Stats()
	if st.GCRelocObjects == 0 {
		t.Fatal("lazy leftover drain did not run")
	}
	for i := 0; i < 20000; i += 199 {
		if got := m.LoadField(touch(m, i), 1); got != uint64(i) {
			t.Fatalf("object %d payload = %d", i, got)
		}
	}
}

func TestColdPageSegregation(t *testing.T) {
	// With COLDPAGE, the GC drain sends hot and cold objects to different
	// destination pages (§3.3).
	c, types := testEnv(t, Knobs{Hotness: true, ColdPage: true, ColdConfidence: 1.0})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	const n = 30000
	buildObjectArray(m, node, n)
	m.RequestGC()
	// Make every 3rd object hot during the relocation era.
	for i := 0; i < n; i += 3 {
		touch(m, i)
	}
	m.RequestGC() // mark records hotness; EC selects pages (conf=1.0)
	c.relocWG.Wait()

	hotPages := map[*heap.Page]bool{}
	coldPages := map[*heap.Page]bool{}
	relocated := 0
	for i := 0; i < n; i++ {
		obj := touch(m, i)
		p := c.Heap().PageOf(obj.Addr())
		if i%3 == 0 {
			hotPages[p] = true
		} else {
			coldPages[p] = true
		}
		relocated++
		if i%64 == 0 {
			m.Safepoint()
		}
	}
	if len(hotPages) == 0 || len(coldPages) == 0 {
		t.Fatal("expected both hot and cold destination pages")
	}
	overlap := 0
	for p := range hotPages {
		if coldPages[p] {
			overlap++
		}
	}
	// Mutator-relocated stragglers can blur the split slightly; require
	// strong segregation, not perfection.
	if overlap > (len(hotPages)+len(coldPages))/4 {
		t.Fatalf("hot/cold pages overlap too much: %d of %d+%d", overlap, len(hotPages), len(coldPages))
	}
}

func TestColdPageNeverIncreasesMixing(t *testing.T) {
	// Comparative check for §3.3: COLDPAGE can only reduce (never
	// increase) hot/cold page sharing relative to the same configuration
	// without it. (A strict "mixing without COLDPAGE" assertion would be
	// wrong: the mutator-vs-GC relocation split already segregates — the
	// mutator only ever touches hot objects, so its TLAB pages are
	// all-hot even without the knob.)
	overlapFor := func(knobs Knobs) int {
		c, types := testEnv(t, knobs)
		node := types.Register("node", 2, []int{0})
		m := c.NewMutator(4)
		defer m.Close()
		const n = 30000
		buildObjectArray(m, node, n)
		m.RequestGC()
		for i := 0; i < n; i += 3 {
			touch(m, i)
		}
		m.RequestGC()
		c.relocWG.Wait()
		hotPages := map[*heap.Page]bool{}
		coldPages := map[*heap.Page]bool{}
		for i := 0; i < n; i++ {
			obj := touch(m, i)
			p := c.Heap().PageOf(obj.Addr())
			if i%3 == 0 {
				hotPages[p] = true
			} else {
				coldPages[p] = true
			}
			if i%64 == 0 {
				m.Safepoint()
			}
		}
		overlap := 0
		for p := range hotPages {
			if coldPages[p] {
				overlap++
			}
		}
		return overlap
	}
	with := overlapFor(Knobs{Hotness: true, ColdPage: true, ColdConfidence: 1.0})
	without := overlapFor(Knobs{Hotness: true, ColdConfidence: 1.0})
	if with > without {
		t.Fatalf("COLDPAGE increased hot/cold page sharing: %d vs %d", with, without)
	}
}

func TestEvacuatedPagesFreedAndDropped(t *testing.T) {
	c, types := testEnv(t, Knobs{RelocateAllSmallPages: true})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	buildObjectArray(m, node, 60000)
	m.RequestGC()
	c.relocWG.Wait()
	freedBefore := c.Heap().PagesFreed.Load()
	if freedBefore == 0 {
		t.Fatal("evacuated pages must be freed once fully relocated")
	}
	// The next cycle's mark end must drop forwarding tables.
	m.RequestGC()
	if len(c.pendingDrop) != 0 {
		t.Fatalf("pendingDrop = %d pages after mark end, want 0", len(c.pendingDrop))
	}
}

func TestConcurrentMutatorsWithDriver(t *testing.T) {
	// End-to-end stress: several mutators churn linked lists while the
	// background driver triggers cycles. Data integrity must hold. A small
	// heap guarantees the occupancy trigger fires.
	mem := simmem.MustNewHierarchy(simmem.DefaultConfig())
	h := heap.New(heap.Config{MaxBytes: 16 << 20}, mem)
	types := objmodel.NewRegistry()
	c := MustNew(h, types, Config{Knobs: Knobs{Hotness: true, ColdPage: true, ColdConfidence: 0.5, LazyRelocate: true}})
	node := types.Register("node", 2, []int{0})
	c.StartDriver()
	defer c.StopDriver()
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := c.NewMutator(4)
			defer m.Close()
			const n = 300
			for round := 0; round < 30; round++ {
				buildList(m, node, n)
				// Garbage to create pressure.
				for i := 0; i < 200; i++ {
					m.AllocWordArray(255) // 2KB each
				}
				cur := m.LoadRoot(0)
				for i := 0; i < n; i++ {
					if got := m.LoadField(cur, 1); got != uint64(i) {
						errs <- "corrupted list"
						return
					}
					cur = m.LoadRef(cur, 0)
				}
				m.Safepoint()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if c.Cycles() == 0 {
		t.Fatal("driver never triggered a cycle under pressure")
	}
}

func TestMutatorRequestGCConcurrentWithDriver(t *testing.T) {
	c, types := testEnv(t, Knobs{LazyRelocate: true})
	node := types.Register("node", 2, []int{0})
	c.StartDriver()
	defer c.StopDriver()
	m := c.NewMutator(4)
	defer m.Close()
	buildList(m, node, 100)
	for i := 0; i < 5; i++ {
		m.RequestGC()
		walkList(t, m, 100)
	}
}

func TestStatsMedianECSmall(t *testing.T) {
	s := Stats{Cycles: []CycleStats{{ECSmall: 5}, {ECSmall: 1}, {ECSmall: 3}}}
	if got := s.MedianECSmall(); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	s = Stats{Cycles: []CycleStats{{ECSmall: 4}, {ECSmall: 2}}}
	if got := s.MedianECSmall(); got != 3 {
		t.Fatalf("even median = %v, want 3", got)
	}
	if (Stats{}).MedianECSmall() != 0 {
		t.Fatal("empty median must be 0")
	}
}

func TestTinyPagesExtension(t *testing.T) {
	c, types := testEnv(t, Knobs{TinyPages: true})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	obj := m.Alloc(node) // 32B <= TinyObjectMax
	if got := c.Heap().PageOf(obj.Addr()).Class(); got != heap.ClassTiny {
		t.Fatalf("32B object on %v page, want tiny", got)
	}
	m.SetRoot(0, obj)
	m.StoreField(obj, 1, 5)
	m.RequestGC()
	if got := m.LoadField(m.LoadRoot(0), 1); got != 5 {
		t.Fatal("tiny object corrupted by GC")
	}
}

func TestAutoTuneAdjustsConfidence(t *testing.T) {
	c, types := testEnv(t, Knobs{Hotness: true, ColdConfidence: 1.0, AutoTune: true})
	node := types.Register("node", 2, []int{0})
	m := c.NewMutator(4)
	defer m.Close()
	buildObjectArray(m, node, 5000)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5000; j += 7 {
			touch(m, j)
		}
		m.RequestGC()
	}
	got := c.effectiveConf()
	if got < 0 || got > 1 {
		t.Fatalf("effective confidence %v escaped [0,1]", got)
	}
}

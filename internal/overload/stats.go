package overload

import (
	"fmt"
	"sync/atomic"

	"hcsgc/internal/telemetry"
	"hcsgc/internal/telemetry/latency"
)

// Stats accumulates the overload plane's request-outcome accounting:
// offered/admitted/shed counts by priority, fast-fail outcomes (deadline
// expiries, per-request OOM failures), client retries, and the
// goodput/badput split over successful requests. All recording is
// lock-free and nil-safe; instances merge across server threads and
// across A/B repeat runs.
type Stats struct {
	admitted  atomic.Uint64
	sheds     [NumPriorities]atomic.Uint64
	stale     atomic.Uint64
	forced    atomic.Uint64
	deadline  atomic.Uint64
	oom       atomic.Uint64
	retries   atomic.Uint64
	failures  atomic.Uint64
	successes atomic.Uint64
	withinSLO atomic.Uint64
	trans     atomic.Uint64
	emerg     atomic.Uint64
	spanV     atomic.Uint64
	// serveAllocBytes is the heap allocation volume performed by serving
	// threads inside the serving window (only measured while a signal
	// plane is attached). The zero-allocations-after-shed regression test
	// pins it to 0 under a forced-shed schedule.
	serveAllocBytes atomic.Uint64

	// success holds successful-request latencies (enqueue to final
	// completion, retries included) across all phases.
	success *latency.Hist

	// Live telemetry handles; nil until BindTelemetry (Counter is
	// nil-safe, so recording never branches on bound-ness).
	tSheds    [NumPriorities]*telemetry.Counter
	tStale    *telemetry.Counter
	tForced   *telemetry.Counter
	tDeadline *telemetry.Counter
	tOOM      *telemetry.Counter
	tRetries  *telemetry.Counter
	tFailures *telemetry.Counter
	tSuccess  *telemetry.Counter
	tTrans    *telemetry.Counter
	tEmerg    *telemetry.Counter
}

// NewStats returns an empty accumulator.
func NewStats() *Stats {
	return &Stats{success: latency.NewHist()}
}

func (st *Stats) recordAdmit() {
	if st == nil {
		return
	}
	st.admitted.Add(1)
}

func (st *Stats) recordShed(pri Priority, forced bool) {
	if st == nil {
		return
	}
	st.sheds[pri].Add(1)
	st.tSheds[pri].Inc()
	if forced {
		st.forced.Add(1)
		st.tForced.Inc()
	}
}

// RecordStaleShed records one request shed at dequeue because its
// queueing delay had already consumed its SLO budget: serving it could
// only produce an over-SLO response (badput), so dropping it is strictly
// better — the freed capacity goes to requests that can still meet the
// SLO. Counted as a shed of its priority class plus a dedicated stale
// counter, so the dequeue-side and admission-side shed volumes stay
// separable in telemetry.
func (st *Stats) RecordStaleShed(pri Priority) {
	if st == nil {
		return
	}
	st.sheds[pri].Add(1)
	st.tSheds[pri].Inc()
	st.stale.Add(1)
	st.tStale.Inc()
}

func (st *Stats) recordTransition() {
	if st == nil {
		return
	}
	st.trans.Add(1)
	st.tTrans.Inc()
}

func (st *Stats) recordEmergency() {
	if st == nil {
		return
	}
	st.emerg.Add(1)
	st.tEmerg.Inc()
}

// RecordDeadlineExceeded records one attempt failed fast by the
// per-request allocation budget.
func (st *Stats) RecordDeadlineExceeded() {
	if st == nil {
		return
	}
	st.deadline.Add(1)
	st.tDeadline.Inc()
}

// RecordOOMFailure records one attempt failed by heap exhaustion
// (surfaced as a per-request failure instead of aborting the run).
func (st *Stats) RecordOOMFailure() {
	if st == nil {
		return
	}
	st.oom.Add(1)
	st.tOOM.Inc()
}

// RecordRetry records one client retry (after jittered backoff).
func (st *Stats) RecordRetry() {
	if st == nil {
		return
	}
	st.retries.Add(1)
	st.tRetries.Inc()
}

// RecordFailure records one request that exhausted its retry budget
// without completing.
func (st *Stats) RecordFailure() {
	if st == nil {
		return
	}
	st.failures.Add(1)
	st.tFailures.Inc()
}

// RecordSuccess records one completed request: its enqueue-to-completion
// latency (virtual cycles, retries included) and whether it landed
// within the goodput SLO.
func (st *Stats) RecordSuccess(latV uint64, withinSLO bool) {
	if st == nil {
		return
	}
	st.successes.Add(1)
	st.tSuccess.Inc()
	st.success.Record(latV)
	if withinSLO {
		st.withinSLO.Add(1)
	}
}

// AddServeSpan accumulates one run's serving span (virtual cycles); the
// goodput rate is normalized against it.
func (st *Stats) AddServeSpan(v uint64) {
	if st == nil {
		return
	}
	st.spanV.Add(v)
}

// AddServeAllocBytes accumulates serving-window heap allocation volume.
func (st *Stats) AddServeAllocBytes(v uint64) {
	if st == nil {
		return
	}
	st.serveAllocBytes.Add(v)
}

// ServeAllocBytes returns the accumulated serving-window allocation
// volume (0 unless a signal plane was attached).
func (st *Stats) ServeAllocBytes() uint64 {
	if st == nil {
		return 0
	}
	return st.serveAllocBytes.Load()
}

// Merge folds o into st (histograms slot-wise, counters additively).
// Telemetry handles are not merged; bind the destination instead.
func (st *Stats) Merge(o *Stats) {
	if st == nil || o == nil {
		return
	}
	st.admitted.Add(o.admitted.Load())
	for i := range st.sheds {
		st.sheds[i].Add(o.sheds[i].Load())
	}
	st.stale.Add(o.stale.Load())
	st.forced.Add(o.forced.Load())
	st.deadline.Add(o.deadline.Load())
	st.oom.Add(o.oom.Load())
	st.retries.Add(o.retries.Load())
	st.failures.Add(o.failures.Load())
	st.successes.Add(o.successes.Load())
	st.withinSLO.Add(o.withinSLO.Load())
	st.trans.Add(o.trans.Load())
	st.emerg.Add(o.emerg.Load())
	st.spanV.Add(o.spanV.Load())
	st.serveAllocBytes.Add(o.serveAllocBytes.Load())
	st.success.Merge(o.success)
}

// BindTelemetry registers the hcsgc_overload_* counter and summary
// families with a registry and points the live handles at it.
func (st *Stats) BindTelemetry(reg *telemetry.Registry) {
	if st == nil || reg == nil {
		return
	}
	for pri := Priority(0); pri < NumPriorities; pri++ {
		st.tSheds[pri] = reg.Counter("hcsgc_overload_sheds_total",
			"Requests rejected by admission control, by priority.",
			"priority", pri.String())
	}
	st.tStale = reg.Counter("hcsgc_overload_stale_sheds_total",
		"Requests shed at dequeue with their SLO budget already consumed by queueing delay.")
	st.tForced = reg.Counter("hcsgc_overload_forced_sheds_total",
		"Admission rejections forced by the fault injector.")
	st.tDeadline = reg.Counter("hcsgc_overload_deadline_exceeded_total",
		"Request attempts failed fast by the per-request allocation budget.")
	st.tOOM = reg.Counter("hcsgc_overload_oom_failures_total",
		"Request attempts failed by heap exhaustion (degraded, not aborted).")
	st.tRetries = reg.Counter("hcsgc_overload_retries_total",
		"Client retries after a shed or fast-failed attempt.")
	st.tFailures = reg.Counter("hcsgc_overload_failures_total",
		"Requests that exhausted their retry budget without completing.")
	st.tSuccess = reg.Counter("hcsgc_overload_successes_total",
		"Requests completed successfully (retries included).")
	st.tTrans = reg.Counter("hcsgc_overload_transitions_total",
		"Admission state transitions.")
	st.tEmerg = reg.Counter("hcsgc_overload_emergency_gc_total",
		"Early GC cycles forced by the overload controller.")
	reg.Summary("hcsgc_overload_success_cycles",
		"Successful-request latency in virtual cycles (retries included).",
		st.success)
}

// Report is the overload plane's accounting snapshot, JSON-shaped for
// the /overload endpoint and the bench report.
type Report struct {
	// State is the controller's admission state at snapshot time (only
	// set by Controller.Report; a bare Stats reports "").
	State string `json:"state,omitempty"`

	Admitted  uint64 `json:"admitted"`
	ShedPoint uint64 `json:"shed_point"`
	ShedBulk  uint64 `json:"shed_bulk"`
	// StaleSheds is the subset of ShedPoint+ShedBulk dropped at dequeue
	// because queueing delay had already consumed the SLO budget.
	StaleSheds  uint64 `json:"stale_sheds,omitempty"`
	ForcedSheds uint64 `json:"forced_sheds,omitempty"`

	DeadlineExceeded uint64 `json:"deadline_exceeded"`
	OOMFailures      uint64 `json:"oom_failures"`
	Retries          uint64 `json:"retries"`
	Failures         uint64 `json:"failures"`

	Successes uint64 `json:"successes"`
	// Goodput/Badput split completed work: successes within the SLO vs
	// over-SLO successes plus definitive failures.
	Goodput uint64 `json:"goodput"`
	Badput  uint64 `json:"badput"`
	// GoodputPerMcycle normalizes goodput against the serving span.
	GoodputPerMcycle float64 `json:"goodput_per_mcycle"`
	// ShedRate is sheds over offered (admitted + shed) requests.
	ShedRate float64 `json:"shed_rate"`

	Transitions  uint64 `json:"transitions"`
	EmergencyGCs uint64 `json:"emergency_gcs"`

	SLOThresholdCycles uint64 `json:"slo_threshold_cycles"`
	ServeSpanVCycles   uint64 `json:"serve_span_vcycles"`

	// Success is the successful-request latency distribution (virtual
	// cycles, retries included, all phases).
	Success latency.Dist `json:"success"`
}

// Report snapshots the accumulator against the given goodput SLO.
func (st *Stats) Report(sloCycles uint64) Report {
	if st == nil {
		return Report{SLOThresholdCycles: sloCycles}
	}
	r := Report{
		Admitted:           st.admitted.Load(),
		ShedPoint:          st.sheds[PriorityPoint].Load(),
		ShedBulk:           st.sheds[PriorityBulk].Load(),
		StaleSheds:         st.stale.Load(),
		ForcedSheds:        st.forced.Load(),
		DeadlineExceeded:   st.deadline.Load(),
		OOMFailures:        st.oom.Load(),
		Retries:            st.retries.Load(),
		Failures:           st.failures.Load(),
		Successes:          st.successes.Load(),
		Goodput:            st.withinSLO.Load(),
		Transitions:        st.trans.Load(),
		EmergencyGCs:       st.emerg.Load(),
		SLOThresholdCycles: sloCycles,
		ServeSpanVCycles:   st.spanV.Load(),
		Success:            st.success.Dist(),
	}
	r.Badput = (r.Successes - r.Goodput) + r.Failures
	if offered := r.Admitted + r.ShedPoint + r.ShedBulk; offered > 0 {
		r.ShedRate = float64(r.ShedPoint+r.ShedBulk) / float64(offered)
	}
	if r.ServeSpanVCycles > 0 {
		r.GoodputPerMcycle = float64(r.Goodput) / (float64(r.ServeSpanVCycles) / 1e6)
	}
	return r
}

// Validate checks a report's structural invariants: the goodput split
// must partition successes and the shed rate must be a fraction.
func (r Report) Validate() error {
	if r.Goodput > r.Successes {
		return fmt.Errorf("overload: goodput %d exceeds successes %d", r.Goodput, r.Successes)
	}
	if r.Badput != (r.Successes-r.Goodput)+r.Failures {
		return fmt.Errorf("overload: badput %d does not partition successes/failures", r.Badput)
	}
	if r.StaleSheds > r.ShedPoint+r.ShedBulk {
		return fmt.Errorf("overload: stale sheds %d exceed total sheds %d",
			r.StaleSheds, r.ShedPoint+r.ShedBulk)
	}
	if r.ShedRate < 0 || r.ShedRate > 1 {
		return fmt.Errorf("overload: shed rate %v out of [0,1]", r.ShedRate)
	}
	if d := r.Success; d.Count > 0 && (d.P50 > d.P99 || d.P99 > d.P999 || d.P999 > d.Max) {
		return fmt.Errorf("overload: success quantiles not monotone")
	}
	if d := r.Success; d.Count != r.Successes {
		return fmt.Errorf("overload: success histogram count %d != successes %d", d.Count, r.Successes)
	}
	return nil
}

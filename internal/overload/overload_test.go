package overload

import (
	"errors"
	"testing"

	"hcsgc/internal/faultinject"
	"hcsgc/internal/signals"
	"hcsgc/internal/telemetry"
)

func TestNilControllerAndStatsAreInert(t *testing.T) {
	var ctrl *Controller
	if ctrl.State() != StateNormal || ctrl.Poll() != StateNormal {
		t.Fatal("nil controller not in Normal")
	}
	if err := ctrl.Admit(PriorityBulk, 42); err != nil {
		t.Fatalf("nil controller shed a request: %v", err)
	}
	if rep := ctrl.Report(); rep.State != "normal" || rep.Admitted != 0 {
		t.Fatalf("nil controller report: %+v", rep)
	}
	if pol := ctrl.Policy(); pol.DeadlineCycles == 0 {
		t.Fatal("nil controller policy not defaulted")
	}
	ctrl.BindTelemetry(telemetry.NewRegistry())

	var st *Stats
	st.RecordDeadlineExceeded()
	st.RecordOOMFailure()
	st.RecordRetry()
	st.RecordFailure()
	st.RecordSuccess(10, true)
	st.AddServeSpan(1)
	st.AddServeAllocBytes(1)
	st.Merge(NewStats())
	st.BindTelemetry(telemetry.NewRegistry())
	if st.ServeAllocBytes() != 0 {
		t.Fatal("nil stats reported bytes")
	}
	if rep := st.Report(5); rep.Successes != 0 || rep.SLOThresholdCycles != 5 {
		t.Fatalf("nil stats report: %+v", rep)
	}
}

// TestControllerStallBurstEscalation drives the state machine through the
// live stall-delta path: one stall since the last poll reaches Brownout, a
// burst reaches Shed, and calm polls unwind one level per ExitPolls.
func TestControllerStallBurstEscalation(t *testing.T) {
	var stalls uint64
	st := NewStats()
	ctrl := NewController(Policy{Seed: 1}, nil, Hooks{
		HeapUsedPct: func() float64 { return 50 },
		Stalls:      func() uint64 { return stalls },
	}, nil, st)

	if got := ctrl.Poll(); got != StateNormal {
		t.Fatalf("initial poll: %v", got)
	}
	stalls++
	if got := ctrl.Poll(); got != StateBrownout {
		t.Fatalf("delta 1: %v, want brownout", got)
	}
	stalls += ctrl.Policy().ShedStallBurst
	if got := ctrl.Poll(); got != StateShed {
		t.Fatalf("stall burst: %v, want shed", got)
	}

	// Hysteresis: ExitPolls calm polls per downward step, one level at a
	// time — never shed-to-normal in one hop.
	exit := ctrl.Policy().ExitPolls
	for i := 0; i < exit-1; i++ {
		if got := ctrl.Poll(); got != StateShed {
			t.Fatalf("calm poll %d left shed early: %v", i+1, got)
		}
	}
	if got := ctrl.Poll(); got != StateBrownout {
		t.Fatalf("after %d calm polls: %v, want brownout", exit, got)
	}
	for i := 0; i < exit-1; i++ {
		if got := ctrl.Poll(); got != StateBrownout {
			t.Fatalf("calm poll %d left brownout early: %v", i+1, got)
		}
	}
	if got := ctrl.Poll(); got != StateNormal {
		t.Fatalf("did not settle back to normal: %v", ctrl.State())
	}
	if rep := ctrl.Report(); rep.Transitions != 4 {
		t.Fatalf("transitions = %d, want 4 (N→B→S→B→N)", rep.Transitions)
	}
}

// TestControllerOccupancyBackstop checks the live-occupancy thresholds and
// the emergency-headroom engage/release lever.
func TestControllerOccupancyBackstop(t *testing.T) {
	occ := 50.0
	var headroom []uint64
	ctrl := NewController(Policy{Seed: 1}, nil, Hooks{
		HeapUsedPct: func() float64 { return occ },
		SetHeadroom: func(b uint64) { headroom = append(headroom, b) },
	}, nil, nil)

	if got := ctrl.Poll(); got != StateNormal {
		t.Fatalf("occ 50: %v", got)
	}
	occ = ctrl.Policy().BrownoutHeapPct + 1
	if got := ctrl.Poll(); got != StateBrownout {
		t.Fatalf("occ %v: %v, want brownout", occ, got)
	}
	if len(headroom) != 1 || headroom[0] != ctrl.Policy().EmergencyHeadroomBytes {
		t.Fatalf("headroom calls after brownout: %v", headroom)
	}
	occ = ctrl.Policy().ShedHeapPct + 1
	if got := ctrl.Poll(); got != StateShed {
		t.Fatalf("occ %v: %v, want shed (escalation is immediate)", occ, got)
	}
	// Pressure vanishes: headroom releases on the next poll even though
	// the state unwinds slowly.
	occ = 50
	ctrl.Poll()
	if len(headroom) != 2 || headroom[1] != 0 {
		t.Fatalf("headroom not released when calm: %v", headroom)
	}
}

// TestControllerPlaneFlagsAndEmergency wires a real signal plane: a
// heap_pressure cycle record plus a live stall escalates straight to Shed
// and forces at most one emergency GC per observed cycle record.
func TestControllerPlaneFlagsAndEmergency(t *testing.T) {
	plane := signals.New(signals.Config{})
	var stalls uint64
	var emergencies int
	ctrl := NewController(Policy{Seed: 1}, plane, Hooks{
		HeapUsedPct: func() float64 { return 60 },
		Stalls:      func() uint64 { return stalls },
		EmergencyGC: func() { emergencies++ },
	}, nil, NewStats())

	ctrl.Poll() // initialize the stall baseline, no plane record yet

	// Post-cycle occupancy above the default 85% threshold raises
	// heap_pressure; the flag alone is a Brownout-grade signal.
	plane.OnCycle(signals.CycleSignals{
		Seq: 1, VStart: 0, VEnd: 1000,
		Heap: signals.HeapSignals{UsedAfterPct: 95, ColdFrac: -1},
	})
	if got := ctrl.Poll(); got != StateBrownout {
		t.Fatalf("heap_pressure flag: %v, want brownout", got)
	}
	if emergencies != 0 {
		t.Fatal("emergency fired below Shed")
	}

	// One live stall while the pressure flag holds: Shed, and the
	// controller forces an early cycle — once for this plane record.
	stalls++
	if got := ctrl.Poll(); got != StateShed {
		t.Fatalf("stall under pressure: %v, want shed", got)
	}
	if emergencies != 1 {
		t.Fatalf("emergencies = %d, want 1", emergencies)
	}
	ctrl.Poll()
	ctrl.Poll()
	if emergencies != 1 {
		t.Fatalf("emergency re-fired on the same cycle record (%d)", emergencies)
	}

	// A new cycle record that still shows pressure re-arms the trigger.
	plane.OnCycle(signals.CycleSignals{
		Seq: 2, VStart: 1000, VEnd: 2000,
		Heap: signals.HeapSignals{UsedAfterPct: 95, ColdFrac: -1},
	})
	stalls++
	ctrl.Poll()
	if emergencies != 2 {
		t.Fatalf("emergencies = %d after second pressured cycle, want 2", emergencies)
	}
	if rep := ctrl.Report(); rep.EmergencyGCs != 2 {
		t.Fatalf("report emergency count %d, want 2", rep.EmergencyGCs)
	}
}

// TestControllerForcedEmergency drives the injector's ForceEmergency
// point: every poll posts an emergency GC regardless of state.
func TestControllerForcedEmergency(t *testing.T) {
	inj := faultinject.New(faultinject.Config{Seed: 1, ForceEmergency: 1})
	var emergencies int
	ctrl := NewController(Policy{Seed: 1}, nil, Hooks{
		EmergencyGC: func() { emergencies++ },
	}, inj, nil)
	ctrl.Poll()
	ctrl.Poll()
	if emergencies != 2 {
		t.Fatalf("forced emergencies = %d, want 2", emergencies)
	}
	if ctrl.State() != StateNormal {
		t.Fatal("forced emergency changed admission state")
	}
}

// TestAdmitPriorityAndDeterminism pins the admission semantics per state:
// Normal admits all; Brownout sheds bulk but admits point; Shed sheds all
// bulk and a seeded ~ShedPointFrac of point ops, deterministically.
func TestAdmitPriorityAndDeterminism(t *testing.T) {
	occ := 50.0
	st := NewStats()
	ctrl := NewController(Policy{Seed: 7}, nil, Hooks{
		HeapUsedPct: func() float64 { return occ },
	}, nil, st)

	for seq := uint64(0); seq < 100; seq++ {
		if ctrl.Admit(PriorityPoint, seq) != nil || ctrl.Admit(PriorityBulk, seq) != nil {
			t.Fatalf("normal state shed seq %d", seq)
		}
	}

	occ = 90
	ctrl.Poll()
	if ctrl.State() != StateBrownout {
		t.Fatal("setup: not in brownout")
	}
	for seq := uint64(0); seq < 100; seq++ {
		if err := ctrl.Admit(PriorityPoint, seq); err != nil {
			t.Fatalf("brownout shed a point op: %v", err)
		}
		err := ctrl.Admit(PriorityBulk, seq)
		if !errors.Is(err, ErrOverload) {
			t.Fatalf("brownout admitted bulk seq %d", seq)
		}
		var oe *Error
		if !errors.As(err, &oe) || oe.State != StateBrownout || oe.Priority != PriorityBulk || oe.Seq != seq || oe.Forced {
			t.Fatalf("shed error fields: %+v", oe)
		}
	}

	occ = 100
	ctrl.Poll()
	if ctrl.State() != StateShed {
		t.Fatal("setup: not in shed")
	}
	pointSheds := 0
	for seq := uint64(0); seq < 4000; seq++ {
		if ctrl.Admit(PriorityBulk, seq) == nil {
			t.Fatalf("shed state admitted bulk seq %d", seq)
		}
		first := ctrl.Admit(PriorityPoint, seq)
		if (ctrl.Admit(PriorityPoint, seq) == nil) != (first == nil) {
			t.Fatalf("admission of (point, %d) not deterministic", seq)
		}
		if first != nil {
			pointSheds++
		}
	}
	frac := ctrl.Policy().ShedPointFrac
	if lo, hi := int(2800*frac), int(5200*frac); pointSheds < lo || pointSheds > hi {
		t.Fatalf("point sheds %d/4000, want roughly %v", pointSheds, frac)
	}

	rep := st.Report(1_000_000)
	if rep.ShedBulk == 0 || rep.ShedPoint == 0 || rep.Admitted == 0 {
		t.Fatalf("stats did not see both priorities: %+v", rep)
	}
	if rep.ShedRate <= 0 || rep.ShedRate >= 1 {
		t.Fatalf("shed rate %v out of (0,1)", rep.ShedRate)
	}
}

// TestAdmitForcedShed: the injector can force every admission decision to
// reject, tagged Forced, without the controller leaving Normal.
func TestAdmitForcedShed(t *testing.T) {
	inj := faultinject.New(faultinject.Config{Seed: 3, ForceShed: 1})
	st := NewStats()
	ctrl := NewController(Policy{Seed: 1}, nil, Hooks{}, inj, st)
	for seq := uint64(0); seq < 50; seq++ {
		err := ctrl.Admit(PriorityPoint, seq)
		var oe *Error
		if !errors.As(err, &oe) || !oe.Forced {
			t.Fatalf("seq %d: %v, want forced shed", seq, err)
		}
	}
	if rep := ctrl.Report(); rep.ForcedSheds != 50 || rep.ShedPoint != 50 {
		t.Fatalf("forced-shed accounting: %+v", rep)
	}
}

func TestPolicyWithDefaults(t *testing.T) {
	def := Policy{}.WithDefaults()
	if def.DeadlineCycles == 0 || def.GoodputSLOCycles == 0 || def.ShedStallBurst == 0 ||
		def.ExitPolls == 0 || def.ShedPointFrac == 0 || def.BrownoutHeapPct >= def.ShedHeapPct {
		t.Fatalf("defaults incomplete: %+v", def)
	}
	if def.MaxRetries != 1 {
		t.Fatalf("MaxRetries default %d, want 1", def.MaxRetries)
	}
	if p := (Policy{MaxRetries: -1}).WithDefaults(); p.MaxRetries != 0 {
		t.Fatalf("MaxRetries -1 → %d, want 0 (disabled)", p.MaxRetries)
	}
	if p := (Policy{MaxRetries: 4, DeadlineCycles: 9}).WithDefaults(); p.MaxRetries != 4 || p.DeadlineCycles != 9 {
		t.Fatal("explicit knobs overwritten by defaults")
	}
}

// TestStatsMergeReportValidate: outcome accounting survives a cross-thread
// merge and the report invariants hold.
func TestStatsMergeReportValidate(t *testing.T) {
	a, b := NewStats(), NewStats()
	a.RecordSuccess(100, true)
	a.RecordSuccess(5_000_000, false)
	a.RecordRetry()
	a.AddServeSpan(1_000_000)
	a.AddServeAllocBytes(4096)
	b.RecordSuccess(200, true)
	b.RecordFailure()
	b.RecordDeadlineExceeded()
	b.RecordOOMFailure()
	a.Merge(b)

	rep := a.Report(1_000_000)
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Successes != 3 || rep.Goodput != 2 || rep.Failures != 1 {
		t.Fatalf("merged counts: %+v", rep)
	}
	if rep.Badput != (rep.Successes-rep.Goodput)+rep.Failures {
		t.Fatalf("badput %d does not partition", rep.Badput)
	}
	if rep.DeadlineExceeded != 1 || rep.OOMFailures != 1 || rep.Retries != 1 {
		t.Fatalf("fast-fail counts lost in merge: %+v", rep)
	}
	if rep.GoodputPerMcycle != 2 {
		t.Fatalf("goodput/Mcycle = %v, want 2", rep.GoodputPerMcycle)
	}
	if a.ServeAllocBytes() != 4096 {
		t.Fatalf("serve alloc bytes = %d", a.ServeAllocBytes())
	}
	if rep.Success.Count != rep.Successes {
		t.Fatalf("histogram count %d != successes %d", rep.Success.Count, rep.Successes)
	}

	// Validate rejects a corrupted partition.
	rep.Badput++
	if rep.Validate() == nil {
		t.Fatal("Validate accepted a broken badput partition")
	}
}

// TestTelemetryBinding: the hcsgc_overload_* families register cleanly and
// the live handles count.
func TestTelemetryBinding(t *testing.T) {
	reg := telemetry.NewRegistry()
	st := NewStats()
	ctrl := NewController(Policy{Seed: 1}, nil, Hooks{}, nil, st)
	ctrl.BindTelemetry(reg)
	st.RecordSuccess(10, true)
	st.RecordFailure()
	ctrl.Admit(PriorityBulk, 1)
	if rep := st.Report(100); rep.Successes != 1 || rep.Failures != 1 {
		t.Fatalf("recording broke after binding: %+v", rep)
	}
}

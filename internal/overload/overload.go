// Package overload is the serving path's overload-protection plane: it
// turns heap-pressure collapse (every request queueing into an
// allocation-stall convoy, or a structured OOM aborting the run) into
// graceful brownout.
//
// Three mechanisms compose:
//
//   - Admission control. A Controller polls the signal plane
//     (signals.Plane.Latest: heap_pressure / stall_spike flags plus the
//     stall EWMA) and live heap occupancy, and moves Normal → Brownout →
//     Shed with hysteresis. Admit rejects a controllable, priority-aware
//     fraction of incoming requests with a structured ErrOverload before
//     they touch the heap: bulk work (scans, cache fills) sheds first,
//     point reads last.
//
//   - Deadline fast-fail. Requests carry a virtual-cycle deadline;
//     the serving loop arms it as a per-request allocation budget
//     (core.Mutator.SetAllocBudget), so a would-be convoy seat unwinds
//     promptly as ErrDeadlineExceeded instead of stalling through the
//     global retry budget.
//
//   - Emergency headroom. Under heap pressure the controller reserves an
//     emergency allocation headroom slice (the GC driver triggers as if
//     those bytes were already allocated) and can force an early cycle,
//     so the collector never enters a cycle with zero slack.
//
// A nil *Controller and a nil *Stats accept every call as a no-op costing
// one predictable branch — the same discipline as the telemetry,
// locality, and fault-injection planes.
package overload

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hcsgc/internal/faultinject"
	"hcsgc/internal/signals"
	"hcsgc/internal/telemetry"
)

// ErrOverload is the sentinel for a request rejected by admission
// control; match with errors.Is. The concrete error in the chain is an
// *Error carrying the controller state and the request's priority.
var ErrOverload = errors.New("overload: request shed by admission control")

// Error reports one shed admission decision.
type Error struct {
	// State is the controller state that shed the request.
	State State
	// Priority is the request's admission priority.
	Priority Priority
	// Seq is the request sequence number the decision hashed.
	Seq uint64
	// Forced marks a fault-injector-forced shed (chaos/testing).
	Forced bool
}

func (e *Error) Error() string {
	if e.Forced {
		return fmt.Sprintf("overload: request %d (%s) shed (injector-forced)", e.Seq, e.Priority)
	}
	return fmt.Sprintf("overload: request %d (%s) shed in state %s", e.Seq, e.Priority, e.State)
}

// Unwrap exposes the ErrOverload sentinel to errors.Is.
func (e *Error) Unwrap() error { return ErrOverload }

// Priority classifies requests for admission: bulk work is shed first,
// point operations last.
type Priority uint8

const (
	// PriorityPoint is a point operation (GET/SET/DELETE on one key):
	// shed only in StateShed.
	PriorityPoint Priority = iota
	// PriorityBulk is amplifying or deferrable work (scans, read-through
	// cache fills): shed from StateBrownout on.
	PriorityBulk
	// NumPriorities sizes per-priority tables.
	NumPriorities
)

var priorityNames = [NumPriorities]string{"point", "bulk"}

// String names the priority, e.g. "point".
func (p Priority) String() string {
	if p < NumPriorities {
		return priorityNames[p]
	}
	return fmt.Sprintf("Priority(%d)", uint8(p))
}

// State is the controller's admission state.
type State int32

const (
	// StateNormal admits everything.
	StateNormal State = iota
	// StateBrownout sheds bulk work (scans, fills) but admits point ops.
	StateBrownout
	// StateShed sheds all bulk work and a fraction of point ops.
	StateShed
	// NumStates sizes per-state tables.
	NumStates
)

var stateNames = [NumStates]string{"normal", "brownout", "shed"}

// String names the state, e.g. "brownout".
func (s State) String() string {
	if s >= 0 && s < NumStates {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Policy is the tunable half of the overload plane: pure configuration a
// bench harness can carry without touching the runtime. The zero value
// means "defaults" field-by-field (see WithDefaults).
type Policy struct {
	// DeadlineCycles is the per-request virtual-cycle budget propagated
	// from the load generator and armed as the allocation budget.
	DeadlineCycles uint64
	// MaxStallsPerRequest bounds the allocation stalls one request may
	// absorb before failing fast (0 = bounded only by the deadline).
	MaxStallsPerRequest int
	// MaxRetries is how many times the client retries a shed or expired
	// request (with jittered backoff) before counting it failed.
	// 0 = default (1); negative disables retries.
	MaxRetries int
	// RetryBackoffCycles is the base backoff charged before a retry; the
	// jittered wait grows linearly with the attempt number. Kept small by
	// default: in the sharded serving model the wait occupies the shard's
	// thread, so a long backoff is itself head-of-line blocking.
	RetryBackoffCycles uint64
	// GoodputSLOCycles is the latency bound under which a successful
	// request counts as goodput.
	GoodputSLOCycles uint64

	// BrownoutHeapPct / ShedHeapPct are live-occupancy escalation
	// thresholds (percent of heap max).
	BrownoutHeapPct float64
	ShedHeapPct     float64
	// StallEWMA escalates to at least Brownout when the signal plane's
	// per-cycle stall EWMA reaches it.
	StallEWMA float64
	// ShedStallBurst escalates straight to Shed when at least this many
	// allocation stalls landed since the previous poll (the live
	// convoy-in-progress signal; cycle-record flags are too stale to
	// de-escalate on convoy timescales). Default 3.
	ShedStallBurst uint64
	// ExitPolls is the hysteresis: consecutive calm polls required to
	// step the state down one level. Escalation is immediate.
	ExitPolls int
	// ShedPointFrac is the fraction of point ops shed in StateShed
	// (bulk work sheds fully there, and fully in Brownout).
	ShedPointFrac float64
	// BrownoutBulkFrac is the fraction of bulk ops shed in Brownout.
	BrownoutBulkFrac float64
	// EmergencyHeadroomBytes is the allocation headroom reserved while
	// the controller is at Brownout or above with heap pressure.
	EmergencyHeadroomBytes uint64
	// Seed keys the deterministic per-request shed hash.
	Seed int64
}

// WithDefaults fills zero fields with the defaults. NewController
// applies it; serving harnesses call it to read effective knobs (the
// deadline, retry budget, goodput SLO) off a possibly-zero policy.
func (p Policy) WithDefaults() Policy {
	if p.DeadlineCycles == 0 {
		p.DeadlineCycles = 2_000_000
	}
	if p.MaxStallsPerRequest == 0 {
		p.MaxStallsPerRequest = 2
	}
	switch {
	case p.MaxRetries == 0:
		p.MaxRetries = 1
	case p.MaxRetries < 0:
		p.MaxRetries = 0
	}
	if p.RetryBackoffCycles == 0 {
		p.RetryBackoffCycles = 4_000
	}
	if p.GoodputSLOCycles == 0 {
		p.GoodputSLOCycles = 1_000_000
	}
	// The occupancy thresholds sit above the trigger-to-cycle oscillation
	// band (the KV heap swings 70–90% in healthy operation): occupancy
	// alone escalates only when a cycle failed to reclaim, and the normal
	// escalation path is the signal plane's heap_pressure / stall_spike
	// flags, which fire on post-cycle state rather than instantaneous use.
	if p.BrownoutHeapPct == 0 {
		p.BrownoutHeapPct = 88
	}
	if p.ShedHeapPct == 0 {
		p.ShedHeapPct = 97
	}
	if p.StallEWMA == 0 {
		p.StallEWMA = 0.75
	}
	if p.ShedStallBurst == 0 {
		p.ShedStallBurst = 3
	}
	if p.ExitPolls == 0 {
		p.ExitPolls = 3
	}
	if p.ShedPointFrac == 0 {
		p.ShedPointFrac = 0.25
	}
	if p.BrownoutBulkFrac == 0 {
		p.BrownoutBulkFrac = 1
	}
	if p.EmergencyHeadroomBytes == 0 {
		p.EmergencyHeadroomBytes = 512 << 10
	}
	return p
}

// Hooks are the controller's levers into the runtime, wired per run by
// the serving harness. Any hook may be nil.
type Hooks struct {
	// HeapUsedPct returns live heap occupancy in percent.
	HeapUsedPct func() float64
	// Stalls returns the cumulative allocation-stall count (the
	// collector's global counter). The poll-to-poll delta is the
	// freshest convoy signal the controller has: cycle-record flags
	// only change when a GC cycle completes, which is far too coarse
	// to de-escalate on convoy timescales.
	Stalls func() uint64
	// SetHeadroom reserves (0 releases) emergency allocation headroom.
	SetHeadroom func(bytes uint64)
	// EmergencyGC requests an immediate collection cycle.
	EmergencyGC func()
}

// Controller is the admission-control state machine. Admit is lock-free
// (one atomic state load plus a seeded hash); Poll serializes internally
// and is meant to be called periodically from serving threads (every few
// dozen requests). All methods are safe on a nil receiver.
type Controller struct {
	pol   Policy
	plane *signals.Plane
	hooks Hooks
	inj   *faultinject.Injector
	stats *Stats

	state atomic.Int32
	// shedThresh[s][p] is the fixed-point shed probability for priority p
	// in state s, precomputed so Admit is one compare.
	shedThresh [NumStates][NumPriorities]uint64

	// mu guards the poll-side state; the poller reads the signal plane
	// while holding it, so it sits above Plane.mu in the global order.
	//
	//hcsgc:lock-order 50
	mu            sync.Mutex
	calmPolls     int
	headroomOn    bool
	lastStalls    uint64 // cumulative stall count at the previous poll
	stallsInit    bool
	lastEmergency uint64 // plane seq of the last emergency trigger
	firedOnce     bool   // an emergency fired before any plane record
	tState        *telemetry.Gauge
}

// NewController builds a controller over the given policy, signal plane,
// runtime hooks, and (optional) fault injector; decisions and outcomes
// are recorded into stats (which may be shared across runs; nil means
// "don't record").
func NewController(pol Policy, plane *signals.Plane, hooks Hooks, inj *faultinject.Injector, stats *Stats) *Controller {
	pol = pol.WithDefaults()
	ctrl := &Controller{pol: pol, plane: plane, hooks: hooks, inj: inj, stats: stats}
	ctrl.shedThresh[StateBrownout][PriorityBulk] = toThreshold(pol.BrownoutBulkFrac)
	ctrl.shedThresh[StateShed][PriorityBulk] = toThreshold(1)
	ctrl.shedThresh[StateShed][PriorityPoint] = toThreshold(pol.ShedPointFrac)
	return ctrl
}

// Policy returns the (defaulted) policy the controller runs.
func (ctrl *Controller) Policy() Policy {
	if ctrl == nil {
		return Policy{}.WithDefaults()
	}
	return ctrl.pol
}

// State returns the current admission state.
func (ctrl *Controller) State() State {
	if ctrl == nil {
		return StateNormal
	}
	return State(ctrl.state.Load())
}

// Poll re-evaluates the admission state from the latest signal-plane
// record and live heap occupancy, engages or releases emergency headroom,
// and (in Shed with heap pressure, at most once per GC cycle) forces an
// early collection. Returns the state in force after the poll.
func (ctrl *Controller) Poll() State {
	if ctrl == nil {
		return StateNormal
	}
	ctrl.mu.Lock()
	defer ctrl.mu.Unlock()

	var occ float64
	if ctrl.hooks.HeapUsedPct != nil {
		occ = ctrl.hooks.HeapUsedPct()
	}
	var stallEWMA float64
	var heapFlag, stallFlag bool
	var seq uint64
	if ctrl.plane != nil {
		if rec, ok := ctrl.plane.Latest(); ok {
			seq = rec.Seq
			for _, d := range rec.Derived {
				switch d.Name {
				case signals.SigStalls:
					stallEWMA = d.EWMA
				case signals.SigHeapUsed:
					// Between cycles the live reading can lag a burst; take
					// the worse of live and post-cycle EWMA.
					if d.EWMA > occ {
						occ = d.EWMA
					}
				}
			}
			for _, f := range rec.Flags {
				switch f {
				case signals.FlagHeapPressure:
					heapFlag = true
				case signals.FlagStallSpike:
					stallFlag = true
				}
			}
		}
	}

	// The live poll-to-poll stall delta is the primary escalation signal:
	// a convoy is forming NOW. Cycle-record flags and the occupancy
	// backstop catch sustained pressure, but they persist for a whole GC
	// cycle, so they only reach Brownout on their own — holding Shed for
	// millions of cycles after a 100k-cycle convoy drained sheds healthy
	// traffic for nothing.
	var stallDelta uint64
	if ctrl.hooks.Stalls != nil {
		cur := ctrl.hooks.Stalls()
		if ctrl.stallsInit {
			stallDelta = cur - ctrl.lastStalls
		}
		ctrl.lastStalls = cur
		ctrl.stallsInit = true
	}

	desired := StateNormal
	switch {
	case stallDelta >= ctrl.pol.ShedStallBurst ||
		(stallDelta > 0 && heapFlag) ||
		occ >= ctrl.pol.ShedHeapPct:
		desired = StateShed
	case stallDelta > 0 || occ >= ctrl.pol.BrownoutHeapPct ||
		heapFlag || stallFlag || stallEWMA >= ctrl.pol.StallEWMA:
		desired = StateBrownout
	}

	cur := State(ctrl.state.Load())
	next := cur
	switch {
	case desired > cur:
		// Escalate immediately: protection that waits for confirmation
		// arrives after the convoy has formed.
		next = desired
		ctrl.calmPolls = 0
	case desired < cur:
		// De-escalate one level at a time, only after ExitPolls calm
		// observations (the hysteresis that prevents flapping).
		ctrl.calmPolls++
		if ctrl.calmPolls >= ctrl.pol.ExitPolls {
			next = cur - 1
			ctrl.calmPolls = 0
		}
	default:
		ctrl.calmPolls = 0
	}
	if next != cur {
		ctrl.state.Store(int32(next))
		ctrl.stats.recordTransition()
		ctrl.tState.Set(float64(next))
	}

	// Emergency headroom: reserved while degraded under heap pressure so
	// the next cycle starts with slack; released when calm.
	engage := next >= StateBrownout && (heapFlag || occ >= ctrl.pol.BrownoutHeapPct)
	if engage != ctrl.headroomOn {
		ctrl.headroomOn = engage
		if ctrl.hooks.SetHeadroom != nil {
			if engage {
				ctrl.hooks.SetHeadroom(ctrl.pol.EmergencyHeadroomBytes)
			} else {
				ctrl.hooks.SetHeadroom(0)
			}
		}
	}

	// Early trigger: in Shed with heap pressure, force a cycle — once per
	// observed GC cycle, so a convoy of polls doesn't convoy the driver.
	force := ctrl.inj.ForceEmergency()
	if force || (next == StateShed && heapFlag) {
		if force || seq != ctrl.lastEmergency || !ctrl.firedOnce {
			ctrl.firedOnce = true
			ctrl.lastEmergency = seq
			if ctrl.hooks.EmergencyGC != nil {
				ctrl.hooks.EmergencyGC()
				ctrl.stats.recordEmergency()
			}
		}
	}
	return next
}

// Admit decides whether to accept a request. It returns nil to admit, or
// an *Error (wrapping ErrOverload) to shed; the decision is a pure
// function of (policy seed, request seq) given the current state, so a
// seeded run sheds a reproducible request subset. The shed decision
// happens before the request touches the heap.
func (ctrl *Controller) Admit(pri Priority, seq uint64) error {
	if ctrl == nil {
		return nil
	}
	ctrl.inj.At(faultinject.OverloadShed, seq)
	st, forced, shed := ctrl.shedDecision(pri, seq)
	if shed {
		ctrl.stats.recordShed(pri, forced)
		return &Error{State: st, Priority: pri, Seq: seq, Forced: forced}
	}
	ctrl.stats.recordAdmit()
	return nil
}

// shedDecision is the alloc-free core of Admit: the pure
// (state, forced, shed) verdict for request seq at priority pri. The
// split keeps the admit check on the request fast path provably
// allocation-free — the *Error is only materialized for the shed
// minority. The injection-point visit stays in Admit: hooks may run
// arbitrary test code.
//
//hcsgc:alloc-free
func (ctrl *Controller) shedDecision(pri Priority, seq uint64) (st State, forced, shed bool) {
	st = State(ctrl.state.Load())
	if ctrl.inj.ForceShed() {
		return st, true, true
	}
	if st == StateNormal {
		return st, false, false
	}
	th := ctrl.shedThresh[st][pri]
	return st, false, th != 0 && mix(uint64(ctrl.pol.Seed), seq) < th
}

// BindTelemetry registers the controller's state gauge and delegates to
// the stats accumulator's counters.
func (ctrl *Controller) BindTelemetry(reg *telemetry.Registry) {
	if ctrl == nil || reg == nil {
		return
	}
	ctrl.mu.Lock()
	ctrl.tState = reg.Gauge("hcsgc_overload_state",
		"Admission state: 0 normal, 1 brownout, 2 shed.")
	ctrl.tState.Set(float64(ctrl.state.Load()))
	ctrl.mu.Unlock()
	ctrl.stats.BindTelemetry(reg)
}

// Report snapshots the controller's state and its stats accumulator.
func (ctrl *Controller) Report() Report {
	if ctrl == nil {
		return Report{State: StateNormal.String()}
	}
	r := ctrl.stats.Report(ctrl.pol.GoodputSLOCycles)
	r.State = State(ctrl.state.Load()).String()
	return r
}

// toThreshold converts a probability to a uint64 compare target (the
// fixed-point trick the fault injector uses).
func toThreshold(p float64) uint64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return ^uint64(0)
	default:
		return uint64(p * float64(1<<63) * 2)
	}
}

// mix is splitmix64's output function over a seed/stream pair: the
// deterministic per-request shed hash.
func mix(seed, x uint64) uint64 {
	x = x*0x9e3779b97f4a7c15 + seed
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

package heap

import (
	"fmt"
	"sync/atomic"

	"hcsgc/internal/contention"
	"hcsgc/internal/faultinject"
)

// Page size classes per Table 1 of the paper, plus the "cache-line
// magnitude" Tiny class the paper proposes as future work (§3.4, §4.8),
// which this reproduction implements as an optional extension.
const (
	// SmallPageSize is 2 MB; small pages hold objects of (0, 256] KB.
	SmallPageSize = 2 << 20
	// SmallObjectMax is the largest object placed on a small page.
	SmallObjectMax = 256 << 10
	// MediumPageSize is 32 MB; medium pages hold objects of (256 KB, 4 MB].
	MediumPageSize = 32 << 20
	// MediumObjectMax is the largest object placed on a medium page.
	MediumObjectMax = 4 << 20
	// Granule is the unit of heap address allocation; large pages are a
	// multiple of it ("N x 2 (> 4) Mb" in Table 1).
	Granule = 2 << 20

	// TinyPageSize and TinyObjectMax define the extension class: a page
	// whose max object size is of cache-line magnitude, enabling
	// fine-grained relocation. Disabled unless Config.EnableTinyClass.
	TinyPageSize  = 64 << 10
	TinyObjectMax = 256
)

// Class identifies the size class of a page.
type Class uint8

// The page classes. ClassTiny participates only when the extension is on.
const (
	ClassTiny Class = iota
	ClassSmall
	ClassMedium
	ClassLarge
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassTiny:
		return "tiny"
	case ClassSmall:
		return "small"
	case ClassMedium:
		return "medium"
	case ClassLarge:
		return "large"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Page is one region of the simulated heap. Object data lives in words;
// the page's simulated address range is [Start, Start+Size). Metadata
// (livemap, hotmap, forwarding) mirrors ZGC's per-page structures.
type Page struct {
	start uint64
	size  uint64
	class Class
	// Seq is the global allocation sequence number of the page; EC
	// selection only considers pages allocated before the cycle began
	// ("allocated prior to STW1", §2.2).
	Seq uint64

	words []uint64
	// top is the bump pointer: the next free simulated address.
	top atomic.Uint64

	livemap *Bitmap
	hotmap  *Bitmap
	// liveBytes/hotBytes/liveObjects are accumulated during marking.
	liveBytes   atomic.Uint64
	hotBytes    atomic.Uint64
	liveObjects atomic.Int64

	// fwd is installed when the page is selected for evacuation.
	fwd atomic.Pointer[ForwardTable]
	// inEC marks the page as an evacuation candidate for the current
	// relocation era.
	inEC atomic.Bool
	// remaining counts live objects not yet relocated; hitting zero allows
	// the page to be recycled.
	remaining atomic.Int64
	// freed marks a recycled page (address space retired, backing kept
	// until the forwarding registry is dropped at next mark end).
	freed atomic.Bool

	// inj is the heap's fault-injection plane (nil when disarmed), copied
	// here so UndoAlloc's race window can be perturbed without a heap
	// back-pointer.
	inj *faultinject.Injector
	// casAlloc/casFwd are the heap-wide CAS attribution sites for the
	// bump-pointer and forwarding-table loops (nil when the contention
	// plane is opted out).
	casAlloc *contention.OpSite
	casFwd   *contention.OpSite
}

// newPage wires a page over a fresh address range with a backing slice.
func newPage(start, size uint64, class Class, seq uint64, backing []uint64) *Page {
	p := &Page{start: start, size: size, class: class, Seq: seq, words: backing}
	p.top.Store(start)
	bits := int(size / WordSize)
	p.livemap = NewBitmap(bits)
	p.hotmap = NewBitmap(bits)
	return p
}

// Start returns the page's first simulated address.
func (p *Page) Start() uint64 { return p.start }

// Size returns the page size in bytes.
func (p *Page) Size() uint64 { return p.size }

// End returns one past the last simulated address.
func (p *Page) End() uint64 { return p.start + p.size }

// Class returns the page's size class.
//
//hcsgc:alloc-free
func (p *Page) Class() Class { return p.class }

// Contains reports whether addr falls inside the page.
func (p *Page) Contains(addr uint64) bool { return addr >= p.start && addr < p.End() }

// WordIndex converts a simulated address within the page to a word offset.
//
//hcsgc:alloc-free
func (p *Page) WordIndex(addr uint64) uint64 { return (addr - p.start) / WordSize }

// AllocRaw bump-allocates size bytes (word aligned), returning the object
// address or 0 when the page is full. Safe for concurrent use.
func (p *Page) AllocRaw(size uint64) uint64 {
	size = (size + WordSize - 1) &^ uint64(WordSize-1)
	for {
		old := p.top.Load()
		if old+size > p.End() {
			return 0
		}
		if p.top.CompareAndSwap(old, old+size) {
			p.casAlloc.Op()
			return old
		}
		p.casAlloc.Retry()
	}
}

// UndoAlloc returns the most recent allocation if nothing allocated after
// it; used by relocation losers to give back their discarded copy. Reports
// whether the space was reclaimed.
func (p *Page) UndoAlloc(addr, size uint64) bool {
	size = (size + WordSize - 1) &^ uint64(WordSize-1)
	p.inj.At(faultinject.UndoAllocPre, addr)
	if p.top.Load() != addr+size {
		return false
	}
	// Scrub the discarded copy before handing the space back: allocation
	// writes only the object header and relies on page memory being zero
	// (fields start as null refs), so the region must not keep the loser
	// copy's stale reference words. The copy is still private here — its
	// address lost the forwarding race and was never published — whereas
	// after the CAS below a concurrent AllocRaw may reuse the region
	// immediately.
	base := p.WordIndex(addr)
	for i := uint64(0); i < size/WordSize; i++ {
		p.storeWord(base+i, 0)
	}
	p.inj.At(faultinject.UndoAllocPost, addr)
	return p.top.CompareAndSwap(addr+size, addr)
}

// UsedBytes returns the bytes consumed by the bump pointer.
func (p *Page) UsedBytes() uint64 { return p.top.Load() - p.start }

// FreeBytes returns the bytes remaining for allocation.
func (p *Page) FreeBytes() uint64 { return p.End() - p.top.Load() }

// loadWord/storeWord/casWord operate on the backing store with atomic
// semantics so that application-level races and concurrent GC copying are
// well defined for Go's race detector.

func (p *Page) loadWord(idx uint64) uint64 {
	return atomic.LoadUint64(&p.words[idx])
}

func (p *Page) storeWord(idx uint64, v uint64) {
	atomic.StoreUint64(&p.words[idx], v)
}

func (p *Page) casWord(idx uint64, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&p.words[idx], old, new)
}

// MarkLive sets the live bit for the object at addr of the given byte
// size; returns true if this call marked it (first marker wins and
// accounts the live bytes). Parallel-mark hot path: alloc-free.
//
//hcsgc:alloc-free
func (p *Page) MarkLive(addr, size uint64) bool {
	if !p.livemap.TestAndSet(int(p.WordIndex(addr))) {
		return false
	}
	p.liveBytes.Add(size)
	p.liveObjects.Add(1)
	return true
}

// IsLive reports whether the object at addr was marked in this cycle.
func (p *Page) IsLive(addr uint64) bool {
	return p.livemap.Get(int(p.WordIndex(addr)))
}

// MarkHot sets the hot bit for the object at addr (paper §3.1.2); returns
// true if this call set it, in which case the caller's size is added to
// the page's hot bytes. Barrier/mark hot path: alloc-free.
//
//hcsgc:alloc-free
func (p *Page) MarkHot(addr, size uint64) bool {
	if !p.hotmap.TestAndSet(int(p.WordIndex(addr))) {
		return false
	}
	p.hotBytes.Add(size)
	return true
}

// IsHot reports whether the object at addr is flagged hot.
func (p *Page) IsHot(addr uint64) bool {
	return p.hotmap.Get(int(p.WordIndex(addr)))
}

// ResetMarks clears livemap, hotmap and the per-page accumulators. Called
// at mark start, which "renders all objects cold effectively" (§3.1.2).
func (p *Page) ResetMarks() {
	p.livemap.Clear()
	p.hotmap.Clear()
	p.liveBytes.Store(0)
	p.hotBytes.Store(0)
	p.liveObjects.Store(0)
}

// LiveBytes returns the bytes of marked objects.
func (p *Page) LiveBytes() uint64 { return p.liveBytes.Load() }

// HotBytes returns the bytes of hot-marked objects.
func (p *Page) HotBytes() uint64 { return p.hotBytes.Load() }

// ColdBytes returns live bytes minus hot bytes. Hot objects are always a
// subset of live objects (both are recorded during the same mark).
func (p *Page) ColdBytes() uint64 {
	lb, hb := p.liveBytes.Load(), p.hotBytes.Load()
	if hb > lb {
		return 0
	}
	return lb - hb
}

// LiveObjects returns the marked object count.
func (p *Page) LiveObjects() int64 { return p.liveObjects.Load() }

// LiveRatio returns live bytes over page size.
func (p *Page) LiveRatio() float64 { return float64(p.LiveBytes()) / float64(p.size) }

// WeightedLiveBytes implements the paper's §3.1.3 formula:
//
//	WLB = cold bytes                                  if hot bytes == 0
//	WLB = hot bytes + cold bytes * (1 - coldConf)     otherwise
func (p *Page) WeightedLiveBytes(coldConfidence float64) uint64 {
	hot, cold := p.HotBytes(), p.ColdBytes()
	if hot == 0 {
		return cold
	}
	return hot + uint64(float64(cold)*(1-coldConfidence))
}

// SelectForEvacuation installs a forwarding table sized for the page's
// live-object count and flags the page as an evacuation candidate.
func (p *Page) SelectForEvacuation() {
	n := int(p.liveObjects.Load())
	t := NewForwardTable(n)
	t.cas = p.casFwd
	p.fwd.Store(t)
	p.remaining.Store(int64(n))
	p.inEC.Store(true)
}

// InEC reports whether the page is an evacuation candidate.
func (p *Page) InEC() bool { return p.inEC.Load() }

// Forwarding returns the page's forwarding table, or nil when the page is
// not (or no longer) an evacuation candidate of the current era.
//
//hcsgc:alloc-free
func (p *Page) Forwarding() *ForwardTable { return p.fwd.Load() }

// ObjectRelocated decrements the not-yet-relocated count and reports
// whether this was the last live object (page now fully evacuated).
func (p *Page) ObjectRelocated() bool {
	return p.remaining.Add(-1) == 0
}

// Remaining returns the number of live objects still to relocate.
func (p *Page) Remaining() int64 { return p.remaining.Load() }

// MarkFreed flags the page as recycled.
func (p *Page) MarkFreed() { p.freed.Store(true) }

// Freed reports whether the page has been recycled.
func (p *Page) Freed() bool { return p.freed.Load() }

// DropForwarding releases the forwarding table and backing store; called
// when the forwarding registry is dropped at the end of the next mark, at
// which point no stale pointers into this page can remain.
func (p *Page) DropForwarding() {
	p.fwd.Store(nil)
	p.inEC.Store(false)
	p.words = nil
	p.livemap = nil
	p.hotmap = nil
}

// Livemap exposes the page's live bitmap for the relocation drain, which
// walks live objects in address order.
func (p *Page) Livemap() *Bitmap { return p.livemap }

// Hotmap exposes the page's hot bitmap for the STW verifier's
// hotmap ⊆ livemap check.
func (p *Page) Hotmap() *Bitmap { return p.hotmap }

// String summarises the page for logs.
func (p *Page) String() string {
	return fmt.Sprintf("page{%s %#x+%dK live=%d hot=%d}",
		p.class, p.start, p.size>>10, p.LiveBytes(), p.HotBytes())
}

// ClassFor returns the page class for an object of the given byte size,
// honouring the optional tiny class.
func ClassFor(size uint64, tinyEnabled bool) Class {
	switch {
	case tinyEnabled && size <= TinyObjectMax:
		return ClassTiny
	case size <= SmallObjectMax:
		return ClassSmall
	case size <= MediumObjectMax:
		return ClassMedium
	default:
		return ClassLarge
	}
}

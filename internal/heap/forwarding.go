package heap

import (
	"sync/atomic"

	"hcsgc/internal/contention"
)

// ForwardTable maps the word offsets of relocated objects on one evacuated
// page to their new addresses. It is a lock-free open-addressing hash table
// sized for the page's live-object count; the CAS that claims a slot is the
// linearization point for the mutator-vs-GC relocation race described in
// §2.2 (RE) of the paper: whoever wins the CAS has relocated the object,
// losers discard their copy and adopt the winner's address.
type ForwardTable struct {
	keys []atomic.Uint64 // offset+1; 0 = empty
	vals []atomic.Uint64 // new address; 0 = claim in progress
	mask uint64
	used atomic.Int64
	// cas attributes slot-claim races to the contention plane (nil when
	// opted out).
	cas *contention.OpSite
}

// NewForwardTable builds a table with capacity for at least n entries.
// The table never resizes; callers size it from the page's live-object
// count which is exact after marking.
func NewForwardTable(n int) *ForwardTable {
	capacity := 16
	for capacity < n*2 {
		capacity *= 2
	}
	return &ForwardTable{
		keys: make([]atomic.Uint64, capacity),
		vals: make([]atomic.Uint64, capacity),
		mask: uint64(capacity - 1),
	}
}

// hashOffset mixes a word offset into a probe start index.
func hashOffset(off uint64) uint64 {
	off ^= off >> 16
	off *= 0x9e3779b97f4a7c15
	return off ^ off>>32
}

// Insert records that the object at word offset off now lives at newAddr.
// It returns the address that ends up in the table and whether this caller
// won the race (won=false means another thread already inserted; the
// returned address is theirs and the caller must discard its copy).
func (t *ForwardTable) Insert(off uint64, newAddr uint64) (addr uint64, won bool) {
	key := off + 1
	i := hashOffset(off) & t.mask
	for {
		k := t.keys[i].Load()
		if k == key {
			t.cas.Op()
			return t.waitVal(i), false
		}
		if k == 0 {
			if t.keys[i].CompareAndSwap(0, key) {
				t.vals[i].Store(newAddr)
				t.used.Add(1)
				t.cas.Op()
				return newAddr, true
			}
			t.cas.Retry()
			continue // re-examine the slot we lost
		}
		i = (i + 1) & t.mask
	}
}

// Lookup returns the forwarded address for off, or 0 if the object has not
// been relocated (yet). Remap fast path: alloc-free.
//
//hcsgc:alloc-free
func (t *ForwardTable) Lookup(off uint64) uint64 {
	key := off + 1
	i := hashOffset(off) & t.mask
	for {
		k := t.keys[i].Load()
		if k == 0 {
			return 0
		}
		if k == key {
			return t.waitVal(i)
		}
		i = (i + 1) & t.mask
	}
}

// waitVal spins until the claimant of slot i has published its value.
// The publish follows the claim immediately, so the spin is bounded by one
// goroutine preemption in practice.
func (t *ForwardTable) waitVal(i uint64) uint64 {
	for {
		if v := t.vals[i].Load(); v != 0 {
			return v
		}
	}
}

// ForEach calls fn for every inserted (offset, forwarded address) pair, in
// table order. Entries whose value is still being published (claim won,
// value store pending) are reported with addr 0; under STW — the only place
// the verifier walks tables — no claim can be in flight, so a zero there is
// itself an anomaly worth reporting.
func (t *ForwardTable) ForEach(fn func(off, addr uint64)) {
	for i := range t.keys {
		k := t.keys[i].Load()
		if k == 0 {
			continue
		}
		fn(k-1, t.vals[i].Load())
	}
}

// Len returns the number of inserted entries.
func (t *ForwardTable) Len() int { return int(t.used.Load()) }

// Cap returns the table's slot capacity.
func (t *ForwardTable) Cap() int { return len(t.keys) }

package heap

import (
	"sync"
	"testing"
)

func testPage(class Class) *Page {
	size := uint64(SmallPageSize)
	if class == ClassMedium {
		size = MediumPageSize
	}
	return newPage(Granule, size, class, 1, make([]uint64, size/WordSize))
}

func TestPageSizeClassesMatchTable1(t *testing.T) {
	// Table 1 of the paper.
	if SmallPageSize != 2<<20 {
		t.Errorf("small page = %d, want 2MB", SmallPageSize)
	}
	if SmallObjectMax != 256<<10 {
		t.Errorf("small object max = %d, want 256KB", SmallObjectMax)
	}
	if MediumPageSize != 32<<20 {
		t.Errorf("medium page = %d, want 32MB", MediumPageSize)
	}
	if MediumObjectMax != 4<<20 {
		t.Errorf("medium object max = %d, want 4MB", MediumObjectMax)
	}
	if Granule != 2<<20 {
		t.Errorf("granule = %d, want 2MB (large pages are Nx2MB)", Granule)
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		size uint64
		tiny bool
		want Class
	}{
		{8, false, ClassSmall},
		{SmallObjectMax, false, ClassSmall},
		{SmallObjectMax + 1, false, ClassMedium},
		{MediumObjectMax, false, ClassMedium},
		{MediumObjectMax + 1, false, ClassLarge},
		{64 << 20, false, ClassLarge},
		{8, true, ClassTiny},
		{TinyObjectMax, true, ClassTiny},
		{TinyObjectMax + 1, true, ClassSmall},
	}
	for _, tc := range cases {
		if got := ClassFor(tc.size, tc.tiny); got != tc.want {
			t.Errorf("ClassFor(%d, tiny=%v) = %v, want %v", tc.size, tc.tiny, got, tc.want)
		}
	}
}

func TestPageBumpAllocation(t *testing.T) {
	p := testPage(ClassSmall)
	a1 := p.AllocRaw(32)
	a2 := p.AllocRaw(32)
	if a1 == 0 || a2 == 0 {
		t.Fatal("allocations should succeed")
	}
	if a2 != a1+32 {
		t.Fatalf("bump allocation not contiguous: %#x then %#x", a1, a2)
	}
	if p.UsedBytes() != 64 {
		t.Fatalf("UsedBytes = %d, want 64", p.UsedBytes())
	}
}

func TestPageAllocAlignment(t *testing.T) {
	p := testPage(ClassSmall)
	a1 := p.AllocRaw(13) // rounds to 16
	a2 := p.AllocRaw(8)
	if a2 != a1+16 {
		t.Fatalf("13-byte alloc should round to 16: %#x then %#x", a1, a2)
	}
	if a1%WordSize != 0 || a2%WordSize != 0 {
		t.Fatal("allocations must be word aligned")
	}
}

func TestPageAllocExhaustion(t *testing.T) {
	p := testPage(ClassSmall)
	n := 0
	for p.AllocRaw(SmallObjectMax) != 0 {
		n++
	}
	if n != SmallPageSize/SmallObjectMax {
		t.Fatalf("allocated %d max-size objects, want %d", n, SmallPageSize/SmallObjectMax)
	}
	if p.AllocRaw(8) != 0 {
		t.Fatal("full page must refuse allocation")
	}
	if p.FreeBytes() != 0 {
		t.Fatalf("FreeBytes = %d on full page", p.FreeBytes())
	}
}

func TestPageUndoAlloc(t *testing.T) {
	p := testPage(ClassSmall)
	a := p.AllocRaw(64)
	if !p.UndoAlloc(a, 64) {
		t.Fatal("undo of latest allocation must succeed")
	}
	if got := p.AllocRaw(64); got != a {
		t.Fatalf("space not reclaimed: got %#x, want %#x", got, a)
	}
	// Undo fails if someone allocated after us.
	b := p.AllocRaw(32)
	p.AllocRaw(32)
	if p.UndoAlloc(b, 32) {
		t.Fatal("undo with later allocation must fail")
	}
}

func TestPageConcurrentAllocNoOverlap(t *testing.T) {
	p := testPage(ClassSmall)
	const goroutines = 8
	const perG = 1000
	addrs := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		addrs[g] = make([]uint64, 0, perG)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if a := p.AllocRaw(32); a != 0 {
					addrs[id] = append(addrs[id], a)
				}
			}
		}(g)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for _, list := range addrs {
		for _, a := range list {
			if seen[a] {
				t.Fatalf("address %#x allocated twice", a)
			}
			seen[a] = true
			if a%WordSize != 0 || !p.Contains(a) {
				t.Fatalf("bad address %#x", a)
			}
		}
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("allocated %d, want %d", len(seen), goroutines*perG)
	}
}

func TestPageMarkLiveAccounting(t *testing.T) {
	p := testPage(ClassSmall)
	a := p.AllocRaw(32)
	b := p.AllocRaw(64)
	if !p.MarkLive(a, 32) {
		t.Fatal("first MarkLive must win")
	}
	if p.MarkLive(a, 32) {
		t.Fatal("second MarkLive must lose")
	}
	p.MarkLive(b, 64)
	if p.LiveBytes() != 96 || p.LiveObjects() != 2 {
		t.Fatalf("live=%d objects=%d, want 96/2", p.LiveBytes(), p.LiveObjects())
	}
	if !p.IsLive(a) || !p.IsLive(b) {
		t.Fatal("IsLive must reflect marks")
	}
	wantRatio := 96.0 / float64(SmallPageSize)
	if got := p.LiveRatio(); got != wantRatio {
		t.Fatalf("LiveRatio = %v, want %v", got, wantRatio)
	}
}

func TestPageHotColdAccounting(t *testing.T) {
	p := testPage(ClassSmall)
	a := p.AllocRaw(32)
	b := p.AllocRaw(32)
	c := p.AllocRaw(64)
	for _, obj := range []struct{ addr, size uint64 }{{a, 32}, {b, 32}, {c, 64}} {
		p.MarkLive(obj.addr, obj.size)
	}
	p.MarkHot(a, 32)
	if p.MarkHot(a, 32) {
		t.Fatal("second MarkHot must lose")
	}
	if p.HotBytes() != 32 {
		t.Fatalf("HotBytes = %d, want 32", p.HotBytes())
	}
	if p.ColdBytes() != 96 {
		t.Fatalf("ColdBytes = %d, want 96", p.ColdBytes())
	}
	if !p.IsHot(a) || p.IsHot(b) {
		t.Fatal("IsHot wrong")
	}
}

func TestWeightedLiveBytesFormula(t *testing.T) {
	// Paper §3.1.3. Page with hot=100, cold=300:
	//   conf 0.0 -> 100+300 = 400 (plain live bytes, ZGC behaviour)
	//   conf 0.5 -> 100+150 = 250
	//   conf 1.0 -> 100     (cold treated as garbage)
	// Page with hot=0, cold=400 -> always 400.
	p := testPage(ClassSmall)
	hot := p.AllocRaw(100)
	cold := p.AllocRaw(300)
	p.MarkLive(hot, 100)
	p.MarkLive(cold, 300)
	p.MarkHot(hot, 100)
	cases := []struct {
		conf float64
		want uint64
	}{{0, 400}, {0.5, 250}, {1.0, 100}}
	for _, tc := range cases {
		if got := p.WeightedLiveBytes(tc.conf); got != tc.want {
			t.Errorf("WLB(conf=%v) = %d, want %d", tc.conf, got, tc.want)
		}
	}

	allCold := testPage(ClassSmall)
	c1 := allCold.AllocRaw(400)
	allCold.MarkLive(c1, 400)
	for _, conf := range []float64{0, 0.5, 1.0} {
		if got := allCold.WeightedLiveBytes(conf); got != 400 {
			t.Errorf("all-cold WLB(conf=%v) = %d, want 400 (degrades to live bytes)", conf, got)
		}
	}
}

func TestResetMarksRendersAllCold(t *testing.T) {
	p := testPage(ClassSmall)
	a := p.AllocRaw(32)
	p.MarkLive(a, 32)
	p.MarkHot(a, 32)
	p.ResetMarks()
	if p.LiveBytes() != 0 || p.HotBytes() != 0 || p.LiveObjects() != 0 {
		t.Fatal("ResetMarks must clear accumulators")
	}
	if p.IsLive(a) || p.IsHot(a) {
		t.Fatal("ResetMarks must clear bitmaps")
	}
}

func TestSelectForEvacuationLifecycle(t *testing.T) {
	p := testPage(ClassSmall)
	a := p.AllocRaw(32)
	b := p.AllocRaw(32)
	p.MarkLive(a, 32)
	p.MarkLive(b, 32)
	if p.InEC() {
		t.Fatal("page must not start in EC")
	}
	p.SelectForEvacuation()
	if !p.InEC() || p.Forwarding() == nil {
		t.Fatal("SelectForEvacuation must install forwarding and flag EC")
	}
	if p.Remaining() != 2 {
		t.Fatalf("Remaining = %d, want 2", p.Remaining())
	}
	if p.ObjectRelocated() {
		t.Fatal("first relocation is not the last")
	}
	if !p.ObjectRelocated() {
		t.Fatal("second relocation should complete the page")
	}
}

func TestDropForwarding(t *testing.T) {
	p := testPage(ClassSmall)
	a := p.AllocRaw(32)
	p.MarkLive(a, 32)
	p.SelectForEvacuation()
	p.DropForwarding()
	if p.Forwarding() != nil || p.InEC() {
		t.Fatal("DropForwarding must clear table and EC flag")
	}
}

func TestPageContainsAndWordIndex(t *testing.T) {
	p := testPage(ClassSmall)
	if !p.Contains(p.Start()) || !p.Contains(p.End()-1) || p.Contains(p.End()) || p.Contains(p.Start()-1) {
		t.Fatal("Contains boundary behaviour wrong")
	}
	if p.WordIndex(p.Start()) != 0 || p.WordIndex(p.Start()+24) != 3 {
		t.Fatal("WordIndex wrong")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassTiny: "tiny", ClassSmall: "small", ClassMedium: "medium", ClassLarge: "large",
	} {
		if c.String() != want {
			t.Errorf("Class %d String = %q, want %q", c, c.String(), want)
		}
	}
}

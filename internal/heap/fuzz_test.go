package heap

import "testing"

// FuzzRefRoundTrip fuzzes the colored-reference encoding: any address and
// any legal color must round-trip, and recoloring must never disturb the
// address bits.
func FuzzRefRoundTrip(f *testing.F) {
	f.Add(uint64(0x200000), uint8(0))
	f.Add(uint64(AddrMask), uint8(2))
	f.Add(^uint64(0), uint8(1))
	colors := []Color{ColorMarked0, ColorMarked1, ColorRemapped}
	f.Fuzz(func(t *testing.T, addr uint64, ci uint8) {
		c := colors[int(ci)%len(colors)]
		r := MakeRef(addr, c)
		if r.Addr() != addr&AddrMask {
			t.Fatalf("addr %#x -> %#x", addr, r.Addr())
		}
		if r.Color() != c {
			t.Fatalf("color %v -> %v", c, r.Color())
		}
		for _, c2 := range colors {
			r2 := r.Recolor(c2)
			if r2.Addr() != r.Addr() || r2.Color() != c2 {
				t.Fatalf("recolor corrupted ref: %v -> %v", r, r2)
			}
		}
	})
}

// FuzzForwardTable fuzzes insert/lookup sequences: the first insert per
// offset wins, later inserts return the winner, lookups agree.
func FuzzForwardTable(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2}, uint8(4))
	f.Add([]byte{0, 0, 0}, uint8(1))
	f.Fuzz(func(t *testing.T, offs []byte, sizeHint uint8) {
		ft := NewForwardTable(int(sizeHint)%64 + 1)
		want := map[uint64]uint64{}
		for i, b := range offs {
			if len(want) >= ft.Cap()/2 {
				break // respect the declared capacity contract
			}
			off := uint64(b)
			val := uint64(0x1000 + i*8)
			got, won := ft.Insert(off, val)
			if prev, seen := want[off]; seen {
				if won || got != prev {
					t.Fatalf("offset %d: second insert won=%v got=%#x want %#x", off, won, got, prev)
				}
			} else {
				if !won || got != val {
					t.Fatalf("offset %d: first insert won=%v got=%#x", off, won, got)
				}
				want[off] = val
			}
		}
		for off, val := range want {
			if got := ft.Lookup(off); got != val {
				t.Fatalf("lookup(%d) = %#x, want %#x", off, got, val)
			}
		}
	})
}

// FuzzBitmap fuzzes set sequences against a map model.
func FuzzBitmap(f *testing.F) {
	f.Add([]byte{1, 5, 1, 63, 64})
	f.Fuzz(func(t *testing.T, idxs []byte) {
		b := NewBitmap(256)
		model := map[int]bool{}
		for _, raw := range idxs {
			i := int(raw)
			first := b.TestAndSet(i)
			if first == model[i] {
				t.Fatalf("bit %d: TestAndSet=%v but model says set=%v", i, first, model[i])
			}
			model[i] = true
		}
		if b.Count() != len(model) {
			t.Fatalf("count %d != model %d", b.Count(), len(model))
		}
	})
}

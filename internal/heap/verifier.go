package heap

import (
	"fmt"
	"sync"

	"hcsgc/internal/telemetry"
)

// The verifier's invariant checks. Each violation is attributed to one of
// these; the telemetry counter hcsgc_verify_violations_total carries the
// check name as a label.
const (
	// CheckStaleRef: a marked object holds a non-null ref whose color is
	// not the cycle's good color after mark termination.
	CheckStaleRef = "stale-ref"
	// CheckUnmarkedRef: a marked object points at an object the mark
	// declared dead (or at unmapped address space).
	CheckUnmarkedRef = "unmarked-ref"
	// CheckForwardDest: a forwarding-table entry points outside a live
	// destination page.
	CheckForwardDest = "forward-dest"
	// CheckHotmapSubset: a page has a hot bit set on a word the livemap
	// did not mark (hotness must be a subset of liveness).
	CheckHotmapSubset = "hotmap-subset"
	// CheckAccounting: Σ live-page sizes diverged from the heap's
	// usedBytes budget.
	CheckAccounting = "accounting"
	// CheckObjectBounds: a marked object's header implies it spans past
	// its page (and therefore a granule boundary).
	CheckObjectBounds = "object-bounds"
)

// VerifyChecks lists every check name, for eager telemetry registration
// and report layouts.
var VerifyChecks = []string{
	CheckStaleRef, CheckUnmarkedRef, CheckForwardDest,
	CheckHotmapSubset, CheckAccounting, CheckObjectBounds,
}

// Violation is one invariant failure with enough context to locate it:
// which check, at which phase boundary, on which page, at which address.
type Violation struct {
	Check     string
	Phase     string
	PageStart uint64
	Addr      uint64
	Detail    string
}

// String renders the violation for logs and chaos-soak artifacts.
func (v Violation) String() string {
	return fmt.Sprintf("%s@%s page=%#x addr=%#x: %s", v.Check, v.Phase, v.PageStart, v.Addr, v.Detail)
}

// maxViolationDetails bounds the retained Violation records; counts keep
// accumulating past the bound so a violation storm cannot balloon memory.
const maxViolationDetails = 64

// Verifier collects invariant violations from the STW heap walks the
// collector runs at phase boundaries. It deliberately records instead of
// panicking: a chaos soak wants to finish the run, count what broke, and
// print a reproducer seed — and production telemetry wants a counter, not
// a crash. Methods are safe for concurrent use, though the collector only
// drives it under STW.
type Verifier struct {
	mu         sync.Mutex
	runs       uint64
	total      uint64
	violations []Violation
	perPage    map[uint64]uint64
	perCheck   map[string]uint64

	// telemetry handles; nil-safe when BindTelemetry was never called.
	runsCtr  *telemetry.Counter
	violCtrs map[string]*telemetry.Counter
}

// NewVerifier returns an empty verifier ready to attach via
// Heap.SetVerifier.
func NewVerifier() *Verifier {
	return &Verifier{
		perPage:  make(map[uint64]uint64),
		perCheck: make(map[string]uint64),
	}
}

// BindTelemetry registers the hcsgc_verify_* metric families on reg and
// mirrors every subsequent Report/BeginRun into them.
func (v *Verifier) BindTelemetry(reg *telemetry.Registry) {
	if v == nil || reg == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.runsCtr = reg.Counter("hcsgc_verify_runs_total",
		"STW heap verifier passes completed.")
	v.violCtrs = make(map[string]*telemetry.Counter, len(VerifyChecks))
	for _, check := range VerifyChecks {
		v.violCtrs[check] = reg.Counter("hcsgc_verify_violations_total",
			"Heap invariant violations found by the STW verifier.", "check", check)
	}
}

// BeginRun counts one verifier pass (one phase boundary).
func (v *Verifier) BeginRun() {
	if v == nil {
		return
	}
	v.mu.Lock()
	v.runs++
	ctr := v.runsCtr
	v.mu.Unlock()
	ctr.Inc()
}

// Report records one violation.
func (v *Verifier) Report(check, phase string, pageStart, addr uint64, detail string) {
	if v == nil {
		return
	}
	v.mu.Lock()
	v.total++
	v.perCheck[check]++
	if pageStart != 0 {
		v.perPage[pageStart]++
	}
	if len(v.violations) < maxViolationDetails {
		v.violations = append(v.violations, Violation{
			Check: check, Phase: phase, PageStart: pageStart, Addr: addr, Detail: detail,
		})
	}
	ctr := v.violCtrs[check]
	v.mu.Unlock()
	ctr.Inc()
}

// Runs returns the number of verifier passes.
func (v *Verifier) Runs() uint64 {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.runs
}

// Total returns the number of violations recorded (including those past
// the detail-retention bound).
func (v *Verifier) Total() uint64 {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.total
}

// Counts returns the pass and violation totals in one consistent
// snapshot — the latency flight recorder reads both at every cycle
// boundary, and two separate locked reads could tear across a concurrent
// Report.
func (v *Verifier) Counts() (runs, violations uint64) {
	if v == nil {
		return 0, 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.runs, v.total
}

// Violations returns a copy of the retained violation records (at most
// maxViolationDetails; Total counts all of them).
func (v *Verifier) Violations() []Violation {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]Violation, len(v.violations))
	copy(out, v.violations)
	return out
}

// PageViolations returns the violation count attributed to the page
// starting at pageStart; the heap map renderer flags such pages.
func (v *Verifier) PageViolations(pageStart uint64) uint64 {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.perPage[pageStart]
}

// ByCheck snapshots the violation counts per check name.
func (v *Verifier) ByCheck() map[string]uint64 {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]uint64, len(v.perCheck))
	for k, n := range v.perCheck {
		out[k] = n
	}
	return out
}

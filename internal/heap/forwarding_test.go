package heap

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForwardInsertLookup(t *testing.T) {
	ft := NewForwardTable(8)
	addr, won := ft.Insert(10, 0xbeef0)
	if !won || addr != 0xbeef0 {
		t.Fatalf("first insert: addr=%#x won=%v", addr, won)
	}
	if got := ft.Lookup(10); got != 0xbeef0 {
		t.Fatalf("Lookup = %#x, want 0xbeef0", got)
	}
	if got := ft.Lookup(11); got != 0 {
		t.Fatalf("absent Lookup = %#x, want 0", got)
	}
	if ft.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ft.Len())
	}
}

func TestForwardLoserAdoptsWinner(t *testing.T) {
	ft := NewForwardTable(8)
	ft.Insert(42, 0x1000)
	addr, won := ft.Insert(42, 0x2000)
	if won {
		t.Fatal("second insert must lose")
	}
	if addr != 0x1000 {
		t.Fatalf("loser got %#x, want winner's 0x1000", addr)
	}
	if ft.Len() != 1 {
		t.Fatalf("Len = %d after duplicate insert, want 1", ft.Len())
	}
}

func TestForwardOffsetZero(t *testing.T) {
	// Offset 0 is a valid first-object-in-page offset; keys are offset+1 so
	// it must not collide with the empty marker.
	ft := NewForwardTable(4)
	if _, won := ft.Insert(0, 0x8); !won {
		t.Fatal("insert at offset 0 should win")
	}
	if got := ft.Lookup(0); got != 0x8 {
		t.Fatalf("Lookup(0) = %#x, want 0x8", got)
	}
}

func TestForwardCapacitySizing(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		ft := NewForwardTable(n)
		if ft.Cap() < n*2 && n > 0 {
			t.Errorf("NewForwardTable(%d).Cap() = %d, want >= %d", n, ft.Cap(), n*2)
		}
		if c := ft.Cap(); c&(c-1) != 0 {
			t.Errorf("capacity %d not a power of two", c)
		}
	}
}

func TestForwardFillToDeclaredCount(t *testing.T) {
	n := 500
	ft := NewForwardTable(n)
	for i := 0; i < n; i++ {
		if _, won := ft.Insert(uint64(i*3), uint64(0x1000+i*8)); !won {
			t.Fatalf("insert %d should win", i)
		}
	}
	for i := 0; i < n; i++ {
		if got := ft.Lookup(uint64(i * 3)); got != uint64(0x1000+i*8) {
			t.Fatalf("Lookup(%d) = %#x", i*3, got)
		}
	}
}

func TestForwardConcurrentRaceOneWinnerPerOffset(t *testing.T) {
	// The mutator-vs-GC relocation race: many goroutines insert different
	// values at the same offsets; exactly one value must win per offset and
	// every participant must observe that same value.
	const offsets = 256
	const racers = 8
	ft := NewForwardTable(offsets)
	results := make([][]uint64, racers)
	var wins atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < racers; r++ {
		results[r] = make([]uint64, offsets)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for off := 0; off < offsets; off++ {
				mine := uint64((id+1)<<20 | off)
				got, won := ft.Insert(uint64(off), mine)
				if won {
					wins.Add(1)
					if got != mine {
						t.Errorf("winner got %#x, want own %#x", got, mine)
					}
				}
				results[id][off] = got
			}
		}(r)
	}
	wg.Wait()
	if wins.Load() != offsets {
		t.Fatalf("wins = %d, want %d", wins.Load(), offsets)
	}
	for off := 0; off < offsets; off++ {
		first := results[0][off]
		for r := 1; r < racers; r++ {
			if results[r][off] != first {
				t.Fatalf("offset %d: racer %d saw %#x, racer 0 saw %#x", off, r, results[r][off], first)
			}
		}
		if got := ft.Lookup(uint64(off)); got != first {
			t.Fatalf("offset %d: Lookup %#x != agreed %#x", off, got, first)
		}
	}
}

func TestForwardConcurrentLookupDuringInsert(t *testing.T) {
	ft := NewForwardTable(1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(0); i < 1024; i++ {
			ft.Insert(i, i*8+0x10000)
		}
	}()
	// Concurrent lookups must return either 0 (not yet) or the final value.
	for i := uint64(0); i < 1024; i++ {
		if v := ft.Lookup(i); v != 0 && v != i*8+0x10000 {
			t.Fatalf("Lookup(%d) = %#x, want 0 or %#x", i, v, i*8+0x10000)
		}
	}
	<-done
}

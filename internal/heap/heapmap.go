package heap

import (
	"fmt"
	"io"
	"sort"
)

// WriteHeapMap renders an ASCII map of the committed pages: one row per
// page with its class, occupancy, live ratio and hot ratio. It visualises
// the hot/cold segregation the collector produces — after a few cycles
// with COLDPAGE, hot-dense and cold-dense pages separate visibly.
func (h *Heap) WriteHeapMap(w io.Writer) {
	var pages []*Page
	h.LivePages(func(p *Page) { pages = append(pages, p) })
	sort.Slice(pages, func(i, j int) bool { return pages[i].Start() < pages[j].Start() })
	fmt.Fprintf(w, "heap: %s / %s committed (%.1f%%), %d pages\n",
		fmtSize(h.UsedBytes()), fmtSize(h.MaxBytes()), h.UsedPercent(), len(pages))
	v := h.Verifier()
	if v != nil {
		fmt.Fprintf(w, "verifier: %d passes, %d violations\n", v.Runs(), v.Total())
	}
	fmt.Fprintf(w, "%-14s %-7s %9s %7s %7s  %s\n", "page", "class", "used", "live%", "hot%", "occupancy (#=live-hot, +=hot, .=allocated)")
	for _, p := range pages {
		liveRatio := 100 * p.LiveRatio()
		hotRatio := 0.0
		if p.LiveBytes() > 0 {
			hotRatio = 100 * float64(p.HotBytes()) / float64(p.Size())
		}
		usedRatio := float64(p.UsedBytes()) / float64(p.Size())
		bar := renderBar(usedRatio, p.LiveRatio(), float64(p.HotBytes())/float64(p.Size()), 40)
		flag := ""
		if n := v.PageViolations(p.Start()); n > 0 {
			flag = fmt.Sprintf("  !%d VIOLATIONS", n)
		}
		fmt.Fprintf(w, "%#-14x %-7s %9s %6.1f%% %6.1f%%  %s%s\n",
			p.Start(), p.Class(), fmtSize(p.UsedBytes()), liveRatio, hotRatio, bar, flag)
	}
}

// renderBar draws `width` cells: '+' for the hot fraction, '#' for the
// remaining live fraction, '.' for allocated-but-unmarked, ' ' for free.
func renderBar(used, live, hot float64, width int) string {
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	used, live, hot = clamp(used), clamp(live), clamp(hot)
	if hot > live {
		live = hot
	}
	if live > used {
		used = live
	}
	cells := make([]byte, width)
	for i := range cells {
		frac := float64(i) / float64(width)
		switch {
		case frac < hot:
			cells[i] = '+'
		case frac < live:
			cells[i] = '#'
		case frac < used:
			cells[i] = '.'
		default:
			cells[i] = ' '
		}
	}
	return string(cells)
}

func fmtSize(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

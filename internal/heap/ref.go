// Package heap implements the simulated ZGC-style heap that HCSGC manages:
// a 4 TB simulated address space carved into pages of the three size
// classes from Table 1 of the paper, colored 64-bit references (metadata in
// the high bits, as in ZGC), atomic live/hot bitmaps, and lock-free
// per-page forwarding tables used during concurrent relocation.
//
// Simulated addresses are plain uint64s; object data lives in Go backing
// slices owned by each page. Every simulated address that mutators or GC
// workers touch is fed to the simmem cache model by the callers, so the
// placement decisions made by the collector (internal/core) directly
// determine the cache behaviour that the evaluation measures.
package heap

import "fmt"

// WordSize is the machine word (and minimum object alignment) in bytes.
const WordSize = 8

// AddrBits is the number of address bits in a reference; the rest carry
// color metadata, mirroring ZGC's multi-mapped 4 TB heap layout.
const AddrBits = 42

// AddrMask extracts the address part of a reference.
const AddrMask = (uint64(1) << AddrBits) - 1

// Color is the metadata carried in a reference's high bits. Exactly one
// color bit is set on any non-null reference in the heap. The global "good
// color" rotates M0 -> R -> M1 -> R -> M0 ... across GC cycle phases
// (paper Fig. 2).
type Color uint64

// The three ZGC pointer colors.
const (
	ColorMarked0  Color = 1 << (AddrBits + 0) // M0
	ColorMarked1  Color = 1 << (AddrBits + 1) // M1
	ColorRemapped Color = 1 << (AddrBits + 2) // R
)

// ColorMaskAll covers every color bit.
const ColorMaskAll = uint64(ColorMarked0 | ColorMarked1 | ColorRemapped)

// Ref is a colored reference: address bits 0..41, color bits 42..44.
// The zero Ref is null.
type Ref uint64

// NullRef is the null reference.
const NullRef Ref = 0

// MakeRef builds a reference to addr with the given color.
func MakeRef(addr uint64, c Color) Ref {
	return Ref(addr&AddrMask | uint64(c))
}

// Addr returns the address part of r.
func (r Ref) Addr() uint64 { return uint64(r) & AddrMask }

// Color returns the color bits of r.
func (r Ref) Color() Color { return Color(uint64(r) & ColorMaskAll) }

// IsNull reports whether r is the null reference.
func (r Ref) IsNull() bool { return r == NullRef }

// HasColor reports whether r carries color c.
func (r Ref) HasColor(c Color) bool { return uint64(r)&uint64(c) != 0 }

// Recolor returns r with its color replaced by c.
func (r Ref) Recolor(c Color) Ref {
	return Ref(uint64(r)&AddrMask | uint64(c))
}

// String renders the color mnemonic and address, e.g. "M0:0x200000".
func (r Ref) String() string {
	if r.IsNull() {
		return "null"
	}
	name := "??"
	switch r.Color() {
	case ColorMarked0:
		name = "M0"
	case ColorMarked1:
		name = "M1"
	case ColorRemapped:
		name = "R"
	case 0:
		name = "uncolored"
	}
	return fmt.Sprintf("%s:%#x", name, r.Addr())
}

// String names the color for diagnostics.
func (c Color) String() string {
	switch c {
	case ColorMarked0:
		return "M0"
	case ColorMarked1:
		return "M1"
	case ColorRemapped:
		return "R"
	default:
		return fmt.Sprintf("Color(%#x)", uint64(c))
	}
}

package heap

import (
	"testing"
	"testing/quick"
)

func TestRefRoundTrip(t *testing.T) {
	cases := []struct {
		addr uint64
		c    Color
	}{
		{0x200000, ColorMarked0},
		{0x200000, ColorMarked1},
		{0x200000, ColorRemapped},
		{AddrMask, ColorMarked0}, // max address
		{8, ColorRemapped},
	}
	for _, tc := range cases {
		r := MakeRef(tc.addr, tc.c)
		if r.Addr() != tc.addr {
			t.Errorf("MakeRef(%#x,%v).Addr() = %#x", tc.addr, tc.c, r.Addr())
		}
		if r.Color() != tc.c {
			t.Errorf("MakeRef(%#x,%v).Color() = %v", tc.addr, tc.c, r.Color())
		}
		if r.IsNull() {
			t.Errorf("non-zero ref reported null")
		}
	}
}

func TestNullRef(t *testing.T) {
	if !NullRef.IsNull() {
		t.Fatal("NullRef must be null")
	}
	if NullRef.Addr() != 0 || NullRef.Color() != 0 {
		t.Fatal("NullRef must have zero addr and color")
	}
	if NullRef.String() != "null" {
		t.Fatalf("NullRef.String() = %q", NullRef.String())
	}
}

func TestRecolor(t *testing.T) {
	r := MakeRef(0x4000, ColorMarked0)
	r2 := r.Recolor(ColorRemapped)
	if r2.Addr() != 0x4000 {
		t.Errorf("Recolor changed address: %#x", r2.Addr())
	}
	if r2.Color() != ColorRemapped {
		t.Errorf("Recolor color = %v, want R", r2.Color())
	}
	if r2.HasColor(ColorMarked0) {
		t.Error("old color bit must be cleared")
	}
}

func TestHasColor(t *testing.T) {
	r := MakeRef(0x1000, ColorMarked1)
	if !r.HasColor(ColorMarked1) || r.HasColor(ColorMarked0) || r.HasColor(ColorRemapped) {
		t.Fatalf("HasColor wrong for %v", r)
	}
}

func TestColorsAreDistinctBits(t *testing.T) {
	all := uint64(ColorMarked0) | uint64(ColorMarked1) | uint64(ColorRemapped)
	if all != ColorMaskAll {
		t.Fatal("ColorMaskAll must cover exactly the three colors")
	}
	if uint64(ColorMarked0)&AddrMask != 0 || uint64(ColorMarked1)&AddrMask != 0 || uint64(ColorRemapped)&AddrMask != 0 {
		t.Fatal("color bits must not overlap address bits")
	}
	if uint64(ColorMarked0)&uint64(ColorMarked1) != 0 || uint64(ColorMarked0)&uint64(ColorRemapped) != 0 || uint64(ColorMarked1)&uint64(ColorRemapped) != 0 {
		t.Fatal("color bits must be disjoint")
	}
}

func TestRefStringMnemonics(t *testing.T) {
	cases := map[Color]string{
		ColorMarked0:  "M0",
		ColorMarked1:  "M1",
		ColorRemapped: "R",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Color.String() = %q, want %q", got, want)
		}
		s := MakeRef(0x20, c).String()
		if len(s) == 0 || s[:len(want)] != want {
			t.Errorf("Ref.String() = %q, want prefix %q", s, want)
		}
	}
}

func TestPropertyRefRoundTrip(t *testing.T) {
	colors := []Color{ColorMarked0, ColorMarked1, ColorRemapped}
	f := func(addr uint64, ci uint8) bool {
		addr &= AddrMask
		c := colors[int(ci)%len(colors)]
		r := MakeRef(addr, c)
		return r.Addr() == addr && r.Color() == c && r.Recolor(c) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMakeRefTruncatesHighAddressBits(t *testing.T) {
	// Addresses above AddrMask are masked; MakeRef never corrupts colors.
	r := MakeRef(^uint64(0), ColorMarked0)
	if r.Addr() != AddrMask {
		t.Fatalf("Addr = %#x, want %#x", r.Addr(), uint64(AddrMask))
	}
	if r.Color() != ColorMarked0 {
		t.Fatalf("Color = %v, want M0", r.Color())
	}
}

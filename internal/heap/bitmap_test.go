package heap

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestBitmapBasic(t *testing.T) {
	b := NewBitmap(200)
	if b.Len() != 200 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Get(5) {
		t.Fatal("fresh bitmap must be clear")
	}
	if !b.TestAndSet(5) {
		t.Fatal("first TestAndSet must return true")
	}
	if b.TestAndSet(5) {
		t.Fatal("second TestAndSet must return false")
	}
	if !b.Get(5) {
		t.Fatal("bit must be set")
	}
	if b.Count() != 1 {
		t.Fatalf("Count = %d, want 1", b.Count())
	}
}

func TestBitmapBoundaries(t *testing.T) {
	b := NewBitmap(128)
	for _, i := range []int{0, 63, 64, 127} {
		if !b.TestAndSet(i) {
			t.Errorf("TestAndSet(%d) first call false", i)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
}

func TestBitmapClear(t *testing.T) {
	b := NewBitmap(100)
	for i := 0; i < 100; i += 3 {
		b.TestAndSet(i)
	}
	b.Clear()
	if b.Count() != 0 {
		t.Fatal("Clear must zero the bitmap")
	}
}

func TestBitmapForEachSetOrdered(t *testing.T) {
	b := NewBitmap(300)
	want := []int{1, 64, 65, 190, 299}
	for _, i := range want {
		b.TestAndSet(i)
	}
	var got []int
	b.ForEachSet(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v (ascending)", got, want)
		}
	}
}

func TestBitmapNegativeSize(t *testing.T) {
	b := NewBitmap(-5)
	if b.Len() != 0 {
		t.Fatal("negative size should clamp to zero")
	}
}

func TestBitmapConcurrentTestAndSetExactlyOneWinner(t *testing.T) {
	b := NewBitmap(1024)
	const goroutines = 8
	wins := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 1024; i++ {
				if b.TestAndSet(i) {
					wins[id]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, w := range wins {
		total += w
	}
	if total != 1024 {
		t.Fatalf("total wins = %d, want exactly 1024 (one winner per bit)", total)
	}
	if b.Count() != 1024 {
		t.Fatalf("Count = %d, want 1024", b.Count())
	}
}

func TestBitmapPropertyCountMatchesSets(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		bits := int(n%2000) + 1
		b := NewBitmap(bits)
		rng := rand.New(rand.NewSource(seed))
		set := map[int]bool{}
		for i := 0; i < bits/2; i++ {
			k := rng.Intn(bits)
			b.TestAndSet(k)
			set[k] = true
		}
		return b.Count() == len(set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

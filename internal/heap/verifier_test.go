package heap

import (
	"strings"
	"testing"

	"hcsgc/internal/telemetry"
)

func TestVerifyAccounting(t *testing.T) {
	h := New(Config{MaxBytes: 64 << 20}, nil)
	v := NewVerifier()
	h.SetVerifier(v)
	if _, err := h.AllocPage(ClassSmall); err != nil {
		t.Fatal(err)
	}
	h.VerifyAccounting("test")
	if v.Total() != 0 {
		t.Fatalf("clean heap reported %d violations: %v", v.Total(), v.Violations())
	}
	// Skew the budget behind the verifier's back: the sum of live page
	// sizes no longer matches usedBytes.
	h.usedBytes.Add(1)
	h.VerifyAccounting("test")
	if v.Total() != 1 {
		t.Fatalf("skewed budget reported %d violations, want 1", v.Total())
	}
	got := v.Violations()[0]
	if got.Check != CheckAccounting || got.Phase != "test" {
		t.Fatalf("violation = %v, want accounting@test", got)
	}
	h.usedBytes.Add(-1)
}

func TestVerifierTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	v := NewVerifier()
	v.BindTelemetry(reg)
	v.BeginRun()
	v.Report(CheckStaleRef, "stw2", 0x200000, 0x200010, "boom")
	v.Report(CheckStaleRef, "stw2", 0x200000, 0x200018, "boom")
	if got := reg.Counter("hcsgc_verify_runs_total", "").Value(); got != 1 {
		t.Fatalf("hcsgc_verify_runs_total = %d, want 1", got)
	}
	if got := reg.Counter("hcsgc_verify_violations_total", "", "check", CheckStaleRef).Value(); got != 2 {
		t.Fatalf("hcsgc_verify_violations_total{check=stale-ref} = %d, want 2", got)
	}
	if got := reg.Counter("hcsgc_verify_violations_total", "", "check", CheckAccounting).Value(); got != 0 {
		t.Fatalf("hcsgc_verify_violations_total{check=accounting} = %d, want 0", got)
	}
	if v.PageViolations(0x200000) != 2 || v.ByCheck()[CheckStaleRef] != 2 {
		t.Fatal("per-page / per-check attribution wrong")
	}
}

func TestVerifierDetailRetentionIsBounded(t *testing.T) {
	v := NewVerifier()
	for i := 0; i < maxViolationDetails+50; i++ {
		v.Report(CheckObjectBounds, "stw2", 0x200000, uint64(i), "overflow")
	}
	if got := len(v.Violations()); got != maxViolationDetails {
		t.Fatalf("retained %d details, want %d", got, maxViolationDetails)
	}
	if v.Total() != uint64(maxViolationDetails+50) {
		t.Fatalf("Total = %d, want %d", v.Total(), maxViolationDetails+50)
	}
}

func TestNilVerifierIsInert(t *testing.T) {
	var v *Verifier
	v.BeginRun()
	v.Report(CheckStaleRef, "stw1", 1, 2, "x")
	if v.Runs() != 0 || v.Total() != 0 || v.Violations() != nil || v.PageViolations(1) != 0 || v.ByCheck() != nil {
		t.Fatal("nil verifier recorded something")
	}
}

func TestHeapMapRendersViolations(t *testing.T) {
	h := New(Config{MaxBytes: 64 << 20}, nil)
	v := NewVerifier()
	h.SetVerifier(v)
	p, err := h.AllocPage(ClassSmall)
	if err != nil {
		t.Fatal(err)
	}
	v.BeginRun()
	v.Report(CheckStaleRef, "stw2", p.Start(), p.Start()+16, "stale ref word")
	v.Report(CheckUnmarkedRef, "stw2", p.Start(), p.Start()+24, "dead target")
	var sb strings.Builder
	h.WriteHeapMap(&sb)
	out := sb.String()
	if !strings.Contains(out, "verifier: 1 passes, 2 violations") {
		t.Fatalf("heap map missing verifier summary:\n%s", out)
	}
	if !strings.Contains(out, "!2 VIOLATIONS") {
		t.Fatalf("heap map missing per-page violation flag:\n%s", out)
	}
	// Without a verifier the map stays unchanged.
	h.SetVerifier(nil)
	sb.Reset()
	h.WriteHeapMap(&sb)
	if strings.Contains(sb.String(), "verifier:") || strings.Contains(sb.String(), "VIOLATIONS") {
		t.Fatalf("detached verifier still rendered:\n%s", sb.String())
	}
}

func TestBitmapFirstNotIn(t *testing.T) {
	a, b := NewBitmap(256), NewBitmap(256)
	if got := a.FirstNotIn(b); got != -1 {
		t.Fatalf("empty ⊆ empty: got %d", got)
	}
	b.TestAndSet(3)
	b.TestAndSet(130)
	a.TestAndSet(3)
	if got := a.FirstNotIn(b); got != -1 {
		t.Fatalf("{3} ⊆ {3,130}: got %d", got)
	}
	a.TestAndSet(130)
	a.TestAndSet(65)
	if got := a.FirstNotIn(b); got != 65 {
		t.Fatalf("first extra bit = %d, want 65", got)
	}
}

func TestForwardTableForEach(t *testing.T) {
	ft := NewForwardTable(8)
	want := map[uint64]uint64{4: 0x400000, 9: 0x400040, 100: 0x400080}
	for off, addr := range want {
		ft.Insert(off, addr)
	}
	got := map[uint64]uint64{}
	ft.ForEach(func(off, addr uint64) { got[off] = addr })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d entries, want %d", len(got), len(want))
	}
	for off, addr := range want {
		if got[off] != addr {
			t.Fatalf("ForEach[%d] = %#x, want %#x", off, got[off], addr)
		}
	}
}

func TestInjectedCommitFailureWrapsErrHeapFull(t *testing.T) {
	// Covered more fully in core's OOM tests; here just check the error
	// text carries occupancy context and unwraps to ErrHeapFull.
	h := New(Config{MaxBytes: SmallPageSize}, nil)
	if _, err := h.AllocPage(ClassSmall); err != nil {
		t.Fatal(err)
	}
	_, err := h.AllocPage(ClassSmall)
	if err == nil {
		t.Fatal("over-budget commit succeeded")
	}
	if !strings.Contains(err.Error(), "committed") {
		t.Fatalf("commit error lacks occupancy context: %v", err)
	}
}

package heap

import (
	"math/bits"
	"sync/atomic"
)

// Bitmap is an atomic bitmap with one bit per heap word. It backs both the
// livemap (which objects survived marking) and the hotmap (which objects a
// mutator touched since the last GC cycle, §3.1.2 of the paper). All
// mutating operations are safe for concurrent use.
type Bitmap struct {
	words []uint64
	bits  int
}

// NewBitmap returns a bitmap capable of holding the given number of bits.
func NewBitmap(bits int) *Bitmap {
	if bits < 0 {
		bits = 0
	}
	return &Bitmap{words: make([]uint64, (bits+63)/64), bits: bits}
}

// Len returns the bitmap capacity in bits.
func (b *Bitmap) Len() int { return b.bits }

// TestAndSet atomically sets bit i and reports whether this call changed it
// (true = the bit was previously clear). This is the linearization point
// for "who marked this object first" during parallel marking.
func (b *Bitmap) TestAndSet(i int) bool {
	w, mask := i/64, uint64(1)<<(uint(i)%64)
	for {
		old := atomic.LoadUint64(&b.words[w])
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(&b.words[w], old, old|mask) {
			return true
		}
	}
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool {
	return atomic.LoadUint64(&b.words[i/64])&(uint64(1)<<(uint(i)%64)) != 0
}

// Clear resets all bits. Callers must ensure no concurrent writers (it is
// invoked inside or between GC phases with the relevant pages quiescent).
func (b *Bitmap) Clear() {
	for i := range b.words {
		atomic.StoreUint64(&b.words[i], 0)
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	n := 0
	for i := range b.words {
		n += bits.OnesCount64(atomic.LoadUint64(&b.words[i]))
	}
	return n
}

// FirstNotIn returns the index of the first bit set in b but clear in
// other, or -1 when b is a subset of other. The verifier uses it for the
// hotmap ⊆ livemap invariant: a hot bit on an unmarked word means hotness
// survived an object the mark declared dead.
func (b *Bitmap) FirstNotIn(other *Bitmap) int {
	for w := range b.words {
		var o uint64
		if w < len(other.words) {
			o = atomic.LoadUint64(&other.words[w])
		}
		if extra := atomic.LoadUint64(&b.words[w]) &^ o; extra != 0 {
			return w*64 + bits.TrailingZeros64(extra)
		}
	}
	return -1
}

// ForEachSet calls fn with the index of every set bit, in ascending order.
// The iteration reads each word once; bits set concurrently may or may not
// be observed.
func (b *Bitmap) ForEachSet(fn func(i int)) {
	for w := range b.words {
		word := atomic.LoadUint64(&b.words[w])
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			fn(w*64 + bit)
			word &= word - 1
		}
	}
}

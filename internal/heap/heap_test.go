package heap

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"hcsgc/internal/simmem"
)

func testHeap() *Heap {
	return New(Config{MaxBytes: 512 << 20}, nil)
}

func TestHeapDefaults(t *testing.T) {
	h := New(Config{}, nil)
	if h.Config().MaxBytes != 256<<20 {
		t.Fatalf("default MaxBytes = %d", h.Config().MaxBytes)
	}
	if h.Config().AddrSpaceBytes != 512<<30 {
		t.Fatalf("default AddrSpaceBytes = %d", h.Config().AddrSpaceBytes)
	}
}

func TestAllocPageBasics(t *testing.T) {
	h := testHeap()
	p, err := h.AllocPage(ClassSmall)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != SmallPageSize || p.Class() != ClassSmall {
		t.Fatalf("bad page %v", p)
	}
	if p.Start() == 0 {
		t.Fatal("page must not start at address 0 (null)")
	}
	if p.Start()%Granule != 0 {
		t.Fatalf("page start %#x not granule aligned", p.Start())
	}
	if h.UsedBytes() != SmallPageSize {
		t.Fatalf("UsedBytes = %d", h.UsedBytes())
	}
	if got := h.PageOf(p.Start() + 100); got != p {
		t.Fatal("PageOf must find the page")
	}
}

func TestAllocMediumPage(t *testing.T) {
	h := testHeap()
	p, err := h.AllocPage(ClassMedium)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != MediumPageSize {
		t.Fatalf("size = %d", p.Size())
	}
	// All granules of a multi-granule page resolve to it.
	for off := uint64(0); off < MediumPageSize; off += Granule {
		if h.PageOf(p.Start()+off) != p {
			t.Fatalf("PageOf(start+%d) missed", off)
		}
	}
}

func TestAllocLargePageRounding(t *testing.T) {
	h := testHeap()
	p, err := h.AllocLargePage(5 << 20) // 5MB -> 6MB (3 granules)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 6<<20 {
		t.Fatalf("large page size = %d, want 6MB", p.Size())
	}
	if p.Class() != ClassLarge {
		t.Fatal("class must be large")
	}
}

func TestAllocPageRejectsLargeClass(t *testing.T) {
	h := testHeap()
	if _, err := h.AllocPage(ClassLarge); err == nil {
		t.Fatal("AllocPage(ClassLarge) must error")
	}
}

func TestTinyClassGated(t *testing.T) {
	h := testHeap()
	if _, err := h.AllocPage(ClassTiny); err == nil {
		t.Fatal("tiny class must be rejected when disabled")
	}
	h2 := New(Config{MaxBytes: 64 << 20, EnableTinyClass: true}, nil)
	p, err := h2.AllocPage(ClassTiny)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != TinyPageSize {
		t.Fatalf("tiny page size = %d", p.Size())
	}
}

func TestHeapFull(t *testing.T) {
	h := New(Config{MaxBytes: 4 << 20}, nil)
	if _, err := h.AllocPage(ClassSmall); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AllocPage(ClassSmall); err != nil {
		t.Fatal(err)
	}
	_, err := h.AllocPage(ClassSmall)
	if !errors.Is(err, ErrHeapFull) {
		t.Fatalf("err = %v, want ErrHeapFull", err)
	}
}

func TestFreePageReleasesBudget(t *testing.T) {
	h := New(Config{MaxBytes: 4 << 20}, nil)
	p1, _ := h.AllocPage(ClassSmall)
	h.AllocPage(ClassSmall)
	h.FreePage(p1)
	if h.UsedBytes() != SmallPageSize {
		t.Fatalf("UsedBytes after free = %d", h.UsedBytes())
	}
	if _, err := h.AllocPage(ClassSmall); err != nil {
		t.Fatalf("allocation after free failed: %v", err)
	}
	// Double free is a no-op.
	h.FreePage(p1)
	if h.UsedBytes() != 2*SmallPageSize {
		t.Fatal("double free must not double-release")
	}
}

func TestFreedPageStillReadable(t *testing.T) {
	// In ZGC a recycled page's forwarding table (and, here, backing) must
	// stay usable until next mark end.
	h := testHeap()
	p, _ := h.AllocPage(ClassSmall)
	a := p.AllocRaw(32)
	h.StoreWord(nil, a, 0xabcd)
	h.FreePage(p)
	if got := h.LoadWord(nil, a); got != 0xabcd {
		t.Fatalf("freed page read = %#x, want 0xabcd", got)
	}
	if h.PageOf(a) != p {
		t.Fatal("freed page must remain in page table until dropped")
	}
}

func TestAddressesNeverReused(t *testing.T) {
	h := testHeap()
	p1, _ := h.AllocPage(ClassSmall)
	h.FreePage(p1)
	h.DropPage(p1)
	p2, _ := h.AllocPage(ClassSmall)
	if p2.Start() == p1.Start() {
		t.Fatal("address ranges must be monotonic, never reused")
	}
	if p2.Seq <= p1.Seq {
		t.Fatal("page sequence numbers must increase")
	}
}

func TestAddressSpaceExhaustion(t *testing.T) {
	h := New(Config{MaxBytes: 1 << 30, AddrSpaceBytes: 8 << 20}, nil)
	var err error
	for i := 0; i < 10; i++ {
		if _, err = h.AllocPage(ClassSmall); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrAddressSpace) {
		t.Fatalf("err = %v, want ErrAddressSpace", err)
	}
}

func TestPageOfUnmapped(t *testing.T) {
	h := testHeap()
	if h.PageOf(0) != nil {
		t.Fatal("address 0 must be unmapped")
	}
	if h.PageOf(^uint64(0)) != nil {
		t.Fatal("out-of-range address must be unmapped")
	}
}

func TestLoadStoreWord(t *testing.T) {
	h := testHeap()
	p, _ := h.AllocPage(ClassSmall)
	a := p.AllocRaw(64)
	h.StoreWord(nil, a, 123)
	h.StoreWord(nil, a+8, 456)
	if h.LoadWord(nil, a) != 123 || h.LoadWord(nil, a+8) != 456 {
		t.Fatal("load/store roundtrip failed")
	}
}

func TestCASWord(t *testing.T) {
	h := testHeap()
	p, _ := h.AllocPage(ClassSmall)
	a := p.AllocRaw(8)
	h.StoreWord(nil, a, 1)
	if !h.CASWord(nil, a, 1, 2) {
		t.Fatal("CAS with correct old must succeed")
	}
	if h.CASWord(nil, a, 1, 3) {
		t.Fatal("CAS with stale old must fail")
	}
	if h.LoadWord(nil, a) != 2 {
		t.Fatal("CAS result wrong")
	}
}

func TestAccessesFeedCacheModel(t *testing.T) {
	mem := simmem.MustNewHierarchy(simmem.DefaultConfig())
	core := mem.NewCore()
	h := New(Config{MaxBytes: 64 << 20}, mem)
	p, _ := h.AllocPage(ClassSmall)
	a := p.AllocRaw(64)
	h.StoreWord(core, a, 7)
	h.LoadWord(core, a)
	st := core.Stats()
	if st.Loads != 1 || st.Stores != 1 {
		t.Fatalf("cache model saw loads=%d stores=%d, want 1/1", st.Loads, st.Stores)
	}
	if st.Cycles == 0 {
		t.Fatal("accesses must cost cycles")
	}
}

func TestCopyObject(t *testing.T) {
	h := testHeap()
	p1, _ := h.AllocPage(ClassSmall)
	p2, _ := h.AllocPage(ClassSmall)
	src := p1.AllocRaw(32)
	dst := p2.AllocRaw(32)
	for i := uint64(0); i < 4; i++ {
		h.StoreWord(nil, src+i*8, 100+i)
	}
	h.CopyObject(nil, src, dst, 32)
	for i := uint64(0); i < 4; i++ {
		if got := h.LoadWord(nil, dst+i*8); got != 100+i {
			t.Fatalf("word %d = %d, want %d", i, got, 100+i)
		}
	}
}

func TestLivePagesIteration(t *testing.T) {
	h := testHeap()
	p1, _ := h.AllocPage(ClassSmall)
	p2, _ := h.AllocPage(ClassSmall)
	h.FreePage(p1)
	var seen []*Page
	h.LivePages(func(p *Page) { seen = append(seen, p) })
	if len(seen) != 1 || seen[0] != p2 {
		t.Fatalf("LivePages saw %d pages", len(seen))
	}
}

func TestUsedPercent(t *testing.T) {
	h := New(Config{MaxBytes: 8 << 20}, nil)
	h.AllocPage(ClassSmall)
	if got := h.UsedPercent(); got != 25 {
		t.Fatalf("UsedPercent = %v, want 25", got)
	}
}

func TestBackingPoolReuse(t *testing.T) {
	h := testHeap()
	p1, _ := h.AllocPage(ClassSmall)
	a := p1.AllocRaw(32)
	h.StoreWord(nil, a, 0xff)
	h.FreePage(p1)
	h.DropPage(p1)
	// New page may reuse the pooled backing; it must be zeroed.
	p2, _ := h.AllocPage(ClassSmall)
	b := p2.AllocRaw(32)
	if got := h.LoadWord(nil, b); got != 0 {
		t.Fatalf("reused backing not zeroed: %#x", got)
	}
}

func TestConcurrentPageAllocation(t *testing.T) {
	h := New(Config{MaxBytes: 1 << 30}, nil)
	const goroutines = 8
	pages := make([][]*Page, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				p, err := h.AllocPage(ClassSmall)
				if err != nil {
					t.Errorf("alloc failed: %v", err)
					return
				}
				pages[id] = append(pages[id], p)
			}
		}(g)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for _, list := range pages {
		for _, p := range list {
			if seen[p.Start()] {
				t.Fatalf("page start %#x handed out twice", p.Start())
			}
			seen[p.Start()] = true
		}
	}
	if h.PagesAllocated.Load() != goroutines*20 {
		t.Fatalf("PagesAllocated = %d", h.PagesAllocated.Load())
	}
}

func TestWriteHeapMap(t *testing.T) {
	h := testHeap()
	p, _ := h.AllocPage(ClassSmall)
	a := p.AllocRaw(1024)
	p.MarkLive(a, 1024)
	p.MarkHot(a, 1024)
	var buf bytes.Buffer
	h.WriteHeapMap(&buf)
	out := buf.String()
	if !strings.Contains(out, "small") || !strings.Contains(out, "pages") {
		t.Fatalf("heap map missing content:\n%s", out)
	}
}

func TestRenderBar(t *testing.T) {
	// Full hot page: all '+'; empty page: all spaces.
	if got := renderBar(1, 1, 1, 4); got != "++++" {
		t.Fatalf("hot bar = %q", got)
	}
	if got := renderBar(0, 0, 0, 4); got != "    " {
		t.Fatalf("empty bar = %q", got)
	}
	// Half used, quarter live, no hot.
	got := renderBar(0.5, 0.25, 0, 4)
	if got != "#.  " {
		t.Fatalf("mixed bar = %q", got)
	}
	// Out-of-range inputs clamp rather than panic.
	renderBar(2, -1, 5, 8)
}
